#!/bin/sh
# Cluster serving benchmark (make bench-cluster): three rallocd
# backends behind rallocproxy, driven closed-loop through the proxy by
# rallocload in two phases — cold (caches empty) then warm (the
# workload's ring owner serves from cache). The snapshot goes to
# BENCH_cluster.json (first argument overrides the path); cmd/benchdiff
# gates its warm throughput and p99 against the committed
# BENCH_cluster_baseline.json.
set -eu

cd "$(dirname "$0")/.."
out=${1:-BENCH_cluster.json}
tmp=$(mktemp -d)
pid1="" pid2="" pid3="" proxypid=""
cleanup() {
    for p in "$pid1" "$pid2" "$pid3" "$proxypid"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    if [ -n "${SMOKE_LOG_DIR:-}" ]; then
        mkdir -p "$SMOKE_LOG_DIR/cluster-bench"
        cp "$tmp"/*.log "$SMOKE_LOG_DIR/cluster-bench/" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/rallocd" ./cmd/rallocd
go build -o "$tmp/rallocproxy" ./cmd/rallocproxy
go build -o "$tmp/rallocload" ./cmd/rallocload

start_backend() { # $1 = instance name
    "$tmp/rallocd" -addr 127.0.0.1:0 -addr-file "$tmp/$1.addr" -instance-id "$1" \
        -drain-timeout 10s 2>>"$tmp/$1.log" &
}

await_file() { # $1 = path
    i=0
    while [ ! -s "$1" ] && [ $i -lt 100 ]; do
        i=$((i + 1))
        sleep 0.1
    done
    if [ ! -s "$1" ]; then
        echo "cluster_bench: $1 never appeared" >&2
        cat "$tmp"/*.log >&2 || true
        exit 1
    fi
}

start_backend b1; pid1=$!
start_backend b2; pid2=$!
start_backend b3; pid3=$!
await_file "$tmp/b1.addr"; a1=$(cat "$tmp/b1.addr")
await_file "$tmp/b2.addr"; a2=$(cat "$tmp/b2.addr")
await_file "$tmp/b3.addr"; a3=$(cat "$tmp/b3.addr")

"$tmp/rallocproxy" -addr 127.0.0.1:0 -addr-file "$tmp/proxy.addr" \
    -backends "http://$a1,http://$a2,http://$a3" \
    -probe-interval 100ms -drain-timeout 10s 2>"$tmp/proxy.log" &
proxypid=$!
await_file "$tmp/proxy.addr"
paddr=$(cat "$tmp/proxy.addr")

"$tmp/rallocload" -url "http://$paddr" -input testdata/sumabs.iloc \
    -wait-ready 10s -phases cold,warm -c 4 -duration 3s \
    -expect-verified -retry-429 5 -out "$out"

kill -TERM "$proxypid"
wait "$proxypid"
proxypid=""
for p in "$pid1" "$pid2" "$pid3"; do
    kill -TERM "$p"
    wait "$p"
done
pid1="" pid2="" pid3=""
