#!/bin/sh
# Async-job smoke test (make smoke-jobs): three rallocd backends — each
# with an audit stream writing NDJSON to disk — behind rallocproxy.
# First a synchronous run through the proxy captures the allocated code
# bytes; then rallocload -jobs drives the full async lifecycle (submit
# POST /v1/jobs through the proxy, poll, stream NDJSON results) and its
# code bytes must compare equal — the async path is byte-identical to
# the sync path, through routing. The run then requires the cluster's
# aggregated audit stream (GET /v1/audit?flush=1 via the proxy) to have
# logged verdicts with zero drops and everything flushed, and after the
# clean drain the backends' audit files must hold records attributed to
# job IDs. rallocload is the only HTTP client, so the test needs
# nothing outside the repo and the go toolchain.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
pid1="" pid2="" pid3="" proxypid=""
cleanup() {
    for p in "$pid1" "$pid2" "$pid3" "$proxypid"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    if [ -n "${SMOKE_LOG_DIR:-}" ]; then
        mkdir -p "$SMOKE_LOG_DIR/jobs"
        cp "$tmp"/*.log "$tmp"/*.json "$SMOKE_LOG_DIR/jobs/" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/rallocd" ./cmd/rallocd
go build -o "$tmp/rallocproxy" ./cmd/rallocproxy
go build -o "$tmp/rallocload" ./cmd/rallocload

start_backend() { # $1 = instance name
    mkdir -p "$tmp/audit-$1"
    "$tmp/rallocd" -addr 127.0.0.1:0 -addr-file "$tmp/$1.addr" -instance-id "$1" \
        -audit-dir "$tmp/audit-$1" -audit-flush 100ms \
        -drain-timeout 10s 2>>"$tmp/$1.log" &
}

await_file() { # $1 = path
    i=0
    while [ ! -s "$1" ] && [ $i -lt 100 ]; do
        i=$((i + 1))
        sleep 0.1
    done
    if [ ! -s "$1" ]; then
        echo "jobs_smoke: $1 never appeared" >&2
        cat "$tmp"/*.log >&2 || true
        exit 1
    fi
}

start_backend b1; pid1=$!
start_backend b2; pid2=$!
start_backend b3; pid3=$!
await_file "$tmp/b1.addr"; a1=$(cat "$tmp/b1.addr")
await_file "$tmp/b2.addr"; a2=$(cat "$tmp/b2.addr")
await_file "$tmp/b3.addr"; a3=$(cat "$tmp/b3.addr")

"$tmp/rallocproxy" -addr 127.0.0.1:0 -addr-file "$tmp/proxy.addr" \
    -backends "http://$a1,http://$a2,http://$a3" \
    -probe-interval 100ms -drain-timeout 10s 2>"$tmp/proxy.log" &
proxypid=$!
await_file "$tmp/proxy.addr"
paddr=$(cat "$tmp/proxy.addr")

# Reference bytes: the synchronous path through the proxy.
"$tmp/rallocload" -url "http://$paddr" -input testdata/sumabs.iloc \
    -wait-ready 10s -requests 3 -c 1 -expect-verified -retry-429 3 \
    -code-out "$tmp/sync.code" -out "$tmp/jobs_sync.json"

# The async lifecycle through the proxy: submit, poll, stream. The same
# input must produce the same code bytes, and the cluster-wide audit
# stream must come back lossless.
"$tmp/rallocload" -url "http://$paddr" -input testdata/sumabs.iloc \
    -jobs -requests 6 -c 2 -expect-verified -retry-429 3 \
    -code-out "$tmp/async.code" -require-audit-clean -out "$tmp/jobs_async.json"

if ! cmp -s "$tmp/sync.code" "$tmp/async.code"; then
    echo "jobs_smoke: async job code differs from sync batch code" >&2
    exit 1
fi

# The async report must attest jobs mode ran with no retention expiries.
grep -q '"jobs_mode": true' "$tmp/jobs_async.json" || {
    echo "jobs_smoke: report does not attest jobs mode:" >&2
    cat "$tmp/jobs_async.json" >&2
    exit 1
}
if grep -q '"jobs_expired"' "$tmp/jobs_async.json"; then
    echo "jobs_smoke: jobs expired under default retention:" >&2
    cat "$tmp/jobs_async.json" >&2
    exit 1
fi

# Clean cluster drain (closing each daemon flushes its audit file).
kill -TERM "$proxypid"
if ! wait "$proxypid"; then
    echo "jobs_smoke: rallocproxy exited nonzero on SIGTERM" >&2
    cat "$tmp/proxy.log" >&2
    exit 1
fi
proxypid=""
for name in b1 b2 b3; do
    case "$name" in
    b1) p=$pid1 ;;
    b2) p=$pid2 ;;
    b3) p=$pid3 ;;
    esac
    kill -TERM "$p"
    if ! wait "$p"; then
        echo "jobs_smoke: $name exited nonzero on SIGTERM" >&2
        cat "$tmp/$name.log" >&2
        exit 1
    fi
    case "$name" in
    b1) pid1="" ;;
    b2) pid2="" ;;
    b3) pid3="" ;;
    esac
done

# The drained audit files must hold the job verdicts: at least one
# record attributed to a job ID, and every record a well-formed NDJSON
# line carrying a content key.
jobrecs=$(cat "$tmp"/audit-*/audit.ndjson 2>/dev/null | grep -c '"job_id":"job-' || true)
if [ "${jobrecs:-0}" -lt 1 ]; then
    echo "jobs_smoke: no audit record attributes a job verdict:" >&2
    head "$tmp"/audit-*/audit.ndjson >&2 || true
    exit 1
fi
badrecs=$(cat "$tmp"/audit-*/audit.ndjson | grep -vc '"content_key"' || true)
if [ "${badrecs:-0}" -ne 0 ]; then
    echo "jobs_smoke: $badrecs audit record(s) lack a content key" >&2
    exit 1
fi
echo "jobs_smoke: ok (async == sync bytes through the proxy, audit lossless, $jobrecs job verdict(s) on disk)"
