#!/bin/sh
# Persistent-cache smoke test (make smoke-store): proves the disk cache
# tier and its bundles end to end, against real daemons.
#
#   1. restart:  a daemon populates -cache-dir, drains; a second daemon
#                on the same directory serves the same request as a
#                disk-tier cache hit with byte-identical code.
#   2. bundle:   `ralloc-bundle export -url` snapshots the running
#                daemon over GET /v1/cache/bundle; inspect validates
#                every entry.
#   3. warm-up:  a third daemon on a FRESH directory boots with
#                -warm-from bundle and serves a disk hit on its very
#                first request (readiness gates on the import).
#   4. import + corruption: the bundle imports into another fresh
#                directory offline; a deliberately bit-flipped entry is
#                quarantined — the daemon re-allocates, still answers a
#                verified 200 with the same bytes, and never serves the
#                corrupt entry.
#
# Uses only repo tools (rallocd, rallocload, ralloc-bundle) and the go
# toolchain. Every assertion that "the cache worked" is enforced by
# rallocload's -require-cache-hits/-require-disk-hits exit status plus
# byte comparison of -code-out files.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    if [ -n "${SMOKE_LOG_DIR:-}" ]; then
        mkdir -p "$SMOKE_LOG_DIR/store"
        cp "$tmp"/*.log "$tmp"/*.json "$SMOKE_LOG_DIR/store/" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/rallocd" ./cmd/rallocd
go build -o "$tmp/rallocload" ./cmd/rallocload
go build -o "$tmp/ralloc-bundle" ./cmd/ralloc-bundle

# boot starts rallocd with the given extra flags and waits for its
# address file; the caller reads $addr afterwards.
boot() {
    log="$1"; shift
    rm -f "$tmp/addr"
    "$tmp/rallocd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" "$@" 2>"$tmp/$log" &
    pid=$!
    i=0
    while [ ! -s "$tmp/addr" ] && [ $i -lt 100 ]; do
        i=$((i + 1))
        sleep 0.1
    done
    if [ ! -s "$tmp/addr" ]; then
        echo "store_smoke: rallocd never wrote its address" >&2
        cat "$tmp/$log" >&2
        exit 1
    fi
    addr=$(cat "$tmp/addr")
}

# stop SIGTERMs the current daemon and requires a clean drain.
stop() {
    kill -TERM "$pid"
    if ! wait "$pid"; then
        echo "store_smoke: rallocd exited nonzero on SIGTERM" >&2
        exit 1
    fi
    pid=""
}

# --- 1. restart survival -------------------------------------------------
boot d1.log -cache-dir "$tmp/c1"
"$tmp/rallocload" -url "http://$addr" -input testdata/sumabs.iloc \
    -requests 1 -c 1 -expect-verified -wait-ready 10s \
    -code-out "$tmp/cold.code" -out "$tmp/cold.json"
stop

boot d2.log -cache-dir "$tmp/c1"
"$tmp/rallocload" -url "http://$addr" -input testdata/sumabs.iloc \
    -requests 1 -c 1 -expect-verified -wait-ready 10s \
    -require-cache-hits 1 -require-disk-hits 1 \
    -code-out "$tmp/warm.code" -out "$tmp/warm.json"
if ! cmp -s "$tmp/cold.code" "$tmp/warm.code"; then
    echo "store_smoke: restart changed the served bytes" >&2
    exit 1
fi
echo "store_smoke: restart served a byte-identical disk hit"

# --- 2. bundle export over HTTP -----------------------------------------
"$tmp/ralloc-bundle" export -url "http://$addr" -out "$tmp/bundle.tar.gz"
stop
"$tmp/ralloc-bundle" inspect "$tmp/bundle.tar.gz" >"$tmp/inspect.out"
if ! grep -q '^entries 1 invalid 0$' "$tmp/inspect.out"; then
    echo "store_smoke: unexpected bundle inventory:" >&2
    cat "$tmp/inspect.out" >&2
    exit 1
fi
echo "store_smoke: bundle exported over GET /v1/cache/bundle and validated"

# --- 3. boot-time warm-up on a fresh directory ---------------------------
boot d3.log -cache-dir "$tmp/c2" -warm-from "$tmp/bundle.tar.gz"
"$tmp/rallocload" -url "http://$addr" -input testdata/sumabs.iloc \
    -requests 1 -c 1 -expect-verified -wait-ready 10s \
    -require-cache-hits 1 -require-disk-hits 1 \
    -code-out "$tmp/warm3.code" -out "$tmp/warm3.json"
stop
if ! cmp -s "$tmp/cold.code" "$tmp/warm3.code"; then
    echo "store_smoke: -warm-from served different bytes" >&2
    exit 1
fi
echo "store_smoke: fresh daemon served a disk hit on its first request (-warm-from)"

# --- 4. offline import, then corruption is quarantined -------------------
"$tmp/ralloc-bundle" import -cache-dir "$tmp/c3" "$tmp/bundle.tar.gz"
entry=$(find "$tmp/c3/objects" -type f | head -1)
if [ -z "$entry" ]; then
    echo "store_smoke: import left no entry on disk" >&2
    exit 1
fi
# Flip one byte in the middle of the entry's payload.
size=$(wc -c <"$entry")
printf 'X' | dd of="$entry" bs=1 seek=$((size / 2)) conv=notrunc 2>/dev/null

boot d4.log -cache-dir "$tmp/c3"
"$tmp/rallocload" -url "http://$addr" -input testdata/sumabs.iloc \
    -requests 1 -c 1 -expect-verified -wait-ready 10s \
    -code-out "$tmp/requarantine.code" -out "$tmp/requarantine.json"
stop
if ! cmp -s "$tmp/cold.code" "$tmp/requarantine.code"; then
    echo "store_smoke: response after corruption differs from a clean allocation" >&2
    exit 1
fi
if [ -z "$(find "$tmp/c3/quarantine" -type f 2>/dev/null)" ]; then
    echo "store_smoke: corrupt entry was not quarantined" >&2
    cat "$tmp/d4.log" >&2
    exit 1
fi
echo "store_smoke: corrupt entry quarantined, request re-allocated verbatim"

echo "store_smoke: ok"
