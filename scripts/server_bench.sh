#!/bin/sh
# Serving benchmark (make bench-server): boot rallocd on an ephemeral
# port and drive it closed-loop with rallocload, writing the
# throughput/latency snapshot to BENCH_server.json (first argument
# overrides the output path). cmd/benchdiff gates the snapshot against
# the committed BENCH_server_baseline.json.
set -eu

cd "$(dirname "$0")/.."
out=${1:-BENCH_server.json}
tmp=$(mktemp -d)
pid=""
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/rallocd" ./cmd/rallocd
go build -o "$tmp/rallocload" ./cmd/rallocload

"$tmp/rallocd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" 2>"$tmp/rallocd.log" &
pid=$!

i=0
while [ ! -s "$tmp/addr" ] && [ $i -lt 100 ]; do
    i=$((i + 1))
    sleep 0.1
done
if [ ! -s "$tmp/addr" ]; then
    echo "server_bench: rallocd never wrote its address" >&2
    cat "$tmp/rallocd.log" >&2
    exit 1
fi
addr=$(cat "$tmp/addr")

"$tmp/rallocload" -url "http://$addr" -input testdata/sumabs.iloc \
    -c 4 -duration 5s -expect-verified -out "$out"

kill -TERM "$pid"
wait "$pid"
pid=""
