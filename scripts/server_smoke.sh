#!/bin/sh
# Serving smoke test (make smoke-server): build rallocd and rallocload,
# boot the daemon on an ephemeral port, push one allocation from
# testdata through it and require a verified 200, then assert that
# SIGTERM drains and exits 0. Uses rallocload as the HTTP client so the
# test needs nothing outside the repo and the go toolchain.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    if [ -n "${SMOKE_LOG_DIR:-}" ]; then
        mkdir -p "$SMOKE_LOG_DIR/server"
        cp "$tmp"/*.log "$tmp"/*.json "$SMOKE_LOG_DIR/server/" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/rallocd" ./cmd/rallocd
go build -o "$tmp/rallocload" ./cmd/rallocload
go build -o "$tmp/ralloc-bundle" ./cmd/ralloc-bundle

"$tmp/rallocd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -cache-dir "$tmp/cache" 2>"$tmp/rallocd.log" &
pid=$!

i=0
while [ ! -s "$tmp/addr" ] && [ $i -lt 100 ]; do
    i=$((i + 1))
    sleep 0.1
done
if [ ! -s "$tmp/addr" ]; then
    echo "server_smoke: rallocd never wrote its address" >&2
    cat "$tmp/rallocd.log" >&2
    exit 1
fi
addr=$(cat "$tmp/addr")

# One allocation end to end. rallocload exits nonzero on any non-200/429
# answer, an undecodable body, a failed unit, or (with -expect-verified)
# an unverified one — exactly the smoke contract.
"$tmp/rallocload" -url "http://$addr" -input testdata/sumabs.iloc \
    -requests 1 -c 1 -expect-verified -out "$tmp/smoke.json"

# The strategy surface: GET /v1/strategies must list ssa-spill
# (-require-strategy), and selecting that non-default strategy
# per-request must still serve a verified 200.
"$tmp/rallocload" -url "http://$addr" -input testdata/sumabs.iloc \
    -requests 1 -c 1 -expect-verified \
    -require-strategy ssa-spill -strategy ssa-spill \
    -out "$tmp/smoke_strategy.json"

# The bundle surface: GET /v1/cache/bundle must stream a snapshot of
# the disk cache tier that inspect validates entry by entry (the two
# allocations above cached under two option sets — at least one entry).
"$tmp/ralloc-bundle" export -url "http://$addr" -out "$tmp/bundle.tar.gz"
"$tmp/ralloc-bundle" inspect "$tmp/bundle.tar.gz" >"$tmp/inspect.out"
if ! grep -q '^entries [1-9][0-9]* invalid 0$' "$tmp/inspect.out"; then
    echo "server_smoke: GET /v1/cache/bundle yielded an empty or invalid bundle:" >&2
    cat "$tmp/inspect.out" >&2
    exit 1
fi

# Graceful shutdown: SIGTERM must drain in-flight work and exit 0.
kill -TERM "$pid"
if ! wait "$pid"; then
    echo "server_smoke: rallocd exited nonzero on SIGTERM" >&2
    cat "$tmp/rallocd.log" >&2
    exit 1
fi
pid=""
echo "server_smoke: ok (served on $addr, clean drain)"
