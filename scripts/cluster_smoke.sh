#!/bin/sh
# Cluster smoke test (make smoke-cluster): boot three rallocd backends
# and a rallocproxy over them, prove content-keyed routing (warm cache
# hits through the proxy), then SIGKILL the backend that owns the
# workload mid-load and require zero contract violations — every answer
# 200 or 429, every 200 verified — while the proxy fails the traffic
# over. The dead backend is restarted and the proxy's breaker counters
# must show the full recovery arc (open, half-open, closed). Ends with
# a clean cluster drain: proxy first, then the surviving backends, all
# exiting 0. Uses rallocload as the only HTTP client so the test needs
# nothing outside the repo and the go toolchain.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
pid1="" pid2="" pid3="" proxypid=""
cleanup() {
    for p in "$pid1" "$pid2" "$pid3" "$proxypid"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    if [ -n "${SMOKE_LOG_DIR:-}" ]; then
        mkdir -p "$SMOKE_LOG_DIR/cluster"
        cp "$tmp"/*.log "$tmp"/*.json "$tmp"/*.stderr "$SMOKE_LOG_DIR/cluster/" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/rallocd" ./cmd/rallocd
go build -o "$tmp/rallocproxy" ./cmd/rallocproxy
go build -o "$tmp/rallocload" ./cmd/rallocload

start_backend() { # $1 = instance name, $2 = addr (empty = ephemeral)
    addr=${2:-127.0.0.1:0}
    "$tmp/rallocd" -addr "$addr" -addr-file "$tmp/$1.addr" -instance-id "$1" \
        -drain-timeout 10s 2>>"$tmp/$1.log" &
}

await_file() { # $1 = path
    i=0
    while [ ! -s "$1" ] && [ $i -lt 100 ]; do
        i=$((i + 1))
        sleep 0.1
    done
    if [ ! -s "$1" ]; then
        echo "cluster_smoke: $1 never appeared" >&2
        cat "$tmp"/*.log >&2 || true
        exit 1
    fi
}

start_backend b1; pid1=$!
start_backend b2; pid2=$!
start_backend b3; pid3=$!
await_file "$tmp/b1.addr"; a1=$(cat "$tmp/b1.addr")
await_file "$tmp/b2.addr"; a2=$(cat "$tmp/b2.addr")
await_file "$tmp/b3.addr"; a3=$(cat "$tmp/b3.addr")

"$tmp/rallocproxy" -addr 127.0.0.1:0 -addr-file "$tmp/proxy.addr" \
    -backends "http://$a1,http://$a2,http://$a3" \
    -probe-interval 100ms -breaker-threshold 2 -breaker-cooldown 500ms \
    -drain-timeout 10s 2>"$tmp/proxy.log" &
proxypid=$!
await_file "$tmp/proxy.addr"
paddr=$(cat "$tmp/proxy.addr")

# Phase 1: multi-phase load through the proxy. The single workload key
# must route stickily to its ring owner, so the warm phase serves from
# that backend's cache — locality through the proxy, asserted with
# -require-cache-hits. Any non-200/429 or unverified 200 fails here.
"$tmp/rallocload" -url "http://$paddr" -input testdata/sumabs.iloc \
    -wait-ready 10s -phases cold,warm -requests 10 -c 2 \
    -expect-verified -retry-429 3 -require-cache-hits 1 \
    -out "$tmp/cluster_phase1.json"

# The report's per-backend attribution tells us which instance owns the
# workload — the victim worth killing.
victim=$(grep -o '"b[0-9]"' "$tmp/cluster_phase1.json" | head -1 | tr -d '"')
if [ -z "$victim" ]; then
    echo "cluster_smoke: no backend attribution in the report:" >&2
    cat "$tmp/cluster_phase1.json" >&2
    exit 1
fi
case "$victim" in
b1) vpid=$pid1 vaddr=$a1 ;;
b2) vpid=$pid2 vaddr=$a2 ;;
b3) vpid=$pid3 vaddr=$a3 ;;
*)
    echo "cluster_smoke: unexpected victim $victim" >&2
    exit 1
    ;;
esac
echo "cluster_smoke: workload owner is $victim (pid $vpid) — killing it mid-load"

# Phase 2: chaos. Load runs for 6s; one second in, the owner dies with
# SIGKILL (no drain, no goodbye). The proxy must fail over: rallocload
# exits nonzero on any non-200/429 answer or unverified 200.
"$tmp/rallocload" -url "http://$paddr" -input testdata/sumabs.iloc \
    -duration 6s -c 4 -expect-verified -retry-429 5 \
    -out "$tmp/cluster_chaos.json" 2>"$tmp/chaos.stderr" &
loadpid=$!
sleep 1
kill -KILL "$vpid"
case "$victim" in
b1) pid1="" ;;
b2) pid2="" ;;
b3) pid3="" ;;
esac
if ! wait "$loadpid"; then
    echo "cluster_smoke: contract violated while $victim was down:" >&2
    cat "$tmp/chaos.stderr" >&2
    exit 1
fi

# Restart the victim on its old address; the proxy's probes must walk
# its breaker open -> half-open -> closed without client traffic.
start_backend "$victim" "$vaddr"
case "$victim" in
b1) pid1=$! ;;
b2) pid2=$! ;;
b3) pid3=$! ;;
esac
sleep 2

# Post-recovery load: everything verified again, and the scraped proxy
# counters must show the breaker observably opened during the kill and
# recovered after the restart.
"$tmp/rallocload" -url "http://$paddr" -input testdata/sumabs.iloc \
    -requests 10 -c 2 -expect-verified -retry-429 3 \
    -out "$tmp/cluster_post.json"
for metric in proxy.breaker.open proxy.breaker.half_open proxy.breaker.closed; do
    if ! grep -Eq "\"$metric\": [1-9]" "$tmp/cluster_post.json"; then
        echo "cluster_smoke: breaker never reached state '$metric':" >&2
        grep '"proxy\.' "$tmp/cluster_post.json" >&2 || cat "$tmp/cluster_post.json" >&2
        exit 1
    fi
done

# Cluster drain: the proxy stops advertising and finishes in-flight
# work, then each backend drains; every process must exit 0.
kill -TERM "$proxypid"
if ! wait "$proxypid"; then
    echo "cluster_smoke: rallocproxy exited nonzero on SIGTERM" >&2
    cat "$tmp/proxy.log" >&2
    exit 1
fi
proxypid=""
for name in b1 b2 b3; do
    case "$name" in
    b1) p=$pid1 ;;
    b2) p=$pid2 ;;
    b3) p=$pid3 ;;
    esac
    [ -n "$p" ] || continue
    kill -TERM "$p"
    if ! wait "$p"; then
        echo "cluster_smoke: $name exited nonzero on SIGTERM" >&2
        cat "$tmp/$name.log" >&2
        exit 1
    fi
    case "$name" in
    b1) pid1="" ;;
    b2) pid2="" ;;
    b3) pid3="" ;;
    esac
done
echo "cluster_smoke: ok (owner $victim killed and recovered, contract held, clean drain)"
