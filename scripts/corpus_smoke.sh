#!/bin/sh
# Corpus smoke test (make smoke-corpus): generate a small deterministic
# corpus with rcorpus, boot rallocd on an ephemeral port, and replay the
# whole corpus through it with rallocload on two different zoo machines
# — every request a verified 200, per-machine results isolated. Also
# asserts the negative contract: an unknown machine name fails fast on
# the client, and the second generation of the same spec is
# byte-identical to the first.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    if [ -n "${SMOKE_LOG_DIR:-}" ]; then
        mkdir -p "$SMOKE_LOG_DIR/corpus"
        cp "$tmp"/*.log "$tmp"/*.json "$SMOKE_LOG_DIR/corpus/" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/rcorpus" ./cmd/rcorpus
go build -o "$tmp/rallocd" ./cmd/rallocd
go build -o "$tmp/rallocload" ./cmd/rallocload

spec="count=12,seed=2026"

# Determinism: the same spec generated twice is byte-identical,
# manifest included.
"$tmp/rcorpus" generate -spec "$spec" -dir "$tmp/corpus" >"$tmp/gen1.log"
"$tmp/rcorpus" generate -spec "$spec" -dir "$tmp/corpus2" >"$tmp/gen2.log"
if ! diff -r "$tmp/corpus" "$tmp/corpus2" >/dev/null; then
    echo "corpus_smoke: the same spec generated two different corpora" >&2
    exit 1
fi

# inspect re-hashes every file against the manifest.
"$tmp/rcorpus" inspect -dir "$tmp/corpus" >"$tmp/inspect.log"

"$tmp/rallocd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" 2>"$tmp/rallocd.log" &
pid=$!
i=0
while [ ! -s "$tmp/addr" ] && [ $i -lt 100 ]; do
    i=$((i + 1))
    sleep 0.1
done
if [ ! -s "$tmp/addr" ]; then
    echo "corpus_smoke: rallocd never wrote its address" >&2
    cat "$tmp/rallocd.log" >&2
    exit 1
fi
addr=$(cat "$tmp/addr")

# Replay the corpus across two zoo machines. rallocload round-robins
# the unit files, exits nonzero on any non-200 answer, a failed unit,
# or an unverified one; -require-machine first asserts GET /v1/machines
# lists the name.
for machine in standard embedded-8; do
    "$tmp/rallocload" -url "http://$addr" -corpus "$tmp/corpus" \
        -requests 24 -c 4 -expect-verified \
        -machine "$machine" -require-machine "$machine" \
        -out "$tmp/replay_$machine.json"
done

# The negative contract: an unknown machine must fail fast, naming the
# registered ones, before any load is generated.
if "$tmp/rallocload" -url "http://$addr" -corpus "$tmp/corpus" \
    -requests 1 -c 1 -machine vax 2>"$tmp/unknown.log"; then
    echo "corpus_smoke: -machine vax was accepted" >&2
    exit 1
fi
if ! grep -q 'unknown machine' "$tmp/unknown.log"; then
    echo "corpus_smoke: unknown-machine error lacks the contract message:" >&2
    cat "$tmp/unknown.log" >&2
    exit 1
fi

kill -TERM "$pid"
if ! wait "$pid"; then
    echo "corpus_smoke: rallocd exited nonzero on SIGTERM" >&2
    cat "$tmp/rallocd.log" >&2
    exit 1
fi
pid=""
echo "corpus_smoke: ok ($spec replayed on standard and embedded-8 via $addr, clean drain)"
