// Command benchdiff is the benchmark-regression gate: it compares a
// fresh driverbench report (BENCH_driver.json, written by `make bench`)
// against the committed baseline (BENCH_baseline.json) and exits
// nonzero when any leg's routines/sec regressed by more than the
// threshold.
//
//	benchdiff [-baseline BENCH_baseline.json] [-current BENCH_driver.json]
//	          [-threshold 20] [-github]
//
// CI runs it as a soft-fail annotation step (continue-on-error) because
// shared runners are noisy; -github prints regressions in GitHub's
// ::warning:: workflow-command format so they surface as annotations on
// the run. Locally, `make benchdiff` runs the same comparison hard.
//
// Improvements are reported but never gate. A new baseline is minted by
// copying a trusted BENCH_driver.json over BENCH_baseline.json and
// committing it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// leg is the slice of a driverbench runMeasure the gate cares about.
type leg struct {
	WallMs         float64 `json:"wall_ms"`
	RoutinesPerSec float64 `json:"routines_per_sec"`
}

// benchReport mirrors driverbench's report shape loosely: unknown
// fields are ignored, so baseline and current may differ in schema
// details as the tool evolves.
type benchReport struct {
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	Routines   int    `json:"routines"`
	Sequential leg    `json:"sequential"`
	Parallel   leg    `json:"parallel"`
	WarmCache  leg    `json:"warm_cache"`
}

func load(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline report")
	current := flag.String("current", "BENCH_driver.json", "freshly measured report")
	threshold := flag.Float64("threshold", 20, "max tolerated routines/sec regression, percent")
	github := flag.Bool("github", false, "print regressions as GitHub ::warning:: annotations")
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		fail(err)
	}
	cur, err := load(*current)
	if err != nil {
		fail(err)
	}

	if base.NumCPU != cur.NumCPU || base.Routines != cur.Routines {
		fmt.Printf("benchdiff: note: baseline ran %d routines on %d CPU(s), current %d on %d — deltas may not be comparable\n",
			base.Routines, base.NumCPU, cur.Routines, cur.NumCPU)
	}

	fmt.Printf("benchdiff: %s vs %s (threshold %.0f%%)\n", *current, *baseline, *threshold)
	fmt.Printf("%-12s %15s %15s %9s\n", "leg", "base rtn/s", "cur rtn/s", "delta")
	regressed := false
	for _, l := range []struct {
		name      string
		base, cur leg
	}{
		{"sequential", base.Sequential, cur.Sequential},
		{"parallel", base.Parallel, cur.Parallel},
		{"warm_cache", base.WarmCache, cur.WarmCache},
	} {
		if l.base.RoutinesPerSec <= 0 {
			fmt.Printf("%-12s %15s %15.0f %9s\n", l.name, "(none)", l.cur.RoutinesPerSec, "-")
			continue
		}
		delta := 100 * (l.cur.RoutinesPerSec - l.base.RoutinesPerSec) / l.base.RoutinesPerSec
		mark := ""
		if -delta > *threshold {
			regressed = true
			mark = "  << REGRESSION"
			if *github {
				fmt.Printf("::warning title=Benchmark regression::%s leg: %.0f -> %.0f routines/sec (%.1f%%, threshold %.0f%%)\n",
					l.name, l.base.RoutinesPerSec, l.cur.RoutinesPerSec, delta, *threshold)
			}
		}
		fmt.Printf("%-12s %15.0f %15.0f %+8.1f%%%s\n",
			l.name, l.base.RoutinesPerSec, l.cur.RoutinesPerSec, delta, mark)
	}
	if regressed {
		fmt.Printf("benchdiff: FAIL: routines/sec regressed more than %.0f%% on at least one leg\n", *threshold)
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
