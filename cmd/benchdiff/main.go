// Command benchdiff is the benchmark-regression gate: it compares fresh
// benchmark reports against their committed baselines and exits nonzero
// when any gated figure regressed by more than the threshold.
//
//	benchdiff [-threshold 20] [-github] [-pair baseline.json:current.json ...]
//	benchdiff [-baseline BENCH_baseline.json] [-current BENCH_driver.json]
//
// -pair may repeat, so one invocation gates several benchmarks (the
// driver throughput report and the serving latency report ride the same
// gate in CI). With no -pair, the legacy single-comparison flags apply.
// The report kind is sniffed from the JSON itself: a driverbench report
// carries the sequential/parallel/warm_cache legs (gated on
// routines/sec), a rallocload report carries requests_per_sec and
// p99_ms (gated on throughput down or tail latency up).
//
// CI runs it as a soft-fail annotation step (continue-on-error) because
// shared runners are noisy; -github prints regressions in GitHub's
// ::warning:: workflow-command format so they surface as annotations on
// the run. Locally, `make benchdiff` runs the same comparison hard.
//
// Improvements are reported but never gate. A new baseline is minted by
// copying a trusted current report over its baseline and committing it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// leg is the slice of a driverbench runMeasure the gate cares about.
type leg struct {
	WallMs         float64 `json:"wall_ms"`
	RoutinesPerSec float64 `json:"routines_per_sec"`
}

// driverReport mirrors driverbench's report shape loosely: unknown
// fields are ignored, so baseline and current may differ in schema
// details as the tool evolves.
type driverReport struct {
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	Routines   int    `json:"routines"`
	Sequential leg    `json:"sequential"`
	Parallel   leg    `json:"parallel"`
	WarmCache  leg    `json:"warm_cache"`
	Corpus     leg    `json:"corpus"`
}

// serverReport mirrors rallocload's BENCH_server.json.
type serverReport struct {
	NumCPU         int     `json:"num_cpu"`
	Concurrency    int     `json:"concurrency"`
	OK             int64   `json:"ok"`
	Shed           int64   `json:"shed"`
	Errors         int64   `json:"errors"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
	// Phases is rallocload's -phases breakdown (e.g. cold,warm). When
	// both reports carry a phase of the same name, that phase gates on
	// its own figures — so a warm-path regression cannot hide inside a
	// healthy aggregate.
	Phases []serverPhase `json:"phases"`
}

// serverPhase is one -phases leg of a rallocload report.
type serverPhase struct {
	Name           string  `json:"name"`
	Errors         int64   `json:"errors"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	P99Ms          float64 `json:"p99_ms"`
}

// sniff distinguishes the two report shapes by their distinctive keys.
type sniff struct {
	Sequential     *json.RawMessage `json:"sequential"`
	RequestsPerSec *float64         `json:"requests_per_sec"`
}

func read(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// pairList collects repeated -pair baseline:current flags.
type pairList [][2]string

func (p *pairList) String() string { return fmt.Sprint([][2]string(*p)) }

func (p *pairList) Set(s string) error {
	b, c, ok := strings.Cut(s, ":")
	if !ok || b == "" || c == "" {
		return fmt.Errorf("want baseline.json:current.json, got %q", s)
	}
	*p = append(*p, [2]string{b, c})
	return nil
}

func main() {
	var pairs pairList
	flag.Var(&pairs, "pair", "baseline.json:current.json comparison (repeatable)")
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline report (legacy single-pair form)")
	current := flag.String("current", "BENCH_driver.json", "freshly measured report (legacy single-pair form)")
	threshold := flag.Float64("threshold", 20, "max tolerated regression, percent")
	github := flag.Bool("github", false, "print regressions as GitHub ::warning:: annotations")
	flag.Parse()

	if len(pairs) == 0 {
		pairs = pairList{{*baseline, *current}}
	}
	regressed := false
	for _, p := range pairs {
		bad, err := compare(p[0], p[1], *threshold, *github)
		if err != nil {
			fail(err)
		}
		regressed = regressed || bad
	}
	if regressed {
		fmt.Printf("benchdiff: FAIL: at least one gated figure regressed more than %.0f%%\n", *threshold)
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok")
}

// compare gates one baseline/current pair, dispatching on report shape.
func compare(basePath, curPath string, threshold float64, github bool) (bool, error) {
	var kind sniff
	if err := read(curPath, &kind); err != nil {
		return false, err
	}
	switch {
	case kind.Sequential != nil:
		return compareDriver(basePath, curPath, threshold, github)
	case kind.RequestsPerSec != nil:
		return compareServer(basePath, curPath, threshold, github)
	default:
		return false, fmt.Errorf("%s: unrecognized report shape (neither driverbench legs nor rallocload figures)", curPath)
	}
}

func compareDriver(basePath, curPath string, threshold float64, github bool) (bool, error) {
	var base, cur driverReport
	if err := read(basePath, &base); err != nil {
		return false, err
	}
	if err := read(curPath, &cur); err != nil {
		return false, err
	}
	if base.NumCPU != cur.NumCPU || base.Routines != cur.Routines {
		fmt.Printf("benchdiff: note: baseline ran %d routines on %d CPU(s), current %d on %d — deltas may not be comparable\n",
			base.Routines, base.NumCPU, cur.Routines, cur.NumCPU)
	}

	fmt.Printf("benchdiff: %s vs %s (threshold %.0f%%)\n", curPath, basePath, threshold)
	fmt.Printf("%-12s %15s %15s %9s\n", "leg", "base rtn/s", "cur rtn/s", "delta")
	regressed := false
	for _, l := range []struct {
		name      string
		base, cur leg
	}{
		{"sequential", base.Sequential, cur.Sequential},
		{"parallel", base.Parallel, cur.Parallel},
		{"warm_cache", base.WarmCache, cur.WarmCache},
		{"corpus", base.Corpus, cur.Corpus},
	} {
		if l.base.RoutinesPerSec <= 0 {
			fmt.Printf("%-12s %15s %15.0f %9s\n", l.name, "(none)", l.cur.RoutinesPerSec, "-")
			continue
		}
		delta := 100 * (l.cur.RoutinesPerSec - l.base.RoutinesPerSec) / l.base.RoutinesPerSec
		mark := ""
		if -delta > threshold {
			regressed = true
			mark = "  << REGRESSION"
			if github {
				fmt.Printf("::warning title=Benchmark regression::%s leg: %.0f -> %.0f routines/sec (%.1f%%, threshold %.0f%%)\n",
					l.name, l.base.RoutinesPerSec, l.cur.RoutinesPerSec, delta, threshold)
			}
		}
		fmt.Printf("%-12s %15.0f %15.0f %+8.1f%%%s\n",
			l.name, l.base.RoutinesPerSec, l.cur.RoutinesPerSec, delta, mark)
	}
	return regressed, nil
}

// compareServer gates the serving benchmark: throughput may not drop,
// and p99 latency may not rise, by more than the threshold. A current
// report carrying contract errors always gates — rallocload itself
// exits nonzero on them, but a stale file must not slip through.
func compareServer(basePath, curPath string, threshold float64, github bool) (bool, error) {
	var base, cur serverReport
	if err := read(basePath, &base); err != nil {
		return false, err
	}
	if err := read(curPath, &cur); err != nil {
		return false, err
	}
	if base.NumCPU != cur.NumCPU || base.Concurrency != cur.Concurrency {
		fmt.Printf("benchdiff: note: baseline ran c=%d on %d CPU(s), current c=%d on %d — deltas may not be comparable\n",
			base.Concurrency, base.NumCPU, cur.Concurrency, cur.NumCPU)
	}

	fmt.Printf("benchdiff: %s vs %s (threshold %.0f%%)\n", curPath, basePath, threshold)
	fmt.Printf("%-12s %15s %15s %9s\n", "figure", "base", "current", "delta")
	regressed := false
	gate := func(name string, basev, curv float64, lowerIsBetter bool) {
		if basev <= 0 {
			fmt.Printf("%-12s %15s %15.2f %9s\n", name, "(none)", curv, "-")
			return
		}
		delta := 100 * (curv - basev) / basev
		// bad is how far the figure moved in its bad direction.
		bad := -delta
		if lowerIsBetter {
			bad = delta
		}
		mark := ""
		if bad > threshold {
			regressed = true
			mark = "  << REGRESSION"
			if github {
				fmt.Printf("::warning title=Benchmark regression::server %s: %.2f -> %.2f (%.1f%%, threshold %.0f%%)\n",
					name, basev, curv, delta, threshold)
			}
		}
		fmt.Printf("%-12s %15.2f %15.2f %+8.1f%%%s\n", name, basev, curv, delta, mark)
	}
	gate("req/s", base.RequestsPerSec, cur.RequestsPerSec, false)
	gate("p99_ms", base.P99Ms, cur.P99Ms, true)
	// Per-phase gating: only phases present in both reports compare —
	// a baseline minted before -phases existed still gates the
	// aggregate, and a renamed phase surfaces as a note, not a miss.
	basePhases := make(map[string]serverPhase, len(base.Phases))
	for _, p := range base.Phases {
		basePhases[p.Name] = p
	}
	for _, p := range cur.Phases {
		bp, ok := basePhases[p.Name]
		if !ok {
			fmt.Printf("benchdiff: note: phase %q has no baseline — add one by re-minting %s\n", p.Name, basePath)
			continue
		}
		gate(p.Name+" req/s", bp.RequestsPerSec, p.RequestsPerSec, false)
		gate(p.Name+" p99_ms", bp.P99Ms, p.P99Ms, true)
	}
	if cur.Errors > 0 {
		regressed = true
		fmt.Printf("benchdiff: %s: %d request(s) violated the serving contract\n", curPath, cur.Errors)
		if github {
			fmt.Printf("::warning title=Serving contract violation::%d request(s) answered outside 200/429\n", cur.Errors)
		}
	}
	return regressed, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
