// Command ralloc allocates the registers of an ILOC routine and prints
// the result.
//
//	ralloc [-mode remat|chaitin] [-regs N] [-split scheme] [-c] [-stats] file.iloc
//
// With no file it reads standard input. -c emits the instrumented C
// translation (Figure 4 style) instead of ILOC; -stats prints per-phase
// times and spill counts.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/ctrans"
	"repro/internal/iloc"
	"repro/internal/target"
)

func main() {
	mode := flag.String("mode", "remat", "allocator mode: remat (the paper) or chaitin (baseline)")
	regs := flag.Int("regs", 16, "registers per class (16 = the paper's standard machine)")
	split := flag.String("split", "none", "splitting scheme: none, all-loops, outer-loops, inactive-loops, all-phis")
	emitC := flag.Bool("c", false, "emit instrumented C instead of ILOC")
	stats := flag.Bool("stats", false, "print allocation statistics")
	flag.Parse()

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	rt, err := iloc.Parse(string(src))
	if err != nil {
		fail(err)
	}

	opts := core.Options{Machine: target.WithRegs(*regs)}
	switch *mode {
	case "remat":
		opts.Mode = core.ModeRemat
	case "chaitin":
		opts.Mode = core.ModeChaitin
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
	switch *split {
	case "none":
	case "all-loops":
		opts.Split = core.SplitAllLoops
	case "outer-loops":
		opts.Split = core.SplitOuterLoops
	case "inactive-loops":
		opts.Split = core.SplitInactiveLoops
	case "all-phis":
		opts.Split = core.SplitAtPhis
	default:
		fail(fmt.Errorf("unknown split scheme %q", *split))
	}

	res, err := core.Allocate(rt, opts)
	if err != nil {
		fail(err)
	}
	if *emitC {
		c, err := ctrans.Translate(res.Routine)
		if err != nil {
			fail(err)
		}
		fmt.Print(c)
	} else {
		fmt.Print(iloc.Print(res.Routine))
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "mode=%v machine=%s iterations=%d spilled=%d (remat %d) frame=%d words\n",
			res.Mode, res.Machine.Name, len(res.Iterations), res.SpilledRanges, res.RematSpills, res.Routine.FrameWords)
		t := res.TotalTimes()
		fmt.Fprintf(os.Stderr, "phases: cfa=%v renum=%v build=%v costs=%v color=%v spill=%v total=%v\n",
			t.CFA, t.Renumber, t.Build, t.Costs, t.Color, t.Spill, t.Total())
		fmt.Fprint(os.Stderr, core.FormatStats(res))
	}
}

func readInput(path string) ([]byte, error) {
	if path == "" || path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ralloc:", err)
	os.Exit(1)
}
