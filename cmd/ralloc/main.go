// Command ralloc allocates the registers of one or more ILOC routines
// and prints the result.
//
//	ralloc [-strategy spec] [-machine name] [-mode remat|chaitin]
//	       [-regs N] [-split scheme] [-j N] [-cache] [-c] [-stats]
//	       [-verify] [-strict] [-trace out.json] [-metrics]
//	       [-list-strategies] [-list-machines] [file.iloc ...]
//
// With no file it reads standard input; "-" names standard input
// explicitly.
//
// -strategy selects a registered allocation strategy by spec: a name
// from -list-strategies, optionally with parameters after ":"
// ("remat:split=all-loops,no-bias"). It overrides -mode and -split; an
// unknown name fails listing the valid ones. -list-strategies prints
// the registered strategies, one per line, and exits.
//
// -machine selects a target machine from the zoo by name (see
// -list-machines), or a "regs=N" sweep point; it overrides -regs. An
// unknown name fails listing the registered ones. Several files form a module: they are allocated
// concurrently by the batch driver (-j bounds the worker pool,
// defaulting to the number of CPUs) and printed in input order, so the
// output is byte-identical whatever the parallelism. -cache enables the
// content-addressed result cache, making duplicate inputs free. -c
// emits the instrumented C translation (Figure 4 style) instead of
// ILOC; -stats prints per-phase times and spill counts per routine plus
// the driver's batch summary.
//
// -verify runs the independent post-allocation checker on every result;
// a routine whose allocation fails it degrades to the spill-everywhere
// fallback, with a warning on standard error. -strict implies -verify
// and additionally disables degradation: any allocator failure —
// non-convergence, a contained panic, a verifier rejection — exits
// nonzero instead of emitting fallback code.
//
// -trace out.json records every pipeline pass, allocator iteration,
// driver unit, cache lookup, verification rule and degradation as a
// Chrome trace_event file, loadable in chrome://tracing or Perfetto
// (see docs/ALGORITHMS.md, "Telemetry & tracing"). -metrics dumps the
// run's flat metrics registry (counters, gauges, timing histograms) to
// standard error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/ctrans"
	"repro/internal/driver"
	"repro/internal/iloc"
	"repro/internal/machines"
	"repro/internal/store"
	"repro/internal/target"
	"repro/internal/telemetry"
)

func main() {
	strategy := flag.String("strategy", "", "allocation strategy spec (see -list-strategies); overrides -mode and -split")
	listStrategies := flag.Bool("list-strategies", false, "list the registered allocation strategies and exit")
	machine := flag.String("machine", "", "target machine from the zoo (see -list-machines), or regs=N; overrides -regs")
	listMachines := flag.Bool("list-machines", false, "list the registered target machines and exit")
	mode := flag.String("mode", "remat", "allocator mode: remat (the paper) or chaitin (baseline)")
	regs := flag.Int("regs", 16, "registers per class (16 = the paper's standard machine)")
	split := flag.String("split", "none", "splitting scheme: none, all-loops, outer-loops, inactive-loops, all-phis")
	jobs := flag.Int("j", 0, "worker pool size for multi-file batches (0 = number of CPUs)")
	cache := flag.Bool("cache", false, "reuse allocations of identical routines (content-addressed cache)")
	cacheDir := flag.String("cache-dir", "", "persist the result cache on disk under this directory, shared across runs (implies -cache)")
	emitC := flag.Bool("c", false, "emit instrumented C instead of ILOC")
	stats := flag.Bool("stats", false, "print allocation statistics")
	verify := flag.Bool("verify", false, "run the post-allocation verifier on every result")
	strict := flag.Bool("strict", false, "imply -verify and fail instead of degrading to spill-everywhere")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file covering the whole run")
	metrics := flag.Bool("metrics", false, "dump the telemetry metrics registry to stderr after the run")
	flag.Parse()

	if *listStrategies {
		for _, s := range core.Strategies() {
			fmt.Printf("%-18s %s\n", s.Name(), s.Description())
		}
		return
	}
	if *listMachines {
		for _, e := range machines.All() {
			fmt.Printf("%-12s %s\n", e.Name, e.Description)
		}
		return
	}

	opts := core.Options{Machine: target.WithRegs(*regs)}
	if *machine != "" {
		// Resolve up front so a typo fails before any input is read,
		// with the error naming every registered machine.
		m, err := machines.Lookup(*machine)
		if err != nil {
			fail(err)
		}
		opts.Machine = m
	}
	opts.Verify = *verify || *strict
	opts.DisableDegradation = *strict
	switch *mode {
	case "remat":
		opts.Mode = core.ModeRemat
	case "chaitin":
		opts.Mode = core.ModeChaitin
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
	switch *split {
	case "none":
	case "all-loops":
		opts.Split = core.SplitAllLoops
	case "outer-loops":
		opts.Split = core.SplitOuterLoops
	case "inactive-loops":
		opts.Split = core.SplitInactiveLoops
	case "all-phis":
		opts.Split = core.SplitAtPhis
	default:
		fail(fmt.Errorf("unknown split scheme %q", *split))
	}
	if *strategy != "" {
		// Validate up front so a typo fails before any input is read,
		// with the error naming every registered strategy.
		if _, err := core.LookupStrategy(*strategy); err != nil {
			fail(err)
		}
		opts.Strategy = *strategy
	}

	// Every positional argument is an input file; none means stdin.
	paths := flag.Args()
	if len(paths) == 0 {
		paths = []string{"-"}
	}
	units := make([]driver.Unit, len(paths))
	for i, path := range paths {
		src, err := readInput(path)
		if err != nil {
			fail(err)
		}
		rt, err := iloc.Parse(string(src))
		if err != nil {
			fail(fmt.Errorf("%s: %w", displayName(path), err))
		}
		units[i] = driver.Unit{Name: displayName(path), Routine: rt}
	}

	cfg := driver.Config{Options: opts, Workers: *jobs}
	var tiered *store.Tiered
	switch {
	case *cacheDir != "":
		var err error
		// The CLI keeps its historical unbounded L1 (0): a one-shot
		// process cannot outgrow it the way a daemon can.
		tiered, err = store.Open(*cacheDir, 0)
		if err != nil {
			fail(err)
		}
		cfg.Cache = tiered
	case *cache:
		cfg.Cache = driver.NewCache(0)
	}
	var sink *telemetry.Sink
	if *tracePath != "" || *metrics {
		sink = &telemetry.Sink{}
		if *tracePath != "" {
			sink.Trace = telemetry.NewTracer()
		}
		if *metrics {
			sink.Metrics = telemetry.NewRegistry()
		}
		cfg.Telemetry = sink
	}
	// Interrupting the process cancels the batch: finished units stay
	// finished, running and unstarted ones fail with the context error.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	batch := driver.New(cfg).Run(ctx, units)
	// Land write-behind disk entries before the process exits; the next
	// run on the same -cache-dir then starts warm.
	tiered.Close()
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		if err := sink.Trace.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	if *metrics {
		if _, err := sink.Metrics.WriteTo(os.Stderr); err != nil {
			fail(err)
		}
	}
	if err := batch.FirstErr(); err != nil {
		fail(err)
	}
	for _, r := range batch.Results {
		if r.Result.Degraded {
			fmt.Fprintf(os.Stderr, "ralloc: warning: %s degraded to spill-everywhere: %s\n",
				r.Name, r.Result.DegradeReason)
		}
	}

	for _, r := range batch.Results {
		res := r.Result
		if *emitC {
			c, err := ctrans.Translate(res.Routine)
			if err != nil {
				fail(fmt.Errorf("%s: %w", r.Name, err))
			}
			fmt.Print(c)
		} else {
			fmt.Print(iloc.Print(res.Routine))
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "%s: strategy=%s machine=%s iterations=%d spilled=%d (remat %d) frame=%d words\n",
				r.Name, res.Strategy, res.Machine.Name, len(res.Iterations), res.SpilledRanges, res.RematSpills, res.Routine.FrameWords)
			t := res.TotalTimes()
			fmt.Fprintf(os.Stderr, "phases: cfa=%v renum=%v build=%v costs=%v color=%v spill=%v total=%v\n",
				t.CFA, t.Renumber, t.Build, t.Costs, t.Color, t.Spill, t.Total())
			fmt.Fprint(os.Stderr, core.FormatStats(res))
		}
	}
	if *stats {
		fmt.Fprint(os.Stderr, batch.Stats.Format())
		switch {
		case tiered != nil:
			ss := tiered.Stats()
			fmt.Fprintf(os.Stderr, "cache: l1 %d entries, %d hits, %d misses (%.0f%% hit rate); l2 %d entries, %d hits, %d misses, %d quarantined\n",
				ss.L1.Entries, ss.L1.Hits, ss.L1.Misses, 100*ss.L1HitRate,
				ss.L2.Entries, ss.L2.Hits, ss.L2.Misses, ss.Quarantined)
		case cfg.Cache != nil:
			cs := cfg.Cache.(*driver.Cache).Stats()
			fmt.Fprintf(os.Stderr, "cache: %d entries, %d hits, %d misses, %d evictions (%.0f%% hit rate)\n",
				cs.Entries, cs.Hits, cs.Misses, cs.Evictions, 100*cs.HitRate())
		}
	}
}

func displayName(path string) string {
	if path == "-" {
		return "<stdin>"
	}
	return path
}

func readInput(path string) ([]byte, error) {
	if path == "" || path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ralloc:", err)
	os.Exit(1)
}
