// Command rcorpus generates and inspects deterministic ILOC benchmark
// corpora.
//
//	rcorpus generate -spec count=N,seed=S,... -dir DIR
//	rcorpus inspect -dir DIR [-files]
//
// A corpus is a directory of .iloc unit files plus a MANIFEST.json
// recording the canonical spec, per-file SHA-256 hashes and a corpus
// hash over all of them. The same spec always regenerates the same
// bytes, so a corpus never needs to be committed: the spec string is
// its identity, and `rcorpus generate` rebuilds it anywhere.
//
// generate writes (or overwrites) the corpus for a spec. The spec
// grammar is key=value pairs joined by commas; every key is optional:
//
//	count     units to generate (default 64)
//	seed      master seed (default 1)
//	depth     maximum loop-nest depth (default 2)
//	regions   maximum top-level regions per routine (default 6)
//	calls     call density in [0,1], negative for leaf-only (default 0.125)
//	pressure  live values the generator keeps in flight (default 3)
//	words     static data words per routine (default 16)
//
// inspect loads a corpus back, re-hashing every file against the
// manifest, and prints its identity and aggregate shape; -files adds a
// per-unit table. A corpus whose bytes do not match its manifest is
// refused with a nonzero exit.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/corpus"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "generate":
		generate(os.Args[2:])
	case "inspect":
		inspect(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rcorpus generate -spec count=N,... -dir DIR")
	fmt.Fprintln(os.Stderr, "       rcorpus inspect -dir DIR [-files]")
	os.Exit(2)
}

func generate(args []string) {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	specText := fs.String("spec", "", "corpus spec, e.g. count=600,seed=42 (empty = all defaults)")
	dir := fs.String("dir", "", "directory to write the corpus into (required)")
	fs.Parse(args)
	if *dir == "" {
		fail(fmt.Errorf("generate: -dir is required"))
	}
	spec, err := corpus.ParseSpec(*specText)
	if err != nil {
		fail(err)
	}
	m, err := corpus.WriteDir(*dir, spec)
	if err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s: %d units, %d routines\n", *dir, m.Units, m.Routines)
	fmt.Printf("spec   %s\n", m.Spec)
	fmt.Printf("sha256 %s\n", m.SHA256)
}

func inspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory to inspect (required)")
	files := fs.Bool("files", false, "also print the per-unit file table")
	fs.Parse(args)
	if *dir == "" {
		fail(fmt.Errorf("inspect: -dir is required"))
	}
	// Load re-hashes every file, so inspect doubles as an integrity
	// check: a tampered corpus fails here, not mid-benchmark.
	m, _, err := corpus.Load(*dir)
	if err != nil {
		fail(err)
	}
	var blocks, instrs, calls int
	for _, f := range m.Files {
		blocks += f.Blocks
		instrs += f.Instrs
		calls += f.Calls
	}
	fmt.Printf("corpus %s\n", *dir)
	fmt.Printf("spec   %s\n", m.Spec)
	fmt.Printf("sha256 %s\n", m.SHA256)
	fmt.Printf("shape  %d units, %d routines, %d blocks, %d instrs, %d calls\n",
		m.Units, m.Routines, blocks, instrs, calls)
	if *files {
		for _, f := range m.Files {
			fmt.Printf("%s  routines=%d blocks=%d instrs=%d calls=%d  %s\n",
				f.File, len(f.Routines), f.Blocks, f.Instrs, f.Calls, f.SHA256[:12])
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rcorpus:", err)
	os.Exit(1)
}
