// Command experiments regenerates the paper's tables and figures.
//
//	experiments -tab 1            Table 1 (spill-cost comparison)
//	experiments -tab 2            Table 2 (allocation times)
//	experiments -fig 1..4         Figures 1-4
//	experiments -ext splitting    the §6 splitting-scheme study
//	experiments -ext strategies   the allocation-strategy matrix
//	experiments -all              everything
//
// -regs overrides the measured machine for Table 1 and the splitting
// study (default: the miniature-calibrated 6-register machine; pass 16
// for the paper's literal register count).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/driver"
	"repro/internal/experiments"
	"repro/internal/target"
)

func main() {
	tab := flag.Int("tab", 0, "regenerate a table (1 or 2)")
	fig := flag.Int("fig", 0, "regenerate a figure (1-4)")
	ext := flag.String("ext", "", "extension study: splitting or strategies")
	sweep := flag.Bool("sweep", false, "aggregate spill cycles across register counts")
	all := flag.Bool("all", false, "regenerate everything")
	regs := flag.Int("regs", 0, "registers per class for Table 1 / splitting (0 = calibrated default)")
	runs := flag.Int("runs", 10, "timing repetitions for Table 2")
	jobs := flag.Int("j", 0, "worker pool size for the batch driver's allocations (0 = number of CPUs)")
	flag.Parse()

	var m *target.Machine
	if *regs > 0 {
		m = target.WithRegs(*regs)
	}

	did := false
	run := func(name string, f func() error) {
		did = true
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if *all || *tab == 1 {
		run("table1", func() error {
			rows, err := experiments.Table1(experiments.Table1Config{Standard: m, Jobs: *jobs})
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable1(rows))
			return nil
		})
	}
	if *all || *tab == 2 {
		run("table2", func() error {
			cols, err := experiments.Table2Jobs(m, *runs, *jobs)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable2(cols))
			return nil
		})
	}
	if *all || *fig == 1 {
		run("figure1", func() error {
			r, err := experiments.Figure1()
			if err != nil {
				return err
			}
			fmt.Print(r.Format())
			return nil
		})
	}
	if *all || *fig == 2 {
		run("figure2", func() error {
			s, err := experiments.Figure2()
			if err != nil {
				return err
			}
			fmt.Print(s)
			return nil
		})
	}
	if *all || *fig == 3 {
		run("figure3", func() error {
			r, err := experiments.Figure3()
			if err != nil {
				return err
			}
			fmt.Print(r.Format())
			return nil
		})
	}
	if *all || *fig == 4 {
		run("figure4", func() error {
			s, err := experiments.FormatFigure4()
			if err != nil {
				return err
			}
			fmt.Print(s)
			return nil
		})
	}
	if *all || *ext == "splitting" {
		run("splitting", func() error {
			rows, err := experiments.SplittingStudy(m)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatSplitting(rows))
			return nil
		})
	}
	if *all || *ext == "strategies" {
		run("strategies", func() error {
			rows, err := experiments.StrategyMatrix(m, *jobs)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatStrategyMatrix(rows, m))
			return nil
		})
	}
	if *all || *sweep {
		run("sweep", func() error {
			fmt.Println("Aggregate spill cycles across the suite, by register count")
			fmt.Printf("%6s %12s %12s %8s\n", "regs", "optimistic", "remat", "gain")
			// One cache across the sweep: the huge-machine baseline
			// allocations are identical at every register count, so runs
			// after the first get them for free.
			cache := driver.NewCache(0)
			for _, n := range []int{6, 8, 10, 12, 14, 16} {
				rows, err := experiments.Table1(experiments.Table1Config{
					Standard: target.WithRegs(n), IncludeUnchanged: true,
					Jobs: *jobs, Cache: cache,
				})
				if err != nil {
					return err
				}
				var opt, rem int64
				for _, r := range rows {
					opt += r.Optimistic
					rem += r.Remat
				}
				gain := "0%"
				if opt > 0 {
					gain = fmt.Sprintf("%.0f%%", 100*float64(opt-rem)/float64(opt))
				}
				fmt.Printf("%6d %12d %12d %8s\n", n, opt, rem, gain)
			}
			return nil
		})
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
}
