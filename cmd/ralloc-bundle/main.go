// Command ralloc-bundle manages cache bundles: portable tar.gz
// snapshots of the allocation service's persistent result cache
// (internal/store). A bundle exported from a warm replica can be
// imported into a cold one — or handed to `rallocd -warm-from` — so a
// fresh daemon serves cache hits from its first request.
//
//	ralloc-bundle export -cache-dir DIR [-out bundle.tar.gz]
//	ralloc-bundle export -url http://host:port [-out bundle.tar.gz]
//	ralloc-bundle import -cache-dir DIR bundle.tar.gz
//	ralloc-bundle inspect bundle.tar.gz
//
// export snapshots a cache directory, or fetches GET /v1/cache/bundle
// from a running rallocd (-url). import installs a bundle's entries
// into a cache directory, validating each one; corrupt entries are
// skipped and counted, never installed. inspect lists every entry —
// key, routine, strategy, options — without touching any cache, and
// exits nonzero if the bundle contains an invalid entry.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "export":
		cmdExport(os.Args[2:])
	case "import":
		cmdImport(os.Args[2:])
	case "inspect":
		cmdInspect(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "ralloc-bundle: unknown command %q\n\n", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  ralloc-bundle export -cache-dir DIR [-out bundle.tar.gz]   snapshot a cache directory
  ralloc-bundle export -url BASE     [-out bundle.tar.gz]    fetch BASE/v1/cache/bundle from a running rallocd
  ralloc-bundle import -cache-dir DIR bundle.tar.gz          install a bundle's valid entries
  ralloc-bundle inspect bundle.tar.gz                        list entries without installing
`)
	os.Exit(2)
}

func cmdExport(args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	dir := fs.String("cache-dir", "", "cache directory to snapshot")
	url := fs.String("url", "", "base URL of a running rallocd (fetches /v1/cache/bundle)")
	out := fs.String("out", "bundle.tar.gz", "output file (- for stdout)")
	_ = fs.Parse(args)
	if (*dir == "") == (*url == "") {
		fail(fmt.Errorf("export: exactly one of -cache-dir and -url is required"))
	}

	w, closeOut := openOut(*out)
	var n int
	if *dir != "" {
		disk, err := store.OpenDisk(*dir)
		if err != nil {
			fail(err)
		}
		defer disk.Close()
		n, err = disk.ExportBundle(w)
		if err != nil {
			fail(err)
		}
	} else {
		var err error
		n, err = fetchBundle(strings.TrimSuffix(*url, "/")+"/v1/cache/bundle", w)
		if err != nil {
			fail(err)
		}
	}
	closeOut()
	fmt.Fprintf(os.Stderr, "ralloc-bundle: exported %d entr%s to %s\n", n, plural(n), *out)
}

// fetchBundle streams a running daemon's bundle endpoint to w and
// counts its entries by inspecting the stream as it passes through.
func fetchBundle(url string, w io.Writer) (int, error) {
	client := &http.Client{Timeout: 5 * time.Minute}
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	// Tee the download through InspectBundle so the count reported to
	// the operator reflects what actually arrived.
	pr, pw := io.Pipe()
	count := make(chan int, 1)
	go func() {
		entries, _ := store.InspectBundle(pr)
		_, _ = io.Copy(io.Discard, pr)
		count <- len(entries)
	}()
	if _, err := io.Copy(io.MultiWriter(w, pw), resp.Body); err != nil {
		pw.CloseWithError(err)
		<-count
		return 0, err
	}
	pw.Close()
	return <-count, nil
}

func cmdImport(args []string) {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	dir := fs.String("cache-dir", "", "cache directory to install into (created if missing)")
	_ = fs.Parse(args)
	if *dir == "" || fs.NArg() != 1 {
		fail(fmt.Errorf("import: want -cache-dir DIR and one bundle file"))
	}
	disk, err := store.OpenDisk(*dir)
	if err != nil {
		fail(err)
	}
	defer disk.Close()
	st, err := disk.WarmFrom(fs.Arg(0))
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "ralloc-bundle: imported %d entr%s into %s (%d replaced, %d corrupt skipped, %d ignored)\n",
		st.Imported, plural(st.Imported), *dir, st.Replaced, st.Skipped, st.Ignored)
	if st.Skipped > 0 {
		fail(fmt.Errorf("import: %d corrupt entr%s skipped", st.Skipped, plural(st.Skipped)))
	}
}

func cmdInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fail(fmt.Errorf("inspect: want one bundle file"))
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fail(err)
	}
	defer f.Close()
	entries, err := store.InspectBundle(f)
	if err != nil {
		fail(err)
	}
	invalid := 0
	for _, e := range entries {
		if !e.Valid {
			invalid++
			fmt.Printf("%s  INVALID  %s\n", e.Key, e.Err)
			continue
		}
		fmt.Printf("%s  %-16s  %-24s  %6d code bytes  %s\n",
			e.Key, e.Name, orDefault(e.Strategy, "(default)"), e.CodeBytes, e.OptionsKey)
	}
	fmt.Printf("entries %d invalid %d\n", len(entries), invalid)
	if invalid > 0 {
		os.Exit(1)
	}
}

func openOut(path string) (io.Writer, func()) {
	if path == "-" {
		return os.Stdout, func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	return f, func() {
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func plural(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ralloc-bundle:", err)
	os.Exit(1)
}
