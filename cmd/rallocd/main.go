// Command rallocd is the allocation daemon: it serves the register
// allocator over HTTP (see internal/server).
//
//	rallocd [-addr host:port] [-addr-file path] [-instance-id name]
//	        [-mode remat|chaitin] [-machine name]
//	        [-regs N] [-verify=false] [-j N] [-cache-size N]
//	        [-cache-dir dir] [-warm-from file|url]
//	        [-max-inflight N] [-max-queue N]
//	        [-max-jobs N] [-job-retention d]
//	        [-audit-dir dir | -audit-url url] [-audit-buffer N]
//	        [-audit-flush d] [-audit-block]
//	        [-default-deadline d] [-max-deadline d] [-drain-timeout d]
//	        [-trace out.json]
//
// Endpoints: POST /v1/allocate (one ILOC source, one or more routines),
// POST /v1/batch (named units with per-unit options), POST /v1/jobs
// (the same batch body accepted asynchronously: answers a job ID at
// once; GET /v1/jobs/{id} polls status, GET /v1/jobs/{id}/results
// streams completed units as NDJSON in input order, DELETE cancels),
// GET /v1/cache/bundle (tar.gz snapshot of the disk cache tier, 404
// without -cache-dir), GET /v1/audit (audit-stream delivery counters),
// GET /healthz, /readyz, /metrics, /debug/vars and /debug/pprof.
//
// -audit-dir or -audit-url turns on the audit stream: one NDJSON
// record per allocation verdict — content key, strategy, cache tier,
// verifier verdict, degradation, timing, backend — batched and flushed
// to a rotating file set in -audit-dir or POSTed to -audit-url. The
// stream is lossy by design under backpressure (drops are counted on
// /metrics as audit.dropped); -audit-block trades that for lossless
// delivery that can stall allocations when the sink stalls.
//
// The result cache is bounded by default (-cache-size 4096; 0 removes
// the bound) and in-memory only unless -cache-dir names a directory:
// then a persistent disk tier sits behind the LRU, survives restarts,
// and can be snapshotted as a bundle. -warm-from imports a bundle —
// a local file or a peer's /v1/cache/bundle URL — at boot, *before*
// /readyz flips to 200, so a fresh replica serves cache hits from its
// first request.
//
// -addr-file writes the bound address to a file once the listener is
// up, so scripts can use "-addr 127.0.0.1:0" and discover the ephemeral
// port without racing the daemon.
//
// -instance-id names this replica; the name is stamped on every
// response as the X-Ralloc-Backend header (and per-unit in batch
// bodies), which is how the rallocproxy routing layer and the load
// generator attribute results to backends. Empty derives
// "<hostname>-<pid>".
//
// SIGINT/SIGTERM starts a graceful shutdown: /readyz flips to 503, the
// listener stops accepting, and in-flight batches get up to
// -drain-timeout (alias -drain) to finish before the process exits. A
// request still running when the timeout fires is abandoned — its count
// is logged and its connection closed — but the exit status stays 0: a
// wedged request must not turn a routine SIGTERM into a failed deploy.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/machines"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/target"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8347", "listen address (port 0 picks an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	mode := flag.String("mode", "remat", "default allocator mode: remat or chaitin")
	machine := flag.String("machine", "", "default target machine: a zoo name from GET /v1/machines, or regs=N; overrides -regs")
	regs := flag.Int("regs", 16, "default registers per class")
	verify := flag.Bool("verify", true, "run the post-allocation verifier on every result by default")
	jobs := flag.Int("j", 0, "per-batch worker pool size (0 = number of CPUs)")
	cacheSize := flag.Int("cache-size", 4096, "in-memory result-cache capacity in entries (0 = unbounded; the daemon defaults to a bound so a long-lived process cannot grow without limit)")
	cacheDir := flag.String("cache-dir", "", "persist the result cache in this directory (disk tier survives restarts; serves GET /v1/cache/bundle)")
	warmFrom := flag.String("warm-from", "", "import a cache bundle (file path or http(s) URL, e.g. a peer's /v1/cache/bundle) into -cache-dir before flipping /readyz")
	maxInflight := flag.Int("max-inflight", 0, "requests allocating concurrently (0 = number of CPUs)")
	maxQueue := flag.Int("max-queue", 0, "requests waiting beyond max-inflight before shedding (0 = 4x max-inflight, -1 = none)")
	maxJobs := flag.Int("max-jobs", 0, "async jobs queued+running before POST /v1/jobs sheds with 429 (0 = 64)")
	jobRetention := flag.Duration("job-retention", 0, "how long a finished job's results stay pollable before GET answers 410 job_expired (0 = 15m)")
	auditDir := flag.String("audit-dir", "", "write the audit stream (one NDJSON record per allocation verdict) to a rotating file set in this directory")
	auditURL := flag.String("audit-url", "", "POST audit batches to this collector URL as application/x-ndjson (mutually exclusive with -audit-dir)")
	auditBuffer := flag.Int("audit-buffer", 0, "audit stream buffer in records; overflow drops (counted) unless -audit-block (0 = 4096)")
	auditFlush := flag.Duration("audit-flush", 0, "audit batch flush interval (0 = 1s)")
	auditBlock := flag.Bool("audit-block", false, "block allocations instead of dropping audit records when the stream is full (lossless, but a stalled sink stalls serving)")
	defaultDeadline := flag.Duration("default-deadline", 30*time.Second, "per-request deadline when the client sends no X-Deadline-Ms")
	maxDeadline := flag.Duration("max-deadline", 2*time.Minute, "upper clamp on client-requested deadlines")
	var drain time.Duration
	flag.DurationVar(&drain, "drain", 30*time.Second, "grace period for in-flight requests on shutdown (alias of -drain-timeout)")
	flag.DurationVar(&drain, "drain-timeout", 30*time.Second, "grace period for in-flight requests on shutdown; when it fires, remaining requests are abandoned (logged) and the process still exits 0")
	instanceID := flag.String("instance-id", "", "name stamped on every response as X-Ralloc-Backend (empty: <hostname>-<pid>)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file on clean shutdown")
	flag.Parse()

	opts := core.Options{Machine: target.WithRegs(*regs), Verify: *verify}
	if *machine != "" {
		m, err := machines.Lookup(*machine)
		if err != nil {
			fail(err)
		}
		opts.Machine = m
	}
	switch *mode {
	case "remat":
		opts.Mode = core.ModeRemat
	case "chaitin":
		opts.Mode = core.ModeChaitin
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}

	sink := &telemetry.Sink{Metrics: telemetry.NewRegistry()}
	if *tracePath != "" {
		sink.Trace = telemetry.NewTracer()
	}

	// The result cache: a bounded in-memory L1 always; a persistent
	// disk L2 under -cache-dir. The effective configuration is logged
	// so an operator can see at a glance whether a daemon is bounded
	// and whether it persists.
	if *warmFrom != "" && *cacheDir == "" {
		fail(fmt.Errorf("-warm-from requires -cache-dir (nowhere to persist the bundle)"))
	}
	l1 := driver.NewCache(*cacheSize)
	l1Desc := fmt.Sprintf("%d entries (lru)", *cacheSize)
	if *cacheSize == 0 {
		l1Desc = "unbounded"
	}
	var tiered *store.Tiered
	cfg := server.Config{
		Options:           opts,
		DefaultOptionsSet: true,
		Workers:           *jobs,
		MaxInFlight:       *maxInflight,
		MaxQueue:          *maxQueue,
		MaxJobs:           *maxJobs,
		JobRetention:      *jobRetention,
		DefaultDeadline:   *defaultDeadline,
		MaxDeadline:       *maxDeadline,
		Telemetry:         sink,
		InstanceID:        *instanceID,
	}

	// The audit stream: one record per allocation verdict, batched to a
	// rotating file set or an HTTP collector. The daemon owns the
	// logger; it is flushed and closed after the drain so the last
	// verdicts land.
	var auditLog *audit.Logger
	if *auditDir != "" && *auditURL != "" {
		fail(fmt.Errorf("-audit-dir and -audit-url are mutually exclusive"))
	}
	if *auditDir != "" || *auditURL != "" {
		var auditSink audit.Sink
		var err error
		if *auditDir != "" {
			auditSink, err = audit.NewFileSink(*auditDir, audit.FileSinkConfig{})
		} else {
			auditSink = audit.NewHTTPSink(*auditURL, nil)
		}
		if err != nil {
			fail(err)
		}
		auditLog, err = audit.New(audit.Config{
			Sink:          auditSink,
			BufferSize:    *auditBuffer,
			FlushInterval: *auditFlush,
			BlockOnFull:   *auditBlock,
			Telemetry:     sink,
		})
		if err != nil {
			fail(err)
		}
		cfg.Audit = auditLog
		mode := "lossy under backpressure (drops counted as audit.dropped)"
		if *auditBlock {
			mode = "lossless (-audit-block: a stalled sink stalls serving)"
		}
		dest := *auditDir
		if dest == "" {
			dest = *auditURL
		}
		fmt.Fprintf(os.Stderr, "rallocd: audit stream to %s, %s\n", dest, mode)
	}
	if *cacheDir != "" {
		disk, err := store.OpenDisk(*cacheDir)
		if err != nil {
			fail(err)
		}
		tiered = store.NewTiered(l1, disk)
		cfg.Store = tiered
		fmt.Fprintf(os.Stderr, "rallocd: cache: l1 %s, l2 %s (%d entries on disk)\n",
			l1Desc, *cacheDir, disk.Stats().Entries)
	} else {
		cfg.Cache = l1
		fmt.Fprintf(os.Stderr, "rallocd: cache: l1 %s, no disk tier (-cache-dir to persist)\n", l1Desc)
	}
	srv := server.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fail(err)
		}
	}
	fmt.Fprintf(os.Stderr, "rallocd: listening on %s\n", bound)

	// Readiness gating: the listener is up (liveness, warm-from over a
	// local URL, health checks) but /readyz answers 503 until warm-up
	// has finished, so a load balancer never routes to a stone-cold
	// replica that was meant to start warm.
	srv.SetReady(false)
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	if *warmFrom != "" {
		st, err := tiered.WarmFrom(*warmFrom)
		if err != nil {
			// A peer being down must not keep the replica from serving:
			// warn and start cold. Misconfiguration still surfaces —
			// anything asserting warm hits (smoke tests, probes) fails.
			fmt.Fprintf(os.Stderr, "rallocd: warning: warm-from %s failed, serving cold: %v\n", *warmFrom, err)
		} else {
			fmt.Fprintf(os.Stderr, "rallocd: warmed from %s: %d entries imported (%d replaced, %d corrupt skipped)\n",
				*warmFrom, st.Imported, st.Replaced, st.Skipped)
		}
	}
	srv.SetReady(true)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fail(err)
	case <-ctx.Done():
	}

	// Graceful drain: stop advertising readiness, stop accepting, give
	// in-flight batches the grace period to answer. A request that
	// outlives the grace period is abandoned — logged and cut off — so a
	// wedged allocation cannot hang SIGTERM forever; the exit status
	// stays 0 because the *daemon* did its part of the contract.
	fmt.Fprintf(os.Stderr, "rallocd: shutting down (drain %v)\n", drain)
	srv.SetReady(false)
	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "rallocd: drain timeout after %v: abandoning %d in-flight request(s)\n",
				drain, srv.InFlight())
			hs.Close()
		} else {
			fail(fmt.Errorf("drain: %w", err))
		}
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
	// Cancel any async jobs still running and wait for their runners;
	// then flush and close the audit stream so the final verdicts
	// (including those cancellations) are on disk before exit.
	srv.Close()
	if auditLog != nil {
		if err := auditLog.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rallocd: warning: audit close: %v\n", err)
		}
	}
	// Land write-behind cache entries before exiting so the next boot
	// on the same -cache-dir starts warm.
	tiered.Close()
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		if err := sink.Trace.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	fmt.Fprintln(os.Stderr, "rallocd: drained, bye")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rallocd:", err)
	os.Exit(1)
}
