// Command rallocd is the allocation daemon: it serves the register
// allocator over HTTP (see internal/server).
//
//	rallocd [-addr host:port] [-addr-file path] [-mode remat|chaitin]
//	        [-regs N] [-verify=false] [-j N] [-cache-size N]
//	        [-max-inflight N] [-max-queue N]
//	        [-default-deadline d] [-max-deadline d] [-drain d]
//	        [-trace out.json]
//
// Endpoints: POST /v1/allocate (one ILOC source, one or more routines),
// POST /v1/batch (named units with per-unit options), GET /healthz,
// /readyz, /metrics, /debug/vars and /debug/pprof.
//
// -addr-file writes the bound address to a file once the listener is
// up, so scripts can use "-addr 127.0.0.1:0" and discover the ephemeral
// port without racing the daemon.
//
// SIGINT/SIGTERM starts a graceful shutdown: /readyz flips to 503, the
// listener stops accepting, and in-flight batches get up to -drain to
// finish before the process exits. Exit status 0 means a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/server"
	"repro/internal/target"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8347", "listen address (port 0 picks an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	mode := flag.String("mode", "remat", "default allocator mode: remat or chaitin")
	regs := flag.Int("regs", 16, "default registers per class")
	verify := flag.Bool("verify", true, "run the post-allocation verifier on every result by default")
	jobs := flag.Int("j", 0, "per-batch worker pool size (0 = number of CPUs)")
	cacheSize := flag.Int("cache-size", 0, "result-cache capacity in entries (0 = unbounded)")
	maxInflight := flag.Int("max-inflight", 0, "requests allocating concurrently (0 = number of CPUs)")
	maxQueue := flag.Int("max-queue", 0, "requests waiting beyond max-inflight before shedding (0 = 4x max-inflight, -1 = none)")
	defaultDeadline := flag.Duration("default-deadline", 30*time.Second, "per-request deadline when the client sends no X-Deadline-Ms")
	maxDeadline := flag.Duration("max-deadline", 2*time.Minute, "upper clamp on client-requested deadlines")
	drain := flag.Duration("drain", 30*time.Second, "grace period for in-flight requests on shutdown")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file on clean shutdown")
	flag.Parse()

	opts := core.Options{Machine: target.WithRegs(*regs), Verify: *verify}
	switch *mode {
	case "remat":
		opts.Mode = core.ModeRemat
	case "chaitin":
		opts.Mode = core.ModeChaitin
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}

	sink := &telemetry.Sink{Metrics: telemetry.NewRegistry()}
	if *tracePath != "" {
		sink.Trace = telemetry.NewTracer()
	}
	srv := server.New(server.Config{
		Options:           opts,
		DefaultOptionsSet: true,
		Workers:           *jobs,
		Cache:             driver.NewCache(*cacheSize),
		MaxInFlight:       *maxInflight,
		MaxQueue:          *maxQueue,
		DefaultDeadline:   *defaultDeadline,
		MaxDeadline:       *maxDeadline,
		Telemetry:         sink,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fail(err)
		}
	}
	fmt.Fprintf(os.Stderr, "rallocd: listening on %s\n", bound)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fail(err)
	case <-ctx.Done():
	}

	// Graceful drain: stop advertising readiness, stop accepting, give
	// in-flight batches the grace period to answer.
	fmt.Fprintf(os.Stderr, "rallocd: shutting down (drain %v)\n", *drain)
	srv.SetReady(false)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		fail(fmt.Errorf("drain: %w", err))
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		if err := sink.Trace.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	fmt.Fprintln(os.Stderr, "rallocd: drained, bye")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rallocd:", err)
	os.Exit(1)
}
