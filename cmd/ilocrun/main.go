// Command ilocrun executes an ILOC routine in the dynamic-counting
// interpreter and reports the result and instruction counts.
//
//	ilocrun [-args v1,v2,...] [-counts] file.iloc
//
// A file may hold several routines; the first is the entry point and
// the rest are callees (allocated with the same options when -mode is
// given). Arguments match the routine's declared parameters in order;
// values containing '.' are floats, others integers. Suite kernels are
// also runnable by name with -kernel (their Setup provides the
// arguments):
//
//	ilocrun -kernel sgemm [-regs N -mode remat]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/iloc"
	"repro/internal/interp"
	"repro/internal/suite"
	"repro/internal/target"
)

func main() {
	argsFlag := flag.String("args", "", "comma-separated routine arguments")
	counts := flag.Bool("counts", false, "print per-opcode dynamic counts")
	kernel := flag.String("kernel", "", "run a suite kernel by name instead of a file")
	mode := flag.String("mode", "", "allocate first: remat or chaitin (default: run virtual-register code)")
	regs := flag.Int("regs", 16, "registers per class when allocating")
	flag.Parse()

	var out *interp.Outcome
	var err error
	if *kernel != "" {
		out, err = runKernel(*kernel, *mode, *regs)
	} else {
		out, err = runFile(flag.Arg(0), *argsFlag, *mode, *regs)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ilocrun:", err)
		os.Exit(1)
	}

	if out.HasRet {
		fmt.Printf("result: int=%d float=%g\n", out.RetInt, out.RetFloat)
	} else {
		fmt.Println("result: (void)")
	}
	fmt.Printf("steps: %d   cycles(2/1): %d\n", out.Steps, out.Cycles(2, 1))
	if *counts {
		type kv struct {
			op iloc.Op
			n  int64
		}
		var list []kv
		for op, n := range out.Counts {
			list = append(list, kv{op, n})
		}
		sort.Slice(list, func(i, j int) bool { return list[i].n > list[j].n })
		for _, e := range list {
			fmt.Printf("%10d  %s\n", e.n, e.op)
		}
	}
}

func maybeAllocate(rt *iloc.Routine, mode string, regs int) (*iloc.Routine, error) {
	if mode == "" {
		return rt, nil
	}
	opts := core.Options{Machine: target.WithRegs(regs)}
	switch mode {
	case "remat":
		opts.Mode = core.ModeRemat
	case "chaitin":
		opts.Mode = core.ModeChaitin
	default:
		return nil, fmt.Errorf("unknown mode %q", mode)
	}
	res, err := core.Allocate(context.Background(), rt, opts)
	if err != nil {
		return nil, err
	}
	return res.Routine, nil
}

func runKernel(name, mode string, regs int) (*interp.Outcome, error) {
	k := suite.ByName(name)
	if k == nil {
		var names []string
		for _, x := range suite.All() {
			names = append(names, x.Name)
		}
		return nil, fmt.Errorf("no kernel %q (have: %s)", name, strings.Join(names, ", "))
	}
	rt, err := maybeAllocate(k.Routine(), mode, regs)
	if err != nil {
		return nil, err
	}
	return k.Execute(rt)
}

func runFile(path, argsFlag, mode string, regs int) (*interp.Outcome, error) {
	var src []byte
	var err error
	if path == "" || path == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	rts, err := iloc.ParseProgram(string(src))
	if err != nil {
		return nil, err
	}
	rt, err := maybeAllocate(rts[0], mode, regs)
	if err != nil {
		return nil, err
	}
	var callees []*iloc.Routine
	for _, c := range rts[1:] {
		ac, err := maybeAllocate(c, mode, regs)
		if err != nil {
			return nil, err
		}
		callees = append(callees, ac)
	}
	var args []interp.Value
	if argsFlag != "" {
		for _, tok := range strings.Split(argsFlag, ",") {
			tok = strings.TrimSpace(tok)
			if strings.ContainsAny(tok, ".eE") {
				f, err := strconv.ParseFloat(tok, 64)
				if err != nil {
					return nil, fmt.Errorf("bad argument %q", tok)
				}
				args = append(args, interp.Float(f))
			} else {
				v, err := strconv.ParseInt(tok, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad argument %q", tok)
				}
				args = append(args, interp.Int(v))
			}
		}
	}
	e, err := interp.New(rt, interp.Config{Routines: callees})
	if err != nil {
		return nil, err
	}
	return e.Run(args...)
}
