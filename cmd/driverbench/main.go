// Command driverbench seeds the performance trajectory of the batch
// driver: it allocates the full benchmark suite through internal/driver
// at -j 1 and -j NumCPU, then once more against a warm result cache, and
// writes the measurements as JSON (BENCH_driver.json in CI; see `make
// bench`).
//
//	driverbench [-out BENCH_driver.json] [-reps 3] [-mode remat] [-regs 6]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/suite"
	"repro/internal/target"
)

// runMeasure describes one measured configuration.
type runMeasure struct {
	Jobs           int     `json:"jobs"`
	WallMs         float64 `json:"wall_ms"`
	CPUMs          float64 `json:"cpu_ms"`
	RoutinesPerSec float64 `json:"routines_per_sec"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
}

type report struct {
	GeneratedUnix int64  `json:"generated_unix"`
	GoVersion     string `json:"go_version"`
	NumCPU        int    `json:"num_cpu"`
	Mode          string `json:"mode"`
	Regs          int    `json:"regs"`
	Routines      int    `json:"routines"`
	Reps          int    `json:"reps"`

	Sequential runMeasure `json:"sequential"`
	Parallel   runMeasure `json:"parallel"`
	WarmCache  runMeasure `json:"warm_cache"`

	// Speedup is parallel over sequential wall time; CacheSpeedup warm
	// over cold parallel. On a single-CPU host Speedup hovers near 1.
	Speedup      float64 `json:"speedup"`
	CacheSpeedup float64 `json:"cache_speedup"`
}

func main() {
	out := flag.String("out", "BENCH_driver.json", "output file (- for stdout)")
	reps := flag.Int("reps", 3, "repetitions per configuration (best wall time wins)")
	mode := flag.String("mode", "remat", "allocator mode: remat or chaitin")
	regs := flag.Int("regs", 6, "registers per class (6 = the calibrated pressure point)")
	flag.Parse()

	opts := core.Options{Machine: target.WithRegs(*regs)}
	switch *mode {
	case "remat":
		opts.Mode = core.ModeRemat
	case "chaitin":
		opts.Mode = core.ModeChaitin
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}

	// The module: every suite kernel and every callee, parsed once.
	var units []driver.Unit
	for _, k := range suite.All() {
		units = append(units, driver.Unit{Name: k.Name, Routine: k.Routine()})
		for i, crt := range k.CalleeRoutines() {
			units = append(units, driver.Unit{Name: fmt.Sprintf("%s/callee%d", k.Name, i), Routine: crt})
		}
	}

	rep := report{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		Mode:          *mode,
		Regs:          *regs,
		Routines:      len(units),
		Reps:          *reps,
	}

	// Cold, sequential and parallel: a fresh engine (no cache) per rep,
	// best wall time of the repetitions.
	rep.Sequential = measureCold(units, opts, 1, *reps)
	rep.Parallel = measureCold(units, opts, runtime.NumCPU(), *reps)

	// Warm: fill a cache once, then measure the fully cached batch.
	cache := driver.NewCache(0)
	warmEng := driver.New(driver.Config{Options: opts, Workers: runtime.NumCPU(), Cache: cache})
	if err := warmEng.Run(units).FirstErr(); err != nil {
		fail(err)
	}
	best := driver.Stats{}
	for r := 0; r < *reps; r++ {
		b := warmEng.Run(units)
		if err := b.FirstErr(); err != nil {
			fail(err)
		}
		if best.Wall == 0 || b.Stats.Wall < best.Wall {
			best = b.Stats
		}
	}
	rep.WarmCache = toMeasure(best, runtime.NumCPU())
	rep.WarmCache.CacheHitRate = float64(best.CacheHits) / float64(best.CacheHits+best.CacheMisses)

	if rep.Sequential.WallMs > 0 {
		rep.Speedup = rep.Sequential.WallMs / rep.Parallel.WallMs
	}
	if rep.WarmCache.WallMs > 0 {
		rep.CacheSpeedup = rep.Parallel.WallMs / rep.WarmCache.WallMs
	}

	text, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	text = append(text, '\n')
	if *out == "-" {
		os.Stdout.Write(text)
		return
	}
	if err := os.WriteFile(*out, text, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("driverbench: %d routines, -j1 %.1fms, -j%d %.1fms (%.2fx), warm cache %.1fms (%.0f%% hits) -> %s\n",
		rep.Routines, rep.Sequential.WallMs, rep.Parallel.Jobs, rep.Parallel.WallMs,
		rep.Speedup, rep.WarmCache.WallMs, 100*rep.WarmCache.CacheHitRate, *out)
}

// measureCold runs the batch with a fresh cacheless engine reps times
// and keeps the best wall time.
func measureCold(units []driver.Unit, opts core.Options, jobs, reps int) runMeasure {
	best := driver.Stats{}
	for r := 0; r < reps; r++ {
		b := driver.New(driver.Config{Options: opts, Workers: jobs}).Run(units)
		if err := b.FirstErr(); err != nil {
			fail(err)
		}
		if best.Wall == 0 || b.Stats.Wall < best.Wall {
			best = b.Stats
		}
	}
	return toMeasure(best, jobs)
}

func toMeasure(st driver.Stats, jobs int) runMeasure {
	wallMs := float64(st.Wall.Microseconds()) / 1000
	rps := 0.0
	if st.Wall > 0 {
		rps = float64(st.Routines) / st.Wall.Seconds()
	}
	return runMeasure{
		Jobs:           jobs,
		WallMs:         wallMs,
		CPUMs:          float64(st.CPU.Microseconds()) / 1000,
		RoutinesPerSec: rps,
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "driverbench:", err)
	os.Exit(1)
}
