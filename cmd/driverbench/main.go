// Command driverbench seeds the performance trajectory of the batch
// driver: it allocates the full benchmark suite through internal/driver
// sequentially and in parallel, then once more against a warm result
// cache, and writes the measurements as JSON (BENCH_driver.json in CI;
// see `make bench` and cmd/benchdiff for the regression gate).
//
//	driverbench [-out BENCH_driver.json] [-reps 3] [-mode remat]
//	            [-strategy spec] [-machine name] [-regs 6]
//	            [-corpus spec] [-cache-dir dir]
//	            [-trace out.json] [-metrics] [-pprof addr]
//
// -strategy selects a registered allocation strategy by spec (see
// `ralloc -list-strategies`), overriding -mode; the report records it
// so benchmark files from different strategies never compare silently.
// -machine selects a zoo machine by name (see `ralloc -list-machines`)
// or a regs=N sweep point, overriding -regs; it too lands in the
// report.
//
// -corpus adds a corpus-replay leg: the spec'd generated corpus (see
// internal/corpus; e.g. "count=200,seed=7") allocates through the
// parallel cold path, measuring throughput on heavy, diverse traffic
// instead of the 35 suite kernels. The report records the spec and the
// corpus routine count alongside the leg.
//
// -cache-dir backs the warm-cache leg with the persistent disk tier
// (internal/store) instead of a plain in-memory cache, and adds a
// disk_warm leg: each rep runs with a fresh (empty) L1 over the
// populated disk tier, so the measurement is the pure
// read-decode-reparse cost of a disk hit. The report's cache_stats
// carries the per-tier counters either way.
//
// The parallel leg always requests at least two workers, even on a
// single-CPU machine: speedup must be measured against real scheduler
// contention, not a silently sequential "parallel" run. The report
// records the requested and effective worker counts separately so a
// host that clamps the pool is visible in the data.
//
// -pprof serves net/http/pprof and expvar on the given address
// (e.g. localhost:6060) for profiling long batch runs; the telemetry
// metrics registry is published as the "telemetry" expvar. -trace and
// -metrics mirror ralloc's flags across the whole bench run.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/driver"
	"repro/internal/machines"
	"repro/internal/store"
	"repro/internal/suite"
	"repro/internal/target"
	"repro/internal/telemetry"
)

// runMeasure describes one measured configuration. JobsRequested is
// what the leg asked the driver for; JobsEffective is the pool size the
// driver actually ran (it clamps to the unit count).
type runMeasure struct {
	JobsRequested  int     `json:"jobs_requested"`
	JobsEffective  int     `json:"jobs_effective"`
	WallMs         float64 `json:"wall_ms"`
	CPUMs          float64 `json:"cpu_ms"`
	RoutinesPerSec float64 `json:"routines_per_sec"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
}

type report struct {
	GeneratedUnix int64  `json:"generated_unix"`
	GoVersion     string `json:"go_version"`
	NumCPU        int    `json:"num_cpu"`
	Mode          string `json:"mode"`
	Strategy      string `json:"strategy"`
	Machine       string `json:"machine,omitempty"`
	Regs          int    `json:"regs"`
	Routines      int    `json:"routines"`
	Reps          int    `json:"reps"`

	Sequential runMeasure `json:"sequential"`
	Parallel   runMeasure `json:"parallel"`
	WarmCache  runMeasure `json:"warm_cache"`
	// Corpus measures the parallel cold path over the generated corpus
	// named by CorpusSpec (only with -corpus): heavy, diverse traffic
	// instead of the suite kernels.
	Corpus         *runMeasure `json:"corpus,omitempty"`
	CorpusSpec     string      `json:"corpus_spec,omitempty"`
	CorpusRoutines int         `json:"corpus_routines,omitempty"`
	// DiskWarm measures serving from the persistent disk tier through a
	// fresh, empty L1 (only with -cache-dir): every hit pays the disk
	// read, integrity check and re-parse.
	DiskWarm *runMeasure `json:"disk_warm,omitempty"`
	// CacheStats is the per-tier cache counter snapshot after the warm
	// legs (L2 fields stay zero without -cache-dir).
	CacheStats *store.Stats `json:"cache_stats,omitempty"`

	// Speedup is parallel over sequential wall time; CacheSpeedup warm
	// over cold parallel. On a single-CPU host Speedup hovers near 1 —
	// the parallel leg still runs >= 2 workers, so it reflects real
	// contention rather than a second sequential run.
	Speedup      float64 `json:"speedup"`
	CacheSpeedup float64 `json:"cache_speedup"`
}

func main() {
	out := flag.String("out", "BENCH_driver.json", "output file (- for stdout)")
	reps := flag.Int("reps", 3, "repetitions per configuration (best wall time wins)")
	mode := flag.String("mode", "remat", "allocator mode: remat or chaitin")
	strategy := flag.String("strategy", "", "allocation strategy spec (overrides -mode; see ralloc -list-strategies)")
	machine := flag.String("machine", "", "target machine: a zoo name (see ralloc -list-machines) or regs=N; overrides -regs")
	regs := flag.Int("regs", 6, "registers per class (6 = the calibrated pressure point)")
	corpusSpec := flag.String("corpus", "", "add a corpus-replay leg over this generated-corpus spec (see internal/corpus; e.g. count=200,seed=7)")
	cacheDir := flag.String("cache-dir", "", "back the warm-cache leg with a persistent disk tier in this directory (adds the disk_warm leg)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file covering the bench run")
	metrics := flag.Bool("metrics", false, "dump the telemetry metrics registry to stderr after the run")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	flag.Parse()

	opts := core.Options{Machine: target.WithRegs(*regs)}
	if *machine != "" {
		m, err := machines.Lookup(*machine)
		if err != nil {
			fail(err)
		}
		opts.Machine = m
	}
	switch *mode {
	case "remat":
		opts.Mode = core.ModeRemat
	case "chaitin":
		opts.Mode = core.ModeChaitin
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
	if *strategy != "" {
		if _, err := core.LookupStrategy(*strategy); err != nil {
			fail(err)
		}
		opts.Strategy = *strategy
	}

	// Telemetry: the registry always exists so expvar has something to
	// publish; the tracer only when requested.
	sink := &telemetry.Sink{Metrics: telemetry.NewRegistry()}
	if *tracePath != "" {
		sink.Trace = telemetry.NewTracer()
	}
	if *pprofAddr != "" {
		expvar.Publish("telemetry", expvar.Func(func() any {
			m := map[string]int64{}
			for _, s := range sink.Metrics.Snapshot() {
				m[s.Name] = s.Value
			}
			return m
		}))
		go func() {
			// DefaultServeMux carries /debug/pprof/* (net/http/pprof)
			// and /debug/vars (expvar) via their package inits.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "driverbench: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "driverbench: profiling at http://%s/debug/pprof/ (expvar at /debug/vars)\n", *pprofAddr)
	}

	// The module: every suite kernel and every callee, parsed once.
	var units []driver.Unit
	for _, k := range suite.All() {
		units = append(units, driver.Unit{Name: k.Name, Routine: k.Routine()})
		for i, crt := range k.CalleeRoutines() {
			units = append(units, driver.Unit{Name: fmt.Sprintf("%s/callee%d", k.Name, i), Routine: crt})
		}
	}

	// The parallel pool: every CPU, but never fewer than two workers —
	// a "parallel" leg that degenerates to one worker on a single-CPU
	// host would measure nothing.
	par := runtime.NumCPU()
	if par < 2 {
		par = 2
	}

	rep := report{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		Mode:          *mode,
		Strategy:      opts.Canonical().Strategy,
		Machine:       opts.Machine.Name,
		Regs:          *regs,
		Routines:      len(units),
		Reps:          *reps,
	}

	// Cold, sequential and parallel: a fresh engine (no cache) per rep,
	// best wall time of the repetitions.
	rep.Sequential = measureCold(units, opts, sink, 1, *reps)
	rep.Parallel = measureCold(units, opts, sink, par, *reps)

	// Warm: fill a cache once, then measure the fully cached batch. With
	// -cache-dir the cache is the tiered store, so the fill also
	// populates the disk tier for the disk_warm leg below.
	var cache driver.ResultCache
	var tiered *store.Tiered
	if *cacheDir != "" {
		var err error
		tiered, err = store.Open(*cacheDir, 0)
		if err != nil {
			fail(err)
		}
		cache = tiered
	} else {
		cache = driver.NewCache(0)
	}
	warmEng := driver.New(driver.Config{Options: opts, Workers: par, Cache: cache, Telemetry: sink})
	if err := warmEng.Run(context.Background(), units).FirstErr(); err != nil {
		fail(err)
	}
	best := driver.Stats{}
	for r := 0; r < *reps; r++ {
		b := warmEng.Run(context.Background(), units)
		if err := b.FirstErr(); err != nil {
			fail(err)
		}
		if best.Wall == 0 || b.Stats.Wall < best.Wall {
			best = b.Stats
		}
	}
	rep.WarmCache = toMeasure(best, par)
	rep.WarmCache.CacheHitRate = float64(best.CacheHits) / float64(best.CacheHits+best.CacheMisses)

	if tiered != nil {
		// Disk-warm: every rep gets a fresh, empty L1 over the populated
		// disk tier, so each hit pays the full L2 path. The flush first
		// guarantees the fill has landed on disk.
		tiered.Flush()
		diskBest := driver.Stats{}
		for r := 0; r < *reps; r++ {
			fresh := store.NewTiered(driver.NewCache(0), tiered.Disk())
			b := driver.New(driver.Config{Options: opts, Workers: par, Cache: fresh, Telemetry: sink}).Run(context.Background(), units)
			if err := b.FirstErr(); err != nil {
				fail(err)
			}
			if b.Stats.CacheDiskHits == 0 {
				fail(fmt.Errorf("disk_warm rep %d: no disk-tier hits (persistence broken?)", r))
			}
			if diskBest.Wall == 0 || b.Stats.Wall < diskBest.Wall {
				diskBest = b.Stats
			}
		}
		dm := toMeasure(diskBest, par)
		dm.CacheHitRate = float64(diskBest.CacheHits) / float64(diskBest.CacheHits+diskBest.CacheMisses)
		rep.DiskWarm = &dm
		st := tiered.Stats()
		rep.CacheStats = &st
		tiered.PublishMetrics(sink.Metrics)
		tiered.Close()
	} else if c, ok := cache.(*driver.Cache); ok {
		cs := c.Stats()
		rep.CacheStats = &store.Stats{L1: cs, L1HitRate: cs.HitRate()}
	}

	if *corpusSpec != "" {
		spec, err := corpus.ParseSpec(*corpusSpec)
		if err != nil {
			fail(err)
		}
		cunits, err := corpus.Generate(spec)
		if err != nil {
			fail(err)
		}
		var cwork []driver.Unit
		for _, rt := range corpus.Routines(cunits) {
			cwork = append(cwork, driver.Unit{Name: rt.Name, Routine: rt})
		}
		cm := measureCold(cwork, opts, sink, par, *reps)
		rep.Corpus = &cm
		rep.CorpusSpec = spec.String()
		rep.CorpusRoutines = len(cwork)
	}

	if rep.Parallel.WallMs > 0 {
		rep.Speedup = rep.Sequential.WallMs / rep.Parallel.WallMs
	}
	if rep.WarmCache.WallMs > 0 {
		rep.CacheSpeedup = rep.Parallel.WallMs / rep.WarmCache.WallMs
	}

	text, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	text = append(text, '\n')
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		if err := sink.Trace.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	if *metrics {
		if _, err := sink.Metrics.WriteTo(os.Stderr); err != nil {
			fail(err)
		}
	}
	if *out == "-" {
		os.Stdout.Write(text)
		return
	}
	if err := os.WriteFile(*out, text, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("driverbench: %d routines, -j1 %.1fms, -j%d(eff %d) %.1fms (%.2fx), warm cache %.1fms (%.0f%% hits) -> %s\n",
		rep.Routines, rep.Sequential.WallMs, rep.Parallel.JobsRequested, rep.Parallel.JobsEffective,
		rep.Parallel.WallMs, rep.Speedup, rep.WarmCache.WallMs, 100*rep.WarmCache.CacheHitRate, *out)
	if rep.Corpus != nil {
		fmt.Printf("driverbench: corpus %s: %d routines, %.1fms (%.0f routines/sec)\n",
			rep.CorpusSpec, rep.CorpusRoutines, rep.Corpus.WallMs, rep.Corpus.RoutinesPerSec)
	}
}

// measureCold runs the batch with a fresh cacheless engine reps times
// and keeps the best wall time.
func measureCold(units []driver.Unit, opts core.Options, sink *telemetry.Sink, jobs, reps int) runMeasure {
	best := driver.Stats{}
	for r := 0; r < reps; r++ {
		b := driver.New(driver.Config{Options: opts, Workers: jobs, Telemetry: sink}).Run(context.Background(), units)
		if err := b.FirstErr(); err != nil {
			fail(err)
		}
		if best.Wall == 0 || b.Stats.Wall < best.Wall {
			best = b.Stats
		}
	}
	return toMeasure(best, jobs)
}

func toMeasure(st driver.Stats, requested int) runMeasure {
	wallMs := float64(st.Wall.Microseconds()) / 1000
	rps := 0.0
	if st.Wall > 0 {
		rps = float64(st.Routines) / st.Wall.Seconds()
	}
	return runMeasure{
		JobsRequested:  requested,
		JobsEffective:  st.Workers,
		WallMs:         wallMs,
		CPUMs:          float64(st.CPU.Microseconds()) / 1000,
		RoutinesPerSec: rps,
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "driverbench:", err)
	os.Exit(1)
}
