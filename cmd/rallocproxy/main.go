// Command rallocproxy is the cluster routing proxy: it spreads
// allocation traffic over a set of rallocd backends by
// consistent-hashing each request's content key — the same key the
// backends' result caches use, so repeats of a (routine, options) pair
// land on the backend already holding the cached result — and wraps the
// cluster in the resilience layer described in internal/cluster: active
// health probes, per-backend circuit breakers, bounded retries with
// backoff and failover along the ring, and per-request deadline budgets
// threaded through every retry.
//
//	rallocproxy -backends url,url,... [-addr host:port] [-addr-file path]
//	            [-vnodes N] [-replicas N] [-max-attempts N]
//	            [-probe-interval d] [-breaker-threshold N]
//	            [-breaker-cooldown d]
//	            [-default-deadline d] [-max-deadline d]
//	            [-drain-timeout d]
//
// Endpoints: POST /v1/allocate and /v1/batch (routed; batches whose
// units hash to different owners are scattered and merged),
// GET /v1/strategies (forwarded), GET /v1/cluster (ring + breaker
// status), /healthz, /readyz, /metrics.
//
// The serving contract matches a single rallocd, extended cluster-wide:
// every request is answered with 200, the backend's own 4xx, or
// 429 + Retry-After — never a hang, never a proxy-origin 5xx.
//
// SIGINT/SIGTERM starts the cluster-facing half of a graceful drain:
// /readyz flips to 503 (load balancers stop routing here), in-flight
// requests finish within -drain-timeout, then the process exits 0.
// Backends drain themselves on their own signals.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8447", "listen address (port 0 picks an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	backends := flag.String("backends", "", "comma-separated rallocd base URLs (required)")
	vnodes := flag.Int("vnodes", 64, "virtual nodes per backend on the hash ring")
	replicas := flag.Int("replicas", 0, "distinct backends one request may try (0 = all)")
	maxAttempts := flag.Int("max-attempts", 0, "total upstream tries per request (0 = max(4, 2x backends))")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "active /readyz probe period (negative disables)")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive failures that open a backend's breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", time.Second, "open -> half-open delay")
	defaultDeadline := flag.Duration("default-deadline", 30*time.Second, "per-request budget when the client sends no X-Deadline-Ms; covers all retries")
	maxDeadline := flag.Duration("max-deadline", 2*time.Minute, "upper clamp on client-requested deadlines")
	drain := flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests on shutdown")
	flag.Parse()

	if *backends == "" {
		fail(errors.New("-backends is required (comma-separated rallocd URLs)"))
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	p, err := cluster.New(cluster.Config{
		Backends:         urls,
		VNodes:           *vnodes,
		FailoverReplicas: *replicas,
		MaxAttempts:      *maxAttempts,
		ProbeInterval:    *probeInterval,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		DefaultDeadline:  *defaultDeadline,
		MaxDeadline:      *maxDeadline,
		Telemetry:        &telemetry.Sink{Metrics: telemetry.NewRegistry()},
		OnBreakerTransition: func(backend string, from, to cluster.BreakerState) {
			fmt.Fprintf(os.Stderr, "rallocproxy: breaker %s: %s -> %s\n", backend, from, to)
		},
	})
	if err != nil {
		fail(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fail(err)
		}
	}
	fmt.Fprintf(os.Stderr, "rallocproxy: listening on %s, routing to %d backend(s)\n", bound, len(urls))

	p.Start()
	hs := &http.Server{Handler: p.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fail(err)
	case <-ctx.Done():
	}

	// Cluster drain, proxy side: stop advertising, let in-flight
	// requests (and their retries) finish, then stop the probers.
	fmt.Fprintf(os.Stderr, "rallocproxy: shutting down (drain %v)\n", *drain)
	p.SetReady(false)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "rallocproxy: drain timeout after %v: closing remaining connections\n", *drain)
			hs.Close()
		} else {
			fail(fmt.Errorf("drain: %w", err))
		}
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
	p.Close()
	fmt.Fprintln(os.Stderr, "rallocproxy: drained, bye")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rallocproxy:", err)
	os.Exit(1)
}
