package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

func testRunner(url string) *runner {
	return &runner{
		client:   &http.Client{Timeout: 10 * time.Second},
		urls:     []string{url},
		jobs:     true,
		bodies:   [][]byte{[]byte(`{"units":[{"iloc":"x"}]}`)},
		backends: make(map[string]int64),
	}
}

// fakeJobServer is a minimal async-job backend: one job ID, a scripted
// status sequence, and a fixed NDJSON result stream.
func fakeJobServer(t *testing.T, states []string, results []server.UnitResponse) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var polls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(server.JobResponse{JobID: "job-000001-aabbccdd", State: "queued", Units: len(results)})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		i := int(polls.Add(1)) - 1
		if i >= len(states) {
			i = len(states) - 1
		}
		json.NewEncoder(w).Encode(server.JobResponse{
			JobID: r.PathValue("id"), State: states[i], Units: len(results),
			Backend: "fake-1",
		})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, u := range results {
			enc.Encode(u)
		}
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &polls
}

func TestShootJobHappyPath(t *testing.T) {
	ts, polls := fakeJobServer(t,
		[]string{"queued", "running", "done"},
		[]server.UnitResponse{
			{Name: "a", Code: "add r1,r2 => r3\n", Verified: true, CacheHit: true, CacheTier: "l2"},
			{Name: "b", Code: "sub r1,r2 => r4\n", Verified: true, CacheHit: true, CacheTier: "l1"},
		})
	rn := testRunner(ts.URL)
	rn.expectVerified = true
	sr, err := rn.shootJob(ts.URL, rn.bodies[0])
	if err != nil {
		t.Fatal(err)
	}
	if sr.status != http.StatusOK || sr.backend != "fake-1" {
		t.Fatalf("shot %+v", sr)
	}
	if sr.hits != 2 || sr.diskHits != 1 {
		t.Fatalf("hits %d/%d, want 2 total 1 disk", sr.hits, sr.diskHits)
	}
	if sr.code != "add r1,r2 => r3\nsub r1,r2 => r4\n" {
		t.Fatalf("code %q", sr.code)
	}
	if polls.Load() < 3 {
		t.Fatalf("polled %d times, want the scripted queued/running/done walk", polls.Load())
	}
}

func TestShootJobRejectsUnverifiedUnit(t *testing.T) {
	ts, _ := fakeJobServer(t, []string{"done"},
		[]server.UnitResponse{{Name: "a", Code: "nop\n", Verified: false}})
	rn := testRunner(ts.URL)
	rn.expectVerified = true
	if _, err := rn.shootJob(ts.URL, rn.bodies[0]); err == nil || !strings.Contains(err.Error(), "not verified") {
		t.Fatalf("err = %v, want unit-not-verified", err)
	}
}

// TestShootJobExpiryIsExplicit is the regression for the silent
// 404-after-retention confusion: a 410 carrying code "job_expired"
// must classify as retention expiry — its own counter and an error
// message naming the fix — while a plain 404 stays a generic lookup
// failure.
func TestShootJobExpiryIsExplicit(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(server.JobResponse{JobID: "job-000002-00000000", State: "queued", Units: 1})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusGone)
		json.NewEncoder(w).Encode(server.ErrorResponse{Error: "job expired", Code: "job_expired"})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	rn := testRunner(ts.URL)
	_, err := rn.shootJob(ts.URL, rn.bodies[0])
	if err == nil || !strings.Contains(err.Error(), "expired") || !strings.Contains(err.Error(), "-job-retention") {
		t.Fatalf("err = %v, want explicit expiry message", err)
	}
	if rn.jobsExpired.Load() != 1 {
		t.Fatalf("jobsExpired = %d, want 1", rn.jobsExpired.Load())
	}

	// A plain 404 (wrong ID) is NOT an expiry.
	err = rn.jobLookupErr("job-x", http.StatusNotFound, []byte(`{"error":"unknown job"}`))
	if err == nil || strings.Contains(err.Error(), "retention") {
		t.Fatalf("404 err = %v, want generic lookup failure", err)
	}
	if rn.jobsExpired.Load() != 1 {
		t.Fatalf("jobsExpired moved on a 404: %d", rn.jobsExpired.Load())
	}
}

func TestShootJobShedRespectsRetryBudget(t *testing.T) {
	var submits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		submits.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(server.ErrorResponse{Error: "job queue full"})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	rn := testRunner(ts.URL)
	sr, err := rn.shootJob(ts.URL, rn.bodies[0])
	if err != nil || sr.status != http.StatusTooManyRequests {
		t.Fatalf("budget 0: sr %+v err %v, want clean 429", sr, err)
	}
	if submits.Load() != 1 {
		t.Fatalf("budget 0 submitted %d times", submits.Load())
	}

	rn.retry429 = 2
	sr, err = rn.shootJob(ts.URL, rn.bodies[0])
	if err != nil || sr.status != http.StatusTooManyRequests || sr.retries != 2 {
		t.Fatalf("budget 2: sr %+v err %v", sr, err)
	}
	if submits.Load() != 4 {
		t.Fatalf("budget 2 submitted %d more times, want 3", submits.Load()-1)
	}
}

// TestJobsModeEndToEndAgainstRealServer runs the real async path: a
// live in-process rallocd server, -jobs-shaped body, full
// submit/poll/stream round trip.
func TestJobsModeEndToEndAgainstRealServer(t *testing.T) {
	srv := server.New(server.Config{InstanceID: "load-1"})
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	src, err := os.ReadFile("../../testdata/sumabs.iloc")
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(server.BatchRequest{Units: []server.BatchUnit{{
		Name: "sum",
		ILOC: string(src),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	rn := testRunner(ts.URL)
	rn.bodies = [][]byte{body}
	rn.expectVerified = true
	sr, err := rn.shootJob(ts.URL, rn.bodies[0])
	if err != nil {
		t.Fatal(err)
	}
	if sr.status != http.StatusOK || sr.code == "" || sr.backend != "load-1" {
		t.Fatalf("real-server shot %+v", sr)
	}
}

func TestCheckAuditClean(t *testing.T) {
	cases := []struct {
		name    string
		st      server.AuditStatsResponse
		wantErr string
	}{
		{"clean", server.AuditStatsResponse{Enabled: true, Logged: 5, Flushed: 5}, ""},
		{"idle", server.AuditStatsResponse{Enabled: true}, "recorded nothing"},
		{"dropped", server.AuditStatsResponse{Enabled: true, Logged: 5, Flushed: 3, Dropped: 2}, "dropped 2"},
		{"unflushed", server.AuditStatsResponse{Enabled: true, Logged: 5, Flushed: 4}, "undelivered"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mux := http.NewServeMux()
			mux.HandleFunc("GET /v1/audit", func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Query().Get("flush") != "1" {
					t.Error("checkAuditClean must request a flush barrier")
				}
				json.NewEncoder(w).Encode(tc.st)
			})
			ts := httptest.NewServer(mux)
			t.Cleanup(ts.Close)
			err := checkAuditClean(&http.Client{Timeout: 5 * time.Second}, ts.URL)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatal(err)
				}
			} else if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want %q", err, tc.wantErr)
			}
		})
	}
}

func TestScrapeKeepsJobAndAuditPrefixes(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "store.l1.hits 3\njobs.submitted 2\naudit.dropped 0\nproxy.requests 9\nserver.requests 11\nbad line here\n")
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	m := scrapeStoreMetrics(&http.Client{Timeout: 5 * time.Second}, ts.URL)
	want := map[string]int64{"store.l1.hits": 3, "jobs.submitted": 2, "audit.dropped": 0, "proxy.requests": 9}
	if len(m) != len(want) {
		t.Fatalf("scraped %v, want %v", m, want)
	}
	for k, v := range want {
		if m[k] != v {
			t.Fatalf("scraped %v, want %v", m, want)
		}
	}
}
