// Command rallocload is the closed-loop load generator for rallocd: a
// fixed set of workers each keeps exactly one allocation request in
// flight against POST /v1/allocate, and the tool reports throughput and
// latency quantiles as JSON (BENCH_server.json in CI; cmd/benchdiff
// gates it against the committed baseline).
//
//	rallocload -url http://host:port [-input file.iloc] [-c 4]
//	           [-duration 5s] [-requests N] [-deadline-ms N]
//	           [-strategy name] [-require-strategy name]
//	           [-expect-verified] [-out BENCH_server.json]
//
// -strategy sends the named allocation strategy in each request's
// options. -require-strategy first asks GET /v1/strategies and fails
// unless the server lists the name — the smoke test uses it to assert
// the listing endpoint and a non-default strategy end to end.
//
// -requests N sends exactly N requests (spread across the workers) and
// ignores -duration; otherwise the workers run closed-loop for
// -duration. Shed responses (429) are counted and retried-by-looping —
// they are part of the server's overload contract, not failures. Any
// other non-200, a transport error, a body that fails to decode, or
// (under -expect-verified) a 200 carrying an unverified or failed unit
// is an error; the tool exits nonzero if any occurred, which is how the
// smoke test asserts the "only 200 or 429, every 200 verified"
// contract.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// report is the BENCH_server.json shape. cmd/benchdiff recognizes it by
// the requests_per_sec/p99_ms pair.
type report struct {
	GoVersion      string  `json:"go_version"`
	NumCPU         int     `json:"num_cpu"`
	URL            string  `json:"url"`
	Concurrency    int     `json:"concurrency"`
	DeadlineMs     int     `json:"deadline_ms,omitempty"`
	DurationSec    float64 `json:"duration_sec"`
	Requests       int64   `json:"requests"`
	OK             int64   `json:"ok"`
	Shed           int64   `json:"shed"`
	Errors         int64   `json:"errors"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	MeanMs         float64 `json:"mean_ms"`
	P50Ms          float64 `json:"p50_ms"`
	P90Ms          float64 `json:"p90_ms"`
	P99Ms          float64 `json:"p99_ms"`
	MaxMs          float64 `json:"max_ms"`
}

func main() {
	url := flag.String("url", "", "base URL of the rallocd instance (required)")
	input := flag.String("input", "testdata/sumabs.iloc", "ILOC source file to allocate")
	conc := flag.Int("c", 4, "concurrent closed-loop workers")
	duration := flag.Duration("duration", 5*time.Second, "how long to run (ignored with -requests)")
	requests := flag.Int64("requests", 0, "send exactly this many requests instead of running for -duration")
	deadlineMs := flag.Int("deadline-ms", 0, "X-Deadline-Ms header to send (0 = none)")
	strategy := flag.String("strategy", "", "allocation strategy to request (empty = server default)")
	requireStrategy := flag.String("require-strategy", "", "fail unless GET /v1/strategies lists this name")
	expectVerified := flag.Bool("expect-verified", false, "treat an unverified unit in a 200 as an error")
	out := flag.String("out", "BENCH_server.json", "output file (- for stdout)")
	flag.Parse()
	if *url == "" {
		fail(fmt.Errorf("-url is required"))
	}

	if *requireStrategy != "" {
		if err := checkStrategyListed(*url, *requireStrategy); err != nil {
			fail(err)
		}
	}

	src, err := os.ReadFile(*input)
	if err != nil {
		fail(err)
	}
	areq := server.AllocateRequest{ILOC: string(src)}
	if *strategy != "" {
		areq.Options = &server.OptionsRequest{Strategy: *strategy}
	}
	body, err := json.Marshal(areq)
	if err != nil {
		fail(err)
	}

	var (
		sent, ok, shed, errs atomic.Int64
		mu                   sync.Mutex
		lats                 []time.Duration
		firstErr             atomic.Value
	)
	client := &http.Client{Timeout: 2 * time.Minute}
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []time.Duration
			for {
				if *requests > 0 {
					if sent.Add(1) > *requests {
						break
					}
				} else {
					if time.Now().After(deadline) {
						break
					}
					sent.Add(1)
				}
				t0 := time.Now()
				status, rerr := shoot(client, *url, body, *deadlineMs, *expectVerified)
				lat := time.Since(t0)
				switch {
				case rerr != nil:
					errs.Add(1)
					firstErr.CompareAndSwap(nil, rerr)
				case status == http.StatusTooManyRequests:
					shed.Add(1)
				default:
					ok.Add(1)
					local = append(local, lat)
				}
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	r := report{
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		URL:         *url,
		Concurrency: *conc,
		DeadlineMs:  *deadlineMs,
		DurationSec: elapsed.Seconds(),
		Requests:    ok.Load() + shed.Load() + errs.Load(),
		OK:          ok.Load(),
		Shed:        shed.Load(),
		Errors:      errs.Load(),
	}
	if elapsed > 0 {
		r.RequestsPerSec = float64(r.OK) / elapsed.Seconds()
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		q := func(p float64) time.Duration { return lats[int(p*float64(len(lats)-1))] }
		r.MeanMs = ms(sum / time.Duration(len(lats)))
		r.P50Ms = ms(q(0.50))
		r.P90Ms = ms(q(0.90))
		r.P99Ms = ms(q(0.99))
		r.MaxMs = ms(lats[len(lats)-1])
	}

	data, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "rallocload: %d ok, %d shed, %d error(s) in %.2fs (%.0f req/s, p50 %.2fms, p99 %.2fms)\n",
		r.OK, r.Shed, r.Errors, r.DurationSec, r.RequestsPerSec, r.P50Ms, r.P99Ms)
	if r.Errors > 0 {
		err, _ := firstErr.Load().(error)
		fail(fmt.Errorf("%d request(s) violated the 200-or-429 contract (first: %v)", r.Errors, err))
	}
	if r.OK == 0 {
		fail(fmt.Errorf("no request succeeded"))
	}
}

// shoot sends one allocation request and classifies the answer. Any
// error return counts against the serving contract.
func shoot(client *http.Client, base string, body []byte, deadlineMs int, expectVerified bool) (int, error) {
	req, err := http.NewRequest(http.MethodPost, base+"/v1/allocate", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if deadlineMs > 0 {
		req.Header.Set("X-Deadline-Ms", fmt.Sprintf("%d", deadlineMs))
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	case http.StatusOK:
		var ar server.AllocateResponse
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			return resp.StatusCode, fmt.Errorf("bad 200 body: %w", err)
		}
		for _, u := range ar.Results {
			if u.Error != "" {
				return resp.StatusCode, fmt.Errorf("unit %s failed: %s", u.Name, u.Error)
			}
			if expectVerified && !u.Verified {
				return resp.StatusCode, fmt.Errorf("unit %s not verified", u.Name)
			}
		}
		return resp.StatusCode, nil
	default:
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return resp.StatusCode, fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
}

// checkStrategyListed asserts GET /v1/strategies answers 200 and lists
// the named strategy.
func checkStrategyListed(base, name string) error {
	resp, err := http.Get(base + "/v1/strategies")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET /v1/strategies: status %d: %s", resp.StatusCode, b)
	}
	var sr server.StrategiesResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return fmt.Errorf("GET /v1/strategies: bad body: %w", err)
	}
	listed := make([]string, len(sr.Strategies))
	for i, si := range sr.Strategies {
		listed[i] = si.Name
		if si.Name == name {
			return nil
		}
	}
	return fmt.Errorf("GET /v1/strategies does not list %q (got %v)", name, listed)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rallocload:", err)
	os.Exit(1)
}
