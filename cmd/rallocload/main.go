// Command rallocload is the closed-loop load generator for rallocd: a
// fixed set of workers each keeps exactly one allocation request in
// flight against POST /v1/allocate, and the tool reports throughput and
// latency quantiles as JSON (BENCH_server.json in CI; cmd/benchdiff
// gates it against the committed baseline).
//
//	rallocload -url http://host:port[,http://host:port...]
//	           [-input file.iloc | -corpus dir] [-c 4] [-jobs]
//	           [-duration 5s] [-requests N] [-deadline-ms N]
//	           [-retry-429 N] [-strategy name] [-require-strategy name]
//	           [-machine name] [-require-machine name]
//	           [-phases cold,warm] [-expect-verified]
//	           [-require-cache-hits N] [-require-disk-hits N]
//	           [-code-out file] [-out BENCH_server.json]
//
// -url accepts a comma-separated target list; workers spread requests
// round-robin across them (a set of rallocd replicas, or one or more
// rallocproxy front ends). Readiness waiting and strategy checking run
// against every target; the output counts 200s per X-Ralloc-Backend
// instance in "backends", which is how the cluster smoke test finds a
// victim backend that is actually serving before killing it.
//
// -jobs switches each worker from the synchronous POST /v1/allocate to
// the async job lifecycle: submit the same workload as a one-unit
// POST /v1/jobs, poll GET /v1/jobs/{id} until the job is terminal,
// stream GET /v1/jobs/{id}/results, and hold the NDJSON units to the
// same verified/no-error bar as a sync 200. A submit shed with 429
// retries under the same -retry-429 budget. A poll or stream answered
// 410 with code "job_expired" — the job was reaped by retention before
// this worker read it — is counted separately as "jobs_expired" and
// reported explicitly (raise the daemon's -job-retention or poll
// sooner), distinct from the plain 404 of an unknown ID.
//
// -retry-429 N retries a shed request up to N times, honoring the
// response's Retry-After header (capped at 2s per wait). Retries are
// counted separately as "retries_429"; a request still shed after its
// retry budget counts as shed, exactly like -retry-429 0.
//
// -strategy sends the named allocation strategy in each request's
// options. -require-strategy first asks GET /v1/strategies and fails
// unless the server lists the name — the smoke test uses it to assert
// the listing endpoint and a non-default strategy end to end.
//
// -machine sends the named target machine (a zoo name or regs=N) in
// each request's options; an unknown name exits nonzero up front,
// listing the registered ones. -require-machine first asks
// GET /v1/machines and fails unless the server lists the name.
//
// -corpus replaces -input with a written corpus directory (see
// cmd/rcorpus): its manifest is hash-verified, and workers round-robin
// the corpus units as request bodies — heavy, diverse traffic instead
// of one fixed routine. Each unit is one request (a unit file's
// routines allocate together, exactly as /v1/allocate accepts them).
//
// -requests N sends exactly N requests (spread across the workers) and
// ignores -duration; otherwise the workers run closed-loop for
// -duration. Shed responses (429) are counted and retried-by-looping —
// they are part of the server's overload contract, not failures. Any
// other non-200, a transport error, a body that fails to decode, or
// (under -expect-verified) a 200 carrying an unverified or failed unit
// is an error; the tool exits nonzero if any occurred, which is how the
// smoke test asserts the "only 200 or 429, every 200 verified"
// contract.
//
// -phases runs the same workload once per named phase, back to back
// against the same daemon, and reports each phase separately in the
// output's "phases" array (the top-level numbers stay the aggregate).
// The canonical use is "-phases cold,warm": the first pass populates
// the server's result cache, the second measures warm serving, and
// cmd/benchdiff gates the warm phase's throughput and p99 on their own
// baselines.
//
// -require-cache-hits / -require-disk-hits fail the run unless the
// servers' 200 responses reported at least N cache hits (respectively
// disk-tier hits) in total — the restart/warm-up smoke test uses them
// to prove persistence end to end. -code-out writes the allocated code
// of the first successful response to a file so two runs can be
// compared byte for byte.
//
// -require-audit-clean asks GET /v1/audit?flush=1 (a synchronous flush
// barrier; through rallocproxy it aggregates the whole cluster) after
// the run and fails unless the audit stream logged at least one record,
// dropped none, and flushed everything it logged — how the jobs smoke
// test proves "one audit record per verdict, none lost".
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/corpus"
	"repro/internal/machines"
	"repro/internal/server"
)

// report is the BENCH_server.json shape. cmd/benchdiff recognizes it by
// the requests_per_sec/p99_ms pair. With -phases the top level stays
// the aggregate across all phases and "phases" carries the per-phase
// breakdown benchdiff gates individually.
type report struct {
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	URL         string `json:"url"`
	Concurrency int    `json:"concurrency"`
	DeadlineMs  int    `json:"deadline_ms,omitempty"`
	// JobsMode marks a run driven through the async job API
	// (submit/poll/stream) instead of POST /v1/allocate; JobsExpired
	// counts polls answered 410 "job_expired" — jobs reaped by
	// retention before this tool read their results.
	JobsMode       bool    `json:"jobs_mode,omitempty"`
	JobsExpired    int64   `json:"jobs_expired,omitempty"`
	DurationSec    float64 `json:"duration_sec"`
	Requests       int64   `json:"requests"`
	OK             int64   `json:"ok"`
	Shed           int64   `json:"shed"`
	Retries429     int64   `json:"retries_429,omitempty"`
	Errors         int64   `json:"errors"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	MeanMs         float64 `json:"mean_ms"`
	P50Ms          float64 `json:"p50_ms"`
	P90Ms          float64 `json:"p90_ms"`
	P99Ms          float64 `json:"p99_ms"`
	MaxMs          float64 `json:"max_ms"`
	// CacheHits/CacheDiskHits total what the 200 responses reported:
	// units served from the daemon's result cache, and the subset served
	// by its persistent disk tier.
	CacheHits     int64 `json:"cache_hits"`
	CacheDiskHits int64 `json:"cache_disk_hits,omitempty"`
	// Backends counts 200 responses per X-Ralloc-Backend instance —
	// through the routing proxy this is the observed request spread, and
	// the cluster smoke test greps it to pick a victim that is serving.
	Backends map[string]int64 `json:"backends,omitempty"`
	// Phases carries the per-phase breakdown when -phases is set.
	Phases []phaseReport `json:"phases,omitempty"`
	// ServerStore is the daemon's store.* metrics (per-tier cache
	// counters) scraped from GET /metrics after the run; absent when the
	// endpoint has none.
	ServerStore map[string]int64 `json:"server_store,omitempty"`
}

// phaseReport is one -phases leg.
type phaseReport struct {
	Name           string  `json:"name"`
	DurationSec    float64 `json:"duration_sec"`
	Requests       int64   `json:"requests"`
	OK             int64   `json:"ok"`
	Shed           int64   `json:"shed"`
	Retries429     int64   `json:"retries_429,omitempty"`
	Errors         int64   `json:"errors"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	MeanMs         float64 `json:"mean_ms"`
	P50Ms          float64 `json:"p50_ms"`
	P90Ms          float64 `json:"p90_ms"`
	P99Ms          float64 `json:"p99_ms"`
	MaxMs          float64 `json:"max_ms"`
	CacheHits      int64   `json:"cache_hits"`
	CacheDiskHits  int64   `json:"cache_disk_hits,omitempty"`
}

// shotResult is what one request contributed beyond its status code.
type shotResult struct {
	status   int
	hits     int64
	diskHits int64
	code     string
	backend  string
	retries  int64
}

func main() {
	url := flag.String("url", "", "base URL(s) of rallocd/rallocproxy instances, comma-separated (required); workers round-robin across them")
	input := flag.String("input", "testdata/sumabs.iloc", "ILOC source file to allocate")
	conc := flag.Int("c", 4, "concurrent closed-loop workers")
	jobsMode := flag.Bool("jobs", false, "drive the async job API (submit, poll, stream results) instead of POST /v1/allocate")
	duration := flag.Duration("duration", 5*time.Second, "how long to run each phase (ignored with -requests)")
	requests := flag.Int64("requests", 0, "send exactly this many requests per phase instead of running for -duration")
	deadlineMs := flag.Int("deadline-ms", 0, "X-Deadline-Ms header to send (0 = none)")
	retry429 := flag.Int("retry-429", 0, "retry a shed (429) request up to N times, honoring Retry-After")
	strategy := flag.String("strategy", "", "allocation strategy to request (empty = server default)")
	requireStrategy := flag.String("require-strategy", "", "fail unless GET /v1/strategies lists this name")
	machine := flag.String("machine", "", "target machine to request: a zoo name or regs=N (empty = server default)")
	requireMachine := flag.String("require-machine", "", "fail unless GET /v1/machines lists this name")
	corpusDir := flag.String("corpus", "", "replay a written corpus directory (see cmd/rcorpus) instead of -input; units round-robin as request bodies")
	phases := flag.String("phases", "", "comma-separated phase names; the workload runs once per phase (e.g. cold,warm)")
	expectVerified := flag.Bool("expect-verified", false, "treat an unverified unit in a 200 as an error")
	requireCacheHits := flag.Int64("require-cache-hits", -1, "fail unless responses reported at least N cache hits in total")
	requireDiskHits := flag.Int64("require-disk-hits", -1, "fail unless responses reported at least N disk-tier cache hits in total")
	requireAuditClean := flag.Bool("require-audit-clean", false, "after the run, fail unless GET /v1/audit?flush=1 reports records logged, zero dropped, all flushed")
	codeOut := flag.String("code-out", "", "write the allocated code of the first successful response to this file")
	waitReady := flag.Duration("wait-ready", 0, "poll GET /readyz until 200 for up to this long before shooting (0 = don't wait)")
	out := flag.String("out", "BENCH_server.json", "output file (- for stdout)")
	flag.Parse()
	if *url == "" {
		fail(fmt.Errorf("-url is required"))
	}
	var targets []string
	for _, u := range strings.Split(*url, ",") {
		if u = strings.TrimSpace(u); u != "" {
			targets = append(targets, strings.TrimSuffix(u, "/"))
		}
	}
	if len(targets) == 0 {
		fail(fmt.Errorf("-url lists no targets"))
	}

	if *machine != "" {
		// Resolve up front: a typo exits nonzero before any traffic,
		// with the error naming every registered machine.
		if _, err := machines.Lookup(*machine); err != nil {
			fail(err)
		}
	}

	for _, t := range targets {
		if *waitReady > 0 {
			if err := awaitReady(t, *waitReady); err != nil {
				fail(err)
			}
		}
		if *requireStrategy != "" {
			if err := checkStrategyListed(t, *requireStrategy); err != nil {
				fail(err)
			}
		}
		if *requireMachine != "" {
			if err := checkMachineListed(t, *requireMachine); err != nil {
				fail(err)
			}
		}
	}

	// The request options every body carries (nil when all defaults).
	var optsReq *server.OptionsRequest
	if *strategy != "" || *machine != "" {
		optsReq = &server.OptionsRequest{Strategy: *strategy, Machine: *machine}
	}

	// The workload: one fixed -input body, or every unit of a written
	// corpus, each unit one request body the workers round-robin.
	var sources []string
	if *corpusDir != "" {
		m, cunits, err := corpus.Load(*corpusDir)
		if err != nil {
			fail(err)
		}
		for _, u := range cunits {
			sources = append(sources, u.Text)
		}
		fmt.Fprintf(os.Stderr, "rallocload: corpus %s: %d units, %d routines (spec %s)\n",
			*corpusDir, m.Units, m.Routines, m.Spec)
	} else {
		src, err := os.ReadFile(*input)
		if err != nil {
			fail(err)
		}
		sources = []string{string(src)}
	}
	bodies := make([][]byte, len(sources))
	for i, src := range sources {
		var body []byte
		var err error
		if *jobsMode {
			// The job body is the same workload as a one-unit batch; the
			// server's async path must hold it to the same bar.
			jreq := server.BatchRequest{Units: []server.BatchUnit{{ILOC: src}}, Options: optsReq}
			body, err = json.Marshal(jreq)
		} else {
			body, err = json.Marshal(server.AllocateRequest{ILOC: src, Options: optsReq})
		}
		if err != nil {
			fail(err)
		}
		bodies[i] = body
	}

	phaseNames := []string{""}
	if *phases != "" {
		phaseNames = strings.Split(*phases, ",")
		for _, n := range phaseNames {
			if strings.TrimSpace(n) == "" {
				fail(fmt.Errorf("-phases: empty phase name in %q", *phases))
			}
		}
	}

	run := runner{
		client:         &http.Client{Timeout: 2 * time.Minute},
		urls:           targets,
		bodies:         bodies,
		conc:           *conc,
		duration:       *duration,
		requests:       *requests,
		deadlineMs:     *deadlineMs,
		retry429:       *retry429,
		jobs:           *jobsMode,
		expectVerified: *expectVerified,
		backends:       make(map[string]int64),
	}

	r := report{
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		URL:         *url,
		Concurrency: *conc,
		DeadlineMs:  *deadlineMs,
		JobsMode:    *jobsMode,
	}
	var allLats []time.Duration
	for _, name := range phaseNames {
		pr, lats := run.phase(name)
		if name != "" {
			r.Phases = append(r.Phases, pr)
			fmt.Fprintf(os.Stderr, "rallocload: phase %s: %d ok, %d shed, %d error(s) in %.2fs (%.0f req/s, p99 %.2fms, %d cache hits, %d from disk)\n",
				pr.Name, pr.OK, pr.Shed, pr.Errors, pr.DurationSec, pr.RequestsPerSec, pr.P99Ms, pr.CacheHits, pr.CacheDiskHits)
		}
		r.DurationSec += pr.DurationSec
		r.Requests += pr.Requests
		r.OK += pr.OK
		r.Shed += pr.Shed
		r.Retries429 += pr.Retries429
		r.Errors += pr.Errors
		r.CacheHits += pr.CacheHits
		r.CacheDiskHits += pr.CacheDiskHits
		allLats = append(allLats, lats...)
	}
	if r.DurationSec > 0 {
		r.RequestsPerSec = float64(r.OK) / r.DurationSec
	}
	r.MeanMs, r.P50Ms, r.P90Ms, r.P99Ms, r.MaxMs = quantiles(allLats)
	r.JobsExpired = run.jobsExpired.Load()
	r.Backends = run.snapshotBackends()
	r.ServerStore = scrapeStoreMetrics(run.client, targets[0])

	if *codeOut != "" {
		code, _ := run.firstCode.Load().(string)
		if code == "" {
			fail(fmt.Errorf("-code-out: no successful response carried code"))
		}
		if err := os.WriteFile(*codeOut, []byte(code), 0o644); err != nil {
			fail(err)
		}
	}

	data, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "rallocload: %d ok, %d shed (%d retried), %d error(s) in %.2fs (%.0f req/s, p50 %.2fms, p99 %.2fms, %d cache hits, %d from disk)\n",
		r.OK, r.Shed, r.Retries429, r.Errors, r.DurationSec, r.RequestsPerSec, r.P50Ms, r.P99Ms, r.CacheHits, r.CacheDiskHits)
	if r.Errors > 0 {
		err, _ := run.firstErr.Load().(error)
		fail(fmt.Errorf("%d request(s) violated the 200-or-429 contract (first: %v)", r.Errors, err))
	}
	if r.OK == 0 {
		fail(fmt.Errorf("no request succeeded"))
	}
	if *requireCacheHits >= 0 && r.CacheHits < *requireCacheHits {
		fail(fmt.Errorf("responses reported %d cache hit(s), want at least %d", r.CacheHits, *requireCacheHits))
	}
	if *requireDiskHits >= 0 && r.CacheDiskHits < *requireDiskHits {
		fail(fmt.Errorf("responses reported %d disk-tier hit(s), want at least %d", r.CacheDiskHits, *requireDiskHits))
	}
	if *requireAuditClean {
		if err := checkAuditClean(run.client, targets[0]); err != nil {
			fail(err)
		}
	}
}

// checkAuditClean flushes and reads the target's audit stream counters
// and holds them to the lossless bar: records were logged, none were
// dropped, and the flush barrier delivered every one to the sink.
func checkAuditClean(client *http.Client, base string) error {
	resp, err := client.Get(base + "/v1/audit?flush=1")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET /v1/audit: status %d: %s", resp.StatusCode, b)
	}
	var st server.AuditStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("GET /v1/audit: bad body: %w", err)
	}
	if !st.Enabled || st.Logged == 0 {
		return fmt.Errorf("audit stream recorded nothing (%+v)", st)
	}
	if st.Dropped != 0 {
		return fmt.Errorf("audit stream dropped %d record(s) (%+v)", st.Dropped, st)
	}
	if st.Flushed < st.Logged {
		return fmt.Errorf("audit flush barrier left %d record(s) undelivered (%+v)", st.Logged-st.Flushed, st)
	}
	return nil
}

// runner holds the fixed workload shared by all phases plus the
// cross-phase capture slots (first error, first allocated code) and the
// cross-phase per-backend attribution counts.
type runner struct {
	client         *http.Client
	urls           []string
	bodies         [][]byte
	conc           int
	duration       time.Duration
	requests       int64
	deadlineMs     int
	retry429       int
	jobs           bool
	expectVerified bool
	firstErr       atomic.Value
	firstCode      atomic.Value
	next           atomic.Int64
	nextBody       atomic.Int64
	jobsExpired    atomic.Int64

	mu       sync.Mutex
	backends map[string]int64
}

// snapshotBackends copies the per-backend 200 counts for the report.
func (rn *runner) snapshotBackends() map[string]int64 {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	if len(rn.backends) == 0 {
		return nil
	}
	out := make(map[string]int64, len(rn.backends))
	for k, v := range rn.backends {
		out[k] = v
	}
	return out
}

// phase runs one closed-loop leg of the workload and summarizes it.
func (rn *runner) phase(name string) (phaseReport, []time.Duration) {
	var (
		sent, ok, shed, errs atomic.Int64
		retries              atomic.Int64
		hits, diskHits       atomic.Int64
		mu                   sync.Mutex
		lats                 []time.Duration
	)
	deadline := time.Now().Add(rn.duration)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < rn.conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []time.Duration
			for {
				if rn.requests > 0 {
					if sent.Add(1) > rn.requests {
						break
					}
				} else {
					if time.Now().After(deadline) {
						break
					}
					sent.Add(1)
				}
				t0 := time.Now()
				sr, rerr := rn.shoot()
				lat := time.Since(t0)
				retries.Add(sr.retries)
				switch {
				case rerr != nil:
					errs.Add(1)
					rn.firstErr.CompareAndSwap(nil, rerr)
				case sr.status == http.StatusTooManyRequests:
					shed.Add(1)
				default:
					ok.Add(1)
					hits.Add(sr.hits)
					diskHits.Add(sr.diskHits)
					if sr.code != "" {
						rn.firstCode.CompareAndSwap(nil, sr.code)
					}
					if sr.backend != "" {
						rn.mu.Lock()
						rn.backends[sr.backend]++
						rn.mu.Unlock()
					}
					local = append(local, lat)
				}
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	pr := phaseReport{
		Name:          name,
		DurationSec:   elapsed.Seconds(),
		Requests:      ok.Load() + shed.Load() + errs.Load(),
		OK:            ok.Load(),
		Shed:          shed.Load(),
		Retries429:    retries.Load(),
		Errors:        errs.Load(),
		CacheHits:     hits.Load(),
		CacheDiskHits: diskHits.Load(),
	}
	if elapsed > 0 {
		pr.RequestsPerSec = float64(pr.OK) / elapsed.Seconds()
	}
	pr.MeanMs, pr.P50Ms, pr.P90Ms, pr.P99Ms, pr.MaxMs = quantiles(lats)
	return pr, lats
}

// shoot sends one allocation request — round-robin across the targets —
// and classifies the answer. A 429 is retried up to -retry-429 times,
// honoring the response's Retry-After (capped so a hostile hint cannot
// stall a worker); sr.retries counts the retries spent. Any error
// return counts against the serving contract.
func (rn *runner) shoot() (shotResult, error) {
	base := rn.urls[int(rn.next.Add(1)-1)%len(rn.urls)]
	body := rn.bodies[int(rn.nextBody.Add(1)-1)%len(rn.bodies)]
	if rn.jobs {
		return rn.shootJob(base, body)
	}
	return rn.shootSync(base, body)
}

// shootSync drives one synchronous POST /v1/allocate round trip.
func (rn *runner) shootSync(base string, body []byte) (shotResult, error) {
	var sr shotResult
	for {
		req, err := http.NewRequest(http.MethodPost, base+"/v1/allocate", bytes.NewReader(body))
		if err != nil {
			return sr, err
		}
		req.Header.Set("Content-Type", "application/json")
		if rn.deadlineMs > 0 {
			req.Header.Set("X-Deadline-Ms", fmt.Sprintf("%d", rn.deadlineMs))
		}
		resp, err := rn.client.Do(req)
		if err != nil {
			return sr, err
		}
		done, err := rn.classify(&sr, resp)
		if done || err != nil {
			return sr, err
		}
		// Shed with retry budget left: honor Retry-After, go again.
		sr.retries++
		time.Sleep(retryWait(resp.Header))
	}
}

// retryWait turns a 429's Retry-After into a bounded sleep: the header's
// delay-seconds capped at 2s, or 100ms when absent/unparseable.
func retryWait(h http.Header) time.Duration {
	if sec, err := strconv.Atoi(h.Get("Retry-After")); err == nil && sec > 0 {
		d := time.Duration(sec) * time.Second
		if d > 2*time.Second {
			d = 2 * time.Second
		}
		return d
	}
	return 100 * time.Millisecond
}

// classify consumes one response. done=false means "shed, and the retry
// budget allows another attempt".
func (rn *runner) classify(sr *shotResult, resp *http.Response) (done bool, err error) {
	defer resp.Body.Close()
	sr.status = resp.StatusCode
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		return sr.retries >= int64(rn.retry429), nil
	case http.StatusOK:
		var ar server.AllocateResponse
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			return true, fmt.Errorf("bad 200 body: %w", err)
		}
		var code strings.Builder
		for _, u := range ar.Results {
			if u.Error != "" {
				return true, fmt.Errorf("unit %s failed: %s", u.Name, u.Error)
			}
			if rn.expectVerified && !u.Verified {
				return true, fmt.Errorf("unit %s not verified", u.Name)
			}
			code.WriteString(u.Code)
		}
		sr.hits = int64(ar.Stats.CacheHits)
		sr.diskHits = int64(ar.Stats.CacheDiskHits)
		sr.code = code.String()
		sr.backend = resp.Header.Get(server.BackendHeader)
		return true, nil
	default:
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return true, fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
}

// shootJob drives one full async job lifecycle: submit, poll until
// terminal, stream results, and hold every streamed unit to the same
// verified/no-error bar as a sync 200. Submit sheds retry under the
// -retry-429 budget like the sync path; poll and stream must answer
// 200 (a 410 "job_expired" is the explicit retention-expiry verdict,
// counted in jobs_expired).
func (rn *runner) shootJob(base string, body []byte) (shotResult, error) {
	var sr shotResult
	var jr server.JobResponse
	for {
		req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return sr, err
		}
		req.Header.Set("Content-Type", "application/json")
		if rn.deadlineMs > 0 {
			req.Header.Set("X-Deadline-Ms", fmt.Sprintf("%d", rn.deadlineMs))
		}
		resp, err := rn.client.Do(req)
		if err != nil {
			return sr, err
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if rerr != nil {
			return sr, rerr
		}
		sr.status = resp.StatusCode
		if resp.StatusCode == http.StatusTooManyRequests {
			if sr.retries >= int64(rn.retry429) {
				return sr, nil
			}
			sr.retries++
			time.Sleep(retryWait(resp.Header))
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return sr, fmt.Errorf("job submit: status %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &jr); err != nil {
			return sr, fmt.Errorf("job submit: bad 200 body: %w", err)
		}
		break
	}
	if jr.JobID == "" {
		return sr, fmt.Errorf("job submit: 200 without job_id")
	}

	final, err := rn.pollJob(base, jr.JobID)
	if err != nil {
		return sr, err
	}
	if final.State != "done" {
		return sr, fmt.Errorf("job %s finished %s, want done", jr.JobID, final.State)
	}
	sr.backend = final.Backend
	return sr, rn.streamJob(&sr, base, jr.JobID)
}

// pollJob polls a job's status through to a terminal state.
func (rn *runner) pollJob(base, id string) (server.JobResponse, error) {
	var jr server.JobResponse
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := rn.client.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return jr, err
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if rerr != nil {
			return jr, rerr
		}
		if resp.StatusCode != http.StatusOK {
			return jr, rn.jobLookupErr(id, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &jr); err != nil {
			return jr, fmt.Errorf("job poll: bad 200 body: %w", err)
		}
		if jr.State == "done" || jr.State == "canceled" {
			return jr, nil
		}
		if time.Now().After(deadline) {
			return jr, fmt.Errorf("job %s still %s after 2m", id, jr.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// streamJob reads the job's NDJSON result stream and applies the sync
// path's per-unit checks, accumulating cache-hit attribution into sr.
func (rn *runner) streamJob(sr *shotResult, base, id string) error {
	resp, err := rn.client.Get(base + "/v1/jobs/" + id + "/results")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return rn.jobLookupErr(id, resp.StatusCode, body)
	}
	var code strings.Builder
	units := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var u server.UnitResponse
		if err := json.Unmarshal(sc.Bytes(), &u); err != nil {
			return fmt.Errorf("job results: bad NDJSON line: %w", err)
		}
		units++
		if u.Error != "" {
			return fmt.Errorf("unit %s failed: %s", u.Name, u.Error)
		}
		if rn.expectVerified && !u.Verified {
			return fmt.Errorf("unit %s not verified", u.Name)
		}
		if u.CacheHit {
			sr.hits++
			if u.CacheTier == "l2" {
				sr.diskHits++
			}
		}
		code.WriteString(u.Code)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("job results: %w", err)
	}
	if units == 0 {
		return fmt.Errorf("job %s streamed no units", id)
	}
	sr.code = code.String()
	return nil
}

// jobLookupErr classifies a non-200 job poll/stream answer. A 410
// whose body carries code "job_expired" is the retention contract
// speaking — the job was reaped before this worker read it — counted
// separately from errors a wrong ID would produce (404) so a run can
// tell "retention too short for this poll cadence" apart from a bug.
func (rn *runner) jobLookupErr(id string, status int, body []byte) error {
	var er server.ErrorResponse
	if json.Unmarshal(body, &er) == nil && status == http.StatusGone && er.Code == "job_expired" {
		rn.jobsExpired.Add(1)
		return fmt.Errorf("job %s expired before its results were read (410 %s): raise the daemon's -job-retention or poll sooner", id, er.Code)
	}
	return fmt.Errorf("job %s lookup: status %d: %s", id, status, body)
}

// quantiles summarizes a latency sample as (mean, p50, p90, p99, max)
// in milliseconds. An empty sample is all zeros.
func quantiles(lats []time.Duration) (mean, p50, p90, p99, max float64) {
	if len(lats) == 0 {
		return
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, l := range sorted {
		sum += l
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	q := func(p float64) time.Duration { return sorted[int(p*float64(len(sorted)-1))] }
	return ms(sum / time.Duration(len(sorted))), ms(q(0.50)), ms(q(0.90)), ms(q(0.99)), ms(sorted[len(sorted)-1])
}

// scrapeStoreMetrics fetches GET /metrics from the first target and
// keeps the store.* lines (a daemon's per-tier cache counters), the
// proxy.* lines (a rallocproxy's routing/retry/breaker counters), the
// jobs.* lines (async job lifecycle counters) and the audit.* lines
// (audit-stream delivery/drop counters) as a name→value map. Best
// effort: a missing endpoint or unparsable line just yields nil/less.
func scrapeStoreMetrics(client *http.Client, base string) map[string]int64 {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	keep := func(name string) bool {
		for _, p := range []string{"store.", "proxy.", "jobs.", "audit."} {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	var m map[string]int64
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 || !keep(fields[0]) {
			continue
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		if m == nil {
			m = make(map[string]int64)
		}
		m[fields[0]] = v
	}
	return m
}

// awaitReady polls /readyz until the daemon reports ready — a booting
// rallocd keeps readiness at 503 until its -warm-from import lands, so
// waiting here is what lets a smoke test assert "warm before the first
// request".
func awaitReady(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: 2 * time.Second}
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server not ready after %v", timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// checkStrategyListed asserts GET /v1/strategies answers 200 and lists
// the named strategy.
func checkStrategyListed(base, name string) error {
	resp, err := http.Get(base + "/v1/strategies")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET /v1/strategies: status %d: %s", resp.StatusCode, b)
	}
	var sr server.StrategiesResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return fmt.Errorf("GET /v1/strategies: bad body: %w", err)
	}
	listed := make([]string, len(sr.Strategies))
	for i, si := range sr.Strategies {
		listed[i] = si.Name
		if si.Name == name {
			return nil
		}
	}
	return fmt.Errorf("GET /v1/strategies does not list %q (got %v)", name, listed)
}

// checkMachineListed asserts GET /v1/machines answers 200 and lists the
// named target machine.
func checkMachineListed(base, name string) error {
	resp, err := http.Get(base + "/v1/machines")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET /v1/machines: status %d: %s", resp.StatusCode, b)
	}
	var mr server.MachinesResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return fmt.Errorf("GET /v1/machines: bad body: %w", err)
	}
	listed := make([]string, len(mr.Machines))
	for i, mi := range mr.Machines {
		listed[i] = mi.Name
		if mi.Name == name {
			return nil
		}
	}
	return fmt.Errorf("GET /v1/machines does not list %q (got %v)", name, listed)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rallocload:", err)
	os.Exit(1)
}
