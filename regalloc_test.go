package regalloc

import (
	"context"
	"errors"
	"strings"
	"testing"
)

const apiSample = `
routine triple(r1)
entry:
    getparam r1, 0
    muli r2, r1, 3
    retr r2
`

func TestParseAllocateRun(t *testing.T) {
	rt, err := Parse(apiSample)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(rt); err != nil {
		t.Fatal(err)
	}
	res, err := Allocate(rt, Options{Machine: StandardMachine(), Mode: ModeRemat})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(res.Routine, Int(14))
	if err != nil {
		t.Fatal(err)
	}
	if out.RetInt != 42 {
		t.Fatalf("triple(14) = %d", out.RetInt)
	}
}

func TestRunUnallocated(t *testing.T) {
	out, err := Run(MustParse(apiSample), Int(5))
	if err != nil {
		t.Fatal(err)
	}
	if out.RetInt != 15 {
		t.Fatalf("triple(5) = %d", out.RetInt)
	}
}

func TestBuilderThroughAPI(t *testing.T) {
	b := NewBuilder("double")
	p := b.IntParam()
	r := b.Int()
	b.Block("entry")
	b.Getparam(p, 0)
	b.Add(r, p, p)
	b.Retr(r)
	rt := b.Routine()
	out, err := Run(rt, Int(21))
	if err != nil {
		t.Fatal(err)
	}
	if out.RetInt != 42 {
		t.Fatalf("double(21) = %d", out.RetInt)
	}
}

func TestMachines(t *testing.T) {
	if StandardMachine().Regs[0] != 16 || HugeMachine().Regs[0] != 128 {
		t.Fatal("machine presets wrong")
	}
	if MachineWithRegs(9).Regs[1] != 9 {
		t.Fatal("WithRegs wrong")
	}
}

func TestMachineZooAndCorpusFacade(t *testing.T) {
	names := MachineNames()
	if len(names) < 5 || len(Machines()) != len(names) {
		t.Fatalf("zoo too small: %v", names)
	}
	m, err := MachineByName("embedded-8")
	if err != nil || m.Regs[0] != 8 {
		t.Fatalf("embedded-8: %v %+v", err, m)
	}
	if s := StarvedMachine(m); s.Regs[0] >= m.Regs[0] || s.Validate() != nil {
		t.Fatalf("starved variant wrong: %+v", s)
	}
	var miss *UnknownMachineError
	if _, err := MachineByName("vax"); !errors.As(err, &miss) || len(miss.Registered) != len(names) {
		t.Fatalf("miss = %v", err)
	}

	spec, err := ParseCorpusSpec("count=2,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	units, err := GenerateCorpus(spec)
	if err != nil || len(units) != 2 {
		t.Fatalf("generate: %v (%d units)", err, len(units))
	}
	dir := t.TempDir()
	man, err := WriteCorpus(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	man2, loaded, err := LoadCorpus(dir)
	if err != nil || man2.SHA256 != man.SHA256 || len(loaded) != len(units) {
		t.Fatalf("load: %v (%+v vs %+v)", err, man2, man)
	}
	if loaded[0].Text != units[0].Text {
		t.Fatal("written corpus differs from generated corpus")
	}
}

func TestSuiteAccess(t *testing.T) {
	ks := Suite()
	if len(ks) < 15 {
		t.Fatalf("suite too small: %d", len(ks))
	}
	if KernelByName("sgemm") == nil {
		t.Fatal("sgemm missing")
	}
}

func TestTranslateC(t *testing.T) {
	c, err := TranslateC(MustParse(apiSample))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c, "long triple(long p0)") {
		t.Fatalf("translation wrong:\n%s", c)
	}
}

func TestExperimentEntryPoints(t *testing.T) {
	if _, err := Figure2(); err != nil {
		t.Fatal(err)
	}
	if _, err := Figure4(); err != nil {
		t.Fatal(err)
	}
	r1, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if r1.RematCycles >= r1.ChaitinCycles {
		t.Fatal("figure 1 shape lost at API level")
	}
	r3, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.Tags) == 0 {
		t.Fatal("figure 3 empty")
	}
}

func TestPrintRoundTrip(t *testing.T) {
	rt := MustParse(apiSample)
	rt2, err := Parse(Print(rt))
	if err != nil {
		t.Fatal(err)
	}
	if Print(rt2) != Print(rt) {
		t.Fatal("round trip unstable")
	}
}

func TestProgramAPI(t *testing.T) {
	rts, err := ParseProgram(`
routine main()
entry:
    ldi r1, 6
    setarg r1, 0
    call twice
    getret r2
    retr r2

routine twice(r1)
entry:
    getparam r1, 0
    add r2, r1, r1
    retr r2
`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunProgram(rts[0], rts[1:])
	if err != nil {
		t.Fatal(err)
	}
	if out.RetInt != 12 {
		t.Fatalf("twice(6) = %d", out.RetInt)
	}
}

func TestFloatArgAPI(t *testing.T) {
	out, err := Run(MustParse(`
routine half(f1)
entry:
    fgetparam f1, 0
    fldi f2, 0.5
    fmul f1, f1, f2
    retf f1
`), Float(9))
	if err != nil {
		t.Fatal(err)
	}
	if out.RetFloat != 4.5 {
		t.Fatalf("half(9) = %g", out.RetFloat)
	}
}

func TestTableAPIs(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweeps are slow-ish")
	}
	rows, err := Table1(Table1Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(FormatTable1(rows), "Table 1") {
		t.Fatal("Table 1 formatting broken")
	}
	cols, err := Table2(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(FormatTable2(cols), "repvid") {
		t.Fatal("Table 2 formatting broken")
	}
}

// TestDriverFacade exercises the batch-allocation surface: a module of
// routines allocated concurrently with a shared result cache, results
// in input order, and Stats/CacheStats exposed through the facade.
func TestDriverFacade(t *testing.T) {
	units := []DriverUnit{
		{Name: "a", Routine: MustParse(apiSample)},
		{Name: "b", Routine: MustParse(apiSample)}, // identical → cache hit on rerun
	}
	cache := NewResultCache(0)
	d := NewDriver(DriverConfig{
		Options: Options{Machine: StandardMachine(), Mode: ModeRemat},
		Workers: 4,
		Cache:   cache,
	})
	batch := d.Run(context.Background(), units)
	if err := batch.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if batch.Results[0].Name != "a" || batch.Results[1].Name != "b" {
		t.Fatal("results out of order")
	}
	for _, r := range batch.Results {
		out, err := Run(r.Result.Routine, Int(14))
		if err != nil {
			t.Fatal(err)
		}
		if out.RetInt != 42 {
			t.Fatalf("%s: triple(14) = %d", r.Name, out.RetInt)
		}
	}
	warm := d.Run(context.Background(), units)
	if warm.Stats.CacheHits != 2 {
		t.Fatalf("warm run: %d hits", warm.Stats.CacheHits)
	}
	if cs := cache.Stats(); cs.Hits < 2 || cs.Entries != 1 {
		t.Fatalf("cache stats: %+v", cs)
	}
	if !strings.Contains(warm.Stats.Format(), "driver:") {
		t.Fatal("stats format broken")
	}

	// The one-shot helper works without an engine.
	if err := AllocateBatch(units, DriverConfig{}).FirstErr(); err != nil {
		t.Fatal(err)
	}
}
