// Figure 1 walkthrough: the paper's motivating example — a pointer that
// is constant in one loop and varying in the next — allocated under
// register pressure by Chaitin's rule and by the rematerializing
// allocator, showing the Ideal-vs-Chaitin code shapes of Figure 1 and
// the tag analysis of Figure 3.
package main

import (
	"fmt"
	"log"

	regalloc "repro"
)

func main() {
	fig1, err := regalloc.Figure1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fig1.Format())

	fmt.Println()
	fig3, err := regalloc.Figure3()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fig3.Format())

	fmt.Println()
	trace, err := regalloc.Figure2()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(trace)
}
