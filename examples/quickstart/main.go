// Quickstart: parse an ILOC routine, allocate its registers with the
// rematerializing allocator, run both versions and compare the dynamic
// cost — the whole public API in one page.
package main

import (
	"fmt"
	"log"

	regalloc "repro"
)

const src = `
routine dot(r1)                 ; n
data xs ro 8 = 1.0 2.0 3.0 4.0 5.0 6.0 7.0 8.0
data ys ro 8 = 0.5 0.25 0.5 0.25 0.5 0.25 0.5 0.25
entry:
    getparam r1, 0
    lda r2, xs
    lda r3, ys
    fldi f1, 0.0                ; acc
    ldi r4, 0                   ; i
    jmp loop
loop:
    sub r5, r4, r1
    br ge r5, done, body
body:
    fload f2, r2                ; *x  (x walks)
    fload f3, r3                ; *y  (y walks)
    fmul f2, f2, f3
    fadd f1, f1, f2
    addi r2, r2, 8
    addi r3, r3, 8
    addi r4, r4, 1
    jmp loop
done:
    retf f1
`

func main() {
	rt, err := regalloc.Parse(src)
	if err != nil {
		log.Fatal(err)
	}

	// Run with unlimited virtual registers first.
	before, err := regalloc.Run(rt, regalloc.Int(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("virtual registers : dot = %g in %d cycles\n", before.RetFloat, before.Cycles(2, 1))

	// Allocate for a tight 4-register machine in both modes.
	for _, mode := range []regalloc.Mode{regalloc.ModeChaitin, regalloc.ModeRemat} {
		res, err := regalloc.Allocate(rt, regalloc.Options{
			Machine: regalloc.MachineWithRegs(4),
			Mode:    mode,
		})
		if err != nil {
			log.Fatal(err)
		}
		after, err := regalloc.Run(res.Routine, regalloc.Int(8))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18v: dot = %g in %d cycles (%d ranges spilled, %d rematerialized)\n",
			mode, after.RetFloat, after.Cycles(2, 1), res.SpilledRanges, res.RematSpills)
	}

	// The allocated code is ordinary ILOC; print it or translate it to
	// the instrumented C of the paper's Figure 4.
	res, _ := regalloc.Allocate(rt, regalloc.Options{Machine: regalloc.StandardMachine(), Mode: regalloc.ModeRemat})
	fmt.Println("\n--- allocated ILOC (16 registers) ---")
	fmt.Print(regalloc.Print(res.Routine))
}
