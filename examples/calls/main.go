// Calls: allocate a two-routine program under the paper's §5.1 calling
// convention. The driver keeps state live across two calls; the
// allocator must put it in callee-save registers (the interpreter
// poisons caller-save colors after every call, so a mistake would
// change the answer).
package main

import (
	"fmt"
	"log"

	regalloc "repro"
)

const programSrc = `
; main calls square twice and combines the results with state
; that stays live across both calls.
routine main(r1)
entry:
    getparam r1, 0
    ldi r2, 1000          ; live across both calls
    setarg r1, 0
    call square
    getret r3             ; n², live across the second call
    addi r4, r1, 1
    setarg r4, 0
    call square
    getret r5
    add r3, r3, r5
    add r3, r3, r2
    retr r3

routine square(r1)
entry:
    getparam r1, 0
    mul r2, r1, r1
    retr r2
`

func main() {
	rts, err := regalloc.ParseProgram(programSrc)
	if err != nil {
		log.Fatal(err)
	}
	main, square := rts[0], rts[1]

	for _, mode := range []regalloc.Mode{regalloc.ModeChaitin, regalloc.ModeRemat} {
		opts := regalloc.Options{Machine: regalloc.StandardMachine(), Mode: mode}
		am, err := regalloc.Allocate(main, opts)
		if err != nil {
			log.Fatal(err)
		}
		asq, err := regalloc.Allocate(square, opts)
		if err != nil {
			log.Fatal(err)
		}
		out, err := regalloc.RunProgram(am.Routine, []*regalloc.Routine{asq.Routine}, regalloc.Int(6))
		if err != nil {
			log.Fatal(err)
		}
		// 6² + 7² + 1000 = 1085
		fmt.Printf("%-8v n=6 -> %d (%d cycles)\n", mode, out.RetInt, out.Cycles(2, 1))
	}

	// Show the allocated driver: the across-call values sit in
	// callee-save colors (> 6 on the standard machine).
	am, _ := regalloc.Allocate(main, regalloc.Options{Machine: regalloc.StandardMachine(), Mode: regalloc.ModeRemat})
	fmt.Println("\n--- allocated driver ---")
	fmt.Print(regalloc.Print(am.Routine))
}
