// Splitting study: §6 of the paper experiments with five live-range
// splitting schemes on top of the rematerializing allocator and finds
// each has "major successes" and "equally dramatic failures". This
// example regenerates that comparison over the whole suite.
package main

import (
	"fmt"
	"log"

	regalloc "repro"
)

func main() {
	rows, err := regalloc.SplittingStudy(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(regalloc.FormatSplitting(rows))

	schemes := regalloc.SplittingSchemes()
	wins := map[string]int{}
	losses := map[string]int{}
	for _, r := range rows {
		for i, c := range r.Cycles {
			s := schemes[i].String()
			if c < r.Baseline {
				wins[s]++
			}
			if c > r.Baseline {
				losses[s]++
			}
		}
	}
	fmt.Println("\nscheme summary (vs plain rematerializing allocator):")
	for _, s := range schemes {
		fmt.Printf("  %-16s %2d kernels improved, %2d degraded\n",
			s, wins[s.String()], losses[s.String()])
	}
	fmt.Println("\nAs in the paper, no scheme is consistently profitable.")
}
