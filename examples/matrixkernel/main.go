// Matrix kernel: run the sgemm suite kernel (matrix multiply, the
// matrix300 workload of the paper's Table 1) through both allocators
// across a register-set sweep, reproducing the crossover where
// rematerialization starts to pay.
package main

import (
	"fmt"
	"log"

	regalloc "repro"
)

func main() {
	k := regalloc.KernelByName("sgemm")
	if k == nil {
		log.Fatal("sgemm kernel missing")
	}

	// Baseline: the 128-register huge machine approximates a perfect
	// allocation (§5.2 of the paper).
	base, err := measure(k, regalloc.HugeMachine(), regalloc.ModeRemat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("huge-machine baseline: %d cycles\n\n", base)
	fmt.Printf("%6s %12s %12s %8s\n", "regs", "chaitin", "remat", "gain")

	for _, regs := range []int{6, 8, 10, 12, 16} {
		m := regalloc.MachineWithRegs(regs)
		ch, err := measure(k, m, regalloc.ModeChaitin)
		if err != nil {
			log.Fatal(err)
		}
		re, err := measure(k, m, regalloc.ModeRemat)
		if err != nil {
			log.Fatal(err)
		}
		gain := "0%"
		if ch != base {
			gain = fmt.Sprintf("%.0f%%", 100*float64(ch-re)/float64(ch-base))
		}
		fmt.Printf("%6d %12d %12d %8s\n", regs, ch-base, re-base, gain)
	}
}

func measure(k *regalloc.Kernel, m *regalloc.Machine, mode regalloc.Mode) (int64, error) {
	res, err := regalloc.Allocate(k.Routine(), regalloc.Options{Machine: m, Mode: mode})
	if err != nil {
		return 0, err
	}
	out, err := k.Execute(res.Routine)
	if err != nil {
		return 0, err
	}
	return out.Cycles(2, 1), nil
}
