package regalloc_test

import (
	"fmt"
	"strings"

	regalloc "repro"
)

// ExampleParse shows the round trip between ILOC text and the IR.
func ExampleParse() {
	rt, err := regalloc.Parse(`
routine inc(r1)
entry:
    getparam r1, 0
    addi r2, r1, 1
    retr r2
`)
	if err != nil {
		panic(err)
	}
	fmt.Print(regalloc.Print(rt))
	// Output:
	// routine inc(r1)
	// entry:
	//     getparam r1, 0
	//     addi r2, r1, 1
	//     retr r2
}

// ExampleRun executes a routine in the dynamic-counting interpreter.
func ExampleRun() {
	rt := regalloc.MustParse(`
routine sum(r1)
entry:
    getparam r1, 0
    ldi r2, 0
    ldi r3, 0
loop:
    sub r4, r3, r1
    br ge r4, done, body
body:
    addi r3, r3, 1
    add r2, r2, r3
    jmp loop
done:
    retr r2
`)
	out, err := regalloc.Run(rt, regalloc.Int(10))
	if err != nil {
		panic(err)
	}
	fmt.Printf("sum(10) = %d in %d cycles\n", out.RetInt, out.Cycles(2, 1))
	// Output:
	// sum(10) = 55 in 57 cycles
}

// ExampleAllocate maps a routine onto a small machine and shows that a
// never-killed constant is rematerialized rather than spilled: the
// allocated code contains a spill-marked ldi and no stores.
func ExampleAllocate() {
	rt := regalloc.MustParse(`
routine f()
entry:
    ldi r1, 11
    ldi r2, 22
    ldi r3, 33
    ldi r4, 44
    add r5, r1, r2
    add r5, r5, r3
    add r5, r5, r4
    add r5, r5, r1
    retr r5
`)
	res, err := regalloc.Allocate(rt, regalloc.Options{
		Machine: regalloc.MachineWithRegs(3), // two allocatable colors
		Mode:    regalloc.ModeRemat,
	})
	if err != nil {
		panic(err)
	}
	text := regalloc.Print(res.Routine)
	fmt.Println("spilled ranges:", res.SpilledRanges)
	fmt.Println("rematerialized:", res.RematSpills)
	fmt.Println("has remat ldi: ", strings.Contains(text, "; spill"))
	fmt.Println("has stores:    ", strings.Contains(text, "storeai"))
	out, _ := regalloc.Run(res.Routine)
	fmt.Println("result:        ", out.RetInt)
	// Output:
	// spilled ranges: 3
	// rematerialized: 3
	// has remat ldi:  true
	// has stores:     false
	// result:         121
}

// ExampleTranslateC renders the instrumented C of the paper's Figure 4.
func ExampleTranslateC() {
	rt := regalloc.MustParse(`
routine f(r1)
entry:
    getparam r1, 0
    addi r2, r1, 8
    load r3, r2
    retr r3
`)
	c, err := regalloc.TranslateC(rt)
	if err != nil {
		panic(err)
	}
	for _, line := range strings.Split(c, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "r") && !strings.HasPrefix(line, "register") && !strings.HasPrefix(line, "return") {
			fmt.Println(line)
		}
	}
	// Output:
	// r1 = p0; l++;
	// r2 = r1 + (8); a++;
	// r3 = *((long *) (r2)); l++;
}
