package regalloc

// The benchmark harness regenerates every table and figure of the paper
// (DESIGN.md §5 maps each to its benchmark):
//
//	BenchmarkTable1            the full spill-cost experiment
//	BenchmarkTable1Row/...     per-kernel allocate+measure, both modes
//	BenchmarkTable2/...        allocation time per routine and mode (the
//	                           quantity Table 2 reports), per-phase
//	                           breakdown as custom metrics
//	BenchmarkFigure1/3/4       the figure generators
//	BenchmarkSplitting/...     the §6 splitting-scheme study
//	BenchmarkAblation/...      design-choice ablations (conservative
//	                           coalescing, biased coloring, lookahead)
//	                           reporting spill cycles as a metric
//	BenchmarkSpillMetric/...   spill-candidate metric comparison
//	BenchmarkAllocateSuite/... allocator throughput, both modes (§5.4)
//	BenchmarkInterp            raw interpreter throughput
//
// Quality metrics (spill cycles) are attached with b.ReportMetric, so
// `go test -bench .` shows both compile time and code quality.

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/experiments"
	"repro/internal/suite"
	"repro/internal/target"
)

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(experiments.Table1Config{})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTable1Row allocates and measures one kernel in one mode —
// one cell of Table 1.
func BenchmarkTable1Row(b *testing.B) {
	m := target.WithRegs(6)
	for _, name := range []string{"fehl", "decomp", "bilan", "inithx", "sgemm", "tomcatv"} {
		k := suite.ByName(name)
		for _, mode := range []core.Mode{core.ModeChaitin, core.ModeRemat} {
			b.Run(name+"/"+mode.String(), func(b *testing.B) {
				var cycles int64
				for i := 0; i < b.N; i++ {
					res, err := core.Allocate(context.Background(), k.Routine(), core.Options{Machine: m, Mode: mode})
					if err != nil {
						b.Fatal(err)
					}
					out, err := k.Execute(res.Routine)
					if err != nil {
						b.Fatal(err)
					}
					cycles = out.Cycles(2, 1)
				}
				b.ReportMetric(float64(cycles), "spillcycles")
			})
		}
	}
}

// BenchmarkTable2 times one allocation per iteration — the quantity the
// paper's Table 2 reports — for its three routines in both modes, and
// attaches the per-phase split of the last run as metrics.
func BenchmarkTable2(b *testing.B) {
	m := target.Standard()
	for _, name := range experiments.Table2Routines {
		k := suite.ByName(name)
		for _, mode := range []core.Mode{core.ModeChaitin, core.ModeRemat} {
			label := "old"
			if mode == core.ModeRemat {
				label = "new"
			}
			b.Run(name+"/"+label, func(b *testing.B) {
				var res *core.Result
				var err error
				for i := 0; i < b.N; i++ {
					res, err = core.Allocate(context.Background(), k.Routine(), core.Options{Machine: m, Mode: mode})
					if err != nil {
						b.Fatal(err)
					}
				}
				t := res.TotalTimes()
				b.ReportMetric(float64(t.Renumber.Microseconds()), "renum-µs")
				b.ReportMetric(float64(t.Build.Microseconds()), "build-µs")
				b.ReportMetric(float64(t.Color.Microseconds()), "color-µs")
			})
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		if r.RematCycles >= r.ChaitinCycles {
			b.Fatal("figure 1 shape lost")
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FormatFigure4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSplitting runs one §6 scheme over one kernel per iteration.
func BenchmarkSplitting(b *testing.B) {
	m := target.WithRegs(6)
	k := suite.ByName("tomcatv")
	for _, s := range experiments.SplittingSchemes {
		b.Run(s.String(), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := core.Allocate(context.Background(), k.Routine(), core.Options{Machine: m, Mode: core.ModeRemat, Split: s})
				if err != nil {
					b.Fatal(err)
				}
				out, err := k.Execute(res.Routine)
				if err != nil {
					b.Fatal(err)
				}
				cycles = out.Cycles(2, 1)
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblation disables one §3.4/§4 mechanism at a time and reports
// the resulting code quality, justifying the design choices DESIGN.md
// calls out: conservative coalescing and biased coloring remove the
// unproductive splits. The ablation runs with splitting at all φ-nodes
// (scheme 4) so there are many splits for the mechanisms to clean up; in
// the minimal-split configuration they act as redundant safety nets and
// barely move the number.
func BenchmarkAblation(b *testing.B) {
	m := target.WithRegs(6)
	base := core.Options{Machine: m, Mode: core.ModeRemat, Split: core.SplitAtPhis}
	with := func(f func(*core.Options)) core.Options {
		o := base
		f(&o)
		return o
	}
	configs := []struct {
		name string
		opts core.Options
	}{
		{"full", base},
		{"no-conservative-coalescing", with(func(o *core.Options) { o.DisableConservativeCoalescing = true })},
		{"no-biased-coloring", with(func(o *core.Options) { o.DisableBiasedColoring = true })},
		{"no-lookahead", with(func(o *core.Options) { o.DisableLookahead = true })},
		{"no-coalescing-no-bias", with(func(o *core.Options) {
			o.DisableConservativeCoalescing = true
			o.DisableBiasedColoring = true
		})},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			var total int64
			for i := 0; i < b.N; i++ {
				total = 0
				for _, k := range suite.All() {
					res, err := core.Allocate(context.Background(), k.Routine(), cfg.opts)
					if err != nil {
						b.Fatal(err)
					}
					out, err := k.Execute(res.Routine)
					if err != nil {
						b.Fatal(err)
					}
					total += out.Cycles(2, 1)
				}
			}
			b.ReportMetric(float64(total), "suitecycles")
		})
	}
}

// BenchmarkDriverSuite allocates the whole suite through the batch
// driver at -j 1 and -j NumCPU, cold and against a warm result cache —
// the throughput surface BENCH_driver.json snapshots via `make bench`.
func BenchmarkDriverSuite(b *testing.B) {
	opts := core.Options{Machine: target.WithRegs(6), Mode: core.ModeRemat}
	var units []driver.Unit
	for _, k := range suite.All() {
		units = append(units, driver.Unit{Name: k.Name, Routine: k.Routine()})
	}
	for _, cfg := range []struct {
		name  string
		jobs  int
		cache bool
	}{
		{"j1", 1, false},
		{"jN", runtime.NumCPU(), false},
		{"jN-warm-cache", runtime.NumCPU(), true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var cache *driver.Cache
			if cfg.cache {
				cache = driver.NewCache(0)
				eng := driver.New(driver.Config{Options: opts, Workers: cfg.jobs, Cache: cache})
				if err := eng.Run(context.Background(), units).FirstErr(); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var st driver.Stats
			for i := 0; i < b.N; i++ {
				batch := driver.New(driver.Config{Options: opts, Workers: cfg.jobs, Cache: cache}).Run(context.Background(), units)
				if err := batch.FirstErr(); err != nil {
					b.Fatal(err)
				}
				st = batch.Stats
			}
			b.ReportMetric(float64(st.Routines)/st.Wall.Seconds(), "routines/sec")
			if cfg.cache {
				b.ReportMetric(100*float64(st.CacheHits)/float64(st.Routines), "hit%")
			}
		})
	}
}

// BenchmarkInterp measures raw interpreter throughput on the largest
// kernel.
func BenchmarkInterp(b *testing.B) {
	k := suite.ByName("twldrv")
	rt := k.Routine()
	var steps int64
	for i := 0; i < b.N; i++ {
		out, err := k.Execute(rt)
		if err != nil {
			b.Fatal(err)
		}
		steps = out.Steps
	}
	b.ReportMetric(float64(steps), "steps/run")
}

// BenchmarkAllocateSuite measures allocator throughput over the whole
// suite (both modes) — the compile-time cost the paper's §5.4 discusses.
func BenchmarkAllocateSuite(b *testing.B) {
	for _, mode := range []core.Mode{core.ModeChaitin, core.ModeRemat} {
		b.Run(mode.String(), func(b *testing.B) {
			m := target.Standard()
			for i := 0; i < b.N; i++ {
				for _, k := range suite.All() {
					if _, err := core.Allocate(context.Background(), k.Routine(), core.Options{Machine: m, Mode: mode}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkSpillMetric sweeps the spill-candidate metrics over the whole
// suite (the paper: "the metric for picking spill candidates is
// critical") and reports total spill cycles as the quality metric.
func BenchmarkSpillMetric(b *testing.B) {
	m := target.WithRegs(6)
	for _, metric := range []core.SpillMetric{
		core.MetricCostOverDegree, core.MetricCostOverDegreeSquared, core.MetricCost,
	} {
		b.Run(metric.String(), func(b *testing.B) {
			var total int64
			for i := 0; i < b.N; i++ {
				total = 0
				for _, k := range suite.All() {
					res, err := core.Allocate(context.Background(), k.Routine(), core.Options{Machine: m, Mode: core.ModeRemat, Metric: metric})
					if err != nil {
						b.Fatal(err)
					}
					out, err := k.Execute(res.Routine)
					if err != nil {
						b.Fatal(err)
					}
					total += out.Cycles(2, 1)
				}
			}
			b.ReportMetric(float64(total), "suitecycles")
		})
	}
}
