package regalloc_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildCmd compiles one of the cmd/ binaries once per test run.
var buildCmd = func() func(t *testing.T, name string) string {
	var mu sync.Mutex
	built := map[string]string{}
	return func(t *testing.T, name string) string {
		t.Helper()
		mu.Lock()
		defer mu.Unlock()
		if p, ok := built[name]; ok {
			return p
		}
		dir, err := os.MkdirTemp("", "repro-cli")
		if err != nil {
			t.Fatal(err)
		}
		bin := filepath.Join(dir, name)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		built[name] = bin
		return bin
	}
}()

func runCmd(t *testing.T, bin string, stdin string, args ...string) (string, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var outB, errB strings.Builder
	cmd.Stdout, cmd.Stderr = &outB, &errB
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr: %s", bin, args, err, errB.String())
	}
	return outB.String(), errB.String()
}

// runCmdFail runs the binary expecting a nonzero exit; it returns
// stderr.
func runCmdFail(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var outB, errB strings.Builder
	cmd.Stdout, cmd.Stderr = &outB, &errB
	if err := cmd.Run(); err == nil {
		t.Fatalf("%s %v: expected failure, got success\nstdout: %s", bin, args, outB.String())
	}
	return errB.String()
}

func TestCLIRallocAllocatesFile(t *testing.T) {
	bin := buildCmd(t, "ralloc")
	out, stderr := runCmd(t, bin, "", "-mode", "remat", "-regs", "4", "-stats", "testdata/sumabs.iloc")
	if !strings.Contains(out, "routine sumabs") {
		t.Fatalf("no routine in output:\n%s", out)
	}
	if !strings.Contains(stderr, "strategy=remat") || !strings.Contains(stderr, "phases:") {
		t.Fatalf("stats missing:\n%s", stderr)
	}
	// The allocated code must stay within 4 registers per class.
	for _, bad := range []string{"r4,", " r5", " f4", " f5"} {
		if strings.Contains(out, bad+",") {
			t.Fatalf("register beyond machine in output:\n%s", out)
		}
	}
}

// -stats prints the instrumented pipeline's per-pass table and must not
// perturb the allocation itself: stdout is identical with and without it,
// on the standard machine and the tiny 3-register one.
func TestCLIRallocPerPassStats(t *testing.T) {
	bin := buildCmd(t, "ralloc")
	for _, regs := range []string{"16", "3"} {
		plain, _ := runCmd(t, bin, "", "-regs", regs, "testdata/sumabs.iloc")
		withStats, stderr := runCmd(t, bin, "", "-regs", regs, "-stats", "testdata/sumabs.iloc")
		if plain != withStats {
			t.Fatalf("regs=%s: -stats changed the allocation:\n--- plain ---\n%s--- stats ---\n%s", regs, plain, withStats)
		}
		for _, pass := range []string{"iter", "pass", "cfa", "renumber", "build", "simplify", "select"} {
			if !strings.Contains(stderr, pass) {
				t.Fatalf("regs=%s: per-pass stats missing %q:\n%s", regs, pass, stderr)
			}
		}
		if !strings.Contains(stderr, "iteration(s)") {
			t.Fatalf("regs=%s: summary line missing:\n%s", regs, stderr)
		}
	}
}

func TestCLIRallocEmitsC(t *testing.T) {
	bin := buildCmd(t, "ralloc")
	out, _ := runCmd(t, bin, "", "-c", "testdata/sumabs.iloc")
	for _, w := range []string{"#include <math.h>", "double sumabs(long p0)", "l++;"} {
		if !strings.Contains(out, w) {
			t.Fatalf("C output missing %q:\n%s", w, out)
		}
	}
}

func TestCLIRallocSplitSchemes(t *testing.T) {
	bin := buildCmd(t, "ralloc")
	for _, s := range []string{"none", "all-loops", "outer-loops", "inactive-loops", "all-phis"} {
		out, _ := runCmd(t, bin, "", "-split", s, "-regs", "6", "testdata/fig1.iloc")
		if !strings.Contains(out, "routine fig1") {
			t.Fatalf("scheme %s: no output", s)
		}
	}
}

// Several .iloc files form a module: allocated concurrently by the
// batch driver, printed in input order. Before the driver existed,
// every positional argument after the first was silently ignored.
func TestCLIRallocMultiFile(t *testing.T) {
	bin := buildCmd(t, "ralloc")
	for _, jobs := range []string{"1", "4"} {
		out, _ := runCmd(t, bin, "", "-j", jobs, "-regs", "6",
			"testdata/sumabs.iloc", "testdata/fig1.iloc")
		sum := strings.Index(out, "routine sumabs")
		fig := strings.Index(out, "routine fig1")
		if sum < 0 || fig < 0 {
			t.Fatalf("-j %s: missing a routine in output:\n%s", jobs, out)
		}
		if sum > fig {
			t.Fatalf("-j %s: output not in input order:\n%s", jobs, out)
		}
	}
	// Output must be byte-identical whatever the parallelism.
	seq, _ := runCmd(t, bin, "", "-j", "1", "-regs", "6", "testdata/sumabs.iloc", "testdata/fig1.iloc")
	par, _ := runCmd(t, bin, "", "-j", "4", "-regs", "6", "testdata/sumabs.iloc", "testdata/fig1.iloc")
	if seq != par {
		t.Fatalf("parallel output differs from sequential:\n--- -j1 ---\n%s--- -j4 ---\n%s", seq, par)
	}
}

// Duplicate inputs hit the content-addressed cache; -stats reports it.
func TestCLIRallocCache(t *testing.T) {
	bin := buildCmd(t, "ralloc")
	out, stderr := runCmd(t, bin, "", "-cache", "-stats", "-regs", "6",
		"testdata/sumabs.iloc", "testdata/sumabs.iloc")
	if strings.Count(out, "routine sumabs") != 2 {
		t.Fatalf("both copies should be printed:\n%s", out)
	}
	if !strings.Contains(stderr, "cache:") || !strings.Contains(stderr, "1 hits") {
		t.Fatalf("cache stats missing a hit:\n%s", stderr)
	}
}

// A bad extra argument must be an error, not silently dropped (the old
// CLI read only flag.Arg(0)).
func TestCLIRallocBadExtraArg(t *testing.T) {
	bin := buildCmd(t, "ralloc")
	stderr := runCmdFail(t, bin, "testdata/sumabs.iloc", "no-such-file.iloc")
	if !strings.Contains(stderr, "no-such-file.iloc") {
		t.Fatalf("error does not name the bad argument:\n%s", stderr)
	}
}

func TestCLIRallocListStrategies(t *testing.T) {
	bin := buildCmd(t, "ralloc")
	out, _ := runCmd(t, bin, "", "-list-strategies")
	for _, name := range []string{"chaitin", "remat", "spill-everywhere", "ssa-spill"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list-strategies lacks %q:\n%s", name, out)
		}
	}
}

func TestCLIRallocBadStrategyListsValid(t *testing.T) {
	bin := buildCmd(t, "ralloc")
	stderr := runCmdFail(t, bin, "-strategy", "linear-scan", "testdata/sumabs.iloc")
	if !strings.Contains(stderr, `"linear-scan"`) {
		t.Fatalf("error does not name the bad strategy:\n%s", stderr)
	}
	for _, name := range []string{"chaitin", "remat", "spill-everywhere", "ssa-spill"} {
		if !strings.Contains(stderr, name) {
			t.Errorf("error does not list valid strategy %q:\n%s", name, stderr)
		}
	}
}

// The default invocation and its explicit-strategy spellings are
// byte-identical on the testdata kernels: the strategy layer is a
// refactor of selection, not of output.
func TestCLIRallocStrategyBackCompat(t *testing.T) {
	bin := buildCmd(t, "ralloc")
	for _, file := range []string{"testdata/sumabs.iloc", "testdata/fig1.iloc"} {
		def, _ := runCmd(t, bin, "", file)
		byStrategy, _ := runCmd(t, bin, "", "-strategy", "remat", file)
		if def != byStrategy {
			t.Fatalf("%s: -strategy remat differs from default:\n--- default\n%s--- strategy\n%s", file, def, byStrategy)
		}
		byMode, _ := runCmd(t, bin, "", "-mode", "remat", file)
		if def != byMode {
			t.Fatalf("%s: -mode remat differs from default", file)
		}
		chaitinMode, _ := runCmd(t, bin, "", "-mode", "chaitin", file)
		chaitinStrat, _ := runCmd(t, bin, "", "-strategy", "chaitin", file)
		if chaitinMode != chaitinStrat {
			t.Fatalf("%s: -strategy chaitin differs from -mode chaitin", file)
		}
	}
}

// Every registered strategy allocates the testdata kernels under the
// verifier with degradation disabled — the CLI leg of the all-strategy
// acceptance sweep.
func TestCLIRallocEveryStrategyVerifies(t *testing.T) {
	bin := buildCmd(t, "ralloc")
	names, _ := runCmd(t, bin, "", "-list-strategies")
	for _, line := range strings.Split(strings.TrimSpace(names), "\n") {
		name := strings.Fields(line)[0]
		out, _ := runCmd(t, bin, "", "-strategy", name, "-strict", "testdata/sumabs.iloc")
		if !strings.Contains(out, "routine sumabs") {
			t.Errorf("strategy %s: no routine in output:\n%s", name, out)
		}
	}
}

func TestCLIIlocrunFile(t *testing.T) {
	bin := buildCmd(t, "ilocrun")
	out, _ := runCmd(t, bin, "", "-args", "8", "-counts", "testdata/sumabs.iloc")
	if !strings.Contains(out, "float=18.5") {
		t.Fatalf("wrong result:\n%s", out)
	}
	if !strings.Contains(out, "fabs") {
		t.Fatalf("counts missing:\n%s", out)
	}
}

func TestCLIIlocrunStdinAndAllocate(t *testing.T) {
	bin := buildCmd(t, "ilocrun")
	src, err := os.ReadFile("testdata/sumabs.iloc")
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := runCmd(t, bin, string(src), "-args", "8", "-")
	alloc, _ := runCmd(t, bin, string(src), "-args", "8", "-mode", "remat", "-regs", "4", "-")
	if !strings.Contains(plain, "float=18.5") || !strings.Contains(alloc, "float=18.5") {
		t.Fatalf("allocation changed the answer:\n%s\n%s", plain, alloc)
	}
}

func TestCLIIlocrunKernel(t *testing.T) {
	bin := buildCmd(t, "ilocrun")
	out, _ := runCmd(t, bin, "", "-kernel", "sgemm", "-mode", "chaitin", "-regs", "8")
	if !strings.Contains(out, "result:") || !strings.Contains(out, "cycles") {
		t.Fatalf("kernel run output wrong:\n%s", out)
	}
}

func TestCLIExperimentsFigures(t *testing.T) {
	bin := buildCmd(t, "experiments")
	out, _ := runCmd(t, bin, "", "-fig", "4")
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "fabs(f14)") {
		t.Fatalf("figure 4 output wrong:\n%s", out)
	}
	out, _ = runCmd(t, bin, "", "-tab", "1", "-regs", "8")
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "sgemm") {
		t.Fatalf("table 1 output wrong:\n%s", out)
	}
}

func TestCLIIlocrunProgramWithCalls(t *testing.T) {
	bin := buildCmd(t, "ilocrun")
	plain, _ := runCmd(t, bin, "", "-args", "6", "testdata/program.iloc")
	if !strings.Contains(plain, "int=41") {
		t.Fatalf("6²+5 = 41 expected:\n%s", plain)
	}
	alloc, _ := runCmd(t, bin, "", "-args", "6", "-mode", "remat", "-regs", "8", "testdata/program.iloc")
	if !strings.Contains(alloc, "int=41") {
		t.Fatalf("allocated program wrong:\n%s", alloc)
	}
}

// -verify and -strict must accept everything the allocator gets right,
// and must not perturb the output: verification is read-only.
func TestCLIVerifyAndStrict(t *testing.T) {
	bin := buildCmd(t, "ralloc")
	plain, _ := runCmd(t, bin, "", "-regs", "4", "testdata/fig1.iloc")
	verified, stderr := runCmd(t, bin, "", "-regs", "4", "-verify", "testdata/fig1.iloc")
	if plain != verified {
		t.Fatalf("-verify changed the output:\n%s\nvs\n%s", plain, verified)
	}
	if strings.Contains(stderr, "degraded") {
		t.Fatalf("unexpected degradation warning: %s", stderr)
	}
	strict, _ := runCmd(t, bin, "", "-regs", "4", "-strict", "testdata/fig1.iloc")
	if plain != strict {
		t.Fatalf("-strict changed the output:\n%s\nvs\n%s", plain, strict)
	}
}

// A syntax error must surface as a located parse error, not a panic.
func TestCLIParseErrorIsLocated(t *testing.T) {
	bin := buildCmd(t, "ralloc")
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.iloc")
	if err := os.WriteFile(bad, []byte("routine f()\nentry:\n    bogus r1, r2\n    ret\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr := runCmdFail(t, bin, bad)
	if !strings.Contains(stderr, "line 3") || strings.Contains(stderr, "goroutine") {
		t.Fatalf("expected a located parse error, got: %s", stderr)
	}
}

// -trace must produce a valid Chrome trace_event file whose spans cover
// every pipeline pass the allocation ran and every driver unit, and
// -metrics must dump the flat registry; neither may perturb the
// allocated output.
func TestCLIRallocTraceAndMetrics(t *testing.T) {
	bin := buildCmd(t, "ralloc")
	plain, _ := runCmd(t, bin, "", "-regs", "4", "testdata/fig1.iloc", "testdata/sumabs.iloc")
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	out, stderr := runCmd(t, bin, "", "-regs", "4", "-trace", tracePath, "-metrics",
		"testdata/fig1.iloc", "testdata/sumabs.iloc")
	if out != plain {
		t.Fatalf("-trace/-metrics changed the output:\n%s\nvs\n%s", out, plain)
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	passes := map[string]bool{}
	units := map[string]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Cat {
		case "pass":
			passes[e.Name] = true
		case "unit":
			units[e.Name] = true
		}
	}
	// Every unconditional pipeline pass of a converging remat run must
	// appear (conditional passes depend on mode and spilling).
	for _, p := range []string{"cfa", "renumber", "build", "coalesce", "costs", "simplify", "select", "rewrite"} {
		if !passes[p] {
			t.Fatalf("trace missing pipeline pass %q; saw %v", p, passes)
		}
	}
	for _, u := range []string{"testdata/fig1.iloc", "testdata/sumabs.iloc"} {
		if !units[u] {
			t.Fatalf("trace missing driver unit %q; saw %v", u, units)
		}
	}

	for _, want := range []string{"core.allocations 2", "driver.units 2", "core.pass.build.count"} {
		if !strings.Contains(stderr, want) {
			t.Fatalf("-metrics output missing %q:\n%s", want, stderr)
		}
	}
}

// benchdiff: identical reports pass, a >threshold routines/sec drop
// fails with exit 1.
func TestCLIBenchdiff(t *testing.T) {
	bin := buildCmd(t, "benchdiff")
	dir := t.TempDir()
	report := func(scale float64) string {
		return fmt.Sprintf(`{
  "num_cpu": 1, "routines": 35,
  "sequential": {"wall_ms": 10, "routines_per_sec": %g},
  "parallel":   {"wall_ms": 9,  "routines_per_sec": %g},
  "warm_cache": {"wall_ms": 1,  "routines_per_sec": %g}
}`, 3000*scale, 3500*scale, 40000*scale)
	}
	base := filepath.Join(dir, "base.json")
	if err := os.WriteFile(base, []byte(report(1)), 0o644); err != nil {
		t.Fatal(err)
	}
	same := filepath.Join(dir, "same.json")
	if err := os.WriteFile(same, []byte(report(0.9)), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _ := runCmd(t, bin, "", "-baseline", base, "-current", same)
	if !strings.Contains(out, "benchdiff: ok") {
		t.Fatalf("10%% drop should pass the 20%% gate:\n%s", out)
	}
	slow := filepath.Join(dir, "slow.json")
	if err := os.WriteFile(slow, []byte(report(0.5)), 0o644); err != nil {
		t.Fatal(err)
	}
	runCmdFail(t, bin, "-baseline", base, "-current", slow)
}

// ilocrun error paths: a missing file, an unknown kernel and a bad
// argument must each exit nonzero with a message naming the culprit —
// not a panic, not a zero-exit with garbage output.
func TestCLIIlocrunMissingFile(t *testing.T) {
	bin := buildCmd(t, "ilocrun")
	stderr := runCmdFail(t, bin, "no-such-file.iloc")
	if !strings.Contains(stderr, "no-such-file.iloc") {
		t.Fatalf("error does not name the missing file:\n%s", stderr)
	}
}

func TestCLIIlocrunUnknownKernel(t *testing.T) {
	bin := buildCmd(t, "ilocrun")
	stderr := runCmdFail(t, bin, "-kernel", "nosuchkernel")
	// The error lists the available kernels so the user can fix the name.
	if !strings.Contains(stderr, "nosuchkernel") || !strings.Contains(stderr, "sgemm") {
		t.Fatalf("unknown-kernel error unhelpful:\n%s", stderr)
	}
}

func TestCLIIlocrunBadArgument(t *testing.T) {
	bin := buildCmd(t, "ilocrun")
	stderr := runCmdFail(t, bin, "-args", "not-a-number", "testdata/sumabs.iloc")
	if !strings.Contains(stderr, "not-a-number") {
		t.Fatalf("error does not name the bad argument:\n%s", stderr)
	}
}

func TestCLIIlocrunKernelCounts(t *testing.T) {
	bin := buildCmd(t, "ilocrun")
	out, _ := runCmd(t, bin, "", "-kernel", "sgemm", "-counts")
	if !strings.Contains(out, "result:") || !strings.Contains(out, "fmul") {
		t.Fatalf("kernel -counts output wrong:\n%s", out)
	}
}

// benchdiff -pair gates several reports in one invocation, sniffing the
// shape of each: driver reports on routines/sec, server reports on
// req/s and p99 latency.
func TestCLIBenchdiffMultiPair(t *testing.T) {
	bin := buildCmd(t, "benchdiff")
	dir := t.TempDir()
	driverReport := func(scale float64) string {
		return fmt.Sprintf(`{
  "num_cpu": 1, "routines": 35,
  "sequential": {"wall_ms": 10, "routines_per_sec": %g},
  "parallel":   {"wall_ms": 9,  "routines_per_sec": %g},
  "warm_cache": {"wall_ms": 1,  "routines_per_sec": %g}
}`, 3000*scale, 3500*scale, 40000*scale)
	}
	serverReport := func(rps, p99 float64, errors int) string {
		return fmt.Sprintf(`{
  "num_cpu": 1, "concurrency": 4, "ok": 1000, "shed": 5, "errors": %d,
  "requests_per_sec": %g, "p50_ms": 1.0, "p99_ms": %g
}`, errors, rps, p99)
	}
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	dbase := write("dbase.json", driverReport(1))
	dcur := write("dcur.json", driverReport(0.95))
	sbase := write("sbase.json", serverReport(5000, 2.0, 0))
	scur := write("scur.json", serverReport(4600, 2.2, 0))

	out, _ := runCmd(t, bin, "", "-pair", dbase+":"+dcur, "-pair", sbase+":"+scur)
	if !strings.Contains(out, "benchdiff: ok") || !strings.Contains(out, "p99_ms") {
		t.Fatalf("multi-pair comparison wrong:\n%s", out)
	}

	// A p99 blowup on the server pair alone must gate the whole run.
	slow := write("slow.json", serverReport(5000, 3.5, 0))
	runCmdFail(t, bin, "-pair", dbase+":"+dcur, "-pair", sbase+":"+slow)

	// So must contract errors recorded in the current server report.
	viol := write("viol.json", serverReport(5000, 2.0, 3))
	runCmdFail(t, bin, "-pair", sbase+":"+viol)

	// A malformed -pair value is a usage error.
	runCmdFail(t, bin, "-pair", "only-one-path.json")
}

// End-to-end serving: boot rallocd on an ephemeral port, drive it with
// rallocload (every 200 verified), check that a request with a short
// X-Deadline-Ms comes back promptly as a spill-everywhere degradation
// with reason "deadline", and require a clean drain on SIGTERM.
func TestCLIServerEndToEnd(t *testing.T) {
	rallocd := buildCmd(t, "rallocd")
	rallocload := buildCmd(t, "rallocload")
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")

	daemon := exec.Command(rallocd, "-addr", "127.0.0.1:0", "-addr-file", addrFile)
	var daemonErr strings.Builder
	daemon.Stderr = &daemonErr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer daemon.Process.Kill()

	var addr string
	for i := 0; i < 100; i++ {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = strings.TrimSpace(string(b))
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("rallocd never wrote its address:\n%s", daemonErr.String())
	}
	url := "http://" + addr

	runCmd(t, rallocload, "", "-url", url, "-input", "testdata/sumabs.iloc",
		"-requests", "5", "-c", "2", "-expect-verified", "-out", filepath.Join(dir, "bench.json"))

	// The deadline contract over the wire: a 1ms budget on a routine the
	// allocator cannot finish that fast must answer ~immediately with
	// the degraded allocation, reason "deadline".
	body := `{"iloc": ` + jsonString(t, "testdata/fig1.iloc") + `}`
	req, err := http.NewRequest("POST", url+"/v1/allocate", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Deadline-Ms", "1")
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("short-deadline request took %v", elapsed)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("deadline request status %d:\n%s", resp.StatusCode, raw)
	}
	var ar struct {
		Results []struct {
			Error         string `json:"error"`
			Code          string `json:"code"`
			Degraded      bool   `json:"degraded"`
			DegradeReason string `json:"degrade_reason"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &ar); err != nil || len(ar.Results) == 0 {
		t.Fatalf("bad deadline response: %v\n%s", err, raw)
	}
	// A 1ms budget may or may not expire before a small allocation
	// finishes; what is forbidden is an error or a missing result.
	u := ar.Results[0]
	if u.Error != "" || u.Code == "" {
		t.Fatalf("deadline unit = %+v", u)
	}
	if u.Degraded && u.DegradeReason != "deadline" {
		t.Fatalf("degraded with reason %q, want %q", u.DegradeReason, "deadline")
	}

	// SIGTERM: graceful drain, exit 0.
	if err := daemon.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("rallocd exit: %v\n%s", err, daemonErr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("rallocd did not drain:\n%s", daemonErr.String())
	}
	if !strings.Contains(daemonErr.String(), "drained") {
		t.Fatalf("no drain message:\n%s", daemonErr.String())
	}
}

// jsonString reads a file and returns its contents as a JSON string
// literal.
func jsonString(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := json.Marshal(string(b))
	if err != nil {
		t.Fatal(err)
	}
	return string(enc)
}
