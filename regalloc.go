// Package regalloc is a reproduction of "Rematerialization" by Preston
// Briggs, Keith D. Cooper and Linda Torczon (PLDI 1992): a Chaitin-style
// optimistic graph-coloring register allocator extended so that
// multi-valued live ranges can be rematerialized — recomputed where they
// are needed — instead of spilled to memory.
//
// The public surface wraps the internal packages:
//
//   - ILOC, the paper's low-level intermediate language (Parse, Print,
//     Verify, the Builder);
//   - the allocator itself (Allocate with ModeChaitin for the paper's
//     baseline or ModeRemat for its contribution, or any registered
//     strategy by name via Options.Strategy — see Strategies);
//   - the execution harness that replaces the paper's translate-to-C
//     methodology (Run, NewEnv) plus the Figure 4 C translator
//     (TranslateC);
//   - the benchmark suite and the experiment drivers that regenerate the
//     paper's tables and figures (Suite, Table1, Table2, Figure1..4).
//
// Quick start:
//
//	rt, err := regalloc.Parse(src)
//	res, err := regalloc.Allocate(rt, regalloc.Options{
//	    Machine: regalloc.StandardMachine(),
//	    Mode:    regalloc.ModeRemat,
//	})
//	out, err := regalloc.Run(res.Routine, regalloc.Int(100))
package regalloc

import (
	"context"
	"net/http"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ctrans"
	"repro/internal/driver"
	"repro/internal/experiments"
	"repro/internal/iloc"
	"repro/internal/interp"
	"repro/internal/jobs"
	"repro/internal/machines"
	"repro/internal/store"
	"repro/internal/suite"
	"repro/internal/target"
	"repro/internal/telemetry"
	"repro/internal/verify"
)

// Core IR types. Routine is a procedure in ILOC form; Instr one
// instruction; Block a basic block; Builder a programmatic constructor.
type (
	Routine = iloc.Routine
	Instr   = iloc.Instr
	Block   = iloc.Block
	Builder = iloc.Builder
	Reg     = iloc.Reg
)

// Machine describes a register file and cycle cost model.
type Machine = target.Machine

// Options configures Allocate; Result is a finished allocation.
// IterationStats, PassStat and PhaseTimes expose the instrumented pass
// pipeline's per-iteration records (Result.Iterations).
type (
	Options        = core.Options
	Result         = core.Result
	Mode           = core.Mode
	IterationStats = core.IterationStats
	PassStat       = core.PassStat
	PhaseTimes     = core.PhaseTimes
)

// Allocator modes: the paper's baseline and its contribution.
const (
	// ModeChaitin reproduces Chaitin's limited rematerialization: a live
	// range is recomputed only when all of its definitions are the same
	// never-killed instruction (the "Optimistic" column of Table 1).
	ModeChaitin = core.ModeChaitin
	// ModeRemat is the paper's approach: per-value tags propagated over
	// the SSA graph, split insertion, conservative coalescing, biased
	// coloring (the "Rematerialization" column of Table 1).
	ModeRemat = core.ModeRemat
)

// Strategy is a named, registered allocation pipeline: the unit of
// selection for Options.Strategy, the server's per-request "strategy"
// field and the CLIs' -strategy flag. The built-ins are "chaitin",
// "remat" (whose split/metric/ablation variants are strategy
// parameters, e.g. "remat:split=all-loops,no-bias"), "spill-everywhere"
// and "ssa-spill". An Options value with only Mode set resolves to the
// matching strategy, so existing callers allocate byte-identically.
type Strategy = core.Strategy

// UnknownStrategyError reports a strategy lookup miss; Registered lists
// every valid name.
type UnknownStrategyError = core.UnknownStrategyError

// Strategies lists the registered allocation strategies in registration
// order.
func Strategies() []*Strategy { return core.Strategies() }

// StrategyNames lists the registered strategy names in registration
// order.
func StrategyNames() []string { return core.StrategyNames() }

// StrategyByName resolves a strategy spec — a registered name,
// optionally with ":"-prefixed parameters ("remat:split=all-loops").
// A miss returns *UnknownStrategyError listing the valid names.
func StrategyByName(spec string) (*Strategy, error) { return core.LookupStrategy(spec) }

// NewStrategy builds an allocation strategy for RegisterStrategy: run
// is the whole pipeline, apply (optional) shapes the options first.
func NewStrategy(name, description string, apply func(o *Options), run func(ctx context.Context, rt *Routine, opts Options) (*Result, error)) *Strategy {
	return core.NewStrategy(name, description, apply, run)
}

// RegisterStrategy adds a strategy to the registry, making it
// selectable by name through Options.Strategy, the server and the
// CLIs. Duplicate or malformed registrations panic; register at init
// time.
func RegisterStrategy(s *Strategy) { core.RegisterStrategy(s) }

// Execution harness types.
type (
	Env     = interp.Env
	Outcome = interp.Outcome
	Value   = interp.Value
)

// Kernel is one routine of the benchmark suite.
type Kernel = suite.Kernel

// Parse reads the textual form of a routine. See internal/iloc for the
// grammar; Print output round-trips.
func Parse(src string) (*Routine, error) { return iloc.Parse(src) }

// MustParse is Parse that panics on error; for compile-time constant
// sources only. Caller-supplied text must go through Parse, whose
// errors are *ParseError values locating the offending line.
func MustParse(src string) *Routine { return iloc.MustParse(src) }

// ParseError locates a syntax error in Parse/ParseProgram input.
type ParseError = iloc.ParseError

// ParseProgram reads a file holding several routines; the first is the
// entry point, the rest callees for RunProgram.
func ParseProgram(src string) ([]*Routine, error) { return iloc.ParseProgram(src) }

// Print renders a routine in the form Parse accepts.
func Print(rt *Routine) string { return iloc.Print(rt) }

// Verify checks a routine's structural invariants.
func Verify(rt *Routine) error { return iloc.Verify(rt, false) }

// NewBuilder starts programmatic construction of a routine.
func NewBuilder(name string) *Builder { return iloc.NewBuilder(name) }

// StandardMachine returns the paper's test machine: sixteen integer and
// sixteen floating-point registers, loads and stores costing two cycles.
func StandardMachine() *Machine { return target.Standard() }

// HugeMachine returns the paper's 128-register baseline machine.
func HugeMachine() *Machine { return target.Huge() }

// MachineWithRegs returns a machine with n registers per class, for
// register-set sweeps.
func MachineWithRegs(n int) *Machine { return target.WithRegs(n) }

// MachineEntry is one registered target machine in the zoo: a name, a
// one-line description and the validated machine itself.
type MachineEntry = machines.Entry

// UnknownMachineError reports a machine lookup miss; Registered lists
// the valid names so callers can surface them.
type UnknownMachineError = machines.UnknownMachineError

// Machines lists the registered target machines in registration order.
func Machines() []MachineEntry { return machines.All() }

// MachineNames lists the registered machine names in registration
// order.
func MachineNames() []string { return machines.Names() }

// MachineByName resolves a machine spec — a registered zoo name, or
// "regs=N" for a sweep point — to a fresh validated machine. A miss
// returns *UnknownMachineError listing the valid names.
func MachineByName(spec string) (*Machine, error) { return machines.Lookup(spec) }

// RegisterMachine adds a machine to the zoo under its Machine.Name,
// making it selectable by name through the server, the CLIs and
// MachineByName. The name must be new and the machine valid with a
// shape distinct from every machine already registered (distinct
// machines must never share a cache key); violations panic, like a
// duplicate flag registration.
func RegisterMachine(description string, m *Machine) { machines.Register(description, m) }

// StarvedMachine derives the register-starved variant of a machine —
// the shape the verification sweeps use to force spilling.
func StarvedMachine(m *Machine) *Machine { return machines.Starved(m) }

// CorpusSpec parameterizes deterministic corpus generation; CorpusUnit
// is one generated unit (a parsed multi-routine translation unit plus
// its canonical text and content hash); CorpusManifest is the on-disk
// identity of a written corpus.
type (
	CorpusSpec     = corpus.Spec
	CorpusUnit     = corpus.Unit
	CorpusManifest = corpus.Manifest
)

// ParseCorpusSpec parses a "count=N,seed=S,..." corpus spec string,
// applying defaults for absent keys. The empty string is the default
// corpus.
func ParseCorpusSpec(text string) (CorpusSpec, error) { return corpus.ParseSpec(text) }

// GenerateCorpus deterministically generates the corpus a spec
// describes: the same spec always yields byte-identical units.
func GenerateCorpus(spec CorpusSpec) ([]CorpusUnit, error) { return corpus.Generate(spec) }

// WriteCorpus generates a corpus and writes it under dir — one .iloc
// file per unit plus a MANIFEST.json with content hashes.
func WriteCorpus(dir string, spec CorpusSpec) (*CorpusManifest, error) {
	return corpus.WriteDir(dir, spec)
}

// LoadCorpus reads a written corpus back, verifying every file against
// the manifest hashes.
func LoadCorpus(dir string) (*CorpusManifest, []CorpusUnit, error) { return corpus.Load(dir) }

// Allocate maps the routine's virtual registers onto a machine. The
// input is not modified; Result.Routine holds the allocated clone with
// spill code inserted and register numbers equal to physical colors.
// It is AllocateContext with context.Background(): unbounded, for
// callers that do not need deadlines or cancellation.
//
// Robustness: a panic inside the allocator is contained and surfaces as
// an *AllocError. By default a failed allocation — non-convergence, a
// contained panic, or (with Options.Verify) a verifier rejection —
// degrades to a guaranteed-terminating spill-everywhere allocation with
// Result.Degraded set; Options.DisableDegradation turns the failure
// into an error instead.
func Allocate(rt *Routine, opts Options) (*Result, error) {
	return core.Allocate(context.Background(), rt, opts)
}

// AllocateContext is Allocate bounded by a context: it is checked
// between pipeline passes and spill/color iterations, so the allocator
// never runs long past the context's end. An expired deadline degrades
// to the spill-everywhere fallback with DegradeReason "deadline"
// (unless Options.DisableDegradation); a cancelled context returns the
// cancellation error. The serving layer (cmd/rallocd) relies on this to
// give every request a hard time bound.
func AllocateContext(ctx context.Context, rt *Routine, opts Options) (*Result, error) {
	return core.Allocate(ctx, rt, opts)
}

// AllocError is the structured failure report of one allocation: the
// routine, the pipeline pass, the iteration, and the underlying cause
// (with the goroutine stack when a panic was contained).
type AllocError = core.AllocError

// VerifyAllocation independently checks a finished allocation against
// the input routine it came from: register bounds, use-before-def
// liveness, caller-save discipline across calls, spill-slot soundness,
// rematerialization tags, and — where the routine needs no arguments or
// callees — an interpreter differential. A nil error means the
// allocated routine is safe to run in place of the input.
func VerifyAllocation(input, allocated *Routine, m *Machine) error {
	return verify.Check(input, allocated, m, verify.Options{Differential: true})
}

// AllocPassNames lists the allocator pipeline's passes in execution
// order (conditional passes included).
func AllocPassNames() []string { return core.PassNames() }

// FormatAllocStats renders a Result's per-pass, per-iteration pipeline
// statistics (what cmd/ralloc prints under -stats).
func FormatAllocStats(res *Result) string { return core.FormatStats(res) }

// Batch-allocation engine types (internal/driver): a Driver shards a
// module's routines across a worker pool and returns results in input
// order; a ResultCache makes repeated allocation of identical routines
// free. DriverStats reports wall/CPU time, per-worker utilization and
// this run's cache traffic; CacheStats the cache's lifetime counters.
type (
	Driver       = driver.Engine
	DriverConfig = driver.Config
	DriverStats  = driver.Stats
	DriverUnit   = driver.Unit
	DriverBatch  = driver.Batch
	UnitResult   = driver.UnitResult
	ResultCache  = driver.Cache
	CacheStats   = driver.CacheStats
)

// NewDriver builds a batch-allocation engine. Workers <= 0 uses
// runtime.GOMAXPROCS; a nil Cache disables caching.
func NewDriver(cfg DriverConfig) *Driver { return driver.New(cfg) }

// NewResultCache builds a content-addressed allocation cache holding at
// most capacity entries (0 = unbounded). Share one cache across drivers
// and runs to make repeated allocations free.
func NewResultCache(capacity int) *ResultCache { return driver.NewCache(capacity) }

// Persistent result store types (internal/store): a ResultStore is the
// tiered cache — the in-memory LRU as L1 over a disk tier that survives
// restarts — and drops into DriverConfig.Cache wherever a ResultCache
// fits. StoreStats snapshots both tiers plus the disk tier's fault and
// flush counters; BundleImportStats summarizes one bundle import. See
// "Persistent cache & bundles" in docs/ALGORITHMS.md and
// cmd/ralloc-bundle.
type (
	ResultStore       = store.Tiered
	StoreStats        = store.Stats
	BundleImportStats = store.ImportStats
)

// OpenResultStore opens (creating if needed) a persistent result store
// rooted at dir, with the in-memory tier bounded to l1Capacity entries
// (0 = unbounded). Entries are self-validating on read: corruption is
// quarantined and re-allocated, never served. Close the store to land
// write-behind entries before process exit.
func OpenResultStore(dir string, l1Capacity int) (*ResultStore, error) {
	return store.Open(dir, l1Capacity)
}

// AllocateBatch allocates a module — a set of routines — concurrently
// with a throwaway engine, returning per-routine results in input
// order. It is AllocateBatchContext with context.Background().
func AllocateBatch(units []DriverUnit, cfg DriverConfig) *DriverBatch {
	return driver.Allocate(context.Background(), units, cfg)
}

// AllocateBatchContext is AllocateBatch bounded by a context: units
// already allocating when it ends are aborted by the allocator's own
// checks, unstarted units fail with ctx.Err(), and results finished
// before the end are kept unchanged.
func AllocateBatchContext(ctx context.Context, units []DriverUnit, cfg DriverConfig) *DriverBatch {
	return driver.Allocate(ctx, units, cfg)
}

// Audit stream types (internal/audit): an AuditLogger records one
// AuditRecord per allocation verdict on a bounded, batched stream that
// never blocks the caller (records drop, counted, when the buffer
// fills — unless AuditConfig.BlockOnFull). AuditFileSink writes a
// rotating NDJSON file set; AuditHTTPSink POSTs batches to a
// collector; any AuditSink implementation drops in. This is the stream
// behind rallocd's -audit-dir/-audit-url and GET /v1/audit. See "Async
// jobs & audit stream" in docs/ALGORITHMS.md for the record schema and
// loss semantics.
type (
	AuditLogger   = audit.Logger
	AuditRecord   = audit.Record
	AuditConfig   = audit.Config
	AuditStats    = audit.Stats
	AuditSink     = audit.Sink
	AuditFileSink = audit.FileSink
	AuditHTTPSink = audit.HTTPSink
)

// NewAuditLogger builds an audit stream delivering to cfg.Sink. Close
// it to flush and release the sink.
func NewAuditLogger(cfg AuditConfig) (*AuditLogger, error) { return audit.New(cfg) }

// NewAuditFileSink opens a rotating NDJSON audit sink rooted at dir.
func NewAuditFileSink(dir string, cfg audit.FileSinkConfig) (*AuditFileSink, error) {
	return audit.NewFileSink(dir, cfg)
}

// NewAuditHTTPSink builds a sink POSTing NDJSON batches to url (nil
// client = http.DefaultClient).
func NewAuditHTTPSink(url string, client *http.Client) *AuditHTTPSink {
	return audit.NewHTTPSink(url, client)
}

// Async job manager types (internal/jobs): a JobManager runs submitted
// unit batches in the background with bounded admission, progress
// snapshots, per-unit result streaming (Job.WaitUnit), cancellation
// and bounded retention of finished jobs. This is the engine behind
// rallocd's POST /v1/jobs lifecycle; the Run/Gate hooks in
// JobManagerConfig keep it reusable over any unit runner.
type (
	JobManager       = jobs.Manager
	JobManagerConfig = jobs.Config
	Job              = jobs.Job
	JobSnapshot      = jobs.Snapshot
	JobState         = jobs.State
)

// NewJobManager builds an async job manager; Close cancels live jobs
// and waits for their runners.
func NewJobManager(cfg JobManagerConfig) (*JobManager, error) { return jobs.NewManager(cfg) }

// Telemetry types (internal/telemetry): a TelemetrySink carries an
// optional metrics registry and an optional trace recorder; set it on
// Options.Telemetry or DriverConfig.Telemetry to observe a run. A nil
// sink (the default) costs nothing. Tracer.WriteJSON emits the Chrome
// trace_event format (chrome://tracing, Perfetto); Registry.WriteTo the
// flat "name value" metrics dump. See "Telemetry & tracing" in
// docs/ALGORITHMS.md.
type (
	TelemetrySink   = telemetry.Sink
	MetricsRegistry = telemetry.Registry
	Tracer          = telemetry.Tracer
)

// NewMetricsRegistry builds an empty, concurrency-safe registry of
// named counters, gauges and timing histograms.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// NewTracer builds an empty trace recorder; events are timestamped
// relative to this call.
func NewTracer() *Tracer { return telemetry.NewTracer() }

// NewEnv builds an execution environment for a routine (frame + static
// data). Use Env.Alloc/SetInt/SetFloat to stage inputs, then Env.Run.
func NewEnv(rt *Routine) (*Env, error) { return interp.New(rt, interp.Config{}) }

// Run executes a routine in a fresh environment, returning dynamic
// instruction counts and the returned value.
func Run(rt *Routine, args ...Value) (*Outcome, error) {
	e, err := NewEnv(rt)
	if err != nil {
		return nil, err
	}
	return e.Run(args...)
}

// RunProgram executes a multi-routine program: rt is the entry point and
// callees resolve its call instructions. Counts cover all activations.
func RunProgram(rt *Routine, callees []*Routine, args ...Value) (*Outcome, error) {
	e, err := interp.New(rt, interp.Config{Routines: callees})
	if err != nil {
		return nil, err
	}
	return e.Run(args...)
}

// Int and Float build routine arguments.
func Int(v int64) Value     { return interp.Int(v) }
func Float(f float64) Value { return interp.Float(f) }

// TranslateC renders a routine as the instrumented C of the paper's
// Figure 4.
func TranslateC(rt *Routine) (string, error) { return ctrans.Translate(rt) }

// Suite returns the benchmark kernels (synthetic analogs of the paper's
// seventy-routine FORTRAN suite; see DESIGN.md on substitutions).
func Suite() []*Kernel { return suite.All() }

// KernelByName looks up a suite kernel.
func KernelByName(name string) *Kernel { return suite.ByName(name) }

// Experiment drivers. Each regenerates one of the paper's artifacts.
type (
	Table1Config = experiments.Table1Config
	Table1Row    = experiments.Table1Row
	Table2Column = experiments.Table2Column
)

// Table1 reproduces the spill-cost comparison of the paper's Table 1.
func Table1(cfg Table1Config) ([]Table1Row, error) { return experiments.Table1(cfg) }

// FormatTable1 renders Table 1 rows in the paper's layout.
func FormatTable1(rows []Table1Row) string { return experiments.FormatTable1(rows) }

// Table2 reproduces the per-phase allocation-time table.
func Table2(m *Machine, runs int) ([]Table2Column, error) { return experiments.Table2(m, runs) }

// Table2Jobs is Table2 with the repeated allocations sharded across the
// batch driver's worker pool (jobs <= 0 = number of CPUs).
func Table2Jobs(m *Machine, runs, jobs int) ([]Table2Column, error) {
	return experiments.Table2Jobs(m, runs, jobs)
}

// FormatTable2 renders Table 2 columns.
func FormatTable2(cols []Table2Column) string { return experiments.FormatTable2(cols) }

// Figure1 reproduces the rematerialization-versus-spilling comparison.
func Figure1() (*experiments.Figure1Result, error) { return experiments.Figure1() }

// Figure2 traces the allocator pipeline on a spilling example.
func Figure2() (string, error) { return experiments.Figure2() }

// Figure3 walks the split-insertion example.
func Figure3() (*experiments.Figure3Result, error) { return experiments.Figure3() }

// Figure4 renders the ILOC-and-instrumented-C figure.
func Figure4() (string, error) { return experiments.FormatFigure4() }

// StrategyMatrixRow is one line of the allocation-strategy matrix: one
// registered strategy's dynamic cycle count and allocator totals over
// the full suite.
type StrategyMatrixRow = experiments.StrategyMatrixRow

// StrategyMatrix compares every registered allocation strategy by
// dynamic cycle count over the full kernel suite (nil machine = the
// calibrated 6-register pressure point; jobs bounds the batch workers).
func StrategyMatrix(m *Machine, jobs int) ([]StrategyMatrixRow, error) {
	return experiments.StrategyMatrix(m, jobs)
}

// FormatStrategyMatrix renders the matrix.
func FormatStrategyMatrix(rows []StrategyMatrixRow, m *Machine) string {
	return experiments.FormatStrategyMatrix(rows, m)
}

// SplittingRow is one line of the §6 splitting-scheme study.
type SplittingRow = experiments.SplittingRow

// SplittingSchemes lists the §6 schemes the study sweeps.
func SplittingSchemes() []core.SplitScheme { return experiments.SplittingSchemes }

// SplittingStudy reproduces §6's comparison of live-range splitting
// schemes against the plain rematerializing allocator.
func SplittingStudy(m *Machine) ([]SplittingRow, error) { return experiments.SplittingStudy(m) }

// FormatSplitting renders the study.
func FormatSplitting(rows []SplittingRow) string { return experiments.FormatSplitting(rows) }
