package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/target"
	"repro/internal/telemetry"
)

// testSource reads the repository's standard single-routine workload.
func testSource(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile("../../testdata/sumabs.iloc")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func programSource(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile("../../testdata/program.iloc")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// post sends a JSON body and returns the status, headers and decoded-ish
// raw body.
func post(t *testing.T, url string, body any, hdr map[string]string) (int, http.Header, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, out
}

func decodeAllocate(t *testing.T, body []byte) AllocateResponse {
	t.Helper()
	var ar AllocateResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("bad response body: %v\n%s", err, body)
	}
	return ar
}

func TestAllocateOK(t *testing.T) {
	ts := newTestServer(t, Config{})
	status, hdr, body := post(t, ts.URL+"/v1/allocate", AllocateRequest{ILOC: testSource(t)}, nil)
	if status != http.StatusOK {
		t.Fatalf("status = %d\n%s", status, body)
	}
	ar := decodeAllocate(t, body)
	if hdr.Get("X-Request-ID") == "" || ar.RequestID != hdr.Get("X-Request-ID") {
		t.Fatalf("request id: header %q body %q", hdr.Get("X-Request-ID"), ar.RequestID)
	}
	if len(ar.Results) != 1 || ar.Stats.Routines != 1 {
		t.Fatalf("results = %d, stats = %+v", len(ar.Results), ar.Stats)
	}
	u := ar.Results[0]
	if u.Name != "sumabs" || u.Error != "" || u.Code == "" {
		t.Fatalf("unit = %+v", u)
	}
	// The serving default runs the post-allocation checker; a 200 body
	// is verified code.
	if !u.Verified {
		t.Fatalf("default allocation not verified: %+v", u)
	}
	if u.Degraded || u.DegradeReason != "" {
		t.Fatalf("unexpected degradation: %+v", u)
	}
	if !strings.Contains(u.Code, "routine sumabs") {
		t.Fatalf("code does not look like ILOC:\n%s", u.Code)
	}
}

func TestAllocateMultiRoutineProgram(t *testing.T) {
	ts := newTestServer(t, Config{})
	status, _, body := post(t, ts.URL+"/v1/allocate", AllocateRequest{ILOC: programSource(t)}, nil)
	if status != http.StatusOK {
		t.Fatalf("status = %d\n%s", status, body)
	}
	ar := decodeAllocate(t, body)
	if len(ar.Results) != 2 {
		t.Fatalf("want 2 routines, got %d", len(ar.Results))
	}
	for _, u := range ar.Results {
		if u.Error != "" || u.Code == "" || !u.Verified {
			t.Fatalf("unit = %+v", u)
		}
	}
}

func TestBatchWithPerUnitOptions(t *testing.T) {
	ts := newTestServer(t, Config{})
	src := testSource(t)
	req := BatchRequest{
		Units: []BatchUnit{
			{Name: "remat-side", ILOC: src},
			{Name: "chaitin-side", ILOC: src, Options: &OptionsRequest{Mode: "chaitin", Regs: 8}},
		},
	}
	status, _, body := post(t, ts.URL+"/v1/batch", req, nil)
	if status != http.StatusOK {
		t.Fatalf("status = %d\n%s", status, body)
	}
	ar := decodeAllocate(t, body)
	if len(ar.Results) != 2 {
		t.Fatalf("want 2 units, got %d", len(ar.Results))
	}
	if ar.Results[0].Name != "remat-side" || ar.Results[1].Name != "chaitin-side" {
		t.Fatalf("names = %q, %q", ar.Results[0].Name, ar.Results[1].Name)
	}
	for _, u := range ar.Results {
		if u.Error != "" || u.Code == "" || !u.Verified {
			t.Fatalf("unit = %+v", u)
		}
	}
}

func TestCacheHitAcrossRequests(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := AllocateRequest{ILOC: testSource(t)}
	_, _, first := post(t, ts.URL+"/v1/allocate", req, nil)
	_, _, second := post(t, ts.URL+"/v1/allocate", req, nil)
	a, b := decodeAllocate(t, first), decodeAllocate(t, second)
	if a.Results[0].CacheHit {
		t.Fatal("first request hit a cold cache")
	}
	if !b.Results[0].CacheHit {
		t.Fatal("second identical request missed the shared cache")
	}
	if a.Results[0].Code != b.Results[0].Code {
		t.Fatal("cache hit returned different code")
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t, Config{})
	src := testSource(t)
	cases := []struct {
		name string
		do   func() (int, http.Header, []byte)
	}{
		{"malformed json", func() (int, http.Header, []byte) {
			resp, err := http.Post(ts.URL+"/v1/allocate", "application/json", strings.NewReader("{"))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			return resp.StatusCode, resp.Header, b
		}},
		{"empty iloc", func() (int, http.Header, []byte) {
			return post(t, ts.URL+"/v1/allocate", AllocateRequest{}, nil)
		}},
		{"unparseable iloc", func() (int, http.Header, []byte) {
			return post(t, ts.URL+"/v1/allocate", AllocateRequest{ILOC: "not iloc at all"}, nil)
		}},
		{"unknown mode", func() (int, http.Header, []byte) {
			return post(t, ts.URL+"/v1/allocate",
				AllocateRequest{ILOC: src, Options: &OptionsRequest{Mode: "linear-scan"}}, nil)
		}},
		{"unknown split", func() (int, http.Header, []byte) {
			return post(t, ts.URL+"/v1/allocate",
				AllocateRequest{ILOC: src, Options: &OptionsRequest{Split: "sideways"}}, nil)
		}},
		{"bad deadline header", func() (int, http.Header, []byte) {
			return post(t, ts.URL+"/v1/allocate", AllocateRequest{ILOC: src},
				map[string]string{"X-Deadline-Ms": "soon"})
		}},
		{"empty batch", func() (int, http.Header, []byte) {
			return post(t, ts.URL+"/v1/batch", BatchRequest{}, nil)
		}},
		{"bad unit options", func() (int, http.Header, []byte) {
			return post(t, ts.URL+"/v1/batch", BatchRequest{
				Units: []BatchUnit{{ILOC: src, Options: &OptionsRequest{Mode: "bogus"}}},
			}, nil)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, body := tc.do()
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d\n%s", status, body)
			}
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				t.Fatalf("error body: %v\n%s", err, body)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/allocate")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Allow") != http.MethodPost {
		t.Fatalf("Allow = %q", resp.Header.Get("Allow"))
	}
}

func TestRequestIDClientSupplied(t *testing.T) {
	ts := newTestServer(t, Config{})
	_, hdr, body := post(t, ts.URL+"/v1/allocate", AllocateRequest{ILOC: testSource(t)},
		map[string]string{"X-Request-ID": "trace-me-42"})
	if hdr.Get("X-Request-ID") != "trace-me-42" {
		t.Fatalf("header id = %q", hdr.Get("X-Request-ID"))
	}
	if ar := decodeAllocate(t, body); ar.RequestID != "trace-me-42" {
		t.Fatalf("body id = %q", ar.RequestID)
	}
}

// TestSheds429WhenSaturated pins the server's overload contract: with
// one slot and no queue headroom, a second request arriving while the
// first is mid-allocation is shed immediately with 429 + Retry-After —
// not queued indefinitely, not a 5xx.
func TestSheds429WhenSaturated(t *testing.T) {
	reg := telemetry.NewRegistry()
	ts := newTestServer(t, Config{
		MaxInFlight: 1,
		MaxQueue:    -1, // no queue: shed whenever the slot is busy
		Telemetry:   &telemetry.Sink{Metrics: reg},
	})

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	core.PanicHook = func(routine, pass string) {
		if routine == "sumabs" && pass == "cfa" {
			once.Do(func() {
				close(entered)
				<-release
			})
		}
	}
	defer func() { core.PanicHook = nil }()

	src := testSource(t)
	firstDone := make(chan int, 1)
	go func() {
		status, _, _ := post(t, ts.URL+"/v1/allocate", AllocateRequest{ILOC: src}, nil)
		firstDone <- status
	}()
	<-entered

	// The slot and the only queue token are held; this request must shed.
	status, hdr, body := post(t, ts.URL+"/v1/allocate", AllocateRequest{ILOC: src}, nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429\n%s", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.RetryAfterSec < 1 {
		t.Fatalf("shed body: %v\n%s", err, body)
	}

	close(release)
	if st := <-firstDone; st != http.StatusOK {
		t.Fatalf("first request status = %d", st)
	}
	if got := reg.Counter("server.shed").Value(); got != 1 {
		t.Fatalf("server.shed = %d, want 1", got)
	}
}

// TestDeadlineDegradesOverHTTP pins the serving deadline contract: a
// request whose X-Deadline-Ms budget expires mid-allocation still gets
// a 200 carrying the spill-everywhere degradation with reason
// "deadline", and the answer arrives promptly rather than hanging.
func TestDeadlineDegradesOverHTTP(t *testing.T) {
	ts := newTestServer(t, Config{})
	core.PanicHook = func(routine, pass string) {
		if pass == "build" {
			time.Sleep(40 * time.Millisecond)
		}
	}
	defer func() { core.PanicHook = nil }()

	start := time.Now()
	status, _, body := post(t, ts.URL+"/v1/allocate", AllocateRequest{ILOC: testSource(t)},
		map[string]string{"X-Deadline-Ms": "10"})
	elapsed := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("status = %d\n%s", status, body)
	}
	ar := decodeAllocate(t, body)
	u := ar.Results[0]
	if u.Error != "" {
		t.Fatalf("deadline request errored instead of degrading: %s", u.Error)
	}
	if !u.Degraded || u.DegradeReason != core.DegradeReasonDeadline {
		t.Fatalf("degraded=%v reason=%q", u.Degraded, u.DegradeReason)
	}
	if u.Code == "" || !u.Verified {
		t.Fatalf("degraded allocation not usable: %+v", u)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline response took %v", elapsed)
	}
}

// A deadline-degraded result must not poison the shared cache: the same
// source with a generous budget afterwards gets the real allocation.
func TestDeadlineResultNotCached(t *testing.T) {
	cache := driver.NewCache(0)
	ts := newTestServer(t, Config{Cache: cache})
	core.PanicHook = func(routine, pass string) {
		if pass == "build" {
			time.Sleep(40 * time.Millisecond)
		}
	}
	status, _, body := post(t, ts.URL+"/v1/allocate", AllocateRequest{ILOC: testSource(t)},
		map[string]string{"X-Deadline-Ms": "10"})
	core.PanicHook = nil
	if status != http.StatusOK {
		t.Fatalf("status = %d\n%s", status, body)
	}
	if u := decodeAllocate(t, body).Results[0]; !u.Degraded {
		t.Fatalf("setup: expected degradation, got %+v", u)
	}
	if n := cache.Stats().Entries; n != 0 {
		t.Fatalf("deadline-degraded result cached (%d entries)", n)
	}
	_, _, body2 := post(t, ts.URL+"/v1/allocate", AllocateRequest{ILOC: testSource(t)}, nil)
	if u := decodeAllocate(t, body2).Results[0]; u.Degraded || u.CacheHit {
		t.Fatalf("follow-up allocation: %+v", u)
	}
}

func TestStrictModeSurfacesErrors(t *testing.T) {
	ts := newTestServer(t, Config{})
	core.PanicHook = func(routine, pass string) {
		if pass == "build" {
			time.Sleep(40 * time.Millisecond)
		}
	}
	defer func() { core.PanicHook = nil }()
	status, _, body := post(t, ts.URL+"/v1/allocate",
		AllocateRequest{ILOC: testSource(t), Options: &OptionsRequest{Strict: true}},
		map[string]string{"X-Deadline-Ms": "10"})
	if status != http.StatusOK {
		t.Fatalf("status = %d\n%s", status, body)
	}
	u := decodeAllocate(t, body).Results[0]
	if u.Error == "" || u.Code != "" || u.Degraded {
		t.Fatalf("strict deadline unit = %+v", u)
	}
}

func TestOpsEndpoints(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if st, b := get("/healthz"); st != 200 || !strings.Contains(b, "ok") {
		t.Fatalf("healthz = %d %q", st, b)
	}
	if st, b := get("/readyz"); st != 200 || !strings.Contains(b, "ready") {
		t.Fatalf("readyz = %d %q", st, b)
	}
	srv.SetReady(false)
	if st, b := get("/readyz"); st != http.StatusServiceUnavailable || !strings.Contains(b, "draining") {
		t.Fatalf("draining readyz = %d %q", st, b)
	}
	srv.SetReady(true)

	// One allocation, then the registry dump must mention the request.
	status, _, _ := post(t, ts.URL+"/v1/allocate", AllocateRequest{ILOC: testSource(t)}, nil)
	if status != 200 {
		t.Fatalf("allocate = %d", status)
	}
	if st, b := get("/metrics"); st != 200 || !strings.Contains(b, "server.requests 1") {
		t.Fatalf("metrics = %d\n%s", st, b)
	}
	if st, _ := get("/debug/vars"); st != 200 {
		t.Fatalf("debug/vars = %d", st)
	}
	if st, b := get("/debug/pprof/"); st != 200 || !strings.Contains(b, "profile") {
		t.Fatalf("pprof index = %d", st)
	}
}

// TestPanicIsolation drives the instrumentation wrapper directly with a
// panicking handler: the request answers 500, the panic counter ticks,
// and the server keeps serving.
func TestPanicIsolation(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := New(Config{Telemetry: &telemetry.Sink{Metrics: reg}})
	h := srv.instrument("/boom", func(http.ResponseWriter, *http.Request, *requestInfo) {
		panic("handler bug")
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Post(ts.URL, "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "handler bug") {
		t.Fatalf("body = %s", body)
	}
	if got := reg.Counter("server.panics").Value(); got != 1 {
		t.Fatalf("server.panics = %d", got)
	}
	// Still alive.
	resp2, err := http.Post(ts.URL, "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
}

// TestConcurrentRequests hammers a small server from many goroutines;
// under -race this exercises the admission channels, the shared cache
// and the shared registry. Every answer must be 200 or 429.
func TestConcurrentRequests(t *testing.T) {
	ts := newTestServer(t, Config{MaxInFlight: 2, MaxQueue: 2})
	src := testSource(t)
	prog := programSource(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := AllocateRequest{ILOC: src}
			if i%3 == 0 {
				body.ILOC = prog
			}
			status, _, b := post(t, ts.URL+"/v1/allocate", body, nil)
			switch status {
			case http.StatusOK:
				for _, u := range decodeAllocate(t, b).Results {
					if u.Error != "" || !u.Verified {
						errs <- fmt.Errorf("bad unit under load: %+v", u)
						return
					}
				}
			case http.StatusTooManyRequests:
				// shed is a correct answer under load
			default:
				errs <- fmt.Errorf("status %d under load: %s", status, b)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestOptionsMergeOverDefaults(t *testing.T) {
	// Server-level defaults (chaitin, 8 regs) apply when the request
	// carries nothing, and request options win when present.
	cfg := Config{
		Options:           core.Options{Machine: target.WithRegs(8), Mode: core.ModeChaitin, Verify: true},
		DefaultOptionsSet: true,
	}
	ts := newTestServer(t, cfg)
	src := testSource(t)
	status, _, body := post(t, ts.URL+"/v1/allocate", AllocateRequest{ILOC: src}, nil)
	if status != 200 {
		t.Fatalf("status = %d\n%s", status, body)
	}
	if u := decodeAllocate(t, body).Results[0]; u.Error != "" || !u.Verified {
		t.Fatalf("unit = %+v", u)
	}
	status, _, body = post(t, ts.URL+"/v1/allocate",
		AllocateRequest{ILOC: src, Options: &OptionsRequest{Mode: "remat", Regs: 6, Split: "all-loops"}}, nil)
	if status != 200 {
		t.Fatalf("status = %d\n%s", status, body)
	}
	if u := decodeAllocate(t, body).Results[0]; u.Error != "" || !u.Verified {
		t.Fatalf("unit = %+v", u)
	}
}

func TestBackendHeaderStampedEverywhere(t *testing.T) {
	ts := newTestServer(t, Config{InstanceID: "unit-test-7"})
	// Allocation responses carry the instance both as the header and
	// per-unit in the body, so proxied batches stay attributable.
	status, hdr, body := post(t, ts.URL+"/v1/allocate", AllocateRequest{ILOC: testSource(t)}, nil)
	if status != http.StatusOK {
		t.Fatalf("status = %d\n%s", status, body)
	}
	if got := hdr.Get(BackendHeader); got != "unit-test-7" {
		t.Fatalf("%s = %q, want unit-test-7", BackendHeader, got)
	}
	if ar := decodeAllocate(t, body); ar.Results[0].Backend != "unit-test-7" {
		t.Fatalf("unit backend = %q, want unit-test-7", ar.Results[0].Backend)
	}
	// Every response — health, errors — carries the header too.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(BackendHeader); got != "unit-test-7" {
		t.Fatalf("healthz %s = %q", BackendHeader, got)
	}
}

func TestInstanceIDDefaultDerived(t *testing.T) {
	s := New(Config{})
	if s.InstanceID() == "" {
		t.Fatal("default instance ID empty")
	}
}
