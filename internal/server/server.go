// Package server is the allocation service: a stdlib-only HTTP layer
// that turns the batch driver into a long-running daemon (cmd/rallocd)
// fit for sustained traffic. It exposes the allocator as
// POST /v1/allocate and POST /v1/batch backed by one shared
// driver.Engine and content-addressed result cache (with
// GET /v1/strategies listing the registered allocation strategies a
// request may select), and wraps every request in the production
// behaviors the one-shot CLIs never needed:
//
//   - Admission control. A bounded queue fronts the worker slots; a
//     request that finds the queue full is shed immediately with
//     429 + Retry-After instead of piling onto the run queue. Under
//     saturation the service answers only 200 or 429 — never a hang,
//     never an overload 5xx.
//   - Deadlines. Each request runs under a context deadline taken from
//     the X-Deadline-Ms header, clamped to a server maximum. The
//     deadline is threaded through driver.Engine.Run into
//     core.Allocate, which checks it between pipeline passes; on expiry
//     the response carries the guaranteed-terminating spill-everywhere
//     degradation with reason "deadline" rather than timing out empty.
//   - Request identity. Every request gets an ID (client-supplied
//     X-Request-ID or generated), echoed in the response header and
//     body and attached to the request's telemetry span on its own
//     trace thread.
//   - Panic isolation. The allocator contains its own panics; the
//     serving layer adds a second boundary so a handler bug fails one
//     request with a 500, never the process.
//   - Operational surface. /healthz (liveness), /readyz (readiness,
//     flipped off during drain), /metrics (the telemetry registry's
//     flat dump), and /debug/pprof + /debug/vars.
package server

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/jobs"
	"repro/internal/store"
	"repro/internal/target"
	"repro/internal/telemetry"
)

// Config configures a Server. The zero value is usable: every field
// has a production-shaped default.
type Config struct {
	// Options is the default allocation configuration; request options
	// merge over it. A zero Options gets the standard machine, ModeRemat
	// and Verify on — the serving default is verified allocations.
	Options core.Options
	// DefaultOptionsSet marks Options as deliberately zero-configured;
	// when false and Options is entirely zero, the serving defaults
	// above are applied.
	DefaultOptionsSet bool
	// Workers bounds each batch's worker pool (<= 0: GOMAXPROCS).
	Workers int
	// Cache is the shared content-addressed result cache; nil builds an
	// unbounded in-memory one. Deadline-degraded results are never
	// cached.
	Cache driver.ResultCache
	// Store, when non-nil, is the tiered persistent result store: it
	// becomes the Cache, its per-tier stats feed /metrics and
	// /debug/vars, and its disk tier is exported via
	// GET /v1/cache/bundle.
	Store *store.Tiered
	// MaxInFlight bounds requests allocating concurrently (<= 0:
	// GOMAXPROCS).
	MaxInFlight int
	// MaxQueue bounds requests waiting for a slot beyond MaxInFlight;
	// a request arriving with the queue full is shed with 429
	// (< 0: no queue — shed whenever all slots are busy; 0: default
	// 4*MaxInFlight).
	MaxQueue int
	// DefaultDeadline applies when the client sends no X-Deadline-Ms
	// header (0: 30s). MaxDeadline clamps client-requested deadlines
	// (0: 2m).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxBodyBytes bounds request bodies (0: 16 MiB).
	MaxBodyBytes int64
	// RetryAfter is the backoff hint sent with 429 (0: 1s).
	RetryAfter time.Duration
	// Audit, when non-nil, receives one record per allocation verdict —
	// sync and async paths alike. The server never closes it; the
	// daemon that built the logger flushes and closes it on shutdown.
	Audit *audit.Logger
	// MaxJobs bounds queued+running async jobs; a POST /v1/jobs beyond
	// it sheds with 429 (0: 64).
	MaxJobs int
	// JobRetention is how long a finished job's results stay pollable
	// (0: 15m); MaxRetainedJobs bounds finished jobs kept regardless of
	// age (0: 256).
	JobRetention    time.Duration
	MaxRetainedJobs int
	// Telemetry receives request spans, admission metrics and the
	// allocator/driver instrumentation. A nil sink gets a fresh metrics
	// registry (no tracer) so /metrics always serves.
	Telemetry *telemetry.Sink
	// InstanceID names this server instance; it is stamped on every
	// response as the X-Ralloc-Backend header (and per-unit in batch
	// bodies) so results can be attributed through the routing proxy.
	// Empty derives "<hostname>-<pid>".
	InstanceID string
}

// DefaultOptions is the serving default allocation configuration: the
// standard machine, the paper's remat mode, and the independent
// verifier on. The routing proxy uses the same value to compute
// routing keys, so proxy and backend agree on request identity.
func DefaultOptions() core.Options {
	return core.Options{Machine: target.Standard(), Mode: core.ModeRemat, Verify: true}
}

func (c Config) withDefaults() Config {
	if !c.DefaultOptionsSet && c.Options == (core.Options{}) {
		c.Options = DefaultOptions()
	}
	if c.InstanceID == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "rallocd"
		}
		c.InstanceID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	case c.MaxQueue == 0:
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 64
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 15 * time.Minute
	}
	if c.MaxRetainedJobs <= 0 {
		c.MaxRetainedJobs = 256
	}
	if c.Store != nil {
		c.Cache = c.Store
	} else if c.Cache == nil {
		c.Cache = driver.NewCache(0)
	}
	if c.Telemetry == nil {
		c.Telemetry = &telemetry.Sink{Metrics: telemetry.NewRegistry()}
	} else if c.Telemetry.Metrics == nil {
		t := *c.Telemetry
		t.Metrics = telemetry.NewRegistry()
		c.Telemetry = &t
	}
	return c
}

// Server is the allocation service. Construct with New; the zero value
// is not useful. A Server is safe for concurrent use — its only
// mutable state is the admission channels, the request counter and the
// readiness flag.
type Server struct {
	cfg    Config
	engine *driver.Engine
	jobs   *jobs.Manager
	mux    *http.ServeMux

	// Admission: a request first takes a queue token (shed on failure),
	// then waits for a run slot. Channel capacities are the bounds.
	slots chan struct{}
	queue chan struct{}

	reqSeq   atomic.Int64
	ready    atomic.Bool
	inflight atomic.Int64
}

// New builds a Server and its HTTP handler tree.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		engine: driver.New(driver.Config{
			Options:   cfg.Options,
			Workers:   cfg.Workers,
			Cache:     cfg.Cache,
			Telemetry: cfg.Telemetry,
		}),
		slots: make(chan struct{}, cfg.MaxInFlight),
		queue: make(chan struct{}, cfg.MaxInFlight+cfg.MaxQueue),
	}
	s.ready.Store(true)

	// The async job manager runs batches through a per-job engine over
	// the same cache, drawing run slots from the same admission pool as
	// the sync paths (jobGate), with audit emission per unit verdict.
	s.jobs, _ = jobs.NewManager(jobs.Config{
		Run:         s.runJobUnits,
		Gate:        s.jobGate,
		MaxActive:   cfg.MaxJobs,
		Retention:   cfg.JobRetention,
		MaxRetained: cfg.MaxRetainedJobs,
		OnUnitDone:  s.auditJobUnit,
		Telemetry:   cfg.Telemetry,
	})

	s.mux = http.NewServeMux()
	s.mux.Handle("/v1/allocate", s.instrument("/v1/allocate", s.handleAllocate))
	s.mux.Handle("/v1/batch", s.instrument("/v1/batch", s.handleBatch))
	s.mux.Handle("POST /v1/jobs", s.instrument("/v1/jobs", s.handleJobSubmit))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleJobResults)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("/v1/audit", s.handleAudit)
	s.mux.HandleFunc("/v1/strategies", s.handleStrategies)
	s.mux.HandleFunc("/v1/machines", s.handleMachines)
	s.mux.HandleFunc("/v1/cache/bundle", s.handleBundle)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux.Handle("/debug/vars", expvar.Handler())

	// Publish the store's per-tier stats as one expvar so /debug/vars
	// carries them alongside memstats. expvar is process-global and
	// panics on duplicate names, so the var is registered once and
	// reads whichever server was constructed last (in production there
	// is exactly one).
	if cfg.Store != nil {
		expStore.Store(cfg.Store)
		expPublishOnce.Do(func() {
			expvar.Publish("ralloc.cache", expvar.Func(func() any {
				if st, _ := expStore.Load().(*store.Tiered); st != nil {
					return st.Stats()
				}
				return nil
			}))
		})
	}
	return s
}

var (
	expPublishOnce sync.Once
	expStore       atomic.Value // *store.Tiered
)

// Handler returns the service's HTTP handler tree, ready to mount on an
// http.Server (or httptest). Every response — allocations, health,
// metrics, errors — carries the X-Ralloc-Backend header naming this
// instance, so anything observed through the routing proxy can be
// attributed to the backend that produced it.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(BackendHeader, s.cfg.InstanceID)
		s.mux.ServeHTTP(w, r)
	})
}

// BackendHeader is the response header naming the rallocd instance
// that produced a response. The routing proxy relays it verbatim.
const BackendHeader = "X-Ralloc-Backend"

// InstanceID returns the name this server stamps on its responses.
func (s *Server) InstanceID() string { return s.cfg.InstanceID }

// InFlight reports how many admitted requests are currently running —
// what a drain is waiting on, and what gets abandoned when the drain
// deadline fires.
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// Jobs returns the async job manager behind /v1/jobs.
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Close cancels every live async job and waits for their runners — the
// server's half of a drain. Finished jobs stay pollable until the
// listener itself goes away; the audit logger (owned by the daemon) is
// closed after this returns, so the last verdicts still land.
func (s *Server) Close() { s.jobs.Close() }

// Metrics returns the telemetry registry backing /metrics.
func (s *Server) Metrics() *telemetry.Registry { return s.cfg.Telemetry.Metrics }

// Cache returns the shared result cache.
func (s *Server) Cache() driver.ResultCache { return s.cfg.Cache }

// Store returns the tiered persistent store, or nil when the server
// runs on a plain in-memory cache.
func (s *Server) Store() *store.Tiered { return s.cfg.Store }

// SetReady flips the /readyz verdict. The daemon clears it when a drain
// begins so load balancers stop routing new work while in-flight
// batches finish.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// errShed reports a request shed by admission control.
var errShed = errors.New("server: saturated: admission queue full")

// admit implements admission control. It returns a release function on
// success. A full queue — or a context that ends while waiting for a
// run slot — sheds the request: both surface as errShed and become
// 429 + Retry-After, so a saturated server's only answers are 200 and
// 429.
func (s *Server) admit(done <-chan struct{}) (release func(), err error) {
	tel := s.cfg.Telemetry
	select {
	case s.queue <- struct{}{}:
	default:
		tel.Count("server.shed", 1)
		return nil, errShed
	}
	tel.Gauge("server.queue.depth").Add(1)
	start := time.Now()
	select {
	case s.slots <- struct{}{}:
	case <-done:
		tel.Gauge("server.queue.depth").Add(-1)
		<-s.queue
		tel.Count("server.shed", 1)
		return nil, errShed
	}
	tel.Gauge("server.queue.depth").Add(-1)
	tel.Observe("server.queue.wait", time.Since(start).Nanoseconds())
	tel.Gauge("server.inflight").Add(1)
	s.inflight.Add(1)
	return func() {
		s.inflight.Add(-1)
		tel.Gauge("server.inflight").Add(-1)
		<-s.slots
		<-s.queue
	}, nil
}

// deadlineFor resolves a request's time budget: the X-Deadline-Ms
// header clamped to MaxDeadline, or DefaultDeadline when absent. The
// returned bool reports a malformed header.
func (s *Server) deadlineFor(r *http.Request) (time.Duration, bool) {
	h := r.Header.Get("X-Deadline-Ms")
	if h == "" {
		return s.cfg.DefaultDeadline, true
	}
	var ms int64
	if _, err := fmt.Sscanf(h, "%d", &ms); err != nil || ms <= 0 {
		return 0, false
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d, true
}

// statusWriter records the status code a handler wrote so the
// instrumentation can count outcomes per class.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps an allocation handler with the per-request
// machinery: request ID assignment, a telemetry span on the request's
// own trace thread, outcome counters, and panic containment (a handler
// panic answers 500 and increments server.panics; the process lives
// on).
func (s *Server) instrument(name string, h func(http.ResponseWriter, *http.Request, *requestInfo)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seq := s.reqSeq.Add(1)
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = fmt.Sprintf("req-%06d", seq)
		}
		w.Header().Set("X-Request-ID", id)

		tel := s.cfg.Telemetry
		// Each request gets its own trace thread, named by its ID, so a
		// trace of a busy server reads as one lane per request.
		sink := tel.WithTID(1000 + seq)
		if sink != nil && sink.Trace != nil {
			sink.Trace.SetThreadName(1000+seq, id)
		}
		info := &requestInfo{id: id, sink: sink}

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		sp := sink.StartSpan(telemetry.CatServer, name)
		defer func() {
			if v := recover(); v != nil {
				tel.Count("server.panics", 1)
				// Best effort: if the handler already wrote, the client
				// sees a truncated body; either way the process survives.
				writeError(sw, http.StatusInternalServerError, ErrorResponse{
					Error:     fmt.Sprintf("internal error: %v", v),
					RequestID: id,
				})
			}
			if sp.Active() {
				sp.StrArg("id", id)
				sp.Arg("status", int64(sw.status))
			}
			wall := sp.End()
			tel.Count("server.requests", 1)
			tel.Count(fmt.Sprintf("server.status.%dxx", sw.status/100), 1)
			tel.Observe("server.request.wall", wall.Nanoseconds())
		}()

		if r.Method != http.MethodPost {
			sw.Header().Set("Allow", http.MethodPost)
			writeError(sw, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only", RequestID: id})
			return
		}
		r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		h(sw, r, info)
	})
}

// requestInfo carries one request's identity through the handler chain.
type requestInfo struct {
	id   string
	sink *telemetry.Sink
}

// writeJSON marshals v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v) // the connection owns delivery; nothing to do on error
}

// writeError answers with the service's uniform error body.
func writeError(w http.ResponseWriter, status int, e ErrorResponse) {
	writeJSON(w, status, e)
}
