package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/audit"
)

// jobBatchBody builds a 3-unit batch request shared by the sync/async
// comparison tests.
func jobBatchBody(t *testing.T) BatchRequest {
	t.Helper()
	src := testSource(t)
	return BatchRequest{Units: []BatchUnit{
		{Name: "u0", ILOC: src},
		{Name: "u1", ILOC: src, Options: &OptionsRequest{Mode: "chaitin"}},
		{Name: "u2", ILOC: src, Options: &OptionsRequest{Split: "all-loops"}},
	}}
}

func decodeJob(t *testing.T, body []byte) JobResponse {
	t.Helper()
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("bad job body: %v\n%s", err, body)
	}
	return jr
}

// pollJob polls GET /v1/jobs/{id} until the job is terminal.
func pollJob(t *testing.T, base, id string) JobResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status = %d\n%s", resp.StatusCode, buf.String())
		}
		jr := decodeJob(t, buf.Bytes())
		if jr.State == "done" || jr.State == "canceled" {
			return jr
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, jr.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// streamResults reads GET /v1/jobs/{id}/results to EOF, one
// UnitResponse per NDJSON line.
func streamResults(t *testing.T, base, id string) []UnitResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results Content-Type = %q", ct)
	}
	var out []UnitResponse
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var u UnitResponse
		if err := json.Unmarshal(sc.Bytes(), &u); err != nil {
			t.Fatalf("bad NDJSON line: %v\n%s", err, sc.Text())
		}
		out = append(out, u)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestJobResultsMatchSyncBatch is the tentpole contract: the async
// path's streamed results are unit-for-unit identical to a sync
// /v1/batch run of the same body — same order, same code bytes, same
// verdict fields.
func TestJobResultsMatchSyncBatch(t *testing.T) {
	ts := newTestServer(t, Config{})
	body := jobBatchBody(t)

	status, _, syncRaw := post(t, ts.URL+"/v1/batch", body, nil)
	if status != http.StatusOK {
		t.Fatalf("sync status = %d\n%s", status, syncRaw)
	}
	sync := decodeAllocate(t, syncRaw)

	status, hdr, raw := post(t, ts.URL+"/v1/jobs", body, nil)
	if status != http.StatusOK {
		t.Fatalf("submit status = %d\n%s", status, raw)
	}
	jr := decodeJob(t, raw)
	if jr.JobID == "" || jr.Units != 3 {
		t.Fatalf("submit response %+v", jr)
	}
	if jr.RequestID != hdr.Get("X-Request-ID") {
		t.Fatalf("request id %q != header %q", jr.RequestID, hdr.Get("X-Request-ID"))
	}

	final := pollJob(t, ts.URL, jr.JobID)
	if final.State != "done" || final.Completed != 3 || final.Failed != 0 {
		t.Fatalf("final %+v", final)
	}
	if final.CreatedAt == "" || final.StartedAt == "" || final.FinishedAt == "" {
		t.Fatalf("missing timestamps: %+v", final)
	}

	got := streamResults(t, ts.URL, jr.JobID)
	if len(got) != len(sync.Results) {
		t.Fatalf("streamed %d units, sync returned %d", len(got), len(sync.Results))
	}
	for i, u := range got {
		want := sync.Results[i]
		if u.Name != want.Name {
			t.Fatalf("unit %d order: %q vs sync %q", i, u.Name, want.Name)
		}
		if u.Code != want.Code {
			t.Fatalf("unit %d code differs between async and sync:\n%q\nvs\n%q", i, u.Code, want.Code)
		}
		if u.Verified != want.Verified || u.Degraded != want.Degraded || u.Error != want.Error {
			t.Fatalf("unit %d verdict differs: %+v vs %+v", i, u, want)
		}
	}
	// The stream is replayable while the job is retained.
	again := streamResults(t, ts.URL, jr.JobID)
	if len(again) != 3 || again[2].Code != got[2].Code {
		t.Fatalf("replay diverged: %d units", len(again))
	}
}

func TestJobSubmitShedsWhenTableFull(t *testing.T) {
	srv := New(Config{MaxJobs: 1, MaxInFlight: 1})
	ts := newHTTPServer(t, srv)
	// Occupy the only run slot so the first job stays queued.
	srv.slots <- struct{}{}
	defer func() { <-srv.slots }()

	body := jobBatchBody(t)
	status, _, raw := post(t, ts.URL+"/v1/jobs", body, nil)
	if status != http.StatusOK {
		t.Fatalf("first submit = %d\n%s", status, raw)
	}
	first := decodeJob(t, raw)

	status, hdr, raw := post(t, ts.URL+"/v1/jobs", body, nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("second submit = %d, want 429\n%s", status, raw)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil || er.RetryAfterSec < 1 {
		t.Fatalf("429 body %s (%v)", raw, err)
	}
	// Status of the queued job still answers — polling is never gated.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + first.JobID)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("queued poll: %v %d", err, resp.StatusCode)
	}
	resp.Body.Close()
}

// newHTTPServer mounts an already-built Server (tests that need the
// white-box handle and the HTTP surface together).
func newHTTPServer(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return ts
}

// TestJobCancelMidFlight cancels a queued job through the HTTP
// surface: the DELETE answers, the job lands canceled, and the result
// stream reports the cancellation per unit.
func TestJobCancelMidFlight(t *testing.T) {
	srv := New(Config{MaxInFlight: 1})
	ts := newHTTPServer(t, srv)
	srv.slots <- struct{}{} // park every job at the gate
	released := false
	defer func() {
		if !released {
			<-srv.slots
		}
	}()

	status, _, raw := post(t, ts.URL+"/v1/jobs", jobBatchBody(t), nil)
	if status != http.StatusOK {
		t.Fatalf("submit = %d\n%s", status, raw)
	}
	jr := decodeJob(t, raw)

	// A streamer attached before the cancel must see the stream end
	// with per-unit cancellation errors, not hang.
	type streamOut struct {
		units []UnitResponse
	}
	ch := make(chan streamOut, 1)
	go func() {
		var o streamOut
		o.units = streamResults(t, ts.URL, jr.JobID)
		ch <- o
	}()
	time.Sleep(20 * time.Millisecond) // let the streamer attach

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+jr.JobID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d\n%s", resp.StatusCode, buf.String())
	}

	final := pollJob(t, ts.URL, jr.JobID)
	if final.State != "canceled" {
		t.Fatalf("state after cancel = %s", final.State)
	}
	if final.Failed != 3 || final.Completed != 3 {
		t.Fatalf("canceled-before-start job: %+v, want all units failed", final)
	}
	out := <-ch
	if len(out.units) != 3 {
		t.Fatalf("streamer saw %d units", len(out.units))
	}
	for i, u := range out.units {
		if u.Error == "" || !strings.Contains(u.Error, "cancel") {
			t.Fatalf("unit %d error = %q, want cancellation", i, u.Error)
		}
	}
	// DELETE on the now-terminal job is a harmless no-op.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+jr.JobID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("re-cancel: %v %d", err, resp.StatusCode)
	}
	resp.Body.Close()
}

// TestJobExpiryAnswers410 is the retention contract: an expired job
// answers 410 with code "job_expired" — distinguishable from the 404
// a never-issued ID gets.
func TestJobExpiryAnswers410(t *testing.T) {
	ts := newTestServer(t, Config{JobRetention: 30 * time.Millisecond, MaxRetainedJobs: 8})
	status, _, raw := post(t, ts.URL+"/v1/jobs", jobBatchBody(t), nil)
	if status != http.StatusOK {
		t.Fatalf("submit = %d", status)
	}
	jr := decodeJob(t, raw)
	pollJob(t, ts.URL, jr.JobID)

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + jr.JobID)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusGone {
			var er ErrorResponse
			if err := json.Unmarshal(buf.Bytes(), &er); err != nil {
				t.Fatalf("410 body: %v\n%s", err, buf.String())
			}
			if er.Code != "job_expired" {
				t.Fatalf("410 code = %q, want job_expired", er.Code)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never expired (last status %d)", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Results of an expired job are gone the same way.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + jr.JobID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("expired results = %d, want 410", resp.StatusCode)
	}
	// A never-issued ID is a plain 404.
	resp, err = http.Get(ts.URL + "/v1/jobs/job-000000-deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", resp.StatusCode)
	}
}

// collectSink gathers audit uploads in memory for assertion.
type collectSink struct {
	mu      sync.Mutex
	batches [][]byte
}

func (s *collectSink) Upload(b []byte) error {
	cp := make([]byte, len(b))
	copy(cp, b)
	s.mu.Lock()
	s.batches = append(s.batches, cp)
	s.mu.Unlock()
	return nil
}
func (s *collectSink) Close() error { return nil }

func (s *collectSink) records(t *testing.T) []audit.Record {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []audit.Record
	for _, b := range s.batches {
		sc := bufio.NewScanner(bytes.NewReader(b))
		for sc.Scan() {
			var r audit.Record
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
				t.Fatalf("bad audit line %q: %v", sc.Text(), err)
			}
			out = append(out, r)
		}
	}
	return out
}

// TestAuditRecordsEveryVerdict: one audit record per allocation
// verdict on both the sync and async paths, carrying the content key,
// strategy, backend and (for jobs) the job ID.
func TestAuditRecordsEveryVerdict(t *testing.T) {
	sink := &collectSink{}
	logger, err := audit.New(audit.Config{Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	defer logger.Close()
	ts := newTestServer(t, Config{Audit: logger, InstanceID: "audit-test-1"})

	body := jobBatchBody(t)
	if status, _, raw := post(t, ts.URL+"/v1/batch", body, nil); status != http.StatusOK {
		t.Fatalf("sync = %d\n%s", status, raw)
	}
	status, _, raw := post(t, ts.URL+"/v1/jobs", body, nil)
	if status != http.StatusOK {
		t.Fatalf("submit = %d", status)
	}
	jr := decodeJob(t, raw)
	pollJob(t, ts.URL, jr.JobID)

	// GET /v1/audit?flush=1 flushes synchronously and reports counters.
	resp, err := http.Get(ts.URL + "/v1/audit?flush=1")
	if err != nil {
		t.Fatal(err)
	}
	var stats AuditStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !stats.Enabled || stats.Logged != 6 || stats.Dropped != 0 || stats.Flushed != 6 {
		t.Fatalf("audit stats %+v, want 6 logged+flushed, 0 dropped", stats)
	}

	recs := sink.records(t)
	if len(recs) != 6 {
		t.Fatalf("%d audit records, want 6 (3 sync + 3 async)", len(recs))
	}
	var jobRecs, syncRecs int
	for _, r := range recs {
		if r.Backend != "audit-test-1" {
			t.Fatalf("record backend %q", r.Backend)
		}
		if r.ContentKey == "" || r.Strategy == "" || r.Time == "" {
			t.Fatalf("record missing identity: %+v", r)
		}
		if !r.Verified {
			t.Fatalf("verified verdict not recorded: %+v", r)
		}
		if r.JobID != "" {
			jobRecs++
			if r.JobID != jr.JobID {
				t.Fatalf("job record carries %q, want %q", r.JobID, jr.JobID)
			}
		} else {
			syncRecs++
		}
		if r.RequestID == "" {
			t.Fatalf("record without request id: %+v", r)
		}
	}
	if jobRecs != 3 || syncRecs != 3 {
		t.Fatalf("job/sync records = %d/%d, want 3/3", jobRecs, syncRecs)
	}
	// u1 ran chaitin; its strategy must say so (the verdict is joinable
	// by configuration, not just by name).
	var sawChaitin bool
	for _, r := range recs {
		if r.Unit == "u1" && r.Strategy == "chaitin" {
			sawChaitin = true
		}
	}
	if !sawChaitin {
		t.Fatal("per-unit strategy not recorded")
	}
}

func TestAuditEndpointWithoutStreamIs404(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/audit without stream = %d, want 404", resp.StatusCode)
	}
}

func TestJobsEndpointMethodDiscipline(t *testing.T) {
	ts := newTestServer(t, Config{})
	// PUT on a job resource: the method-aware mux answers 405.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/jobs/job-x", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT job = %d, want 405", resp.StatusCode)
	}
	// GET /v1/jobs (no ID) is not a resource either.
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("GET /v1/jobs answered 200")
	}
}
