package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/iloc"
	"repro/internal/jobs"
)

// This file is the asynchronous serving surface: POST /v1/jobs accepts
// the same body as /v1/batch but answers immediately with a job ID;
// GET /v1/jobs/{id} polls status and partial progress;
// GET /v1/jobs/{id}/results streams completed units as NDJSON in input
// order (each line a UnitResponse — the same shape the sync endpoints
// put in their results array, so the concatenated code bytes match a
// sync run exactly); DELETE /v1/jobs/{id} cancels. Jobs draw run slots
// from the same pool as synchronous requests, and a full job table
// sheds with 429 + Retry-After — the service's only answers stay 200,
// its own 4xx, and 429.

// jobMeta is the per-job response-shaping state the HTTP layer stows
// in jobs.Job.Payload: the submitting request's ID and each unit's
// verify flag (whether the checker ran for it).
type jobMeta struct {
	requestID string
	verify    []bool
}

// buildBatchUnits turns a BatchRequest into driver units plus per-unit
// verify flags — the shared front half of /v1/batch and /v1/jobs.
func (s *Server) buildBatchUnits(req BatchRequest) (units []driver.Unit, verify []bool, err error) {
	def, err := req.Options.Resolve(s.cfg.Options)
	if err != nil {
		return nil, nil, err
	}
	units = make([]driver.Unit, len(req.Units))
	verify = make([]bool, len(req.Units))
	for i, bu := range req.Units {
		opts, err := bu.Options.Resolve(def)
		if err != nil {
			return nil, nil, fmt.Errorf("unit %d: %w", i, err)
		}
		rt, err := iloc.Parse(bu.ILOC)
		if err != nil {
			return nil, nil, fmt.Errorf("unit %d: parse: %w", i, err)
		}
		name := bu.Name
		if name == "" {
			name = rt.Name
		}
		o := opts
		units[i] = driver.Unit{Name: name, Routine: rt, Options: &o}
		verify[i] = o.Verify
	}
	return units, verify, nil
}

// runJobUnits is the jobs.Manager's Run hook: a per-job engine sharing
// the server's cache and metrics, with the manager's per-unit progress
// callback threaded through driver OnUnitDone.
func (s *Server) runJobUnits(ctx context.Context, units []driver.Unit, onUnit func(int, driver.UnitResult)) {
	eng := driver.New(driver.Config{
		Options:    s.cfg.Options,
		Workers:    s.cfg.Workers,
		Cache:      s.cfg.Cache,
		Telemetry:  s.cfg.Telemetry,
		OnUnitDone: onUnit,
	})
	eng.Run(ctx, units)
}

// jobGate is the jobs.Manager's admission hook: a queued job waits for
// one of the same run slots the synchronous paths use, so async work
// and interactive traffic share one capacity pool instead of doubling
// the load the daemon was sized for.
func (s *Server) jobGate(ctx context.Context) (func(), error) {
	tel := s.cfg.Telemetry
	start := time.Now()
	select {
	case s.slots <- struct{}{}:
		tel.Observe("jobs.slot.wait", time.Since(start).Nanoseconds())
		return func() { <-s.slots }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// auditJobUnit emits one audit record per job unit verdict, as each
// lands.
func (s *Server) auditJobUnit(j *jobs.Job, i int, r driver.UnitResult) {
	meta, _ := j.Payload.(*jobMeta)
	if meta == nil {
		return
	}
	s.auditUnit(meta.requestID, j.ID, j.Unit(i), r, meta.verify[i])
}

// auditUnit records one allocation verdict on the audit stream. The
// content key is the same address the result cache and the cluster
// ring use, so offline analysis joins audit records against cache
// contents and routing decisions.
func (s *Server) auditUnit(reqID, jobID string, u driver.Unit, r driver.UnitResult, verify bool) {
	log := s.cfg.Audit
	if log == nil {
		return
	}
	rec := audit.Record{
		Backend:   s.cfg.InstanceID,
		RequestID: reqID,
		JobID:     jobID,
		Unit:      r.Name,
		CacheHit:  r.CacheHit,
		CacheTier: r.CacheTier,
		AllocMs:   float64(r.Wall) / float64(time.Millisecond),
	}
	if u.Options != nil {
		rec.ContentKey = string(driver.KeyFor(u.Routine, *u.Options))
		rec.Strategy = strategySpec(*u.Options)
	}
	switch {
	case r.Err != nil:
		rec.Error = r.Err.Error()
	case r.Result != nil:
		rec.Verified = verify
		rec.Degraded = r.Result.Degraded
		rec.DegradeReason = r.Result.DegradeReason
	}
	log.Log(rec)
}

// strategySpec names the strategy an options value selects — the
// explicit spec when one was requested, the mode's canonical strategy
// otherwise.
func strategySpec(o core.Options) string {
	if o.Strategy != "" {
		return o.Strategy
	}
	if o.Mode == core.ModeChaitin {
		return "chaitin"
	}
	return "remat"
}

// handleJobSubmit serves POST /v1/jobs: admit the batch, answer with
// the job ID, run in the background.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request, info *requestInfo) {
	var req BatchRequest
	if err := decodeStrict(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: "bad request body: " + err.Error(), RequestID: info.id})
		return
	}
	if len(req.Units) == 0 {
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: "empty batch", RequestID: info.id})
		return
	}
	units, verify, err := s.buildBatchUnits(req)
	if err != nil {
		optionsError(w, info, err)
		return
	}
	j, err := s.jobs.Submit(units, &jobMeta{requestID: info.id, verify: verify})
	if err != nil {
		if errors.Is(err, jobs.ErrQueueFull) {
			s.shed(w, info, "job queue full, retry later")
			return
		}
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), RequestID: info.id})
		return
	}
	writeJSON(w, http.StatusOK, s.jobResponse(j, info.id))
}

// shed answers 429 + Retry-After — the admission verdict for both the
// sync paths and the job table.
func (s *Server) shed(w http.ResponseWriter, info *requestInfo, msg string) {
	sec := int(s.cfg.RetryAfter / time.Second)
	if sec < 1 {
		sec = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", sec))
	writeError(w, http.StatusTooManyRequests, ErrorResponse{
		Error:         msg,
		RequestID:     info.id,
		RetryAfterSec: sec,
	})
}

// jobResponse shapes one job snapshot for the wire.
func (s *Server) jobResponse(j *jobs.Job, reqID string) JobResponse {
	snap := j.Snapshot()
	resp := JobResponse{
		JobID:     snap.ID,
		RequestID: reqID,
		State:     string(snap.State),
		Units:     snap.Units,
		Completed: snap.Completed,
		Failed:    snap.Failed,
		Degraded:  snap.Degraded,
		CacheHits: snap.CacheHits,
		Backend:   s.cfg.InstanceID,
	}
	stamp := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return t.UTC().Format(time.RFC3339Nano)
	}
	resp.CreatedAt = stamp(snap.Created)
	resp.StartedAt = stamp(snap.Started)
	resp.FinishedAt = stamp(snap.Finished)
	return resp
}

// lookupJob resolves {id}, answering 404 for IDs never issued and 410
// (code "job_expired") for jobs reaped by retention — so a slow poller
// can tell "poll sooner or raise -job-retention" from "wrong ID".
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *jobs.Job {
	id := r.PathValue("id")
	j, p := s.jobs.Get(id)
	switch p {
	case jobs.Found:
		return j
	case jobs.Expired:
		writeError(w, http.StatusGone, ErrorResponse{
			Error: fmt.Sprintf("job %s expired (results are retained for %s after completion)", id, s.cfg.JobRetention),
			Code:  "job_expired",
		})
	default:
		writeError(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("unknown job %s", id)})
	}
	return nil
}

// handleJobStatus serves GET /v1/jobs/{id}: the job's state and
// partial progress.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.lookupJob(w, r); j != nil {
		meta, _ := j.Payload.(*jobMeta)
		reqID := ""
		if meta != nil {
			reqID = meta.requestID
		}
		writeJSON(w, http.StatusOK, s.jobResponse(j, reqID))
	}
}

// handleJobResults serves GET /v1/jobs/{id}/results: completed units
// streamed as NDJSON in input order, each line a UnitResponse. The
// stream follows the job live — a line is written the moment its unit
// finishes — and ends after the last unit, so reading to EOF yields
// exactly the sync /v1/batch results array, one element per line.
func (s *Server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	meta, _ := j.Payload.(*jobMeta)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w) // no indent: one compact JSON object per line
	for i := 0; i < j.Units(); i++ {
		ur, err := j.WaitUnit(r.Context(), i)
		if err != nil || ur == nil {
			return // client went away or the job vanished; the stream just ends
		}
		verified := false
		if meta != nil && i < len(meta.verify) {
			verified = meta.verify[i]
		}
		if encErr := enc.Encode(s.unitResponse(*ur, verified)); encErr != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleJobCancel serves DELETE /v1/jobs/{id}: request cancellation
// and report the (possibly already terminal) state. Completed units
// keep their results; unstarted units report the cancellation.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, p := s.jobs.Cancel(id)
	switch p {
	case jobs.Found:
		writeJSON(w, http.StatusOK, s.jobResponse(j, ""))
	case jobs.Expired:
		writeError(w, http.StatusGone, ErrorResponse{
			Error: fmt.Sprintf("job %s expired", id),
			Code:  "job_expired",
		})
	default:
		writeError(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("unknown job %s", id)})
	}
}

// handleAudit serves GET /v1/audit: the audit stream's delivery
// counters (and, with ?flush=1, a synchronous flush first) so an
// operator — or the jobs smoke test — can assert zero drops without
// reading the sink. Servers without an audit stream answer 404.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "GET only"})
		return
	}
	log := s.cfg.Audit
	if log == nil {
		writeError(w, http.StatusNotFound, ErrorResponse{Error: "no audit stream (start rallocd with -audit-dir or -audit-url)"})
		return
	}
	resp := AuditStatsResponse{Enabled: true}
	if r.URL.Query().Get("flush") != "" {
		if err := log.Flush(); err != nil {
			resp.FlushError = err.Error()
		}
	}
	st := log.Stats()
	resp.Logged = st.Logged
	resp.Dropped = st.Dropped
	resp.Flushed = st.Flushed
	resp.Flushes = st.Flushes
	resp.FlushErrors = st.FlushErrors
	writeJSON(w, http.StatusOK, resp)
}
