package server

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/driver"
	"repro/internal/store"
)

// TestBundleEndpointRoundTrip proves warm replication over HTTP: a
// populated daemon's GET /v1/cache/bundle, imported into a second
// daemon's store, serves the same request as a disk-tier cache hit
// with byte-identical code — before the second daemon ever allocates.
func TestBundleEndpointRoundTrip(t *testing.T) {
	first, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	ts := newTestServer(t, Config{Store: first})

	status, _, body := post(t, ts.URL+"/v1/allocate", AllocateRequest{ILOC: testSource(t)}, nil)
	if status != http.StatusOK {
		t.Fatalf("populate: status %d\n%s", status, body)
	}
	cold := decodeAllocate(t, body)
	if cold.Results[0].CacheHit {
		t.Fatal("first allocation was already a hit")
	}

	resp, err := http.Get(ts.URL + "/v1/cache/bundle")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bundle: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/gzip" {
		t.Fatalf("bundle content type %q", ct)
	}
	bundle, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := store.InspectBundle(bytes.NewReader(bundle))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !entries[0].Valid {
		t.Fatalf("bundle entries: %+v", entries)
	}

	second, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if st, err := second.ImportBundle(bytes.NewReader(bundle)); err != nil || st.Imported != 1 {
		t.Fatalf("import: %+v, %v", st, err)
	}
	ts2 := newTestServer(t, Config{Store: second})
	status, _, body = post(t, ts2.URL+"/v1/allocate", AllocateRequest{ILOC: testSource(t)}, nil)
	if status != http.StatusOK {
		t.Fatalf("warm: status %d\n%s", status, body)
	}
	warm := decodeAllocate(t, body)
	u := warm.Results[0]
	if !u.CacheHit || u.CacheTier != store.TierDisk {
		t.Fatalf("warm unit: hit=%v tier=%q, want a disk-tier hit", u.CacheHit, u.CacheTier)
	}
	if warm.Stats.CacheDiskHits != 1 {
		t.Fatalf("warm stats: %+v", warm.Stats)
	}
	if u.Code != cold.Results[0].Code {
		t.Fatal("warm response code differs from the cold allocation")
	}
}

// TestBundleEndpointWithoutStore: a memory-only daemon answers 404, and
// non-GET methods 405.
func TestBundleEndpointWithoutStore(t *testing.T) {
	ts := newTestServer(t, Config{Cache: driver.NewCache(0)})
	resp, err := http.Get(ts.URL + "/v1/cache/bundle")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/cache/bundle", "application/gzip", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", resp.StatusCode)
	}
}

// TestMetricsCarryStoreTiers: /metrics exposes per-tier store.* gauges,
// refreshed at scrape time, for both the tiered store and the plain
// in-memory cache.
func TestMetricsCarryStoreTiers(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ts := newTestServer(t, Config{Store: st})

	if status, _, body := post(t, ts.URL+"/v1/allocate", AllocateRequest{ILOC: testSource(t)}, nil); status != http.StatusOK {
		t.Fatalf("status %d\n%s", status, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"store.l1.misses 1",
		"store.l2.misses 1",
		"store.l1.entries 1",
		"store.quarantined 0",
	} {
		if !strings.Contains(string(text), want+"\n") {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}
