package server

import (
	"encoding/json"

	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/iloc"
	"repro/internal/suite"
)

// TestStrategiesEndpoint: GET /v1/strategies lists every registered
// strategy with a description; other methods are rejected.
func TestStrategiesEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/v1/strategies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var sr StrategiesResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Strategies) < 4 {
		t.Fatalf("want >= 4 strategies, got %d: %+v", len(sr.Strategies), sr)
	}
	byName := map[string]StrategyInfo{}
	for _, si := range sr.Strategies {
		if si.Description == "" {
			t.Errorf("strategy %q has no description", si.Name)
		}
		byName[si.Name] = si
	}
	for _, want := range []string{"chaitin", "remat", "spill-everywhere", "ssa-spill"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("listing lacks %q: %+v", want, sr)
		}
	}

	if status, _, _ := post(t, ts.URL+"/v1/strategies", struct{}{}, nil); status != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/strategies = %d, want 405", status)
	}
}

// TestUnknownStrategyRejected: an unknown strategy name is a 400 whose
// body names every registered strategy, on both allocation endpoints
// and per-unit in a batch.
func TestUnknownStrategyRejected(t *testing.T) {
	ts := newTestServer(t, Config{})
	src := testSource(t)

	check := func(t *testing.T, status int, body []byte) {
		t.Helper()
		if status != http.StatusBadRequest {
			t.Fatalf("status = %d\n%s", status, body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatalf("bad error body: %v\n%s", err, body)
		}
		if er.Error == "" || len(er.Strategies) < 4 {
			t.Fatalf("error body does not list strategies: %+v", er)
		}
		found := map[string]bool{}
		for _, n := range er.Strategies {
			found[n] = true
		}
		for _, want := range core.StrategyNames() {
			if !found[want] {
				t.Fatalf("error body lacks %q: %+v", want, er)
			}
		}
	}

	t.Run("allocate", func(t *testing.T) {
		status, _, body := post(t, ts.URL+"/v1/allocate",
			AllocateRequest{ILOC: src, Options: &OptionsRequest{Strategy: "linear-scan"}}, nil)
		check(t, status, body)
	})
	t.Run("batch-default", func(t *testing.T) {
		status, _, body := post(t, ts.URL+"/v1/batch",
			BatchRequest{Units: []BatchUnit{{ILOC: src}}, Options: &OptionsRequest{Strategy: "linear-scan"}}, nil)
		check(t, status, body)
	})
	t.Run("batch-per-unit", func(t *testing.T) {
		status, _, body := post(t, ts.URL+"/v1/batch",
			BatchRequest{Units: []BatchUnit{{ILOC: src, Options: &OptionsRequest{Strategy: "linear-scan"}}}}, nil)
		check(t, status, body)
	})

	// A parameter the strategy does not accept is also a 400 (without
	// the listing — the base name resolved).
	t.Run("bad-parameter", func(t *testing.T) {
		status, _, body := post(t, ts.URL+"/v1/allocate",
			AllocateRequest{ILOC: src, Options: &OptionsRequest{Strategy: "ssa-spill:split=all-loops"}}, nil)
		if status != http.StatusBadRequest {
			t.Fatalf("status = %d\n%s", status, body)
		}
	})
}

// TestUnknownOptionFieldRejected: a misspelled request field is a 400,
// not a silent fall-through to the server defaults.
func TestUnknownOptionFieldRejected(t *testing.T) {
	ts := newTestServer(t, Config{})
	status, _, body := post(t, ts.URL+"/v1/allocate",
		map[string]any{"iloc": testSource(t), "options": map[string]any{"stratgy": "remat"}}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d\n%s", status, body)
	}
}

// TestBatchEveryStrategyEverySuiteKernel is the acceptance sweep: every
// registered strategy, selected per-unit through /v1/batch, produces a
// verifier-accepted allocation for every suite kernel.
func TestBatchEveryStrategyEverySuiteKernel(t *testing.T) {
	ts := newTestServer(t, Config{})
	names := core.StrategyNames()

	var units []BatchUnit
	for _, k := range suite.All() {
		src := iloc.Print(k.Routine())
		for _, name := range names {
			units = append(units, BatchUnit{
				Name:    k.Name + "/" + name,
				ILOC:    src,
				Options: &OptionsRequest{Strategy: name},
			})
		}
	}
	status, _, body := post(t, ts.URL+"/v1/batch", BatchRequest{Units: units}, nil)
	if status != http.StatusOK {
		t.Fatalf("status = %d\n%s", status, body)
	}
	ar := decodeAllocate(t, body)
	if len(ar.Results) != len(units) {
		t.Fatalf("want %d results, got %d", len(units), len(ar.Results))
	}
	for _, u := range ar.Results {
		if u.Error != "" {
			t.Errorf("%s: error: %s", u.Name, u.Error)
			continue
		}
		if !u.Verified {
			t.Errorf("%s: not verified", u.Name)
		}
		if u.Degraded {
			t.Errorf("%s: degraded (%s)", u.Name, u.DegradeReason)
		}
	}
}

// TestBatchMixedStrategiesDiffer: one batch carrying the same routine
// under different per-unit strategies returns per-strategy code, and an
// inherited batch-level strategy applies to units without their own.
func TestBatchMixedStrategiesDiffer(t *testing.T) {
	ts := newTestServer(t, Config{})
	src := testSource(t)

	req := BatchRequest{
		Options: &OptionsRequest{Strategy: "spill-everywhere"},
		Units: []BatchUnit{
			{Name: "inherit", ILOC: src},
			{Name: "remat", ILOC: src, Options: &OptionsRequest{Strategy: "remat"}},
			{Name: "ssa", ILOC: src, Options: &OptionsRequest{Strategy: "ssa-spill"}},
		},
	}
	status, _, body := post(t, ts.URL+"/v1/batch", req, nil)
	if status != http.StatusOK {
		t.Fatalf("status = %d\n%s", status, body)
	}
	ar := decodeAllocate(t, body)
	code := map[string]string{}
	for _, u := range ar.Results {
		if u.Error != "" || !u.Verified {
			t.Fatalf("unit %+v", u)
		}
		code[u.Name] = u.Code
	}
	// spill-everywhere reloads at every use; remat does not. The
	// inherited unit must look like the batch default, not the server
	// default.
	if code["inherit"] == code["remat"] {
		t.Fatal("batch-level strategy did not reach the unit without options")
	}
	if code["ssa"] == code["inherit"] {
		t.Fatal("ssa-spill and spill-everywhere returned identical code for a φ-bearing routine")
	}

	// Same routine, different strategies: the shared cache must keep the
	// entries separate on a repeat request.
	status2, _, body2 := post(t, ts.URL+"/v1/batch", req, nil)
	if status2 != http.StatusOK {
		t.Fatalf("repeat status = %d", status2)
	}
	ar2 := decodeAllocate(t, body2)
	for i, u := range ar2.Results {
		if !u.CacheHit {
			t.Errorf("repeat unit %s not a cache hit", u.Name)
		}
		if u.Code != ar.Results[i].Code {
			t.Errorf("cache returned different code for %s", u.Name)
		}
	}
}
