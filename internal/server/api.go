package server

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machines"
	"repro/internal/target"
)

// This file is the wire schema of the allocation service: the JSON
// bodies of POST /v1/allocate and POST /v1/batch and their responses.
// The types are plain data so cmd/rallocload (and any other client) can
// share them without importing the serving machinery.

// AllocateRequest is the body of POST /v1/allocate: one ILOC source
// text holding one or more routines (the multi-routine form follows
// iloc.ParseProgram — first routine plus callees), all allocated with
// the same options.
type AllocateRequest struct {
	// ILOC is the routine source in the textual form iloc.Parse accepts.
	ILOC string `json:"iloc"`
	// Options configures the allocation; nil means the server's default
	// options.
	Options *OptionsRequest `json:"options,omitempty"`
}

// BatchRequest is the body of POST /v1/batch: a module of named units,
// each optionally carrying its own options (the experiment drivers mix
// machines and modes within one batch; remote callers can too).
type BatchRequest struct {
	Units []BatchUnit `json:"units"`
	// Options is the default for units that do not carry their own.
	Options *OptionsRequest `json:"options,omitempty"`
}

// BatchUnit is one routine of a batch request.
type BatchUnit struct {
	// Name labels the unit in the response; empty defaults to the parsed
	// routine's name.
	Name string `json:"name,omitempty"`
	// ILOC is the unit's source text (exactly one routine).
	ILOC    string          `json:"iloc"`
	Options *OptionsRequest `json:"options,omitempty"`
}

// OptionsRequest is the client-facing subset of core.Options. Zero
// fields inherit the server's defaults.
type OptionsRequest struct {
	// Strategy selects a registered allocation strategy by spec — a name
	// from GET /v1/strategies, optionally with parameters
	// ("remat:split=all-loops"). It wins over Mode when both are set; an
	// unknown name is a 400 whose error body lists the registered names.
	Strategy string `json:"strategy,omitempty"`
	// Mode is "remat" (the paper, default) or "chaitin" (the baseline).
	Mode string `json:"mode,omitempty"`
	// Machine selects a target machine from the zoo by name — an entry
	// of GET /v1/machines, or the parameterized "regs=N" spelling. An
	// unknown name is a 400 whose error body lists the registered names.
	// Machine and Regs are mutually exclusive in one options object.
	Machine string `json:"machine,omitempty"`
	// Regs is the register count per class (16 = the paper's standard
	// machine) — shorthand for machine "regs=N".
	Regs int `json:"regs,omitempty"`
	// Split names one of §6's live-range splitting schemes: "none",
	// "all-loops", "outer-loops", "inactive-loops", "all-phis".
	Split string `json:"split,omitempty"`
	// Verify runs the independent post-allocation checker; nil inherits
	// the server default (on).
	Verify *bool `json:"verify,omitempty"`
	// MaxIterations bounds the spill/color loop (0 = allocator default).
	MaxIterations int `json:"max_iterations,omitempty"`
	// Strict disables the spill-everywhere degradation: any allocator
	// failure (including deadline expiry) becomes a per-unit error.
	Strict bool `json:"strict,omitempty"`
}

// Resolve merges the request options over def (the server defaults,
// or — for per-unit batch options — the batch-level resolution).
// Exported because the routing proxy (internal/cluster) performs the
// same resolution to compute the content key a request will cache
// under, so cluster routing and backend caching agree on identity.
func (o *OptionsRequest) Resolve(def core.Options) (core.Options, error) {
	opts := def
	if o == nil {
		return opts, nil
	}
	if o.Strategy != "" {
		if _, err := core.LookupStrategy(o.Strategy); err != nil {
			return opts, err
		}
		opts.Strategy = o.Strategy
	}
	switch o.Mode {
	case "":
	case "remat":
		opts.Mode = core.ModeRemat
	case "chaitin":
		opts.Mode = core.ModeChaitin
	default:
		return opts, fmt.Errorf("unknown mode %q", o.Mode)
	}
	if o.Mode != "" && o.Strategy == "" {
		// An explicit mode without a strategy overrides any inherited
		// batch-level strategy; the strategy re-derives from the mode.
		opts.Strategy = ""
	}
	if o.Machine != "" && o.Regs != 0 {
		return opts, fmt.Errorf("machine %q and regs %d are mutually exclusive (regs is shorthand for machine \"regs=N\")", o.Machine, o.Regs)
	}
	if o.Machine != "" {
		m, err := machines.Lookup(o.Machine)
		if err != nil {
			return opts, err
		}
		opts.Machine = m
	}
	if o.Regs != 0 {
		m := target.WithRegs(o.Regs)
		if err := m.Validate(); err != nil {
			return opts, err
		}
		opts.Machine = m
	}
	switch o.Split {
	case "":
	case "none":
		opts.Split = core.SplitNone
	case "all-loops":
		opts.Split = core.SplitAllLoops
	case "outer-loops":
		opts.Split = core.SplitOuterLoops
	case "inactive-loops":
		opts.Split = core.SplitInactiveLoops
	case "all-phis":
		opts.Split = core.SplitAtPhis
	default:
		return opts, fmt.Errorf("unknown split scheme %q", o.Split)
	}
	if o.Verify != nil {
		opts.Verify = *o.Verify
	}
	if o.MaxIterations != 0 {
		opts.MaxIterations = o.MaxIterations
	}
	if o.Strict {
		opts.DisableDegradation = true
	}
	return opts, nil
}

// AllocateResponse is the 200 body of both allocation endpoints: one
// UnitResponse per input routine, in input order, plus the batch stats.
type AllocateResponse struct {
	RequestID string         `json:"request_id"`
	Results   []UnitResponse `json:"results"`
	Stats     BatchStats     `json:"stats"`
}

// UnitResponse is the outcome of one routine. Exactly one of Code and
// Error is set.
type UnitResponse struct {
	Name string `json:"name"`
	// Code is the allocated routine in ILOC textual form.
	Code string `json:"code,omitempty"`
	// Error is the allocator failure for this unit (strict-mode faults,
	// cancellation); the batch as a whole still returns 200.
	Error string `json:"error,omitempty"`
	// Backend is the instance ID of the rallocd that produced this
	// unit (mirrors the X-Ralloc-Backend response header). Through the
	// routing proxy a batch's units may come from several backends;
	// this field is how tests and operators attribute each one.
	Backend string `json:"backend,omitempty"`
	// Verified reports that the independent post-allocation checker ran
	// against this result and accepted it (the verifier verdict; a
	// rejected allocation never reaches the response — it degrades or
	// errors).
	Verified bool `json:"verified"`
	// Degraded marks a spill-everywhere fallback allocation;
	// DegradeReason says why ("deadline" when the request's deadline
	// expired mid-allocation).
	Degraded      bool   `json:"degraded,omitempty"`
	DegradeReason string `json:"degrade_reason,omitempty"`
	CacheHit      bool   `json:"cache_hit,omitempty"`
	// CacheTier says which tier served a hit: "l1" (memory) or "l2"
	// (the persistent disk tier, surviving daemon restarts).
	CacheTier string `json:"cache_tier,omitempty"`
	// Per-pass totals of the instrumented pipeline.
	Iterations int     `json:"iterations,omitempty"`
	Spilled    int     `json:"spilled,omitempty"`
	Remat      int     `json:"remat,omitempty"`
	FrameWords int     `json:"frame_words,omitempty"`
	AllocMs    float64 `json:"alloc_ms"`
}

// BatchStats summarizes the driver run behind one request.
type BatchStats struct {
	Routines    int `json:"routines"`
	Failed      int `json:"failed"`
	Degraded    int `json:"degraded"`
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// CacheDiskHits is the subset of CacheHits served by the disk tier
	// — restart-survival and bundle warm-up at work.
	CacheDiskHits int     `json:"cache_disk_hits,omitempty"`
	Workers       int     `json:"workers"`
	WallMs        float64 `json:"wall_ms"`
	CPUMs         float64 `json:"cpu_ms"`
}

// MachineInfo describes one zoo machine in the GET /v1/machines
// listing: its name, one-line description, and the shape that makes it
// distinct (register bank sizes, caller-save partition, cycle costs).
type MachineInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Regs        []int  `json:"regs"`
	CallerSave  int    `json:"caller_save"`
	MemCycles   int    `json:"mem_cycles"`
	OtherCycles int    `json:"other_cycles"`
}

// MachinesResponse is the 200 body of GET /v1/machines.
type MachinesResponse struct {
	Machines []MachineInfo `json:"machines"`
}

// StrategyInfo describes one registered allocation strategy in the
// GET /v1/strategies listing.
type StrategyInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// StrategiesResponse is the 200 body of GET /v1/strategies.
type StrategiesResponse struct {
	Strategies []StrategyInfo `json:"strategies"`
}

// JobResponse is the body of POST /v1/jobs (the accept answer),
// GET /v1/jobs/{id} (status + partial progress) and DELETE (the
// post-cancel state). Counters advance while the job runs, so a
// poller sees progress before the state turns terminal.
type JobResponse struct {
	JobID string `json:"job_id"`
	// RequestID is the submitting request's ID (audit records for this
	// job's units carry both).
	RequestID string `json:"request_id,omitempty"`
	// State is "queued", "running", "done" or "canceled".
	State     string `json:"state"`
	Units     int    `json:"units"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	Degraded  int    `json:"degraded"`
	CacheHits int    `json:"cache_hits"`
	// Backend names the rallocd instance that owns the job; polls and
	// result streams must reach this same instance (the routing proxy
	// does that by job ID).
	Backend    string `json:"backend,omitempty"`
	CreatedAt  string `json:"created_at,omitempty"`
	StartedAt  string `json:"started_at,omitempty"`
	FinishedAt string `json:"finished_at,omitempty"`
}

// AuditStatsResponse is the 200 body of GET /v1/audit: the audit
// stream's delivery counters. Dropped > 0 means the stream shed
// records under backpressure (the lossy-by-config default).
type AuditStatsResponse struct {
	Enabled     bool   `json:"enabled"`
	Logged      int64  `json:"logged"`
	Dropped     int64  `json:"dropped"`
	Flushed     int64  `json:"flushed"`
	Flushes     int64  `json:"flushes"`
	FlushErrors int64  `json:"flush_errors"`
	FlushError  string `json:"flush_error,omitempty"`
}

// ErrorResponse is the body of every non-200 the service produces.
type ErrorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
	// Code machine-classifies errors that clients dispatch on;
	// "job_expired" marks the 410 for a job reaped by retention, so a
	// slow poller can tell expiry from a wrong ID (404).
	Code string `json:"code,omitempty"`
	// RetryAfterSec accompanies 429: how long to back off before
	// retrying (mirrors the Retry-After header).
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
	// Strategies accompanies the unknown-strategy 400: the registered
	// strategy names a request may select.
	Strategies []string `json:"strategies,omitempty"`
	// Machines accompanies the unknown-machine 400: the registered zoo
	// machine names a request may select (plus the "regs=N" spelling).
	Machines []string `json:"machines,omitempty"`
}
