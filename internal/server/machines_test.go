package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/corpus"
	"repro/internal/iloc"
	"repro/internal/machines"
)

// TestMachinesEndpoint: GET /v1/machines lists the whole zoo with
// descriptions and shapes; other methods are rejected.
func TestMachinesEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/v1/machines")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var mr MachinesResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	names := machines.Names()
	if len(mr.Machines) != len(names) {
		t.Fatalf("listing has %d machines, registry %d: %+v", len(mr.Machines), len(names), mr)
	}
	for i, mi := range mr.Machines {
		if mi.Name != names[i] {
			t.Errorf("listing[%d] = %q, want %q (registration order)", i, mi.Name, names[i])
		}
		if mi.Description == "" {
			t.Errorf("machine %q has no description", mi.Name)
		}
		if len(mi.Regs) != int(iloc.NumClasses) || mi.Regs[0] < 3 {
			t.Errorf("machine %q has a bad shape: %+v", mi.Name, mi)
		}
	}

	if status, _, _ := post(t, ts.URL+"/v1/machines", struct{}{}, nil); status != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/machines = %d, want 405", status)
	}
}

// TestUnknownMachineRejected: an unknown machine name is a 400 whose
// body names every registered machine, on both allocation endpoints and
// per-unit in a batch — the same contract unknown strategies get.
func TestUnknownMachineRejected(t *testing.T) {
	ts := newTestServer(t, Config{})
	src := testSource(t)

	check := func(t *testing.T, status int, body []byte) {
		t.Helper()
		if status != http.StatusBadRequest {
			t.Fatalf("status = %d\n%s", status, body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatalf("bad error body: %v\n%s", err, body)
		}
		if er.Error == "" {
			t.Fatalf("empty error: %+v", er)
		}
		found := map[string]bool{}
		for _, n := range er.Machines {
			found[n] = true
		}
		for _, want := range machines.Names() {
			if !found[want] {
				t.Fatalf("error body lacks machine %q: %+v", want, er)
			}
		}
	}

	t.Run("allocate", func(t *testing.T) {
		status, _, body := post(t, ts.URL+"/v1/allocate",
			AllocateRequest{ILOC: src, Options: &OptionsRequest{Machine: "vax"}}, nil)
		check(t, status, body)
	})
	t.Run("batch-default", func(t *testing.T) {
		status, _, body := post(t, ts.URL+"/v1/batch",
			BatchRequest{Units: []BatchUnit{{ILOC: src}}, Options: &OptionsRequest{Machine: "vax"}}, nil)
		check(t, status, body)
	})
	t.Run("batch-per-unit", func(t *testing.T) {
		status, _, body := post(t, ts.URL+"/v1/batch",
			BatchRequest{Units: []BatchUnit{{ILOC: src, Options: &OptionsRequest{Machine: "vax"}}}}, nil)
		check(t, status, body)
	})

	// A degenerate sweep point fails with the validator's story (no
	// listing — the spelling resolved, the machine is unusable).
	t.Run("degenerate-sweep", func(t *testing.T) {
		status, _, body := post(t, ts.URL+"/v1/allocate",
			AllocateRequest{ILOC: src, Options: &OptionsRequest{Machine: "regs=1"}}, nil)
		if status != http.StatusBadRequest {
			t.Fatalf("status = %d\n%s", status, body)
		}
	})

	// machine and regs in one options object contradict each other.
	t.Run("machine-and-regs", func(t *testing.T) {
		status, _, body := post(t, ts.URL+"/v1/allocate",
			AllocateRequest{ILOC: src, Options: &OptionsRequest{Machine: "standard", Regs: 8}}, nil)
		if status != http.StatusBadRequest {
			t.Fatalf("status = %d\n%s", status, body)
		}
	})
}

// TestBatchMixedMachinesDiffer: one batch carrying the same routine on
// different per-unit machines returns per-machine code, and the shared
// cache keeps the entries separate on a repeat request.
func TestBatchMixedMachinesDiffer(t *testing.T) {
	ts := newTestServer(t, Config{})
	// A routine with enough pressure that a starved machine must spill
	// where a roomy one does not.
	spec, err := corpus.ParseSpec("count=1,seed=9,pressure=8,calls=-1")
	if err != nil {
		t.Fatal(err)
	}
	units, err := corpus.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	src := units[0].Text

	req := BatchRequest{
		Options: &OptionsRequest{Machine: "embedded-8"},
		Units: []BatchUnit{
			{Name: "inherit", ILOC: src},
			{Name: "roomy", ILOC: src, Options: &OptionsRequest{Machine: "aarch64"}},
			{Name: "sweep", ILOC: src, Options: &OptionsRequest{Machine: "regs=6"}},
		},
	}
	status, _, body := post(t, ts.URL+"/v1/batch", req, nil)
	if status != http.StatusOK {
		t.Fatalf("status = %d\n%s", status, body)
	}
	ar := decodeAllocate(t, body)
	code := map[string]string{}
	for _, u := range ar.Results {
		if u.Error != "" || !u.Verified {
			t.Fatalf("unit %+v", u)
		}
		code[u.Name] = u.Code
	}
	if code["inherit"] == code["roomy"] {
		t.Fatal("embedded-8 and aarch64 returned identical code for a pressure-heavy routine")
	}
	if code["sweep"] == code["roomy"] {
		t.Fatal("regs=6 and aarch64 returned identical code for a pressure-heavy routine")
	}

	status2, _, body2 := post(t, ts.URL+"/v1/batch", req, nil)
	if status2 != http.StatusOK {
		t.Fatalf("repeat status = %d", status2)
	}
	ar2 := decodeAllocate(t, body2)
	for i, u := range ar2.Results {
		if !u.CacheHit {
			t.Errorf("repeat unit %s not a cache hit", u.Name)
		}
		if u.Code != ar.Results[i].Code {
			t.Errorf("cache returned different code for %s", u.Name)
		}
	}
}

// TestCorpusReplayServedAcrossZoo is the served-path acceptance test:
// a generated corpus of over a thousand routines goes through
// /v1/batch on three zoo machines — every unit 200-verified, zero
// errors — and the repeat pass is pure cache traffic per machine.
func TestCorpusReplayServedAcrossZoo(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus replay is the long acceptance path")
	}
	ts := newTestServer(t, Config{})
	spec, err := corpus.ParseSpec("count=600,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	cunits, err := corpus.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	routines := corpus.Routines(cunits)
	if len(routines) < 1000 {
		t.Fatalf("corpus yields %d routines, want >= 1000", len(routines))
	}
	var units []BatchUnit
	for _, rt := range routines {
		units = append(units, BatchUnit{Name: rt.Name, ILOC: iloc.Print(rt)})
	}

	for _, machine := range []string{"standard", "x86-64", "embedded-8"} {
		req := BatchRequest{Units: units, Options: &OptionsRequest{Machine: machine}}
		status, _, body := post(t, ts.URL+"/v1/batch", req, nil)
		if status != http.StatusOK {
			t.Fatalf("%s: status = %d\n%.2000s", machine, status, body)
		}
		ar := decodeAllocate(t, body)
		if len(ar.Results) != len(units) {
			t.Fatalf("%s: %d results for %d units", machine, len(ar.Results), len(units))
		}
		for _, u := range ar.Results {
			if u.Error != "" {
				t.Fatalf("%s: %s: %s", machine, u.Name, u.Error)
			}
			if !u.Verified {
				t.Fatalf("%s: %s not verified", machine, u.Name)
			}
			if u.Degraded {
				t.Fatalf("%s: %s degraded (%s)", machine, u.Name, u.DegradeReason)
			}
		}
		// The first pass on each machine must miss: per-machine results
		// are isolated by cache key even for identical routine text.
		if ar.Stats.CacheHits != 0 {
			t.Fatalf("%s: %d cache hits on its first pass — keys leak across machines", machine, ar.Stats.CacheHits)
		}
	}

	req := BatchRequest{Units: units, Options: &OptionsRequest{Machine: "standard"}}
	status, _, body := post(t, ts.URL+"/v1/batch", req, nil)
	if status != http.StatusOK {
		t.Fatalf("replay status = %d", status)
	}
	ar := decodeAllocate(t, body)
	if ar.Stats.CacheHits != len(units) {
		t.Fatalf("replay: %d/%d cache hits, want all", ar.Stats.CacheHits, len(units))
	}
}
