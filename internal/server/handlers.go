package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/iloc"
	"repro/internal/machines"
)

// decodeStrict decodes a request body rejecting unknown fields, so a
// misspelled option name ("stratgy") is a 400 rather than a silent
// fall-through to the server defaults.
func decodeStrict(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// optionsError shapes a request-options failure as a 400. An unknown
// strategy or machine name additionally lists the registered names in
// the body so a client can self-correct without a second round trip.
func optionsError(w http.ResponseWriter, info *requestInfo, err error) {
	resp := ErrorResponse{Error: err.Error(), RequestID: info.id}
	var unknownStrategy *core.UnknownStrategyError
	if errors.As(err, &unknownStrategy) {
		resp.Strategies = unknownStrategy.Registered
	}
	var unknownMachine *machines.UnknownMachineError
	if errors.As(err, &unknownMachine) {
		resp.Machines = unknownMachine.Registered
	}
	writeError(w, http.StatusBadRequest, resp)
}

// handleAllocate serves POST /v1/allocate: one ILOC source text holding
// one or more routines, all allocated under the same options.
func (s *Server) handleAllocate(w http.ResponseWriter, r *http.Request, info *requestInfo) {
	var req AllocateRequest
	if err := decodeStrict(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: "bad request body: " + err.Error(), RequestID: info.id})
		return
	}
	if req.ILOC == "" {
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: "empty iloc source", RequestID: info.id})
		return
	}
	opts, err := req.Options.Resolve(s.cfg.Options)
	if err != nil {
		optionsError(w, info, err)
		return
	}
	routines, err := iloc.ParseProgram(req.ILOC)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: "parse: " + err.Error(), RequestID: info.id})
		return
	}
	units := make([]driver.Unit, len(routines))
	verify := make([]bool, len(routines))
	for i, rt := range routines {
		o := opts
		units[i] = driver.Unit{Name: rt.Name, Routine: rt, Options: &o}
		verify[i] = o.Verify
	}
	s.serve(w, r, info, units, verify)
}

// handleBatch serves POST /v1/batch: named units, each optionally
// carrying its own options.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request, info *requestInfo) {
	var req BatchRequest
	if err := decodeStrict(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: "bad request body: " + err.Error(), RequestID: info.id})
		return
	}
	if len(req.Units) == 0 {
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: "empty batch", RequestID: info.id})
		return
	}
	units, verify, err := s.buildBatchUnits(req)
	if err != nil {
		optionsError(w, info, err)
		return
	}
	s.serve(w, r, info, units, verify)
}

// serve is the shared allocation path: admission, deadline, engine run,
// response shaping. verify[i] records whether unit i ran under the
// post-allocation checker (a verified 200 means the checker accepted
// the code; rejected allocations never reach a response body — they
// degrade or error inside the allocator).
func (s *Server) serve(w http.ResponseWriter, r *http.Request, info *requestInfo, units []driver.Unit, verify []bool) {
	deadline, ok := s.deadlineFor(r)
	if !ok {
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: "bad X-Deadline-Ms header", RequestID: info.id})
		return
	}

	release, err := s.admit(r.Context().Done())
	if err != nil {
		s.shed(w, info, "server saturated, retry later")
		return
	}
	defer release()

	// The allocation context couples the client connection (a dropped
	// request cancels its batch) with the request's clamped deadline.
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	// The shared engine serves the common (metrics-only) path. When a
	// tracer is installed, a per-request engine carries the request's
	// sink instead, so batch spans land on the request's trace thread;
	// the cache and metrics registry stay the shared ones either way.
	eng := s.engine
	if info.sink != nil && info.sink.Trace != nil {
		eng = driver.New(driver.Config{
			Options: s.cfg.Options, Workers: s.cfg.Workers, Cache: s.cfg.Cache, Telemetry: info.sink,
		})
	}
	batch := eng.Run(ctx, units)

	resp := AllocateResponse{
		RequestID: info.id,
		Results:   make([]UnitResponse, len(batch.Results)),
		Stats: BatchStats{
			Routines:      batch.Stats.Routines,
			Failed:        batch.Stats.Failed,
			Degraded:      batch.Stats.Degraded,
			CacheHits:     batch.Stats.CacheHits,
			CacheMisses:   batch.Stats.CacheMisses,
			CacheDiskHits: batch.Stats.CacheDiskHits,
			Workers:       batch.Stats.Workers,
			WallMs:        float64(batch.Stats.Wall) / float64(time.Millisecond),
			CPUMs:         float64(batch.Stats.CPU) / float64(time.Millisecond),
		},
	}
	for i, ur := range batch.Results {
		resp.Results[i] = s.unitResponse(ur, verify[i])
	}
	if s.cfg.Audit != nil {
		for i, ur := range batch.Results {
			s.auditUnit(info.id, "", units[i], ur, verify[i])
		}
	}
	tel := s.cfg.Telemetry
	tel.Count("server.units", int64(batch.Stats.Routines))
	if batch.Stats.Degraded > 0 {
		tel.Count("server.degraded", int64(batch.Stats.Degraded))
	}
	writeJSON(w, http.StatusOK, resp)
}

// unitResponse shapes one driver result as the wire's UnitResponse —
// the element of the sync endpoints' results array and the line of the
// async results stream, so the two paths are byte-identical per unit.
func (s *Server) unitResponse(ur driver.UnitResult, verified bool) UnitResponse {
	u := UnitResponse{
		Name:      ur.Name,
		Backend:   s.cfg.InstanceID,
		CacheHit:  ur.CacheHit,
		CacheTier: ur.CacheTier,
		AllocMs:   float64(ur.Wall) / float64(time.Millisecond),
	}
	switch {
	case ur.Err != nil:
		u.Error = ur.Err.Error()
	case ur.Result != nil:
		u.Code = iloc.Print(ur.Result.Routine)
		u.Verified = verified
		u.Degraded = ur.Result.Degraded
		u.DegradeReason = ur.Result.DegradeReason
		u.Iterations = len(ur.Result.Iterations)
		u.Spilled = ur.Result.SpilledRanges
		u.Remat = ur.Result.RematSpills
		u.FrameWords = ur.Result.Routine.FrameWords
	}
	return u
}

// handleStrategies serves GET /v1/strategies: the registered allocation
// strategies, in registration order, with their one-line descriptions.
// Clients select one per request via the options "strategy" field.
func (s *Server) handleStrategies(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "GET only"})
		return
	}
	strategies := core.Strategies()
	resp := StrategiesResponse{Strategies: make([]StrategyInfo, len(strategies))}
	for i, st := range strategies {
		resp.Strategies[i] = StrategyInfo{Name: st.Name(), Description: st.Description()}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMachines serves GET /v1/machines: the target-machine zoo, in
// registration order, with descriptions and shapes. Clients select one
// per request via the options "machine" field (or "regs=N" for an
// unregistered sweep point).
func (s *Server) handleMachines(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "GET only"})
		return
	}
	zoo := machines.All()
	resp := MachinesResponse{Machines: make([]MachineInfo, len(zoo))}
	for i, e := range zoo {
		resp.Machines[i] = MachineInfo{
			Name:        e.Name,
			Description: e.Description,
			Regs:        append([]int(nil), e.Machine.Regs[:]...),
			CallerSave:  e.Machine.CallerSave,
			MemCycles:   e.Machine.MemCycles,
			OtherCycles: e.Machine.OtherCycles,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 200 while accepting work, 503 once a drain
// has begun (load balancers stop routing here while in-flight batches
// finish).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics dumps the telemetry registry as flat "name value"
// lines — the same format the CLIs write under -metrics. The result
// cache's per-tier stats are refreshed into the registry (store.*
// gauges) on every scrape, so warm-vs-cold serving is visible without
// instrumenting the cache hot path.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.publishCacheMetrics()
	js := s.jobs.Stats()
	reg := s.cfg.Telemetry.Metrics
	reg.Gauge("jobs.active").Set(int64(js.Active))
	reg.Gauge("jobs.retained").Set(int64(js.Retained))
	if log := s.cfg.Audit; log != nil {
		as := log.Stats()
		reg.Gauge("audit.logged").Set(as.Logged)
		reg.Gauge("audit.flushed").Set(as.Flushed)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = s.cfg.Telemetry.Metrics.WriteTo(w)
}

// publishCacheMetrics writes the current cache stats into the
// telemetry registry: both tiers when a persistent store is
// configured, the L1 shape alone for a plain in-memory cache.
func (s *Server) publishCacheMetrics() {
	reg := s.cfg.Telemetry.Metrics
	if s.cfg.Store != nil {
		s.cfg.Store.PublishMetrics(reg)
		return
	}
	if c, ok := s.cfg.Cache.(*driver.Cache); ok {
		cs := c.Stats()
		reg.Gauge("store.l1.hits").Set(int64(cs.Hits))
		reg.Gauge("store.l1.misses").Set(int64(cs.Misses))
		reg.Gauge("store.l1.evictions").Set(int64(cs.Evictions))
		reg.Gauge("store.l1.entries").Set(int64(cs.Entries))
		reg.Gauge("store.l1.hit_rate_pct").Set(int64(100 * cs.HitRate()))
	}
}

// handleBundle serves GET /v1/cache/bundle: a tar.gz snapshot of the
// disk cache tier, streamed after a flush so it includes every entry
// put before the request. A replica (rallocd -warm-from URL) or
// `ralloc-bundle export -url` can warm a cold cache from it. Servers
// without a persistent tier answer 404.
func (s *Server) handleBundle(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "GET only"})
		return
	}
	st := s.cfg.Store
	if st == nil || st.Disk() == nil {
		writeError(w, http.StatusNotFound, ErrorResponse{Error: "no persistent cache tier (start rallocd with -cache-dir)"})
		return
	}
	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("Content-Disposition", `attachment; filename="cache-bundle.tar.gz"`)
	n, err := st.ExportBundle(w)
	tel := s.cfg.Telemetry
	tel.Count("server.bundle.exports", 1)
	tel.Count("server.bundle.entries", int64(n))
	if err != nil {
		// The status line is gone; all that is left is to cut the
		// stream short (the client's gzip reader will notice) and count.
		tel.Count("server.bundle.errors", 1)
	}
}
