// Package ig implements the interference graph with the dual
// representation Chaitin advocated and the paper retains: a triangular
// bit matrix for constant-time interference queries plus adjacency
// vectors for fast neighbor iteration.
package ig

import (
	"fmt"
	"math/bits"
)

// Graph is an undirected interference graph over nodes 0..n-1. Node ids
// are live-range names (union-find roots); node 0 — the reserved register
// — is never used but keeps indexing aligned with register numbers.
type Graph struct {
	n      int
	matrix []uint64 // triangular bit matrix, bit(i,j) with i > j
	adj    [][]int32
	degree []int32
}

// New returns an empty graph over n nodes.
func New(n int) *Graph {
	words := (n*(n-1)/2 + 63) / 64
	return &Graph{
		n:      n,
		matrix: make([]uint64, words),
		adj:    make([][]int32, n),
		degree: make([]int32, n),
	}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return g.n }

func (g *Graph) bit(i, j int) (word, mask uint64) {
	if i < j {
		i, j = j, i
	}
	idx := i*(i-1)/2 + j
	return uint64(idx / 64), 1 << uint(idx%64)
}

// Interfere reports whether nodes i and j are adjacent.
func (g *Graph) Interfere(i, j int) bool {
	if i == j {
		return false
	}
	w, m := g.bit(i, j)
	return g.matrix[w]&m != 0
}

// AddEdge connects i and j in both representations; duplicate and
// self edges are ignored.
func (g *Graph) AddEdge(i, j int) {
	if i == j {
		return
	}
	if i < 0 || j < 0 || i >= g.n || j >= g.n {
		panic(fmt.Sprintf("ig: edge (%d,%d) outside [0,%d)", i, j, g.n))
	}
	w, m := g.bit(i, j)
	if g.matrix[w]&m != 0 {
		return
	}
	g.matrix[w] |= m
	g.adj[i] = append(g.adj[i], int32(j))
	g.adj[j] = append(g.adj[j], int32(i))
	g.degree[i]++
	g.degree[j]++
}

// Degree returns the number of neighbors of i.
func (g *Graph) Degree(i int) int { return int(g.degree[i]) }

// Neighbors returns the adjacency vector of i; the caller must not
// modify it.
func (g *Graph) Neighbors(i int) []int32 { return g.adj[i] }

// NumEdges returns the number of edges in the graph.
func (g *Graph) NumEdges() int {
	c := 0
	for _, w := range g.matrix {
		c += bits.OnesCount64(w)
	}
	return c
}

// Merge folds node b into node a: every neighbor of b becomes a neighbor
// of a, and b is left isolated. The coalescer uses it to keep
// interference queries precise between graph rebuilds.
func (g *Graph) Merge(a, b int) {
	if a == b {
		return
	}
	for _, nb := range g.adj[b] {
		j := int(nb)
		if j == a {
			continue
		}
		// Drop the (b,j) edge from j's vector and the matrix; add (a,j).
		w, m := g.bit(b, j)
		g.matrix[w] &^= m
		g.removeFromAdj(j, b)
		g.degree[j]--
		g.AddEdge(a, j)
	}
	// If a and b interfered (should not happen for coalesced copies),
	// clear that edge too.
	if g.Interfere(a, b) {
		w, m := g.bit(a, b)
		g.matrix[w] &^= m
		g.removeFromAdj(a, b)
		g.degree[a]--
	}
	g.adj[b] = nil
	g.degree[b] = 0
}

func (g *Graph) removeFromAdj(i, j int) {
	v := g.adj[i]
	for k, x := range v {
		if int(x) == j {
			v[k] = v[len(v)-1]
			g.adj[i] = v[:len(v)-1]
			return
		}
	}
}

// SignificantNeighbors counts the neighbors of i whose degree is at least
// k ("significant degree" in §4.2's conservative-coalescing test).
func (g *Graph) SignificantNeighbors(i, k int) int {
	c := 0
	for _, nb := range g.adj[i] {
		if int(g.degree[nb]) >= k {
			c++
		}
	}
	return c
}

// CombinedSignificant counts the distinct neighbors of the would-be
// merged node a∪b that have significant degree (≥ k), treating a shared
// neighbor's degree as its current degree. Conservative coalescing
// combines a and b only when this count is < k.
func (g *Graph) CombinedSignificant(a, b, k int) int {
	seen := make(map[int32]bool, len(g.adj[a])+len(g.adj[b]))
	c := 0
	count := func(from, other int) {
		for _, nb := range g.adj[from] {
			if int(nb) == other || seen[nb] {
				continue
			}
			seen[nb] = true
			deg := int(g.degree[nb])
			// A neighbor of both a and b sees them merge into one node;
			// its degree drops by one.
			if g.Interfere(int(nb), a) && g.Interfere(int(nb), b) {
				deg--
			}
			if deg >= k {
				c++
			}
		}
	}
	count(a, b)
	count(b, a)
	return c
}
