package ig

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	g := New(5)
	if g.Len() != 5 || g.NumEdges() != 0 {
		t.Fatal("empty graph wrong")
	}
	if g.Interfere(1, 2) {
		t.Fatal("no edges yet")
	}
	if g.Degree(1) != 0 {
		t.Fatal("degree wrong")
	}
}

func TestAddEdgeSymmetric(t *testing.T) {
	g := New(10)
	g.AddEdge(2, 7)
	if !g.Interfere(2, 7) || !g.Interfere(7, 2) {
		t.Fatal("edge not symmetric")
	}
	if g.Degree(2) != 1 || g.Degree(7) != 1 {
		t.Fatal("degrees wrong")
	}
	if g.NumEdges() != 1 {
		t.Fatal("edge count wrong")
	}
}

func TestDuplicateAndSelfEdges(t *testing.T) {
	g := New(10)
	g.AddEdge(2, 7)
	g.AddEdge(7, 2)
	g.AddEdge(2, 7)
	if g.Degree(2) != 1 || g.NumEdges() != 1 {
		t.Fatal("duplicate edge counted")
	}
	g.AddEdge(3, 3)
	if g.Degree(3) != 0 {
		t.Fatal("self edge counted")
	}
	if g.Interfere(3, 3) {
		t.Fatal("self interference")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(3).AddEdge(1, 3)
}

func TestNeighbors(t *testing.T) {
	g := New(6)
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(1, 5)
	nb := g.Neighbors(1)
	if len(nb) != 3 {
		t.Fatalf("neighbors = %v", nb)
	}
	want := map[int32]bool{2: true, 3: true, 5: true}
	for _, x := range nb {
		if !want[x] {
			t.Fatalf("unexpected neighbor %d", x)
		}
	}
}

func TestMerge(t *testing.T) {
	// 1-2, 2-3, 1-4. Merge 2 into 1: 1 gets 3; 4 kept; 2 isolated.
	g := New(6)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 4)
	g.Merge(1, 2)
	if g.Degree(2) != 0 || len(g.Neighbors(2)) != 0 {
		t.Fatal("merged node not isolated")
	}
	if !g.Interfere(1, 3) || !g.Interfere(1, 4) {
		t.Fatal("merged edges missing")
	}
	if g.Interfere(1, 2) || g.Interfere(2, 3) {
		t.Fatal("stale edges remain")
	}
	if g.Degree(1) != 2 {
		t.Fatalf("degree(1) = %d, want 2", g.Degree(1))
	}
	if g.Degree(3) != 1 {
		t.Fatalf("degree(3) = %d, want 1 (edge moved, not duplicated)", g.Degree(3))
	}
}

func TestMergeSharedNeighbor(t *testing.T) {
	// 1-3, 2-3: merging 2 into 1 must leave a single 1-3 edge.
	g := New(5)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.Merge(1, 2)
	if g.Degree(3) != 1 || g.Degree(1) != 1 {
		t.Fatalf("degrees after merge: d3=%d d1=%d", g.Degree(3), g.Degree(1))
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
}

func TestSignificantNeighbors(t *testing.T) {
	// Star: center 1 connected to 2,3,4; also 2-3 so 2,3 have degree 2.
	g := New(6)
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(1, 4)
	g.AddEdge(2, 3)
	if got := g.SignificantNeighbors(1, 2); got != 2 {
		t.Fatalf("sig(1,k=2) = %d, want 2 (nodes 2 and 3)", got)
	}
	if got := g.SignificantNeighbors(1, 3); got != 0 {
		t.Fatalf("sig(1,k=3) = %d, want 0", got)
	}
}

func TestCombinedSignificant(t *testing.T) {
	// a=1, b=2 share neighbor 3 (degree 2); 4 is neighbor of a only
	// (degree 1). k=2: 3's degree drops to 1 after merge -> count 0.
	g := New(6)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddEdge(1, 4)
	if got := g.CombinedSignificant(1, 2, 2); got != 0 {
		t.Fatalf("combined sig = %d, want 0", got)
	}
	if got := g.CombinedSignificant(1, 2, 1); got != 2 {
		t.Fatalf("combined sig k=1 = %d, want 2 (nodes 3 and 4)", got)
	}
}

// Property: matrix and adjacency representations agree after random
// edge insertions and merges.
func TestQuickDualRepresentation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 30
		g := New(n)
		ref := make(map[[2]int]bool)
		addRef := func(i, j int) {
			if i == j {
				return
			}
			if i < j {
				i, j = j, i
			}
			ref[[2]int{i, j}] = true
		}
		for step := 0; step < 200; step++ {
			i, j := rng.Intn(n), rng.Intn(n)
			g.AddEdge(i, j)
			addRef(i, j)
		}
		// Check matrix vs reference.
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				if g.Interfere(i, j) != ref[[2]int{i, j}] {
					return false
				}
			}
		}
		// Degrees match adjacency lengths and edge count doubles.
		total := 0
		for i := 0; i < n; i++ {
			if g.Degree(i) != len(g.Neighbors(i)) {
				return false
			}
			total += g.Degree(i)
		}
		return total == 2*g.NumEdges() && g.NumEdges() == len(ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge preserves the neighbor set (modulo the merged pair).
func TestQuickMerge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 20
		g := New(n)
		type edge [2]int
		edges := map[edge]bool{}
		for step := 0; step < 60; step++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			g.AddEdge(i, j)
			if i < j {
				i, j = j, i
			}
			edges[edge{i, j}] = true
		}
		a, b := 1+rng.Intn(n-1), 1+rng.Intn(n-1)
		if a == b {
			return true
		}
		want := map[int]bool{}
		for e := range edges {
			for k := 0; k < 2; k++ {
				x, y := e[k], e[1-k]
				if (x == a || x == b) && y != a && y != b {
					want[y] = true
				}
			}
		}
		g.Merge(a, b)
		if g.Degree(b) != 0 {
			return false
		}
		got := map[int]bool{}
		for _, nb := range g.Neighbors(a) {
			got[int(nb)] = true
		}
		if len(got) != len(want) {
			return false
		}
		for x := range want {
			if !got[x] || !g.Interfere(a, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
