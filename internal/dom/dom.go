// Package dom computes dominator trees and dominance frontiers using the
// iterative algorithm of Cooper, Harvey and Kennedy ("A Simple, Fast
// Dominance Algorithm") and the frontier construction of Cytron et al.
// Both forward and reverse (postdominance) variants are provided; the
// paper's control-flow-analysis phase ("cfa" in Table 2) computes forward
// and reverse dominators plus dominance frontiers.
package dom

import (
	"repro/internal/iloc"
)

// Tree is a dominator tree over the blocks of a routine. Blocks are
// identified by Block.Index.
type Tree struct {
	// Idom[b] is the immediate dominator of block b, or -1 for the root
	// (and for blocks outside the walk, which cannot happen after
	// cfg.Build removes unreachable blocks).
	Idom []int
	// Children[b] lists the blocks immediately dominated by b.
	Children [][]int
	// Order is a reverse postorder of the (possibly reversed) CFG; the
	// renaming walk in SSA construction uses Children, while iterative
	// dataflow uses Order.
	Order []*iloc.Block

	rpoNum []int // block index -> position in Order
}

// Compute returns the dominator tree of the routine's CFG (edges must be
// built). Blocks[0] is the root.
func Compute(rt *iloc.Routine) *Tree {
	n := len(rt.Blocks)
	succs := func(b *iloc.Block) []*iloc.Block { return b.Succs }
	preds := func(b *iloc.Block) []*iloc.Block { return b.Preds }
	return compute(rt.Blocks, []*iloc.Block{rt.Entry()}, succs, preds, n)
}

// ComputePost returns the postdominator tree. Because a routine may have
// several exit blocks (ret/retr/retf), the walk starts from all of them;
// Idom of an exit block is -1. Infinite loops (blocks that cannot reach an
// exit) would be unpostdominated; Verify-clean routines produced by the
// suite always reach an exit.
func ComputePost(rt *iloc.Routine) *Tree {
	var exits []*iloc.Block
	for _, b := range rt.Blocks {
		if t := b.Terminator(); t != nil && t.Op.IsRet() {
			exits = append(exits, b)
		}
	}
	succs := func(b *iloc.Block) []*iloc.Block { return b.Preds }
	preds := func(b *iloc.Block) []*iloc.Block { return b.Succs }
	return compute(rt.Blocks, exits, succs, preds, len(rt.Blocks))
}

// compute implements Cooper-Harvey-Kennedy over an abstract edge
// orientation. roots lists the entry nodes of the walk (several for the
// reverse graph); a virtual super-root with index -1 dominates them all.
func compute(blocks []*iloc.Block, roots []*iloc.Block, succs, preds func(*iloc.Block) []*iloc.Block, n int) *Tree {
	t := &Tree{
		Idom:     make([]int, n),
		Children: make([][]int, n),
		rpoNum:   make([]int, n),
	}
	for i := range t.Idom {
		t.Idom[i] = -1
		t.rpoNum[i] = -1
	}

	// Reverse postorder from the roots.
	seen := make([]bool, n)
	var post []*iloc.Block
	var dfs func(b *iloc.Block)
	dfs = func(b *iloc.Block) {
		seen[b.Index] = true
		for _, s := range succs(b) {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	for _, r := range roots {
		if !seen[r.Index] {
			dfs(r)
		}
	}
	order := make([]*iloc.Block, len(post))
	for i, b := range post {
		order[len(post)-1-i] = b
	}
	t.Order = order
	for i, b := range order {
		t.rpoNum[b.Index] = i
	}

	// Roots hang off a virtual super-root represented by index -1; their
	// Idom stays -1 (this also makes multi-exit postdominator trees
	// well-defined). processed marks nodes whose Idom chain is valid.
	isRoot := make([]bool, n)
	processed := make([]bool, n)
	for _, r := range roots {
		isRoot[r.Index] = true
		processed[r.Index] = true
	}

	// intersect walks both chains up to the common ancestor; reaching the
	// virtual root on either side yields the virtual root.
	intersect := func(a, b int) int {
		for a != b {
			if a == -1 || b == -1 {
				return -1
			}
			if t.rpoNum[a] > t.rpoNum[b] {
				a = t.Idom[a]
			} else {
				b = t.Idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if isRoot[b.Index] {
				continue
			}
			newIdom := -1
			first := true
			for _, p := range preds(b) {
				pi := p.Index
				if t.rpoNum[pi] < 0 || !processed[pi] {
					continue // unreachable in this orientation or not yet processed
				}
				if first {
					newIdom, first = pi, false
				} else {
					newIdom = intersect(pi, newIdom)
				}
			}
			if first {
				continue // no processed predecessor yet
			}
			if !processed[b.Index] || t.Idom[b.Index] != newIdom {
				t.Idom[b.Index] = newIdom
				processed[b.Index] = true
				changed = true
			}
		}
	}
	for b := 0; b < n; b++ {
		if p := t.Idom[b]; p >= 0 {
			t.Children[p] = append(t.Children[p], b)
		}
	}
	return t
}

// Dominates reports whether block a dominates block b (reflexive).
func (t *Tree) Dominates(a, b int) bool {
	for b != -1 {
		if a == b {
			return true
		}
		b = t.Idom[b]
	}
	return false
}

// Frontiers returns the dominance frontier of every block, per Cytron et
// al.: DF(b) contains each join point j with a predecessor dominated by b
// while b does not strictly dominate j.
func Frontiers(t *Tree, rt *iloc.Routine) [][]int {
	n := len(rt.Blocks)
	df := make([][]int, n)
	add := func(b, j int) {
		for _, x := range df[b] {
			if x == j {
				return
			}
		}
		df[b] = append(df[b], j)
	}
	for _, b := range rt.Blocks {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			runner := p.Index
			for runner != -1 && runner != t.Idom[b.Index] {
				add(runner, b.Index)
				runner = t.Idom[runner]
			}
		}
	}
	return df
}

// PostFrontiers returns reverse dominance frontiers (control dependence),
// used by splitting scheme 5 in §6 of the paper.
func PostFrontiers(t *Tree, rt *iloc.Routine) [][]int {
	n := len(rt.Blocks)
	df := make([][]int, n)
	add := func(b, j int) {
		for _, x := range df[b] {
			if x == j {
				return
			}
		}
		df[b] = append(df[b], j)
	}
	for _, b := range rt.Blocks {
		if len(b.Succs) < 2 {
			continue
		}
		for _, p := range b.Succs {
			runner := p.Index
			for runner != -1 && runner != t.Idom[b.Index] {
				add(runner, b.Index)
				runner = t.Idom[runner]
			}
		}
	}
	return df
}
