package dom_test

import (
	"math/rand"
	"testing"

	"repro/internal/cfg"
	. "repro/internal/dom"
	"repro/internal/iloc"
	"repro/internal/rgen"
)

func build(t *testing.T, src string) *iloc.Routine {
	t.Helper()
	rt := iloc.MustParse(src)
	if err := cfg.Build(rt); err != nil {
		t.Fatal(err)
	}
	return rt
}

const ladderSrc = `
routine f(r1)
entry:
    getparam r1, 0
    br gt r1, b1, b2
b1:
    ldi r2, 1
    jmp b3
b2:
    ldi r2, 2
    br lt r1, b3, b4
b3:
    addi r2, r2, 1
    jmp b5
b4:
    ldi r2, 4
    jmp b5
b5:
    retr r2
`

func TestLadderIdoms(t *testing.T) {
	rt := build(t, ladderSrc)
	tr := Compute(rt)
	idx := func(l string) int { return rt.BlockByLabel(l).Index }
	cases := map[string]string{
		"b1": "entry", "b2": "entry", "b3": "entry", "b4": "b2", "b5": "entry",
	}
	for b, want := range cases {
		if tr.Idom[idx(b)] != idx(want) {
			t.Errorf("idom(%s) = block %d, want %s", b, tr.Idom[idx(b)], want)
		}
	}
}

func TestDominatesReflexiveAndTransitive(t *testing.T) {
	rt := build(t, ladderSrc)
	tr := Compute(rt)
	for _, b := range rt.Blocks {
		if !tr.Dominates(b.Index, b.Index) {
			t.Fatalf("Dominates not reflexive at %s", b.Label)
		}
		if !tr.Dominates(rt.Entry().Index, b.Index) {
			t.Fatalf("entry must dominate %s", b.Label)
		}
	}
}

// Brute-force dominance: a dominates b iff removing a makes b
// unreachable from the entry.
func bruteDominates(rt *iloc.Routine, a, b int) bool {
	if a == b {
		return true
	}
	seen := make([]bool, len(rt.Blocks))
	var walk func(x *iloc.Block)
	walk = func(x *iloc.Block) {
		if seen[x.Index] || x.Index == a {
			return
		}
		seen[x.Index] = true
		for _, s := range x.Succs {
			walk(s)
		}
	}
	walk(rt.Entry())
	return !seen[b]
}

// Property: the CHK dominator tree agrees with brute-force dominance on
// random programs.
func TestQuickDominatorsAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rt := rgen.Generate(rand.New(rand.NewSource(seed)), rgen.Config{Regions: 5})
		if err := cfg.Build(rt); err != nil {
			t.Fatal(err)
		}
		tr := Compute(rt)
		n := len(rt.Blocks)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if got, want := tr.Dominates(a, b), bruteDominates(rt, a, b); got != want {
					t.Fatalf("seed %d: Dominates(%d,%d) = %v, brute force says %v", seed, a, b, got, want)
				}
			}
		}
	}
}

// Property: dominance frontier definition holds — j ∈ DF(b) iff b
// dominates a predecessor of j but does not strictly dominate j.
func TestQuickFrontierDefinition(t *testing.T) {
	for seed := int64(30); seed < 50; seed++ {
		rt := rgen.Generate(rand.New(rand.NewSource(seed)), rgen.Config{Regions: 5})
		if err := cfg.Build(rt); err != nil {
			t.Fatal(err)
		}
		tr := Compute(rt)
		df := Frontiers(tr, rt)
		inDF := func(b, j int) bool {
			for _, x := range df[b] {
				if x == j {
					return true
				}
			}
			return false
		}
		for b := 0; b < len(rt.Blocks); b++ {
			for _, j := range rt.Blocks {
				want := false
				for _, p := range j.Preds {
					if tr.Dominates(b, p.Index) && !(b != j.Index && tr.Dominates(b, j.Index)) {
						want = true
					}
				}
				if got := inDF(b, j.Index); got != want {
					t.Fatalf("seed %d: DF membership (%d,%d) = %v, want %v", seed, b, j.Index, got, want)
				}
			}
		}
	}
}

// Property: postdominator tree computed on the reversed graph matches
// brute force on the reversed reachability (to any exit).
func TestQuickPostdominators(t *testing.T) {
	for seed := int64(60); seed < 75; seed++ {
		rt := rgen.Generate(rand.New(rand.NewSource(seed)), rgen.Config{Regions: 4})
		if err := cfg.Build(rt); err != nil {
			t.Fatal(err)
		}
		tr := ComputePost(rt)
		exits := map[int]bool{}
		for _, b := range rt.Blocks {
			if tt := b.Terminator(); tt != nil && tt.Op.IsRet() {
				exits[b.Index] = true
			}
		}
		// a postdominates b iff every path from b to an exit passes a.
		brute := func(a, b int) bool {
			if a == b {
				return true
			}
			seen := make([]bool, len(rt.Blocks))
			reached := false
			var walk func(x *iloc.Block)
			walk = func(x *iloc.Block) {
				if seen[x.Index] || x.Index == a || reached {
					return
				}
				seen[x.Index] = true
				if exits[x.Index] {
					reached = true
					return
				}
				for _, s := range x.Succs {
					walk(s)
				}
			}
			walk(rt.Blocks[b])
			return !reached
		}
		for a := 0; a < len(rt.Blocks); a++ {
			for b := 0; b < len(rt.Blocks); b++ {
				if got, want := tr.Dominates(a, b), brute(a, b); got != want {
					t.Fatalf("seed %d: PostDominates(%d,%d) = %v, brute says %v", seed, a, b, got, want)
				}
			}
		}
	}
}

func TestPostFrontiersDiamond(t *testing.T) {
	rt := build(t, `
routine f(r1)
entry:
    getparam r1, 0
    br gt r1, a, b
a:
    ldi r2, 1
    jmp join
b:
    ldi r2, 2
    jmp join
join:
    retr r2
`)
	tr := ComputePost(rt)
	pdf := PostFrontiers(tr, rt)
	idx := func(l string) int { return rt.BlockByLabel(l).Index }
	has := func(b, j int) bool {
		for _, x := range pdf[b] {
			if x == j {
				return true
			}
		}
		return false
	}
	// The arms are control dependent on the entry's branch.
	if !has(idx("a"), idx("entry")) || !has(idx("b"), idx("entry")) {
		t.Fatalf("control dependence wrong: %v", pdf)
	}
	if has(idx("join"), idx("entry")) {
		t.Fatal("join postdominates entry; must not be control dependent on it")
	}
}
