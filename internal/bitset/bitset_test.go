package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(130)
	if !s.Empty() {
		t.Fatal("new set should be empty")
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
}

func TestAddHasRemove(t *testing.T) {
	s := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if s.Has(i) {
			t.Fatalf("Has(%d) before Add", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("!Has(%d) after Add", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Has(64) {
		t.Fatal("Has(64) after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1", s.Count())
	}
}

func TestHasOutOfRange(t *testing.T) {
	s := New(10)
	if s.Has(-1) || s.Has(10) || s.Has(1000) {
		t.Fatal("Has out of range should be false")
	}
}

func TestAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(4).Add(4)
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1)
}

func TestClear(t *testing.T) {
	s := New(100)
	for i := 0; i < 100; i += 3 {
		s.Add(i)
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("set not empty after Clear")
	}
}

func TestUnionWith(t *testing.T) {
	a, b := New(70), New(70)
	a.Add(1)
	b.Add(65)
	if !a.UnionWith(b) {
		t.Fatal("UnionWith should report change")
	}
	if !a.Has(1) || !a.Has(65) {
		t.Fatal("union missing elements")
	}
	if a.UnionWith(b) {
		t.Fatal("second UnionWith should report no change")
	}
}

func TestIntersectWith(t *testing.T) {
	a, b := New(70), New(70)
	for _, i := range []int{1, 2, 3, 64} {
		a.Add(i)
	}
	for _, i := range []int{2, 64, 69} {
		b.Add(i)
	}
	a.IntersectWith(b)
	want := []int{2, 64}
	got := a.Elements()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestDifferenceWith(t *testing.T) {
	a, b := New(70), New(70)
	for _, i := range []int{1, 2, 64} {
		a.Add(i)
	}
	b.Add(2)
	a.DifferenceWith(b)
	if a.Has(2) || !a.Has(1) || !a.Has(64) {
		t.Fatalf("difference wrong: %v", a)
	}
}

func TestIntersects(t *testing.T) {
	a, b := New(70), New(70)
	a.Add(64)
	if a.Intersects(b) {
		t.Fatal("disjoint sets should not intersect")
	}
	b.Add(64)
	if !a.Intersects(b) {
		t.Fatal("sets sharing 64 should intersect")
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(10).UnionWith(New(11))
}

func TestCopyIndependent(t *testing.T) {
	a := New(70)
	a.Add(5)
	b := a.Copy()
	b.Add(6)
	if a.Has(6) {
		t.Fatal("Copy aliases original")
	}
	if !b.Has(5) {
		t.Fatal("Copy lost element")
	}
}

func TestCopyFromAndEqual(t *testing.T) {
	a, b := New(70), New(70)
	a.Add(5)
	a.Add(69)
	b.CopyFrom(a)
	if !a.Equal(b) {
		t.Fatal("CopyFrom should produce equal set")
	}
	b.Add(6)
	if a.Equal(b) {
		t.Fatal("sets differ, Equal true")
	}
	if a.Equal(New(71)) {
		t.Fatal("different capacity sets should not be equal")
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(130)
	in := []int{129, 0, 64, 63, 65}
	for _, i := range in {
		s.Add(i)
	}
	got := s.Elements()
	want := []int{0, 63, 64, 65, 129}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elements = %v, want %v", got, want)
		}
	}
}

func TestString(t *testing.T) {
	s := New(10)
	s.Add(1)
	s.Add(5)
	if got := s.String(); got != "{1, 5}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(3).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

// Property: a bitset behaves like a map[int]bool under a random operation
// sequence.
func TestQuickAgainstMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 150
		s := New(n)
		m := make(map[int]bool)
		for step := 0; step < 400; step++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				s.Add(i)
				m[i] = true
			case 1:
				s.Remove(i)
				delete(m, i)
			case 2:
				if s.Has(i) != m[i] {
					return false
				}
			}
		}
		if s.Count() != len(m) {
			return false
		}
		for i := range m {
			if !s.Has(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: union is commutative on contents.
func TestQuickUnionCommutative(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a1, b1 := New(256), New(256)
		for _, x := range xs {
			a1.Add(int(x))
		}
		for _, y := range ys {
			b1.Add(int(y))
		}
		a2, b2 := b1.Copy(), a1.Copy()
		a1.UnionWith(b1)
		a2.UnionWith(b2)
		return a1.Equal(a2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: DeMorgan-ish — (A ∪ B) \ B ⊆ A and never intersects B.
func TestQuickDifferenceAfterUnion(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := New(256), New(256)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		u := a.Copy()
		u.UnionWith(b)
		u.DifferenceWith(b)
		if u.Intersects(b) {
			return false
		}
		ok := true
		u.ForEach(func(i int) {
			if !a.Has(i) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
