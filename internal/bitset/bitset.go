// Package bitset provides dense bit sets sized at construction time.
//
// The allocator uses bit sets for liveness vectors and for the triangular
// bit matrix of the interference graph, so the operations here are tuned
// for word-at-a-time traversal rather than generality.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity dense bit set. The zero value is an empty set of
// capacity zero; use New to create a set with room for n elements.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity for elements 0..n-1.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity of the set (the n passed to New).
func (s *Set) Len() int { return s.n }

// Add inserts i into the set.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Has reports whether i is in the set.
func (s *Set) Has(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Clear removes every element.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Copy returns a new set with the same capacity and contents.
func (s *Set) Copy() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of t. The sets must have the
// same capacity.
func (s *Set) CopyFrom(t *Set) {
	s.mustMatch(t)
	copy(s.words, t.words)
}

// Equal reports whether s and t contain the same elements. Sets of
// different capacity are never equal.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// UnionWith adds every element of t to s and reports whether s changed.
func (s *Set) UnionWith(t *Set) bool {
	s.mustMatch(t)
	changed := false
	for i, w := range t.words {
		nw := s.words[i] | w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// IntersectWith removes from s every element not in t.
func (s *Set) IntersectWith(t *Set) {
	s.mustMatch(t)
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// DifferenceWith removes from s every element of t.
func (s *Set) DifferenceWith(t *Set) {
	s.mustMatch(t)
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// Intersects reports whether s and t share any element.
func (s *Set) Intersects(t *Set) bool {
	s.mustMatch(t)
	for i, w := range s.words {
		if w&t.words[i] != 0 {
			return true
		}
	}
	return false
}

func (s *Set) mustMatch(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, t.n))
	}
}

// ForEach calls f for each element in increasing order.
func (s *Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Elements returns the members of the set in increasing order.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders the set as "{1, 5, 9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
