package interp

import (
	"math"
	"strings"
	"testing"

	"repro/internal/iloc"
)

func run(t *testing.T, src string, args ...Value) *Outcome {
	t.Helper()
	rt := iloc.MustParse(src)
	e, err := New(rt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(args...)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestArithmetic(t *testing.T) {
	out := run(t, `
routine f()
a:
    ldi r1, 6
    ldi r2, 7
    mul r3, r1, r2
    addi r3, r3, 1
    subi r3, r3, 3
    retr r3
`)
	if !out.HasRet || out.RetInt != 40 {
		t.Fatalf("ret = %d, want 40", out.RetInt)
	}
	if out.Counts[iloc.OpLdi] != 2 || out.Counts[iloc.OpMul] != 1 {
		t.Fatalf("counts = %v", out.Counts)
	}
}

func TestIntOps(t *testing.T) {
	out := run(t, `
routine f()
a:
    ldi r1, 12
    ldi r2, 10
    and r3, r1, r2      ; 8
    or r4, r1, r2       ; 14
    xor r5, r3, r4      ; 6
    ldi r6, 2
    shl r7, r5, r6      ; 24
    shr r7, r7, r6      ; 6
    neg r7, r7          ; -6
    sub r8, r1, r7      ; 18
    div r8, r8, r6      ; 9
    retr r8
`)
	if out.RetInt != 9 {
		t.Fatalf("ret = %d, want 9", out.RetInt)
	}
}

func TestFloatOps(t *testing.T) {
	out := run(t, `
routine f()
a:
    fldi f1, 2.5
    fldi f2, -1.5
    fadd f3, f1, f2     ; 1.0
    fmul f3, f3, f1     ; 2.5
    fsub f3, f3, f2     ; 4.0
    fdiv f3, f3, f1     ; 1.6
    fabs f4, f2         ; 1.5
    fneg f4, f4         ; -1.5
    fsub f3, f3, f4     ; 3.1
    retf f3
`)
	if math.Abs(out.RetFloat-3.1) > 1e-12 {
		t.Fatalf("ret = %g, want 3.1", out.RetFloat)
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..n via loop.
	out := run(t, `
routine sum(r1)
entry:
    getparam r1, 0
    ldi r2, 0
    ldi r3, 0
loop:
    sub r4, r3, r1
    br ge r4, done, body
body:
    addi r3, r3, 1
    add r2, r2, r3
    jmp loop
done:
    retr r2
`, Int(10))
	if out.RetInt != 55 {
		t.Fatalf("sum(10) = %d, want 55", out.RetInt)
	}
	if out.Counts[iloc.OpBr] != 11 {
		t.Fatalf("br count = %d, want 11", out.Counts[iloc.OpBr])
	}
}

func TestMemoryAndData(t *testing.T) {
	rt := iloc.MustParse(`
routine f()
data tab ro 3 = 1.5 2.5 4.0
data buf rw 2
entry:
    lda r1, tab
    fload f1, r1
    floadai f2, r1, 8
    ldi r2, 16
    floadao f3, r1, r2
    fadd f1, f1, f2
    fadd f1, f1, f3
    lda r3, buf
    fstore f1, r3
    fstoreai f1, r3, 8
    frload f4, tab, 8
    fadd f1, f1, f4
    retf f1
`)
	e, err := New(rt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.RetFloat-10.5) > 1e-12 {
		t.Fatalf("ret = %g, want 10.5", out.RetFloat)
	}
	buf := e.DataAddr("buf")
	if e.FloatAt(buf) != 8.0 || e.FloatAt(buf+8) != 8.0 {
		t.Fatalf("stored %g/%g, want 8/8", e.FloatAt(buf), e.FloatAt(buf+8))
	}
}

func TestIntDataInit(t *testing.T) {
	rt := iloc.MustParse(`
routine f()
data k ro 2 = 41 1
entry:
    rload r1, k, 0
    rload r2, k, 8
    add r1, r1, r2
    retr r1
`)
	e, err := New(rt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.RetInt != 42 {
		t.Fatalf("ret = %d", out.RetInt)
	}
}

func TestFrameStorage(t *testing.T) {
	out := run(t, `
routine f()
entry:
    ldi r1, 99
    storeai r1, fp, 16
    loadai r2, fp, 16
    retr r2
`)
	if out.RetInt != 99 {
		t.Fatalf("ret = %d", out.RetInt)
	}
	if out.Counts[iloc.OpStoreai] != 1 || out.Counts[iloc.OpLoadai] != 1 {
		t.Fatal("frame ops not counted")
	}
}

func TestParams(t *testing.T) {
	out := run(t, `
routine f(r1, f1)
entry:
    getparam r1, 0
    fgetparam f1, 1
    cvtif f2, r1
    fadd f2, f2, f1
    retf f2
`, Int(40), Float(2.5))
	if out.RetFloat != 42.5 {
		t.Fatalf("ret = %g", out.RetFloat)
	}
}

func TestArgErrors(t *testing.T) {
	rt := iloc.MustParse("routine f(r1)\na:\n getparam r1, 0\n retr r1\n")
	e, err := New(rt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("missing args accepted")
	}
	if _, err := e.Run(Float(1)); err == nil {
		t.Fatal("class mismatch accepted")
	}
}

func TestAllocAndPointers(t *testing.T) {
	rt := iloc.MustParse(`
routine sumarr(r1, r2)   ; base, count
entry:
    getparam r1, 0
    getparam r2, 1
    fldi f1, 0.0
    ldi r3, 0
loop:
    sub r4, r3, r2
    br ge r4, done, body
body:
    muli r5, r3, 8
    add r5, r5, r1
    fload f2, r5
    fadd f1, f1, f2
    addi r3, r3, 1
    jmp loop
done:
    retf f1
`)
	e, err := New(rt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	base := e.Alloc(5)
	for i := 0; i < 5; i++ {
		e.SetFloat(base+int64(i)*8, float64(i+1))
	}
	out, err := e.Run(Int(base), Int(5))
	if err != nil {
		t.Fatal(err)
	}
	if out.RetFloat != 15 {
		t.Fatalf("sum = %g, want 15", out.RetFloat)
	}
}

func TestFcmp(t *testing.T) {
	out := run(t, `
routine f()
entry:
    fldi f1, 1.0
    fldi f2, 2.0
    fcmp r1, f1, f2
    fcmp r2, f2, f1
    fcmp r3, f1, f1
    muli r1, r1, 100
    muli r2, r2, 10
    add r1, r1, r2
    add r1, r1, r3
    retr r1
`)
	if out.RetInt != -90 {
		t.Fatalf("ret = %d, want -90", out.RetInt)
	}
}

func runErr(t *testing.T, src string, args ...Value) error {
	t.Helper()
	rt := iloc.MustParse(src)
	e, err := New(rt, Config{MaxSteps: 10000})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run(args...)
	if err == nil {
		t.Fatal("expected execution error")
	}
	return err
}

func TestFaults(t *testing.T) {
	if err := runErr(t, `
routine f()
a:
    ldi r1, 0
    ldi r2, 5
    div r3, r2, r1
    retr r3
`); !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}

	if err := runErr(t, `
routine f()
a:
    ldi r1, -8
    load r2, r1
    retr r2
`); !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("err = %v", err)
	}

	if err := runErr(t, `
routine f()
a:
    ldi r1, 4
    load r2, r1
    retr r2
`); !strings.Contains(err.Error(), "unaligned") {
		t.Fatalf("err = %v", err)
	}

	if err := runErr(t, `
routine f()
data k ro 1 = 7
a:
    lda r1, k
    ldi r2, 1
    store r2, r1
    retr r2
`); !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("err = %v", err)
	}

	if err := runErr(t, `
routine f()
a:
    jmp a
`); !strings.Contains(err.Error(), "steps") {
		t.Fatalf("err = %v", err)
	}
}

func TestCyclesCostModel(t *testing.T) {
	out := run(t, `
routine f()
entry:
    ldi r1, 8
    storeai r1, fp, 8
    loadai r2, fp, 8
    addi r2, r2, 1
    retr r2
`)
	// ldi(1) + store(2) + load(2) + addi(1) + retr(1) = 7
	if got := out.Cycles(2, 1); got != 7 {
		t.Fatalf("cycles = %d, want 7", got)
	}
	if got := out.Cycles(1, 1); got != 5 {
		t.Fatalf("flat cycles = %d, want 5 (steps)", got)
	}
	if got := out.Count(iloc.OpLoadai, iloc.OpStoreai); got != 2 {
		t.Fatalf("mem count = %d", got)
	}
}

func TestFallthrough(t *testing.T) {
	out := run(t, `
routine f()
a:
    ldi r1, 1
b:
    addi r1, r1, 1
    retr r1
`)
	if out.RetInt != 2 {
		t.Fatalf("ret = %d", out.RetInt)
	}
}

func TestPlainRet(t *testing.T) {
	out := run(t, `
routine f()
a:
    ret
`)
	if out.HasRet {
		t.Fatal("plain ret should not set a return value")
	}
}

func TestLdisp(t *testing.T) {
	rt := iloc.MustParse(`
routine f()
entry:
    ldisp r1, 0
    load r2, r1
    ldisp r3, 5      ; beyond the configured display: reads zero
    add r2, r2, r3
    retr r2
`)
	e, err := New(rt, Config{Display: []int64{0}})
	if err != nil {
		t.Fatal(err)
	}
	outer := e.Alloc(1)
	e.SetInt(outer, 321)
	// Point display[0] at the outer frame slot.
	e2, err := New(rt, Config{Display: []int64{outer}})
	if err != nil {
		t.Fatal(err)
	}
	e2.Alloc(1) // keep memory layouts identical
	e2.SetInt(outer, 321)
	out, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.RetInt != 321 {
		t.Fatalf("ret = %d, want 321", out.RetInt)
	}
	if out.Counts[iloc.OpLdisp] != 2 {
		t.Fatalf("ldisp count = %d", out.Counts[iloc.OpLdisp])
	}
}

// TestEveryOpExecutes runs a routine touching every executable op and
// checks the combined result, so no opcode silently falls through to the
// default error arm.
func TestEveryOpExecutes(t *testing.T) {
	rt := iloc.MustParse(`
routine all(r1, f1)
data ktab ro 2 = 10 20
data ftab ro 2 = 0.5 1.5
data buf rw 4
entry:
    getparam r1, 0        ; 3
    fgetparam f1, 1       ; 2.0
    ldi r2, 6
    lda r3, ktab
    rload r4, ktab, 8     ; 20
    load r5, r3           ; 10
    loadai r6, r3, 8      ; 20
    ldi r7, 8
    loadao r8, r3, r7     ; 20
    mov r9, r2            ; 6
    add r10, r5, r6       ; 30
    sub r10, r10, r4      ; 10
    mul r10, r10, r2      ; 60
    div r10, r10, r1      ; 20
    and r11, r10, r7      ; 0
    or r11, r11, r1       ; 3
    xor r11, r11, r2      ; 5
    ldi r12, 1
    shl r13, r11, r12     ; 10
    shr r13, r13, r12     ; 5
    neg r14, r13          ; -5
    addi r14, r14, 7      ; 2
    subi r14, r14, 1      ; 1
    muli r14, r14, 9      ; 9
    ldisp r15, 0          ; 0 (no display configured)
    add r15, r15, r14     ; 9
    nop
    fldi f2, 0.25
    frload f3, ftab, 8    ; 1.5
    lda r5, ftab
    fload f4, r5          ; 0.5
    floadai f5, r5, 8     ; 1.5
    floadao f6, r5, r7    ; 1.5
    fmov f7, f2           ; 0.25
    fadd f8, f4, f5       ; 2.0
    fsub f8, f8, f7       ; 1.75
    fmul f8, f8, f1       ; 3.5
    fdiv f8, f8, f3       ; 2.333...
    fabs f9, f8
    fneg f9, f9           ; -2.333
    cvtif f10, r15        ; 9.0
    fadd f10, f10, f9     ; 6.666...
    cvtfi r6, f10         ; 6
    fcmp r7, f10, f6      ; 1 (6.66 > 1.5)
    lda r8, buf
    store r6, r8
    storeai r6, r8, 8
    fstore f10, r8        ; overwrite word 0 as float
    fstoreai f10, r8, 8
    br gt r7, yes, no
yes:
    add r6, r6, r9        ; 6 + 6 = 12
    jmp fin
no:
    ldi r6, -1
    jmp fin
fin:
    retr r6
`)
	e, err := New(rt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(Int(3), Float(2.0))
	if err != nil {
		t.Fatal(err)
	}
	if out.RetInt != 12 {
		t.Fatalf("combined result = %d, want 12", out.RetInt)
	}
	// Every opcode used above must appear in the counts.
	for _, op := range []iloc.Op{
		iloc.OpGetparam, iloc.OpFgetparam, iloc.OpLdi, iloc.OpLda, iloc.OpRload,
		iloc.OpLoad, iloc.OpLoadai, iloc.OpLoadao, iloc.OpMov, iloc.OpAdd,
		iloc.OpSub, iloc.OpMul, iloc.OpDiv, iloc.OpAnd, iloc.OpOr, iloc.OpXor,
		iloc.OpShl, iloc.OpShr, iloc.OpNeg, iloc.OpAddi, iloc.OpSubi,
		iloc.OpMuli, iloc.OpLdisp, iloc.OpNop, iloc.OpFldi, iloc.OpFrload,
		iloc.OpFload, iloc.OpFloadai, iloc.OpFloadao, iloc.OpFmov, iloc.OpFadd,
		iloc.OpFsub, iloc.OpFmul, iloc.OpFdiv, iloc.OpFabs, iloc.OpFneg,
		iloc.OpCvtif, iloc.OpCvtfi, iloc.OpFcmp, iloc.OpStore, iloc.OpStoreai,
		iloc.OpFstore, iloc.OpFstoreai, iloc.OpBr, iloc.OpJmp, iloc.OpRetr,
	} {
		if out.Counts[op] == 0 {
			t.Errorf("op %s never executed", op)
		}
	}
}
