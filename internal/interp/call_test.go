package interp

import (
	"strings"
	"testing"

	"repro/internal/iloc"
)

const doubleSrc = `
routine double(r1)
entry:
    getparam r1, 0
    add r2, r1, r1
    retr r2
`

func TestCallBasic(t *testing.T) {
	caller := iloc.MustParse(`
routine main()
entry:
    ldi r1, 21
    setarg r1, 0
    call double
    getret r2
    retr r2
`)
	e, err := New(caller, Config{Routines: []*iloc.Routine{iloc.MustParse(doubleSrc)}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.RetInt != 42 {
		t.Fatalf("double(21) = %d", out.RetInt)
	}
	if out.Counts[iloc.OpCall] != 1 || out.Counts[iloc.OpGetparam] != 1 {
		t.Fatalf("callee work not counted: %v", out.Counts)
	}
}

func TestCallFloatArgsAndResult(t *testing.T) {
	callee := iloc.MustParse(`
routine scale(f1, r1)
entry:
    fgetparam f1, 0
    getparam r1, 1
    cvtif f2, r1
    fmul f1, f1, f2
    retf f1
`)
	caller := iloc.MustParse(`
routine main()
entry:
    fldi f1, 2.5
    ldi r1, 4
    fsetarg f1, 0
    setarg r1, 1
    call scale
    fgetret f2
    retf f2
`)
	e, err := New(caller, Config{Routines: []*iloc.Routine{callee}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.RetFloat != 10 {
		t.Fatalf("scale(2.5, 4) = %g", out.RetFloat)
	}
}

func TestCallRecursionFactorial(t *testing.T) {
	fact := iloc.MustParse(`
routine fact(r1)
entry:
    getparam r1, 0
    br gt r1, rec, base
base:
    ldi r2, 1
    retr r2
rec:
    subi r2, r1, 1
    setarg r2, 0
    call fact
    getret r3
    mul r3, r3, r1
    retr r3
`)
	e, err := New(iloc.MustParse(`
routine main(r1)
entry:
    getparam r1, 0
    setarg r1, 0
    call fact
    getret r2
    retr r2
`), Config{Routines: []*iloc.Routine{fact}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(Int(10))
	if err != nil {
		t.Fatal(err)
	}
	if out.RetInt != 3628800 {
		t.Fatalf("10! = %d", out.RetInt)
	}
}

func TestCallDepthLimit(t *testing.T) {
	loop := iloc.MustParse(`
routine forever()
entry:
    call forever
    ret
`)
	e, err := New(loop, Config{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run()
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("err = %v", err)
	}
}

func TestCallUnknownRoutine(t *testing.T) {
	e, err := New(iloc.MustParse(`
routine main()
entry:
    call nowhere
    ret
`), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil || !strings.Contains(err.Error(), "unknown routine") {
		t.Fatalf("err = %v", err)
	}
}

func TestCallArgMismatch(t *testing.T) {
	e, err := New(iloc.MustParse(`
routine main()
entry:
    call double      ; no setarg: double wants one argument
    ret
`), Config{Routines: []*iloc.Routine{iloc.MustParse(doubleSrc)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("missing arguments accepted")
	}
}

func TestCalleeDataMergedAndFramesSeparate(t *testing.T) {
	callee := iloc.MustParse(`
routine peek()
data ctab ro 1 = 7
entry:
    ldi r1, 123
    storeai r1, fp, 0   ; callee frame slot: must not clobber the caller's
    rload r2, ctab, 0
    retr r2
`)
	caller := iloc.MustParse(`
routine main()
entry:
    ldi r1, 55
    storeai r1, fp, 0
    call peek
    getret r2
    loadai r3, fp, 0    ; caller frame must still hold 55
    mul r2, r2, r3
    retr r2
`)
	e, err := New(caller, Config{Routines: []*iloc.Routine{callee}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.RetInt != 7*55 {
		t.Fatalf("result = %d, want %d (callee frame clobbered the caller?)", out.RetInt, 7*55)
	}
}

func TestCallerSavePoisoning(t *testing.T) {
	// An "allocated" caller that wrongly keeps a value in caller-save r1
	// across a call must observe the poison.
	callee := iloc.MustParse(`
routine leaf()
entry:
    ret
`)
	caller := iloc.MustParse(`
routine main()
entry:
    ldi r1, 42
    call leaf
    retr r1
`)
	caller.Allocated = true
	caller.NextReg = [2]int{16, 16}
	caller.CallerSave = [2]int{6, 6}
	e, err := New(caller, Config{Routines: []*iloc.Routine{callee}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.RetInt == 42 {
		t.Fatal("caller-save register survived a call in allocated code")
	}
	// A value in callee-save r7 must survive.
	caller2 := iloc.MustParse(`
routine main()
entry:
    ldi r7, 42
    call leaf
    retr r7
`)
	caller2.Allocated = true
	caller2.NextReg = [2]int{16, 16}
	caller2.CallerSave = [2]int{6, 6}
	e2, err := New(caller2, Config{Routines: []*iloc.Routine{callee}})
	if err != nil {
		t.Fatal(err)
	}
	out2, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out2.RetInt != 42 {
		t.Fatalf("callee-save register clobbered: %d", out2.RetInt)
	}
}
