// Package interp executes ILOC routines directly, counting every
// instruction it retires. The paper translated allocated ILOC into
// instrumented C, compiled it and ran it with real data to collect
// dynamic counts of loads, stores, copies, load-immediates and
// add-immediates (§5); interpreting the ILOC gives the identical
// measurements without an offline C toolchain (DESIGN.md §4).
//
// Memory is byte-addressed with 8-byte words. The layout is:
//
//	[0, frame)            the routine's frame (fp = 0): locals, spill slots
//	[frame, frame+data)   static data items, in declaration order
//	[.., ..)              scratch memory handed out by Alloc
//
// Loads and stores must be 8-byte aligned and in bounds; stores into
// read-only data items fail. Both checks catch allocator bugs loudly.
package interp

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/iloc"
)

// Value is a routine argument: an integer (often an address) or a double.
type Value struct {
	I       int64
	F       float64
	IsFloat bool
}

// Int makes an integer argument.
func Int(v int64) Value { return Value{I: v} }

// Float makes a floating-point argument.
func Float(f float64) Value { return Value{F: f, IsFloat: true} }

// Config tunes an execution environment.
type Config struct {
	// MaxSteps bounds retired instructions (default 200 million).
	MaxSteps int64
	// ExtraFrameWords pads the frame beyond what the code visibly uses,
	// for routines that index the frame indirectly.
	ExtraFrameWords int
	// Display simulates the lexical-scope display: ldisp rD, L reads
	// Display[L]. Levels beyond the slice read zero. Entries typically
	// hold addresses of scratch memory allocated with Env.Alloc.
	Display []int64
	// Routines supplies callees for call instructions, resolved by name.
	// Each activation gets a fresh register file and its own frame; if
	// the calling routine is allocated, its caller-save registers are
	// poisoned after the call returns, so an allocation that wrongly
	// keeps a live value in a caller-save color computes garbage.
	Routines []*iloc.Routine
	// MaxDepth bounds call nesting (default 256).
	MaxDepth int
}

// Env is an execution environment for one routine: its memory image plus
// data-section addresses. Create with New, optionally Alloc scratch
// memory and pass its addresses as arguments, then Run.
type Env struct {
	rt       *iloc.Routine
	cfg      Config
	mem      []byte
	frame    int64
	data     map[string]int64
	roLo     int64 // read-only data span [roLo, roHi)
	roHi     int64
	routines map[string]*iloc.Routine
}

// Outcome reports one execution.
type Outcome struct {
	Counts   map[iloc.Op]int64 // dynamic instruction counts
	Steps    int64
	RetInt   int64
	RetFloat float64
	HasRet   bool // retr/retf executed (ret alone leaves HasRet false)
}

// Cycles prices the execution with a cost model: memCycles per load and
// store, otherCycles for the rest (the paper uses 2 and 1).
func (o *Outcome) Cycles(memCycles, otherCycles int64) int64 {
	var total int64
	for op, n := range o.Counts {
		if op.IsMem() {
			total += n * memCycles
		} else {
			total += n * otherCycles
		}
	}
	return total
}

// Count sums the dynamic counts of the given ops.
func (o *Outcome) Count(ops ...iloc.Op) int64 {
	var n int64
	for _, op := range ops {
		n += o.Counts[op]
	}
	return n
}

// New builds an environment for the routine: frame, then static data.
func New(rt *iloc.Routine, cfg Config) (*Env, error) {
	if err := iloc.Verify(rt, false); err != nil {
		return nil, fmt.Errorf("interp: %w", err)
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 200_000_000
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 256
	}
	e := &Env{rt: rt, cfg: cfg, data: make(map[string]int64), routines: make(map[string]*iloc.Routine)}
	for _, callee := range cfg.Routines {
		if err := iloc.Verify(callee, false); err != nil {
			return nil, fmt.Errorf("interp: callee: %w", err)
		}
		if _, dup := e.routines[callee.Name]; dup {
			return nil, fmt.Errorf("interp: duplicate routine %q", callee.Name)
		}
		e.routines[callee.Name] = callee
	}
	e.routines[rt.Name] = rt

	frameWords := int64(rt.FrameWords) + int64(cfg.ExtraFrameWords) + maxFPWords(rt) + 8
	e.frame = frameWords * 8
	e.mem = make([]byte, e.frame)

	// Static data of the main routine and every callee; read-only items
	// first so they form one contiguous protected span.
	e.roLo = e.frame
	all := append([]*iloc.Routine{rt}, cfg.Routines...)
	for pass := 0; pass < 2; pass++ {
		for _, r := range all {
			for i := range r.Data {
				d := &r.Data[i]
				if d.ReadOnly != (pass == 0) {
					continue
				}
				if _, dup := e.data[d.Label]; dup {
					return nil, fmt.Errorf("interp: duplicate data label %q across routines", d.Label)
				}
				addr := int64(len(e.mem))
				e.data[d.Label] = addr
				e.mem = append(e.mem, make([]byte, d.Words*8)...)
				for w, v := range d.Init {
					if d.IsFloat {
						binary.LittleEndian.PutUint64(e.mem[addr+int64(w)*8:], math.Float64bits(v))
					} else {
						binary.LittleEndian.PutUint64(e.mem[addr+int64(w)*8:], uint64(int64(v)))
					}
				}
				if pass == 0 {
					e.roHi = int64(len(e.mem))
				}
			}
		}
	}
	if e.roHi == 0 {
		e.roHi = e.roLo
	}
	return e, nil
}

// maxFPWords scans for the highest fp-relative word the code touches.
func maxFPWords(rt *iloc.Routine) int64 {
	var hi int64
	rt.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
		fpRel := false
		switch in.Op {
		case iloc.OpLoadai, iloc.OpFloadai, iloc.OpAddi, iloc.OpSubi:
			fpRel = in.Src[0].IsFP()
		case iloc.OpStoreai, iloc.OpFstoreai:
			fpRel = in.Src[1].IsFP()
		}
		if fpRel && in.Imm/8+1 > hi {
			hi = in.Imm/8 + 1
		}
	})
	return hi
}

// Alloc extends memory by words 8-byte words of scratch space and returns
// its base address.
func (e *Env) Alloc(words int) int64 {
	addr := int64(len(e.mem))
	e.mem = append(e.mem, make([]byte, words*8)...)
	return addr
}

// DataAddr returns the address of a static data item.
func (e *Env) DataAddr(label string) int64 {
	a, ok := e.data[label]
	if !ok {
		panic(fmt.Sprintf("interp: no data item %q", label))
	}
	return a
}

// SetInt stores an integer word at a byte address.
func (e *Env) SetInt(addr, v int64) {
	binary.LittleEndian.PutUint64(e.mem[addr:], uint64(v))
}

// SetFloat stores a double at a byte address.
func (e *Env) SetFloat(addr int64, f float64) {
	binary.LittleEndian.PutUint64(e.mem[addr:], math.Float64bits(f))
}

// IntAt reads an integer word.
func (e *Env) IntAt(addr int64) int64 {
	return int64(binary.LittleEndian.Uint64(e.mem[addr:]))
}

// FloatAt reads a double.
func (e *Env) FloatAt(addr int64) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(e.mem[addr:]))
}

func (e *Env) checkAddr(addr int64, store bool, in *iloc.Instr) error {
	if addr < 0 || addr+8 > int64(len(e.mem)) {
		return fmt.Errorf("interp: %s: address %d out of bounds [0,%d)", in, addr, len(e.mem))
	}
	if addr%8 != 0 {
		return fmt.Errorf("interp: %s: unaligned address %d", in, addr)
	}
	if store && addr >= e.roLo && addr < e.roHi {
		return fmt.Errorf("interp: %s: store into read-only data at %d", in, addr)
	}
	return nil
}

// Run executes the routine with the given arguments (one per declared
// parameter, classes matching) and returns the dynamic counts, which
// include the work of any routines it calls.
func (e *Env) Run(args ...Value) (*Outcome, error) {
	out := &Outcome{Counts: make(map[iloc.Op]int64, 32)}
	ret, err := e.exec(e.rt, args, 0, 0, out)
	if err != nil {
		return nil, err
	}
	out.RetInt, out.RetFloat, out.HasRet = ret.i, ret.f, ret.has
	return out, nil
}

// retval is what one activation returns.
type retval struct {
	i   int64
	f   float64
	has bool
}

// Values written into caller-save registers after a call returns, when
// the caller is allocated code: any use of a stale caller-save value
// turns into conspicuous garbage instead of silently working.
const poisonInt = int64(-0x5EEDBAD5EEDBAD)

var poisonFloat = math.NaN()

// exec runs one activation of rt with its own register file, frame base
// and argument list.
func (e *Env) exec(rt *iloc.Routine, args []Value, fpBase int64, depth int, out *Outcome) (retval, error) {
	if depth > e.cfg.MaxDepth {
		return retval{}, fmt.Errorf("interp: call depth exceeds %d", e.cfg.MaxDepth)
	}
	if len(args) != len(rt.Params) {
		return retval{}, fmt.Errorf("interp: %s takes %d args, got %d", rt.Name, len(rt.Params), len(args))
	}
	for i, p := range rt.Params {
		if args[i].IsFloat != (p.Reg.Class == iloc.ClassFlt) {
			return retval{}, fmt.Errorf("interp: %s: arg %d class mismatch", rt.Name, i)
		}
	}

	ri := make([]int64, rt.NumRegs(iloc.ClassInt))
	rf := make([]float64, rt.NumRegs(iloc.ClassFlt))
	ri[0] = fpBase // fp: this activation's frame base

	var lastRet retval  // the return latch getret/fgetret read
	var pending []Value // outgoing argument slots for the next call
	setPending := func(slot int64, v Value) {
		for int64(len(pending)) <= slot {
			pending = append(pending, Value{})
		}
		pending[slot] = v
	}

	cur := rt.Entry()
	ip := 0
	branchTo := func(label string) error {
		b := rt.BlockByLabel(label)
		if b == nil {
			return fmt.Errorf("interp: jump to unknown label %q", label)
		}
		cur, ip = b, 0
		return nil
	}

	for {
		if ip >= len(cur.Instrs) {
			if cur.Index+1 >= len(rt.Blocks) {
				return retval{}, fmt.Errorf("interp: fell off the end of %s", rt.Name)
			}
			cur = rt.Blocks[cur.Index+1]
			ip = 0
			continue
		}
		in := cur.Instrs[ip]
		ip++
		if out.Steps++; out.Steps > e.cfg.MaxSteps {
			return retval{}, fmt.Errorf("interp: %s exceeded %d steps", rt.Name, e.cfg.MaxSteps)
		}
		out.Counts[in.Op]++

		switch in.Op {
		case iloc.OpNop:
		case iloc.OpAdd:
			ri[in.Dst.N] = ri[in.Src[0].N] + ri[in.Src[1].N]
		case iloc.OpSub:
			ri[in.Dst.N] = ri[in.Src[0].N] - ri[in.Src[1].N]
		case iloc.OpMul:
			ri[in.Dst.N] = ri[in.Src[0].N] * ri[in.Src[1].N]
		case iloc.OpDiv:
			if ri[in.Src[1].N] == 0 {
				return retval{}, fmt.Errorf("interp: %s: division by zero", in)
			}
			ri[in.Dst.N] = ri[in.Src[0].N] / ri[in.Src[1].N]
		case iloc.OpAnd:
			ri[in.Dst.N] = ri[in.Src[0].N] & ri[in.Src[1].N]
		case iloc.OpOr:
			ri[in.Dst.N] = ri[in.Src[0].N] | ri[in.Src[1].N]
		case iloc.OpXor:
			ri[in.Dst.N] = ri[in.Src[0].N] ^ ri[in.Src[1].N]
		case iloc.OpShl:
			ri[in.Dst.N] = ri[in.Src[0].N] << (uint64(ri[in.Src[1].N]) & 63)
		case iloc.OpShr:
			ri[in.Dst.N] = int64(uint64(ri[in.Src[0].N]) >> (uint64(ri[in.Src[1].N]) & 63))
		case iloc.OpNeg:
			ri[in.Dst.N] = -ri[in.Src[0].N]
		case iloc.OpAddi:
			ri[in.Dst.N] = ri[in.Src[0].N] + in.Imm
		case iloc.OpSubi:
			ri[in.Dst.N] = ri[in.Src[0].N] - in.Imm
		case iloc.OpMuli:
			ri[in.Dst.N] = ri[in.Src[0].N] * in.Imm
		case iloc.OpLdi:
			ri[in.Dst.N] = in.Imm
		case iloc.OpLda:
			ri[in.Dst.N] = e.DataAddr(in.Label)
		case iloc.OpMov:
			ri[in.Dst.N] = ri[in.Src[0].N]

		case iloc.OpLoad, iloc.OpLoadai, iloc.OpLoadao:
			addr := ri[in.Src[0].N]
			if in.Op == iloc.OpLoadai {
				addr += in.Imm
			} else if in.Op == iloc.OpLoadao {
				addr += ri[in.Src[1].N]
			}
			if err := e.checkAddr(addr, false, in); err != nil {
				return retval{}, err
			}
			ri[in.Dst.N] = e.IntAt(addr)
		case iloc.OpStore, iloc.OpStoreai:
			addr := ri[in.Src[1].N]
			if in.Op == iloc.OpStoreai {
				addr += in.Imm
			}
			if err := e.checkAddr(addr, true, in); err != nil {
				return retval{}, err
			}
			e.SetInt(addr, ri[in.Src[0].N])
		case iloc.OpRload:
			ri[in.Dst.N] = e.IntAt(e.DataAddr(in.Label) + in.Imm)

		case iloc.OpFadd:
			rf[in.Dst.N] = rf[in.Src[0].N] + rf[in.Src[1].N]
		case iloc.OpFsub:
			rf[in.Dst.N] = rf[in.Src[0].N] - rf[in.Src[1].N]
		case iloc.OpFmul:
			rf[in.Dst.N] = rf[in.Src[0].N] * rf[in.Src[1].N]
		case iloc.OpFdiv:
			rf[in.Dst.N] = rf[in.Src[0].N] / rf[in.Src[1].N]
		case iloc.OpFabs:
			rf[in.Dst.N] = math.Abs(rf[in.Src[0].N])
		case iloc.OpFneg:
			rf[in.Dst.N] = -rf[in.Src[0].N]
		case iloc.OpFmov:
			rf[in.Dst.N] = rf[in.Src[0].N]
		case iloc.OpFldi:
			rf[in.Dst.N] = in.FImm

		case iloc.OpFload, iloc.OpFloadai, iloc.OpFloadao:
			addr := ri[in.Src[0].N]
			if in.Op == iloc.OpFloadai {
				addr += in.Imm
			} else if in.Op == iloc.OpFloadao {
				addr += ri[in.Src[1].N]
			}
			if err := e.checkAddr(addr, false, in); err != nil {
				return retval{}, err
			}
			rf[in.Dst.N] = e.FloatAt(addr)
		case iloc.OpFstore, iloc.OpFstoreai:
			addr := ri[in.Src[1].N]
			if in.Op == iloc.OpFstoreai {
				addr += in.Imm
			}
			if err := e.checkAddr(addr, true, in); err != nil {
				return retval{}, err
			}
			e.SetFloat(addr, rf[in.Src[0].N])
		case iloc.OpFrload:
			rf[in.Dst.N] = e.FloatAt(e.DataAddr(in.Label) + in.Imm)

		case iloc.OpCvtif:
			rf[in.Dst.N] = float64(ri[in.Src[0].N])
		case iloc.OpCvtfi:
			ri[in.Dst.N] = int64(rf[in.Src[0].N])
		case iloc.OpFcmp:
			a, b := rf[in.Src[0].N], rf[in.Src[1].N]
			switch {
			case a < b:
				ri[in.Dst.N] = -1
			case a > b:
				ri[in.Dst.N] = 1
			default:
				ri[in.Dst.N] = 0
			}

		case iloc.OpGetparam:
			ri[in.Dst.N] = args[in.Imm].I
		case iloc.OpFgetparam:
			rf[in.Dst.N] = args[in.Imm].F
		case iloc.OpLdisp:
			if in.Imm >= 0 && in.Imm < int64(len(e.cfg.Display)) {
				ri[in.Dst.N] = e.cfg.Display[in.Imm]
			} else {
				ri[in.Dst.N] = 0
			}

		case iloc.OpSetarg:
			setPending(in.Imm, Int(ri[in.Src[0].N]))
		case iloc.OpFsetarg:
			setPending(in.Imm, Float(rf[in.Src[0].N]))
		case iloc.OpCall:
			callee, ok := e.routines[in.Label]
			if !ok {
				return retval{}, fmt.Errorf("interp: call to unknown routine %q", in.Label)
			}
			calleeFrame := int(int64(callee.FrameWords) + maxFPWords(callee) + 8)
			calleeFP := e.Alloc(calleeFrame)
			r, err := e.exec(callee, pending, calleeFP, depth+1, out)
			if err != nil {
				return retval{}, err
			}
			lastRet = r
			pending = nil
			if rt.Allocated {
				for n := 1; n <= rt.CallerSave[iloc.ClassInt] && n < len(ri); n++ {
					ri[n] = poisonInt
				}
				for n := 1; n <= rt.CallerSave[iloc.ClassFlt] && n < len(rf); n++ {
					rf[n] = poisonFloat
				}
			}
		case iloc.OpGetret:
			ri[in.Dst.N] = lastRet.i
		case iloc.OpFgetret:
			rf[in.Dst.N] = lastRet.f

		case iloc.OpJmp:
			if err := branchTo(in.Label); err != nil {
				return retval{}, err
			}
		case iloc.OpBr:
			l := in.Label
			if !in.Cond.Holds(ri[in.Src[0].N]) {
				l = in.Label2
			}
			if err := branchTo(l); err != nil {
				return retval{}, err
			}
		case iloc.OpRet:
			return retval{}, nil
		case iloc.OpRetr:
			return retval{i: ri[in.Src[0].N], has: true}, nil
		case iloc.OpRetf:
			return retval{f: rf[in.Src[0].N], has: true}, nil

		case iloc.OpPhi:
			return retval{}, fmt.Errorf("interp: cannot execute φ-node in %s", rt.Name)
		default:
			return retval{}, fmt.Errorf("interp: unimplemented op %s", in.Op)
		}
	}
}
