package driver

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/iloc"
	"repro/internal/suite"
	"repro/internal/target"
	"repro/internal/telemetry"
)

// TestCancelAbortsBatchMidFlight is the cancellation regression test: a
// context cancelled while one unit is mid-allocation aborts the batch
// without losing finished work. Units that completed before the cancel
// keep byte-identical results, the in-flight unit surfaces the
// cancellation, unstarted units report ctx.Err() without ever entering
// the allocator, and the batch stats and telemetry counters agree with
// what actually happened.
func TestCancelAbortsBatchMidFlight(t *testing.T) {
	units := testUnits(t)
	if len(units) < 4 {
		t.Fatalf("need >= 4 test units, have %d", len(units))
	}
	opts := core.Options{Machine: target.WithRegs(6), Mode: core.ModeRemat}

	// Reference run: the results a cancelled batch must preserve for the
	// units it finished.
	clean := New(Config{Options: opts, Workers: 1}).Run(context.Background(), units)
	if err := clean.FirstErr(); err != nil {
		t.Fatal(err)
	}

	// With one worker the units run strictly in order. The hook stalls
	// the second unit's first pass until the test has cancelled the
	// context, so unit 0 is finished, unit 1 is mid-flight, and units
	// 2..n never start.
	victim := units[1].Name
	entered := make(chan struct{})
	release := make(chan struct{})
	var once bool
	core.PanicHook = func(routine, pass string) {
		if routine == victim && pass == "cfa" && !once {
			once = true
			close(entered)
			<-release
		}
	}
	defer func() { core.PanicHook = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	reg := telemetry.NewRegistry()
	eng := New(Config{Options: opts, Workers: 1, Telemetry: &telemetry.Sink{Metrics: reg}})
	done := make(chan *Batch, 1)
	go func() { done <- eng.Run(ctx, units) }()

	<-entered
	cancel()
	close(release)
	var b *Batch
	select {
	case b = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled batch did not return")
	}

	// Unit 0 finished before the cancel: byte-identical to the reference.
	if b.Results[0].Err != nil {
		t.Fatalf("finished unit errored: %v", b.Results[0].Err)
	}
	if iloc.Print(b.Results[0].Result.Routine) != iloc.Print(clean.Results[0].Result.Routine) {
		t.Fatalf("%s: finished result differs from uncancelled run", units[0].Name)
	}

	// Unit 1 was mid-allocation: the allocator's own context check
	// aborted it with the cancellation error, not a degradation.
	if !errors.Is(b.Results[1].Err, context.Canceled) {
		t.Fatalf("in-flight unit error = %v, want context.Canceled", b.Results[1].Err)
	}

	// Units 2..n never started: they report ctx.Err() directly.
	for _, r := range b.Results[2:] {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("unstarted unit %s error = %v, want context.Canceled", r.Name, r.Err)
		}
		if r.Result != nil {
			t.Fatalf("unstarted unit %s has a result", r.Name)
		}
	}

	// Stats and telemetry must tell the same story: one success, the
	// rest failures, no degradations.
	wantFailed := len(units) - 1
	if b.Stats.Failed != wantFailed || b.Stats.Degraded != 0 || len(b.Stats.Degradations) != 0 {
		t.Fatalf("Stats = %+v, want Failed=%d Degraded=0", b.Stats, wantFailed)
	}
	for name, want := range map[string]int64{
		"driver.units":        int64(len(units)),
		"driver.failures":     int64(wantFailed),
		"driver.degradations": 0,
		"driver.batches":      1,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
}

// A batch run under an already-expired deadline still returns one
// result per unit: every unit either degraded with reason "deadline"
// (started units) or failed with the deadline error (unstarted units) —
// and nothing deadline-shaped may enter the shared result cache.
func TestDeadlineBatchDegradesAndSkipsCache(t *testing.T) {
	k := suite.ByName("sgemm")
	if k == nil {
		t.Fatal("kernel sgemm missing")
	}
	opts := core.Options{Machine: target.WithRegs(6), Mode: core.ModeRemat}
	cache := NewCache(0)
	eng := New(Config{Options: opts, Workers: 1, Cache: cache})

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	b := eng.Run(ctx, []Unit{{Name: "sgemm", Routine: k.Routine()}})
	r := b.Results[0]
	if r.Err != nil {
		t.Fatalf("deadline unit errored instead of degrading: %v", r.Err)
	}
	if !r.Result.Degraded || r.Result.DegradeReason != core.DegradeReasonDeadline {
		t.Fatalf("Degraded=%v reason=%q", r.Result.Degraded, r.Result.DegradeReason)
	}
	if got := cache.Stats().Entries; got != 0 {
		t.Fatalf("deadline-degraded result was cached (%d entries)", got)
	}

	// The same engine with a live context must now produce the real
	// allocation, not a cache hit of the degraded one.
	b2 := eng.Run(context.Background(), []Unit{{Name: "sgemm", Routine: k.Routine()}})
	r2 := b2.Results[0]
	if r2.Err != nil || r2.Result.Degraded || r2.CacheHit {
		t.Fatalf("post-deadline allocation: err=%v degraded=%v hit=%v", r2.Err, r2.Result.Degraded, r2.CacheHit)
	}
}
