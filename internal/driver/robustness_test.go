package driver

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/iloc"
	"repro/internal/suite"
	"repro/internal/target"
)

// TestBatchIsolatesSeededPanic is the fault-isolation acceptance test: a
// panic injected into one unit's pipeline degrades that unit only, and
// every other unit's output is byte-identical to a fault-free run.
func TestBatchIsolatesSeededPanic(t *testing.T) {
	units := testUnits(t)
	cfg := Config{Options: core.Options{Machine: target.Standard(), Mode: core.ModeRemat, Verify: true}, Workers: 4}

	clean := New(cfg).Run(context.Background(), units)
	if err := clean.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if clean.Stats.Degraded != 0 {
		t.Fatalf("fault-free run degraded %d unit(s): %v", clean.Stats.Degraded, clean.Stats.Degradations)
	}

	victim := units[2].Name
	core.PanicHook = func(routine, pass string) {
		if routine == victim && pass == "simplify" {
			panic("seeded batch fault")
		}
	}
	defer func() { core.PanicHook = nil }()

	faulty := New(cfg).Run(context.Background(), units)
	if err := faulty.FirstErr(); err != nil {
		t.Fatalf("seeded fault escaped degradation: %v", err)
	}
	if faulty.Stats.Degraded != 1 {
		t.Fatalf("Degraded = %d, want 1 (%v)", faulty.Stats.Degraded, faulty.Stats.Degradations)
	}
	if d := faulty.Stats.Degradations[0]; !strings.HasPrefix(d, victim+": ") || !strings.Contains(d, "seeded batch fault") {
		t.Fatalf("degradation record = %q", d)
	}
	for i := range units {
		got, want := faulty.Results[i], clean.Results[i]
		if units[i].Name == victim {
			if !got.Result.Degraded {
				t.Fatalf("%s: not marked degraded", victim)
			}
			continue
		}
		if got.Result.Degraded {
			t.Fatalf("%s: degraded by a fault in %s", units[i].Name, victim)
		}
		if iloc.Print(got.Result.Routine) != iloc.Print(want.Result.Routine) {
			t.Fatalf("%s: output differs from fault-free run", units[i].Name)
		}
	}
}

// TestBatchIsolatesNonConvergence: one unit carrying options that cannot
// converge (one iteration at K=2) degrades alone; the rest of the batch
// matches a fault-free run byte for byte.
func TestBatchIsolatesNonConvergence(t *testing.T) {
	units := testUnits(t)
	cfg := Config{Options: core.Options{Machine: target.Standard(), Mode: core.ModeRemat, Verify: true}, Workers: 4}

	clean := New(cfg).Run(context.Background(), units)
	if err := clean.FirstErr(); err != nil {
		t.Fatal(err)
	}

	victim := 1
	poisoned := &core.Options{Machine: target.WithRegs(3), Mode: core.ModeRemat, MaxIterations: 1, Verify: true}
	faultyUnits := append([]Unit(nil), units...)
	faultyUnits[victim].Options = poisoned

	faulty := New(cfg).Run(context.Background(), faultyUnits)
	if err := faulty.FirstErr(); err != nil {
		t.Fatalf("non-convergence escaped degradation: %v", err)
	}
	if faulty.Stats.Degraded != 1 {
		t.Fatalf("Degraded = %d, want 1 (%v)", faulty.Stats.Degraded, faulty.Stats.Degradations)
	}
	for i := range units {
		if i == victim {
			r := faulty.Results[i].Result
			if !r.Degraded || !strings.Contains(r.DegradeReason, "did not converge") {
				t.Fatalf("victim: Degraded=%v reason=%q", r.Degraded, r.DegradeReason)
			}
			continue
		}
		if iloc.Print(faulty.Results[i].Result.Routine) != iloc.Print(clean.Results[i].Result.Routine) {
			t.Fatalf("%s: output differs from fault-free run", units[i].Name)
		}
	}
}

// TestWorkerPanicContained: a panic raised outside core.Allocate's own
// containment — here the cache key hasher printing a routine with a
// corrupt opcode, which indexes past the op table — fails its unit with
// a structured error instead of killing the worker goroutine (which
// would take down the whole process).
func TestWorkerPanicContained(t *testing.T) {
	units := testUnits(t)
	corrupt := suite.ByName("fehl").Routine()
	corrupt.Blocks[0].Instrs[0].Op = iloc.Op(250) // past the op table: Print must panic
	units = append(units, Unit{Name: "corrupt", Routine: corrupt})

	cfg := Config{
		Options: core.Options{Machine: target.Standard(), Mode: core.ModeRemat},
		Workers: 2,
		Cache:   NewCache(0),
	}
	b := New(cfg).Run(context.Background(), units)
	var failed int
	for _, r := range b.Results {
		if r.Err == nil {
			continue
		}
		failed++
		if r.Name != "corrupt" {
			t.Fatalf("fault leaked to %s: %v", r.Name, r.Err)
		}
		var ae *core.AllocError
		if !errors.As(r.Err, &ae) {
			t.Fatalf("worker panic not wrapped in *core.AllocError: %v", r.Err)
		}
		if !strings.Contains(r.Err.Error(), "panic") {
			t.Fatalf("error hides the panic: %v", r.Err)
		}
	}
	if failed != 1 || b.Stats.Failed != 1 {
		t.Fatalf("failed = %d, Stats.Failed = %d, want 1", failed, b.Stats.Failed)
	}
}
