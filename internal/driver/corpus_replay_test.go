package driver

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/machines"
)

// TestCorpusReplayAcrossZoo is the driver-path acceptance test of the
// corpus engine: a generated corpus of over a thousand routines
// allocates across three zoo machines with the verifier on — zero
// errors, zero degradations — and per-machine results stay isolated in
// a shared cache because distinct machines never share a content key.
func TestCorpusReplayAcrossZoo(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus replay is the long acceptance path")
	}
	spec, err := corpus.ParseSpec("count=600,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	units, err := corpus.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	routines := corpus.Routines(units)
	if len(routines) < 1000 {
		t.Fatalf("corpus yields %d routines, want >= 1000", len(routines))
	}

	var work []Unit
	for _, rt := range routines {
		work = append(work, Unit{Name: rt.Name, Routine: rt})
	}

	zoo := []string{"standard", "x86-64", "embedded-8"}
	cache := NewCache(4 * len(routines))
	keys := map[Key]string{}
	for _, name := range zoo {
		m, err := machines.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		opts := core.Options{Machine: m, Mode: core.ModeRemat, Verify: true}

		// Cache keys for this machine must be fresh: no routine's key
		// under this machine may collide with any key under another.
		for _, rt := range routines {
			k := KeyFor(rt, opts)
			if prev, dup := keys[k]; dup {
				t.Fatalf("machine %s shares cache key %s with %s for %s", name, k, prev, rt.Name)
			}
			keys[k] = name
		}

		batch := Allocate(context.Background(), work, Config{Options: opts, Cache: cache})
		hits := 0
		for i, r := range batch.Results {
			if r.Err != nil {
				t.Fatalf("machine %s: %s: %v", name, work[i].Name, r.Err)
			}
			if r.Result.Degraded {
				t.Fatalf("machine %s: %s degraded: %s", name, work[i].Name, r.Result.DegradeReason)
			}
			if r.CacheHit {
				hits++
			}
		}
		if hits != 0 {
			t.Fatalf("machine %s: %d cache hits on its first pass — keys leak across machines", name, hits)
		}
	}

	// A second pass on one machine is pure cache traffic: same corpus,
	// same machine, every unit hits.
	m, _ := machines.Lookup(zoo[0])
	opts := core.Options{Machine: m, Mode: core.ModeRemat, Verify: true}
	batch := Allocate(context.Background(), work, Config{Options: opts, Cache: cache})
	for i, r := range batch.Results {
		if r.Err != nil {
			t.Fatalf("replay %s: %v", work[i].Name, r.Err)
		}
		if !r.CacheHit {
			t.Fatalf("replay %s: cache miss on identical corpus + machine", work[i].Name)
		}
	}
}
