package driver

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/target"
	"repro/internal/telemetry"
)

// TestBatchTraceCoversEveryUnit: a traced batch records one unit span
// per input routine (on a worker trace thread), a batch span, nested
// allocator pass spans, and worker thread-name metadata.
func TestBatchTraceCoversEveryUnit(t *testing.T) {
	units := testUnits(t)
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer()
	eng := New(Config{
		Options:   core.Options{Machine: target.WithRegs(6), Mode: core.ModeRemat},
		Workers:   3,
		Telemetry: &telemetry.Sink{Metrics: reg, Trace: tr},
	})
	b := eng.Run(context.Background(), units)
	if err := b.FirstErr(); err != nil {
		t.Fatal(err)
	}

	unitSpans := map[string]telemetry.Event{}
	var batches, passes, threadNames int
	for _, e := range tr.Events() {
		switch {
		case e.Cat == telemetry.CatUnit && e.Phase == telemetry.PhaseComplete:
			unitSpans[e.Name] = e
		case e.Cat == telemetry.CatDriver:
			batches++
		case e.Cat == telemetry.CatPass:
			passes++
		case e.Phase == telemetry.PhaseMetadata:
			threadNames++
		}
	}
	for _, u := range units {
		sp, ok := unitSpans[u.Name]
		if !ok {
			t.Fatalf("no unit span for %q", u.Name)
		}
		if sp.TID < 1 || sp.TID > 3 {
			t.Fatalf("unit %q on tid %d, want a worker tid in [1,3]", u.Name, sp.TID)
		}
	}
	if batches != 1 {
		t.Fatalf("batch spans = %d, want 1", batches)
	}
	if passes == 0 {
		t.Fatal("no allocator pass spans nested in the batch trace")
	}
	if threadNames != 3 {
		t.Fatalf("thread-name metadata events = %d, want 3", threadNames)
	}

	// Metrics side: unit counter, queue instrumentation.
	if got := reg.Counter("driver.units").Value(); got != int64(len(units)) {
		t.Fatalf("driver.units = %d, want %d", got, len(units))
	}
	if got := reg.Histogram("driver.queue.wait").Snapshot().Count; got != int64(len(units)) {
		t.Fatalf("driver.queue.wait count = %d, want %d", got, len(units))
	}
	if got := reg.Gauge("driver.queue.depth").Value(); got != 0 {
		t.Fatalf("driver.queue.depth = %d after batch, want 0", got)
	}
	if got := reg.Counter("core.allocations").Value(); got != int64(len(units)) {
		t.Fatalf("core.allocations = %d, want %d", got, len(units))
	}
}

// TestCacheTelemetry: warm-cache batches record hit instants and hit
// counters; the unit spans carry cache_hit args.
func TestCacheTelemetry(t *testing.T) {
	units := testUnits(t)
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer()
	eng := New(Config{
		Options:   core.Options{Machine: target.WithRegs(6), Mode: core.ModeRemat},
		Workers:   2,
		Cache:     NewCache(0),
		Telemetry: &telemetry.Sink{Metrics: reg, Trace: tr},
	})
	if err := eng.Run(context.Background(), units).FirstErr(); err != nil {
		t.Fatal(err)
	}
	warm := eng.Run(context.Background(), units)
	if err := warm.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if warm.Stats.CacheHits != len(units) {
		t.Fatalf("warm run hits = %d, want %d", warm.Stats.CacheHits, len(units))
	}
	if got := reg.Counter("driver.cache.hits").Value(); got != int64(len(units)) {
		t.Fatalf("driver.cache.hits = %d, want %d", got, len(units))
	}
	if got := reg.Counter("driver.cache.misses").Value(); got != int64(len(units)) {
		t.Fatalf("driver.cache.misses = %d, want %d", got, len(units))
	}
	var hitInstants, hitArgs int
	for _, e := range tr.Events() {
		if e.Cat == telemetry.CatCache && e.Name == "hit" {
			hitInstants++
		}
		if e.Cat == telemetry.CatUnit {
			for _, a := range e.Args {
				if a.Key == "cache_hit" && a.Val == 1 {
					hitArgs++
				}
			}
		}
	}
	if hitInstants != len(units) {
		t.Fatalf("cache hit instants = %d, want %d", hitInstants, len(units))
	}
	if hitArgs != len(units) {
		t.Fatalf("unit spans with cache_hit arg = %d, want %d", hitArgs, len(units))
	}

	// Telemetry must not split cache keys: an engine with a different
	// sink (or none) sharing the cache still hits.
	eng2 := New(Config{
		Options: core.Options{Machine: target.WithRegs(6), Mode: core.ModeRemat},
		Cache:   eng.Cache(),
	})
	b2 := eng2.Run(context.Background(), units)
	if err := b2.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if b2.Stats.CacheHits != len(units) {
		t.Fatalf("sink-less engine hits = %d, want %d (telemetry leaked into the cache key)",
			b2.Stats.CacheHits, len(units))
	}
}
