package driver

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/iloc"
)

// The result cache is content-addressed: a finished allocation is stored
// under the hash of the routine's canonical printed form plus a
// canonicalized rendering of the options that produced it. Two parses of
// the same source, or two Options values that differ only in
// presentation (a machine's Name, an explicit MaxIterations equal to the
// default), therefore share one entry, while anything that can change
// the allocator's output — the strategy spec, register counts, mode,
// splitting scheme, spill metric, the ablation switches — separates
// keys. The strategy contributes its canonical Spec, so two spellings
// of one parameterized strategy share an entry while two strategies
// never do.

// Key identifies one (routine, options) allocation in the cache.
type Key string

// KeyFor computes the content address of allocating rt under opts. The
// routine contributes its canonical printed form (iloc.Print output
// round-trips, so formatting of the original source is irrelevant); the
// options contribute their semantic fields after defaulting, with the
// machine identified by its register file and cost model rather than its
// display name.
func KeyFor(rt *iloc.Routine, opts core.Options) Key {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s", optionsKey(opts), iloc.Print(rt))
	return Key(hex.EncodeToString(h.Sum(nil)))
}

// CanonicalOptionsKey renders the semantic content of opts
// deterministically — the options half of the cache key. The disk
// store records it inside each entry so `ralloc-bundle inspect` can
// say what configuration produced an allocation.
func CanonicalOptionsKey(opts core.Options) string { return optionsKey(opts) }

// optionsKey renders the semantic content of opts deterministically.
func optionsKey(opts core.Options) string {
	o := opts.Canonical()
	m := o.Machine
	return fmt.Sprintf("strategy=%s mode=%d regs=%d,%d callersave=%d mem=%d other=%d nocoalesce=%t nobias=%t nolookahead=%t split=%d metric=%d maxiter=%d verify=%t nodegrade=%t",
		o.Strategy, o.Mode, m.Regs[0], m.Regs[1], m.CallerSave, m.MemCycles, m.OtherCycles,
		o.DisableConservativeCoalescing, o.DisableBiasedColoring, o.DisableLookahead,
		o.Split, o.Metric, o.MaxIterations, o.Verify, o.DisableDegradation)
}

// ResultCache is what the engine needs from a cache: the in-memory
// LRU below implements it, as does the tiered persistent store
// (internal/store). Implementations must be safe for concurrent use
// and must return results the caller may mutate freely.
type ResultCache interface {
	Get(Key) (*core.Result, bool)
	Put(Key, *core.Result)
}

// TierGetter is optionally implemented by tiered caches: GetTier
// additionally reports which tier satisfied the lookup ("l1", "l2"),
// which the engine records in UnitResult.CacheTier.
type TierGetter interface {
	GetTier(Key) (*core.Result, string, bool)
}

// OptionsPutter is optionally implemented by caches that persist
// entries: PutOptions carries the canonical options key alongside the
// result so the stored entry can describe its own configuration.
type OptionsPutter interface {
	PutOptions(Key, *core.Result, string)
}

// CacheStats is a point-in-time snapshot of a cache's counters.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is a bounded, concurrency-safe, content-addressed store of
// finished allocations with LRU eviction. Stored results are snapshots:
// Get returns a fresh copy whose Routine the caller may mutate freely.
type Cache struct {
	mu        sync.Mutex
	capacity  int        // max entries; 0 means unbounded
	order     *list.List // front = most recently used; values are *cacheEntry
	entries   map[Key]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key Key
	res *core.Result
}

// NewCache returns a cache holding at most capacity entries (0 =
// unbounded).
func NewCache(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[Key]*list.Element),
	}
}

// Get looks the key up, counting a hit or miss. The returned Result is
// an independent snapshot (cloned routine, copied iteration records).
func (c *Cache) Get(key Key) (*core.Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return snapshotResult(el.Value.(*cacheEntry).res), true
}

// Put stores an independent snapshot of res under key, evicting the
// least recently used entry if the cache is full.
func (c *Cache) Put(key Key, res *core.Result) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = snapshotResult(res)
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: snapshotResult(res)})
	if c.capacity > 0 && c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Len returns the number of cached allocations.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: c.order.Len()}
}

// snapshotResult copies a Result deeply enough that the caller and the
// cache cannot observe each other's mutations: the routine is cloned and
// the iteration records copied (their contents are never mutated after
// Allocate returns).
func snapshotResult(res *core.Result) *core.Result {
	c := *res
	c.Routine = res.Routine.Clone()
	c.Iterations = append([]core.IterationStats(nil), res.Iterations...)
	return &c
}
