package driver

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/iloc"
	"repro/internal/suite"
	"repro/internal/target"
)

// testKernels is a small pressure-heavy slice of the suite, enough to
// exercise spilling and rematerialization without allocating all 32
// kernels per test.
var testKernels = []string{"fehl", "decomp", "bilan", "inithx", "sgemm", "tomcatv"}

func testUnits(t *testing.T) []Unit {
	t.Helper()
	var units []Unit
	for _, name := range testKernels {
		k := suite.ByName(name)
		if k == nil {
			t.Fatalf("kernel %s missing", name)
		}
		units = append(units, Unit{Name: name, Routine: k.Routine()})
	}
	return units
}

// fingerprint reduces a Result to its deterministic content: the printed
// allocated code and every non-timing statistic.
type fingerprint struct {
	Code          string
	SpilledRanges int
	RematSpills   int
	FrameWords    int
	Iterations    []iterFP
}

type iterFP struct {
	Spilled   [iloc.NumClasses]int
	Remat     [iloc.NumClasses]int
	Coalesced int
	Splits    int
	Passes    []string
}

func fingerprintOf(res *core.Result) fingerprint {
	fp := fingerprint{
		Code:          iloc.Print(res.Routine),
		SpilledRanges: res.SpilledRanges,
		RematSpills:   res.RematSpills,
		FrameWords:    res.Routine.FrameWords,
	}
	for _, it := range res.Iterations {
		ifp := iterFP{Spilled: it.Spilled, Remat: it.Remat, Coalesced: it.Coalesced, Splits: it.Splits}
		for _, ps := range it.Passes {
			ifp.Passes = append(ifp.Passes, ps.Name)
		}
		fp.Iterations = append(fp.Iterations, ifp)
	}
	return fp
}

// TestBatchOrderAndWorkerSweep checks the engine's central promise:
// results come back in input order with byte-identical content no
// matter how many workers run the batch.
func TestBatchOrderAndWorkerSweep(t *testing.T) {
	opts := core.Options{Machine: target.WithRegs(6), Mode: core.ModeRemat}
	units := testUnits(t)

	ref := New(Config{Options: opts, Workers: 1}).Run(context.Background(), units)
	if err := ref.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if len(ref.Results) != len(units) {
		t.Fatalf("results = %d, want %d", len(ref.Results), len(units))
	}
	for i, r := range ref.Results {
		if r.Name != units[i].Name {
			t.Fatalf("result %d is %s, want %s (order lost)", i, r.Name, units[i].Name)
		}
	}

	for _, workers := range []int{2, 4, 8} {
		got := New(Config{Options: opts, Workers: workers}).Run(context.Background(), units)
		if err := got.FirstErr(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range units {
			want := fingerprintOf(ref.Results[i].Result)
			have := fingerprintOf(got.Results[i].Result)
			if !reflect.DeepEqual(want, have) {
				t.Fatalf("workers=%d: %s differs from sequential run:\nseq: %+v\npar: %+v",
					workers, units[i].Name, want, have)
			}
		}
		if got.Stats.Workers != workers && got.Stats.Workers != len(units) {
			t.Fatalf("workers=%d: stats report %d workers", workers, got.Stats.Workers)
		}
	}
}

// TestSameRoutineTwiceDeterministic allocates one routine twice —
// sequentially and concurrently — and demands byte-identical iloc.Print
// output and identical Result statistics.
func TestSameRoutineTwiceDeterministic(t *testing.T) {
	k := suite.ByName("tomcatv")
	opts := core.Options{Machine: target.WithRegs(6), Mode: core.ModeRemat}
	units := []Unit{
		{Name: "tomcatv/a", Routine: k.Routine()},
		{Name: "tomcatv/b", Routine: k.Routine()},
	}
	for _, workers := range []int{1, 2} {
		b := New(Config{Options: opts, Workers: workers}).Run(context.Background(), units)
		if err := b.FirstErr(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		a := fingerprintOf(b.Results[0].Result)
		bb := fingerprintOf(b.Results[1].Result)
		if a.Code != bb.Code {
			t.Fatalf("workers=%d: same routine allocated differently:\n%s\n---\n%s", workers, a.Code, bb.Code)
		}
		if !reflect.DeepEqual(a, bb) {
			t.Fatalf("workers=%d: result stats differ: %+v vs %+v", workers, a, bb)
		}
	}
}

// TestSharedInputRoutine allocates the same *iloc.Routine pointer from
// many workers at once — core.Allocate documents this as safe (the
// input is only read).
func TestSharedInputRoutine(t *testing.T) {
	rt := suite.ByName("sgemm").Routine()
	units := make([]Unit, 8)
	for i := range units {
		units[i] = Unit{Name: "sgemm", Routine: rt}
	}
	b := New(Config{Options: core.Options{Machine: target.WithRegs(6)}, Workers: 8}).Run(context.Background(), units)
	if err := b.FirstErr(); err != nil {
		t.Fatal(err)
	}
	want := iloc.Print(b.Results[0].Result.Routine)
	for i, r := range b.Results {
		if got := iloc.Print(r.Result.Routine); got != want {
			t.Fatalf("copy %d differs", i)
		}
	}
}

// TestPerUnitOptionsOverride mixes machines within one batch, as the
// experiment drivers do.
func TestPerUnitOptionsOverride(t *testing.T) {
	k := suite.ByName("fehl")
	small := core.Options{Machine: target.WithRegs(6), Mode: core.ModeRemat}
	huge := core.Options{Machine: target.Huge(), Mode: core.ModeRemat}
	b := New(Config{Options: small}).Run(context.Background(), []Unit{
		{Name: "small", Routine: k.Routine()},
		{Name: "huge", Routine: k.Routine(), Options: &huge},
	})
	if err := b.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if got := b.Results[0].Result.Routine.NextReg[0]; got != 6 {
		t.Fatalf("small machine result has NextReg %d, want 6", got)
	}
	if got := b.Results[1].Result.Routine.NextReg[0]; got != 128 {
		t.Fatalf("huge machine result has NextReg %d, want 128", got)
	}
	if b.Results[1].Result.SpilledRanges != 0 {
		t.Fatal("128-register machine should not spill")
	}
}

// TestUnitErrorsDoNotStopBatch checks error isolation: a broken unit
// reports its own error while the rest of the batch completes.
func TestUnitErrorsDoNotStopBatch(t *testing.T) {
	k := suite.ByName("fehl")
	bad := core.Options{Machine: &target.Machine{Name: "broken", Regs: [iloc.NumClasses]int{1, 1}, MemCycles: 2, OtherCycles: 1}}
	b := New(Config{Options: core.Options{Machine: target.WithRegs(6)}, Workers: 2}).Run(context.Background(), []Unit{
		{Name: "ok", Routine: k.Routine()},
		{Name: "bad-machine", Routine: k.Routine(), Options: &bad},
		{Name: "no-routine"},
	})
	if b.Results[0].Err != nil || b.Results[0].Result == nil {
		t.Fatalf("healthy unit failed: %v", b.Results[0].Err)
	}
	if b.Results[1].Err == nil {
		t.Fatal("invalid machine not reported")
	}
	if b.Results[2].Err == nil {
		t.Fatal("missing routine not reported")
	}
	if b.Stats.Failed != 2 {
		t.Fatalf("Failed = %d, want 2", b.Stats.Failed)
	}
	if err := b.FirstErr(); err == nil {
		t.Fatal("FirstErr lost the failure")
	}
}

// TestStatsAccounting checks the batch bookkeeping: every unit is
// attributed to exactly one worker and CPU sums the per-unit walls.
func TestStatsAccounting(t *testing.T) {
	b := New(Config{Options: core.Options{Machine: target.WithRegs(6)}, Workers: 3}).Run(context.Background(), testUnits(t))
	if err := b.FirstErr(); err != nil {
		t.Fatal(err)
	}
	st := b.Stats
	if st.Routines != len(testKernels) || st.Failed != 0 {
		t.Fatalf("stats: %+v", st)
	}
	var units int
	var busy time.Duration
	for _, w := range st.PerWorker {
		units += w.Units
		busy += w.Busy
	}
	if units != st.Routines {
		t.Fatalf("per-worker units sum to %d, want %d", units, st.Routines)
	}
	if busy != st.CPU {
		t.Fatalf("per-worker busy %v != CPU %v", busy, st.CPU)
	}
	if st.Wall <= 0 || st.CPU <= 0 {
		t.Fatalf("timing not recorded: %+v", st)
	}
	if st.Format() == "" {
		t.Fatal("empty stats format")
	}
}

// TestFullSuiteDeterminism is the acceptance check: the driver over the
// complete suite at -j NumCPU produces byte-identical output to -j 1.
func TestFullSuiteDeterminism(t *testing.T) {
	opts := core.Options{Machine: target.WithRegs(6), Mode: core.ModeRemat}
	var units []Unit
	for _, k := range suite.All() {
		units = append(units, Unit{Name: k.Name, Routine: k.Routine()})
		for i, crt := range k.CalleeRoutines() {
			units = append(units, Unit{Name: fmt.Sprintf("%s/callee%d", k.Name, i), Routine: crt})
		}
	}
	seq := New(Config{Options: opts, Workers: 1}).Run(context.Background(), units)
	par := New(Config{Options: opts, Workers: runtime.NumCPU()}).Run(context.Background(), units)
	if err := seq.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if err := par.FirstErr(); err != nil {
		t.Fatal(err)
	}
	for i := range units {
		if iloc.Print(seq.Results[i].Result.Routine) != iloc.Print(par.Results[i].Result.Routine) {
			t.Fatalf("%s: parallel output differs from sequential", units[i].Name)
		}
	}
}
