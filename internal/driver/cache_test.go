package driver

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/iloc"
	"repro/internal/suite"
	"repro/internal/target"
)

// TestKeyCanonicalization: semantically equal options produce one key;
// anything that changes the allocation separates keys.
func TestKeyCanonicalization(t *testing.T) {
	rt := suite.ByName("fehl").Routine()

	// Same options, different presentation: defaulted vs explicit
	// machine, preset vs WithRegs, named vs renamed machine, zero vs
	// explicit default iteration bound.
	renamed := target.Standard().Clone()
	renamed.Name = "something-else"
	same := []core.Options{
		{},
		{Machine: target.Standard()},
		{Machine: target.WithRegs(16)},
		{Machine: renamed},
		{Machine: target.Standard(), MaxIterations: 32},
	}
	base := KeyFor(rt, same[0])
	for i, o := range same[1:] {
		if k := KeyFor(rt, o); k != base {
			t.Fatalf("equivalent options %d produced a different key", i+1)
		}
	}

	// Different semantics: register count, mode, split scheme, metric,
	// ablation switches, iteration bound.
	different := []core.Options{
		{Machine: target.WithRegs(8)},
		{Mode: core.ModeRemat},
		{Split: core.SplitAllLoops},
		{Metric: core.MetricCost},
		{DisableBiasedColoring: true},
		{DisableConservativeCoalescing: true},
		{DisableLookahead: true},
		{MaxIterations: 5},
	}
	seen := map[Key]int{base: -1}
	for i, o := range different {
		k := KeyFor(rt, o)
		if prev, dup := seen[k]; dup {
			t.Fatalf("options %d and %d collide", prev, i)
		}
		seen[k] = i
	}

	// Different routines separate; a reparse of the same source does not.
	if KeyFor(suite.ByName("sgemm").Routine(), core.Options{}) == base {
		t.Fatal("different routines share a key")
	}
	if KeyFor(suite.ByName("fehl").Routine(), core.Options{}) != base {
		t.Fatal("reparsed identical routine changed the key")
	}
}

// TestCacheCounters drives one engine over a duplicated batch and checks
// the hit/miss arithmetic end to end.
func TestCacheCounters(t *testing.T) {
	cache := NewCache(0)
	eng := New(Config{Options: core.Options{Machine: target.WithRegs(6)}, Workers: 2, Cache: cache})
	k := suite.ByName("fehl")
	units := []Unit{
		{Name: "a", Routine: k.Routine()},
		{Name: "b", Routine: k.Routine()}, // identical content
	}

	cold := eng.Run(context.Background(), units)
	if err := cold.FirstErr(); err != nil {
		t.Fatal(err)
	}
	// Identical units racing may both miss (the cache is filled after
	// allocation), but at least one allocation really ran.
	st := cache.Stats()
	if st.Misses < 1 || st.Misses > 2 || st.Entries != 1 {
		t.Fatalf("cold stats: %+v", st)
	}

	warm := eng.Run(context.Background(), units)
	if err := warm.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if warm.Stats.CacheHits != 2 || warm.Stats.CacheMisses != 0 {
		t.Fatalf("warm run: %d hits, %d misses", warm.Stats.CacheHits, warm.Stats.CacheMisses)
	}
	for _, r := range warm.Results {
		if !r.CacheHit {
			t.Fatalf("%s: expected a cache hit", r.Name)
		}
	}
	if got := cache.Stats(); got.Hits != st.Hits+2 {
		t.Fatalf("cache hits = %d, want %d", got.Hits, st.Hits+2)
	}
}

// TestCacheHitSemanticallyIdentical is the property test: a cache hit
// must be indistinguishable from a fresh allocation — byte-identical
// code, identical stats, and the same validated execution on a suite
// kernel under the interpreter.
func TestCacheHitSemanticallyIdentical(t *testing.T) {
	for _, name := range []string{"fehl", "sgemm"} {
		k := suite.ByName(name)
		opts := core.Options{Machine: target.WithRegs(6), Mode: core.ModeRemat}

		fresh, err := core.Allocate(context.Background(), k.Routine(), opts)
		if err != nil {
			t.Fatal(err)
		}

		eng := New(Config{Options: opts, Cache: NewCache(0)})
		miss := eng.Run(context.Background(), []Unit{{Name: name, Routine: k.Routine()}})
		hit := eng.Run(context.Background(), []Unit{{Name: name, Routine: k.Routine()}})
		if err := miss.FirstErr(); err != nil {
			t.Fatal(err)
		}
		if err := hit.FirstErr(); err != nil {
			t.Fatal(err)
		}
		if miss.Results[0].CacheHit || !hit.Results[0].CacheHit {
			t.Fatalf("%s: hit/miss flags wrong", name)
		}
		cached := hit.Results[0].Result
		if !reflect.DeepEqual(fingerprintOf(fresh), fingerprintOf(cached)) {
			t.Fatalf("%s: cached result differs from fresh allocation", name)
		}

		// Both must execute and pass the kernel's semantic check, with
		// identical dynamic behaviour.
		outFresh, err := k.Execute(fresh.Routine)
		if err != nil {
			t.Fatalf("%s fresh: %v", name, err)
		}
		outCached, err := k.Execute(cached.Routine)
		if err != nil {
			t.Fatalf("%s cached: %v", name, err)
		}
		if !reflect.DeepEqual(outFresh.Counts, outCached.Counts) || outFresh.Steps != outCached.Steps {
			t.Fatalf("%s: dynamic behaviour differs (steps %d vs %d)", name, outFresh.Steps, outCached.Steps)
		}
	}
}

// TestCacheSnapshotIsolation: mutating a returned routine must not
// corrupt the cached copy.
func TestCacheSnapshotIsolation(t *testing.T) {
	k := suite.ByName("fehl")
	eng := New(Config{Options: core.Options{Machine: target.WithRegs(6)}, Cache: NewCache(0)})
	first := eng.Run(context.Background(), []Unit{{Name: "fehl", Routine: k.Routine()}}).Results[0].Result
	want := iloc.Print(first.Routine)

	// Vandalize the returned clone.
	first.Routine.Blocks[0].Instrs = nil
	first.Routine.Name = "clobbered"

	second := eng.Run(context.Background(), []Unit{{Name: "fehl", Routine: k.Routine()}}).Results[0]
	if !second.CacheHit {
		t.Fatal("expected a hit")
	}
	if got := iloc.Print(second.Result.Routine); got != want {
		t.Fatalf("cached entry was corrupted by caller mutation:\n%s", got)
	}
}

// TestCacheEviction: the cache is bounded and evicts least recently
// used.
func TestCacheEviction(t *testing.T) {
	cache := NewCache(2)
	k := suite.ByName("fehl").Routine()
	keys := []Key{
		KeyFor(k, core.Options{Machine: target.WithRegs(6)}),
		KeyFor(k, core.Options{Machine: target.WithRegs(8)}),
		KeyFor(k, core.Options{Machine: target.WithRegs(10)}),
	}
	res, err := core.Allocate(context.Background(), k, core.Options{Machine: target.WithRegs(6)})
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(keys[0], res)
	cache.Put(keys[1], res)
	if _, ok := cache.Get(keys[0]); !ok { // refresh 0; 1 becomes LRU
		t.Fatal("entry 0 missing before eviction")
	}
	cache.Put(keys[2], res)

	st := cache.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats after eviction: %+v", st)
	}
	if _, ok := cache.Get(keys[1]); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := cache.Get(keys[0]); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := cache.Get(keys[2]); !ok {
		t.Fatal("newest entry was evicted")
	}
	if rate := cache.Stats().HitRate(); rate <= 0 || rate >= 1 {
		t.Fatalf("hit rate = %v", rate)
	}
}

// TestNilCacheIsInert: a nil *Cache behaves as "no caching" everywhere.
func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	if _, ok := c.Get("x"); ok {
		t.Fatal("nil cache returned a value")
	}
	c.Put("x", &core.Result{})
	if c.Len() != 0 || c.Stats() != (CacheStats{}) {
		t.Fatal("nil cache not inert")
	}
}

// TestKeyStrategySeparation: the cache key separates every registered
// strategy for identical input, ties the Mode-based spelling to its
// strategy name, and collapses equivalent parameter spellings.
func TestKeyStrategySeparation(t *testing.T) {
	rt := suite.ByName("fehl").Routine()

	seen := map[Key]string{}
	for _, s := range core.Strategies() {
		k := KeyFor(rt, core.Options{Strategy: s.Name()})
		if prev, dup := seen[k]; dup {
			t.Fatalf("strategies %q and %q share a cache key", prev, s.Name())
		}
		seen[k] = s.Name()
	}

	// Mode-based options and the equivalent strategy name are one entry.
	if KeyFor(rt, core.Options{Mode: core.ModeRemat}) != KeyFor(rt, core.Options{Strategy: "remat"}) {
		t.Fatal("Mode-based and strategy-named options diverged")
	}
	if KeyFor(rt, core.Options{Mode: core.ModeChaitin}) != KeyFor(rt, core.Options{Strategy: "chaitin"}) {
		t.Fatal("chaitin Mode and strategy diverged")
	}

	// Parameter spellings of one configuration collapse; a parameterized
	// strategy separates from its base and matches the loose-field form.
	a := KeyFor(rt, core.Options{Strategy: "remat:split=all-loops,no-bias"})
	b := KeyFor(rt, core.Options{Strategy: "remat:no-bias,split=all-loops"})
	if a != b {
		t.Fatal("parameter order changed the cache key")
	}
	if a == KeyFor(rt, core.Options{Strategy: "remat"}) {
		t.Fatal("parameterized strategy shares the base strategy's key")
	}
	if a != KeyFor(rt, core.Options{Mode: core.ModeRemat, Split: core.SplitAllLoops, DisableBiasedColoring: true}) {
		t.Fatal("strategy parameters and loose option fields diverged")
	}
}
