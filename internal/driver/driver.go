// Package driver is the module-level batch-allocation engine: it takes a
// set of parsed routines (a "module"), shards them across a bounded
// worker pool, allocates each with core.Allocate, and returns the
// results in input order regardless of completion order. Register
// allocation is embarrassingly parallel — core.Allocate holds no
// cross-routine state and is safe for concurrent use — so the engine's
// job is scheduling, determinism, and bookkeeping, not synchronization
// of the allocator itself.
//
// An optional content-addressed result cache (see cache.go) makes
// repeated allocation of identical kernels free: results are keyed by
// the hash of the routine's canonical text plus the canonicalized
// options, so iterated experiments and suites with duplicated kernels
// pay for each distinct allocation once.
package driver

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/iloc"
	"repro/internal/telemetry"
)

// Unit is one routine of a batch. Options, when non-nil, override the
// engine's default options for this unit (the experiment drivers mix
// machines and modes within one batch).
type Unit struct {
	// Name labels the unit in results and error messages (a file name, a
	// kernel name); it does not contribute to the cache key.
	Name    string
	Routine *iloc.Routine
	Options *core.Options
}

// Config configures an Engine.
type Config struct {
	// Options is the default allocation configuration for units that do
	// not carry their own.
	Options core.Options
	// Workers bounds the worker pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Cache, when non-nil, is consulted before and filled after each
	// allocation. Sharing one cache across engines and runs is safe. A
	// plain *Cache gives the in-memory LRU; a *store.Tiered adds the
	// persistent disk tier behind it.
	Cache ResultCache
	// Telemetry, when non-nil, receives driver.* metrics (unit/failure/
	// degradation counters, cache traffic, a queue-depth gauge and a
	// queue-wait histogram) and trace events: one span per batch, one
	// span per unit on its worker's trace thread, and a cache hit/miss
	// instant per lookup. Each pool worker gets tid w+1 (tid 0 stays
	// the caller's), and the sink is threaded into every unit's
	// core.Options so allocator pass spans nest under the unit span.
	Telemetry *telemetry.Sink
	// OnUnitDone, when non-nil, is called from the worker goroutine the
	// moment unit i's result is recorded — before the batch as a whole
	// finishes. This is how the async job API streams partial progress
	// and how per-verdict audit records are emitted without waiting for
	// the slowest unit. Calls arrive concurrently from different
	// workers (each index exactly once); the callback must be safe for
	// concurrent use and should return quickly — it runs on the
	// allocation worker.
	OnUnitDone func(i int, r UnitResult)
}

// UnitResult is the outcome of one unit. Exactly one of Result and Err
// is set.
type UnitResult struct {
	Name     string
	Result   *core.Result
	Err      error
	CacheHit bool
	// CacheTier says which tier satisfied a hit ("l1" memory, "l2"
	// disk) when the cache reports tiers; empty otherwise.
	CacheTier string
	// Worker is the index of the pool worker that handled the unit, and
	// Wall how long it spent on it (lookup + allocation).
	Worker int
	Wall   time.Duration
}

// WorkerStats describes one pool worker's share of a batch.
type WorkerStats struct {
	Units int
	Busy  time.Duration
}

// Utilization returns the fraction of the batch's wall time the worker
// spent allocating.
func (w WorkerStats) Utilization(wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(w.Busy) / float64(wall)
}

// Stats summarizes one batch run.
type Stats struct {
	// Routines is the number of units processed and Failed how many
	// returned an error.
	Routines int
	Failed   int
	// Degraded counts units whose allocation fell back to
	// spill-everywhere; Degradations records each as "name: reason" in
	// input order.
	Degraded     int
	Degradations []string
	// CacheHits and CacheMisses count this run's lookups (the cache's own
	// counters aggregate across runs and engines). CacheDiskHits is the
	// subset of CacheHits served by a tiered cache's disk tier — the
	// restart-survival path.
	CacheHits     int
	CacheMisses   int
	CacheDiskHits int
	// Wall is the batch's elapsed time; CPU sums the per-unit times
	// across workers (CPU > Wall means parallelism paid off).
	Wall time.Duration
	CPU  time.Duration
	// Workers is the pool size used; PerWorker has one entry per worker.
	Workers   int
	PerWorker []WorkerStats
}

// Speedup estimates the parallel speedup achieved: total work time over
// elapsed time.
func (s Stats) Speedup() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.CPU) / float64(s.Wall)
}

// Format renders the stats as the one-paragraph summary cmd/ralloc
// prints under -stats.
func (s Stats) Format() string {
	out := fmt.Sprintf("driver: %d routine(s), %d failed, %d worker(s), wall %v, cpu %v (%.2fx)",
		s.Routines, s.Failed, s.Workers, s.Wall.Round(time.Microsecond), s.CPU.Round(time.Microsecond), s.Speedup())
	if s.Degraded > 0 {
		out += fmt.Sprintf("\ndriver: %d degraded to spill-everywhere", s.Degraded)
		for _, d := range s.Degradations {
			out += "\ndriver:   " + d
		}
	}
	if s.CacheHits+s.CacheMisses > 0 {
		out += fmt.Sprintf("\ndriver: cache %d hit(s), %d miss(es)", s.CacheHits, s.CacheMisses)
		if s.CacheDiskHits > 0 {
			out += fmt.Sprintf(" (%d from disk)", s.CacheDiskHits)
		}
	}
	for i, w := range s.PerWorker {
		out += fmt.Sprintf("\ndriver: worker %d: %d unit(s), busy %v (%.0f%%)",
			i, w.Units, w.Busy.Round(time.Microsecond), 100*w.Utilization(s.Wall))
	}
	return out + "\n"
}

// Batch is the outcome of Engine.Run: one UnitResult per input unit, in
// input order.
type Batch struct {
	Results []UnitResult
	Stats   Stats
}

// FirstErr returns the first failed unit's error (in input order)
// wrapped with its name, or nil.
func (b *Batch) FirstErr() error {
	for _, r := range b.Results {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.Name, r.Err)
		}
	}
	return nil
}

// Engine is a reusable batch allocator. The zero value is not useful;
// construct with New. An Engine is safe for sequential reuse; each Run
// builds its own pool.
type Engine struct {
	cfg Config
}

// New returns an engine with the given configuration.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg}
}

// Cache returns the engine's cache (nil when caching is off).
func (e *Engine) Cache() ResultCache { return e.cfg.Cache }

// Run allocates every unit of the batch. Results are in input order; a
// unit's failure is recorded in its UnitResult and does not stop the
// others. Determinism: core.Allocate is deterministic, so the set of
// results is independent of the worker count and completion order —
// only the Stats timing fields vary between runs.
//
// The context bounds the whole batch. Units already being allocated
// when it ends are aborted by the allocator's own context checks
// (degrading with reason "deadline" on expiry, erroring on
// cancellation); units not yet started fail immediately with ctx.Err().
// Results of units that finished before the context ended are kept
// unchanged, so a cancelled batch still returns every byte of work it
// completed.
func (e *Engine) Run(ctx context.Context, units []Unit) *Batch {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := e.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}
	if workers < 1 {
		workers = 1
	}

	b := &Batch{
		Results: make([]UnitResult, len(units)),
		Stats:   Stats{Routines: len(units), Workers: workers, PerWorker: make([]WorkerStats, workers)},
	}
	tel := e.cfg.Telemetry
	if tel != nil && tel.Trace != nil {
		for w := 0; w < workers; w++ {
			tel.Trace.SetThreadName(int64(w+1), fmt.Sprintf("worker %d", w))
		}
	}
	batchSpan := tel.StartSpan(telemetry.CatDriver, "batch")
	// Queue depth counts submitted-but-not-picked-up units; queue wait
	// is the latency from batch start to a unit's pickup by a worker.
	depth := tel.Gauge("driver.queue.depth")
	depth.Set(int64(len(units)))
	start := time.Now()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			wsink := tel.WithTID(int64(worker + 1))
			for i := range jobs {
				depth.Add(-1)
				if cerr := ctx.Err(); errors.Is(cerr, context.Canceled) {
					// The batch was abandoned before this unit started:
					// report the cancellation without touching the
					// allocator or the cache. An expired *deadline* is
					// not a skip — the unit still runs so the allocator
					// can return its spill-everywhere degradation.
					b.Results[i] = UnitResult{Name: units[i].Name, Err: cerr, Worker: worker}
					if e.cfg.OnUnitDone != nil {
						e.cfg.OnUnitDone(i, b.Results[i])
					}
					continue
				}
				wsink.Observe("driver.queue.wait", time.Since(start).Nanoseconds())
				sp := wsink.StartSpan(telemetry.CatUnit, units[i].Name)
				res, hit, tier, err := e.allocate(ctx, units[i], wsink)
				if sp.Active() {
					if hit {
						sp.Arg("cache_hit", 1)
					}
					if err != nil {
						sp.Arg("failed", 1)
					}
					if res != nil && res.Degraded {
						sp.Arg("degraded", 1)
					}
				}
				wall := sp.End()
				wsink.Observe("driver.unit.wall", wall.Nanoseconds())
				b.Results[i] = UnitResult{
					Name:      units[i].Name,
					Result:    res,
					Err:       err,
					CacheHit:  hit,
					CacheTier: tier,
					Worker:    worker,
					Wall:      wall,
				}
				if e.cfg.OnUnitDone != nil {
					e.cfg.OnUnitDone(i, b.Results[i])
				}
			}
		}(w)
	}
	for i := range units {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	b.Stats.Wall = time.Since(start)

	for _, r := range b.Results {
		b.Stats.CPU += r.Wall
		b.Stats.PerWorker[r.Worker].Units++
		b.Stats.PerWorker[r.Worker].Busy += r.Wall
		if r.Err != nil {
			b.Stats.Failed++
		} else if e.cfg.Cache != nil {
			if r.CacheHit {
				b.Stats.CacheHits++
				if r.CacheTier == "l2" {
					b.Stats.CacheDiskHits++
				}
			} else {
				b.Stats.CacheMisses++
			}
		}
		if r.Result != nil && r.Result.Degraded {
			b.Stats.Degraded++
			b.Stats.Degradations = append(b.Stats.Degradations,
				fmt.Sprintf("%s: %s", r.Name, r.Result.DegradeReason))
		}
	}
	if batchSpan.Active() {
		batchSpan.Arg("routines", int64(b.Stats.Routines))
		batchSpan.Arg("workers", int64(b.Stats.Workers))
		if b.Stats.Failed != 0 {
			batchSpan.Arg("failed", int64(b.Stats.Failed))
		}
		if b.Stats.Degraded != 0 {
			batchSpan.Arg("degraded", int64(b.Stats.Degraded))
		}
	}
	batchSpan.End()
	tel.Count("driver.batches", 1)
	tel.Count("driver.units", int64(b.Stats.Routines))
	tel.Count("driver.failures", int64(b.Stats.Failed))
	tel.Count("driver.degradations", int64(b.Stats.Degraded))
	tel.Count("driver.cache.hits", int64(b.Stats.CacheHits))
	tel.Count("driver.cache.misses", int64(b.Stats.CacheMisses))
	return b
}

// allocate handles one unit with panic containment: core.Allocate
// contains panics inside its own pipeline, but the driver's cache
// lookup, key hashing and option plumbing run outside that boundary, and
// a worker goroutine that panics would kill the whole process. Any panic
// escaping a unit is recovered into a *core.AllocError so it fails that
// unit alone.
func (e *Engine) allocate(ctx context.Context, u Unit, wsink *telemetry.Sink) (res *core.Result, hit bool, tier string, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, hit, tier = nil, false, ""
			err = &core.AllocError{Routine: u.Name, Err: fmt.Errorf("driver: panic in worker: %v", r)}
		}
	}()
	return e.allocateUnit(ctx, u, wsink)
}

// allocateUnit handles one unit: cache lookup, allocation, cache fill.
// The worker's sink overrides the options' own so that allocator spans
// land on the worker's trace thread; Telemetry is excluded from the
// cache key, so this cannot split cache entries.
func (e *Engine) allocateUnit(ctx context.Context, u Unit, wsink *telemetry.Sink) (*core.Result, bool, string, error) {
	opts := e.cfg.Options
	if u.Options != nil {
		opts = *u.Options
	}
	if wsink != nil {
		opts.Telemetry = wsink
	}
	if u.Routine == nil {
		return nil, false, "", fmt.Errorf("driver: unit has no routine")
	}
	cache := e.cfg.Cache
	if cache == nil {
		res, err := core.Allocate(ctx, u.Routine, opts)
		return res, false, "", err
	}
	key := KeyFor(u.Routine, opts)
	var (
		res  *core.Result
		tier string
		ok   bool
	)
	if tg, tiered := cache.(TierGetter); tiered {
		res, tier, ok = tg.GetTier(key)
	} else {
		res, ok = cache.Get(key)
	}
	if ok {
		wsink.Instant(telemetry.CatCache, "hit")
		return res, true, tier, nil
	}
	wsink.Instant(telemetry.CatCache, "miss")
	res, err := core.Allocate(ctx, u.Routine, opts)
	if err != nil {
		return nil, false, "", err
	}
	if res.Degraded && res.DegradeReason == core.DegradeReasonDeadline {
		// A deadline-shaped degradation reflects this request's time
		// budget, not the routine: caching it would serve spill-everywhere
		// code to a later request with all the time in the world.
		return res, false, "", nil
	}
	if op, persists := cache.(OptionsPutter); persists {
		op.PutOptions(key, res, optionsKey(opts))
	} else {
		cache.Put(key, res)
	}
	return res, false, "", nil
}

// Allocate runs one batch with a throwaway engine — the convenience
// entry point for callers that do not reuse a cache.
func Allocate(ctx context.Context, units []Unit, cfg Config) *Batch {
	return New(cfg).Run(ctx, units)
}
