package experiments

import (
	"strings"
	"testing"

	"repro/internal/target"
)

func TestTable1ShapeHolds(t *testing.T) {
	rows, err := Table1(Table1Config{IncludeUnchanged: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	improved, regressed := 0, 0
	for _, r := range rows {
		if r.Optimistic < 0 || r.Remat < 0 {
			t.Errorf("%s: negative spill cost (opt %d, remat %d) — huge baseline not minimal?",
				r.Routine, r.Optimistic, r.Remat)
		}
		// Count like the paper: rounded-to-zero rows are insignificant.
		if r.PctTotal >= 0.5 {
			improved++
		}
		if r.PctTotal <= -0.5 {
			regressed++
		}
	}
	t.Logf("improved %d, regressed %d, of %d kernels", improved, regressed, len(rows))
	// The paper's claim: improvements dominate (28 wins vs 2 losses over
	// 70 routines). On the synthetic suite, wins must clearly outnumber
	// losses and exist at all.
	if improved < 3 {
		t.Fatalf("only %d improvements — Table 1's shape is lost", improved)
	}
	if regressed >= improved {
		t.Fatalf("regressions (%d) should not outnumber improvements (%d)", regressed, improved)
	}
	text := FormatTable1(rows)
	if !strings.Contains(text, "Optimistic") || !strings.Contains(text, "total") {
		t.Fatal("formatting broken")
	}
}

func TestTable1PressureSweep(t *testing.T) {
	// Across register counts the aggregate must never invert (remat can
	// only tie or win in total, even if single rows regress).
	for _, n := range []int{8, 10, 12, 16} {
		cfg := Table1Config{Standard: target.WithRegs(n), IncludeUnchanged: true}
		rows, err := Table1(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var opt, rem int64
		for _, r := range rows {
			opt += r.Optimistic
			rem += r.Remat
		}
		t.Logf("regs=%d: total spill cycles optimistic=%d remat=%d", n, opt, rem)
		if rem > opt {
			t.Fatalf("regs=%d: remat aggregate worse (%d > %d)", n, rem, opt)
		}
	}
}

func TestTable2Runs(t *testing.T) {
	cols, err := Table2(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 3 {
		t.Fatalf("columns = %d", len(cols))
	}
	for _, c := range cols {
		if c.OldTotal <= 0 || c.NewTotal <= 0 {
			t.Fatalf("%s: zero totals", c.Routine)
		}
		if len(c.Cells) < 5 {
			t.Fatalf("%s: too few phase cells (%d)", c.Routine, len(c.Cells))
		}
		if c.Cells[0].Phase != "cfa" {
			t.Fatalf("%s: first row should be cfa", c.Routine)
		}
	}
	text := FormatTable2(cols)
	for _, w := range []string{"repvid", "tomcatv", "twldrv", "renum", "build", "total"} {
		if !strings.Contains(text, w) {
			t.Fatalf("Table 2 text missing %q:\n%s", w, text)
		}
	}
}

func TestFigure1(t *testing.T) {
	r, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if r.RematCycles >= r.ChaitinCycles {
		t.Fatalf("figure 1 inverted: remat %d cycles vs chaitin %d", r.RematCycles, r.ChaitinCycles)
	}
	if r.RematLdaCount <= r.ChaitinLdaCnt {
		t.Fatal("remat allocation should issue extra lda (rematerializing p)")
	}
	if r.RematLoads >= r.ChaitinLoads {
		t.Fatal("remat allocation should need fewer reloads")
	}
	if !strings.Contains(r.Format(), "Rematerialization versus Spilling") {
		t.Fatal("format broken")
	}
}

func TestFigure2(t *testing.T) {
	s, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"renumber", "simplify", "iteration 1", "allocation complete"} {
		if !strings.Contains(s, w) {
			t.Fatalf("figure 2 trace missing %q:\n%s", w, s)
		}
	}
	// Under that much pressure at least two iterations must happen.
	if !strings.Contains(s, "iteration 2") {
		t.Fatalf("expected a spill iteration:\n%s", s)
	}
}

func TestFigure3(t *testing.T) {
	r, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.SSA, "phi") {
		t.Fatal("SSA stage shows no φ")
	}
	if len(r.Tags) != 3 {
		t.Fatalf("p should have exactly 3 values (lda, addi, φ), got %v", r.Tags)
	}
	var inst, bottom int
	for _, tag := range r.Tags {
		if strings.Contains(tag, "inst(") {
			inst++
		}
		if strings.Contains(tag, "⊥") {
			bottom++
		}
	}
	if inst != 1 || bottom != 2 {
		t.Fatalf("tags should be 1 inst + 2 ⊥, got %v", r.Tags)
	}
	if r.Splits == 0 {
		t.Fatal("minimal column needs at least one split")
	}
	if !strings.Contains(r.Format(), "Minimal") {
		t.Fatal("format broken")
	}
}

func TestFigure4(t *testing.T) {
	s, err := FormatFigure4()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{
		"floadao f14, r14, r9",
		"f14 = *((double *) (r14 + r9)); l++;",
		"f14 = fabs(f14);",
		"r14 = r14 + (8); a++;",
	} {
		if !strings.Contains(s, w) {
			t.Fatalf("figure 4 missing %q", w)
		}
	}
}

func TestSplittingStudy(t *testing.T) {
	rows, err := SplittingStudy(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 15 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's finding: each scheme has successes and failures. Check
	// that at least one scheme improves at least one kernel and degrades
	// another relative to the plain rematerializing allocator.
	improve, degrade := false, false
	for _, r := range rows {
		for _, c := range r.Cycles {
			if c < r.Baseline {
				improve = true
			}
			if c > r.Baseline {
				degrade = true
			}
		}
	}
	if !improve || !degrade {
		t.Fatalf("expected mixed results (improve=%v degrade=%v):\n%s",
			improve, degrade, FormatSplitting(rows))
	}
	if !strings.Contains(FormatSplitting(rows), "all-loops") {
		t.Fatal("format broken")
	}
}
