package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestStrategyMatrixShape: the matrix carries one row per registered
// strategy, every row executed the whole suite (nonzero cycles, no
// failures), and the iterated allocators beat the spill-everywhere
// family on dynamic cycles.
func TestStrategyMatrixShape(t *testing.T) {
	rows, err := StrategyMatrix(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	names := core.StrategyNames()
	if len(rows) != len(names) {
		t.Fatalf("want %d rows, got %d", len(names), len(rows))
	}
	cycles := map[string]int64{}
	for i, r := range rows {
		if r.Strategy != names[i] {
			t.Errorf("row %d: strategy %q, want %q (registration order)", i, r.Strategy, names[i])
		}
		if r.Cycles <= 0 {
			t.Errorf("%s: no cycles measured", r.Strategy)
		}
		if r.Failed != 0 {
			t.Errorf("%s: %d kernels failed", r.Strategy, r.Failed)
		}
		if r.Description == "" {
			t.Errorf("%s: no description", r.Strategy)
		}
		cycles[r.Strategy] = r.Cycles
	}
	if cycles["remat"] >= cycles["spill-everywhere"] {
		t.Errorf("remat (%d cycles) does not beat spill-everywhere (%d)",
			cycles["remat"], cycles["spill-everywhere"])
	}
	if cycles["chaitin"] >= cycles["spill-everywhere"] {
		t.Errorf("chaitin (%d cycles) does not beat spill-everywhere (%d)",
			cycles["chaitin"], cycles["spill-everywhere"])
	}

	text := FormatStrategyMatrix(rows, nil)
	for _, name := range names {
		if !strings.Contains(text, name) {
			t.Errorf("formatted matrix lacks %q:\n%s", name, text)
		}
	}
	if !strings.Contains(text, "1.00x") {
		t.Errorf("formatted matrix lacks the remat reference column:\n%s", text)
	}
}
