package experiments

import (
	"context"

	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/iloc"
	"repro/internal/interp"
	"repro/internal/suite"
	"repro/internal/target"
)

// runMode allocates the kernel and its callees under one configuration
// and executes the allocated program.
func runMode(k *suite.Kernel, m *target.Machine, mode core.Mode) (*interp.Outcome, error) {
	opts := core.Options{Machine: m, Mode: mode}
	res, err := core.Allocate(context.Background(), k.Routine(), opts)
	if err != nil {
		return nil, err
	}
	var callees []*iloc.Routine
	for _, callee := range k.CalleeRoutines() {
		cres, err := core.Allocate(context.Background(), callee, opts)
		if err != nil {
			return nil, err
		}
		callees = append(callees, cres.Routine)
	}
	return k.ExecuteWith(res.Routine, callees)
}

// SplittingRow compares §6's splitting schemes against the plain
// rematerializing allocator on one kernel: spill-code cycles under each
// scheme (same huge-machine baseline as Table 1).
type SplittingRow struct {
	Program string
	Routine string
	// Cycles of spill code per scheme, in SplittingSchemes order;
	// Baseline is SplitNone.
	Baseline int64
	Cycles   []int64
}

// SplittingSchemes lists the schemes the study sweeps (§6 schemes 1–4).
var SplittingSchemes = []core.SplitScheme{
	core.SplitAllLoops,
	core.SplitOuterLoops,
	core.SplitInactiveLoops,
	core.SplitAtPhis,
}

// SplittingStudy reproduces the experimental comparison behind §6: each
// scheme is run over the suite and judged against the §5 results, which
// is exactly how the paper evaluated them ("the results of splitting are
// compared to the results presented in Section 5"). Expect a mix of
// improvements and degradations.
func SplittingStudy(m *target.Machine) ([]SplittingRow, error) {
	if m == nil {
		m = target.WithRegs(6)
	}
	baseMachine := target.Huge()
	var rows []SplittingRow
	for _, k := range suite.All() {
		base, err := runMode(k, baseMachine, core.ModeRemat)
		if err != nil {
			return nil, fmt.Errorf("splitting %s baseline: %w", k.Name, err)
		}
		baseCycles := base.Cycles(int64(m.MemCycles), int64(m.OtherCycles))

		row := SplittingRow{Program: k.Program, Routine: k.Name}
		plain, err := runMode(k, m, core.ModeRemat)
		if err != nil {
			return nil, fmt.Errorf("splitting %s plain: %w", k.Name, err)
		}
		row.Baseline = plain.Cycles(int64(m.MemCycles), int64(m.OtherCycles)) - baseCycles

		for _, s := range SplittingSchemes {
			res, err := core.Allocate(context.Background(), k.Routine(), core.Options{Machine: m, Mode: core.ModeRemat, Split: s})
			if err != nil {
				return nil, fmt.Errorf("splitting %s %v: %w", k.Name, s, err)
			}
			out, err := k.Execute(res.Routine)
			if err != nil {
				return nil, fmt.Errorf("splitting %s %v: %w", k.Name, s, err)
			}
			row.Cycles = append(row.Cycles, out.Cycles(int64(m.MemCycles), int64(m.OtherCycles))-baseCycles)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatSplitting renders the study.
func FormatSplitting(rows []SplittingRow) string {
	var b strings.Builder
	b.WriteString("Splitting schemes (§6): spill-code cycles vs the §5 allocator\n")
	fmt.Fprintf(&b, "%-10s %-8s | %9s", "program", "routine", "remat")
	for _, s := range SplittingSchemes {
		fmt.Fprintf(&b, " %14s", s)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-8s | %9d", r.Program, r.Routine, r.Baseline)
		for _, c := range r.Cycles {
			fmt.Fprintf(&b, " %14d", c)
		}
		b.WriteString("\n")
	}
	return b.String()
}
