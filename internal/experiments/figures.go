package experiments

import (
	"context"

	"fmt"
	"strings"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/ctrans"
	"repro/internal/dom"
	"repro/internal/iloc"
	"repro/internal/interp"
	"repro/internal/liveness"
	"repro/internal/remat"
	"repro/internal/ssa"
	"repro/internal/target"
)

// Figure1Source is the paper's motivating example: p is constant in the
// first loop and varying in the second.
const Figure1Source = `
routine fig1(r9)
data arr rw 64
data lab rw 16 = 3.5 3.5 3.5 3.5 3.5 3.5 3.5 3.5 3.5 3.5 3.5 3.5 3.5 3.5 3.5 3.5
entry:
    getparam r9, 0
    lda r1, lab       ; p <- Label
    fldi f1, 0.0
    ldi r2, 0
    jmp loop1
loop1:
    fload f2, r1      ; y <- y + [p]
    fadd f1, f1, f2
    addi r2, r2, 1
    sub r3, r9, r2
    br gt r3, loop1, mid
mid:
    ldi r4, 0
    jmp loop2
loop2:
    fload f3, r1      ; y <- y + [p]
    fadd f1, f1, f3
    addi r1, r1, 8    ; p <- p + 1 (words)
    addi r4, r4, 1
    sub r5, r9, r4
    br gt r5, loop2, done
done:
    retf f1
`

// Figure1Result holds the four columns of Figure 1 as concrete code from
// the reproduction: the source, and the allocations produced by the
// Chaitin-rule allocator and the rematerializing allocator under enough
// register pressure to spill p, together with their measured costs.
type Figure1Result struct {
	Source        string
	Chaitin       string
	Remat         string
	ChaitinCycles int64
	RematCycles   int64
	ChaitinLoads  int64
	RematLoads    int64
	ChaitinStores int64
	RematStores   int64
	RematLdaCount int64 // the rematerialized p in loop1
	ChaitinLdaCnt int64
}

// Figure1 reproduces Figure 1: on a machine with only two allocatable
// integer registers, p must spill; Chaitin's allocator stores and reloads
// the whole live range, while the rematerializing allocator recomputes
// the constant value with lda inside the first loop.
func Figure1() (*Figure1Result, error) {
	m := target.WithRegs(3)
	iters := int64(10)
	r := &Figure1Result{Source: Figure1Source}

	run := func(mode core.Mode) (string, *interp.Outcome, error) {
		rt, err := iloc.Parse(Figure1Source)
		if err != nil {
			return "", nil, err
		}
		res, err := core.Allocate(context.Background(), rt, core.Options{Machine: m, Mode: mode})
		if err != nil {
			return "", nil, err
		}
		e, err := interp.New(res.Routine, interp.Config{})
		if err != nil {
			return "", nil, err
		}
		out, err := e.Run(interp.Int(iters))
		if err != nil {
			return "", nil, err
		}
		return iloc.Print(res.Routine), out, nil
	}

	var outC, outR *interp.Outcome
	var err error
	if r.Chaitin, outC, err = run(core.ModeChaitin); err != nil {
		return nil, fmt.Errorf("figure1 chaitin: %w", err)
	}
	if r.Remat, outR, err = run(core.ModeRemat); err != nil {
		return nil, fmt.Errorf("figure1 remat: %w", err)
	}
	if outC.RetFloat != outR.RetFloat {
		return nil, fmt.Errorf("figure1: allocations disagree: %g vs %g", outC.RetFloat, outR.RetFloat)
	}
	r.ChaitinCycles = outC.Cycles(2, 1)
	r.RematCycles = outR.Cycles(2, 1)
	r.ChaitinLoads = outC.Count(loadOps...)
	r.RematLoads = outR.Count(loadOps...)
	r.ChaitinStores = outC.Count(storeOps...)
	r.RematStores = outR.Count(storeOps...)
	r.ChaitinLdaCnt = outC.Count(iloc.OpLda)
	r.RematLdaCount = outR.Count(iloc.OpLda)
	return r, nil
}

// FormatFigure1 renders the comparison.
func (r *Figure1Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 1: Rematerialization versus Spilling (measured)\n\n")
	b.WriteString("--- Source ---\n" + strings.TrimSpace(r.Source) + "\n\n")
	b.WriteString("--- Chaitin allocation (2 int colors) ---\n" + r.Chaitin + "\n")
	b.WriteString("--- Rematerializing allocation (2 int colors) ---\n" + r.Remat + "\n")
	fmt.Fprintf(&b, "chaitin: %5d cycles, %d loads, %d stores, %d lda\n",
		r.ChaitinCycles, r.ChaitinLoads, r.ChaitinStores, r.ChaitinLdaCnt)
	fmt.Fprintf(&b, "remat:   %5d cycles, %d loads, %d stores, %d lda\n",
		r.RematCycles, r.RematLoads, r.RematStores, r.RematLdaCount)
	return b.String()
}

// Figure2 traces one allocation through Figure 2's pipeline: the phases
// executed per iteration, with the spill counts that send the allocator
// around the loop again.
func Figure2() (string, error) {
	rt, err := iloc.Parse(Figure1Source)
	if err != nil {
		return "", err
	}
	res, err := core.Allocate(context.Background(), rt, core.Options{
		Machine: target.WithRegs(3), Mode: core.ModeRemat,
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 2: The Optimistic Allocator (trace)\n\n")
	b.WriteString("renumber -> build -> coalesce -> spill costs -> simplify -> select -> [spill code]\n\n")
	for i, it := range res.Iterations {
		spills := it.Spilled[0] + it.Spilled[1]
		fmt.Fprintf(&b, "iteration %d: renumber(%d splits) build/coalesce(%d copies removed) costs color(%d spilled)",
			i+1, it.Splits, it.Coalesced, spills)
		if spills > 0 {
			b.WriteString(" -> spill code, repeat")
		} else {
			b.WriteString(" -> allocation complete")
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

// Figure3Result shows the stages of §3.3 on the Figure 1 example: the
// pruned SSA form with its φ-node, the rematerialization tags of p's
// three values, and the final renumbered code with the single split copy
// of the Minimal column.
type Figure3Result struct {
	SSA     string
	Tags    []string
	Minimal string
	Splits  int
}

// Figure3 reproduces Figure 3's "Introducing Splits" walk-through.
func Figure3() (*Figure3Result, error) {
	// Stage 1: SSA with φ-nodes, as the SSA column shows.
	rt, err := iloc.Parse(Figure1Source)
	if err != nil {
		return nil, err
	}
	if err := cfg.Build(rt); err != nil {
		return nil, err
	}
	if _, err := cfg.SplitCriticalEdges(rt); err != nil {
		return nil, err
	}
	tree := dom.Compute(rt)
	live := liveness.Compute(rt, iloc.ClassInt)
	g, err := ssa.Build(rt, iloc.ClassInt, tree, live)
	if err != nil {
		return nil, err
	}
	r := &Figure3Result{SSA: iloc.Print(rt)}

	// Stage 2: tags for p's values (original register r1).
	tags := remat.Propagate(g)
	for v := 1; v < g.NumValues; v++ {
		if g.OrigOf[v] == 1 {
			r.Tags = append(r.Tags, fmt.Sprintf("p value %d (%s): %s",
				v, g.DefOf[v].Op, tags[v]))
		}
	}

	// Stage 3: the full renumber pass produces the Minimal column — the
	// single split isolating the never-killed lda value.
	fresh, err := iloc.Parse(Figure1Source)
	if err != nil {
		return nil, err
	}
	res, err := core.Allocate(context.Background(), fresh, core.Options{
		Machine: target.Huge(), Mode: core.ModeRemat,
	})
	if err != nil {
		return nil, err
	}
	r.Minimal = iloc.Print(res.Routine)
	if len(res.Iterations) > 0 {
		r.Splits = res.Iterations[0].Splits
	}
	return r, nil
}

// Format renders the Figure 3 stages.
func (r *Figure3Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 3: Introducing Splits\n\n")
	b.WriteString("--- SSA (pruned, with φ-nodes) ---\n" + r.SSA + "\n")
	b.WriteString("--- Rematerialization tags for p's values ---\n")
	for _, t := range r.Tags {
		b.WriteString("  " + t + "\n")
	}
	fmt.Fprintf(&b, "\n--- Minimal (after renumber; %d split copies) ---\n%s", r.Splits, r.Minimal)
	return b.String()
}

// Figure4 reproduces the ILOC-and-C figure: the sum-of-absolute-values
// loop on the left, its instrumented C translation on the right.
func Figure4() (iloc.Routine, string, string, error) {
	src := `
routine fig4(r15, r11, r10)
entry:
    getparam r15, 0
    getparam r11, 1
    getparam r10, 2
    fldi f1, 0.0
LL44:
    ldi r14, 8
    add r9, r15, r11
    fmov f15, f1
    jmp L0023
L0023:
    floadao f14, r14, r9
    fabs f14, f14
    fadd f15, f15, f14
    addi r14, r14, 8
    sub r7, r10, r14
    br ge r7, L0023, N7
N7:
    retf f15
`
	rt, err := iloc.Parse(src)
	if err != nil {
		return iloc.Routine{}, "", "", err
	}
	c, err := ctrans.Translate(rt)
	if err != nil {
		return iloc.Routine{}, "", "", err
	}
	return *rt, iloc.Print(rt), c, nil
}

// FormatFigure4 renders the two columns.
func FormatFigure4() (string, error) {
	_, left, right, err := Figure4()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 4: ILOC and C\n\n--- ILOC ---\n")
	b.WriteString(left)
	b.WriteString("\n--- Instrumented C ---\n")
	b.WriteString(right)
	return b.String(), nil
}
