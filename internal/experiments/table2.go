package experiments

import (
	"context"

	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/suite"
	"repro/internal/target"
)

// Table2Routines are the three routines the paper times, spanning small,
// medium and large (repvid: 144 lines, tomcatv: 133, twldrv: 881).
var Table2Routines = []string{"repvid", "tomcatv", "twldrv"}

// Table2Cell is one (phase, iteration) timing, averaged over runs, for
// the Old (Chaitin-scheme) and New (rematerialization) allocators.
type Table2Cell struct {
	Phase string
	Old   time.Duration
	New   time.Duration
}

// PassTotal aggregates one pipeline pass over a whole allocation: how
// many times it executed and its total wall time, averaged over runs.
type PassTotal struct {
	Pass string
	Old  time.Duration
	New  time.Duration
	// OldRuns and NewRuns count executions of the pass across all
	// iterations of one allocation.
	OldRuns int
	NewRuns int
}

// Table2Column is one routine's timing column: cells in Table 2's row
// order (cfa once, then renum/build/costs/color/spill per iteration),
// plus totals and the finer per-pass breakdown from the instrumented
// pipeline.
type Table2Column struct {
	Routine  string
	Cells    []Table2Cell
	OldTotal time.Duration
	NewTotal time.Duration
	// Passes breaks the totals down by pipeline pass (build vs the two
	// coalescing rounds, simplify/select vs rewrite, ...), in execution
	// order. Passes that never ran for either mode are omitted.
	Passes []PassTotal
}

// table2Modes is the column order within one routine: the paper's Old
// (Chaitin) allocator, then New (rematerialization).
var table2Modes = []core.Mode{core.ModeChaitin, core.ModeRemat}

// Table2 reproduces the paper's allocation-time table: each routine is
// allocated `runs` times per mode (the paper uses 10) and the phase times
// of corresponding iterations are averaged. The default machine is the
// calibrated 6-register one so the color–spill loop iterates a few
// times, as in the paper's table (tomcatv there needed an extra round).
func Table2(m *target.Machine, runs int) ([]Table2Column, error) {
	return Table2Jobs(m, runs, 1)
}

// Table2Jobs is Table2 with the allocations sharded across the batch
// driver's worker pool (jobs <= 0 uses the number of CPUs). Every
// repetition is a distinct unit and caching is off — each timing must
// come from a real allocation. With jobs > 1 the per-phase times include
// scheduling noise from concurrent allocations; use jobs = 1 for
// paper-grade timing columns.
func Table2Jobs(m *target.Machine, runs, jobs int) ([]Table2Column, error) {
	if m == nil {
		m = target.WithRegs(6)
	}
	if runs <= 0 {
		runs = 10
	}

	// One batch: routine-major, then mode, then repetition.
	var units []driver.Unit
	for _, name := range Table2Routines {
		k := suite.ByName(name)
		if k == nil {
			return nil, fmt.Errorf("table2: kernel %s missing", name)
		}
		rt := k.Routine()
		for _, mode := range table2Modes {
			opts := core.Options{Machine: m, Mode: mode}
			for r := 0; r < runs; r++ {
				units = append(units, driver.Unit{
					Name:    fmt.Sprintf("%s/%s/run%d", name, mode, r),
					Routine: rt, Options: &opts,
				})
			}
		}
	}
	batch := driver.New(driver.Config{Workers: jobs}).Run(context.Background(), units)
	if err := batch.FirstErr(); err != nil {
		return nil, fmt.Errorf("table2: %w", err)
	}

	results := func(routine, mode int) []*core.Result {
		start := (routine*len(table2Modes) + mode) * runs
		out := make([]*core.Result, runs)
		for r := 0; r < runs; r++ {
			out[r] = batch.Results[start+r].Result
		}
		return out
	}
	var cols []Table2Column
	for ri, name := range Table2Routines {
		col := table2Column(name, results(ri, 0), results(ri, 1))
		cols = append(cols, col)
	}
	return cols, nil
}

// passTally accumulates per-pass time and execution counts keyed by pass
// name, preserving pipeline order.
type passTally struct {
	time map[string]time.Duration
	runs map[string]int
}

func newPassTally() *passTally {
	return &passTally{time: make(map[string]time.Duration), runs: make(map[string]int)}
}

// averageIterations folds one mode's repeated allocations (already done
// by the driver) into per-iteration phase averages and a per-pass tally.
func averageIterations(results []*core.Result) ([]core.PhaseTimes, *passTally) {
	runs := len(results)
	var acc []core.PhaseTimes
	tally := newPassTally()
	for _, res := range results {
		for i, it := range res.Iterations {
			if i >= len(acc) {
				acc = append(acc, core.PhaseTimes{})
			}
			acc[i].CFA += it.Times.CFA
			acc[i].Renumber += it.Times.Renumber
			acc[i].Build += it.Times.Build
			acc[i].Costs += it.Times.Costs
			acc[i].Color += it.Times.Color
			acc[i].Spill += it.Times.Spill
			for _, ps := range it.Passes {
				tally.time[ps.Name] += ps.Time
				tally.runs[ps.Name]++
			}
		}
	}
	for i := range acc {
		acc[i].CFA /= time.Duration(runs)
		acc[i].Renumber /= time.Duration(runs)
		acc[i].Build /= time.Duration(runs)
		acc[i].Costs /= time.Duration(runs)
		acc[i].Color /= time.Duration(runs)
		acc[i].Spill /= time.Duration(runs)
	}
	for name := range tally.time {
		tally.time[name] /= time.Duration(runs)
		tally.runs[name] /= runs
	}
	return acc, tally
}

func table2Column(name string, oldResults, newResults []*core.Result) Table2Column {
	col := Table2Column{Routine: name}
	old, oldPasses := averageIterations(oldResults)
	nw, newPasses := averageIterations(newResults)
	// Per-pass breakdown in pipeline order, keeping only passes that ran
	// for at least one mode.
	for _, name := range core.PassNames() {
		if oldPasses.runs[name] == 0 && newPasses.runs[name] == 0 {
			continue
		}
		col.Passes = append(col.Passes, PassTotal{
			Pass:    name,
			Old:     oldPasses.time[name],
			New:     newPasses.time[name],
			OldRuns: oldPasses.runs[name],
			NewRuns: newPasses.runs[name],
		})
	}

	iters := len(old)
	if len(nw) > iters {
		iters = len(nw)
	}
	get := func(ts []core.PhaseTimes, i int) core.PhaseTimes {
		if i < len(ts) {
			return ts[i]
		}
		return core.PhaseTimes{}
	}
	// cfa is reported once (first iteration), like the paper.
	col.Cells = append(col.Cells, Table2Cell{Phase: "cfa", Old: get(old, 0).CFA, New: get(nw, 0).CFA})
	for i := 0; i < iters; i++ {
		o, n := get(old, i), get(nw, i)
		col.Cells = append(col.Cells,
			Table2Cell{Phase: "renum", Old: o.Renumber, New: n.Renumber},
			Table2Cell{Phase: "build", Old: o.Build, New: n.Build},
			Table2Cell{Phase: "costs", Old: o.Costs, New: n.Costs},
			Table2Cell{Phase: "color", Old: o.Color, New: n.Color},
		)
		if o.Spill > 0 || n.Spill > 0 {
			col.Cells = append(col.Cells, Table2Cell{Phase: "spill", Old: o.Spill, New: n.Spill})
		}
	}
	for _, c := range col.Cells {
		col.OldTotal += c.Old
		col.NewTotal += c.New
	}
	// cfa accrues every iteration in reality; fold the remainder into the
	// totals so they reflect true cost.
	for i := 1; i < iters; i++ {
		col.OldTotal += get(old, i).CFA
		col.NewTotal += get(nw, i).CFA
	}
	return col
}

// FormatTable2 renders the columns like the paper (times in
// milliseconds; the paper's RS/6000 used seconds).
func FormatTable2(cols []Table2Column) string {
	var b strings.Builder
	b.WriteString("Table 2: Allocation Times (ms)\n")
	b.WriteString(fmt.Sprintf("%-8s", "Phase"))
	for _, c := range cols {
		b.WriteString(fmt.Sprintf(" | %9s:Old %9[1]s:New", c.Routine))
	}
	b.WriteString("\n")
	maxRows := 0
	for _, c := range cols {
		if len(c.Cells) > maxRows {
			maxRows = len(c.Cells)
		}
	}
	ms := func(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000) }
	for r := 0; r < maxRows; r++ {
		phase := ""
		for _, c := range cols {
			if r < len(c.Cells) {
				phase = c.Cells[r].Phase
			}
		}
		b.WriteString(fmt.Sprintf("%-8s", phase))
		for _, c := range cols {
			if r < len(c.Cells) {
				b.WriteString(fmt.Sprintf(" | %13s %13s", ms(c.Cells[r].Old), ms(c.Cells[r].New)))
			} else {
				b.WriteString(fmt.Sprintf(" | %13s %13s", "", ""))
			}
		}
		b.WriteString("\n")
	}
	b.WriteString(fmt.Sprintf("%-8s", "total"))
	for _, c := range cols {
		b.WriteString(fmt.Sprintf(" | %13s %13s", ms(c.OldTotal), ms(c.NewTotal)))
	}
	b.WriteString("\n")

	// The finer per-pass breakdown the instrumented pipeline records:
	// where the coarse rows above actually spend their time.
	b.WriteString("\nPer-pass totals (ms)\n")
	b.WriteString(fmt.Sprintf("%-16s", "Pass"))
	for _, c := range cols {
		b.WriteString(fmt.Sprintf(" | %9s:Old %9[1]s:New", c.Routine))
	}
	b.WriteString("\n")
	// Union of pass names across columns, in pipeline order.
	var names []string
	seen := make(map[string]bool)
	for _, name := range core.PassNames() {
		for _, c := range cols {
			for _, p := range c.Passes {
				if p.Pass == name && !seen[name] {
					seen[name] = true
					names = append(names, name)
				}
			}
		}
	}
	for _, name := range names {
		b.WriteString(fmt.Sprintf("%-16s", name))
		for _, c := range cols {
			var cell string
			for _, p := range c.Passes {
				if p.Pass == name {
					cell = fmt.Sprintf(" | %13s %13s", ms(p.Old), ms(p.New))
				}
			}
			if cell == "" {
				cell = fmt.Sprintf(" | %13s %13s", "", "")
			}
			b.WriteString(cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}
