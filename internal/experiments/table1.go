// Package experiments regenerates the paper's tables and figures from
// the reproduction: Table 1 (spill-cost cycles, Optimistic vs
// Rematerialization, with per-instruction-type contributions), Table 2
// (per-phase allocation times), and Figures 1–4. See DESIGN.md §5 for
// the experiment index.
package experiments

import (
	"context"

	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/iloc"
	"repro/internal/interp"
	"repro/internal/suite"
	"repro/internal/target"
)

// Instruction categories of Table 1's middle columns.
var (
	loadOps = []iloc.Op{
		iloc.OpLoad, iloc.OpLoadai, iloc.OpLoadao,
		iloc.OpFload, iloc.OpFloadai, iloc.OpFloadao,
		iloc.OpRload, iloc.OpFrload, iloc.OpGetparam, iloc.OpFgetparam,
	}
	storeOps = []iloc.Op{iloc.OpStore, iloc.OpStoreai, iloc.OpFstore, iloc.OpFstoreai}
	copyOps  = []iloc.Op{iloc.OpMov, iloc.OpFmov}
	ldiOps   = []iloc.Op{iloc.OpLdi, iloc.OpFldi, iloc.OpLda}
	addiOps  = []iloc.Op{iloc.OpAddi, iloc.OpSubi, iloc.OpMuli}
)

// categoryCycles prices one instruction category of an outcome.
func categoryCycles(out *interp.Outcome, m *target.Machine, ops []iloc.Op) int64 {
	var total int64
	for _, op := range ops {
		total += out.Counts[op] * int64(m.Cycles(op))
	}
	return total
}

// Table1Row is one line of Table 1.
type Table1Row struct {
	Program string
	Routine string
	// Spill-code cycles: dynamic cycles on the standard machine minus
	// cycles on the huge (128-register) baseline, per allocator (§5.2).
	Optimistic int64
	Remat      int64
	// Percentage contribution of each instruction category to the
	// improvement, and the total improvement, as in the paper
	// (positive = the new allocator wins).
	PctLoad, PctStore, PctCopy, PctLdi, PctAddi, PctTotal float64
}

// Table1Config tunes the experiment.
type Table1Config struct {
	// Standard is the machine whose spill behaviour is measured. The
	// paper uses 16+16 registers on routines averaging hundreds of
	// lines; the synthetic kernels here are roughly a tenth that size,
	// so the default shrinks the register file to 6+6 to reach the same
	// pressure (see EXPERIMENTS.md). Pass target.Standard() for the
	// paper's literal register count, or sweep with target.WithRegs.
	Standard *target.Machine
	Baseline *target.Machine // defaults to the 128-register huge machine
	// IncludeUnchanged keeps rows where the two allocators tie (the
	// paper shows only routines with a difference).
	IncludeUnchanged bool
	// Jobs bounds the batch driver's worker pool for the experiment's
	// allocations (0 = number of CPUs). Rows are deterministic whatever
	// the parallelism.
	Jobs int
	// Cache, when non-nil, is shared with the batch driver; the register
	// sweep reuses the baseline allocations of earlier runs through it.
	Cache *driver.Cache
}

// table1Alloc locates one measurement configuration's allocations in
// the batch: the main routine's unit index and its callees'.
type table1Alloc struct {
	main    int
	callees []int
}

// Table 1 measures three configurations per kernel: the huge-machine
// zero-spill baseline, Chaitin's allocator, and the rematerializing
// allocator on the standard machine.
const table1Configs = 3

// Table1 reproduces the paper's Table 1 over the synthetic suite. All
// allocations — every kernel, callee and configuration — run as one
// batch through the driver; the interpreter measurements then execute
// in suite order.
func Table1(cfg Table1Config) ([]Table1Row, error) {
	if cfg.Standard == nil {
		cfg.Standard = target.WithRegs(6)
	}
	if cfg.Baseline == nil {
		cfg.Baseline = target.Huge()
	}
	machines := [table1Configs]*target.Machine{cfg.Baseline, cfg.Standard, cfg.Standard}
	modes := [table1Configs]core.Mode{core.ModeRemat, core.ModeChaitin, core.ModeRemat}

	kernels := suite.All()
	var units []driver.Unit
	plan := make([][table1Configs]table1Alloc, len(kernels))
	for ki, k := range kernels {
		rt := k.Routine()
		calleeRts := k.CalleeRoutines()
		for ci := 0; ci < table1Configs; ci++ {
			// Callees are allocated with the same options, so the measured
			// program is consistently compiled end to end.
			opts := core.Options{Machine: machines[ci], Mode: modes[ci]}
			plan[ki][ci].main = len(units)
			units = append(units, driver.Unit{
				Name:    fmt.Sprintf("%s/%s@%s", k.Name, modes[ci], machines[ci].Name),
				Routine: rt, Options: &opts,
			})
			for i, crt := range calleeRts {
				plan[ki][ci].callees = append(plan[ki][ci].callees, len(units))
				units = append(units, driver.Unit{
					Name:    fmt.Sprintf("%s/callee%d/%s@%s", k.Name, i, modes[ci], machines[ci].Name),
					Routine: crt, Options: &opts,
				})
			}
		}
	}
	batch := driver.New(driver.Config{Workers: cfg.Jobs, Cache: cfg.Cache}).Run(context.Background(), units)
	if err := batch.FirstErr(); err != nil {
		return nil, fmt.Errorf("table1: %w", err)
	}

	var rows []Table1Row
	for ki, k := range kernels {
		row, differs, err := table1Row(k, batch, plan[ki], cfg)
		if err != nil {
			return nil, fmt.Errorf("table1 %s/%s: %w", k.Program, k.Name, err)
		}
		if differs || cfg.IncludeUnchanged {
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// runAllocated executes one configuration's allocated program.
func runAllocated(k *suite.Kernel, batch *driver.Batch, a table1Alloc) (*interp.Outcome, error) {
	var callees []*iloc.Routine
	for _, i := range a.callees {
		callees = append(callees, batch.Results[i].Result.Routine)
	}
	return k.ExecuteWith(batch.Results[a.main].Result.Routine, callees)
}

func table1Row(k *suite.Kernel, batch *driver.Batch, allocs [table1Configs]table1Alloc, cfg Table1Config) (Table1Row, bool, error) {
	row := Table1Row{Program: k.Program, Routine: k.Name}

	base, err := runAllocated(k, batch, allocs[0])
	if err != nil {
		return row, false, fmt.Errorf("baseline: %w", err)
	}
	opt, err := runAllocated(k, batch, allocs[1])
	if err != nil {
		return row, false, fmt.Errorf("optimistic: %w", err)
	}
	rem, err := runAllocated(k, batch, allocs[2])
	if err != nil {
		return row, false, fmt.Errorf("remat: %w", err)
	}

	mem := int64(cfg.Standard.MemCycles)
	oth := int64(cfg.Standard.OtherCycles)
	baseCycles := base.Cycles(mem, oth)
	row.Optimistic = opt.Cycles(mem, oth) - baseCycles
	row.Remat = rem.Cycles(mem, oth) - baseCycles

	if row.Optimistic != 0 {
		denom := float64(row.Optimistic)
		pct := func(ops []iloc.Op) float64 {
			d := categoryCycles(opt, cfg.Standard, ops) - categoryCycles(rem, cfg.Standard, ops)
			return 100 * float64(d) / denom
		}
		row.PctLoad = pct(loadOps)
		row.PctStore = pct(storeOps)
		row.PctCopy = pct(copyOps)
		row.PctLdi = pct(ldiOps)
		row.PctAddi = pct(addiOps)
		row.PctTotal = 100 * float64(row.Optimistic-row.Remat) / denom
	}
	return row, row.Optimistic != row.Remat, nil
}

// FormatTable1 renders rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: Effects of Rematerialization\n")
	b.WriteString(fmt.Sprintf("%-10s %-8s | %12s %12s | %6s %6s %6s %6s %6s | %6s\n",
		"program", "routine", "Optimistic", "Remat", "load", "store", "copy", "ldi", "addi", "total"))
	b.WriteString(strings.Repeat("-", 102) + "\n")
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-10s %-8s | %12d %12d | %6s %6s %6s %6s %6s | %6s\n",
			r.Program, r.Routine, r.Optimistic, r.Remat,
			fmtPct(r.PctLoad), fmtPct(r.PctStore), fmtPct(r.PctCopy),
			fmtPct(r.PctLdi), fmtPct(r.PctAddi), fmtPct(r.PctTotal)))
	}
	return b.String()
}

// fmtPct rounds like the paper: blank for exactly zero, "0" for an
// insignificant gain, "-0" for an insignificant loss.
func fmtPct(p float64) string {
	switch {
	case p == 0:
		return ""
	case p > 0 && p < 0.5:
		return "0"
	case p < 0 && p > -0.5:
		return "-0"
	default:
		return fmt.Sprintf("%.0f", p)
	}
}
