package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/iloc"
	"repro/internal/suite"
	"repro/internal/target"
)

// The strategy matrix is the design-space extension of Table 1: instead
// of the paper's two allocators it runs every registered allocation
// strategy over the full kernel suite and compares the dynamic cycle
// counts of the allocated programs. It is how a newly registered
// strategy is placed against the existing ones without writing a new
// experiment.

// StrategyMatrixRow aggregates one strategy's results over the suite.
type StrategyMatrixRow struct {
	Strategy    string // canonical spec
	Description string
	// Cycles is the summed dynamic cycle count of every kernel's
	// allocated program on the measured machine.
	Cycles int64
	// Spilled and Remat total the allocator's static counters across
	// the suite; Degraded and Failed count kernels that fell back or
	// errored.
	Spilled  int
	Remat    int
	Degraded int
	Failed   int
	// AllocMs is the summed allocation wall time across the suite.
	AllocMs float64
}

// StrategyMatrix allocates every suite kernel (and its callees) under
// every registered strategy as one driver batch, executes the allocated
// programs, and returns one row per strategy in registration order. A
// nil machine measures at the calibrated pressure point (6+6 registers,
// as Table 1). Jobs bounds the batch worker pool (0 = number of CPUs).
func StrategyMatrix(m *target.Machine, jobs int) ([]StrategyMatrixRow, error) {
	if m == nil {
		m = target.WithRegs(6)
	}
	strategies := core.Strategies()
	kernels := suite.All()

	// One batch covers the whole matrix; the plan records, per strategy
	// and kernel, where the main routine and its callees landed.
	type alloc struct {
		main    int
		callees []int
	}
	var units []driver.Unit
	plan := make([][]alloc, len(strategies))
	for si, s := range strategies {
		opts := core.Options{Machine: m, Strategy: s.Name()}
		plan[si] = make([]alloc, len(kernels))
		for ki, k := range kernels {
			plan[si][ki].main = len(units)
			units = append(units, driver.Unit{
				Name:    fmt.Sprintf("%s/%s", k.Name, s.Name()),
				Routine: k.Routine(), Options: &opts,
			})
			for i, crt := range k.CalleeRoutines() {
				plan[si][ki].callees = append(plan[si][ki].callees, len(units))
				units = append(units, driver.Unit{
					Name:    fmt.Sprintf("%s/callee%d/%s", k.Name, i, s.Name()),
					Routine: crt, Options: &opts,
				})
			}
		}
	}
	batch := driver.New(driver.Config{Workers: jobs}).Run(context.Background(), units)

	mem, oth := int64(m.MemCycles), int64(m.OtherCycles)
	rows := make([]StrategyMatrixRow, len(strategies))
	for si, s := range strategies {
		row := StrategyMatrixRow{Strategy: s.Spec(), Description: s.Description()}
		for ki, k := range kernels {
			a := plan[si][ki]
			main := batch.Results[a.main]
			if main.Err != nil {
				row.Failed++
				continue
			}
			row.Spilled += main.Result.SpilledRanges
			row.Remat += main.Result.RematSpills
			if main.Result.Degraded {
				row.Degraded++
			}
			row.AllocMs += float64(main.Wall.Microseconds()) / 1000
			var callees []*iloc.Routine
			ok := true
			for _, i := range a.callees {
				if batch.Results[i].Err != nil {
					ok = false
					break
				}
				callees = append(callees, batch.Results[i].Result.Routine)
			}
			if !ok {
				row.Failed++
				continue
			}
			out, err := k.ExecuteWith(main.Result.Routine, callees)
			if err != nil {
				return nil, fmt.Errorf("strategy matrix: %s under %s: %w", k.Name, s.Name(), err)
			}
			row.Cycles += out.Cycles(mem, oth)
		}
		rows[si] = row
	}
	return rows, nil
}

// FormatStrategyMatrix renders the matrix with the default (remat)
// strategy's cycles as the 1.00x reference.
func FormatStrategyMatrix(rows []StrategyMatrixRow, m *target.Machine) string {
	if m == nil {
		m = target.WithRegs(6)
	}
	var ref int64
	for _, r := range rows {
		if r.Strategy == "remat" {
			ref = r.Cycles
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Strategy matrix: dynamic cycles over the full suite (machine %s)\n", m.Name)
	fmt.Fprintf(&b, "%-18s %14s %8s %8s %6s %9s %9s %9s\n",
		"strategy", "cycles", "vs remat", "spilled", "remat", "degraded", "failed", "alloc ms")
	b.WriteString(strings.Repeat("-", 88) + "\n")
	for _, r := range rows {
		rel := "-"
		if ref > 0 {
			rel = fmt.Sprintf("%.2fx", float64(r.Cycles)/float64(ref))
		}
		fmt.Fprintf(&b, "%-18s %14d %8s %8d %6d %9d %9d %9.1f\n",
			r.Strategy, r.Cycles, rel, r.Spilled, r.Remat, r.Degraded, r.Failed, r.AllocMs)
	}
	return b.String()
}
