package cfg

import (
	"testing"

	"repro/internal/dom"
	"repro/internal/iloc"
)

// diamond: entry -> (left|right) -> join -> exit, with a loop around join.
const diamondSrc = `
routine diamond(r1)
entry:
    br gt r1, left, right
left:
    ldi r2, 1
    jmp join
right:
    ldi r2, 2
    jmp join
join:
    addi r2, r2, 1
    sub r3, r1, r2
    br gt r3, join, exit
exit:
    retr r2
`

const nestedLoopSrc = `
routine nested(r1)
entry:
    ldi r2, 0
    jmp outer
outer:
    ldi r3, 0
    jmp inner
inner:
    addi r3, r3, 1
    sub r4, r1, r3
    br gt r4, inner, after
after:
    addi r2, r2, 1
    sub r5, r1, r2
    br gt r5, outer, done
done:
    retr r2
`

func build(t *testing.T, src string) *iloc.Routine {
	t.Helper()
	rt := iloc.MustParse(src)
	if err := Build(rt); err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestBuildEdges(t *testing.T) {
	rt := build(t, diamondSrc)
	get := rt.BlockByLabel
	entry, left, right, join, exit := get("entry"), get("left"), get("right"), get("join"), get("exit")
	if len(entry.Succs) != 2 || len(entry.Preds) != 0 {
		t.Fatalf("entry edges wrong: %d succs %d preds", len(entry.Succs), len(entry.Preds))
	}
	if len(join.Preds) != 3 { // left, right, join itself
		t.Fatalf("join preds = %d, want 3", len(join.Preds))
	}
	if len(join.Succs) != 2 {
		t.Fatalf("join succs = %d", len(join.Succs))
	}
	if len(exit.Succs) != 0 || len(exit.Preds) != 1 {
		t.Fatal("exit edges wrong")
	}
	if len(left.Succs) != 1 || left.Succs[0] != join || len(right.Succs) != 1 {
		t.Fatal("arm edges wrong")
	}
}

func TestBuildFallthrough(t *testing.T) {
	rt := build(t, `
routine f(r1)
a:
    ldi r2, 1
b:
    add r2, r2, r1
    retr r2
`)
	a, b := rt.BlockByLabel("a"), rt.BlockByLabel("b")
	if len(a.Succs) != 1 || a.Succs[0] != b {
		t.Fatal("fallthrough edge missing")
	}
}

func TestBuildDuplicateBranchTargetCollapsed(t *testing.T) {
	rt := build(t, `
routine f(r1)
a:
    br gt r1, b, b
b:
    retr r1
`)
	a := rt.BlockByLabel("a")
	if len(a.Succs) != 1 {
		t.Fatalf("duplicate-target br should have 1 succ, got %d", len(a.Succs))
	}
	if len(rt.BlockByLabel("b").Preds) != 1 {
		t.Fatal("dup edge in preds")
	}
}

func TestBuildPrunesUnreachable(t *testing.T) {
	rt := build(t, `
routine f(r1)
a:
    retr r1
dead:
    ldi r2, 1
    retr r2
`)
	if len(rt.Blocks) != 1 {
		t.Fatalf("unreachable block kept: %d blocks", len(rt.Blocks))
	}
	if rt.Blocks[0].Index != 0 {
		t.Fatal("reindex failed")
	}
}

func TestBuildErrors(t *testing.T) {
	rt := iloc.MustParse(diamondSrc)
	rt.Blocks[0].Instrs[0].Label = "nope"
	if err := Build(rt); err == nil {
		t.Fatal("bad br target not caught")
	}
}

func TestReversePostorder(t *testing.T) {
	rt := build(t, diamondSrc)
	rpo := ReversePostorder(rt)
	if len(rpo) != len(rt.Blocks) {
		t.Fatalf("rpo covers %d of %d blocks", len(rpo), len(rt.Blocks))
	}
	pos := map[string]int{}
	for i, b := range rpo {
		pos[b.Label] = i
	}
	if pos["entry"] != 0 {
		t.Fatal("entry not first")
	}
	if pos["join"] < pos["left"] && pos["join"] < pos["right"] {
		t.Fatal("join precedes both arms in RPO")
	}
	if pos["exit"] != len(rpo)-1 {
		t.Fatalf("exit not last: %v", pos)
	}
}

func TestSplitCriticalEdges(t *testing.T) {
	// entry br -> (join has 3 preds) makes entry->? not critical (arms have
	// single pred each); join->join IS critical (join has 2 succs, join has
	// 3 preds); join->exit not critical (exit has 1 pred).
	rt := build(t, diamondSrc)
	n, err := SplitCriticalEdges(rt)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("split %d edges, want 1 (the join->join back edge)", n)
	}
	// After splitting there must be no critical edges left.
	for _, b := range rt.Blocks {
		if len(b.Succs) < 2 {
			continue
		}
		for _, s := range b.Succs {
			if len(s.Preds) > 1 {
				t.Fatalf("critical edge %s->%s remains", b.Label, s.Label)
			}
		}
	}
	if err := iloc.Verify(rt, false); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if n, _ := SplitCriticalEdges(rt); n != 0 {
		t.Fatalf("second split changed %d edges", n)
	}
}

func TestAnalyzeDepthsSimpleLoop(t *testing.T) {
	rt := iloc.MustParse(diamondSrc)
	_, loops, err := Analyze(rt)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	if loops[0].Header.Label != "join" {
		t.Fatalf("loop header = %s", loops[0].Header.Label)
	}
	for _, b := range rt.Blocks {
		want := 0
		if b.Label == "join" {
			want = 1
		}
		if b.Depth != want {
			t.Errorf("depth(%s) = %d, want %d", b.Label, b.Depth, want)
		}
	}
}

func TestAnalyzeNestedLoops(t *testing.T) {
	rt := iloc.MustParse(nestedLoopSrc)
	_, loops, err := Analyze(rt)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	depth := map[string]int{}
	for _, b := range rt.Blocks {
		depth[b.Label] = b.Depth
	}
	if depth["inner"] != 2 {
		t.Errorf("inner depth = %d, want 2", depth["inner"])
	}
	if depth["outer"] != 1 || depth["after"] != 1 {
		t.Errorf("outer body depths = %d/%d, want 1/1", depth["outer"], depth["after"])
	}
	if depth["entry"] != 0 || depth["done"] != 0 {
		t.Error("blocks outside loops should have depth 0")
	}
	// Parent links.
	var inner, outer *Loop
	for _, l := range loops {
		switch l.Header.Label {
		case "inner":
			inner = l
		case "outer":
			outer = l
		}
	}
	if inner == nil || outer == nil {
		t.Fatal("loop headers not found")
	}
	if inner.Parent != outer {
		t.Fatal("inner loop's parent should be outer loop")
	}
	if outer.Parent != nil {
		t.Fatal("outer loop should have no parent")
	}
	if inner.Depth != 2 || outer.Depth != 1 {
		t.Fatalf("loop depths %d/%d", inner.Depth, outer.Depth)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	rt := build(t, diamondSrc)
	tree := dom.Compute(rt)
	idx := func(l string) int { return rt.BlockByLabel(l).Index }
	if tree.Idom[idx("entry")] != -1 {
		t.Fatal("entry must be root")
	}
	if tree.Idom[idx("join")] != idx("entry") {
		t.Fatalf("idom(join) = %d, want entry", tree.Idom[idx("join")])
	}
	if tree.Idom[idx("exit")] != idx("join") {
		t.Fatal("idom(exit) wrong")
	}
	if !tree.Dominates(idx("entry"), idx("exit")) {
		t.Fatal("entry should dominate exit")
	}
	if tree.Dominates(idx("left"), idx("join")) {
		t.Fatal("left must not dominate join")
	}
}

func TestDominanceFrontiers(t *testing.T) {
	rt := build(t, diamondSrc)
	tree := dom.Compute(rt)
	df := dom.Frontiers(tree, rt)
	idx := func(l string) int { return rt.BlockByLabel(l).Index }
	has := func(b, j int) bool {
		for _, x := range df[b] {
			if x == j {
				return true
			}
		}
		return false
	}
	if !has(idx("left"), idx("join")) || !has(idx("right"), idx("join")) {
		t.Fatal("join must be in DF of both arms")
	}
	// join is its own frontier member (loop header with back edge).
	if !has(idx("join"), idx("join")) {
		t.Fatal("join must be in its own DF")
	}
	if has(idx("entry"), idx("join")) {
		t.Fatal("entry strictly dominates join; join not in DF(entry)")
	}
}

func TestPostdominators(t *testing.T) {
	rt := build(t, diamondSrc)
	tree := dom.ComputePost(rt)
	idx := func(l string) int { return rt.BlockByLabel(l).Index }
	if tree.Idom[idx("exit")] != -1 {
		t.Fatal("exit is the postdom root")
	}
	if tree.Idom[idx("left")] != idx("join") || tree.Idom[idx("right")] != idx("join") {
		t.Fatal("join must postdominate the arms")
	}
	if tree.Idom[idx("entry")] != idx("join") {
		t.Fatalf("postidom(entry) = %d, want join", tree.Idom[idx("entry")])
	}
	if !tree.Dominates(idx("exit"), idx("entry")) {
		t.Fatal("exit postdominates everything")
	}
}

func TestPostdominatorsMultiExit(t *testing.T) {
	rt := build(t, `
routine f(r1)
a:
    br gt r1, b, c
b:
    retr r1
c:
    ldi r2, 0
    retr r2
`)
	tree := dom.ComputePost(rt)
	idx := func(l string) int { return rt.BlockByLabel(l).Index }
	if tree.Idom[idx("b")] != -1 || tree.Idom[idx("c")] != -1 {
		t.Fatal("both exits are roots")
	}
	// a's two succ chains reach different roots -> virtual root.
	if tree.Idom[idx("a")] != -1 {
		t.Fatalf("postidom(a) = %d, want virtual root (-1)", tree.Idom[idx("a")])
	}
}

func TestPostFrontiers(t *testing.T) {
	rt := build(t, diamondSrc)
	tree := dom.ComputePost(rt)
	pdf := dom.PostFrontiers(tree, rt)
	idx := func(l string) int { return rt.BlockByLabel(l).Index }
	has := func(b, j int) bool {
		for _, x := range pdf[b] {
			if x == j {
				return true
			}
		}
		return false
	}
	// The arms are control dependent on entry.
	if !has(idx("left"), idx("entry")) || !has(idx("right"), idx("entry")) {
		t.Fatalf("arms should have entry in their reverse DF: %v", pdf)
	}
	// join is control dependent on itself (loop).
	if !has(idx("join"), idx("join")) {
		t.Fatal("join should be control dependent on itself")
	}
}

func TestDomOrderCoversAll(t *testing.T) {
	rt := build(t, nestedLoopSrc)
	tree := dom.Compute(rt)
	if len(tree.Order) != len(rt.Blocks) {
		t.Fatalf("Order covers %d of %d", len(tree.Order), len(rt.Blocks))
	}
	// Children lists are consistent with Idom.
	count := 0
	for p, kids := range tree.Children {
		for _, k := range kids {
			if tree.Idom[k] != p {
				t.Fatalf("child %d of %d has idom %d", k, p, tree.Idom[k])
			}
			count++
		}
	}
	roots := 0
	for _, id := range tree.Idom {
		if id == -1 {
			roots++
		}
	}
	if count+roots != len(rt.Blocks) {
		t.Fatal("tree does not partition blocks")
	}
}

func TestCheckDefinedAcceptsGood(t *testing.T) {
	// diamondSrc/nestedLoopSrc use their parameter registers without an
	// explicit getparam (fine for CFG tests, not definite-assignment
	// clean); this source follows the convention.
	rt := build(t, `
routine f(r1)
entry:
    getparam r1, 0
    ldi r2, 0
    br gt r1, a, b
a:
    addi r2, r2, 1
    jmp join
b:
    addi r2, r2, 2
    jmp join
join:
    sub r3, r1, r2
    br gt r3, join, done
done:
    retr r2
`)
	if err := CheckDefined(rt); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDefinedRejectsUseBeforeDef(t *testing.T) {
	rt := build(t, `
routine f()
a:
    retr r1
`)
	if err := CheckDefined(rt); err == nil {
		t.Fatal("use of undefined register accepted")
	}
}

func TestCheckDefinedRejectsOneArmedDef(t *testing.T) {
	// r2 defined only on the taken arm.
	rt := build(t, `
routine f(r1)
entry:
    getparam r1, 0
    br gt r1, a, b
a:
    ldi r2, 1
    jmp join
b:
    jmp join
join:
    retr r2
`)
	if err := CheckDefined(rt); err == nil {
		t.Fatal("partially defined register accepted")
	}
}

func TestCheckDefinedLoopCarried(t *testing.T) {
	// Defined in the loop body but used only after the loop: the loop
	// always executes its body at least zero times, so this must be
	// rejected (the zero-trip path never defines r3).
	rt := build(t, `
routine f(r1)
entry:
    getparam r1, 0
    ldi r2, 0
    jmp head
head:
    sub r4, r2, r1
    br ge r4, exit, body
body:
    ldi r3, 9
    addi r2, r2, 1
    jmp head
exit:
    retr r3
`)
	if err := CheckDefined(rt); err == nil {
		t.Fatal("zero-trip-undefined register accepted")
	}
}

func TestCheckDefinedFPAlwaysOK(t *testing.T) {
	rt := build(t, `
routine f()
a:
    addi r1, fp, 8
    retr r1
`)
	if err := CheckDefined(rt); err != nil {
		t.Fatal(err)
	}
}
