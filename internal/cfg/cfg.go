// Package cfg builds and maintains the control-flow graph of an ILOC
// routine: successor/predecessor edges, reachability, reverse postorder,
// critical-edge splitting, and natural-loop nesting depth (which weights
// spill costs by 10^depth, as in the paper).
package cfg

import (
	"fmt"

	"repro/internal/iloc"
)

// Build computes Succs/Preds for every block from terminators and
// fall-through, and removes unreachable blocks. Blocks without a
// terminator fall through to the next block in Routine.Blocks order.
func Build(rt *iloc.Routine) error {
	for _, b := range rt.Blocks {
		b.Succs = b.Succs[:0]
		b.Preds = b.Preds[:0]
	}
	addEdge := func(from, to *iloc.Block) {
		for _, s := range from.Succs {
			if s == to {
				return // collapse duplicate edges (br cond r, L, L)
			}
		}
		from.Succs = append(from.Succs, to)
		to.Preds = append(to.Preds, from)
	}
	for i, b := range rt.Blocks {
		t := b.Terminator()
		if t == nil {
			if i+1 >= len(rt.Blocks) {
				return fmt.Errorf("cfg: final block %s has no terminator", b.Label)
			}
			addEdge(b, rt.Blocks[i+1])
			continue
		}
		switch t.Op {
		case iloc.OpJmp:
			to := rt.BlockByLabel(t.Label)
			if to == nil {
				return fmt.Errorf("cfg: jmp to unknown label %q", t.Label)
			}
			addEdge(b, to)
		case iloc.OpBr:
			to1, to2 := rt.BlockByLabel(t.Label), rt.BlockByLabel(t.Label2)
			if to1 == nil || to2 == nil {
				return fmt.Errorf("cfg: br to unknown label in %s", b.Label)
			}
			addEdge(b, to1)
			addEdge(b, to2)
		default: // ret/retr/retf: no successors
		}
	}
	pruneUnreachable(rt)
	rt.Reindex()
	return nil
}

func pruneUnreachable(rt *iloc.Routine) {
	reach := make(map[*iloc.Block]bool, len(rt.Blocks))
	var walk func(b *iloc.Block)
	walk = func(b *iloc.Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(rt.Entry())
	if len(reach) == len(rt.Blocks) {
		return
	}
	kept := rt.Blocks[:0]
	for _, b := range rt.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	rt.Blocks = kept
	// Drop edges from removed predecessors.
	for _, b := range rt.Blocks {
		preds := b.Preds[:0]
		for _, p := range b.Preds {
			if reach[p] {
				preds = append(preds, p)
			}
		}
		b.Preds = preds
	}
}

// ReversePostorder returns the blocks in reverse postorder of a DFS from
// the entry. Every block is reachable after Build, so the result covers
// the whole routine.
func ReversePostorder(rt *iloc.Routine) []*iloc.Block {
	seen := make([]bool, len(rt.Blocks))
	post := make([]*iloc.Block, 0, len(rt.Blocks))
	var dfs func(b *iloc.Block)
	dfs = func(b *iloc.Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(rt.Entry())
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// SplitCriticalEdges inserts an empty jmp-block on every edge whose source
// has multiple successors and whose target has multiple predecessors.
// Renumber needs this so split copies inserted "in the predecessor block"
// (§4.1 step 6) cannot execute on an unrelated path. It returns the number
// of edges split and rebuilds the CFG if any were.
func SplitCriticalEdges(rt *iloc.Routine) (int, error) {
	type edge struct {
		from *iloc.Block
		to   *iloc.Block
	}
	var critical []edge
	for _, b := range rt.Blocks {
		if len(b.Succs) < 2 {
			continue
		}
		for _, s := range b.Succs {
			if len(s.Preds) > 1 {
				critical = append(critical, edge{b, s})
			}
		}
	}
	if len(critical) == 0 {
		return 0, nil
	}
	for _, e := range critical {
		mid := &iloc.Block{
			Label:  rt.FreshLabel(e.from.Label + ".x." + e.to.Label),
			Depth:  min(e.from.Depth, e.to.Depth),
			Instrs: []*iloc.Instr{{Op: iloc.OpJmp, Dst: iloc.NoReg, Label: e.to.Label}},
		}
		t := e.from.Terminator()
		if t == nil || t.Op != iloc.OpBr {
			return 0, fmt.Errorf("cfg: critical edge from %s without br terminator", e.from.Label)
		}
		// Retarget exactly one arm. Build collapses duplicate-target
		// branches to one edge, so Label and Label2 differ here.
		switch e.to.Label {
		case t.Label:
			t.Label = mid.Label
		case t.Label2:
			t.Label2 = mid.Label
		default:
			return 0, fmt.Errorf("cfg: edge %s->%s not in terminator", e.from.Label, e.to.Label)
		}
		rt.Blocks = append(rt.Blocks, mid)
	}
	rt.Reindex()
	return len(critical), Build(rt)
}
