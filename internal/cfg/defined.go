package cfg

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/iloc"
)

// CheckDefined verifies definite assignment: on every path from the
// entry, each register is defined before it is used (the frame pointer
// is always defined). The allocator's SSA construction would also catch
// a violation, but this forward dataflow check reports it directly and
// works on allocated code too. CFG edges must be built.
func CheckDefined(rt *iloc.Routine) error {
	nb := len(rt.Blocks)
	n := [iloc.NumClasses]int{rt.NumRegs(iloc.ClassInt), rt.NumRegs(iloc.ClassFlt)}

	// defIn[c][b] = registers of class c definitely defined at entry of b.
	var defIn, defOut [iloc.NumClasses][]*bitset.Set
	for c := 0; c < iloc.NumClasses; c++ {
		defIn[c] = make([]*bitset.Set, nb)
		defOut[c] = make([]*bitset.Set, nb)
		for b := 0; b < nb; b++ {
			defIn[c][b] = bitset.New(n[c])
			defOut[c][b] = bitset.New(n[c])
			if b != rt.Entry().Index {
				// Start from "everything defined" and intersect down.
				for i := 0; i < n[c]; i++ {
					defIn[c][b].Add(i)
					defOut[c][b].Add(i)
				}
			} else {
				defIn[c][b].Add(0) // fp
				transfer(rt.Blocks[b], iloc.Class(c), defIn[c][b], defOut[c][b])
			}
		}
	}

	rpo := ReversePostorder(rt)
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == rt.Entry() {
				continue
			}
			for c := 0; c < iloc.NumClasses; c++ {
				in := defIn[c][b.Index]
				first := true
				for _, p := range b.Preds {
					if first {
						in.CopyFrom(defOut[c][p.Index])
						first = false
					} else {
						in.IntersectWith(defOut[c][p.Index])
					}
				}
				in.Add(0)
				out := bitset.New(n[c])
				transfer(b, iloc.Class(c), in, out)
				if !out.Equal(defOut[c][b.Index]) {
					defOut[c][b.Index].CopyFrom(out)
					changed = true
				}
			}
		}
	}

	// Final pass: every use must be covered by defIn plus prior defs in
	// the block.
	for _, b := range rt.Blocks {
		var cur [iloc.NumClasses]*bitset.Set
		for c := 0; c < iloc.NumClasses; c++ {
			cur[c] = defIn[c][b.Index].Copy()
		}
		for _, in := range b.Instrs {
			for _, u := range in.Uses() {
				if u.N != 0 && !cur[u.Class].Has(u.N) {
					return fmt.Errorf("cfg: %s/%s: %q uses %s before any definition on some path",
						rt.Name, b.Label, in, u)
				}
			}
			if d := in.Def(); d.Valid() && d.N != 0 {
				cur[d.Class].Add(d.N)
			}
		}
	}
	return nil
}

// transfer computes the defined-out set of a block from its defined-in
// set for one class.
func transfer(b *iloc.Block, c iloc.Class, in, out *bitset.Set) {
	out.CopyFrom(in)
	for _, instr := range b.Instrs {
		if d := instr.Def(); d.Valid() && d.Class == c && d.N != 0 {
			out.Add(d.N)
		}
	}
}
