package cfg

import (
	"repro/internal/dom"
	"repro/internal/iloc"
)

// Loop is a natural loop: a header block and the set of blocks in its
// body (header included). Loops sharing a header are merged.
type Loop struct {
	Header *iloc.Block
	Blocks []*iloc.Block
	Depth  int   // nesting depth of this loop (outermost = 1)
	Parent *Loop // innermost enclosing loop, nil for outermost
}

// Contains reports whether b is in the loop body.
func (l *Loop) Contains(b *iloc.Block) bool {
	for _, x := range l.Blocks {
		if x == b {
			return true
		}
	}
	return false
}

// FindLoops discovers the natural loops of the routine from back edges
// (edges whose target dominates their source) and merges loops with the
// same header. The dominator tree must correspond to the current CFG.
func FindLoops(rt *iloc.Routine, t *dom.Tree) []*Loop {
	byHeader := make(map[*iloc.Block]map[*iloc.Block]bool)
	for _, b := range rt.Blocks {
		for _, s := range b.Succs {
			if !t.Dominates(s.Index, b.Index) {
				continue
			}
			// Back edge b -> s: body = s plus all blocks reaching b
			// without passing through s.
			body := byHeader[s]
			if body == nil {
				body = map[*iloc.Block]bool{s: true}
				byHeader[s] = body
			}
			var stack []*iloc.Block
			if !body[b] {
				body[b] = true
				stack = append(stack, b)
			}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range x.Preds {
					if !body[p] {
						body[p] = true
						stack = append(stack, p)
					}
				}
			}
		}
	}
	var loops []*Loop
	for h, body := range byHeader {
		l := &Loop{Header: h}
		for _, b := range rt.Blocks { // deterministic order
			if body[b] {
				l.Blocks = append(l.Blocks, b)
			}
		}
		loops = append(loops, l)
	}
	// Deterministic loop order: by header index.
	for i := 0; i < len(loops); i++ {
		for j := i + 1; j < len(loops); j++ {
			if loops[j].Header.Index < loops[i].Header.Index {
				loops[i], loops[j] = loops[j], loops[i]
			}
		}
	}
	// Nesting: loop A encloses B if A contains B's header and A != B.
	for _, l := range loops {
		for _, m := range loops {
			if m == l || !m.Contains(l.Header) {
				continue
			}
			// m encloses l; pick the smallest such m as parent.
			if l.Parent == nil || len(m.Blocks) < len(l.Parent.Blocks) {
				l.Parent = m
			}
		}
	}
	for _, l := range loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	return loops
}

// Analyze builds the CFG, computes dominators, discovers loops and
// assigns each block its loop nesting depth (0 outside any loop). It
// returns the dominator tree and the loops for reuse by later phases.
func Analyze(rt *iloc.Routine) (*dom.Tree, []*Loop, error) {
	if err := Build(rt); err != nil {
		return nil, nil, err
	}
	t := dom.Compute(rt)
	loops := FindLoops(rt, t)
	for _, b := range rt.Blocks {
		b.Depth = 0
	}
	for _, l := range loops {
		for _, b := range l.Blocks {
			if l.Depth > b.Depth {
				b.Depth = l.Depth
			}
		}
	}
	return t, loops, nil
}
