// Package corpus scales internal/rgen into a corpus engine: thousands
// of deterministic, verified ILOC routines with controlled CFG shape,
// loop depth, call density and register pressure, generated from a
// compact spec plus a seed. A corpus is reproducible without being
// committed — the spec string is the corpus; WriteDir materializes it
// on disk with a manifest of content hashes so a replayed corpus is
// provably the one the spec names.
//
// The spec is a comma-separated key=value string:
//
//	count=N      generation units (default 64); a unit is one program
//	             (main plus leaf callees) or one leaf routine
//	seed=S       base seed (default 1); every unit derives its own
//	             seed from (S, index), so generation is order-free
//	depth=D      max loop/diamond nesting per routine (default 2)
//	regions=R    max top-level regions per routine (default 6)
//	calls=F      per-slot call probability (default 0.125); a negative
//	             value disables calls, making every unit one routine
//	pressure=P   live register pairs threaded to the exit (default 3)
//	words=W      static data words per array (default 16)
//
// Two corpora with the same canonical spec are byte-identical; two
// specs differing in any knob diverge. The driver and the serving
// stack replay corpora through driverbench -corpus and
// rallocload -corpus; cmd/rcorpus generates and inspects them.
package corpus

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/iloc"
	"repro/internal/rgen"
)

// Spec is the parsed form of a corpus description. The zero value is
// not a valid spec; use Default, ParseSpec, or fill the fields and let
// withDefaults normalize (Generate and String do).
type Spec struct {
	Count       int     // generation units
	Seed        int64   // base seed
	MaxDepth    int     // loop/diamond nesting bound
	Regions     int     // max top-level regions per routine
	CallDensity float64 // per-slot call probability; negative disables
	Pressure    int     // live register pairs threaded to the exit
	DataWords   int     // static data words per array
}

// Default returns the default spec: 64 units at seed 1.
func Default() Spec { return Spec{}.withDefaults() }

func (s Spec) withDefaults() Spec {
	if s.Count == 0 {
		s.Count = 64
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.MaxDepth == 0 {
		s.MaxDepth = 2
	}
	if s.Regions == 0 {
		s.Regions = 6
	}
	if s.CallDensity == 0 {
		s.CallDensity = 0.125
	}
	if s.Pressure == 0 {
		s.Pressure = 3
	}
	if s.DataWords == 0 {
		s.DataWords = 16
	}
	return s
}

// Validate rejects specs that cannot generate: non-positive counts or
// structural knobs. Pressure and call density have no upper bound —
// a pathological corpus is a legitimate one; the allocator is supposed
// to cope.
func (s Spec) Validate() error {
	n := s.withDefaults()
	if n.Count < 1 {
		return fmt.Errorf("corpus: count must be positive (got %d)", n.Count)
	}
	if n.MaxDepth < 1 || n.Regions < 1 || n.Pressure < 1 || n.DataWords < 1 {
		return fmt.Errorf("corpus: depth, regions, pressure and words must be positive (spec %s)", n.String())
	}
	return nil
}

// String renders the canonical spelling of the spec: every knob, in
// fixed order, defaults applied. Canonical strings are the identity of
// a corpus — the manifest records this form, and ParseSpec(s.String())
// round-trips.
func (s Spec) String() string {
	n := s.withDefaults()
	return fmt.Sprintf("count=%d,seed=%d,depth=%d,regions=%d,calls=%s,pressure=%d,words=%d",
		n.Count, n.Seed, n.MaxDepth, n.Regions,
		strconv.FormatFloat(n.CallDensity, 'g', -1, 64), n.Pressure, n.DataWords)
}

// ParseSpec reads a comma-separated key=value spec. Unknown keys and
// malformed values are errors; omitted keys take their defaults.
func ParseSpec(text string) (Spec, error) {
	s := Spec{}
	if strings.TrimSpace(text) == "" {
		return s.withDefaults(), nil
	}
	for _, part := range strings.Split(text, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Spec{}, fmt.Errorf("corpus: spec entry %q is not key=value", part)
		}
		var err error
		switch key {
		case "count":
			s.Count, err = strconv.Atoi(val)
		case "seed":
			s.Seed, err = strconv.ParseInt(val, 10, 64)
		case "depth":
			s.MaxDepth, err = strconv.Atoi(val)
		case "regions":
			s.Regions, err = strconv.Atoi(val)
		case "calls":
			s.CallDensity, err = strconv.ParseFloat(val, 64)
		case "pressure":
			s.Pressure, err = strconv.Atoi(val)
		case "words":
			s.DataWords, err = strconv.Atoi(val)
		default:
			return Spec{}, fmt.Errorf("corpus: unknown spec key %q (known: count, seed, depth, regions, calls, pressure, words)", key)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("corpus: bad value for %s: %v", key, err)
		}
	}
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Unit is one generation unit: a program of one or more routines
// (Routines[0] is the main; the rest are its leaf callees), its
// canonical text (iloc.Print of each routine, concatenated — the exact
// bytes WriteDir puts on disk) and that text's sha256.
type Unit struct {
	Name     string
	Routines []*iloc.Routine
	Text     string
	SHA256   string
}

// derive computes the seed of unit i from the base seed — a splitmix64
// step, so units are decorrelated and generation of any unit is
// independent of every other (order-free, resumable, parallelizable).
func derive(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// GenerateUnit generates unit i of the spec'd corpus, alone. Same
// (spec, i) always yields the same unit.
func GenerateUnit(spec Spec, i int) Unit {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(derive(spec.Seed, i)))
	name := fmt.Sprintf("c%06d", i)
	cfg := rgen.Config{
		Name:        name,
		LabelPrefix: fmt.Sprintf("u%d_", i),
		MaxDepth:    spec.MaxDepth,
		Regions:     1 + rng.Intn(spec.Regions),
		CallDensity: spec.CallDensity,
		Pressure:    spec.Pressure,
		DataWords:   spec.DataWords,
	}
	var routines []*iloc.Routine
	if spec.CallDensity > 0 {
		main, callees := rgen.GenerateProgram(rng, cfg)
		routines = append([]*iloc.Routine{main}, callees...)
	} else {
		routines = []*iloc.Routine{rgen.Generate(rng, cfg)}
	}
	var b strings.Builder
	for _, rt := range routines {
		b.WriteString(iloc.Print(rt))
		b.WriteString("\n")
	}
	text := b.String()
	sum := sha256.Sum256([]byte(text))
	return Unit{Name: name, Routines: routines, Text: text, SHA256: hex.EncodeToString(sum[:])}
}

// Generate materializes the whole corpus in memory, units in index
// order. Two calls with the same spec produce byte-identical units.
func Generate(spec Spec) ([]Unit, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	units := make([]Unit, spec.Count)
	for i := range units {
		units[i] = GenerateUnit(spec, i)
	}
	return units, nil
}

// Routines flattens a generated corpus into its routines, mains first
// within each unit, corpus order preserved.
func Routines(units []Unit) []*iloc.Routine {
	var out []*iloc.Routine
	for _, u := range units {
		out = append(out, u.Routines...)
	}
	return out
}

// ManifestName is the manifest's filename inside a corpus directory.
const ManifestName = "MANIFEST.json"

// ManifestVersion identifies the manifest schema.
const ManifestVersion = 1

// FileEntry describes one unit file in a written corpus.
type FileEntry struct {
	File     string   `json:"file"`
	Routines []string `json:"routines"`
	SHA256   string   `json:"sha256"`
	Blocks   int      `json:"blocks"`
	Instrs   int      `json:"instrs"`
	Calls    int      `json:"calls"`
}

// Manifest is the on-disk identity of a corpus: the canonical spec it
// was generated from, per-file content hashes, and a corpus hash over
// all of them. Load refuses a corpus whose files do not match.
type Manifest struct {
	Version  int         `json:"version"`
	Spec     string      `json:"spec"`
	Units    int         `json:"units"`
	Routines int         `json:"routines"`
	SHA256   string      `json:"sha256"`
	Files    []FileEntry `json:"files"`
}

func entryFor(u Unit) FileEntry {
	e := FileEntry{File: u.Name + ".iloc", SHA256: u.SHA256}
	for _, rt := range u.Routines {
		e.Routines = append(e.Routines, rt.Name)
		e.Blocks += len(rt.Blocks)
		for _, b := range rt.Blocks {
			e.Instrs += len(b.Instrs)
			for _, in := range b.Instrs {
				if in.Op == iloc.OpCall {
					e.Calls++
				}
			}
		}
	}
	return e
}

// corpusSHA folds the spec and every file hash into the corpus hash.
func corpusSHA(spec string, files []FileEntry) string {
	h := sha256.New()
	fmt.Fprintf(h, "spec %s\n", spec)
	for _, f := range files {
		fmt.Fprintf(h, "%s %s\n", f.SHA256, f.File)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// BuildManifest computes the manifest of a generated corpus.
func BuildManifest(spec Spec, units []Unit) *Manifest {
	m := &Manifest{Version: ManifestVersion, Spec: spec.String(), Units: len(units)}
	for _, u := range units {
		e := entryFor(u)
		m.Routines += len(e.Routines)
		m.Files = append(m.Files, e)
	}
	m.SHA256 = corpusSHA(m.Spec, m.Files)
	return m
}

// WriteDir generates the corpus and writes it under dir: one .iloc
// file per unit plus MANIFEST.json. The directory is created if
// needed; existing files are overwritten (a corpus directory is a
// cache of the spec, not a source of truth).
func WriteDir(dir string, spec Spec) (*Manifest, error) {
	spec = spec.withDefaults()
	units, err := Generate(spec)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("corpus: %v", err)
	}
	for _, u := range units {
		if err := os.WriteFile(filepath.Join(dir, u.Name+".iloc"), []byte(u.Text), 0o644); err != nil {
			return nil, fmt.Errorf("corpus: %v", err)
		}
	}
	m := BuildManifest(spec, units)
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("corpus: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), append(blob, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("corpus: %v", err)
	}
	return m, nil
}

// ReadManifest reads and sanity-checks a corpus directory's manifest.
func ReadManifest(dir string) (*Manifest, error) {
	blob, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("corpus: %v", err)
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("corpus: bad manifest in %s: %v", dir, err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("corpus: manifest version %d in %s (want %d)", m.Version, dir, ManifestVersion)
	}
	if len(m.Files) != m.Units {
		return nil, fmt.Errorf("corpus: manifest in %s lists %d files for %d units", dir, len(m.Files), m.Units)
	}
	return &m, nil
}

// Load reads a written corpus back: every unit file, hash-verified
// against the manifest and parsed. A corpus whose bytes do not match
// its manifest — edited, truncated, or generated by different code —
// is refused, so replay results always attach to a precise corpus
// identity.
func Load(dir string) (*Manifest, []Unit, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	files := append([]FileEntry(nil), m.Files...)
	sort.Slice(files, func(i, j int) bool { return files[i].File < files[j].File })
	units := make([]Unit, 0, len(files))
	for _, f := range files {
		blob, err := os.ReadFile(filepath.Join(dir, f.File))
		if err != nil {
			return nil, nil, fmt.Errorf("corpus: %v", err)
		}
		sum := sha256.Sum256(blob)
		if got := hex.EncodeToString(sum[:]); got != f.SHA256 {
			return nil, nil, fmt.Errorf("corpus: %s/%s does not match its manifest hash (got %s, manifest %s)", dir, f.File, got, f.SHA256)
		}
		routines, err := iloc.ParseProgram(string(blob))
		if err != nil {
			return nil, nil, fmt.Errorf("corpus: %s/%s: %v", dir, f.File, err)
		}
		units = append(units, Unit{
			Name:     strings.TrimSuffix(f.File, ".iloc"),
			Routines: routines,
			Text:     string(blob),
			SHA256:   f.SHA256,
		})
	}
	if got := corpusSHA(m.Spec, m.Files); got != m.SHA256 {
		return nil, nil, fmt.Errorf("corpus: %s: corpus hash mismatch (got %s, manifest %s)", dir, got, m.SHA256)
	}
	return m, units, nil
}
