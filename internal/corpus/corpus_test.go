package corpus

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/iloc"
)

func TestSpecCanonicalRoundtrip(t *testing.T) {
	def := Default()
	if got, want := def.String(), "count=64,seed=1,depth=2,regions=6,calls=0.125,pressure=3,words=16"; got != want {
		t.Fatalf("default spec = %q, want %q", got, want)
	}
	for _, text := range []string{
		"",
		"count=10",
		"count=1000,seed=42,depth=3,regions=8,calls=0.2,pressure=6,words=16",
		"calls=-1",
	} {
		s, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", text, err)
		}
		back, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s.String(), err)
		}
		if back != s {
			t.Fatalf("spec %q did not round-trip: %v vs %v", text, s, back)
		}
	}
}

func TestSpecParseErrors(t *testing.T) {
	for _, text := range []string{
		"count=zero",
		"bananas=3",
		"count",
		"count=-5",
		"depth=-1",
		"pressure=-2",
	} {
		if _, err := ParseSpec(text); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", text)
		}
	}
}

// TestGenerateDeterministic is the reproducibility contract: the spec
// string is the corpus. Same spec, byte-identical corpus; any knob
// changed, a different one.
func TestGenerateDeterministic(t *testing.T) {
	spec, err := ParseSpec("count=12,seed=7,calls=0.25")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("unit counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Text != b[i].Text || a[i].SHA256 != b[i].SHA256 {
			t.Fatalf("unit %d differs between identical generations", i)
		}
	}
	other := spec
	other.Seed = 8
	c, err := Generate(other)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Text == c[0].Text {
		t.Fatal("different seeds produced an identical unit")
	}
	// Units are order-free: generating one unit alone matches its place
	// in the full corpus.
	if u := GenerateUnit(spec, 5); u.Text != a[5].Text {
		t.Fatal("GenerateUnit(5) differs from Generate()[5]")
	}
}

// TestParseRoundtrip: every generated routine's printed form parses
// back to the identical printed form, so corpora survive the disk.
func TestParseRoundtrip(t *testing.T) {
	spec, _ := ParseSpec("count=20,seed=3")
	units, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range units {
		parsed, err := iloc.ParseProgram(u.Text)
		if err != nil {
			t.Fatalf("unit %s: %v", u.Name, err)
		}
		if len(parsed) != len(u.Routines) {
			t.Fatalf("unit %s: %d routines parsed, generated %d", u.Name, len(parsed), len(u.Routines))
		}
		for i, rt := range parsed {
			if err := iloc.Verify(rt, false); err != nil {
				t.Fatalf("unit %s routine %s: %v", u.Name, rt.Name, err)
			}
			if got, want := iloc.Print(rt), iloc.Print(u.Routines[i]); got != want {
				t.Fatalf("unit %s routine %s: print/parse/print not a fixpoint", u.Name, rt.Name)
			}
		}
	}
}

func TestLeafOnlyCorpus(t *testing.T) {
	spec, _ := ParseSpec("count=8,calls=-1")
	units, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range units {
		if len(u.Routines) != 1 {
			t.Fatalf("unit %s: %d routines with calls disabled, want 1", u.Name, len(u.Routines))
		}
		if e := entryFor(u); e.Calls != 0 {
			t.Fatalf("unit %s: %d call instructions with calls disabled", u.Name, e.Calls)
		}
	}
}

func TestWriteLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	spec, _ := ParseSpec("count=10,seed=11")
	written, err := WriteDir(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	if written.Units != 10 || len(written.Files) != 10 {
		t.Fatalf("manifest: %d units, %d files", written.Units, len(written.Files))
	}
	m, units, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.SHA256 != written.SHA256 || m.Spec != spec.String() {
		t.Fatalf("loaded manifest differs: %+v vs %+v", m, written)
	}
	gen, _ := Generate(spec)
	if len(units) != len(gen) {
		t.Fatalf("loaded %d units, generated %d", len(units), len(gen))
	}
	for i := range units {
		if units[i].Text != gen[i].Text {
			t.Fatalf("unit %d loaded differently than generated", i)
		}
	}

	// Tampering with a unit file must be detected by its hash.
	victim := filepath.Join(dir, m.Files[0].File)
	blob, _ := os.ReadFile(victim)
	if err := os.WriteFile(victim, append(blob, []byte("; tampered\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(dir); err == nil || !strings.Contains(err.Error(), "manifest hash") {
		t.Fatalf("tampered corpus loaded; err = %v", err)
	}
}
