// Package jobs is the asynchronous half of the allocation service: a
// bounded in-process job manager behind POST /v1/jobs. A submitted
// batch returns a job ID immediately — the connection is free the
// moment admission succeeds — and the batch runs in the background
// through the same driver engine and admission slots the synchronous
// endpoints use. Callers poll status, stream completed units in input
// order as they finish, and cancel mid-flight; the manager keeps
// finished jobs for a bounded retention window and remembers expired
// IDs (tombstones) so "gone because you were too slow" is
// distinguishable from "never existed".
//
// The lifecycle state machine:
//
//		queued ──────► running ──────► done
//		   │              │
//		   └── cancel ────┴─────────► canceled ──(retention)──► expired
//		                                  done ──(retention)──► expired
//
//	  - queued: admitted, waiting for a run slot (the Gate — shared with
//	    the sync paths, so async work cannot starve interactive traffic
//	    beyond its fair share of the same worker pool).
//	  - running: units are allocating; completed units are visible to
//	    pollers and streamers immediately (driver.Config.OnUnitDone).
//	  - done/canceled: terminal. Results stay readable until retention
//	    expires or the retained-job bound evicts the job (oldest first).
//	  - expired: the job is deleted; its ID answers "expired" (HTTP 410)
//	    from a bounded tombstone set, not "unknown" (404).
//
// Cancellation is cooperative and loses nothing already paid for:
// units finished before the cancel keep their results; the unit in
// flight is aborted by the allocator's own context checks; unstarted
// units report the cancellation error. That mirrors the driver's
// batch-cancellation contract one level up.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/driver"
	"repro/internal/telemetry"
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateCanceled }

// ErrQueueFull is Submit's admission verdict when the manager already
// holds MaxActive queued+running jobs; the HTTP layer turns it into
// 429 + Retry-After, keeping the service's only-200/4xx/429 contract.
var ErrQueueFull = errors.New("jobs: queue full")

// Config configures a Manager. Run is required.
type Config struct {
	// Run executes one job's units and reports each unit's result as it
	// lands (the driver engine with OnUnitDone wired). It must honor
	// ctx: cancellation aborts in-flight units and fails unstarted ones
	// with ctx.Err().
	Run func(ctx context.Context, units []driver.Unit, onUnit func(int, driver.UnitResult))
	// Gate, when non-nil, is the shared admission between async jobs
	// and the sync serving paths: a job acquires the gate before its
	// units run and releases it after, so jobs and requests draw from
	// one pool of run slots. Waiting respects ctx (a canceled job stops
	// waiting).
	Gate func(ctx context.Context) (release func(), err error)
	// MaxActive bounds queued+running jobs; Submit beyond it returns
	// ErrQueueFull (<= 0: 64).
	MaxActive int
	// Retention is how long a terminal job stays readable (<= 0: 15m).
	Retention time.Duration
	// MaxRetained bounds terminal jobs kept regardless of age; the
	// oldest-finished evict first (<= 0: 256).
	MaxRetained int
	// TombstoneLimit bounds remembered expired IDs (<= 0: 4096).
	TombstoneLimit int
	// OnUnitDone, when non-nil, observes each unit verdict after the
	// manager records it (the audit stream hooks here). Called from
	// allocation workers; must be concurrency-safe.
	OnUnitDone func(j *Job, i int, r driver.UnitResult)
	// Telemetry receives jobs.* counters and gauges.
	Telemetry *telemetry.Sink
	// Now is the clock (nil: time.Now). Tests pin it to drive retention.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxActive <= 0 {
		c.MaxActive = 64
	}
	if c.Retention <= 0 {
		c.Retention = 15 * time.Minute
	}
	if c.MaxRetained <= 0 {
		c.MaxRetained = 256
	}
	if c.TombstoneLimit <= 0 {
		c.TombstoneLimit = 4096
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Job is one submitted batch. All mutable state is guarded by mu;
// readers use Snapshot/WaitUnit.
type Job struct {
	// ID is the job's handle: "job-<seq>-<8 random hex>". The random
	// suffix keeps IDs from colliding across backend instances, so a
	// routing proxy can map an ID to the one backend that owns it.
	ID string
	// Payload is the submitter's opaque per-job data (the HTTP layer
	// stores per-unit response-shaping state here). Immutable after
	// Submit.
	Payload any

	mu   sync.Mutex
	cond *sync.Cond

	state     State
	canceled  bool
	created   time.Time
	started   time.Time
	finished  time.Time
	units     []driver.Unit
	results   []*driver.UnitResult
	completed int
	failed    int
	degraded  int
	cacheHits int

	cancel context.CancelFunc
}

// Snapshot is a point-in-time copy of a job's externally visible
// state — what GET /v1/jobs/{id} reports.
type Snapshot struct {
	ID        string
	State     State
	Units     int
	Completed int
	Failed    int
	Degraded  int
	CacheHits int
	Created   time.Time
	Started   time.Time
	Finished  time.Time
}

// Snapshot copies the job's current state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		ID:        j.ID,
		State:     j.state,
		Units:     len(j.units),
		Completed: j.completed,
		Failed:    j.failed,
		Degraded:  j.degraded,
		CacheHits: j.cacheHits,
		Created:   j.created,
		Started:   j.started,
		Finished:  j.finished,
	}
}

// Units returns the job's unit count (immutable after submit).
func (j *Job) Units() int { return len(j.units) }

// Unit returns input unit i (for response shaping; immutable).
func (j *Job) Unit(i int) driver.Unit { return j.units[i] }

// WaitUnit blocks until unit i has a result, the job reaches a
// terminal state, or ctx ends. It returns the result (nil only if the
// job went terminal without one — possible only for a job canceled
// before it started — or the wait was abandoned) and ctx's error when
// that is what ended the wait.
func (j *Job) WaitUnit(ctx context.Context, i int) (*driver.UnitResult, error) {
	if i < 0 || i >= len(j.units) {
		return nil, fmt.Errorf("jobs: unit %d out of range [0,%d)", i, len(j.units))
	}
	// A context end must wake the cond waiters; AfterFunc broadcasts
	// exactly once when (and if) ctx ends during the wait.
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.results[i] == nil && !j.state.Terminal() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		j.cond.Wait()
	}
	return j.results[i], ctx.Err()
}

// Result returns unit i's result if it has one (non-blocking).
func (j *Job) Result(i int) *driver.UnitResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < 0 || i >= len(j.results) {
		return nil
	}
	return j.results[i]
}

// Presence classifies a job lookup.
type Presence int

const (
	// Found: the job exists (any state).
	Found Presence = iota
	// Unknown: the ID was never issued (or predates the tombstone
	// window) — HTTP 404.
	Unknown
	// Expired: the job existed and was reaped by retention — HTTP 410,
	// so clients can tell "poll slower or raise retention" apart from
	// "wrong ID".
	Expired
)

// Manager owns the job table. Construct with NewManager; Close cancels
// every live job and waits for their runners.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // terminal job IDs in finish order (retention scan)
	active   int      // queued + running
	tombs    map[string]struct{}
	tombFIFO []string

	seq     atomic.Int64
	wg      sync.WaitGroup
	closing atomic.Bool
}

// NewManager builds a Manager.
func NewManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.Run == nil {
		return nil, errors.New("jobs: Config.Run is required")
	}
	return &Manager{
		cfg:   cfg,
		jobs:  make(map[string]*Job),
		tombs: make(map[string]struct{}),
	}, nil
}

// Submit admits one batch as a job, returning as soon as it is queued.
// The returned Job is live — its runner goroutine is already started.
func (m *Manager) Submit(units []driver.Unit, payload any) (*Job, error) {
	if len(units) == 0 {
		return nil, errors.New("jobs: empty batch")
	}
	if m.closing.Load() {
		return nil, ErrQueueFull
	}
	tel := m.cfg.Telemetry
	m.mu.Lock()
	m.reapLocked()
	if m.active >= m.cfg.MaxActive {
		m.mu.Unlock()
		tel.Count("jobs.rejected", 1)
		return nil, ErrQueueFull
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		ID:      m.newID(),
		Payload: payload,
		state:   StateQueued,
		created: m.cfg.Now(),
		units:   units,
		results: make([]*driver.UnitResult, len(units)),
		cancel:  cancel,
	}
	j.cond = sync.NewCond(&j.mu)
	m.jobs[j.ID] = j
	m.active++
	tel.Gauge("jobs.active").Set(int64(m.active))
	m.mu.Unlock()
	tel.Count("jobs.submitted", 1)

	m.wg.Add(1)
	go m.runJob(ctx, j)
	return j, nil
}

// newID mints a collision-resistant job ID. The sequence keeps IDs
// readable and orderable within one process; the random suffix keeps
// them unique across backend instances.
func (m *Manager) newID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// The process clock is a weak but workable fallback; IDs stay
		// unique within this process via the sequence either way.
		return fmt.Sprintf("job-%06d-%08x", m.seq.Add(1), m.cfg.Now().UnixNano()&0xffffffff)
	}
	return fmt.Sprintf("job-%06d-%s", m.seq.Add(1), hex.EncodeToString(b[:]))
}

// runJob is one job's runner: wait at the gate, run the batch with
// per-unit progress, finalize.
func (m *Manager) runJob(ctx context.Context, j *Job) {
	defer m.wg.Done()
	if gate := m.cfg.Gate; gate != nil {
		release, err := gate(ctx)
		if err != nil {
			// Canceled (or the gate refused) while queued: no unit ever
			// ran; every unit reports the cancellation.
			m.finalize(j, err)
			return
		}
		defer release()
	}
	if ctx.Err() != nil {
		m.finalize(j, ctx.Err())
		return
	}
	j.mu.Lock()
	j.state = StateRunning
	j.started = m.cfg.Now()
	j.mu.Unlock()

	m.cfg.Run(ctx, j.units, func(i int, r driver.UnitResult) {
		j.mu.Lock()
		if j.results[i] == nil {
			rc := r
			j.results[i] = &rc
			j.completed++
			if r.Err != nil {
				j.failed++
			}
			if r.Result != nil && r.Result.Degraded {
				j.degraded++
			}
			if r.CacheHit {
				j.cacheHits++
			}
		}
		j.cond.Broadcast()
		j.mu.Unlock()
		if m.cfg.OnUnitDone != nil {
			m.cfg.OnUnitDone(j, i, r)
		}
	})
	m.finalize(j, ctx.Err())
}

// finalize moves a job to its terminal state. fillErr, when non-nil,
// is written into every unit that never got a result (a job canceled
// before or during its run).
func (m *Manager) finalize(j *Job, fillErr error) {
	now := m.cfg.Now()
	j.mu.Lock()
	for i, r := range j.results {
		if r == nil {
			err := fillErr
			if err == nil {
				err = context.Canceled
			}
			j.results[i] = &driver.UnitResult{Name: j.units[i].Name, Err: err}
			j.completed++
			j.failed++
		}
	}
	if j.canceled {
		j.state = StateCanceled
	} else {
		j.state = StateDone
	}
	j.finished = now
	state := j.state
	j.cond.Broadcast()
	j.mu.Unlock()

	tel := m.cfg.Telemetry
	if state == StateCanceled {
		tel.Count("jobs.canceled", 1)
	} else {
		tel.Count("jobs.completed", 1)
	}
	m.mu.Lock()
	m.active--
	tel.Gauge("jobs.active").Set(int64(m.active))
	m.finished = append(m.finished, j.ID)
	// Bound retained terminal jobs: evict oldest-finished first.
	for over := len(m.finished) - m.cfg.MaxRetained; over > 0; over-- {
		m.expireLocked(m.finished[0])
		m.finished = m.finished[1:]
	}
	m.mu.Unlock()
}

// Get looks a job up, reaping expired ones first.
func (m *Manager) Get(id string) (*Job, Presence) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reapLocked()
	if j, ok := m.jobs[id]; ok {
		return j, Found
	}
	if _, ok := m.tombs[id]; ok {
		return nil, Expired
	}
	return nil, Unknown
}

// Cancel requests a job's cancellation. Idempotent; canceling a
// terminal job is a no-op. The returned Presence mirrors Get.
func (m *Manager) Cancel(id string) (*Job, Presence) {
	j, p := m.Get(id)
	if p != Found {
		return nil, p
	}
	j.mu.Lock()
	if !j.state.Terminal() {
		j.canceled = true
	}
	j.mu.Unlock()
	j.cancel()
	return j, Found
}

// reapLocked expires terminal jobs older than the retention window.
func (m *Manager) reapLocked() {
	cutoff := m.cfg.Now().Add(-m.cfg.Retention)
	for len(m.finished) > 0 {
		j, ok := m.jobs[m.finished[0]]
		if ok {
			j.mu.Lock()
			keep := j.finished.After(cutoff)
			j.mu.Unlock()
			if keep {
				break
			}
			m.expireLocked(m.finished[0])
		}
		m.finished = m.finished[1:]
	}
}

// expireLocked deletes a job and tombstones its ID (bounded FIFO).
func (m *Manager) expireLocked(id string) {
	if _, ok := m.jobs[id]; !ok {
		return
	}
	delete(m.jobs, id)
	m.tombs[id] = struct{}{}
	m.tombFIFO = append(m.tombFIFO, id)
	for len(m.tombFIFO) > m.cfg.TombstoneLimit {
		delete(m.tombs, m.tombFIFO[0])
		m.tombFIFO = m.tombFIFO[1:]
	}
	m.cfg.Telemetry.Count("jobs.expired", 1)
}

// Stats is the manager's aggregate health for the operational surface.
type Stats struct {
	Active   int `json:"active"`
	Retained int `json:"retained"`
}

// Stats snapshots active and retained job counts.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Active: m.active, Retained: len(m.finished)}
}

// Close cancels every live job and waits for all runners to finish.
// Terminal jobs stay readable (a draining daemon can still answer
// polls until the listener goes away).
func (m *Manager) Close() {
	m.closing.Store(true)
	m.mu.Lock()
	for _, j := range m.jobs {
		j.mu.Lock()
		terminal := j.state.Terminal()
		if !terminal {
			j.canceled = true
		}
		j.mu.Unlock()
		if !terminal {
			j.cancel()
		}
	}
	m.mu.Unlock()
	m.wg.Wait()
}
