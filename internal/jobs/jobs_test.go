package jobs

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/telemetry"
)

// fakeRun builds a Config.Run that completes units one by one, parking
// at per-unit gates so tests control exactly how far a job gets.
type fakeRun struct {
	mu      sync.Mutex
	gates   map[string]chan struct{} // unit name -> proceed signal
	started chan string              // unit names as they begin
}

func newFakeRun() *fakeRun {
	return &fakeRun{gates: make(map[string]chan struct{}), started: make(chan string, 64)}
}

// gate makes the named unit wait until released.
func (f *fakeRun) gate(name string) chan struct{} {
	ch := make(chan struct{})
	f.mu.Lock()
	f.gates[name] = ch
	f.mu.Unlock()
	return ch
}

// run processes units sequentially (like a 1-worker engine): a gated
// unit waits for release or ctx; once ctx ends, remaining units fail
// with ctx.Err() — the driver's cancellation contract.
func (f *fakeRun) run(ctx context.Context, units []driver.Unit, onUnit func(int, driver.UnitResult)) {
	for i, u := range units {
		if err := ctx.Err(); err != nil {
			onUnit(i, driver.UnitResult{Name: u.Name, Err: err})
			continue
		}
		select {
		case f.started <- u.Name:
		default:
		}
		f.mu.Lock()
		gate := f.gates[u.Name]
		f.mu.Unlock()
		if gate != nil {
			select {
			case <-gate:
			case <-ctx.Done():
				onUnit(i, driver.UnitResult{Name: u.Name, Err: ctx.Err()})
				continue
			}
		}
		onUnit(i, driver.UnitResult{Name: u.Name, Result: &core.Result{}, Wall: time.Millisecond})
	}
}

func mkUnits(names ...string) []driver.Unit {
	us := make([]driver.Unit, len(names))
	for i, n := range names {
		us[i] = driver.Unit{Name: n}
	}
	return us
}

func waitState(t *testing.T, j *Job, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := j.Snapshot()
		if s.State == want {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", j.ID, s.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestJobRunsToDoneWithOrderedResults(t *testing.T) {
	f := newFakeRun()
	m, err := NewManager(Config{Run: f.run})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	j, err := m.Submit(mkUnits("a", "b", "c"), "payload")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(j.ID, "job-") {
		t.Fatalf("ID = %q", j.ID)
	}
	if j.Payload != "payload" {
		t.Fatalf("payload lost: %v", j.Payload)
	}
	s := waitState(t, j, StateDone)
	if s.Completed != 3 || s.Failed != 0 {
		t.Fatalf("snapshot %+v", s)
	}
	for i, want := range []string{"a", "b", "c"} {
		r, err := j.WaitUnit(context.Background(), i)
		if err != nil || r == nil || r.Name != want || r.Err != nil {
			t.Fatalf("unit %d = %+v, %v; want %s", i, r, err, want)
		}
	}
	if j2, p := m.Get(j.ID); p != Found || j2 != j {
		t.Fatalf("Get after done: %v, %v", j2, p)
	}
	if _, p := m.Get("job-nonexistent"); p != Unknown {
		t.Fatalf("unknown ID classified %v", p)
	}
}

// TestCancelMidFlight is the satellite contract: cancel while unit b
// is in flight — a keeps its result, b and c report cancellation, and
// the job lands in canceled, all visible to a concurrent streamer.
func TestCancelMidFlight(t *testing.T) {
	f := newFakeRun()
	gateB := f.gate("b")
	reg := telemetry.NewRegistry()
	m, err := NewManager(Config{Run: f.run, Telemetry: &telemetry.Sink{Metrics: reg}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	j, err := m.Submit(mkUnits("a", "b", "c"), nil)
	if err != nil {
		t.Fatal(err)
	}

	// A streamer is already waiting on every unit while the job runs.
	type got struct {
		i   int
		r   *driver.UnitResult
		err error
	}
	results := make(chan got, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			r, err := j.WaitUnit(context.Background(), i)
			results <- got{i, r, err}
		}(i)
	}

	// Wait until b is in flight (a completed, b parked at its gate).
	deadline := time.After(5 * time.Second)
	for inFlight := ""; inFlight != "b"; {
		select {
		case inFlight = <-f.started:
		case <-deadline:
			t.Fatal("unit b never started")
		}
	}

	if _, p := m.Cancel(j.ID); p != Found {
		t.Fatalf("Cancel: %v", p)
	}
	close(gateB) // release b — its ctx already fired; either select arm is fine
	s := waitState(t, j, StateCanceled)
	if s.Completed != 3 {
		t.Fatalf("completed %d of 3 after cancel (unstarted units must report)", s.Completed)
	}

	byIdx := map[int]got{}
	for i := 0; i < 3; i++ {
		g := <-results
		byIdx[g.i] = g
	}
	// Unit a finished before the cancel: its result survives.
	if g := byIdx[0]; g.err != nil || g.r == nil || g.r.Err != nil || g.r.Result == nil {
		t.Fatalf("unit a lost its pre-cancel result: %+v err=%v", g.r, g.err)
	}
	// Unit c never started: it must report the cancellation.
	if g := byIdx[2]; g.r == nil || g.r.Err == nil || !errors.Is(g.r.Err, context.Canceled) {
		t.Fatalf("unit c = %+v, want context.Canceled", g.r)
	}
	if reg.Counter("jobs.canceled").Value() != 1 {
		t.Fatal("jobs.canceled not counted")
	}
	// Cancel of a terminal job is a harmless no-op.
	if _, p := m.Cancel(j.ID); p != Found {
		t.Fatalf("re-Cancel: %v", p)
	}
	if j.Snapshot().State != StateCanceled {
		t.Fatal("re-cancel changed state")
	}
}

func TestCancelWhileQueuedFailsEveryUnit(t *testing.T) {
	// A gate that never admits keeps the job queued.
	unblock := make(chan struct{})
	gate := func(ctx context.Context) (func(), error) {
		select {
		case <-unblock:
			return func() {}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := newFakeRun()
	m, err := NewManager(Config{Run: f.run, Gate: gate})
	if err != nil {
		t.Fatal(err)
	}
	defer close(unblock)
	defer m.Close()
	j, err := m.Submit(mkUnits("a", "b"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := j.Snapshot(); s.State != StateQueued {
		t.Fatalf("state %s before gate", s.State)
	}
	m.Cancel(j.ID)
	s := waitState(t, j, StateCanceled)
	if s.Completed != 2 || s.Failed != 2 {
		t.Fatalf("queued-cancel snapshot %+v, want both units failed", s)
	}
	if r := j.Result(0); r == nil || !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("unit 0 = %+v", r)
	}
}

func TestSubmitShedsBeyondMaxActive(t *testing.T) {
	f := newFakeRun()
	gate := f.gate("slow")
	defer close(gate)
	reg := telemetry.NewRegistry()
	m, err := NewManager(Config{Run: f.run, MaxActive: 2, Telemetry: &telemetry.Sink{Metrics: reg}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(mkUnits("slow"), nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Submit(mkUnits("x"), nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}
	if reg.Counter("jobs.rejected").Value() != 1 {
		t.Fatal("rejection not counted")
	}
}

func TestRetentionExpiresIntoTombstones(t *testing.T) {
	var now atomic.Int64
	now.Store(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano())
	clock := func() time.Time { return time.Unix(0, now.Load()) }
	f := newFakeRun()
	reg := telemetry.NewRegistry()
	m, err := NewManager(Config{
		Run: f.run, Retention: time.Minute, TombstoneLimit: 1,
		Telemetry: &telemetry.Sink{Metrics: reg}, Now: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	j1, _ := m.Submit(mkUnits("a"), nil)
	waitState(t, j1, StateDone)
	now.Add(int64(30 * time.Second)) // j2 finishes 30s after j1
	j2, _ := m.Submit(mkUnits("b"), nil)
	waitState(t, j2, StateDone)

	// Within retention: still found.
	if _, p := m.Get(j1.ID); p != Found {
		t.Fatalf("fresh job: %v", p)
	}
	now.Add(int64(45 * time.Second)) // j1 is 75s old (expired), j2 45s (kept)
	if _, p := m.Get(j1.ID); p != Expired {
		t.Fatalf("after retention: %v, want Expired (the 410 answer)", p)
	}
	if _, p := m.Get(j2.ID); p != Found {
		t.Fatalf("within retention: %v, want Found", p)
	}
	if reg.Counter("jobs.expired").Value() != 1 {
		t.Fatalf("jobs.expired = %d", reg.Counter("jobs.expired").Value())
	}
	now.Add(int64(time.Minute)) // j2 expires too
	// TombstoneLimit=1: j2's tombstone pushes out j1's, so the oldest ID
	// degrades to Unknown — bounded memory wins over history.
	if _, p := m.Get(j2.ID); p != Expired {
		t.Fatalf("retained tombstone: %v, want Expired", p)
	}
	if _, p := m.Get(j1.ID); p != Unknown {
		t.Fatalf("evicted tombstone: %v, want Unknown", p)
	}
	if st := m.Stats(); st.Active != 0 || st.Retained != 0 {
		t.Fatalf("stats %+v after full expiry", st)
	}
}

func TestMaxRetainedEvictsOldestFinished(t *testing.T) {
	f := newFakeRun()
	m, err := NewManager(Config{Run: f.run, MaxRetained: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	j1, _ := m.Submit(mkUnits("a"), nil)
	waitState(t, j1, StateDone)
	j2, _ := m.Submit(mkUnits("b"), nil)
	waitState(t, j2, StateDone)
	if _, p := m.Get(j1.ID); p != Expired {
		t.Fatalf("evicted job: %v, want Expired", p)
	}
	if _, p := m.Get(j2.ID); p != Found {
		t.Fatalf("newest job: %v, want Found", p)
	}
}

func TestWaitUnitHonorsCallerContext(t *testing.T) {
	f := newFakeRun()
	gate := f.gate("slow")
	defer close(gate)
	m, err := NewManager(Config{Run: f.run})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	j, _ := m.Submit(mkUnits("slow"), nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := j.WaitUnit(ctx, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitUnit: %v, want deadline", err)
	}
	if _, err := j.WaitUnit(context.Background(), 99); err == nil {
		t.Fatal("out-of-range unit accepted")
	}
}

func TestOnUnitDoneSeesEveryVerdict(t *testing.T) {
	f := newFakeRun()
	var seen atomic.Int64
	m, err := NewManager(Config{
		Run: f.run,
		OnUnitDone: func(j *Job, i int, r driver.UnitResult) {
			if j == nil || r.Name == "" {
				panic("bad callback args")
			}
			seen.Add(1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	j, _ := m.Submit(mkUnits("a", "b"), nil)
	waitState(t, j, StateDone)
	if seen.Load() != 2 {
		t.Fatalf("OnUnitDone fired %d times, want 2", seen.Load())
	}
}

func TestCloseCancelsLiveJobs(t *testing.T) {
	f := newFakeRun()
	f.gate("stuck") // never released
	m, err := NewManager(Config{Run: f.run})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := m.Submit(mkUnits("stuck"), nil)
	done := make(chan struct{})
	go func() { m.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a live job")
	}
	if s := j.Snapshot(); s.State != StateCanceled {
		t.Fatalf("state after Close: %s", s.State)
	}
	if _, err := m.Submit(mkUnits("x"), nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit after Close: %v", err)
	}
}

func TestGateIsAcquiredAndReleased(t *testing.T) {
	var held atomic.Int64
	gate := func(ctx context.Context) (func(), error) {
		held.Add(1)
		return func() { held.Add(-1) }, nil
	}
	f := newFakeRun()
	m, err := NewManager(Config{Run: f.run, Gate: gate})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	j, _ := m.Submit(mkUnits("a"), nil)
	waitState(t, j, StateDone)
	deadline := time.Now().Add(time.Second)
	for held.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("gate never released")
		}
		time.Sleep(time.Millisecond)
	}
}
