// Package liveness computes live-in/live-out sets for one register class
// of a routine with an iterative bitset worklist.
//
// The paper's renumber uses the sparse data-flow evaluation graphs of
// Choi, Cytron and Ferrante for the same job; the dense iterative solver
// reaches the identical fixpoint (see DESIGN.md §4 on substitutions).
package liveness

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/cfg"
	"repro/internal/iloc"
)

// Info holds the liveness solution for one register class. All sets are
// indexed by Block.Index and sized to the routine's register space for
// the class; the reserved register 0 never appears.
type Info struct {
	Class   iloc.Class
	LiveIn  []*bitset.Set
	LiveOut []*bitset.Set
	UEVar   []*bitset.Set // upward-exposed uses per block
	Kill    []*bitset.Set // registers defined per block
}

// Compute solves liveness for class c. CFG edges must be built, and the
// code must not contain φ-nodes (renumber removes them before liveness is
// next needed).
func Compute(rt *iloc.Routine, c iloc.Class) *Info {
	nb := len(rt.Blocks)
	n := rt.NumRegs(c)
	info := &Info{
		Class:   c,
		LiveIn:  make([]*bitset.Set, nb),
		LiveOut: make([]*bitset.Set, nb),
		UEVar:   make([]*bitset.Set, nb),
		Kill:    make([]*bitset.Set, nb),
	}
	for i := 0; i < nb; i++ {
		info.LiveIn[i] = bitset.New(n)
		info.LiveOut[i] = bitset.New(n)
		info.UEVar[i] = bitset.New(n)
		info.Kill[i] = bitset.New(n)
	}

	for _, b := range rt.Blocks {
		ue, kill := info.UEVar[b.Index], info.Kill[b.Index]
		for _, in := range b.Instrs {
			if in.Op == iloc.OpPhi {
				panic(fmt.Sprintf("liveness: φ-node in %s/%s", rt.Name, b.Label))
			}
			for _, u := range in.Uses() {
				if u.Class == c && u.N != 0 && !kill.Has(u.N) {
					ue.Add(u.N)
				}
			}
			if d := in.Def(); d.Valid() && d.Class == c && d.N != 0 {
				kill.Add(d.N)
			}
		}
	}

	// Backward problem: iterate blocks in postorder (reverse RPO) until
	// the fixpoint.
	rpo := cfg.ReversePostorder(rt)
	tmp := bitset.New(n)
	for changed := true; changed; {
		changed = false
		for i := len(rpo) - 1; i >= 0; i-- {
			b := rpo[i]
			out := info.LiveOut[b.Index]
			for _, s := range b.Succs {
				if out.UnionWith(info.LiveIn[s.Index]) {
					changed = true
				}
			}
			// LiveIn = UEVar ∪ (LiveOut − Kill)
			tmp.CopyFrom(out)
			tmp.DifferenceWith(info.Kill[b.Index])
			tmp.UnionWith(info.UEVar[b.Index])
			if !tmp.Equal(info.LiveIn[b.Index]) {
				info.LiveIn[b.Index].CopyFrom(tmp)
				changed = true
			}
		}
	}
	return info
}

// LiveAcross reports whether register r is live out of block b.
func (in *Info) LiveAcross(b *iloc.Block, r int) bool {
	return in.LiveOut[b.Index].Has(r)
}
