package liveness

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/iloc"
)

func build(t *testing.T, src string) *iloc.Routine {
	t.Helper()
	rt := iloc.MustParse(src)
	if err := cfg.Build(rt); err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestStraightLine(t *testing.T) {
	rt := build(t, `
routine f()
a:
    ldi r1, 1
    ldi r2, 2
    add r3, r1, r2
    retr r3
`)
	li := Compute(rt, iloc.ClassInt)
	b := rt.Blocks[0].Index
	if !li.LiveIn[b].Empty() {
		t.Fatalf("live-in of entry should be empty: %v", li.LiveIn[b])
	}
	if !li.LiveOut[b].Empty() {
		t.Fatal("live-out of exit block should be empty")
	}
	if !li.Kill[b].Has(1) || !li.Kill[b].Has(2) || !li.Kill[b].Has(3) {
		t.Fatal("kill set wrong")
	}
	if !li.UEVar[b].Empty() {
		t.Fatalf("no upward-exposed uses expected: %v", li.UEVar[b])
	}
}

func TestLoopCarried(t *testing.T) {
	rt := build(t, `
routine f(r1)
entry:
    getparam r1, 0
    ldi r2, 0
    jmp loop
loop:
    addi r2, r2, 1
    sub r3, r1, r2
    br gt r3, loop, done
done:
    retr r2
`)
	li := Compute(rt, iloc.ClassInt)
	loop := rt.BlockByLabel("loop").Index
	// r1 and r2 are live around the loop.
	if !li.LiveIn[loop].Has(1) || !li.LiveIn[loop].Has(2) {
		t.Fatalf("live-in(loop) = %v, want r1 and r2", li.LiveIn[loop])
	}
	if !li.LiveOut[loop].Has(1) || !li.LiveOut[loop].Has(2) {
		t.Fatalf("live-out(loop) = %v", li.LiveOut[loop])
	}
	// r3 is consumed by the branch in the same block: not live-in.
	if li.LiveIn[loop].Has(3) {
		t.Fatal("r3 must not be live into loop")
	}
	done := rt.BlockByLabel("done").Index
	if !li.LiveIn[done].Has(2) || li.LiveIn[done].Has(1) {
		t.Fatalf("live-in(done) = %v, want only r2", li.LiveIn[done])
	}
	entry := rt.BlockByLabel("entry").Index
	if !li.LiveIn[entry].Empty() {
		t.Fatalf("entry live-in should be empty, got %v", li.LiveIn[entry])
	}
}

func TestBranchArms(t *testing.T) {
	rt := build(t, `
routine f(r1)
entry:
    getparam r1, 0
    ldi r2, 7
    br gt r1, a, b
a:
    retr r2
b:
    retr r1
`)
	li := Compute(rt, iloc.ClassInt)
	entry := rt.BlockByLabel("entry").Index
	if !li.LiveOut[entry].Has(1) || !li.LiveOut[entry].Has(2) {
		t.Fatalf("live-out(entry) = %v", li.LiveOut[entry])
	}
	a := rt.BlockByLabel("a").Index
	if !li.LiveIn[a].Has(2) || li.LiveIn[a].Has(1) {
		t.Fatalf("live-in(a) = %v", li.LiveIn[a])
	}
}

func TestClassesIndependent(t *testing.T) {
	rt := build(t, `
routine f()
a:
    ldi r1, 1
    fldi f1, 1.0
    jmp b
b:
    fadd f2, f1, f1
    retr r1
`)
	lInt := Compute(rt, iloc.ClassInt)
	lFlt := Compute(rt, iloc.ClassFlt)
	bIdx := rt.BlockByLabel("b").Index
	if !lInt.LiveIn[bIdx].Has(1) {
		t.Fatal("r1 live into b")
	}
	if !lFlt.LiveIn[bIdx].Has(1) {
		t.Fatal("f1 live into b")
	}
	if lInt.LiveIn[bIdx].Has(2) || lFlt.LiveIn[bIdx].Has(2) {
		t.Fatal("unexpected extra liveness")
	}
	if !lFlt.Kill[bIdx].Has(2) {
		t.Fatal("f2 killed in b")
	}
}

func TestFPIgnored(t *testing.T) {
	rt := build(t, `
routine f()
a:
    addi r1, fp, 8
    load r2, r1
    retr r2
`)
	li := Compute(rt, iloc.ClassInt)
	b := rt.Blocks[0].Index
	if li.UEVar[b].Has(0) || li.LiveIn[b].Has(0) {
		t.Fatal("fp (r0) must not participate in liveness")
	}
}

func TestLiveAcross(t *testing.T) {
	rt := build(t, `
routine f()
a:
    ldi r1, 1
    jmp b
b:
    retr r1
`)
	li := Compute(rt, iloc.ClassInt)
	if !li.LiveAcross(rt.BlockByLabel("a"), 1) {
		t.Fatal("r1 live across a")
	}
	if li.LiveAcross(rt.BlockByLabel("b"), 1) {
		t.Fatal("r1 not live out of b")
	}
}

func TestPanicsOnPhi(t *testing.T) {
	rt := build(t, `
routine f()
a:
    ldi r1, 1
    retr r1
`)
	rt.Blocks[0].Instrs = append([]*iloc.Instr{
		{Op: iloc.OpPhi, Dst: iloc.IntReg(1), Phi: &iloc.Phi{Args: []iloc.Reg{iloc.IntReg(1)}}},
	}, rt.Blocks[0].Instrs...)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on φ")
		}
	}()
	Compute(rt, iloc.ClassInt)
}
