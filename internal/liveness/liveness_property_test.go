package liveness_test

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/cfg"
	"repro/internal/iloc"
	"repro/internal/liveness"
	"repro/internal/rgen"
)

// Property: on definite-assignment-clean programs nothing is live into
// the entry block.
func TestPropertyEntryLiveInEmpty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rt := rgen.Generate(rand.New(rand.NewSource(seed)), rgen.Config{})
		if err := cfg.Build(rt); err != nil {
			t.Fatal(err)
		}
		if err := cfg.CheckDefined(rt); err != nil {
			t.Fatalf("seed %d: generator produced unclean program: %v", seed, err)
		}
		for _, c := range []iloc.Class{iloc.ClassInt, iloc.ClassFlt} {
			li := liveness.Compute(rt, c)
			if !li.LiveIn[rt.Entry().Index].Empty() {
				t.Fatalf("seed %d class %v: live-in(entry) = %v",
					seed, c, li.LiveIn[rt.Entry().Index])
			}
		}
	}
}

// Property: the fixpoint satisfies the dataflow equations —
// LiveOut(b) = ∪ LiveIn(s) over successors, and
// LiveIn(b) = UEVar(b) ∪ (LiveOut(b) − Kill(b)).
func TestPropertyDataflowEquationsHold(t *testing.T) {
	for seed := int64(25); seed < 45; seed++ {
		rt := rgen.Generate(rand.New(rand.NewSource(seed)), rgen.Config{Regions: 5})
		if err := cfg.Build(rt); err != nil {
			t.Fatal(err)
		}
		for _, c := range []iloc.Class{iloc.ClassInt, iloc.ClassFlt} {
			li := liveness.Compute(rt, c)
			n := rt.NumRegs(c)
			for _, b := range rt.Blocks {
				out := bitset.New(n)
				for _, s := range b.Succs {
					out.UnionWith(li.LiveIn[s.Index])
				}
				if !out.Equal(li.LiveOut[b.Index]) {
					t.Fatalf("seed %d %s class %v: LiveOut equation violated", seed, b.Label, c)
				}
				in := li.LiveOut[b.Index].Copy()
				in.DifferenceWith(li.Kill[b.Index])
				in.UnionWith(li.UEVar[b.Index])
				if !in.Equal(li.LiveIn[b.Index]) {
					t.Fatalf("seed %d %s class %v: LiveIn equation violated", seed, b.Label, c)
				}
			}
		}
	}
}

// Property: liveness agrees with a brute-force path search — r is live
// into b iff some path from b reaches a use of r before any definition.
func TestPropertyAgainstBruteForce(t *testing.T) {
	for seed := int64(45); seed < 55; seed++ {
		rt := rgen.Generate(rand.New(rand.NewSource(seed)), rgen.Config{Regions: 4})
		if err := cfg.Build(rt); err != nil {
			t.Fatal(err)
		}
		c := iloc.ClassInt
		li := liveness.Compute(rt, c)
		n := rt.NumRegs(c)

		// bruteLiveIn(b, r): DFS over blocks; within a block, scan for use
		// before def.
		var bruteLiveIn func(b *iloc.Block, r int, seen []bool) bool
		bruteLiveIn = func(b *iloc.Block, r int, seen []bool) bool {
			if seen[b.Index] {
				return false
			}
			seen[b.Index] = true
			for _, in := range b.Instrs {
				for _, u := range in.Uses() {
					if u.Class == c && u.N == r {
						return true
					}
				}
				if d := in.Def(); d.Valid() && d.Class == c && d.N == r {
					return false
				}
			}
			for _, s := range b.Succs {
				if bruteLiveIn(s, r, seen) {
					return true
				}
			}
			return false
		}

		for _, b := range rt.Blocks {
			for r := 1; r < n; r++ {
				want := bruteLiveIn(b, r, make([]bool, len(rt.Blocks)))
				if got := li.LiveIn[b.Index].Has(r); got != want {
					t.Fatalf("seed %d: LiveIn(%s, r%d) = %v, brute force says %v",
						seed, b.Label, r, got, want)
				}
			}
		}
	}
}
