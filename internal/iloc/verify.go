package iloc

import (
	"fmt"
)

// Verify checks the structural invariants of a routine:
//
//   - every block ends in a terminator, except that a non-final block may
//     fall through to the next block;
//   - branch and jump targets name existing blocks;
//   - lda/rload/frload labels name existing data items, and rload/frload
//     only read read-only data;
//   - operand registers have the class the op table demands, fp is never
//     written, and register numbers are within the routine's space;
//   - φ-nodes appear only when allowSSA is set, only at the head of a
//     block, with one argument per predecessor.
//
// It returns the first violation found.
func Verify(r *Routine, allowSSA bool) error {
	if len(r.Blocks) == 0 {
		return fmt.Errorf("%s: no blocks", r.Name)
	}
	seen := make(map[string]bool, len(r.Blocks))
	for _, b := range r.Blocks {
		if seen[b.Label] {
			return fmt.Errorf("%s: duplicate block label %q", r.Name, b.Label)
		}
		seen[b.Label] = true
	}
	for bi, b := range r.Blocks {
		inPhiHead := true
		for ii, in := range b.Instrs {
			where := fmt.Sprintf("%s/%s[%d] %q", r.Name, b.Label, ii, in)
			if in.Op >= numOps {
				return fmt.Errorf("%s: bad opcode", where)
			}
			if in.Op == OpPhi {
				if !allowSSA {
					return fmt.Errorf("%s: φ outside SSA form", where)
				}
				if !inPhiHead {
					return fmt.Errorf("%s: φ not at block head", where)
				}
				if in.Phi == nil {
					return fmt.Errorf("%s: φ without operands", where)
				}
				if len(b.Preds) > 0 && len(in.Phi.Args) != len(b.Preds) {
					return fmt.Errorf("%s: φ has %d args for %d preds", where, len(in.Phi.Args), len(b.Preds))
				}
				for _, a := range in.Phi.Args {
					if err := checkReg(r, a, in.Dst.Class); err != nil {
						return fmt.Errorf("%s: %w", where, err)
					}
				}
				if err := checkReg(r, in.Dst, in.Dst.Class); err != nil {
					return fmt.Errorf("%s: %w", where, err)
				}
				if in.Dst.IsFP() {
					return fmt.Errorf("%s: φ writes fp", where)
				}
				continue
			}
			inPhiHead = false
			if in.Op.IsTerminator() && ii != len(b.Instrs)-1 {
				return fmt.Errorf("%s: terminator not last in block", where)
			}
			if in.Op.HasDst() {
				if err := checkReg(r, in.Dst, in.Op.DstClass()); err != nil {
					return fmt.Errorf("%s: dst: %w", where, err)
				}
				if in.Dst.IsFP() {
					return fmt.Errorf("%s: writes fp", where)
				}
			}
			for i := 0; i < in.Op.NSrc(); i++ {
				if err := checkReg(r, in.Src[i], in.Op.SrcClass(i)); err != nil {
					return fmt.Errorf("%s: src%d: %w", where, i, err)
				}
			}
			switch in.Op {
			case OpJmp:
				if r.BlockByLabel(in.Label) == nil {
					return fmt.Errorf("%s: jump to unknown label %q", where, in.Label)
				}
			case OpBr:
				if in.Cond == CondNone {
					return fmt.Errorf("%s: br without condition", where)
				}
				if r.BlockByLabel(in.Label) == nil || r.BlockByLabel(in.Label2) == nil {
					return fmt.Errorf("%s: branch to unknown label", where)
				}
			case OpLda:
				if r.DataByLabel(in.Label) == nil {
					return fmt.Errorf("%s: lda of unknown data %q", where, in.Label)
				}
			case OpRload, OpFrload:
				d := r.DataByLabel(in.Label)
				if d == nil {
					return fmt.Errorf("%s: load from unknown data %q", where, in.Label)
				}
				if !d.ReadOnly {
					return fmt.Errorf("%s: %s from writable data %q", where, in.Op, in.Label)
				}
				if in.Imm < 0 || in.Imm/8 >= int64(d.Words) {
					return fmt.Errorf("%s: offset %d outside %q", where, in.Imm, in.Label)
				}
			case OpGetparam:
				if err := checkParamIndex(r, in.Imm, ClassInt); err != nil {
					return fmt.Errorf("%s: %w", where, err)
				}
			case OpFgetparam:
				if err := checkParamIndex(r, in.Imm, ClassFlt); err != nil {
					return fmt.Errorf("%s: %w", where, err)
				}
			case OpSetarg, OpFsetarg, OpLdisp:
				if in.Imm < 0 || in.Imm > 255 {
					return fmt.Errorf("%s: slot index %d out of range", where, in.Imm)
				}
			case OpCall:
				if in.Label == "" {
					return fmt.Errorf("%s: call without a target", where)
				}
				// The target routine is resolved at link/execution time.
			}
		}
		if b.Terminator() == nil && bi == len(r.Blocks)-1 {
			return fmt.Errorf("%s: final block %s does not end in a terminator", r.Name, b.Label)
		}
	}
	return nil
}

func checkReg(r *Routine, reg Reg, want Class) error {
	if !reg.Valid() {
		return fmt.Errorf("missing register operand")
	}
	if reg.Class != want {
		return fmt.Errorf("register %s has class %s, want %s", reg, reg.Class, want)
	}
	if !r.Allocated && reg.N >= r.NumRegs(reg.Class) {
		return fmt.Errorf("register %s outside virtual space [0,%d)", reg, r.NumRegs(reg.Class))
	}
	return nil
}

func checkParamIndex(r *Routine, i int64, want Class) error {
	if i < 0 || i >= int64(len(r.Params)) {
		return fmt.Errorf("parameter index %d out of range", i)
	}
	if r.Params[i].Reg.Class != want {
		return fmt.Errorf("parameter %d has class %s", i, r.Params[i].Reg.Class)
	}
	return nil
}
