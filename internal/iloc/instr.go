package iloc

import (
	"strconv"
	"strings"
)

// Reg names a register: a class plus a number. Before allocation the
// number is a virtual register id; after allocation it is a physical
// register (color). Integer register 0 is the reserved frame pointer in
// both spaces.
type Reg struct {
	Class Class
	N     int
}

// NoReg is the absent register.
var NoReg = Reg{Class: noClass, N: -1}

// FP is the reserved frame pointer register.
var FP = Reg{Class: ClassInt, N: 0}

// Valid reports whether r names a register.
func (r Reg) Valid() bool { return r != NoReg }

// IsFP reports whether r is the reserved frame pointer.
func (r Reg) IsFP() bool { return r == FP }

// String renders r in assembly syntax: r4, f7, or fp.
func (r Reg) String() string {
	switch {
	case !r.Valid():
		return "<none>"
	case r.IsFP():
		return "fp"
	case r.Class == ClassInt:
		return "r" + strconv.Itoa(r.N)
	default:
		return "f" + strconv.Itoa(r.N)
	}
}

// IntReg returns the integer register with number n.
func IntReg(n int) Reg { return Reg{Class: ClassInt, N: n} }

// FltReg returns the float register with number n.
func FltReg(n int) Reg { return Reg{Class: ClassFlt, N: n} }

// Phi holds the variable-arity operand list of a φ-node. Args[i] is the
// value flowing in from the i'th predecessor of the node's block (indices
// track Block.Preds).
type Phi struct {
	Args []Reg
}

// Instr is a single ILOC instruction. Fields beyond Op are meaningful
// only when the op's shape says so (see the Op accessors).
type Instr struct {
	Op     Op
	Dst    Reg    // result register, NoReg if none
	Src    [2]Reg // register sources (Op.NSrc of them)
	Imm    int64  // integer immediate
	FImm   float64
	Label  string // primary label (lda/rload/jmp/br true-target)
	Label2 string // br false-target
	Cond   Cond   // br condition

	Phi *Phi // operands of a φ-node (Op == OpPhi only)

	// IsSplit marks a copy inserted by renumber to isolate values with
	// different rematerialization tags; only conservative coalescing may
	// remove it.
	IsSplit bool
	// IsSpill marks loads/stores/remats inserted by the spill phase;
	// their targets are tiny live ranges that must not be spilled again.
	IsSpill bool
}

// Uses returns the register sources of the instruction. For a φ it
// returns the argument list.
func (in *Instr) Uses() []Reg {
	if in.Op == OpPhi {
		return in.Phi.Args
	}
	return in.Src[:in.Op.NSrc()]
}

// Def returns the register the instruction defines, or NoReg.
func (in *Instr) Def() Reg {
	if in.Op.HasDst() {
		return in.Dst
	}
	return NoReg
}

// Clone returns a deep copy of the instruction.
func (in *Instr) Clone() *Instr {
	c := *in
	if in.Phi != nil {
		c.Phi = &Phi{Args: append([]Reg(nil), in.Phi.Args...)}
	}
	return &c
}

// String renders the instruction in the canonical assembly syntax used by
// the parser and printer.
func (in *Instr) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	ops := make([]string, 0, 4)
	switch in.Op {
	case OpPhi:
		ops = append(ops, in.Dst.String())
		for _, a := range in.Phi.Args {
			ops = append(ops, a.String())
		}
	case OpBr:
		b.WriteByte(' ')
		b.WriteString(in.Cond.String())
		ops = append(ops, in.Src[0].String(), in.Label, in.Label2)
	case OpJmp:
		ops = append(ops, in.Label)
	default:
		if in.Op.HasDst() {
			ops = append(ops, in.Dst.String())
		}
		for i := 0; i < in.Op.NSrc(); i++ {
			ops = append(ops, in.Src[i].String())
		}
		if in.Op.HasLabel() {
			ops = append(ops, in.Label)
		}
		if in.Op.HasImm() {
			ops = append(ops, strconv.FormatInt(in.Imm, 10))
		}
		if in.Op.HasFImm() {
			ops = append(ops, formatFloat(in.FImm))
		}
	}
	if len(ops) > 0 {
		b.WriteByte(' ')
		b.WriteString(strings.Join(ops, ", "))
	}
	if in.IsSplit {
		b.WriteString("    ; split")
	}
	if in.IsSpill {
		b.WriteString("    ; spill")
	}
	return b.String()
}

func formatFloat(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// Make sure the token reads as a float (round-trips through the parser
	// as a float immediate, and as a C double in the translator).
	if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "Inf") && !strings.Contains(s, "NaN") {
		s += ".0"
	}
	return s
}

// Convenience constructors used by the builder, the spill phase and tests.

// MakeLdi builds "ldi rD, imm".
func MakeLdi(dst Reg, imm int64) *Instr { return &Instr{Op: OpLdi, Dst: dst, Imm: imm} }

// MakeFldi builds "fldi fD, fimm".
func MakeFldi(dst Reg, f float64) *Instr { return &Instr{Op: OpFldi, Dst: dst, FImm: f} }

// MakeLda builds "lda rD, label".
func MakeLda(dst Reg, label string) *Instr { return &Instr{Op: OpLda, Dst: dst, Label: label} }

// MakeMov builds the copy appropriate to the class of dst.
func MakeMov(dst, src Reg) *Instr {
	op := OpMov
	if dst.Class == ClassFlt {
		op = OpFmov
	}
	return &Instr{Op: op, Dst: dst, Src: [2]Reg{src, NoReg}}
}

// MakeBin builds a three-register instruction.
func MakeBin(op Op, dst, a, b Reg) *Instr { return &Instr{Op: op, Dst: dst, Src: [2]Reg{a, b}} }

// MakeUn builds a two-register instruction.
func MakeUn(op Op, dst, a Reg) *Instr { return &Instr{Op: op, Dst: dst, Src: [2]Reg{a, NoReg}} }

// MakeImm builds a register+immediate instruction such as addi.
func MakeImm(op Op, dst, a Reg, imm int64) *Instr {
	return &Instr{Op: op, Dst: dst, Src: [2]Reg{a, NoReg}, Imm: imm}
}
