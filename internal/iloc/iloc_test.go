package iloc

import (
	"strings"
	"testing"
)

const sampleSrc = `
routine sumabs(r1, r2)   ; r1 = base pointer param, r2 = count param
data tab ro 2 = 1.5 -2.5
entry:
    ldi r3, 8
    add r4, r1, r3
    fldi f1, 0.0
    jmp loop
loop:
    floadao f2, r3, r4
    fabs f2, f2
    fadd f1, f1, f2
    addi r3, r3, 8
    sub r5, r2, r3
    br ge r5, loop, done
done:
    retf f1
`

func TestParseBasics(t *testing.T) {
	rt, err := Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Name != "sumabs" {
		t.Fatalf("name = %q", rt.Name)
	}
	if len(rt.Params) != 2 {
		t.Fatalf("params = %d", len(rt.Params))
	}
	if len(rt.Blocks) != 3 {
		t.Fatalf("blocks = %d", len(rt.Blocks))
	}
	if rt.Blocks[1].Label != "loop" {
		t.Fatalf("block 1 label = %q", rt.Blocks[1].Label)
	}
	if got := len(rt.Blocks[1].Instrs); got != 6 {
		t.Fatalf("loop has %d instrs", got)
	}
	if rt.NumRegs(ClassInt) != 6 {
		t.Fatalf("int regs = %d, want 6", rt.NumRegs(ClassInt))
	}
	if rt.NumRegs(ClassFlt) != 3 {
		t.Fatalf("flt regs = %d, want 3", rt.NumRegs(ClassFlt))
	}
	d := rt.DataByLabel("tab")
	if d == nil || !d.ReadOnly || d.Words != 2 || len(d.Init) != 2 || !d.IsFloat {
		t.Fatalf("data tab = %+v", d)
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	rt, err := Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	text := Print(rt)
	rt2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if Print(rt2) != text {
		t.Fatalf("round trip unstable:\n%s\nvs\n%s", text, Print(rt2))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no header", "entry:\n  ret\n", "before routine header"},
		{"empty file", "", "no routine header"},
		{"dup header", "routine a()\nroutine b()\nx:\n ret\n", "duplicate routine"},
		{"unknown op", "routine a()\nx:\n frobnicate r1\n", "unknown op"},
		{"bad reg class", "routine a()\nx:\n add r1, r2, f3\n ret\n", "class"},
		{"write fp", "routine a()\nx:\n ldi fp, 3\n ret\n", "fp is not writable"},
		{"r0 reserved", "routine a()\nx:\n mov r1, r0\n ret\n", "reserved"},
		{"after terminator", "routine a()\nx:\n ret\n nop\n", "after terminator"},
		{"dup label", "routine a()\nx:\nx:\n ret\n", "duplicate label"},
		{"trailing operand", "routine a()\nx:\n ldi r1, 2, 3\n ret\n", "trailing"},
		{"missing operand", "routine a()\nx:\n add r1, r2\n ret\n", "missing operand"},
		{"bad imm", "routine a()\nx:\n ldi r1, zap\n ret\n", "bad immediate"},
		{"bad cond", "routine a()\nx:\n br zz r1, a, b\n ret\n", "unknown condition"},
		{"phi rejected", "routine a()\nx:\n phi r1, r2\n ret\n", "phi"},
		{"dup data", "routine a()\ndata t ro 1\ndata t ro 1\nx:\n ret\n", "duplicate data"},
		{"data too many init", "routine a()\ndata t ro 1 = 1 2\nx:\n ret\n", "initializers"},
		{"fp param", "routine a(fp)\nx:\n ret\n", "fp cannot be a parameter"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestFPOperandAllowed(t *testing.T) {
	rt, err := Parse("routine a()\nx:\n addi r1, fp, 8\n load r2, r1\n retr r2\n")
	if err != nil {
		t.Fatal(err)
	}
	in := rt.Blocks[0].Instrs[0]
	if !in.Src[0].IsFP() {
		t.Fatalf("src0 = %v, want fp", in.Src[0])
	}
	if in.String() != "addi r1, fp, 8" {
		t.Fatalf("String = %q", in.String())
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   *Instr
		want string
	}{
		{MakeLdi(IntReg(4), 42), "ldi r4, 42"},
		{MakeFldi(FltReg(2), 1.5), "fldi f2, 1.5"},
		{MakeFldi(FltReg(2), 3), "fldi f2, 3.0"},
		{MakeLda(IntReg(1), "tab"), "lda r1, tab"},
		{MakeMov(IntReg(1), IntReg(2)), "mov r1, r2"},
		{MakeMov(FltReg(1), FltReg(2)), "fmov f1, f2"},
		{MakeBin(OpAdd, IntReg(3), IntReg(1), IntReg(2)), "add r3, r1, r2"},
		{&Instr{Op: OpBr, Cond: CondGE, Src: [2]Reg{IntReg(7), NoReg}, Label: "a", Label2: "b"}, "br ge r7, a, b"},
		{&Instr{Op: OpJmp, Label: "top"}, "jmp top"},
		{&Instr{Op: OpRet}, "ret"},
		{&Instr{Op: OpRload, Dst: IntReg(2), Label: "t", Imm: 8}, "rload r2, t, 8"},
		{&Instr{Op: OpPhi, Dst: IntReg(3), Phi: &Phi{Args: []Reg{IntReg(1), IntReg(2)}}}, "phi r3, r1, r2"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestSplitSpillMarkersPrint(t *testing.T) {
	in := MakeMov(IntReg(1), IntReg(2))
	in.IsSplit = true
	if !strings.Contains(in.String(), "; split") {
		t.Fatalf("split marker missing: %q", in.String())
	}
	in2 := MakeLdi(IntReg(1), 0)
	in2.IsSpill = true
	if !strings.Contains(in2.String(), "; spill") {
		t.Fatalf("spill marker missing: %q", in2.String())
	}
}

func TestUsesAndDef(t *testing.T) {
	add := MakeBin(OpAdd, IntReg(3), IntReg(1), IntReg(2))
	if u := add.Uses(); len(u) != 2 || u[0] != IntReg(1) || u[1] != IntReg(2) {
		t.Fatalf("Uses = %v", u)
	}
	if add.Def() != IntReg(3) {
		t.Fatalf("Def = %v", add.Def())
	}
	st := MakeBin(OpStore, NoReg, IntReg(1), IntReg(2))
	if st.Def().Valid() {
		t.Fatal("store has no def")
	}
	phi := &Instr{Op: OpPhi, Dst: IntReg(3), Phi: &Phi{Args: []Reg{IntReg(1), IntReg(2)}}}
	if u := phi.Uses(); len(u) != 2 {
		t.Fatalf("phi Uses = %v", u)
	}
	if phi.Def() != IntReg(3) {
		t.Fatalf("phi Def = %v", phi.Def())
	}
}

func TestCondHolds(t *testing.T) {
	cases := []struct {
		c    Cond
		v    int64
		want bool
	}{
		{CondLT, -1, true}, {CondLT, 0, false},
		{CondLE, 0, true}, {CondLE, 1, false},
		{CondGT, 1, true}, {CondGT, 0, false},
		{CondGE, 0, true}, {CondGE, -1, false},
		{CondEQ, 0, true}, {CondEQ, 2, false},
		{CondNE, 2, true}, {CondNE, 0, false},
		{CondNone, 0, false},
	}
	for _, c := range cases {
		if got := c.c.Holds(c.v); got != c.want {
			t.Errorf("%v.Holds(%d) = %v", c.c, c.v, got)
		}
	}
}

func TestOpMetadata(t *testing.T) {
	if !OpLdi.RematCandidate() || !OpLda.RematCandidate() || !OpFldi.RematCandidate() {
		t.Fatal("immediate loads must be remat candidates")
	}
	if !OpAddi.RematCandidate() {
		t.Fatal("addi must be a remat candidate (fp-relative)")
	}
	if OpAdd.RematCandidate() || OpLoad.RematCandidate() {
		t.Fatal("add/load must not be remat candidates")
	}
	if !OpLoad.IsLoad() || !OpStore.IsStore() || !OpStore.IsMem() {
		t.Fatal("memory flags wrong")
	}
	if !OpMov.IsCopy() || !OpFmov.IsCopy() || OpAdd.IsCopy() {
		t.Fatal("copy flags wrong")
	}
	if !OpBr.IsTerminator() || !OpJmp.IsTerminator() || !OpRet.IsTerminator() || !OpRetf.IsTerminator() {
		t.Fatal("terminator flags wrong")
	}
	if OpAdd.IsTerminator() {
		t.Fatal("add is not a terminator")
	}
	if !OpGetparam.RematCandidate() || !OpGetparam.IsLoad() {
		t.Fatal("getparam should be a remat-able load")
	}
	if !OpRload.RematCandidate() || !OpRload.IsLoad() {
		t.Fatal("rload should be a remat-able load")
	}
}

func TestOpFromString(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		got, ok := OpFromString(op.String())
		if !ok || got != op {
			t.Fatalf("OpFromString(%q) = %v, %v", op.String(), got, ok)
		}
	}
	if _, ok := OpFromString("bogus"); ok {
		t.Fatal("bogus op resolved")
	}
}

func TestVerifyCatchesBadRoutines(t *testing.T) {
	good := MustParse(sampleSrc)
	if err := Verify(good, false); err != nil {
		t.Fatalf("good routine failed verify: %v", err)
	}

	// Branch to unknown label.
	bad := good.Clone()
	bad.Blocks[1].Instrs[5].Label = "nowhere"
	if err := Verify(bad, false); err == nil {
		t.Fatal("unknown branch target not caught")
	}

	// Final block without terminator.
	bad2 := good.Clone()
	last := bad2.Blocks[len(bad2.Blocks)-1]
	last.Instrs = last.Instrs[:0]
	if err := Verify(bad2, false); err == nil {
		t.Fatal("missing terminator not caught")
	}

	// φ outside SSA.
	bad3 := good.Clone()
	bad3.Blocks[1].Instrs = append([]*Instr{{Op: OpPhi, Dst: IntReg(3), Phi: &Phi{Args: []Reg{IntReg(3), IntReg(3)}}}}, bad3.Blocks[1].Instrs...)
	if err := Verify(bad3, false); err == nil {
		t.Fatal("φ outside SSA not caught")
	}

	// Register outside virtual space.
	bad4 := good.Clone()
	bad4.Blocks[0].Instrs[0].Dst = IntReg(99)
	if err := Verify(bad4, false); err == nil {
		t.Fatal("register out of range not caught")
	}

	// rload from writable data.
	rt := MustParse("routine a()\ndata t rw 2\nx:\n rload r1, t, 0\n retr r1\n")
	if err := Verify(rt, false); err == nil {
		t.Fatal("rload from rw data not caught")
	}

	// getparam with bad index.
	rt2 := MustParse("routine a(r1)\nx:\n getparam r2, 5\n retr r2\n")
	if err := Verify(rt2, false); err == nil {
		t.Fatal("bad param index not caught")
	}
}

func TestCloneIsDeep(t *testing.T) {
	rt := MustParse(sampleSrc)
	c := rt.Clone()
	c.Blocks[0].Instrs[0].Imm = 999
	if rt.Blocks[0].Instrs[0].Imm == 999 {
		t.Fatal("clone shares instructions")
	}
	c.Data[0].Init[0] = 42
	if rt.Data[0].Init[0] == 42 {
		t.Fatal("clone shares data")
	}
	// Clone preserves block count and labels.
	if len(c.Blocks) != len(rt.Blocks) {
		t.Fatal("clone block count differs")
	}
}

func TestBuilderMatchesParser(t *testing.T) {
	b := NewBuilder("sumabs")
	p1 := b.IntParam()
	p2 := b.IntParam()
	b.Data("tab", true, 2, true, 1.5, -2.5)
	r3, r4, r5 := b.Int(), b.Int(), b.Int()
	f1, f2 := b.Flt(), b.Flt()
	b.Block("entry")
	b.Ldi(r3, 8)
	b.Add(r4, p1, r3)
	b.Fldi(f1, 0.0)
	b.Jmp("loop")
	b.Block("loop")
	b.Floadao(f2, r3, r4)
	b.Fabs(f2, f2)
	b.Fadd(f1, f1, f2)
	b.Addi(r3, r3, 8)
	b.Sub(r5, p2, r3)
	b.Br(CondGE, r5, "loop", "done")
	b.Block("done")
	b.Retf(f1)
	rt := b.Routine()

	want := MustParse(sampleSrc)
	// The sample uses r2 (the count param) in "sub r5, r2, r3"; builder
	// used p2 which is also r2 — texts should match exactly.
	if Print(rt) != Print(want) {
		t.Fatalf("builder output differs:\n%s\nvs\n%s", Print(rt), Print(want))
	}
	if err := Verify(rt, false); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderPanicsAfterTerminator(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder("x")
	b.Block("entry")
	b.Ret()
	b.Ldi(b.Int(), 0)
}

func TestBlockHelpers(t *testing.T) {
	rt := MustParse(sampleSrc)
	loop := rt.BlockByLabel("loop")
	if loop.Terminator() == nil || loop.Terminator().Op != OpBr {
		t.Fatal("terminator wrong")
	}
	n := len(loop.Instrs)
	loop.AppendBeforeTerminator(MakeLdi(IntReg(3), 1))
	if len(loop.Instrs) != n+1 {
		t.Fatal("insert failed")
	}
	if loop.Instrs[len(loop.Instrs)-1].Op != OpBr {
		t.Fatal("terminator no longer last")
	}
	if loop.Instrs[len(loop.Instrs)-2].Op != OpLdi {
		t.Fatal("instr not before terminator")
	}

	done := rt.BlockByLabel("done")
	done.Instrs = nil
	done.AppendBeforeTerminator(MakeLdi(IntReg(3), 1))
	if len(done.Instrs) != 1 {
		t.Fatal("append into empty block failed")
	}
}

func TestFreshLabel(t *testing.T) {
	rt := MustParse(sampleSrc)
	if l := rt.FreshLabel("newblk"); l != "newblk" {
		t.Fatalf("FreshLabel = %q", l)
	}
	if l := rt.FreshLabel("loop"); l == "loop" || rt.BlockByLabel(l) != nil {
		t.Fatalf("FreshLabel collided: %q", l)
	}
}

func TestNewRegStartsAtOne(t *testing.T) {
	rt := &Routine{Name: "x"}
	r := rt.NewReg(ClassInt)
	if r.N != 1 {
		t.Fatalf("first vreg = %d, want 1 (0 is reserved)", r.N)
	}
	f := rt.NewReg(ClassFlt)
	if f.N != 1 {
		t.Fatalf("first f vreg = %d, want 1", f.N)
	}
}

func TestParseProgram(t *testing.T) {
	rts, err := ParseProgram(`
routine main(r1)
entry:
    getparam r1, 0
    setarg r1, 0
    call leaf
    getret r2
    retr r2

routine leaf(r1)
entry:
    getparam r1, 0
    addi r2, r1, 1
    retr r2
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rts) != 2 || rts[0].Name != "main" || rts[1].Name != "leaf" {
		t.Fatalf("program parse wrong: %d routines", len(rts))
	}
	for _, rt := range rts {
		if err := Verify(rt, false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ParseProgram("nothing here"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ParseProgram("routine a()\nx:\n ret\nroutine a()\ny:\n ret\n"); err == nil {
		t.Fatal("duplicate routine names accepted")
	}
}

// TestBuilderAllHelpers drives every Builder shorthand once and checks
// the result verifies and round-trips.
func TestBuilderAllHelpers(t *testing.T) {
	b := NewBuilder("allops")
	p := b.IntParam()
	fpm := b.FltParam()
	b.Data("bt", true, 2, false, 3, 4)
	b.Data("bw", false, 2, true)
	r1, r2, r3 := b.Int(), b.Int(), b.Int()
	f1, f2 := b.Flt(), b.Flt()

	b.Block("entry")
	b.Getparam(p, 0)
	b.Fgetparam(fpm, 1)
	b.Ldi(r1, 5)
	b.Lda(r2, "bt")
	b.Mov(r3, r1)
	b.Add(r3, r3, r1)
	b.Sub(r3, r3, r1)
	b.Mul(r3, r3, r1)
	b.Div(r3, r3, r1)
	b.Addi(r3, r3, 1)
	b.Subi(r3, r3, 1)
	b.Muli(r3, r3, 2)
	b.Load(r3, r2)
	b.Loadai(r3, r2, 8)
	b.Loadao(r3, r2, r1)
	b.Fldi(f1, 1.5)
	b.Fadd(f2, f1, f1)
	b.Fsub(f2, f2, f1)
	b.Fmul(f2, f2, f1)
	b.Fdiv(f2, f2, f1)
	b.Fabs(f2, f2)
	b.Fload(f2, r2)
	b.Floadai(f2, r2, 8)
	b.Floadao(f2, r2, r1)
	r4 := b.Int()
	b.Lda(r4, "bw")
	b.Store(r1, r4)
	b.Storeai(r1, r4, 8)
	b.Fstore(f2, r4)
	b.Fstoreai(f2, r4, 8)
	b.Br(CondGT, r3, "yes", "no")
	b.Block("yes")
	b.Retr(r3)
	b.Block("no")
	b.Jmp("fin")
	b.Block("fin")
	b.Retf(f2)
	rt := b.Routine()

	if err := Verify(rt, false); err != nil {
		t.Fatalf("builder output invalid: %v\n%s", err, Print(rt))
	}
	if _, err := Parse(Print(rt)); err != nil {
		t.Fatalf("builder output does not reparse: %v", err)
	}
	// Block() re-entry appends to an existing block.
	b2 := NewBuilder("reenter")
	b2.Block("entry")
	b2.Ldi(b2.Int(), 1)
	b2.Block("entry")
	b2.Ret()
	rt2 := b2.Routine()
	if len(rt2.Blocks) != 1 || len(rt2.Blocks[0].Instrs) != 2 {
		t.Fatal("Block re-entry should continue the same block")
	}
}
