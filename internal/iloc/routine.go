package iloc

import "fmt"

// Block is a basic block: a label, a straight-line instruction sequence
// ending in at most one terminator, and its CFG edges. Edges are filled in
// by cfg.Build.
type Block struct {
	Index  int // position in Routine.Blocks
	Label  string
	Instrs []*Instr

	Succs []*Block
	Preds []*Block

	Depth int // loop nesting depth (cfg.Analyze); weights spill costs 10^Depth
}

// Terminator returns the block's final instruction if it is a terminator,
// else nil (control falls through to the next block).
func (b *Block) Terminator() *Instr {
	if n := len(b.Instrs); n > 0 && b.Instrs[n-1].Op.IsTerminator() {
		return b.Instrs[n-1]
	}
	return nil
}

// InsertBefore inserts instr at position i in the block.
func (b *Block) InsertBefore(i int, instr *Instr) {
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[i+1:], b.Instrs[i:])
	b.Instrs[i] = instr
}

// AppendBeforeTerminator adds instr at the end of the block but before its
// terminator, if any. Split copies and remat code land here.
func (b *Block) AppendBeforeTerminator(instr *Instr) {
	if t := b.Terminator(); t != nil {
		b.InsertBefore(len(b.Instrs)-1, instr)
		return
	}
	b.Instrs = append(b.Instrs, instr)
}

// PredIndex returns the position of p in b.Preds, or -1.
func (b *Block) PredIndex(p *Block) int {
	for i, q := range b.Preds {
		if q == p {
			return i
		}
	}
	return -1
}

// Param describes a routine parameter: the virtual register it arrives in.
// Parameters also live in known frame slots, which is what makes getparam
// rematerializable.
type Param struct {
	Reg Reg
}

// Data is one item in the routine's static data area. Values are 8-byte
// words; Float selects the interpretation of the initializer.
type Data struct {
	Label    string
	ReadOnly bool
	Words    int       // size in 8-byte words
	Init     []float64 // initial word values (≤ Words entries); ints stored exactly
	IsFloat  bool      // initializer/word interpretation for the C translator
}

// Routine is a single ILOC procedure: parameters, static data, and a list
// of basic blocks (Blocks[0] is the entry).
type Routine struct {
	Name   string
	Params []Param
	Data   []Data
	Blocks []*Block

	// NextReg[class] is the first unused virtual register number of the
	// class. Virtual numbering starts at 1; number 0 is reserved.
	NextReg [NumClasses]int

	// Allocated is set once registers have been mapped to a target machine;
	// register numbers are then physical colors.
	Allocated bool
	// FrameWords is the number of 8-byte spill slots the allocator used.
	FrameWords int
	// CallerSave[class] records, for allocated code, how many low colors
	// the target's calling convention clobbers at a call (the interpreter
	// poisons them after each call to expose allocation bugs).
	CallerSave [NumClasses]int
}

// NewReg allocates a fresh virtual register of the class.
func (r *Routine) NewReg(c Class) Reg {
	if r.NextReg[c] == 0 {
		r.NextReg[c] = 1
	}
	n := r.NextReg[c]
	r.NextReg[c]++
	return Reg{Class: c, N: n}
}

// NumRegs returns the size of the virtual register space for a class
// (max register number + 1).
func (r *Routine) NumRegs(c Class) int {
	if r.NextReg[c] == 0 {
		return 1
	}
	return r.NextReg[c]
}

// BlockByLabel returns the block with the given label, or nil.
func (r *Routine) BlockByLabel(label string) *Block {
	for _, b := range r.Blocks {
		if b.Label == label {
			return b
		}
	}
	return nil
}

// DataByLabel returns the data item with the given label, or nil.
func (r *Routine) DataByLabel(label string) *Data {
	for i := range r.Data {
		if r.Data[i].Label == label {
			return &r.Data[i]
		}
	}
	return nil
}

// Entry returns the entry block.
func (r *Routine) Entry() *Block {
	if len(r.Blocks) == 0 {
		panic("iloc: routine has no blocks")
	}
	return r.Blocks[0]
}

// Reindex renumbers Blocks[i].Index after insertions or deletions.
func (r *Routine) Reindex() {
	for i, b := range r.Blocks {
		b.Index = i
	}
}

// NumInstrs returns the total instruction count across blocks.
func (r *Routine) NumInstrs() int {
	n := 0
	for _, b := range r.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// ForEachInstr calls f on every instruction in block order.
func (r *Routine) ForEachInstr(f func(b *Block, i int, in *Instr)) {
	for _, b := range r.Blocks {
		for i, in := range b.Instrs {
			f(b, i, in)
		}
	}
}

// Clone returns a deep copy of the routine (blocks, instructions, data).
// CFG edges are remapped into the clone; analysis results such as Depth
// are preserved.
func (r *Routine) Clone() *Routine {
	c := &Routine{
		Name:       r.Name,
		Params:     append([]Param(nil), r.Params...),
		NextReg:    r.NextReg,
		Allocated:  r.Allocated,
		FrameWords: r.FrameWords,
		CallerSave: r.CallerSave,
	}
	c.Data = make([]Data, len(r.Data))
	for i, d := range r.Data {
		c.Data[i] = d
		c.Data[i].Init = append([]float64(nil), d.Init...)
	}
	old2new := make(map[*Block]*Block, len(r.Blocks))
	for _, b := range r.Blocks {
		nb := &Block{Index: b.Index, Label: b.Label, Depth: b.Depth}
		nb.Instrs = make([]*Instr, len(b.Instrs))
		for i, in := range b.Instrs {
			nb.Instrs[i] = in.Clone()
		}
		c.Blocks = append(c.Blocks, nb)
		old2new[b] = nb
	}
	for _, b := range r.Blocks {
		nb := old2new[b]
		for _, s := range b.Succs {
			nb.Succs = append(nb.Succs, old2new[s])
		}
		for _, p := range b.Preds {
			nb.Preds = append(nb.Preds, old2new[p])
		}
	}
	return c
}

// freshLabel returns a label not used by any block, derived from base.
func (r *Routine) FreshLabel(base string) string {
	if r.BlockByLabel(base) == nil {
		return base
	}
	for i := 1; ; i++ {
		l := fmt.Sprintf("%s.%d", base, i)
		if r.BlockByLabel(l) == nil {
			return l
		}
	}
}
