package iloc

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParseNeverPanics feeds the parser mutated fragments of valid
// source plus random byte soup; it must return errors, never panic.
func TestParseNeverPanics(t *testing.T) {
	tokens := []string{
		"routine", "data", "ldi", "add", "br", "ge", "fp", "r1", "f2",
		"(", ")", ",", ":", "-", "8", "1.5", "entry", "loop", "ro", "rw",
		"=", "jmp", "retr", "retf", "phi", "\n", " ", "\t", ";x", "#y",
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		var b strings.Builder
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			if rng.Intn(5) == 0 {
				b.WriteByte(byte(rng.Intn(256)))
			} else {
				b.WriteString(tokens[rng.Intn(len(tokens))])
			}
			if rng.Intn(3) == 0 {
				b.WriteByte(' ')
			}
			if rng.Intn(6) == 0 {
				b.WriteByte('\n')
			}
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", src, r)
				}
			}()
			rt, err := Parse(src)
			if err == nil {
				// Rare but possible: a valid routine. It must verify or
				// fail verification gracefully, and print/reparse.
				if verr := Verify(rt, false); verr == nil {
					if _, perr := Parse(Print(rt)); perr != nil {
						t.Fatalf("round trip of accidentally-valid routine failed: %v", perr)
					}
				}
			}
		}()
	}
}

// TestParseMutatedKernels mutates a valid source byte-wise: still no
// panics, and successful parses stay structurally sound.
func TestParseMutatedKernels(t *testing.T) {
	base := sampleSrc
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		buf := []byte(base)
		for k := 0; k < 1+rng.Intn(4); k++ {
			pos := rng.Intn(len(buf))
			switch rng.Intn(3) {
			case 0:
				buf[pos] = byte(rng.Intn(128))
			case 1:
				buf = append(buf[:pos], buf[pos+1:]...)
			default:
				buf = append(buf[:pos], append([]byte{byte(rng.Intn(128))}, buf[pos:]...)...)
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on mutation: %v", r)
				}
			}()
			_, _ = Parse(string(buf))
		}()
	}
}
