package iloc

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// TestParseNeverPanics feeds the parser mutated fragments of valid
// source plus random byte soup; it must return errors, never panic.
func TestParseNeverPanics(t *testing.T) {
	tokens := []string{
		"routine", "data", "ldi", "add", "br", "ge", "fp", "r1", "f2",
		"(", ")", ",", ":", "-", "8", "1.5", "entry", "loop", "ro", "rw",
		"=", "jmp", "retr", "retf", "phi", "\n", " ", "\t", ";x", "#y",
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		var b strings.Builder
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			if rng.Intn(5) == 0 {
				b.WriteByte(byte(rng.Intn(256)))
			} else {
				b.WriteString(tokens[rng.Intn(len(tokens))])
			}
			if rng.Intn(3) == 0 {
				b.WriteByte(' ')
			}
			if rng.Intn(6) == 0 {
				b.WriteByte('\n')
			}
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", src, r)
				}
			}()
			rt, err := Parse(src)
			if err == nil {
				// Rare but possible: a valid routine. It must verify or
				// fail verification gracefully, and print/reparse.
				if verr := Verify(rt, false); verr == nil {
					if _, perr := Parse(Print(rt)); perr != nil {
						t.Fatalf("round trip of accidentally-valid routine failed: %v", perr)
					}
				}
			}
		}()
	}
}

// FuzzParse is the native fuzz target behind the deterministic smoke
// tests above: any input must either parse into a routine or produce a
// located *ParseError — never a panic — and whatever parses and
// verifies must print/reparse stably.
func FuzzParse(f *testing.F) {
	f.Add(sampleSrc)
	f.Add("routine a()\nx:\n ldi r1, 2\n retr r1\n")
	f.Add("routine a(r1)\ndata t rw 4 = 1 2 3 4\nx:\n lda r2, t\n load r3, r2\n add r3, r3, r1\n retr r3\n")
	f.Add("routine a()\nx:\n br ge r1, x, y\ny:\n ret\n")
	f.Add("routine \xffbad()\nx:\n ret\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip("oversized input")
		}
		rt, err := Parse(src)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Parse error is not a *ParseError: %T %v", err, err)
			}
			if pe.Line < 0 || pe.Line > strings.Count(src, "\n")+1 {
				t.Fatalf("ParseError line %d out of range for input", pe.Line)
			}
			return
		}
		if Verify(rt, false) != nil {
			return
		}
		text := Print(rt)
		rt2, err := Parse(text)
		if err != nil {
			t.Fatalf("reparse of valid routine failed: %v\n%s", err, text)
		}
		if Print(rt2) != text {
			t.Fatalf("print/reparse unstable:\n%s\nvs\n%s", text, Print(rt2))
		}
	})
}

// TestParseErrorLocation pins the error API the tools rely on: a
// per-line failure carries its 1-based line number, whole-source
// failures use line 0, and Unwrap exposes the cause.
func TestParseErrorLocation(t *testing.T) {
	_, err := Parse("routine a()\nx:\n ldi r1, 2\n bogus r9\n ret\n")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("not a *ParseError: %T %v", err, err)
	}
	if pe.Line != 4 {
		t.Fatalf("Line = %d, want 4 (%v)", pe.Line, err)
	}
	if !strings.Contains(err.Error(), "line 4:") {
		t.Fatalf("message %q does not locate the line", err)
	}
	if pe.Unwrap() == nil || !strings.Contains(pe.Unwrap().Error(), "unknown op") {
		t.Fatalf("Unwrap = %v", pe.Unwrap())
	}

	_, err = Parse("")
	if !errors.As(err, &pe) || pe.Line != 0 {
		t.Fatalf("whole-source error = %v, want *ParseError with Line 0", err)
	}
	if strings.Contains(err.Error(), "line") {
		t.Fatalf("line-0 message should not cite a line: %q", err)
	}

	_, err = ParseProgram("routine a()\nx:\n ret\nroutine a()\ny:\n ret\n")
	if !errors.As(err, &pe) {
		t.Fatalf("ParseProgram error not a *ParseError: %T %v", err, err)
	}
}

// TestParseMutatedKernels mutates a valid source byte-wise: still no
// panics, and successful parses stay structurally sound.
func TestParseMutatedKernels(t *testing.T) {
	base := sampleSrc
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		buf := []byte(base)
		for k := 0; k < 1+rng.Intn(4); k++ {
			pos := rng.Intn(len(buf))
			switch rng.Intn(3) {
			case 0:
				buf[pos] = byte(rng.Intn(128))
			case 1:
				buf = append(buf[:pos], buf[pos+1:]...)
			default:
				buf = append(buf[:pos], append([]byte{byte(rng.Intn(128))}, buf[pos:]...)...)
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on mutation: %v", r)
				}
			}()
			_, _ = Parse(string(buf))
		}()
	}
}
