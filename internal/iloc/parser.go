package iloc

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the textual form of one routine. The grammar, by line:
//
//	routine NAME(r1, r2, f1)        ; header, params by register
//	data NAME ro 4 = 1.0 2.0        ; static data: ro|rw, size in words,
//	data NAME rw 16                 ;   optional float/int initializers
//	label:                          ; starts a new basic block
//	op operands                     ; instruction, operands comma-separated
//	; comment  or  # comment
//
// Instructions follow Instr.String's syntax exactly, so Print output
// round-trips. Control falls through from a block without a terminator to
// the next block in the file.
// A ParseError locates a syntax error in the source handed to Parse or
// ParseProgram. Line is 1-based; 0 means the error concerns the source
// as a whole (no routine header, no code) rather than one line.
type ParseError struct {
	Line int
	Err  error
}

func (e *ParseError) Error() string {
	if e.Line == 0 {
		return e.Err.Error()
	}
	return fmt.Sprintf("line %d: %v", e.Line, e.Err)
}

func (e *ParseError) Unwrap() error { return e.Err }

func Parse(src string) (*Routine, error) {
	p := &parser{}
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		if err := p.line(raw); err != nil {
			return nil, &ParseError{Line: ln + 1, Err: err}
		}
	}
	if p.rt == nil {
		return nil, &ParseError{Err: fmt.Errorf("no routine header")}
	}
	if len(p.rt.Blocks) == 0 {
		return nil, &ParseError{Err: fmt.Errorf("routine %s has no code", p.rt.Name)}
	}
	p.rt.Reindex()
	return p.rt, nil
}

// MustParse is Parse that panics on error. It exists for compile-time
// constant sources — test fixtures and the embedded figure listings —
// where a parse failure is a bug in this repository, not in input.
// Anything parsing caller-supplied or generated text must use Parse and
// handle the *ParseError it returns.
func MustParse(src string) *Routine {
	rt, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("iloc.MustParse on embedded source: %v", err))
	}
	return rt
}

// ParseProgram reads a file holding several routines (each introduced by
// its own "routine" header). The first routine is conventionally the
// entry point; the rest are callees.
func ParseProgram(src string) ([]*Routine, error) {
	var chunks []string
	var cur []string
	started := false
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(strings.TrimSpace(stripComment(line)), "routine ") {
			// Leading comments stay attached to the routine that follows.
			if started {
				chunks = append(chunks, strings.Join(cur, "\n"))
				cur = nil
			}
			started = true
		}
		cur = append(cur, line)
	}
	if started {
		chunks = append(chunks, strings.Join(cur, "\n"))
	}
	if len(chunks) == 0 {
		return nil, &ParseError{Err: fmt.Errorf("no routine header")}
	}
	var out []*Routine
	seen := map[string]bool{}
	for _, c := range chunks {
		rt, err := Parse(c)
		if err != nil {
			return nil, err
		}
		if seen[rt.Name] {
			return nil, &ParseError{Err: fmt.Errorf("duplicate routine %q", rt.Name)}
		}
		seen[rt.Name] = true
		out = append(out, rt)
	}
	return out, nil
}

type parser struct {
	rt  *Routine
	cur *Block
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, ";#"); i >= 0 {
		return s[:i]
	}
	return s
}

func (p *parser) line(raw string) error {
	s := strings.TrimSpace(stripComment(raw))
	if s == "" {
		return nil
	}
	switch {
	case strings.HasPrefix(s, "routine "):
		return p.header(strings.TrimPrefix(s, "routine "))
	case strings.HasPrefix(s, "data "):
		return p.data(strings.TrimPrefix(s, "data "))
	case strings.HasSuffix(s, ":"):
		return p.label(strings.TrimSuffix(s, ":"))
	default:
		if err := p.instr(s); err != nil {
			return err
		}
		p.annotate(raw)
		return nil
	}
}

// annotate restores the structured annotations Print attaches as
// comments ("; split", "; spill") onto the instruction just parsed, so
// Print(Parse(Print(rt))) round-trips byte for byte — the persistent
// result store depends on that. Only a comment segment that is exactly
// one marker word counts; free-form comments stay comments.
func (p *parser) annotate(raw string) {
	i := strings.IndexAny(raw, ";#")
	if i < 0 {
		return
	}
	in := p.cur.Instrs[len(p.cur.Instrs)-1]
	for _, seg := range strings.FieldsFunc(raw[i:], func(r rune) bool { return r == ';' || r == '#' }) {
		switch strings.TrimSpace(seg) {
		case "split":
			in.IsSplit = true
		case "spill":
			in.IsSpill = true
		}
	}
}

func (p *parser) header(s string) error {
	if p.rt != nil {
		return fmt.Errorf("duplicate routine header")
	}
	open := strings.IndexByte(s, '(')
	closeP := strings.LastIndexByte(s, ')')
	if open < 0 || closeP < open {
		return fmt.Errorf("malformed routine header %q", s)
	}
	name := strings.TrimSpace(s[:open])
	if name == "" {
		return fmt.Errorf("routine needs a name")
	}
	p.rt = &Routine{Name: name}
	args := strings.TrimSpace(s[open+1 : closeP])
	if args == "" {
		return nil
	}
	for _, a := range strings.Split(args, ",") {
		r, err := parseReg(strings.TrimSpace(a))
		if err != nil {
			return fmt.Errorf("parameter: %w", err)
		}
		if r.IsFP() {
			return fmt.Errorf("fp cannot be a parameter")
		}
		p.rt.Params = append(p.rt.Params, Param{Reg: r})
		p.noteReg(r)
	}
	return nil
}

func (p *parser) data(s string) error {
	if p.rt == nil {
		return fmt.Errorf("data before routine header")
	}
	var init string
	if i := strings.IndexByte(s, '='); i >= 0 {
		init = strings.TrimSpace(s[i+1:])
		s = s[:i]
	}
	fields := strings.Fields(s)
	if len(fields) != 3 {
		return fmt.Errorf("data wants: data NAME ro|rw WORDS [= v...]")
	}
	d := Data{Label: fields[0]}
	switch fields[1] {
	case "ro":
		d.ReadOnly = true
	case "rw":
	default:
		return fmt.Errorf("data mode %q (want ro or rw)", fields[1])
	}
	words, err := strconv.Atoi(fields[2])
	if err != nil || words <= 0 {
		return fmt.Errorf("bad data size %q", fields[2])
	}
	d.Words = words
	if init != "" {
		for _, tok := range strings.Fields(init) {
			v, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return fmt.Errorf("bad initializer %q", tok)
			}
			if strings.ContainsAny(tok, ".eE") {
				d.IsFloat = true
			}
			d.Init = append(d.Init, v)
		}
		if len(d.Init) > d.Words {
			return fmt.Errorf("data %s: %d initializers for %d words", d.Label, len(d.Init), d.Words)
		}
	}
	if p.rt.DataByLabel(d.Label) != nil {
		return fmt.Errorf("duplicate data label %q", d.Label)
	}
	p.rt.Data = append(p.rt.Data, d)
	return nil
}

func (p *parser) label(name string) error {
	if p.rt == nil {
		return fmt.Errorf("label before routine header")
	}
	name = strings.TrimSpace(name)
	if name == "" {
		return fmt.Errorf("empty label")
	}
	if p.rt.BlockByLabel(name) != nil {
		return fmt.Errorf("duplicate label %q", name)
	}
	b := &Block{Label: name}
	p.rt.Blocks = append(p.rt.Blocks, b)
	p.cur = b
	return nil
}

func (p *parser) instr(s string) error {
	if p.rt == nil {
		return fmt.Errorf("instruction before routine header")
	}
	if p.cur == nil {
		// Implicit entry block.
		p.cur = &Block{Label: "entry"}
		p.rt.Blocks = append(p.rt.Blocks, p.cur)
	}
	if t := p.cur.Terminator(); t != nil {
		return fmt.Errorf("instruction after terminator %q", t)
	}
	in, err := p.parseInstr(s)
	if err != nil {
		return err
	}
	p.cur.Instrs = append(p.cur.Instrs, in)
	return nil
}

func (p *parser) parseInstr(s string) (*Instr, error) {
	// Mnemonic is the first space-delimited token.
	mn := s
	rest := ""
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mn, rest = s[:i], strings.TrimSpace(s[i+1:])
	}
	op, ok := OpFromString(mn)
	if !ok {
		return nil, fmt.Errorf("unknown op %q", mn)
	}
	in := &Instr{Op: op, Dst: NoReg, Src: [2]Reg{NoReg, NoReg}}

	if op == OpBr {
		// br cond rS, Ltrue, Lfalse
		i := strings.IndexAny(rest, " \t")
		if i < 0 {
			return nil, fmt.Errorf("br wants a condition")
		}
		cond, ok := CondFromString(rest[:i])
		if !ok {
			return nil, fmt.Errorf("unknown condition %q", rest[:i])
		}
		in.Cond = cond
		rest = strings.TrimSpace(rest[i+1:])
	}

	var toks []string
	if rest != "" {
		for _, t := range strings.Split(rest, ",") {
			toks = append(toks, strings.TrimSpace(t))
		}
	}
	take := func() (string, error) {
		if len(toks) == 0 {
			return "", fmt.Errorf("%s: missing operand", op)
		}
		t := toks[0]
		toks = toks[1:]
		return t, nil
	}
	takeReg := func(want Class) (Reg, error) {
		t, err := take()
		if err != nil {
			return NoReg, err
		}
		r, err := parseReg(t)
		if err != nil {
			return NoReg, err
		}
		if r.Class != want {
			return NoReg, fmt.Errorf("%s: operand %s has class %s, want %s", op, t, r.Class, want)
		}
		p.noteReg(r)
		return r, nil
	}

	var err error
	switch op {
	case OpPhi:
		return nil, fmt.Errorf("phi is not accepted in source text")
	case OpJmp:
		in.Label, err = take()
		return in, err
	case OpBr:
		if in.Src[0], err = takeReg(ClassInt); err != nil {
			return nil, err
		}
		if in.Label, err = take(); err != nil {
			return nil, err
		}
		if in.Label2, err = take(); err != nil {
			return nil, err
		}
		if len(toks) != 0 {
			return nil, fmt.Errorf("br: trailing operands")
		}
		return in, nil
	}

	if op.HasDst() {
		if in.Dst, err = takeReg(op.DstClass()); err != nil {
			return nil, err
		}
		if in.Dst.IsFP() {
			return nil, fmt.Errorf("%s: fp is not writable", op)
		}
	}
	for i := 0; i < op.NSrc(); i++ {
		if in.Src[i], err = takeReg(op.SrcClass(i)); err != nil {
			return nil, err
		}
	}
	if op.HasLabel() {
		if in.Label, err = take(); err != nil {
			return nil, err
		}
	}
	if op.HasImm() {
		t, err := take()
		if err != nil {
			return nil, err
		}
		in.Imm, err = strconv.ParseInt(t, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad immediate %q", op, t)
		}
	}
	if op.HasFImm() {
		t, err := take()
		if err != nil {
			return nil, err
		}
		in.FImm, err = strconv.ParseFloat(t, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad float immediate %q", op, t)
		}
	}
	if len(toks) != 0 {
		return nil, fmt.Errorf("%s: trailing operands %v", op, toks)
	}
	return in, nil
}

func (p *parser) noteReg(r Reg) {
	if r.N >= p.rt.NextReg[r.Class] {
		p.rt.NextReg[r.Class] = r.N + 1
	}
}

func parseReg(s string) (Reg, error) {
	if s == "fp" {
		return FP, nil
	}
	if len(s) < 2 {
		return NoReg, fmt.Errorf("bad register %q", s)
	}
	var c Class
	switch s[0] {
	case 'r':
		c = ClassInt
	case 'f':
		c = ClassFlt
	default:
		return NoReg, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return NoReg, fmt.Errorf("bad register %q", s)
	}
	if n == 0 {
		return NoReg, fmt.Errorf("register %s0 is reserved", string(s[0]))
	}
	return Reg{Class: c, N: n}, nil
}
