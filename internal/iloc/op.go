// Package iloc defines the low-level intermediate language the allocator
// works on. It mirrors the ILOC language of the paper: a register-transfer
// code over an unlimited set of virtual registers, split into an integer
// class and a floating-point class, with explicit loads and stores.
//
// Register 0 of the integer class is the reserved frame pointer; it is
// always available and never allocated, which makes instructions such as
// "addi r5, fp, 8" (a constant offset from the frame pointer) never-killed
// in the paper's sense. Register 0 of the float class is reserved for
// symmetry and never used.
package iloc

import "fmt"

// Op identifies an ILOC operation.
type Op uint8

// The ILOC operation set. Figure 4 of the paper shows ldi, add, mvf (fmov
// here), lddrr (floadao), dabs (fabs), dadd (fadd), addi, sub and br; the
// rest round the language out to the level the paper's FORTRAN front end
// needed (address arithmetic, both addressing modes, conversions).
const (
	OpNop Op = iota

	// Integer ALU.
	OpAdd  // add rD, rS1, rS2
	OpSub  // sub rD, rS1, rS2
	OpMul  // mul rD, rS1, rS2
	OpDiv  // div rD, rS1, rS2
	OpAnd  // and rD, rS1, rS2
	OpOr   // or  rD, rS1, rS2
	OpXor  // xor rD, rS1, rS2
	OpShl  // shl rD, rS1, rS2
	OpShr  // shr rD, rS1, rS2
	OpNeg  // neg rD, rS
	OpAddi // addi rD, rS, imm
	OpSubi // subi rD, rS, imm
	OpMuli // muli rD, rS, imm
	OpLdi  // ldi rD, imm            (never-killed)
	OpLda  // lda rD, label          (never-killed)
	OpMov  // mov rD, rS             (copy)

	// Integer memory.
	OpLoad    // load rD, rA          rD = mem[rA]
	OpLoadai  // loadai rD, rA, imm   rD = mem[rA+imm]
	OpLoadao  // loadao rD, rA, rO    rD = mem[rA+rO]
	OpStore   // store rV, rA         mem[rA] = rV
	OpStoreai // storeai rV, rA, imm
	OpRload   // rload rD, label, imm  read-only static load (never-killed)

	// Float ALU.
	OpFadd // fadd fD, fS1, fS2
	OpFsub // fsub fD, fS1, fS2
	OpFmul // fmul fD, fS1, fS2
	OpFdiv // fdiv fD, fS1, fS2
	OpFabs // fabs fD, fS
	OpFneg // fneg fD, fS
	OpFmov // fmov fD, fS            (copy)
	OpFldi // fldi fD, fimm          (never-killed)

	// Float memory.
	OpFload    // fload fD, rA
	OpFloadai  // floadai fD, rA, imm
	OpFloadao  // floadao fD, rA, rO
	OpFstore   // fstore fV, rA
	OpFstoreai // fstoreai fV, rA, imm
	OpFrload   // frload fD, label, imm  read-only static load (never-killed)

	// Conversions and comparison.
	OpCvtif // cvtif fD, rS
	OpCvtfi // cvtfi rD, fS
	OpFcmp  // fcmp rD, fS1, fS2    rD = sign(fS1-fS2)

	// Parameters: a load from a known, constant frame slot (never-killed;
	// the paper's "loads from a known constant location in the frame").
	OpGetparam  // getparam rD, imm
	OpFgetparam // fgetparam fD, imm

	// Display access: load the frame pointer of lexical level imm from
	// the display (never-killed; the paper's fourth rematerialization
	// category, "loading non-local frame pointers from a display").
	OpLdisp // ldisp rD, imm

	// Procedure calls. Arguments travel through per-call argument slots
	// (FORTRAN passes by reference; the slots usually hold addresses),
	// the callee reads them with getparam, and the result comes back
	// through a return latch. A call clobbers the caller-save registers
	// of each class (the first Machine.CallerSave colors); the allocator
	// keeps ranges that live across a call in callee-save colors.
	OpSetarg  // setarg rS, imm    outgoing argument slot imm = rS
	OpFsetarg // fsetarg fS, imm
	OpCall    // call name
	OpGetret  // getret rD         integer result of the last call
	OpFgetret // fgetret fD

	// Control flow.
	OpJmp  // jmp label
	OpBr   // br cond rS, label, label2   (cond compares rS with zero)
	OpRet  // ret
	OpRetr // retr rS
	OpRetf // retf fS

	// Phi exists only while the code is in SSA form.
	OpPhi

	numOps
)

// Cond is the comparison a br instruction applies to its register operand
// (against zero).
type Cond uint8

// Branch conditions.
const (
	CondNone Cond = iota
	CondLT
	CondLE
	CondGT
	CondGE
	CondEQ
	CondNE
)

var condNames = [...]string{
	CondNone: "none",
	CondLT:   "lt",
	CondLE:   "le",
	CondGT:   "gt",
	CondGE:   "ge",
	CondEQ:   "eq",
	CondNE:   "ne",
}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// CondFromString returns the condition named s.
func CondFromString(s string) (Cond, bool) {
	for c, n := range condNames {
		if n == s && c != int(CondNone) {
			return Cond(c), true
		}
	}
	return CondNone, false
}

// Holds reports whether the condition holds for integer value v compared
// against zero.
func (c Cond) Holds(v int64) bool {
	switch c {
	case CondLT:
		return v < 0
	case CondLE:
		return v <= 0
	case CondGT:
		return v > 0
	case CondGE:
		return v >= 0
	case CondEQ:
		return v == 0
	case CondNE:
		return v != 0
	}
	return false
}

// Class distinguishes the two register files.
type Class uint8

// Register classes.
const (
	ClassInt Class = iota
	ClassFlt
	NumClasses = 2
)

func (c Class) String() string {
	if c == ClassInt {
		return "int"
	}
	return "flt"
}

type opFlags uint16

const (
	flagLoad   opFlags = 1 << iota // reads memory
	flagStore                      // writes memory
	flagCopy                       // register-to-register copy
	flagBranch                     // conditional branch
	flagJump                       // unconditional jump
	flagRet                        // return
	flagRemat                      // never-killed candidate (see NeverKilled)
	flagCommut                     // commutative binary op
	flagCall                       // procedure call (clobbers caller-save registers)
)

const noClass Class = 0xff

// opInfo describes the shape of one operation: its mnemonic, destination
// and source register classes, and which extra operands it carries.
type opInfo struct {
	name     string
	dst      Class // noClass if no register result
	src      [2]Class
	nsrc     int
	hasImm   bool
	hasFImm  bool
	hasLabel bool
	flags    opFlags
}

var opTable = [numOps]opInfo{
	OpNop: {name: "nop", dst: noClass},

	OpAdd:  {name: "add", dst: ClassInt, src: [2]Class{ClassInt, ClassInt}, nsrc: 2, flags: flagCommut},
	OpSub:  {name: "sub", dst: ClassInt, src: [2]Class{ClassInt, ClassInt}, nsrc: 2},
	OpMul:  {name: "mul", dst: ClassInt, src: [2]Class{ClassInt, ClassInt}, nsrc: 2, flags: flagCommut},
	OpDiv:  {name: "div", dst: ClassInt, src: [2]Class{ClassInt, ClassInt}, nsrc: 2},
	OpAnd:  {name: "and", dst: ClassInt, src: [2]Class{ClassInt, ClassInt}, nsrc: 2, flags: flagCommut},
	OpOr:   {name: "or", dst: ClassInt, src: [2]Class{ClassInt, ClassInt}, nsrc: 2, flags: flagCommut},
	OpXor:  {name: "xor", dst: ClassInt, src: [2]Class{ClassInt, ClassInt}, nsrc: 2, flags: flagCommut},
	OpShl:  {name: "shl", dst: ClassInt, src: [2]Class{ClassInt, ClassInt}, nsrc: 2},
	OpShr:  {name: "shr", dst: ClassInt, src: [2]Class{ClassInt, ClassInt}, nsrc: 2},
	OpNeg:  {name: "neg", dst: ClassInt, src: [2]Class{ClassInt, noClass}, nsrc: 1},
	OpAddi: {name: "addi", dst: ClassInt, src: [2]Class{ClassInt, noClass}, nsrc: 1, hasImm: true, flags: flagRemat},
	OpSubi: {name: "subi", dst: ClassInt, src: [2]Class{ClassInt, noClass}, nsrc: 1, hasImm: true, flags: flagRemat},
	OpMuli: {name: "muli", dst: ClassInt, src: [2]Class{ClassInt, noClass}, nsrc: 1, hasImm: true, flags: flagRemat},
	OpLdi:  {name: "ldi", dst: ClassInt, hasImm: true, flags: flagRemat},
	OpLda:  {name: "lda", dst: ClassInt, hasLabel: true, flags: flagRemat},
	OpMov:  {name: "mov", dst: ClassInt, src: [2]Class{ClassInt, noClass}, nsrc: 1, flags: flagCopy},

	OpLoad:    {name: "load", dst: ClassInt, src: [2]Class{ClassInt, noClass}, nsrc: 1, flags: flagLoad},
	OpLoadai:  {name: "loadai", dst: ClassInt, src: [2]Class{ClassInt, noClass}, nsrc: 1, hasImm: true, flags: flagLoad},
	OpLoadao:  {name: "loadao", dst: ClassInt, src: [2]Class{ClassInt, ClassInt}, nsrc: 2, flags: flagLoad},
	OpStore:   {name: "store", dst: noClass, src: [2]Class{ClassInt, ClassInt}, nsrc: 2, flags: flagStore},
	OpStoreai: {name: "storeai", dst: noClass, src: [2]Class{ClassInt, ClassInt}, nsrc: 2, hasImm: true, flags: flagStore},
	OpRload:   {name: "rload", dst: ClassInt, hasImm: true, hasLabel: true, flags: flagLoad | flagRemat},

	OpFadd: {name: "fadd", dst: ClassFlt, src: [2]Class{ClassFlt, ClassFlt}, nsrc: 2, flags: flagCommut},
	OpFsub: {name: "fsub", dst: ClassFlt, src: [2]Class{ClassFlt, ClassFlt}, nsrc: 2},
	OpFmul: {name: "fmul", dst: ClassFlt, src: [2]Class{ClassFlt, ClassFlt}, nsrc: 2, flags: flagCommut},
	OpFdiv: {name: "fdiv", dst: ClassFlt, src: [2]Class{ClassFlt, ClassFlt}, nsrc: 2},
	OpFabs: {name: "fabs", dst: ClassFlt, src: [2]Class{ClassFlt, noClass}, nsrc: 1},
	OpFneg: {name: "fneg", dst: ClassFlt, src: [2]Class{ClassFlt, noClass}, nsrc: 1},
	OpFmov: {name: "fmov", dst: ClassFlt, src: [2]Class{ClassFlt, noClass}, nsrc: 1, flags: flagCopy},
	OpFldi: {name: "fldi", dst: ClassFlt, hasFImm: true, flags: flagRemat},

	OpFload:    {name: "fload", dst: ClassFlt, src: [2]Class{ClassInt, noClass}, nsrc: 1, flags: flagLoad},
	OpFloadai:  {name: "floadai", dst: ClassFlt, src: [2]Class{ClassInt, noClass}, nsrc: 1, hasImm: true, flags: flagLoad},
	OpFloadao:  {name: "floadao", dst: ClassFlt, src: [2]Class{ClassInt, ClassInt}, nsrc: 2, flags: flagLoad},
	OpFstore:   {name: "fstore", dst: noClass, src: [2]Class{ClassFlt, ClassInt}, nsrc: 2, flags: flagStore},
	OpFstoreai: {name: "fstoreai", dst: noClass, src: [2]Class{ClassFlt, ClassInt}, nsrc: 2, hasImm: true, flags: flagStore},
	OpFrload:   {name: "frload", dst: ClassFlt, hasImm: true, hasLabel: true, flags: flagLoad | flagRemat},

	OpCvtif: {name: "cvtif", dst: ClassFlt, src: [2]Class{ClassInt, noClass}, nsrc: 1},
	OpCvtfi: {name: "cvtfi", dst: ClassInt, src: [2]Class{ClassFlt, noClass}, nsrc: 1},
	OpFcmp:  {name: "fcmp", dst: ClassInt, src: [2]Class{ClassFlt, ClassFlt}, nsrc: 2},

	OpGetparam:  {name: "getparam", dst: ClassInt, hasImm: true, flags: flagLoad | flagRemat},
	OpFgetparam: {name: "fgetparam", dst: ClassFlt, hasImm: true, flags: flagLoad | flagRemat},
	OpLdisp:     {name: "ldisp", dst: ClassInt, hasImm: true, flags: flagLoad | flagRemat},

	OpSetarg:  {name: "setarg", dst: noClass, src: [2]Class{ClassInt, noClass}, nsrc: 1, hasImm: true, flags: flagStore},
	OpFsetarg: {name: "fsetarg", dst: noClass, src: [2]Class{ClassFlt, noClass}, nsrc: 1, hasImm: true, flags: flagStore},
	OpCall:    {name: "call", dst: noClass, hasLabel: true, flags: flagCall},
	OpGetret:  {name: "getret", dst: ClassInt},
	OpFgetret: {name: "fgetret", dst: ClassFlt},

	OpJmp:  {name: "jmp", dst: noClass, hasLabel: true, flags: flagJump},
	OpBr:   {name: "br", dst: noClass, src: [2]Class{ClassInt, noClass}, nsrc: 1, hasLabel: true, flags: flagBranch},
	OpRet:  {name: "ret", dst: noClass, flags: flagRet},
	OpRetr: {name: "retr", dst: noClass, src: [2]Class{ClassInt, noClass}, nsrc: 1, flags: flagRet},
	OpRetf: {name: "retf", dst: noClass, src: [2]Class{ClassFlt, noClass}, nsrc: 1, flags: flagRet},

	OpPhi: {name: "phi", dst: noClass /* class taken from dst reg */},
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op := Op(0); op < numOps; op++ {
		if opTable[op].name != "" {
			m[opTable[op].name] = op
		}
	}
	return m
}()

// OpFromString returns the op with the given mnemonic.
func OpFromString(s string) (Op, bool) {
	op, ok := opByName[s]
	return op, ok
}

func (op Op) String() string {
	if op < numOps {
		return opTable[op].name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Info accessors.

// HasDst reports whether the op defines a register.
func (op Op) HasDst() bool { return op == OpPhi || opTable[op].dst != noClass }

// DstClass returns the class of the op's result register. Only valid when
// HasDst is true and op is not OpPhi (a phi's class comes from its Dst reg).
func (op Op) DstClass() Class { return opTable[op].dst }

// NSrc returns the number of register source operands.
func (op Op) NSrc() int { return opTable[op].nsrc }

// SrcClass returns the class of source operand i.
func (op Op) SrcClass(i int) Class { return opTable[op].src[i] }

// HasImm reports whether the op carries an integer immediate.
func (op Op) HasImm() bool { return opTable[op].hasImm }

// HasFImm reports whether the op carries a float immediate.
func (op Op) HasFImm() bool { return opTable[op].hasFImm }

// HasLabel reports whether the op carries a label operand.
func (op Op) HasLabel() bool { return opTable[op].hasLabel }

// IsLoad reports whether the op reads memory.
func (op Op) IsLoad() bool { return opTable[op].flags&flagLoad != 0 }

// IsStore reports whether the op writes memory.
func (op Op) IsStore() bool { return opTable[op].flags&flagStore != 0 }

// IsMem reports whether the op touches memory (the 2-cycle class in the
// paper's cost model).
func (op Op) IsMem() bool { return op.IsLoad() || op.IsStore() }

// IsCopy reports whether the op is a register-to-register copy.
func (op Op) IsCopy() bool { return opTable[op].flags&flagCopy != 0 }

// IsBranch reports whether the op is a conditional branch.
func (op Op) IsBranch() bool { return opTable[op].flags&flagBranch != 0 }

// IsJump reports whether the op is an unconditional jump.
func (op Op) IsJump() bool { return opTable[op].flags&flagJump != 0 }

// IsRet reports whether the op returns from the routine.
func (op Op) IsRet() bool { return opTable[op].flags&flagRet != 0 }

// IsTerminator reports whether the op must end a basic block.
func (op Op) IsTerminator() bool { return op.IsBranch() || op.IsJump() || op.IsRet() }

// IsCommutative reports whether the op's two register sources commute.
func (op Op) IsCommutative() bool { return opTable[op].flags&flagCommut != 0 }

// IsCall reports whether the op is a procedure call.
func (op Op) IsCall() bool { return opTable[op].flags&flagCall != 0 }

// RematCandidate reports whether the op belongs to the never-killed
// candidate class: a value defined by such an instruction can be
// rematerialized, provided its register operands are always available
// (in this language, only the reserved frame pointer). See remat.NeverKilled.
func (op Op) RematCandidate() bool { return opTable[op].flags&flagRemat != 0 }
