package iloc

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders the routine in the textual form accepted by Parse.
func Print(r *Routine) string {
	var b strings.Builder
	b.WriteString("routine ")
	b.WriteString(r.Name)
	b.WriteByte('(')
	for i, p := range r.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.Reg.String())
	}
	b.WriteString(")\n")
	for _, d := range r.Data {
		mode := "rw"
		if d.ReadOnly {
			mode = "ro"
		}
		fmt.Fprintf(&b, "data %s %s %d", d.Label, mode, d.Words)
		if len(d.Init) > 0 {
			b.WriteString(" =")
			for _, v := range d.Init {
				b.WriteByte(' ')
				if d.IsFloat {
					b.WriteString(formatFloat(v))
				} else {
					b.WriteString(strconv.FormatInt(int64(v), 10))
				}
			}
		}
		b.WriteByte('\n')
	}
	for _, blk := range r.Blocks {
		b.WriteString(blk.Label)
		b.WriteString(":\n")
		for _, in := range blk.Instrs {
			b.WriteString("    ")
			b.WriteString(in.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}
