package iloc

import "fmt"

// Builder constructs routines programmatically. The spill phase, the
// benchmark suite and tests use it instead of text when they need to hold
// on to register handles.
type Builder struct {
	rt  *Routine
	cur *Block
}

// NewBuilder starts a routine with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{rt: &Routine{Name: name}}
}

// IntParam declares an integer parameter and returns its register.
func (b *Builder) IntParam() Reg {
	r := b.rt.NewReg(ClassInt)
	b.rt.Params = append(b.rt.Params, Param{Reg: r})
	return r
}

// FltParam declares a float parameter and returns its register.
func (b *Builder) FltParam() Reg {
	r := b.rt.NewReg(ClassFlt)
	b.rt.Params = append(b.rt.Params, Param{Reg: r})
	return r
}

// Int returns a fresh integer virtual register.
func (b *Builder) Int() Reg { return b.rt.NewReg(ClassInt) }

// Flt returns a fresh float virtual register.
func (b *Builder) Flt() Reg { return b.rt.NewReg(ClassFlt) }

// Data adds a static data item and returns its label.
func (b *Builder) Data(label string, readOnly bool, words int, isFloat bool, init ...float64) string {
	b.rt.Data = append(b.rt.Data, Data{
		Label: label, ReadOnly: readOnly, Words: words, IsFloat: isFloat,
		Init: append([]float64(nil), init...),
	})
	return label
}

// Block starts (or continues) the basic block with the given label.
func (b *Builder) Block(label string) {
	if blk := b.rt.BlockByLabel(label); blk != nil {
		b.cur = blk
		return
	}
	blk := &Block{Label: label, Index: len(b.rt.Blocks)}
	b.rt.Blocks = append(b.rt.Blocks, blk)
	b.cur = blk
}

// Emit appends an instruction to the current block.
func (b *Builder) Emit(in *Instr) *Instr {
	if b.cur == nil {
		b.Block("entry")
	}
	if t := b.cur.Terminator(); t != nil {
		panic(fmt.Sprintf("iloc.Builder: emit after terminator in %s", b.cur.Label))
	}
	b.cur.Instrs = append(b.cur.Instrs, in)
	return in
}

// Op shorthands; each returns the emitted instruction.

func (b *Builder) Ldi(dst Reg, imm int64) *Instr    { return b.Emit(MakeLdi(dst, imm)) }
func (b *Builder) Fldi(dst Reg, f float64) *Instr   { return b.Emit(MakeFldi(dst, f)) }
func (b *Builder) Lda(dst Reg, label string) *Instr { return b.Emit(MakeLda(dst, label)) }
func (b *Builder) Mov(dst, src Reg) *Instr          { return b.Emit(MakeMov(dst, src)) }

func (b *Builder) Bin(op Op, dst, x, y Reg) *Instr { return b.Emit(MakeBin(op, dst, x, y)) }
func (b *Builder) Un(op Op, dst, x Reg) *Instr     { return b.Emit(MakeUn(op, dst, x)) }

func (b *Builder) Add(dst, x, y Reg) *Instr  { return b.Bin(OpAdd, dst, x, y) }
func (b *Builder) Sub(dst, x, y Reg) *Instr  { return b.Bin(OpSub, dst, x, y) }
func (b *Builder) Mul(dst, x, y Reg) *Instr  { return b.Bin(OpMul, dst, x, y) }
func (b *Builder) Div(dst, x, y Reg) *Instr  { return b.Bin(OpDiv, dst, x, y) }
func (b *Builder) Fadd(dst, x, y Reg) *Instr { return b.Bin(OpFadd, dst, x, y) }
func (b *Builder) Fsub(dst, x, y Reg) *Instr { return b.Bin(OpFsub, dst, x, y) }
func (b *Builder) Fmul(dst, x, y Reg) *Instr { return b.Bin(OpFmul, dst, x, y) }
func (b *Builder) Fdiv(dst, x, y Reg) *Instr { return b.Bin(OpFdiv, dst, x, y) }
func (b *Builder) Fabs(dst, x Reg) *Instr    { return b.Un(OpFabs, dst, x) }

func (b *Builder) Addi(dst, x Reg, imm int64) *Instr { return b.Emit(MakeImm(OpAddi, dst, x, imm)) }
func (b *Builder) Subi(dst, x Reg, imm int64) *Instr { return b.Emit(MakeImm(OpSubi, dst, x, imm)) }
func (b *Builder) Muli(dst, x Reg, imm int64) *Instr { return b.Emit(MakeImm(OpMuli, dst, x, imm)) }

func (b *Builder) Load(dst, addr Reg) *Instr  { return b.Emit(MakeUn(OpLoad, dst, addr)) }
func (b *Builder) Fload(dst, addr Reg) *Instr { return b.Emit(MakeUn(OpFload, dst, addr)) }
func (b *Builder) Loadai(dst, addr Reg, off int64) *Instr {
	return b.Emit(MakeImm(OpLoadai, dst, addr, off))
}
func (b *Builder) Floadai(dst, addr Reg, off int64) *Instr {
	return b.Emit(MakeImm(OpFloadai, dst, addr, off))
}
func (b *Builder) Loadao(dst, addr, off Reg) *Instr  { return b.Bin(OpLoadao, dst, addr, off) }
func (b *Builder) Floadao(dst, addr, off Reg) *Instr { return b.Bin(OpFloadao, dst, addr, off) }

func (b *Builder) Store(val, addr Reg) *Instr  { return b.Emit(MakeBin(OpStore, NoReg, val, addr)) }
func (b *Builder) Fstore(val, addr Reg) *Instr { return b.Emit(MakeBin(OpFstore, NoReg, val, addr)) }
func (b *Builder) Storeai(val, addr Reg, off int64) *Instr {
	in := MakeBin(OpStoreai, NoReg, val, addr)
	in.Imm = off
	return b.Emit(in)
}
func (b *Builder) Fstoreai(val, addr Reg, off int64) *Instr {
	in := MakeBin(OpFstoreai, NoReg, val, addr)
	in.Imm = off
	return b.Emit(in)
}
func (b *Builder) Getparam(dst Reg, i int64) *Instr {
	return b.Emit(&Instr{Op: OpGetparam, Dst: dst, Src: [2]Reg{NoReg, NoReg}, Imm: i})
}
func (b *Builder) Fgetparam(dst Reg, i int64) *Instr {
	return b.Emit(&Instr{Op: OpFgetparam, Dst: dst, Src: [2]Reg{NoReg, NoReg}, Imm: i})
}

func (b *Builder) Jmp(label string) *Instr {
	return b.Emit(&Instr{Op: OpJmp, Dst: NoReg, Label: label})
}
func (b *Builder) Br(cond Cond, r Reg, ifTrue, ifFalse string) *Instr {
	return b.Emit(&Instr{Op: OpBr, Dst: NoReg, Src: [2]Reg{r, NoReg}, Cond: cond, Label: ifTrue, Label2: ifFalse})
}
func (b *Builder) Ret() *Instr { return b.Emit(&Instr{Op: OpRet, Dst: NoReg}) }
func (b *Builder) Retr(r Reg) *Instr {
	return b.Emit(&Instr{Op: OpRetr, Dst: NoReg, Src: [2]Reg{r, NoReg}})
}
func (b *Builder) Retf(f Reg) *Instr {
	return b.Emit(&Instr{Op: OpRetf, Dst: NoReg, Src: [2]Reg{f, NoReg}})
}

// Routine finalizes and returns the routine.
func (b *Builder) Routine() *Routine {
	b.rt.Reindex()
	return b.rt
}
