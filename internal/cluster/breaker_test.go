package cluster

import (
	"sync"
	"testing"
	"time"
)

// testClock is an injectable manual clock for deterministic breaker
// tests.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock { return &testClock{now: time.Unix(1000, 0)} }

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

type transitionLog struct {
	mu    sync.Mutex
	moves []string
}

func (l *transitionLog) record(from, to BreakerState) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.moves = append(l.moves, from.String()+">"+to.String())
}

func (l *transitionLog) list() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.moves...)
}

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *testClock, *transitionLog) {
	b := NewBreaker(threshold, cooldown)
	clock := newTestClock()
	b.now = clock.Now
	log := &transitionLog{}
	b.OnTransition(log.record)
	return b, clock, log
}

func TestBreakerStaysClosedUnderThreshold(t *testing.T) {
	b, _, log := newTestBreaker(3, time.Second)
	for i := 0; i < 10; i++ {
		b.Failure()
		b.Failure()
		b.Success() // resets the consecutive-failure count
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
	if moves := log.list(); len(moves) != 0 {
		t.Fatalf("unexpected transitions %v", moves)
	}
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _, log := newTestBreaker(3, time.Second)
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Failure()
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after threshold failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request before cooldown")
	}
	if moves := log.list(); len(moves) != 1 || moves[0] != "closed>open" {
		t.Fatalf("transitions = %v, want [closed>open]", moves)
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	b, clock, log := newTestBreaker(2, time.Second)
	b.Failure()
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("breaker did not open")
	}
	clock.Advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("open breaker allowed a request inside the cooldown")
	}
	clock.Advance(2 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("open breaker refused the probe after the cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v after cooldown probe grant, want half-open", b.State())
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("half-open breaker granted a second concurrent probe")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after probe success, want closed", b.State())
	}
	want := []string{"closed>open", "open>half-open", "half-open>closed"}
	if moves := log.list(); len(moves) != 3 || moves[0] != want[0] || moves[1] != want[1] || moves[2] != want[2] {
		t.Fatalf("transitions = %v, want %v", moves, want)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clock, _ := newTestBreaker(2, time.Second)
	b.Failure()
	b.Failure()
	clock.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after probe failure, want open", b.State())
	}
	// The cooldown restarts from the failed probe.
	if b.Allow() {
		t.Fatal("reopened breaker allowed a request immediately")
	}
	clock.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("reopened breaker refused the next probe after a fresh cooldown")
	}
}

func TestBreakerConcurrency(t *testing.T) {
	b := NewBreaker(3, time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if b.Allow() {
					if (n+j)%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
			}
		}(i)
	}
	wg.Wait()
	// No deadlock, no panic; the state is some valid position.
	if s := b.State(); s != BreakerClosed && s != BreakerOpen && s != BreakerHalfOpen {
		t.Fatalf("invalid state %v", s)
	}
}
