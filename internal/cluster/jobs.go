package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/driver"
	"repro/internal/iloc"
	"repro/internal/server"
)

// This file is the proxy's async-job surface. A job lives on exactly
// one backend — the one that accepted its POST /v1/jobs — so routing
// has two halves:
//
//   - Submit routes by the content key of the whole batch (a combined
//     hash of every unit's driver-cache key), so identical job bodies
//     land on the same backend and find their cached units there. The
//     accepting backend is remembered in a bounded jobID → backend
//     map.
//   - Polls, result streams and cancels follow the map. On a miss —
//     the proxy restarted, or a peer proxy took the submit — the
//     proxy broadcasts the lookup to every backend and relays the
//     first answer that is not a 404, re-learning the owner when one
//     claims the job.
//
// Result streams are relayed as streams: bytes flush through as the
// owning backend emits each NDJSON line, so a client watching a live
// job through the proxy sees units as they finish.

// maxJobRoutes bounds the jobID → backend map; the oldest routes are
// forgotten first (a forgotten route degrades to a broadcast, not an
// error).
const maxJobRoutes = 8192

// contextWithTimeout derives a bounded context from the request's.
func contextWithTimeout(r *http.Request, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), d)
}

// JobKey computes the routing key for a POST /v1/jobs body: the
// combined content key of all units — each unit's driver-cache key
// hashed in order — so the whole batch routes as one and lands where
// its units' cached results live. An undecodable body routes by raw
// hash (the backend owns the 400).
func (p *Proxy) JobKey(body []byte) string {
	var req server.BatchRequest
	if err := json.Unmarshal(body, &req); err != nil || len(req.Units) == 0 {
		return rawKey(body)
	}
	def, err := req.Options.Resolve(p.cfg.KeyOptions)
	if err != nil {
		return rawKey(body)
	}
	h := sha256.New()
	for _, bu := range req.Units {
		opts, err := bu.Options.Resolve(def)
		if err != nil {
			return rawKey(body)
		}
		rt, err := iloc.Parse(bu.ILOC)
		if err != nil {
			return rawKey(body)
		}
		fmt.Fprintf(h, "%s\x00", driver.KeyFor(rt, opts))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// rememberJob records (bounded) which backend owns a job.
func (p *Proxy) rememberJob(id, backend string) {
	if id == "" || backend == "" {
		return
	}
	p.jobMu.Lock()
	defer p.jobMu.Unlock()
	if _, known := p.jobOwner[id]; !known {
		p.jobFIFO = append(p.jobFIFO, id)
		for len(p.jobFIFO) > maxJobRoutes {
			delete(p.jobOwner, p.jobFIFO[0])
			p.jobFIFO = p.jobFIFO[1:]
		}
	}
	p.jobOwner[id] = backend
}

// jobBackend looks a job's owner up ("" when unknown).
func (p *Proxy) jobBackend(id string) string {
	p.jobMu.Lock()
	defer p.jobMu.Unlock()
	return p.jobOwner[id]
}

// handleJobSubmit serves POST /v1/jobs: route the whole batch (with
// failover) to the ring owner of its combined content key, remember
// which backend accepted it, relay the answer.
func (p *Proxy) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	tel := p.cfg.Telemetry
	tel.Count("proxy.requests", 1)
	tel.Count("proxy.jobs.submitted", 1)
	body, ok := p.readBody(w, r)
	if !ok {
		return
	}
	deadline, ok := p.deadlineFor(r)
	if !ok {
		writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: "bad X-Deadline-Ms header", RequestID: p.requestID(r)})
		return
	}
	ctx, cancel := contextWithTimeout(r, deadline)
	defer cancel()

	ur, err := p.do(ctx, http.MethodPost, "/v1/jobs", r.Header, body, p.JobKey(body))
	if err != nil {
		p.shed(w, p.requestID(r), err)
		return
	}
	if ur.status == http.StatusOK {
		var jr server.JobResponse
		if err := json.Unmarshal(ur.body, &jr); err == nil {
			p.rememberJob(jr.JobID, ur.backend.id)
		}
	}
	p.relay(w, ur)
}

// handleJobForward serves GET /v1/jobs/{id}, GET /v1/jobs/{id}/results
// and DELETE /v1/jobs/{id}: follow the job-route map to the owning
// backend, or broadcast on a miss. The response is relayed as a
// stream, so live result streams flow through.
func (p *Proxy) handleJobForward(w http.ResponseWriter, r *http.Request) {
	tel := p.cfg.Telemetry
	tel.Count("proxy.requests", 1)
	id := r.PathValue("id")
	if owner := p.jobBackend(id); owner != "" {
		if b := p.backends[owner]; b != nil {
			tel.Count("proxy.jobs.routed", 1)
			if p.forwardStream(w, r, b) {
				return
			}
		}
		// The remembered owner is unreachable; fall through to a
		// broadcast in case the job is answerable elsewhere (it is not,
		// for a live job, but the error shape stays the contract's).
	}
	tel.Count("proxy.jobs.broadcast", 1)
	p.broadcastJob(w, r, id)
}

// broadcastJob asks every backend about a job the proxy holds no route
// for, relaying the first answer that is not a 404 (and re-learning
// the owner). All 404s: the job is unknown cluster-wide.
func (p *Proxy) broadcastJob(w http.ResponseWriter, r *http.Request, id string) {
	for _, bid := range p.ring.Backends() {
		b := p.backends[bid]
		status, ok := p.probeJob(r, b)
		if !ok || status == http.StatusNotFound {
			continue
		}
		// This backend claims the job (any verdict but 404 — including
		// the 410 of an expired one). Remember and relay.
		p.rememberJob(id, bid)
		if p.forwardStream(w, r, b) {
			return
		}
	}
	writeJSON(w, http.StatusNotFound, server.ErrorResponse{
		Error: fmt.Sprintf("unknown job %s (no backend claims it)", id),
	})
	p.cfg.Telemetry.Count("proxy.status.4xx", 1)
}

// probeJob asks one backend whether it knows the job (a HEAD-shaped
// GET of its status) without committing to relaying the answer.
func (p *Proxy) probeJob(r *http.Request, b *Backend) (status int, ok bool) {
	id := r.PathValue("id")
	ctx, cancel := contextWithTimeout(r, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base.String()+"/v1/jobs/"+id, nil)
	if err != nil {
		return 0, false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	return resp.StatusCode, true
}

// forwardStream relays one request to one backend, streaming the
// response through (flushing after every chunk so NDJSON result lines
// reach the client as the backend emits them). Returns false when the
// backend could not be reached at all (nothing was written; the
// caller may try elsewhere).
func (p *Proxy) forwardStream(w http.ResponseWriter, r *http.Request, b *Backend) bool {
	path := r.URL.Path
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, b.base.String()+path, nil)
	if err != nil {
		return false
	}
	for _, h := range []string{"X-Request-ID", "Accept"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.cfg.Telemetry.Count("proxy.upstream.errors", 1)
		b.noteFailure()
		return false
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "X-Request-ID", server.BackendHeader, "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	p.cfg.Telemetry.Count(fmt.Sprintf("proxy.status.%dxx", resp.StatusCode/100), 1)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return true // client went away; the relay is over either way
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return true
		}
	}
}

// handleAudit serves GET /v1/audit cluster-wide: the sum of every
// backend's audit delivery counters (?flush=1 passes through, so one
// probe flushes the whole cluster). Backends without an audit stream
// answer 404 and are skipped; if none has one, the proxy answers 404
// too.
func (p *Proxy) handleAudit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, server.ErrorResponse{Error: "GET only"})
		return
	}
	query := ""
	if r.URL.RawQuery != "" {
		query = "?" + r.URL.RawQuery
	}
	var total server.AuditStatsResponse
	found := 0
	for _, bid := range p.ring.Backends() {
		b := p.backends[bid]
		ctx, cancel := contextWithTimeout(r, 10*time.Second)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base.String()+"/v1/audit"+query, nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := p.client.Do(req)
		if err != nil {
			cancel()
			continue
		}
		if resp.StatusCode == http.StatusOK {
			var st server.AuditStatsResponse
			if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err == nil {
				found++
				total.Enabled = total.Enabled || st.Enabled
				total.Logged += st.Logged
				total.Dropped += st.Dropped
				total.Flushed += st.Flushed
				total.Flushes += st.Flushes
				total.FlushErrors += st.FlushErrors
				if st.FlushError != "" {
					total.FlushError = st.FlushError
				}
			}
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		cancel()
	}
	if found == 0 {
		writeJSON(w, http.StatusNotFound, server.ErrorResponse{Error: "no backend has an audit stream"})
		return
	}
	w.Header().Set("X-Ralloc-Audit-Backends", strconv.Itoa(found))
	writeJSON(w, http.StatusOK, total)
}
