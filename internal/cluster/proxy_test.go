package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/driver"
	"repro/internal/faultnet"
	"repro/internal/iloc"
	"repro/internal/server"
)

// unitSource generates a small, distinct, verifiable routine per index
// so batch tests get content keys that spread across the ring.
func unitSource(i int) string {
	return fmt.Sprintf(
		"routine unit%02d(r1)\nentry:\n getparam r1, 0\n ldi r2, %d\n add r3, r1, r2\n addi r3, r3, %d\n retr r3\n",
		i, i+1, 2*i+3)
}

// unitKey computes the routing key the proxy assigns unitSource(i) under
// the default key options — the same driver-cache key the backend uses.
func unitKey(t *testing.T, i int) string {
	t.Helper()
	rt, err := iloc.Parse(unitSource(i))
	if err != nil {
		t.Fatalf("unitSource(%d) does not parse: %v", i, err)
	}
	return string(driver.KeyFor(rt, server.DefaultOptions()))
}

// testCluster is a live proxy over n real rallocd backends, with a
// fault-injecting transport between them and a per-backend breaker
// transition log.
type testCluster struct {
	proxy    *Proxy
	front    *httptest.Server
	backends []*httptest.Server
	ids      []string // backend URL = ring ID, index-aligned with instance "b<i+1>"
	faults   *faultnet.Transport

	mu    sync.Mutex
	moves map[string][]string // ring ID -> transitions "from>to"
}

func (c *testCluster) recordMove(backend string, from, to BreakerState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.moves[backend] = append(c.moves[backend], from.String()+">"+to.String())
}

func (c *testCluster) movesFor(backend string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.moves[backend]...)
}

// host strips the scheme from a ring ID for faultnet addressing.
func host(id string) string { return strings.TrimPrefix(id, "http://") }

// instanceOf maps a ring ID to the instance name its backend stamps on
// responses ("b1".."bN").
func (c *testCluster) instanceOf(t *testing.T, id string) string {
	t.Helper()
	for i, bid := range c.ids {
		if bid == id {
			return fmt.Sprintf("b%d", i+1)
		}
	}
	t.Fatalf("unknown backend id %q", id)
	return ""
}

// newTestCluster boots n rallocd instances (named b1..bn) behind a
// proxy whose upstream transport is fault-injectable. Probing is off by
// default; mod adjusts the config before construction.
func newTestCluster(t *testing.T, n int, mod func(*Config)) *testCluster {
	t.Helper()
	c := &testCluster{faults: faultnet.NewTransport(nil), moves: make(map[string][]string)}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv := server.New(server.Config{InstanceID: fmt.Sprintf("b%d", i+1)})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		c.backends = append(c.backends, ts)
		urls[i] = ts.URL
	}
	cfg := Config{
		Backends:         urls,
		ProbeInterval:    -1, // off unless the test turns it on
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
		RetryBase:        2 * time.Millisecond,
		RetryMax:         20 * time.Millisecond,
		Transport:        c.faults,
		OnBreakerTransition: func(backend string, from, to BreakerState) {
			c.recordMove(backend, from, to)
		},
	}
	if mod != nil {
		mod(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.proxy = p
	p.Start()
	t.Cleanup(p.Close)
	c.ids = p.ring.Backends()
	c.front = httptest.NewServer(p.Handler())
	t.Cleanup(c.front.Close)
	return c
}

func postJSON(t *testing.T, url string, body any, hdr map[string]string) (int, http.Header, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, out
}

func decodeResponse(t *testing.T, body []byte) server.AllocateResponse {
	t.Helper()
	var ar server.AllocateResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("bad response body: %v\n%s", err, body)
	}
	return ar
}

func TestProxyRoutingAndCacheLocality(t *testing.T) {
	c := newTestCluster(t, 3, nil)
	req := server.AllocateRequest{ILOC: unitSource(0)}
	wantInstance := c.instanceOf(t, c.proxy.Owner(unitKey(t, 0)))

	var firstBackend string
	for round := 0; round < 4; round++ {
		status, hdr, body := postJSON(t, c.front.URL+"/v1/allocate", req, map[string]string{"X-Request-ID": "rt-1"})
		if status != http.StatusOK {
			t.Fatalf("round %d: status = %d\n%s", round, status, body)
		}
		ar := decodeResponse(t, body)
		if len(ar.Results) != 1 || ar.Results[0].Error != "" || !ar.Results[0].Verified {
			t.Fatalf("round %d: unit = %+v", round, ar.Results[0])
		}
		got := hdr.Get(server.BackendHeader)
		if got == "" || got != wantInstance {
			t.Fatalf("round %d: served by %q, ring owner is %q", round, got, wantInstance)
		}
		if ar.Results[0].Backend != got {
			t.Fatalf("round %d: body backend %q != header %q", round, ar.Results[0].Backend, got)
		}
		if hdr.Get("X-Request-ID") != "rt-1" {
			t.Fatalf("round %d: request id %q not echoed", round, hdr.Get("X-Request-ID"))
		}
		if a := hdr.Get("X-Ralloc-Proxy-Attempts"); a != "1" {
			t.Fatalf("round %d: attempts = %q, want 1", round, a)
		}
		if round == 0 {
			firstBackend = got
			continue
		}
		if got != firstBackend {
			t.Fatalf("routing not sticky: %q then %q", firstBackend, got)
		}
		// Same key, same backend: the repeat must hit that backend's
		// content-addressed cache — the locality the ring exists for.
		if !ar.Results[0].CacheHit {
			t.Fatalf("round %d: expected a cache hit on the sticky backend", round)
		}
	}
}

func TestProxyFailoverOnTransportFaults(t *testing.T) {
	cases := []struct {
		name string
		kind string
		arm  func(f *faultnet.Faults)
	}{
		{"5xx", faultnet.Kind5xx, func(f *faultnet.Faults) { f.Fail5xx(1) }},
		{"reset", faultnet.KindReset, func(f *faultnet.Faults) { f.ResetNext(1) }},
		{"truncate", faultnet.KindTruncate, func(f *faultnet.Faults) { f.TruncateNext(1, 32) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newTestCluster(t, 3, nil)
			ownerID := c.proxy.Owner(unitKey(t, 0))
			f := c.faults.Host(host(ownerID))
			tc.arm(f)

			status, hdr, body := postJSON(t, c.front.URL+"/v1/allocate", server.AllocateRequest{ILOC: unitSource(0)}, nil)
			if status != http.StatusOK {
				t.Fatalf("status = %d\n%s", status, body)
			}
			if f.Injected(tc.kind) != 1 {
				t.Fatalf("fault %s fired %d times, want 1 (test vacuous)", tc.kind, f.Injected(tc.kind))
			}
			attempts, _ := strconv.Atoi(hdr.Get("X-Ralloc-Proxy-Attempts"))
			if attempts < 2 {
				t.Fatalf("attempts = %d, want >= 2 (failover)", attempts)
			}
			if got := hdr.Get(server.BackendHeader); got == c.instanceOf(t, ownerID) {
				t.Fatalf("response still served by the faulted owner %q", got)
			}
			ar := decodeResponse(t, body)
			if len(ar.Results) != 1 || !ar.Results[0].Verified {
				t.Fatalf("failover result not verified: %+v", ar.Results)
			}
		})
	}
}

func TestProxyRelaysSaturation429(t *testing.T) {
	// Three backends that are alive but fully saturated: the cluster's
	// answer must be the relayed 429 + Retry-After, never a 5xx, and
	// sheds must not trip breakers (saturation is health).
	var urls []string
	for i := 0; i < 3; i++ {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "7")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"server saturated, retry later","retry_after_sec":7}`)
		}))
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	p, err := New(Config{
		Backends:      urls,
		ProbeInterval: -1,
		MaxAttempts:   3, // one full cycle, then relay the shed
		RetryBase:     time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	front := httptest.NewServer(p.Handler())
	t.Cleanup(front.Close)

	status, hdr, body := postJSON(t, front.URL+"/v1/allocate", server.AllocateRequest{ILOC: unitSource(0)}, nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429\n%s", status, body)
	}
	if hdr.Get("Retry-After") != "7" {
		t.Fatalf("Retry-After = %q, want the backend's 7", hdr.Get("Retry-After"))
	}
	for _, st := range p.Status() {
		if st.Breaker != "closed" {
			t.Fatalf("backend %s breaker %s after sheds; 429 must not count as failure", st.ID, st.Breaker)
		}
	}
}

func TestProxyShedsOnDeadlineBudget(t *testing.T) {
	c := newTestCluster(t, 3, func(cfg *Config) {
		cfg.MaxAttempts = 100
		cfg.RetryBase = 50 * time.Millisecond
		cfg.BreakerCooldown = 10 * time.Second
	})
	for _, id := range c.ids {
		c.faults.Host(host(id)).Partition()
	}
	start := time.Now()
	status, hdr, body := postJSON(t, c.front.URL+"/v1/allocate",
		server.AllocateRequest{ILOC: unitSource(0)},
		map[string]string{"X-Deadline-Ms": "200"})
	elapsed := time.Since(start)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (never a 5xx)\n%s", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if elapsed < 150*time.Millisecond || elapsed > 5*time.Second {
		t.Fatalf("shed after %v; want the ~200ms budget honored", elapsed)
	}
	var er server.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" || er.RetryAfterSec < 1 {
		t.Fatalf("bad shed body: %v\n%s", err, body)
	}
}

func TestProxyBadDeadlineHeader(t *testing.T) {
	c := newTestCluster(t, 2, nil)
	status, _, body := postJSON(t, c.front.URL+"/v1/allocate",
		server.AllocateRequest{ILOC: unitSource(0)},
		map[string]string{"X-Deadline-Ms": "soon"})
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400\n%s", status, body)
	}
}

func TestProxyRelaysBackend400(t *testing.T) {
	c := newTestCluster(t, 3, nil)
	status, hdr, body := postJSON(t, c.front.URL+"/v1/allocate", server.AllocateRequest{ILOC: "not iloc at all"}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want the backend's 400\n%s", status, body)
	}
	if hdr.Get(server.BackendHeader) == "" {
		t.Fatal("relayed 400 lost the backend attribution header")
	}
	var er server.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || !strings.Contains(er.Error, "parse") {
		t.Fatalf("400 body not the backend's parse error: %s", body)
	}
}

func TestProxyOperationalSurface(t *testing.T) {
	c := newTestCluster(t, 3, nil)

	resp, err := http.Get(c.front.URL + "/v1/strategies")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/strategies = %d\n%s", resp.StatusCode, body)
	}
	var sl server.StrategiesResponse
	if err := json.Unmarshal(body, &sl); err != nil || len(sl.Strategies) == 0 {
		t.Fatalf("strategies listing empty or undecodable: %s", body)
	}

	resp, err = http.Get(c.front.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var cs ClusterStatus
	if err := json.Unmarshal(body, &cs); err != nil {
		t.Fatalf("bad /v1/cluster body: %v\n%s", err, body)
	}
	if !cs.Ready || len(cs.Backends) != 3 {
		t.Fatalf("cluster status = %+v", cs)
	}
	for _, b := range cs.Backends {
		if b.Breaker != "closed" || !b.Ready {
			t.Fatalf("backend status = %+v", b)
		}
	}

	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err = http.Get(c.front.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d", ep, resp.StatusCode)
		}
	}

	c.proxy.SetReady(false)
	resp, err = http.Get(c.front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz = %d, want 503", resp.StatusCode)
	}
	c.proxy.SetReady(true)

	resp, err = http.Get(c.front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "proxy.backend.ready.") {
		t.Fatalf("/metrics missing per-backend gauges:\n%s", body)
	}
}

// batchOf builds an n-unit batch request from the synthetic routines.
func batchOf(n int) server.BatchRequest {
	req := server.BatchRequest{Units: make([]server.BatchUnit, n)}
	for i := range req.Units {
		req.Units[i] = server.BatchUnit{ILOC: unitSource(i)}
	}
	return req
}

// singleNodeCodes runs the same batch on one standalone backend and
// returns the per-unit allocated code — the reference the scattered
// cluster run must match byte for byte.
func singleNodeCodes(t *testing.T, n int) []string {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{InstanceID: "solo"}).Handler())
	defer ts.Close()
	status, _, body := postJSON(t, ts.URL+"/v1/batch", batchOf(n), nil)
	if status != http.StatusOK {
		t.Fatalf("single-node reference run: status = %d\n%s", status, body)
	}
	ar := decodeResponse(t, body)
	codes := make([]string, len(ar.Results))
	for i, u := range ar.Results {
		if u.Error != "" || u.Code == "" {
			t.Fatalf("reference unit %d: %+v", i, u)
		}
		codes[i] = u.Code
	}
	return codes
}

// batchOwners returns the distinct ring owners of an n-unit batch.
func batchOwners(t *testing.T, c *testCluster, n int) []string {
	t.Helper()
	seen := make(map[string]bool)
	var owners []string
	for i := 0; i < n; i++ {
		id := c.proxy.Owner(unitKey(t, i))
		if !seen[id] {
			seen[id] = true
			owners = append(owners, id)
		}
	}
	return owners
}

func TestProxyBatchScatterMerge(t *testing.T) {
	const n = 9
	c := newTestCluster(t, 3, nil)
	owners := batchOwners(t, c, n)
	if len(owners) < 2 {
		t.Fatalf("batch of %d units maps to %d owner(s); the scatter path needs >= 2", n, len(owners))
	}
	ref := singleNodeCodes(t, n)

	status, hdr, body := postJSON(t, c.front.URL+"/v1/batch", batchOf(n), nil)
	if status != http.StatusOK {
		t.Fatalf("status = %d\n%s", status, body)
	}
	ar := decodeResponse(t, body)
	if len(ar.Results) != n || ar.Stats.Routines != n {
		t.Fatalf("merged %d results, stats %+v; want %d units", len(ar.Results), ar.Stats, n)
	}
	served := make(map[string]bool)
	for i, u := range ar.Results {
		if u.Name != fmt.Sprintf("unit%02d", i) {
			t.Fatalf("unit %d out of order: %q", i, u.Name)
		}
		if u.Error != "" || !u.Verified {
			t.Fatalf("unit %d: %+v", i, u)
		}
		if u.Code != ref[i] {
			t.Fatalf("unit %d code differs from the single-node run:\n--- cluster ---\n%s\n--- solo ---\n%s", i, u.Code, ref[i])
		}
		if u.Backend == "" {
			t.Fatalf("unit %d lost its backend attribution", i)
		}
		served[u.Backend] = true
	}
	if len(served) < 2 {
		t.Fatalf("all units served by one backend %v; scatter did not spread", served)
	}
	if got := hdr.Get(server.BackendHeader); !strings.Contains(got, ",") {
		t.Fatalf("merged batch header %q should name the contributing backends", got)
	}
}

// TestProxyBatchFailoverByteIdentity kills one backend mid-/v1/batch
// (its response is truncated by the fault harness, the observable shape
// of a process dying while writing) and asserts the completed batch is
// byte-identical to a single-node run, with zero duplicated or lost
// units.
func TestProxyBatchFailoverByteIdentity(t *testing.T) {
	const n = 9
	c := newTestCluster(t, 3, nil)
	owners := batchOwners(t, c, n)
	if len(owners) < 2 {
		t.Fatalf("batch maps to %d owner(s); need a real scatter", len(owners))
	}
	ref := singleNodeCodes(t, n)

	// The victim owns the sub-batch containing unit 0; its next response
	// dies 48 bytes in — mid-body, after the status line was committed.
	victim := c.proxy.Owner(unitKey(t, 0))
	f := c.faults.Host(host(victim))
	f.TruncateNext(1, 48)

	status, _, body := postJSON(t, c.front.URL+"/v1/batch", batchOf(n), nil)
	if status != http.StatusOK {
		t.Fatalf("status = %d\n%s", status, body)
	}
	if f.Injected(faultnet.KindTruncate) < 1 {
		t.Fatal("truncation never fired; the failover path was not exercised")
	}
	ar := decodeResponse(t, body)
	if len(ar.Results) != n {
		t.Fatalf("merged %d results, want %d (no lost or duplicated units)", len(ar.Results), n)
	}
	names := make(map[string]int)
	for i, u := range ar.Results {
		names[u.Name]++
		if u.Error != "" || !u.Verified {
			t.Fatalf("unit %d after failover: %+v", i, u)
		}
		if u.Code != ref[i] {
			t.Fatalf("unit %d code differs from single-node run after failover", i)
		}
	}
	for name, count := range names {
		if count != 1 {
			t.Fatalf("unit %q answered %d times; duplication", name, count)
		}
	}
}

// TestProxyChaosKillOneOfThree is the chaos gate in-process: three live
// backends under concurrent load, one partitioned away mid-run (the
// transport-level shape of SIGKILL) and later restarted. The cluster
// must answer only 200/429, every 200 must be verifier-clean, and the
// dead backend's breaker must observably open, then half-open and close
// on restart.
func TestProxyChaosKillOneOfThree(t *testing.T) {
	c := newTestCluster(t, 3, func(cfg *Config) {
		cfg.ProbeInterval = 25 * time.Millisecond
		cfg.BreakerThreshold = 2
		cfg.BreakerCooldown = 100 * time.Millisecond
	})
	victim := c.proxy.Owner(unitKey(t, 0))
	f := c.faults.Host(host(victim))

	var (
		mu       sync.Mutex
		badCodes []int
		unverif  int
		served   int
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				buf, _ := json.Marshal(server.AllocateRequest{ILOC: unitSource((g*7 + i) % 6)})
				resp, err := client.Post(c.front.URL+"/v1/allocate", "application/json", bytes.NewReader(buf))
				if err != nil {
					t.Errorf("client error (the cluster must always answer): %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				mu.Lock()
				switch resp.StatusCode {
				case http.StatusOK:
					served++
					var ar server.AllocateResponse
					if err := json.Unmarshal(body, &ar); err != nil || len(ar.Results) != 1 ||
						ar.Results[0].Error != "" || !ar.Results[0].Verified {
						unverif++
					}
				case http.StatusTooManyRequests:
					// Acceptable under chaos: saturated, retry later.
				default:
					badCodes = append(badCodes, resp.StatusCode)
				}
				mu.Unlock()
			}
		}(g)
	}

	time.Sleep(300 * time.Millisecond)
	f.Partition() // SIGKILL: the victim vanishes mid-load
	time.Sleep(400 * time.Millisecond)
	f.Heal() // restart
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	if len(badCodes) > 0 {
		t.Fatalf("non-200/429 responses under chaos: %v", badCodes)
	}
	if unverif > 0 {
		t.Fatalf("%d 200 responses were not verifier-clean", unverif)
	}
	if served == 0 {
		t.Fatal("no successful responses at all; load loop vacuous")
	}
	if f.Injected(faultnet.KindPartition) == 0 {
		t.Fatal("partition never fired; chaos vacuous")
	}

	// The breaker must have observably opened while the victim was dead,
	// then half-opened (and closed) once probes saw it return.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if c.proxy.Backend(victim).Breaker().State() == BreakerClosed {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if st := c.proxy.Backend(victim).Breaker().State(); st != BreakerClosed {
		t.Fatalf("victim breaker %v after restart; probes should have closed it", st)
	}
	moves := c.movesFor(victim)
	var opened, halfOpened, reclosed bool
	for _, m := range moves {
		switch m {
		case "closed>open":
			opened = true
		case "open>half-open":
			if opened {
				halfOpened = true
			}
		case "half-open>closed":
			if halfOpened {
				reclosed = true
			}
		}
	}
	if !opened || !halfOpened || !reclosed {
		t.Fatalf("victim breaker transitions %v; want closed>open, then open>half-open, then half-open>closed", moves)
	}
	// Non-victim backends must not have tripped.
	for _, id := range c.ids {
		if id == victim {
			continue
		}
		if moves := c.movesFor(id); len(moves) != 0 {
			t.Fatalf("healthy backend %s breaker moved: %v", id, moves)
		}
	}
}
