// Package cluster is the resilient multi-backend layer of the
// allocation service: a routing proxy (cmd/rallocproxy) that spreads
// /v1/allocate and /v1/batch traffic over a set of rallocd backends by
// consistent-hashing the same content key the driver's result cache
// uses — so every repeat of a (routine, options) pair lands on the
// backend already holding its cached result — wrapped in the failure
// machinery one process cannot provide for itself:
//
//   - Replicated ring placement. A key's failover sequence is the next
//     distinct backends clockwise, so a dead owner's keys concentrate
//     on one successor (which then warms up for them) instead of
//     scattering.
//   - Health. Active /readyz probes per backend plus passive failure
//     accounting from live traffic; a draining or dead backend stops
//     receiving requests within one probe interval.
//   - Circuit breakers. Per backend, closed → open on consecutive
//     failures, half-open probes after a cooldown; a dead backend
//     costs one request per cooldown, not one per arrival.
//   - Bounded retries. Allocation requests are idempotent (pure
//     computation), so transport failures, truncated bodies and 5xx
//     answers fail over along the ring; full cycles back off
//     exponentially with jitter and honor the largest Retry-After a
//     backend sent. Every attempt runs inside the request's deadline
//     budget — retrying never outlives the client's patience.
//   - The cluster contract: the proxy answers 200 (a verified
//     allocation), a backend's own 4xx (deterministic client error),
//     or 429 + Retry-After (cluster saturated or unavailable). It
//     never hangs and never invents a 5xx under load.
//
// The fault-injection harness in internal/faultnet drives this layer's
// `-race` tests; scripts/cluster_smoke.sh kills a live backend under
// load and asserts the contract end to end.
package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/iloc"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// Config configures a Proxy. Backends is required; every other field
// has a production-shaped default.
type Config struct {
	// Backends are the rallocd base URLs ("http://host:port"). At
	// least one is required; duplicates collapse.
	Backends []string
	// VNodes is the virtual-node count per backend on the hash ring
	// (<= 0: 64).
	VNodes int
	// FailoverReplicas bounds how many distinct backends one request
	// may try (<= 0: all of them).
	FailoverReplicas int
	// MaxAttempts bounds total upstream tries per request across all
	// retry cycles (<= 0: max(4, 2*len(Backends))).
	MaxAttempts int
	// RetryBase/RetryMax shape the between-cycle exponential backoff
	// (defaults 25ms / 1s). Jitter is added on top; a backend's
	// Retry-After wins when larger.
	RetryBase time.Duration
	RetryMax  time.Duration
	// ProbeInterval is the active health-probe period (0: 500ms;
	// < 0 disables active probing).
	ProbeInterval time.Duration
	// BreakerThreshold consecutive failures open a backend's breaker
	// (<= 0: 3); BreakerCooldown is the open → half-open delay
	// (<= 0: 1s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// DefaultDeadline applies when the client sends no X-Deadline-Ms
	// (0: 30s); MaxDeadline clamps client-requested deadlines (0: 2m).
	// The budget covers all retries, and its remainder is forwarded to
	// the chosen backend as its own X-Deadline-Ms.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxBodyBytes bounds request bodies (0: 16 MiB).
	MaxBodyBytes int64
	// RetryAfter is the backoff hint for proxy-originated 429s (0: 1s).
	RetryAfter time.Duration
	// KeyOptions is the default allocation configuration assumed when
	// computing routing keys (zero unless KeyOptionsSet: the serving
	// defaults). It only shapes routing — backends still apply their
	// own defaults — so a mismatch costs locality, never correctness.
	KeyOptions    core.Options
	KeyOptionsSet bool
	// Transport performs the upstream requests (nil:
	// http.DefaultTransport). The fault-injection tests hook
	// faultnet.Transport here.
	Transport http.RoundTripper
	// Telemetry receives proxy counters and histograms. A nil sink
	// gets a fresh metrics registry so /metrics always serves.
	Telemetry *telemetry.Sink
	// OnBreakerTransition observes every breaker state change —
	// rallocproxy logs them, the chaos tests assert them.
	OnBreakerTransition func(backend string, from, to BreakerState)
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 2 * len(c.Backends)
		if c.MaxAttempts < 4 {
			c.MaxAttempts = 4
		}
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = time.Second
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if !c.KeyOptionsSet && c.KeyOptions == (core.Options{}) {
		c.KeyOptions = server.DefaultOptions()
	}
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	if c.Telemetry == nil {
		c.Telemetry = &telemetry.Sink{Metrics: telemetry.NewRegistry()}
	} else if c.Telemetry.Metrics == nil {
		t := *c.Telemetry
		t.Metrics = telemetry.NewRegistry()
		c.Telemetry = &t
	}
	return c
}

// Proxy is the consistent-hash routing proxy. Construct with New,
// call Start to launch the health probers, Close to stop them. Safe
// for concurrent use.
type Proxy struct {
	cfg      Config
	ring     *Ring
	backends map[string]*Backend
	client   *http.Client
	mux      *http.ServeMux

	ready  atomic.Bool
	reqSeq atomic.Int64

	// jobOwner maps a job ID to the backend that accepted it (bounded
	// FIFO; see jobs.go).
	jobMu    sync.Mutex
	jobOwner map[string]string
	jobFIFO  []string

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New builds a Proxy over the configured backends.
func New(cfg Config) (*Proxy, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("cluster: no backends configured")
	}
	p := &Proxy{
		cfg:      cfg,
		backends: make(map[string]*Backend),
		client:   &http.Client{Transport: cfg.Transport},
		stop:     make(chan struct{}),
		jobOwner: make(map[string]string),
	}
	var ids []string
	for _, raw := range cfg.Backends {
		u, err := url.Parse(strings.TrimSuffix(raw, "/"))
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: bad backend URL %q", raw)
		}
		id := u.String()
		if _, dup := p.backends[id]; dup {
			continue
		}
		b := newBackend(id, u, cfg.BreakerThreshold, cfg.BreakerCooldown)
		tel := cfg.Telemetry
		hook := cfg.OnBreakerTransition
		bid := id
		b.breaker.OnTransition(func(from, to BreakerState) {
			tel.Count("proxy.breaker."+strings.ReplaceAll(to.String(), "-", "_"), 1)
			if hook != nil {
				hook(bid, from, to)
			}
		})
		p.backends[id] = b
		ids = append(ids, id)
	}
	p.ring = NewRing(ids, cfg.VNodes)
	p.ready.Store(true)

	p.mux = http.NewServeMux()
	p.mux.HandleFunc("/v1/allocate", p.handleAllocate)
	p.mux.HandleFunc("/v1/batch", p.handleBatch)
	p.mux.HandleFunc("POST /v1/jobs", p.handleJobSubmit)
	p.mux.HandleFunc("GET /v1/jobs/{id}", p.handleJobForward)
	p.mux.HandleFunc("GET /v1/jobs/{id}/results", p.handleJobForward)
	p.mux.HandleFunc("DELETE /v1/jobs/{id}", p.handleJobForward)
	p.mux.HandleFunc("/v1/audit", p.handleAudit)
	p.mux.HandleFunc("/v1/strategies", p.handleForwardGET)
	p.mux.HandleFunc("/v1/machines", p.handleForwardGET)
	p.mux.HandleFunc("/v1/cluster", p.handleCluster)
	p.mux.HandleFunc("/healthz", p.handleHealthz)
	p.mux.HandleFunc("/readyz", p.handleReadyz)
	p.mux.HandleFunc("/metrics", p.handleMetrics)
	return p, nil
}

// Handler returns the proxy's HTTP handler tree.
func (p *Proxy) Handler() http.Handler { return p.mux }

// Metrics returns the telemetry registry backing /metrics.
func (p *Proxy) Metrics() *telemetry.Registry { return p.cfg.Telemetry.Metrics }

// SetReady flips the /readyz verdict; the daemon clears it when a
// cluster drain begins.
func (p *Proxy) SetReady(ready bool) { p.ready.Store(ready) }

// Start launches the active health probers (no-op when probing is
// disabled). Pair with Close.
func (p *Proxy) Start() {
	if p.cfg.ProbeInterval < 0 {
		return
	}
	for _, b := range p.backends {
		b := b
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			ticker := time.NewTicker(p.cfg.ProbeInterval)
			defer ticker.Stop()
			for {
				select {
				case <-p.stop:
					return
				case <-ticker.C:
					b.probe(context.Background(), p.client, probeTimeout(p.cfg.ProbeInterval))
				}
			}
		}()
	}
}

// probeTimeout bounds one health probe: the probe interval, floored so
// very tight test intervals still give the backend a chance to answer.
func probeTimeout(interval time.Duration) time.Duration {
	if interval < 100*time.Millisecond {
		return 100 * time.Millisecond
	}
	return interval
}

// Close stops the probers and waits for them.
func (p *Proxy) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// Backend returns the backend with the given ID (its base URL), for
// tests and status inspection.
func (p *Proxy) Backend(id string) *Backend { return p.backends[id] }

// Owner returns the backend ID owning a routing key.
func (p *Proxy) Owner(key string) string { return p.ring.Owner(key) }

// AllocateKey computes the routing key for a POST /v1/allocate body:
// the driver-cache content key of its first routine under the proxy's
// key options — the same address the backend will cache the result
// under. A body that fails to parse routes by its raw hash instead
// (the backend owns producing the 400; the proxy stays transparent).
func (p *Proxy) AllocateKey(body []byte) string {
	var req server.AllocateRequest
	if err := json.Unmarshal(body, &req); err == nil && req.ILOC != "" {
		if opts, err := req.Options.Resolve(p.cfg.KeyOptions); err == nil {
			if routines, err := iloc.ParseProgram(req.ILOC); err == nil && len(routines) > 0 {
				return string(driver.KeyFor(routines[0], opts))
			}
		}
	}
	return rawKey(body)
}

// rawKey addresses an unparseable body by its bytes.
func rawKey(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// --- request handling ---

// requestID resolves the client-supplied X-Request-ID or generates one.
func (p *Proxy) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" {
		return id
	}
	return fmt.Sprintf("proxy-%06d", p.reqSeq.Add(1))
}

// deadlineFor mirrors the backend's budget resolution: X-Deadline-Ms
// clamped to MaxDeadline, DefaultDeadline when absent. The budget
// covers every retry this request makes.
func (p *Proxy) deadlineFor(r *http.Request) (time.Duration, bool) {
	h := r.Header.Get("X-Deadline-Ms")
	if h == "" {
		return p.cfg.DefaultDeadline, true
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil || ms <= 0 {
		return 0, false
	}
	d := time.Duration(ms) * time.Millisecond
	if d > p.cfg.MaxDeadline {
		d = p.cfg.MaxDeadline
	}
	return d, true
}

// readBody drains a bounded request body.
func (p *Proxy) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, p.cfg.MaxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: "bad request body: " + err.Error()})
		return nil, false
	}
	return body, true
}

func (p *Proxy) handleAllocate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, server.ErrorResponse{Error: "POST only"})
		return
	}
	body, ok := p.readBody(w, r)
	if !ok {
		return
	}
	p.routeOne(w, r, body, p.AllocateKey(body))
}

// routeOne relays one request to the ring with failover and answers
// with whatever coherent response the cluster produced.
func (p *Proxy) routeOne(w http.ResponseWriter, r *http.Request, body []byte, key string) {
	tel := p.cfg.Telemetry
	sp := tel.StartSpan(telemetry.CatServer, "proxy"+r.URL.Path)
	defer func() { tel.Observe("proxy.request.wall", sp.End().Nanoseconds()) }()
	tel.Count("proxy.requests", 1)

	deadline, ok := p.deadlineFor(r)
	if !ok {
		writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: "bad X-Deadline-Ms header", RequestID: p.requestID(r)})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	ur, err := p.do(ctx, r.Method, r.URL.Path, r.Header, body, key)
	if err != nil {
		p.shed(w, p.requestID(r), err)
		return
	}
	p.relay(w, ur)
}

// upstreamResponse is one fully-read backend answer.
type upstreamResponse struct {
	status   int
	header   http.Header
	body     []byte
	backend  *Backend
	attempts int
}

var (
	errExhausted   = errors.New("cluster: retry attempts exhausted")
	errUnavailable = errors.New("cluster: no backend available")
	errBudget      = errors.New("cluster: request deadline budget exhausted")
)

// do runs the attempt loop: walk the key's failover sequence, skipping
// unready backends and refused breakers; fail over on transport
// errors, truncated bodies and 5xx; collect 429s and move on; between
// full cycles, back off exponentially with jitter, honoring the
// largest Retry-After a backend sent. Returns the first conclusive
// response (2xx/4xx, or the last 429 when every backend is shedding),
// or an error once attempts or the deadline budget run out.
func (p *Proxy) do(ctx context.Context, method, path string, hdr http.Header, body []byte, key string) (*upstreamResponse, error) {
	tel := p.cfg.Telemetry
	seq := p.ring.Sequence(key, p.cfg.FailoverReplicas)
	if len(seq) == 0 {
		return nil, errUnavailable
	}
	var (
		attempts   int
		lastShed   *upstreamResponse
		retryAfter time.Duration
		backoff    = p.cfg.RetryBase
	)
	for {
		anyReady := false
		for _, id := range seq {
			if p.backends[id].Ready() {
				anyReady = true
				break
			}
		}
		for _, id := range seq {
			if ctx.Err() != nil {
				if lastShed != nil {
					return lastShed, nil
				}
				return nil, errBudget
			}
			if attempts >= p.cfg.MaxAttempts {
				if lastShed != nil {
					return lastShed, nil
				}
				return nil, errExhausted
			}
			b := p.backends[id]
			// Skip unready backends while a ready one exists; if the
			// prober has marked everything down, try the ring order
			// anyway rather than refusing without an attempt.
			if !b.Ready() && anyReady {
				continue
			}
			if !b.breaker.Allow() {
				continue
			}
			attempts++
			if attempts > 1 {
				tel.Count("proxy.retries", 1)
			}
			b.requests.Add(1)
			ur, err := p.try(ctx, b, method, path, hdr, body)
			if err != nil {
				tel.Count("proxy.upstream.errors", 1)
				b.noteFailure()
				b.breaker.Failure()
				continue
			}
			ur.attempts = attempts
			switch {
			case ur.status == http.StatusTooManyRequests:
				// Alive but saturated: health for the breaker, a
				// failover cue for routing.
				b.breaker.Success()
				tel.Count("proxy.upstream.shed", 1)
				if ra := parseRetryAfter(ur.header); ra > retryAfter {
					retryAfter = ra
				}
				lastShed = ur
				continue
			case ur.status >= 500:
				tel.Count("proxy.upstream.5xx", 1)
				b.noteFailure()
				b.breaker.Failure()
				continue
			default:
				b.breaker.Success()
				return ur, nil
			}
		}
		if attempts >= p.cfg.MaxAttempts {
			if lastShed != nil {
				return lastShed, nil
			}
			return nil, errExhausted
		}
		// One full cycle failed. Wait out the backoff (or the largest
		// Retry-After a backend asked for) inside the budget, then go
		// around — a breaker cooldown may have elapsed, a probe may
		// have restored a backend.
		wait := backoff + time.Duration(rand.Int63n(int64(backoff)/2+1))
		if retryAfter > wait {
			wait = retryAfter
		}
		select {
		case <-ctx.Done():
			if lastShed != nil {
				return lastShed, nil
			}
			return nil, errBudget
		case <-time.After(wait):
		}
		backoff *= 2
		if backoff > p.cfg.RetryMax {
			backoff = p.cfg.RetryMax
		}
		retryAfter = 0
	}
}

// try performs one upstream attempt, reading the whole response body
// so mid-body truncation surfaces here as a retriable error.
func (p *Proxy) try(ctx context.Context, b *Backend, method, path string, hdr http.Header, body []byte) (*upstreamResponse, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.base.String()+path, rd)
	if err != nil {
		return nil, err
	}
	for _, h := range []string{"Content-Type", "X-Request-ID", "Accept"} {
		if v := hdr.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	// The backend gets what is left of the budget, so its own deadline
	// degradation engages before the proxy's budget dies.
	if d, ok := ctx.Deadline(); ok {
		ms := time.Until(d).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set("X-Deadline-Ms", strconv.FormatInt(ms, 10))
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("reading %s response: %w", b.id, err)
	}
	return &upstreamResponse{status: resp.StatusCode, header: resp.Header.Clone(), body: data, backend: b}, nil
}

// parseRetryAfter reads a delay-seconds Retry-After value (the only
// form rallocd sends); absent or unparseable is zero.
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	sec, err := strconv.Atoi(v)
	if err != nil || sec < 0 {
		return 0
	}
	return time.Duration(sec) * time.Second
}

// relay copies a backend answer to the client, preserving the headers
// that carry the serving contract.
func (p *Proxy) relay(w http.ResponseWriter, ur *upstreamResponse) {
	for _, h := range []string{"Content-Type", "X-Request-ID", server.BackendHeader, "Retry-After"} {
		if v := ur.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Ralloc-Proxy-Attempts", strconv.Itoa(ur.attempts))
	w.WriteHeader(ur.status)
	w.Write(ur.body)
	p.cfg.Telemetry.Count(fmt.Sprintf("proxy.status.%dxx", ur.status/100), 1)
}

// shed answers a request the cluster could not serve: always 429 +
// Retry-After, never a 5xx — the cluster-level mirror of the backend's
// admission contract. err says why (budget, exhausted, unavailable).
func (p *Proxy) shed(w http.ResponseWriter, id string, err error) {
	sec := int(p.cfg.RetryAfter / time.Second)
	if sec < 1 {
		sec = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(sec))
	writeJSON(w, http.StatusTooManyRequests, server.ErrorResponse{
		Error:         "cluster cannot serve the request now: " + err.Error(),
		RequestID:     id,
		RetryAfterSec: sec,
	})
	p.cfg.Telemetry.Count("proxy.shed", 1)
	p.cfg.Telemetry.Count("proxy.status.4xx", 1)
}

// --- batch scatter-gather ---

func (p *Proxy) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, server.ErrorResponse{Error: "POST only"})
		return
	}
	body, ok := p.readBody(w, r)
	if !ok {
		return
	}

	// Per-unit routing wants each unit's content key; anything that
	// does not decode cleanly is routed whole by raw hash and the
	// backend produces the authoritative 400.
	var req server.BatchRequest
	if err := json.Unmarshal(body, &req); err != nil || len(req.Units) == 0 {
		p.routeOne(w, r, body, rawKey(body))
		return
	}
	def, err := req.Options.Resolve(p.cfg.KeyOptions)
	if err != nil {
		p.routeOne(w, r, body, rawKey(body))
		return
	}
	keys := make([]string, len(req.Units))
	for i, bu := range req.Units {
		opts, err := bu.Options.Resolve(def)
		if err != nil {
			p.routeOne(w, r, body, rawKey(body))
			return
		}
		rt, err := iloc.Parse(bu.ILOC)
		if err != nil {
			p.routeOne(w, r, body, rawKey(body))
			return
		}
		keys[i] = string(driver.KeyFor(rt, opts))
	}

	// Group unit indices by ring owner. One owner: the whole batch
	// relays as-is (with failover); several: scatter sub-batches and
	// merge, preserving input order.
	groups := make(map[string][]int)
	for i, key := range keys {
		owner := p.ring.Owner(key)
		groups[owner] = append(groups[owner], i)
	}
	if len(groups) == 1 {
		p.routeOne(w, r, body, keys[0])
		return
	}
	p.scatter(w, r, &req, keys, groups)
}

// scatter fans a batch's unit groups out to their ring owners
// concurrently, each with the full failover machinery, and merges the
// sub-responses back into input order. Every unit lands in exactly one
// sub-batch and every sub-response must answer exactly its units, so
// units cannot be duplicated or lost — a sub-batch that cannot be
// served conclusively fails the whole request (as a 429 or a relayed
// backend error), never a partial merge.
func (p *Proxy) scatter(w http.ResponseWriter, r *http.Request, req *server.BatchRequest, keys []string, groups map[string][]int) {
	tel := p.cfg.Telemetry
	sp := tel.StartSpan(telemetry.CatServer, "proxy/v1/batch")
	defer func() { tel.Observe("proxy.request.wall", sp.End().Nanoseconds()) }()
	tel.Count("proxy.requests", 1)
	tel.Count("proxy.scatter", 1)

	reqID := p.requestID(r)
	deadline, ok := p.deadlineFor(r)
	if !ok {
		writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: "bad X-Deadline-Ms header", RequestID: reqID})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	type subResult struct {
		idxs []int
		ur   *upstreamResponse
		err  error
	}
	results := make(chan subResult, len(groups))
	for owner, idxs := range groups {
		owner, idxs := owner, idxs
		go func() {
			sub := server.BatchRequest{Units: make([]server.BatchUnit, len(idxs)), Options: req.Options}
			for j, i := range idxs {
				sub.Units[j] = req.Units[i]
			}
			body, err := json.Marshal(sub)
			if err != nil {
				results <- subResult{idxs: idxs, err: err}
				return
			}
			// The group key is its first unit's key: the ring maps it
			// to this owner, and failover walks the owner's successors.
			ur, err := p.do(ctx, http.MethodPost, "/v1/batch", r.Header, body, keys[idxs[0]])
			_ = owner
			results <- subResult{idxs: idxs, ur: ur, err: err}
		}()
	}

	merged := server.AllocateResponse{RequestID: reqID, Results: make([]server.UnitResponse, len(req.Units))}
	filled := make([]bool, len(req.Units))
	backends := make(map[string]bool)
	var subErr error
	var subBad *upstreamResponse
	for range groups {
		sr := <-results
		switch {
		case sr.err != nil:
			subErr = sr.err
		case sr.ur.status != http.StatusOK:
			subBad = sr.ur
		default:
			var ar server.AllocateResponse
			if err := json.Unmarshal(sr.ur.body, &ar); err != nil {
				subErr = fmt.Errorf("undecodable sub-batch response: %w", err)
				continue
			}
			if len(ar.Results) != len(sr.idxs) {
				subErr = fmt.Errorf("sub-batch answered %d units, want %d", len(ar.Results), len(sr.idxs))
				continue
			}
			backendID := sr.ur.header.Get(server.BackendHeader)
			for j, i := range sr.idxs {
				u := ar.Results[j]
				if u.Backend == "" {
					u.Backend = backendID
				}
				merged.Results[i] = u
				filled[i] = true
			}
			if backendID != "" {
				backends[backendID] = true
			}
			mergeStats(&merged.Stats, ar.Stats)
		}
	}
	if subErr != nil {
		p.shed(w, reqID, fmt.Errorf("sub-batch failed: %w", subErr))
		return
	}
	if subBad != nil {
		// A deterministic backend verdict (4xx) for part of the batch:
		// relay it — retrying cannot change it, and inventing a merged
		// answer would hide it.
		p.relay(w, subBad)
		return
	}
	for i, okFilled := range filled {
		if !okFilled {
			p.shed(w, reqID, fmt.Errorf("unit %d unanswered after merge", i))
			return
		}
	}
	ids := make([]string, 0, len(backends))
	for id := range backends {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	w.Header().Set(server.BackendHeader, strings.Join(ids, ","))
	w.Header().Set("X-Request-ID", reqID)
	writeJSON(w, http.StatusOK, merged)
	tel.Count("proxy.status.2xx", 1)
}

// mergeStats folds one sub-batch's stats into the merged response:
// counts add, wall time is the slowest sub-batch (they ran
// concurrently), CPU adds.
func mergeStats(dst *server.BatchStats, src server.BatchStats) {
	dst.Routines += src.Routines
	dst.Failed += src.Failed
	dst.Degraded += src.Degraded
	dst.CacheHits += src.CacheHits
	dst.CacheMisses += src.CacheMisses
	dst.CacheDiskHits += src.CacheDiskHits
	if src.Workers > dst.Workers {
		dst.Workers = src.Workers
	}
	if src.WallMs > dst.WallMs {
		dst.WallMs = src.WallMs
	}
	dst.CPUMs += src.CPUMs
}

// --- operational surface ---

// handleForwardGET relays a read-only endpoint (GET /v1/strategies,
// GET /v1/machines) to any available backend — the listing is
// identical cluster-wide.
func (p *Proxy) handleForwardGET(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, server.ErrorResponse{Error: "GET only"})
		return
	}
	p.routeOne(w, r, nil, r.URL.Path)
}

// handleCluster reports the cluster's shape: ring backends in failover
// health, breaker states, probe and failure counts.
func (p *Proxy) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, server.ErrorResponse{Error: "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, ClusterStatus{Ready: p.ready.Load(), Backends: p.Status()})
}

// ClusterStatus is the GET /v1/cluster body.
type ClusterStatus struct {
	Ready    bool            `json:"ready"`
	Backends []BackendStatus `json:"backends"`
}

// Status snapshots every backend in ring registration order.
func (p *Proxy) Status() []BackendStatus {
	ids := p.ring.Backends()
	out := make([]BackendStatus, len(ids))
	for i, id := range ids {
		out[i] = p.backends[id].status()
	}
	return out
}

func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the cluster-drain surface: 503 once SetReady(false)
// (the proxy stops advertising before in-flight work finishes), and
// 503 while no backend is ready (routing would only shed).
func (p *Proxy) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !p.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	for _, b := range p.backends {
		if b.Ready() {
			fmt.Fprintln(w, "ready")
			return
		}
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintln(w, "no backend ready")
}

// handleMetrics refreshes the per-backend gauges and dumps the
// registry in the flat "name value" format the rest of the repo uses.
func (p *Proxy) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := p.cfg.Telemetry.Metrics
	for _, id := range p.ring.Backends() {
		b := p.backends[id]
		name := metricName(id)
		ready := int64(0)
		if b.Ready() {
			ready = 1
		}
		reg.Gauge("proxy.backend.ready." + name).Set(ready)
		reg.Gauge("proxy.backend.breaker." + name).Set(int64(b.breaker.State()))
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = reg.WriteTo(w)
}

// metricName flattens a backend URL into a metric-name-safe label.
func metricName(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-':
			return r
		default:
			return '_'
		}
	}, id)
}

// writeJSON mirrors the backend's response shaping so proxy-origin
// bodies read the same as backend ones.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
