package cluster

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes traffic, counting consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails fast: the backend gets no traffic until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a bounded number of probe requests; one
	// success closes the breaker, one failure reopens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a per-backend circuit breaker: closed → open after a run
// of consecutive failures, open → half-open once the cooldown elapses,
// half-open → closed on a probe success (→ open again on a probe
// failure). It exists so a dead backend costs the cluster one failed
// request per cooldown instead of one per incoming request: everything
// else fails over along the ring without touching it.
//
// The contract is Allow → exactly one of Success/Failure: Allow
// reserves the half-open probe slot, the outcome report resolves it.
// Safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	threshold int
	cooldown  time.Duration
	maxProbes int
	failures  int
	probes    int
	openedAt  time.Time

	// now is the clock, injectable for deterministic tests.
	now func() time.Time
	// onTransition observes every state change (telemetry, logs,
	// chaos-test assertions). Called without the breaker lock held.
	onTransition func(from, to BreakerState)
}

// NewBreaker builds a closed breaker: threshold consecutive failures
// open it (<= 0: 3), cooldown is the open → half-open delay (<= 0: 1s).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, maxProbes: 1, now: time.Now}
}

// OnTransition installs the state-change observer. Set before traffic.
func (b *Breaker) OnTransition(fn func(from, to BreakerState)) { b.onTransition = fn }

// State reports the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether a request may proceed. In the open state it
// transitions to half-open once the cooldown has elapsed, granting the
// caller the probe slot; a true return obliges the caller to report
// Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	var fire func()
	defer func() {
		b.mu.Unlock()
		if fire != nil {
			fire()
		}
	}()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		fire = b.transition(BreakerHalfOpen)
		b.probes = 1
		return true
	default: // half-open
		if b.probes >= b.maxProbes {
			return false
		}
		b.probes++
		return true
	}
}

// Success reports a request that reached the backend and got a
// coherent answer (any parseable HTTP response that is not a 5xx —
// a 429 means "alive but saturated", which is health, not failure).
func (b *Breaker) Success() {
	b.mu.Lock()
	var fire func()
	switch b.state {
	case BreakerClosed:
		b.failures = 0
	case BreakerHalfOpen:
		fire = b.transition(BreakerClosed)
		b.failures = 0
		b.probes = 0
	}
	b.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// Failure reports a transport error, timeout, truncated body, or 5xx.
func (b *Breaker) Failure() {
	b.mu.Lock()
	var fire func()
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			fire = b.transition(BreakerOpen)
			b.openedAt = b.now()
		}
	case BreakerHalfOpen:
		fire = b.transition(BreakerOpen)
		b.openedAt = b.now()
		b.probes = 0
	}
	b.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// transition changes state and returns the deferred observer call (to
// run after the lock is released, so observers may inspect the
// breaker).
func (b *Breaker) transition(to BreakerState) func() {
	from := b.state
	b.state = to
	if b.onTransition == nil || from == to {
		return nil
	}
	fn := b.onTransition
	return func() { fn(from, to) }
}
