package cluster

import (
	"context"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"
)

// Backend is one rallocd instance behind the proxy: its base URL, the
// verdict of the active health prober, and its circuit breaker. The
// two signals compose: the prober flips `ready` (and feeds the breaker
// so a backend that dies between requests is discovered without
// sacrificing client traffic), the breaker accumulates passive
// failures from real requests. Routing skips a backend that is
// unready or whose breaker refuses the request — unless every backend
// is refused, in which case the ring order is tried anyway: the
// cluster would rather attempt a doubtful backend than refuse without
// trying ("a cheap guaranteed path must always exist").
type Backend struct {
	id      string
	base    *url.URL
	breaker *Breaker

	// ready is the active prober's last verdict. It starts true —
	// optimism costs one failed request, pessimism would black-hole a
	// healthy cluster until the first probe lands.
	ready atomic.Bool

	probes      atomic.Int64
	probeFails  atomic.Int64
	requests    atomic.Int64
	failures    atomic.Int64
	lastFailure atomic.Int64 // unix nanos, 0 = never
}

func newBackend(id string, base *url.URL, threshold int, cooldown time.Duration) *Backend {
	b := &Backend{id: id, base: base, breaker: NewBreaker(threshold, cooldown)}
	b.ready.Store(true)
	return b
}

// ID returns the backend's ring identity (its base URL).
func (b *Backend) ID() string { return b.id }

// Ready reports the active prober's last verdict.
func (b *Backend) Ready() bool { return b.ready.Load() }

// Breaker exposes the backend's circuit breaker (tests assert its
// state machine; /v1/cluster reports it).
func (b *Backend) Breaker() *Breaker { return b.breaker }

// noteFailure records a passive failure for status reporting.
func (b *Backend) noteFailure() {
	b.failures.Add(1)
	b.lastFailure.Store(time.Now().UnixNano())
}

// probe performs one active health check: GET /readyz with a bounded
// context. A 200 marks the backend ready and — when the breaker is
// recovering — serves as its half-open probe, closing the circuit
// without spending a client request. Anything else (non-200, timeout,
// transport failure) marks it unready and counts as a breaker failure,
// so a backend that dies quietly between requests is evicted from
// routing by the prober alone.
func (b *Backend) probe(ctx context.Context, client *http.Client, timeout time.Duration) {
	b.probes.Add(1)
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.base.String()+"/readyz", nil)
	if err != nil {
		return
	}
	resp, err := client.Do(req)
	if err == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		resp.Body.Close()
	}
	if err != nil || resp.StatusCode != http.StatusOK {
		b.probeFails.Add(1)
		b.ready.Store(false)
		b.noteFailure()
		b.breaker.Failure()
		return
	}
	b.ready.Store(true)
	if b.breaker.State() != BreakerClosed && b.breaker.Allow() {
		b.breaker.Success()
	}
}

// BackendStatus is one backend's row in the /v1/cluster report.
type BackendStatus struct {
	ID       string `json:"id"`
	Ready    bool   `json:"ready"`
	Breaker  string `json:"breaker"`
	Requests int64  `json:"requests"`
	Failures int64  `json:"failures"`
	Probes   int64  `json:"probes"`
}

func (b *Backend) status() BackendStatus {
	return BackendStatus{
		ID:       b.id,
		Ready:    b.ready.Load(),
		Breaker:  b.breaker.State().String(),
		Requests: b.requests.Load(),
		Failures: b.failures.Load(),
		Probes:   b.probes.Load(),
	}
}
