package cluster

import (
	"fmt"
	"testing"
)

func sampleKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
	}
	return keys
}

func TestRingDeterminism(t *testing.T) {
	ids := []string{"http://a", "http://b", "http://c"}
	r1 := NewRing(ids, 64)
	r2 := NewRing(ids, 64)
	for _, k := range sampleKeys(200) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("key %q: owners differ between identical rings", k)
		}
	}
	// Registration order must not matter either: the ring is a pure
	// function of the backend set.
	r3 := NewRing([]string{"http://c", "http://a", "http://b"}, 64)
	for _, k := range sampleKeys(200) {
		if r1.Owner(k) != r3.Owner(k) {
			t.Fatalf("key %q: owner depends on registration order", k)
		}
	}
}

func TestRingBalance(t *testing.T) {
	ids := []string{"http://a", "http://b", "http://c"}
	r := NewRing(ids, 64)
	counts := make(map[string]int)
	keys := sampleKeys(3000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for _, id := range ids {
		if counts[id] < len(keys)/10 {
			t.Fatalf("backend %s owns only %d/%d keys — ring badly unbalanced (%v)", id, counts[id], len(keys), counts)
		}
	}
}

func TestRingMinimalDisruption(t *testing.T) {
	all := []string{"http://a", "http://b", "http://c", "http://d"}
	rAll := NewRing(all, 64)
	rLess := NewRing(all[:3], 64)
	moved := 0
	for _, k := range sampleKeys(2000) {
		was := rAll.Owner(k)
		now := rLess.Owner(k)
		if was != "http://d" && was != now {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("removing one backend moved %d keys owned by surviving backends; consistent hashing must move none", moved)
	}
}

func TestRingSequence(t *testing.T) {
	ids := []string{"http://a", "http://b", "http://c"}
	r := NewRing(ids, 64)
	for _, k := range sampleKeys(100) {
		seq := r.Sequence(k, 0)
		if len(seq) != len(ids) {
			t.Fatalf("key %q: sequence has %d backends, want %d", k, len(seq), len(ids))
		}
		seen := make(map[string]bool)
		for _, id := range seq {
			if seen[id] {
				t.Fatalf("key %q: backend %s appears twice in failover sequence", k, id)
			}
			seen[id] = true
		}
		if seq[0] != r.Owner(k) {
			t.Fatalf("key %q: sequence head %s is not the owner %s", k, seq[0], r.Owner(k))
		}
		if got := r.Sequence(k, 2); len(got) != 2 || got[0] != seq[0] || got[1] != seq[1] {
			t.Fatalf("key %q: bounded sequence %v does not prefix full sequence %v", k, got, seq)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if owner := NewRing(nil, 8).Owner("k"); owner != "" {
		t.Fatalf("empty ring owner = %q, want empty", owner)
	}
	r := NewRing([]string{"http://only"}, 8)
	for _, k := range sampleKeys(20) {
		if r.Owner(k) != "http://only" {
			t.Fatal("single-backend ring must own every key")
		}
	}
}
