package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/server"
)

// jobBody builds an n-unit batch whose unit keys spread across the
// ring (so the job-level combined key genuinely exercises whole-batch
// routing).
func jobBody(n int) server.BatchRequest {
	req := server.BatchRequest{Units: make([]server.BatchUnit, n)}
	for i := range req.Units {
		req.Units[i] = server.BatchUnit{Name: fmt.Sprintf("u%02d", i), ILOC: unitSource(i)}
	}
	return req
}

func decodeJobResp(t *testing.T, body []byte) server.JobResponse {
	t.Helper()
	var jr server.JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("bad job body: %v\n%s", err, body)
	}
	return jr
}

// pollProxyJob polls the job through the proxy until terminal.
func pollProxyJob(t *testing.T, front, id string) server.JobResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(front + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("proxy poll = %d\n%s", resp.StatusCode, buf.String())
		}
		jr := decodeJobResp(t, buf.Bytes())
		if jr.State == "done" || jr.State == "canceled" {
			return jr
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, jr.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// streamProxyResults reads the NDJSON result stream through the proxy.
func streamProxyResults(t *testing.T, front, id string) []server.UnitResponse {
	t.Helper()
	resp, err := http.Get(front + "/v1/jobs/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxy results = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type through proxy = %q", ct)
	}
	var out []server.UnitResponse
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var u server.UnitResponse
		if err := json.Unmarshal(sc.Bytes(), &u); err != nil {
			t.Fatalf("bad NDJSON line through proxy: %v\n%s", err, sc.Text())
		}
		out = append(out, u)
	}
	return out
}

// TestProxyJobEndToEnd: submit through the proxy, poll and stream
// through the proxy, and get code bytes identical to a synchronous
// /v1/batch of the same body through the same proxy.
func TestProxyJobEndToEnd(t *testing.T) {
	c := newTestCluster(t, 3, nil)
	body := jobBody(6)

	status, _, syncRaw := postJSON(t, c.front.URL+"/v1/batch", body, nil)
	if status != http.StatusOK {
		t.Fatalf("sync batch = %d\n%s", status, syncRaw)
	}
	sync := decodeResponse(t, syncRaw)

	status, hdr, raw := postJSON(t, c.front.URL+"/v1/jobs", body, nil)
	if status != http.StatusOK {
		t.Fatalf("submit = %d\n%s", status, raw)
	}
	jr := decodeJobResp(t, raw)
	if jr.JobID == "" || jr.Units != 6 {
		t.Fatalf("submit response %+v", jr)
	}
	// The proxy relays the owning backend's identity.
	if hdr.Get(server.BackendHeader) == "" || jr.Backend == "" {
		t.Fatalf("no backend attribution: header %q, body %q", hdr.Get(server.BackendHeader), jr.Backend)
	}
	// The proxy learned the route at submit time.
	if owner := c.proxy.jobBackend(jr.JobID); owner == "" {
		t.Fatal("proxy did not remember the job's owner")
	}

	final := pollProxyJob(t, c.front.URL, jr.JobID)
	if final.State != "done" || final.Completed != 6 || final.Failed != 0 {
		t.Fatalf("final %+v", final)
	}
	// All of a job's units ran on its one owning backend.
	if final.Backend != jr.Backend {
		t.Fatalf("job moved backends: %q then %q", jr.Backend, final.Backend)
	}

	units := streamProxyResults(t, c.front.URL, jr.JobID)
	if len(units) != 6 {
		t.Fatalf("streamed %d units, want 6", len(units))
	}
	for i, u := range units {
		if u.Code == "" || u.Code != sync.Results[i].Code {
			t.Fatalf("unit %d code differs between async (via proxy) and sync:\n%q\nvs\n%q", i, u.Code, sync.Results[i].Code)
		}
		if u.Backend != jr.Backend {
			t.Fatalf("unit %d ran on %q, job owner is %q", i, u.Backend, jr.Backend)
		}
	}

	// Affinity: the identical body routes to the same backend again.
	status, _, raw = postJSON(t, c.front.URL+"/v1/jobs", body, nil)
	if status != http.StatusOK {
		t.Fatalf("resubmit = %d", status)
	}
	if again := decodeJobResp(t, raw); again.Backend != jr.Backend {
		t.Fatalf("identical body routed to %q, first went to %q", again.Backend, jr.Backend)
	}
}

// TestProxyJobBroadcastOnRouteMiss: a proxy with no route for a live
// job (restart, or a peer proxy accepted it) finds the owner by
// broadcast; an ID no backend claims is a clean 404.
func TestProxyJobBroadcastOnRouteMiss(t *testing.T) {
	c := newTestCluster(t, 3, nil)
	status, _, raw := postJSON(t, c.front.URL+"/v1/jobs", jobBody(3), nil)
	if status != http.StatusOK {
		t.Fatalf("submit = %d", status)
	}
	jr := decodeJobResp(t, raw)
	pollProxyJob(t, c.front.URL, jr.JobID)

	// Forget the route — the proxy must rediscover it.
	c.proxy.jobMu.Lock()
	c.proxy.jobOwner = make(map[string]string)
	c.proxy.jobFIFO = nil
	c.proxy.jobMu.Unlock()

	final := pollProxyJob(t, c.front.URL, jr.JobID)
	if final.State != "done" {
		t.Fatalf("rediscovered job state %s", final.State)
	}
	if owner := c.proxy.jobBackend(jr.JobID); owner == "" {
		t.Fatal("broadcast did not re-learn the owner")
	}
	if units := streamProxyResults(t, c.front.URL, jr.JobID); len(units) != 3 {
		t.Fatalf("results after rediscovery: %d units", len(units))
	}

	resp, err := http.Get(c.front.URL + "/v1/jobs/job-999999-cafebabe")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unclaimed job = %d, want 404", resp.StatusCode)
	}
}

// TestProxyJobCancelRelays: DELETE through the proxy reaches the
// owning backend.
func TestProxyJobCancelRelays(t *testing.T) {
	c := newTestCluster(t, 2, nil)
	status, _, raw := postJSON(t, c.front.URL+"/v1/jobs", jobBody(4), nil)
	if status != http.StatusOK {
		t.Fatalf("submit = %d", status)
	}
	jr := decodeJobResp(t, raw)

	req, _ := http.NewRequest(http.MethodDelete, c.front.URL+"/v1/jobs/"+jr.JobID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel through proxy = %d\n%s", resp.StatusCode, buf.String())
	}
	final := pollProxyJob(t, c.front.URL, jr.JobID)
	if final.State != "done" && final.State != "canceled" {
		t.Fatalf("state after cancel = %s", final.State)
	}
}

// proxyCollectSink gathers audit uploads for the aggregation test.
type proxyCollectSink struct {
	mu sync.Mutex
	n  int
}

func (s *proxyCollectSink) Upload(b []byte) error {
	s.mu.Lock()
	s.n += bytes.Count(b, []byte("\n"))
	s.mu.Unlock()
	return nil
}
func (s *proxyCollectSink) Close() error { return nil }

// TestProxyAuditAggregation: GET /v1/audit through the proxy sums the
// delivery counters of every backend with an audit stream.
func TestProxyAuditAggregation(t *testing.T) {
	sinks := make([]*proxyCollectSink, 2)
	urls := make([]string, 2)
	for i := range urls {
		sinks[i] = &proxyCollectSink{}
		logger, err := audit.New(audit.Config{Sink: sinks[i]})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { logger.Close() })
		srv := server.New(server.Config{InstanceID: fmt.Sprintf("a%d", i+1), Audit: logger})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	p, err := New(Config{Backends: urls, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	front := httptest.NewServer(p.Handler())
	t.Cleanup(front.Close)

	// Drive enough distinct units through the proxy that both backends
	// produce verdicts.
	status, _, raw := postJSON(t, front.URL+"/v1/batch", jobBody(8), nil)
	if status != http.StatusOK {
		t.Fatalf("batch = %d\n%s", status, raw)
	}

	resp, err := http.Get(front.URL + "/v1/audit?flush=1")
	if err != nil {
		t.Fatal(err)
	}
	var st server.AuditStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !st.Enabled {
		t.Fatalf("aggregated audit = %d %+v", resp.StatusCode, st)
	}
	if st.Logged != 8 || st.Flushed != 8 || st.Dropped != 0 {
		t.Fatalf("aggregated stats %+v, want 8 logged+flushed across the cluster", st)
	}
	if got := resp.Header.Get("X-Ralloc-Audit-Backends"); got != "2" {
		t.Fatalf("X-Ralloc-Audit-Backends = %q, want 2", got)
	}
}

// TestProxyAuditWithoutStreams404s: a cluster whose backends have no
// audit stream answers 404, same as a single backend would.
func TestProxyAuditWithoutStreams404s(t *testing.T) {
	c := newTestCluster(t, 2, nil)
	resp, err := http.Get(c.front.URL + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/audit = %d, want 404", resp.StatusCode)
	}
}
