package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// The ring implements consistent hashing with virtual nodes: each
// backend owns VNodes points on a 64-bit circle, a key routes to the
// first point clockwise from its own hash, and failover walks on to
// the next *distinct* backend. Because the routing key is the same
// content address the driver's result cache uses, all requests for one
// (routine, options) pair land on one backend — its L1/L2 cache tiers
// see every repeat — and adding or removing a backend only moves the
// keys adjacent to its points (1/N of the space), not the whole
// key population.

// ringPoint is one virtual node: a position on the circle owned by a
// backend.
type ringPoint struct {
	hash uint64
	id   string
}

// Ring is an immutable consistent-hash ring over a set of backend IDs.
// Build with NewRing; safe for concurrent use.
type Ring struct {
	points []ringPoint
	ids    []string // distinct backend ids, registration order
}

// NewRing places each id at vnodes points (vnodes <= 0: 64) on the
// circle. IDs must be distinct; duplicates collapse.
func NewRing(ids []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	seen := make(map[string]bool, len(ids))
	r := &Ring{}
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		r.ids = append(r.ids, id)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: pointHash(fmt.Sprintf("%s#%d", id, i)), id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id
	})
	return r
}

// pointHash maps a label onto the circle. sha256 keeps placement
// independent of Go's map/hash seeds: the same backend set always
// yields the same ring, across processes and restarts — a proxy
// restart cannot silently reshuffle cache locality.
func pointHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Backends returns the distinct backend IDs in registration order.
func (r *Ring) Backends() []string { return append([]string(nil), r.ids...) }

// Owner returns the backend owning key, or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	seq := r.Sequence(key, 1)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// Sequence returns up to n distinct backends in failover order for
// key: the owner first, then successive distinct backends clockwise.
// n <= 0 returns every backend. This is the ring's replica placement:
// retries walk the sequence so a dead owner's keys consistently fail
// over to the same next backend (which then accumulates the warm
// cache for them).
func (r *Ring) Sequence(key string, n int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.ids) {
		n = len(r.ids)
	}
	h := pointHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if start == len(r.points) {
		start = 0
	}
	seq := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(seq) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.id] {
			continue
		}
		seen[p.id] = true
		seq = append(seq, p.id)
	}
	return seq
}
