package machines

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/iloc"
	"repro/internal/suite"
	"repro/internal/target"
	"repro/internal/verify"
)

// TestSuiteVerifiesAcrossZoo sweeps the whole kernel suite across every
// registered machine, at its native K and at the starved variant, with
// the independent verifier required to accept every result — zero
// rejections anywhere in the zoo. Degradations are tolerated at
// starved K (three colors can defeat the iterated allocator) but
// logged, so a machine that starts degrading en masse is visible.
func TestSuiteVerifiesAcrossZoo(t *testing.T) {
	type unit struct {
		name string
		rt   *iloc.Routine
	}
	var units []unit
	for _, k := range suite.All() {
		units = append(units, unit{k.Name, k.Routine()})
		for i, crt := range k.CalleeRoutines() {
			units = append(units, unit{fmt.Sprintf("%s/callee%d", k.Name, i), crt})
		}
	}
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			variants := []struct {
				m       *target.Machine
				starved bool
			}{{e.Machine, false}, {Starved(e.Machine), true}}
			for _, v := range variants {
				degraded := 0
				for _, u := range units {
					res, err := core.Allocate(context.Background(), u.rt, core.Options{
						Machine: v.m, Mode: core.ModeRemat, Verify: true,
					})
					if err != nil {
						t.Errorf("%s @ %s: %v", u.name, v.m.Name, err)
						continue
					}
					if err := verify.Check(u.rt, res.Routine, v.m, verify.Options{}); err != nil {
						t.Errorf("%s @ %s: verifier rejected result: %v", u.name, v.m.Name, err)
					}
					if res.Degraded {
						degraded++
					}
				}
				if degraded > 0 && !v.starved {
					t.Errorf("%s: %d/%d kernels degraded at native K", v.m.Name, degraded, len(units))
				}
				t.Logf("%s: %d/%d degraded", v.m.Name, degraded, len(units))
			}
		})
	}
}
