package machines

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/iloc"
	"repro/internal/target"
)

func TestRegistryNames(t *testing.T) {
	want := []string{"standard", "huge", "x86-64", "aarch64", "embedded-8"}
	got := Names()
	if len(got) < len(want) {
		t.Fatalf("Names() = %v, want at least %v", got, want)
	}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("Names()[%d] = %q, want %q (registration order is the API order)", i, got[i], name)
		}
	}
	all := All()
	if len(all) != len(got) {
		t.Fatalf("All() has %d entries, Names() %d", len(all), len(got))
	}
	for i, e := range all {
		if e.Name != got[i] || e.Machine == nil || e.Description == "" {
			t.Fatalf("All()[%d] = %+v: incomplete entry", i, e)
		}
	}
}

func TestLookupClonesAndValidates(t *testing.T) {
	for _, name := range Names() {
		m, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("Lookup(%q) returned an invalid machine: %v", name, err)
		}
		// Lookup hands out clones: mutating one must not corrupt the zoo.
		m.Regs[0] = 2
		again, _ := Lookup(name)
		if again.Regs[0] == 2 {
			t.Fatalf("Lookup(%q) shares state between calls", name)
		}
	}
}

func TestLookupRegsSweep(t *testing.T) {
	m, err := Lookup("regs=24")
	if err != nil {
		t.Fatal(err)
	}
	if m.Regs[0] != 24 || m.K(iloc.Class(0)) != 23 {
		t.Fatalf("regs=24 resolved to %+v", m)
	}
	want := target.WithRegs(24)
	if ShapeKey(m) != ShapeKey(want) {
		t.Fatalf("regs=24 shape %s, want WithRegs shape %s", ShapeKey(m), ShapeKey(want))
	}

	// Degenerate sweep points fail with the validator's story, not a
	// misallocation downstream.
	for _, bad := range []string{"regs=1", "regs=0", "regs=-3", "regs=x"} {
		if _, err := Lookup(bad); err == nil {
			t.Errorf("Lookup(%q) succeeded, want error", bad)
		}
	}
}

func TestLookupUnknownListsRegistry(t *testing.T) {
	_, err := Lookup("vax")
	var unknown *UnknownMachineError
	if !errors.As(err, &unknown) {
		t.Fatalf("Lookup(vax) err = %v, want *UnknownMachineError", err)
	}
	if unknown.Name != "vax" {
		t.Fatalf("unknown.Name = %q", unknown.Name)
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list registered machine %q", err, name)
		}
	}
}

func TestRegisterRejectsCollisions(t *testing.T) {
	mustPanic := func(why string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("Register accepted %s", why)
			}
		}()
		f()
	}
	mustPanic("a duplicate name", func() {
		Register("again", target.Standard())
	})
	mustPanic("a duplicate shape under a new name", func() {
		m := target.Standard()
		m.Name = "standard-prime"
		Register("same shape as standard", m)
	})
	mustPanic("a reserved spelling", func() {
		m := target.WithRegs(20)
		m.Name = "regs=20"
		Register("parameterized spelling", m)
	})
	mustPanic("an invalid machine", func() {
		m := target.WithRegs(2)
		m.Name = "too-small"
		Register("fails Validate", m)
	})
	mustPanic("a nil machine", func() {
		Register("nil", nil)
	})
}

func TestStarvedVariantsValidate(t *testing.T) {
	for _, e := range All() {
		s := Starved(e.Machine)
		if err := s.Validate(); err != nil {
			t.Errorf("Starved(%s) = %+v does not validate: %v", e.Name, s, err)
		}
		if s.Name == e.Name {
			t.Errorf("Starved(%s) kept the original name", e.Name)
		}
		for c := iloc.Class(0); c < iloc.NumClasses; c++ {
			if s.K(c) > 3 {
				t.Errorf("Starved(%s) class %s has %d colors, want <= 3", e.Name, c, s.K(c))
			}
		}
	}
}
