// Package machines is the target-machine zoo: a registry of named,
// validated machine descriptions on top of internal/target, selectable
// per-request by name everywhere the stack accepts options — the
// "machine" field of /v1/allocate and per-unit on /v1/batch and
// /v1/jobs, GET /v1/machines, and the -machine flag of the CLIs.
//
// The paper evaluates rematerialization on a single 16-register test
// machine, but the allocator's cost model and spill decisions are
// parameterized by the target, and spill behavior changes qualitatively
// with register count and bank structure (Bouchez, Darte and Rastello,
// "On the Complexity of Spill Everywhere under SSA Form"). The zoo
// pins down a handful of realistic points in that space so the
// verifier, the suite and the benchmarks exercise more than one
// machine:
//
//   - standard     the paper's 16-register test machine
//   - huge         the paper's 128-register zero-spill baseline
//   - x86-64       16 registers per bank, a small caller-save
//     partition, and pricier memory traffic
//   - aarch64      32-register banks (31 allocatable colors), a wide
//     caller-save scratch set
//   - embedded-8   8-register banks — the starved end of the space,
//     where nearly everything spills
//
// Beyond the named entries, the parameterized spelling "regs=N"
// resolves to the target.WithRegs sweep point (Validate-checked, so
// "regs=1" fails with a descriptive error instead of misallocating
// downstream).
//
// Every registration is Validate-checked, and no two registered
// machines may share a cache-key shape (register file, partition, cost
// model): distinct names mean distinct allocations, so per-machine
// results never share a content-addressed cache entry and route to
// distinct cluster owners.
package machines

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/iloc"
	"repro/internal/target"
)

// Entry is one registered machine: the validated description plus the
// one-line story GET /v1/machines tells about it.
type Entry struct {
	Name        string
	Description string
	Machine     *target.Machine
}

// UnknownMachineError reports a Lookup miss. The serving layer surfaces
// Registered to clients so a 400 names every valid choice (mirroring
// core.UnknownStrategyError for strategies).
type UnknownMachineError struct {
	Name       string
	Registered []string
}

func (e *UnknownMachineError) Error() string {
	return fmt.Sprintf("unknown machine %q (registered: %s; or regs=N for a sweep point)",
		e.Name, strings.Join(e.Registered, ", "))
}

var (
	mu    sync.RWMutex
	reg   = map[string]Entry{}
	order []string
)

// ShapeKey renders the semantic identity of a machine — the register
// file, the calling-convention partition and the cycle cost model,
// everything the allocator's output can depend on — as one comparable
// string. Two machines with equal shape keys configure identical
// allocations; the registry rejects a second registration with the
// shape of an existing one so "distinct machine names, distinct cache
// keys" holds by construction.
func ShapeKey(m *target.Machine) string {
	return fmt.Sprintf("regs=%d,%d callersave=%d mem=%d other=%d",
		m.Regs[0], m.Regs[1], m.CallerSave, m.MemCycles, m.OtherCycles)
}

// Register adds a machine to the zoo. Registration is init-time wiring,
// so a nil or invalid machine, an empty or reserved name ("regs=N"), a
// duplicate name, or a shape collision with an already-registered
// machine panics.
func Register(description string, m *target.Machine) {
	if m == nil || m.Name == "" {
		panic("machines: Register: machine needs a name")
	}
	if strings.ContainsAny(m.Name, "=,: \t\n") {
		panic(fmt.Sprintf("machines: Register: invalid name %q", m.Name))
	}
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("machines: Register %q: %v", m.Name, err))
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := reg[m.Name]; dup {
		panic(fmt.Sprintf("machines: Register: duplicate machine %q", m.Name))
	}
	shape := ShapeKey(m)
	for _, name := range order {
		if ShapeKey(reg[name].Machine) == shape {
			panic(fmt.Sprintf("machines: Register %q: shape %s already registered as %q (distinct machines must differ in register file, partition or cost model)",
				m.Name, shape, name))
		}
	}
	reg[m.Name] = Entry{Name: m.Name, Description: description, Machine: m}
	order = append(order, m.Name)
}

// Names lists the registered machine names in registration order.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	return append([]string(nil), order...)
}

// All lists the registered machines in registration order. The entries
// carry the registry's own Machine pointers; callers must treat them as
// read-only (Lookup returns clones for callers that configure
// allocations).
func All() []Entry {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Entry, len(order))
	for i, name := range order {
		out[i] = reg[name]
	}
	return out
}

// Lookup resolves a machine name to a fresh clone of its description:
// a registered name, or the parameterized "regs=N" spelling of a
// target.WithRegs sweep point. The result is always Validate-clean —
// a degenerate sweep point ("regs=1") fails here with the validator's
// descriptive error, and an unregistered name returns
// *UnknownMachineError listing every valid choice.
func Lookup(name string) (*target.Machine, error) {
	if n, ok := strings.CutPrefix(name, "regs="); ok {
		regs, err := strconv.Atoi(n)
		if err != nil {
			return nil, fmt.Errorf("machine %q: bad register count %q", name, n)
		}
		m := target.WithRegs(regs)
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("machine %q: %w", name, err)
		}
		return m, nil
	}
	mu.RLock()
	e, ok := reg[name]
	mu.RUnlock()
	if !ok {
		return nil, &UnknownMachineError{Name: name, Registered: Names()}
	}
	return e.Machine.Clone(), nil
}

// Starved derives the register-starved variant of a machine used by the
// sweep tests: banks clamped to four registers (three colors) with the
// caller-save partition shrunk to fit, the cost model kept. The result
// always validates.
func Starved(m *target.Machine) *target.Machine {
	s := m.Clone()
	s.Name = m.Name + "-starved"
	for c := range s.Regs {
		if s.Regs[c] > 4 {
			s.Regs[c] = 4
		}
	}
	minK := s.K(iloc.Class(0))
	for c := iloc.Class(0); c < iloc.NumClasses; c++ {
		if k := s.K(c); k < minK {
			minK = k
		}
	}
	if s.CallerSave > minK-1 {
		s.CallerSave = minK - 1
	}
	return s
}

func init() {
	// The paper's two presets, under their historical names; the
	// registry is the one place their shapes are declared authoritative.
	Register("the paper's 16-register test machine (2-cycle memory operations)", target.Standard())
	Register("the paper's 128-register zero-spill baseline (Table 1's reference)", target.Huge())

	// x86-64-ish: 16 registers per bank like the standard machine, but a
	// small caller-save partition (three scratch colors per class) and a
	// pricier memory hierarchy — rematerialization pays off more, and
	// call-crossing ranges fight less for callee-save colors.
	Register("x86-64-ish: 16-register banks, small caller-save partition, 4-cycle memory",
		&target.Machine{
			Name:        "x86-64",
			Regs:        [iloc.NumClasses]int{16, 16},
			CallerSave:  3,
			MemCycles:   4,
			OtherCycles: 1,
		})

	// AArch64-ish: 32-register banks (31 allocatable colors after the
	// reserved register 0) with a wide caller-save scratch set, roughly
	// the AAPCS64 split.
	Register("aarch64-ish: 32-register banks (31 colors), wide caller-save scratch set, 3-cycle memory",
		&target.Machine{
			Name:        "aarch64",
			Regs:        [iloc.NumClasses]int{32, 32},
			CallerSave:  18,
			MemCycles:   3,
			OtherCycles: 1,
		})

	// The starved end of the zoo: 8-register banks, 7 colors, nearly
	// everything under pressure spills — the regime the spill-everywhere
	// complexity results speak to.
	Register("embedded-8: 8-register banks (7 colors) — the starved end of the zoo",
		&target.Machine{
			Name:        "embedded-8",
			Regs:        [iloc.NumClasses]int{8, 8},
			CallerSave:  2,
			MemCycles:   2,
			OtherCycles: 1,
		})
}
