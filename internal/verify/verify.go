// Package verify is an allocator-independent checker for finished
// allocations: given the input routine, the allocated routine and the
// machine the allocator colored for, it re-derives every safety property
// the allocation must satisfy without trusting any of the allocator's
// intermediate state. This is translation-validation in the style of
// verified-compiler work (cf. Schneider et al., "A Linear First-Order
// Functional Intermediate Language for Verified Compilers"): the checker
// is a small, separate program whose soundness does not depend on the
// correctness of the coloring, coalescing or spill machinery it audits.
//
// Rules, in the order they run:
//
//	structure     the allocated routine passes iloc.Verify and is
//	              marked Allocated
//	bounds        every register is a physical color within the
//	              machine's bank for its class (1..K; fp is register 0)
//	use-before-def  static liveness over the allocated code shows no
//	              path using a register before it is defined
//	caller-save   no caller-save color is live across a call
//	spill-slots   spill slots lie inside the frame, are written before
//	              they are read on every path, and are never shared
//	              between the integer and float banks
//	remat         every rematerialization recomputes a never-killed
//	              instruction whose operands are always available
//	differential  (optional) both routines execute in the interpreter
//	              and must produce the same return value and memory image
//
// The differential check only runs for routines whose inputs come
// entirely from their static data — no parameters, no calls, since the
// checker has no argument values or callees to supply.
package verify

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/cfg"
	"repro/internal/iloc"
	"repro/internal/interp"
	"repro/internal/liveness"
	"repro/internal/target"
	"repro/internal/telemetry"
)

// Options tunes a check.
type Options struct {
	// Differential enables the interpreter equivalence check on routines
	// without parameters or calls.
	Differential bool
	// MaxSteps bounds each differential execution (default 2 million).
	MaxSteps int64
	// Telemetry, when non-nil, receives one span per rule (category
	// "verify") and verify.* counters. A nil sink costs nothing.
	Telemetry *telemetry.Sink
}

func (o Options) withDefaults() Options {
	if o.MaxSteps == 0 {
		o.MaxSteps = 2_000_000
	}
	return o
}

// Violation is one broken rule.
type Violation struct {
	// Rule names the check that failed (structure, bounds,
	// use-before-def, caller-save, spill-slots, remat, differential).
	Rule string
	// Detail describes the violation, usually quoting the instruction.
	Detail string
}

func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// Error reports a rejected allocation: every violation found, not just
// the first.
type Error struct {
	Routine    string
	Violations []Violation
}

func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verify: %s: %d violation(s)", e.Routine, len(e.Violations))
	for _, v := range e.Violations {
		b.WriteString("\n  " + v.String())
	}
	return b.String()
}

// checker accumulates violations for one run.
type checker struct {
	m          *target.Machine
	input      *iloc.Routine
	allocated  *iloc.Routine
	opts       Options
	violations []Violation
}

func (c *checker) flag(rule, format string, args ...any) {
	c.violations = append(c.violations, Violation{Rule: rule, Detail: fmt.Sprintf(format, args...)})
}

// Check validates allocated against input on machine m. Neither routine
// is modified (the checker clones before running CFG analyses). It
// returns nil for a clean allocation and an *Error listing every
// violation otherwise.
func Check(input, allocated *iloc.Routine, m *target.Machine, opts Options) error {
	c := &checker{m: m, input: input, allocated: allocated, opts: opts.withDefaults()}
	tel := c.opts.Telemetry
	tel.Count("verify.checks", 1)
	err := c.run()
	tel.Count("verify.violations", int64(len(c.violations)))
	if err != nil {
		tel.Count("verify.rejections", 1)
	}
	return err
}

// run executes the rules in order, timing each under a telemetry span
// so long batch runs show where verification time goes.
func (c *checker) run() error {
	// Structural soundness gates everything else: the later rules assume
	// well-formed blocks, operands of the right class, and no φ-nodes.
	// (A missing Allocated mark is flagged but does not gate — the code
	// itself is still well-formed enough for the dataflow rules.)
	wellFormed := true
	c.rule("structure", func() {
		if err := iloc.Verify(c.allocated, false); err != nil {
			c.flag("structure", "%v", err)
			wellFormed = false
			return
		}
		if !c.allocated.Allocated {
			c.flag("structure", "routine is not marked allocated")
		}
	})
	if !wellFormed {
		return c.err()
	}
	c.rule("bounds", c.checkBounds)
	if len(c.violations) > 0 {
		// Out-of-bank registers would index liveness sets out of range.
		return c.err()
	}

	// The dataflow rules need CFG edges; cfg.Build prunes unreachable
	// blocks, so run it on a clone to leave the caller's routine alone.
	rt := c.allocated.Clone()
	if err := cfg.Build(rt); err != nil {
		c.flag("structure", "CFG: %v", err)
		return c.err()
	}
	c.rule("use-before-def", func() { c.checkUseBeforeDef(rt) })
	c.rule("caller-save", func() { c.checkCallerSave(rt) })
	c.rule("spill-slots", func() { c.checkSpillSlots(rt) })
	c.rule("remat", c.checkRemat)
	if c.opts.Differential && len(c.violations) == 0 {
		c.rule("differential", c.checkDifferential)
	}
	return c.err()
}

// rule runs one named check under a telemetry span, recording how many
// violations it added; it returns true when the rule passed clean.
func (c *checker) rule(name string, f func()) bool {
	before := len(c.violations)
	sp := c.opts.Telemetry.StartSpan(telemetry.CatVerify, name)
	f()
	added := len(c.violations) - before
	if added != 0 {
		sp.Arg("violations", int64(added))
	}
	sp.End()
	return added == 0
}

func (c *checker) err() error {
	if len(c.violations) == 0 {
		return nil
	}
	return &Error{Routine: c.allocated.Name, Violations: c.violations}
}

// checkBounds: every register the code mentions is a physical register
// of its class's bank: 0 (reserved) up to Regs[class]-1, i.e. a color in
// [1, K] or the frame pointer.
func (c *checker) checkBounds() {
	check := func(r iloc.Reg, in *iloc.Instr) {
		if !r.Valid() {
			return
		}
		if r.N < 0 || r.N >= c.m.Regs[r.Class] {
			c.flag("bounds", "register %s outside the %d-register %s bank in %q",
				r, c.m.Regs[r.Class], r.Class, in)
		}
	}
	c.allocated.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
		check(in.Def(), in)
		for _, u := range in.Uses() {
			check(u, in)
		}
	})
}

// checkUseBeforeDef: solve liveness over the allocated code; a register
// live into the entry block is one some path reads before any write.
// Physical registers hold no values at routine entry (parameters arrive
// through getparam), so the entry's live-in set must be empty apart from
// the always-defined frame pointer.
func (c *checker) checkUseBeforeDef(rt *iloc.Routine) {
	for cl := iloc.Class(0); cl < iloc.NumClasses; cl++ {
		info := liveness.Compute(rt, cl)
		info.LiveIn[rt.Entry().Index].ForEach(func(r int) {
			if r != 0 {
				c.flag("use-before-def", "register %s%d read before any definition on some path",
					bankPrefix(cl), r)
			}
		})
	}
}

// checkCallerSave: walking each block backward from its live-out set, no
// register in the caller-save band (colors 1..CallerSave) may be live
// across a call — the callee is free to clobber it.
func (c *checker) checkCallerSave(rt *iloc.Routine) {
	for cl := iloc.Class(0); cl < iloc.NumClasses; cl++ {
		info := liveness.Compute(rt, cl)
		for _, b := range rt.Blocks {
			live := info.LiveOut[b.Index].Copy()
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := b.Instrs[i]
				if in.Op.IsCall() {
					live.ForEach(func(r int) {
						if r >= 1 && r <= c.m.CallerSave {
							c.flag("caller-save", "caller-save register %s%d live across %q",
								bankPrefix(cl), r, in)
						}
					})
				}
				if d := in.Def(); d.Valid() && d.Class == cl && d.N != 0 {
					live.Remove(d.N)
				}
				for _, u := range in.Uses() {
					if u.Class == cl && u.N != 0 {
						live.Add(u.N)
					}
				}
			}
		}
	}
}

// spillAccess classifies one frame access inserted by the spill phase.
type spillAccess struct {
	off   int64
	class iloc.Class
	store bool
	in    *iloc.Instr
}

// spillAccessOf recognizes the allocator's spill traffic: IsSpill
// loads/stores addressed off the frame pointer.
func spillAccessOf(in *iloc.Instr) (spillAccess, bool) {
	if !in.IsSpill {
		return spillAccess{}, false
	}
	switch in.Op {
	case iloc.OpLoadai:
		if in.Src[0].IsFP() {
			return spillAccess{off: in.Imm, class: iloc.ClassInt, in: in}, true
		}
	case iloc.OpFloadai:
		if in.Src[0].IsFP() {
			return spillAccess{off: in.Imm, class: iloc.ClassFlt, in: in}, true
		}
	case iloc.OpStoreai:
		if in.Src[1].IsFP() {
			return spillAccess{off: in.Imm, class: iloc.ClassInt, store: true, in: in}, true
		}
	case iloc.OpFstoreai:
		if in.Src[1].IsFP() {
			return spillAccess{off: in.Imm, class: iloc.ClassFlt, store: true, in: in}, true
		}
	}
	return spillAccess{}, false
}

// checkSpillSlots: spill traffic stays inside the frame the routine
// declares, every spilled slot is written before it is read on all
// paths (forward must-analysis over fp offsets), and no slot serves
// both register banks — the aliasing the slot-per-live-range discipline
// must prevent.
func (c *checker) checkSpillSlots(rt *iloc.Routine) {
	frameBytes := int64(rt.FrameWords) * 8
	classOf := map[int64]iloc.Class{} // slot -> bank that stores to it
	rt.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
		sa, ok := spillAccessOf(in)
		if !ok {
			return
		}
		if sa.off < 0 || sa.off+8 > frameBytes {
			c.flag("spill-slots", "slot %d outside the %d-word frame in %q", sa.off, rt.FrameWords, in)
			return
		}
		if sa.off%8 != 0 {
			c.flag("spill-slots", "unaligned slot %d in %q", sa.off, in)
			return
		}
		if sa.store {
			if prev, ok := classOf[sa.off]; ok && prev != sa.class {
				c.flag("spill-slots", "slot %d aliased across banks (%s and %s) in %q",
					sa.off, prev, sa.class, in)
			} else {
				classOf[sa.off] = sa.class
			}
		}
	})

	// Forward must-analysis: a slot is definitely written at a point when
	// every path from the entry stores to it first. Any fp-relative
	// store counts as a write (the program's own frame traffic included);
	// only the allocator's spill reloads are required to be dominated by
	// a write — the program's locals follow its own conventions.
	written := make([]map[int64]bool, len(rt.Blocks))
	transfer := func(b *iloc.Block, in map[int64]bool, report bool) map[int64]bool {
		out := make(map[int64]bool, len(in))
		for k := range in {
			out[k] = true
		}
		for _, instr := range b.Instrs {
			switch instr.Op {
			case iloc.OpStoreai, iloc.OpFstoreai:
				if instr.Src[1].IsFP() {
					out[instr.Imm] = true
				}
			case iloc.OpLoadai, iloc.OpFloadai:
				if instr.IsSpill && instr.Src[0].IsFP() && !out[instr.Imm] && report {
					c.flag("spill-slots", "slot %d read before any store on some path in %q",
						instr.Imm, instr)
				}
			}
		}
		return out
	}
	// A nil set is ⊤ (everything written): unvisited blocks must start
	// at ⊤ so a loop header's back edge does not erase the stores that
	// dominate the loop — ⊤ is the identity of the intersection.
	blockIn := func(b *iloc.Block) map[int64]bool {
		if b == rt.Entry() {
			return map[int64]bool{}
		}
		var in map[int64]bool
		seen := false
		for _, p := range b.Preds {
			po := written[p.Index]
			if po == nil {
				continue // ⊤: identity for intersection
			}
			if !seen {
				in, seen = po, true
			} else {
				in = intersect(in, po)
			}
		}
		if in == nil {
			in = map[int64]bool{}
		}
		return in
	}
	rpo := cfg.ReversePostorder(rt)
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			out := transfer(b, blockIn(b), false)
			if !sameSet(out, written[b.Index]) {
				written[b.Index] = out
				changed = true
			}
		}
	}
	for _, b := range rpo {
		transfer(b, blockIn(b), true)
	}
}

func intersect(a, b map[int64]bool) map[int64]bool {
	if b == nil {
		return map[int64]bool{}
	}
	out := make(map[int64]bool)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func sameSet(a, b map[int64]bool) bool {
	if b == nil || len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// checkRemat: a spill-phase instruction that is not slot traffic must be
// a rematerialization — the recomputation of a never-killed instruction.
// Never-killed means the op is in the candidate class and its register
// operands are always available, which in this language is only the
// reserved frame pointer (§3.1 of the paper).
func (c *checker) checkRemat() {
	c.allocated.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
		if !in.IsSpill {
			return
		}
		if _, isSlot := spillAccessOf(in); isSlot {
			return
		}
		if !in.Op.RematCandidate() {
			c.flag("remat", "spill-phase instruction %q is neither slot traffic nor a never-killed recomputation", in)
			return
		}
		for _, u := range in.Uses() {
			if !u.IsFP() {
				c.flag("remat", "rematerialized %q reads %s, which is not always available", in, u)
			}
		}
	})
}

// checkDifferential runs the input and the allocated routine in the
// interpreter and compares return values and memory images. Requires a
// self-contained routine: no parameters to fabricate, no callees to
// resolve.
func (c *checker) checkDifferential() {
	if len(c.input.Params) > 0 {
		return
	}
	hasCall := false
	c.input.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
		if in.Op.IsCall() {
			hasCall = true
		}
	})
	if hasCall {
		return
	}

	run := func(rt *iloc.Routine) (*interp.Outcome, *interp.Env, error) {
		e, err := interp.New(rt, interp.Config{MaxSteps: c.opts.MaxSteps})
		if err != nil {
			return nil, nil, err
		}
		out, err := e.Run()
		return out, e, err
	}
	want, wantEnv, err := run(c.input)
	if err != nil {
		// The input itself faults or exceeds the budget; there is no
		// reference behavior to compare against.
		return
	}
	got, gotEnv, err := run(c.allocated)
	if err != nil {
		c.flag("differential", "allocated code fails where the input succeeds: %v", err)
		return
	}
	if want.HasRet != got.HasRet {
		c.flag("differential", "return presence differs: input %t, allocated %t", want.HasRet, got.HasRet)
		return
	}
	if want.HasRet {
		if want.RetInt != got.RetInt {
			c.flag("differential", "integer result differs: input %d, allocated %d", want.RetInt, got.RetInt)
		}
		if math.Float64bits(want.RetFloat) != math.Float64bits(got.RetFloat) {
			c.flag("differential", "float result differs: input %g, allocated %g", want.RetFloat, got.RetFloat)
		}
	}
	// Writable static data is the only memory both executions share a
	// name for; the images must agree word for word.
	for _, d := range c.input.Data {
		if d.ReadOnly {
			continue
		}
		wantBase := wantEnv.DataAddr(d.Label)
		gotBase := gotEnv.DataAddr(d.Label)
		for w := 0; w < d.Words; w++ {
			a := wantEnv.IntAt(wantBase + int64(w)*8)
			b := gotEnv.IntAt(gotBase + int64(w)*8)
			if a != b {
				c.flag("differential", "memory differs at %s[%d]: input %#x, allocated %#x", d.Label, w, a, b)
			}
		}
	}
}

func bankPrefix(c iloc.Class) string {
	if c == iloc.ClassInt {
		return "r"
	}
	return "f"
}
