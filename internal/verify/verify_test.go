package verify_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/iloc"
	"repro/internal/target"
	"repro/internal/verify"
)

// selfContained computes from constants and static data only, so the
// differential check runs on it.
const selfContained = `
routine k()
data out rw 1
entry:
    ldi r1, 5
    ldi r2, 7
    add r3, r1, r2
    lda r4, out
    store r3, r4
    retr r3
`

// loadHeavy defines more simultaneously-live non-rematerializable
// values (loads) than a 2-color machine holds, forcing store/reload
// spill code under ModeChaitin.
const loadHeavy = `
routine k()
data a rw 8 = 1 2 3 4 5 6 7 8
entry:
    lda r1, a
    load r2, r1
    loadai r3, r1, 8
    loadai r4, r1, 16
    loadai r5, r1, 24
    loadai r6, r1, 32
    add r7, r2, r3
    add r7, r7, r4
    add r7, r7, r5
    add r7, r7, r6
    add r7, r7, r2
    retr r7
`

// acrossCall keeps a value live across a call, which the calling
// convention forces into a callee-save color.
const acrossCall = `
routine k()
entry:
    ldi r1, 7
    call g
    getret r2
    add r3, r1, r2
    retr r3
`

func allocate(t *testing.T, src string, opts core.Options) (input, allocated *iloc.Routine) {
	t.Helper()
	input = iloc.MustParse(src)
	res, err := core.Allocate(context.Background(), input, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatalf("test allocation degraded: %s", res.DegradeReason)
	}
	return input, res.Routine
}

// expectRule checks that the mutated allocation is rejected with a
// violation of the given rule.
func expectRule(t *testing.T, input, mutated *iloc.Routine, m *target.Machine, rule string) {
	t.Helper()
	err := verify.Check(input, mutated, m, verify.Options{Differential: true})
	if err == nil {
		t.Fatalf("mutation accepted; want a %s violation\n%s", rule, iloc.Print(mutated))
	}
	var ve *verify.Error
	if !errors.As(err, &ve) {
		t.Fatalf("not a *verify.Error: %v", err)
	}
	for _, v := range ve.Violations {
		if v.Rule == rule {
			return
		}
	}
	t.Fatalf("no %s violation in: %v", rule, err)
}

// findOp locates the first instruction with the op (and, when imm >= 0,
// that immediate) in the routine.
func findOp(t *testing.T, rt *iloc.Routine, op iloc.Op, imm int64) *iloc.Instr {
	t.Helper()
	var found *iloc.Instr
	rt.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
		if found == nil && in.Op == op && (imm < 0 || in.Imm == imm) {
			found = in
		}
	})
	if found == nil {
		t.Fatalf("no %v instruction in\n%s", op, iloc.Print(rt))
	}
	return found
}

func TestAcceptsGoodAllocations(t *testing.T) {
	for _, src := range []string{selfContained, loadHeavy} {
		for _, m := range []*target.Machine{target.Standard(), target.WithRegs(3)} {
			for _, mode := range []core.Mode{core.ModeChaitin, core.ModeRemat} {
				input, alloc := allocate(t, src, core.Options{Machine: m, Mode: mode})
				if err := verify.Check(input, alloc, m, verify.Options{Differential: true}); err != nil {
					t.Fatalf("%s %v: %v", m.Name, mode, err)
				}
			}
		}
	}
}

func TestRejectsUnallocatedFlag(t *testing.T) {
	m := target.Standard()
	input, alloc := allocate(t, selfContained, core.Options{Machine: m, Mode: core.ModeRemat})
	alloc.Allocated = false
	expectRule(t, input, alloc, m, "structure")
}

func TestRejectsOutOfBankRegister(t *testing.T) {
	m := target.Standard()
	input, alloc := allocate(t, selfContained, core.Options{Machine: m, Mode: core.ModeRemat})
	findOp(t, alloc, iloc.OpLdi, 5).Dst.N = m.Regs[iloc.ClassInt] // first color past the bank
	expectRule(t, input, alloc, m, "bounds")
}

// Clobbering a live register: redirecting the second constant's
// definition onto the color holding the first leaves the original
// target undefined on the path to its use.
func TestRejectsClobberedLiveRegister(t *testing.T) {
	m := target.Standard()
	input, alloc := allocate(t, selfContained, core.Options{Machine: m, Mode: core.ModeRemat})
	five := findOp(t, alloc, iloc.OpLdi, 5)
	seven := findOp(t, alloc, iloc.OpLdi, 7)
	if five.Dst == seven.Dst {
		t.Fatal("test premise broken: both constants share a color")
	}
	seven.Dst = five.Dst
	expectRule(t, input, alloc, m, "use-before-def")
}

// A silent change of a computed value — one no dataflow rule can see —
// falls to the interpreter differential.
func TestDifferentialCatchesWrongConstant(t *testing.T) {
	m := target.Standard()
	input, alloc := allocate(t, selfContained, core.Options{Machine: m, Mode: core.ModeRemat})
	findOp(t, alloc, iloc.OpLdi, 7).Imm = 8
	expectRule(t, input, alloc, m, "differential")
}

// Dropping a spill store leaves its reload reading a slot nothing
// wrote: the restore-without-save half of the classic spill bug.
func TestRejectsDroppedSpillStore(t *testing.T) {
	m := target.WithRegs(3)
	input, alloc := allocate(t, loadHeavy, core.Options{Machine: m, Mode: core.ModeChaitin})
	dropped := false
	for _, b := range alloc.Blocks {
		for i, in := range b.Instrs {
			if !dropped && in.IsSpill && in.Op == iloc.OpStoreai && in.Src[1].IsFP() {
				b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
				dropped = true
				break
			}
		}
	}
	if !dropped {
		t.Fatalf("no spill store to drop in\n%s", iloc.Print(alloc))
	}
	expectRule(t, input, alloc, m, "spill-slots")
}

// A spill access outside the declared frame would alias the routine's
// locals or fall off the frame entirely.
func TestRejectsOutOfFrameSlot(t *testing.T) {
	m := target.WithRegs(3)
	input, alloc := allocate(t, loadHeavy, core.Options{Machine: m, Mode: core.ModeChaitin})
	findOp(t, alloc, iloc.OpStoreai, -1).Imm = int64(alloc.FrameWords)*8 + 64
	expectRule(t, input, alloc, m, "spill-slots")
}

// Moving a callee-save value into the caller-save band leaves it live
// across the call, where the callee may clobber it.
func TestRejectsCallerSaveViolation(t *testing.T) {
	m := target.Standard()
	input, alloc := allocate(t, acrossCall, core.Options{Machine: m, Mode: core.ModeRemat})
	cs := findOp(t, alloc, iloc.OpLdi, 7).Dst.N
	if cs <= m.CallerSave {
		t.Fatalf("test premise broken: value across call in caller-save color %d", cs)
	}
	// Retarget it to a caller-save color nothing else touches, so the
	// value genuinely stays live across the call in the mutant.
	used := map[int]bool{}
	alloc.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
		if in.Dst.Valid() && in.Dst.Class == iloc.ClassInt {
			used[in.Dst.N] = true
		}
		for i := 0; i < in.Op.NSrc(); i++ {
			if in.Src[i].Class == iloc.ClassInt {
				used[in.Src[i].N] = true
			}
		}
	})
	victim := 0
	for c := 1; c <= m.CallerSave; c++ {
		if !used[c] {
			victim = c
			break
		}
	}
	if victim == 0 {
		t.Fatal("no free caller-save color to move the value into")
	}
	alloc.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
		if in.Dst.Valid() && in.Dst.Class == iloc.ClassInt && in.Dst.N == cs {
			in.Dst.N = victim
		}
		for i := 0; i < in.Op.NSrc(); i++ {
			if in.Src[i].Class == iloc.ClassInt && in.Src[i].N == cs {
				in.Src[i].N = victim
			}
		}
	})
	expectRule(t, input, alloc, m, "caller-save")
}

// A spill-phase instruction that neither touches a slot nor recomputes
// a never-killed value is not a legitimate rematerialization.
func TestRejectsRematTamper(t *testing.T) {
	m := target.Standard()
	input, alloc := allocate(t, selfContained, core.Options{Machine: m, Mode: core.ModeRemat})
	findOp(t, alloc, iloc.OpAdd, -1).IsSpill = true
	expectRule(t, input, alloc, m, "remat")
}

// A remat-candidate op whose register operand is not the frame pointer
// is not always available at its reload points.
func TestRejectsRematWithUnavailableOperand(t *testing.T) {
	m := target.Standard()
	input, alloc := allocate(t, selfContained, core.Options{Machine: m, Mode: core.ModeRemat})
	// Insert "addi cX, cX, 0" tagged as spill code right after cX's
	// definition: structurally sound, but its operand is a real
	// register, which a rematerialized value may not read.
	def := findOp(t, alloc, iloc.OpLdi, 5)
	tampered := &iloc.Instr{Op: iloc.OpAddi, Dst: def.Dst, Src: [2]iloc.Reg{def.Dst, iloc.NoReg}, IsSpill: true}
	for _, b := range alloc.Blocks {
		for i, in := range b.Instrs {
			if in == def {
				rest := append([]*iloc.Instr{tampered}, b.Instrs[i+1:]...)
				b.Instrs = append(b.Instrs[:i+1], rest...)
				expectRule(t, input, alloc, m, "remat")
				return
			}
		}
	}
	t.Fatal("definition not found")
}

// The verifier reports every violation, not just the first.
func TestReportsAllViolations(t *testing.T) {
	m := target.Standard()
	input, alloc := allocate(t, selfContained, core.Options{Machine: m, Mode: core.ModeRemat})
	alloc.Allocated = false
	// Widen the virtual space so the out-of-bank colors still pass the
	// structural register check and reach the bounds rule.
	alloc.NextReg[iloc.ClassInt] = m.Regs[iloc.ClassInt] + 8
	findOp(t, alloc, iloc.OpLdi, 5).Dst.N = m.Regs[iloc.ClassInt]
	findOp(t, alloc, iloc.OpLdi, 7).Dst.N = m.Regs[iloc.ClassInt] + 3
	err := verify.Check(input, alloc, m, verify.Options{})
	var ve *verify.Error
	if !errors.As(err, &ve) {
		t.Fatalf("not a *verify.Error: %v", err)
	}
	if len(ve.Violations) < 3 {
		t.Fatalf("want >= 3 violations, got: %v", err)
	}
	if !strings.Contains(err.Error(), "violation(s)") {
		t.Fatalf("unexpected message: %v", err)
	}
}
