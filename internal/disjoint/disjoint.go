// Package disjoint implements a disjoint-set (union-find) forest.
//
// Renumber uses it to union SSA values into live ranges, and the coalescer
// keeps unioning live ranges as copies are removed — exactly the "fast
// disjoint-set union" role described in §4.1 of the paper.
package disjoint

// Sets is a union-find forest over the integers 0..n-1, using union by
// rank and path halving.
type Sets struct {
	parent []int32
	rank   []int8
	count  int // number of disjoint sets
}

// New returns a forest of n singleton sets.
func New(n int) *Sets {
	s := &Sets{parent: make([]int32, n), rank: make([]int8, n), count: n}
	for i := range s.parent {
		s.parent[i] = int32(i)
	}
	return s
}

// Len returns the number of elements in the forest.
func (s *Sets) Len() int { return len(s.parent) }

// Count returns the current number of disjoint sets.
func (s *Sets) Count() int { return s.count }

// Find returns the canonical representative of x's set.
func (s *Sets) Find(x int) int {
	for s.parent[x] != int32(x) {
		s.parent[x] = s.parent[s.parent[x]] // path halving
		x = int(s.parent[x])
	}
	return x
}

// Union merges the sets containing x and y and returns the representative
// of the merged set. It reports false if x and y were already together.
func (s *Sets) Union(x, y int) (root int, merged bool) {
	rx, ry := s.Find(x), s.Find(y)
	if rx == ry {
		return rx, false
	}
	if s.rank[rx] < s.rank[ry] {
		rx, ry = ry, rx
	}
	s.parent[ry] = int32(rx)
	if s.rank[rx] == s.rank[ry] {
		s.rank[rx]++
	}
	s.count--
	return rx, true
}

// Same reports whether x and y are in the same set.
func (s *Sets) Same(x, y int) bool { return s.Find(x) == s.Find(y) }

// Grow appends extra singleton sets so the forest covers 0..n-1. It is a
// no-op when the forest is already at least that large.
func (s *Sets) Grow(n int) {
	for i := len(s.parent); i < n; i++ {
		s.parent = append(s.parent, int32(i))
		s.rank = append(s.rank, 0)
		s.count++
	}
}
