package disjoint

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingletons(t *testing.T) {
	s := New(5)
	if s.Count() != 5 {
		t.Fatalf("Count = %d, want 5", s.Count())
	}
	for i := 0; i < 5; i++ {
		if s.Find(i) != i {
			t.Fatalf("Find(%d) = %d", i, s.Find(i))
		}
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestUnionFind(t *testing.T) {
	s := New(6)
	root, merged := s.Union(0, 1)
	if !merged {
		t.Fatal("first union should merge")
	}
	if root != s.Find(0) || root != s.Find(1) {
		t.Fatal("root mismatch")
	}
	if _, merged := s.Union(1, 0); merged {
		t.Fatal("repeat union should not merge")
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d, want 5", s.Count())
	}
	s.Union(2, 3)
	s.Union(0, 2)
	if !s.Same(1, 3) {
		t.Fatal("1 and 3 should be together")
	}
	if s.Same(1, 4) {
		t.Fatal("1 and 4 should be apart")
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
}

func TestChainUnionTransitive(t *testing.T) {
	const n = 100
	s := New(n)
	for i := 0; i+1 < n; i++ {
		s.Union(i, i+1)
	}
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1", s.Count())
	}
	r := s.Find(0)
	for i := 0; i < n; i++ {
		if s.Find(i) != r {
			t.Fatalf("element %d not in the single set", i)
		}
	}
}

func TestGrow(t *testing.T) {
	s := New(2)
	s.Union(0, 1)
	s.Grow(5)
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	if s.Find(4) != 4 {
		t.Fatal("grown element should be a singleton")
	}
	s.Grow(3) // no-op
	if s.Len() != 5 {
		t.Fatal("Grow shrank the forest")
	}
}

// Property: union-find agrees with a naive labeling implementation.
func TestQuickAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 60
		s := New(n)
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		relabel := func(from, to int) {
			for i := range label {
				if label[i] == from {
					label[i] = to
				}
			}
		}
		for step := 0; step < 150; step++ {
			x, y := rng.Intn(n), rng.Intn(n)
			if rng.Intn(2) == 0 {
				s.Union(x, y)
				if label[x] != label[y] {
					relabel(label[x], label[y])
				}
			} else if s.Same(x, y) != (label[x] == label[y]) {
				return false
			}
		}
		// count distinct labels
		seen := map[int]bool{}
		for _, l := range label {
			seen[l] = true
		}
		return len(seen) == s.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
