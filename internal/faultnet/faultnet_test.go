package faultnet

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newBackend serves a fixed body over httptest for transport tests.
func newBackend(t *testing.T, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, client *http.Client, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return client.Do(req)
}

func TestTransportPassthrough(t *testing.T) {
	ts := newBackend(t, "hello")
	client := &http.Client{Transport: NewTransport(nil)}
	resp, err := get(t, client, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil || string(b) != "hello" {
		t.Fatalf("got %q, %v; want hello", b, err)
	}
}

func TestTransportPartitionAndHeal(t *testing.T) {
	ts := newBackend(t, "hello")
	tr := NewTransport(nil)
	client := &http.Client{Transport: tr}
	host := strings.TrimPrefix(ts.URL, "http://")
	f := tr.Host(host)

	f.Partition()
	if _, err := get(t, client, ts.URL); err == nil || !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned request: got err %v, want ErrPartitioned", err)
	}
	if n := f.Injected(KindPartition); n != 1 {
		t.Fatalf("partition injections = %d, want 1", n)
	}

	f.Heal()
	resp, err := get(t, client, ts.URL)
	if err != nil {
		t.Fatalf("healed request failed: %v", err)
	}
	resp.Body.Close()
}

func TestTransportResetBurst(t *testing.T) {
	ts := newBackend(t, "hello")
	tr := NewTransport(nil)
	client := &http.Client{Transport: tr}
	f := tr.Host(strings.TrimPrefix(ts.URL, "http://"))

	f.ResetNext(2)
	for i := 0; i < 2; i++ {
		if _, err := get(t, client, ts.URL); err == nil || !errors.Is(err, ErrReset) {
			t.Fatalf("reset %d: got err %v, want ErrReset", i, err)
		}
	}
	resp, err := get(t, client, ts.URL)
	if err != nil {
		t.Fatalf("post-burst request failed: %v", err)
	}
	resp.Body.Close()
	if n := f.Injected(KindReset); n != 2 {
		t.Fatalf("reset injections = %d, want 2", n)
	}
}

func TestTransport5xxBurst(t *testing.T) {
	ts := newBackend(t, "hello")
	tr := NewTransport(nil)
	client := &http.Client{Transport: tr}
	f := tr.Host(strings.TrimPrefix(ts.URL, "http://"))

	f.Fail5xx(1)
	resp, err := get(t, client, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	resp, err = get(t, client, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-burst status = %d, want 200", resp.StatusCode)
	}
}

func TestTransportTruncation(t *testing.T) {
	body := strings.Repeat("x", 4096)
	ts := newBackend(t, body)
	tr := NewTransport(nil)
	client := &http.Client{Transport: tr}
	f := tr.Host(strings.TrimPrefix(ts.URL, "http://"))

	f.TruncateNext(1, 100)
	resp, err := get(t, client, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil {
		t.Fatalf("truncated body read succeeded with %d bytes; want error", len(got))
	}
	if len(got) > 100 {
		t.Fatalf("read %d bytes past the 100-byte cut", len(got))
	}

	// Healed: the full body flows again.
	resp, err = get(t, client, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	got, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(got) != len(body) {
		t.Fatalf("post-truncation read: %d bytes, %v", len(got), err)
	}
}

func TestTransportLatency(t *testing.T) {
	ts := newBackend(t, "hello")
	tr := NewTransport(nil)
	client := &http.Client{Transport: tr}
	f := tr.Host(strings.TrimPrefix(ts.URL, "http://"))

	f.SetLatency(50 * time.Millisecond)
	start := time.Now()
	resp, err := get(t, client, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("request finished in %v, want >= 50ms of injected latency", d)
	}
}

func TestTransportPerHostIsolation(t *testing.T) {
	a := newBackend(t, "a")
	b := newBackend(t, "b")
	tr := NewTransport(nil)
	client := &http.Client{Transport: tr}

	tr.Host(strings.TrimPrefix(a.URL, "http://")).Partition()
	if _, err := get(t, client, a.URL); err == nil {
		t.Fatal("partitioned host a served a request")
	}
	resp, err := get(t, client, b.URL)
	if err != nil {
		t.Fatalf("healthy host b failed: %v", err)
	}
	resp.Body.Close()
}

func TestListenerFaults(t *testing.T) {
	f := &Faults{}
	inner := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("y", 2048))
	}))
	inner.Listener = WrapListener(inner.Listener, f)
	inner.Start()
	defer inner.Close()

	// Clean pass first. Connections are per-request here: disable
	// keep-alives so each request's conn consults the plan.
	tr := &http.Transport{DisableKeepAlives: true}
	client := &http.Client{Transport: tr, Timeout: 5 * time.Second}
	resp, err := client.Get(inner.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Armed reset: the accepted connection dies on first I/O.
	f.ResetNext(1)
	if _, err := client.Get(inner.URL); err == nil {
		t.Fatal("reset-armed connection served a request")
	}

	// Truncation: the response is cut after 64 bytes.
	f.TruncateNext(1, 64)
	resp, err = client.Get(inner.URL)
	if err == nil {
		_, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil {
			t.Fatal("truncated response read succeeded")
		}
	}

	// Healed again.
	resp, err = client.Get(inner.URL)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(got) != 2048 {
		t.Fatalf("healed read: %d bytes, %v", len(got), err)
	}
}

func TestFaultsConcurrentUse(t *testing.T) {
	ts := newBackend(t, "hello")
	tr := NewTransport(nil)
	client := &http.Client{Transport: tr}
	f := tr.Host(strings.TrimPrefix(ts.URL, "http://"))

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				resp, err := get(t, client, ts.URL)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	for i := 0; i < 10; i++ {
		f.Partition()
		f.Heal()
		f.Fail5xx(1)
		f.ResetNext(1)
	}
	wg.Wait()
}
