// Package faultnet is the repository's fault-injection harness: a
// net.Listener wrapper and an http.RoundTripper wrapper that inject
// network failure modes on demand — added latency, connection resets,
// mid-body truncation, synthesized 5xx bursts, and full partition —
// so the cluster layer's failover, retry, and circuit-breaker behavior
// can be exercised deterministically inside ordinary `go test -race`
// runs instead of only by killing live processes.
//
// Both wrappers consult a shared *Faults plan, which is mutable while
// traffic flows: a test arms a fault, drives requests, then heals.
// Every injected fault is counted per kind so tests can assert they
// were not vacuous (the fault actually fired).
package faultnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Fault kinds, as counted by Faults.Injected.
const (
	KindPartition = "partition"
	KindLatency   = "latency"
	KindReset     = "reset"
	KindTruncate  = "truncate"
	Kind5xx       = "5xx"
)

// ErrPartitioned is the transport error surfaced while a partition is
// armed: the peer is unreachable, as if the network dropped every
// packet.
var ErrPartitioned = errors.New("faultnet: partitioned: connection refused")

// ErrReset is the transport error surfaced by an armed connection
// reset: the peer vanished mid-conversation.
var ErrReset = errors.New("faultnet: connection reset by peer")

// Faults is one injection point's fault plan. The zero value injects
// nothing; arm faults with the setters. Safe for concurrent use —
// load generators mutate the plan while requests are in flight.
type Faults struct {
	mu          sync.Mutex
	partitioned bool
	latency     time.Duration
	fail5xx     int   // next N requests answer a synthesized 503
	resetNext   int   // next N requests/conns fail with ErrReset
	truncNext   int   // next N response bodies are cut short
	truncAfter  int64 // ... after this many bytes
	injected    map[string]int
}

// Partition makes the injection point unreachable: transports fail
// immediately with ErrPartitioned, listeners close accepted
// connections before a byte moves. Heal reverses it.
func (f *Faults) Partition() { f.set(func() { f.partitioned = true }) }

// Heal clears a partition.
func (f *Faults) Heal() { f.set(func() { f.partitioned = false }) }

// SetLatency adds a fixed delay in front of every request (transport)
// or every connection's first read (listener). Zero disables.
func (f *Faults) SetLatency(d time.Duration) { f.set(func() { f.latency = d }) }

// Fail5xx arms the next n transport requests to answer a synthesized
// 503 without reaching the real backend — a crashing-but-listening
// process, or an LB answering for a dead one.
func (f *Faults) Fail5xx(n int) { f.set(func() { f.fail5xx = n }) }

// ResetNext arms the next n requests (or accepted connections) to fail
// with a connection reset.
func (f *Faults) ResetNext(n int) { f.set(func() { f.resetNext = n }) }

// TruncateNext arms the next n responses to be cut off after the first
// `after` body bytes — the observable shape of a process killed while
// writing a response.
func (f *Faults) TruncateNext(n int, after int64) {
	f.set(func() { f.truncNext = n; f.truncAfter = after })
}

// Injected reports how many times a fault kind has fired (the Kind*
// constants). Tests use it to assert a fault plan was actually hit.
func (f *Faults) Injected(kind string) int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected[kind]
}

func (f *Faults) set(fn func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fn()
}

func (f *Faults) count(kind string) {
	if f.injected == nil {
		f.injected = make(map[string]int)
	}
	f.injected[kind]++
}

// plan is one request's consumed slice of the fault plan, decided
// atomically so concurrent requests don't double-consume counters.
type plan struct {
	latency    time.Duration
	partition  bool
	reset      bool
	serve5xx   bool
	truncate   bool
	truncAfter int64
}

// take consumes the faults that apply to one request/connection.
func (f *Faults) take() plan {
	if f == nil {
		return plan{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	p := plan{latency: f.latency, partition: f.partitioned}
	if p.latency > 0 {
		f.count(KindLatency)
	}
	if p.partition {
		f.count(KindPartition)
		return p
	}
	if f.resetNext > 0 {
		f.resetNext--
		p.reset = true
		f.count(KindReset)
		return p
	}
	if f.fail5xx > 0 {
		f.fail5xx--
		p.serve5xx = true
		f.count(Kind5xx)
		return p
	}
	if f.truncNext > 0 {
		f.truncNext--
		p.truncate = true
		p.truncAfter = f.truncAfter
		f.count(KindTruncate)
	}
	return p
}

// Transport is a fault-injecting http.RoundTripper: faults are armed
// per destination host (req.URL.Host), so a test driving a proxy over
// several backends can partition exactly one of them.
type Transport struct {
	base  http.RoundTripper
	mu    sync.Mutex
	hosts map[string]*Faults
}

// NewTransport wraps base (nil: http.DefaultTransport).
func NewTransport(base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, hosts: make(map[string]*Faults)}
}

// Host returns the fault plan for one destination host ("127.0.0.1:8347"),
// creating an empty one on first use.
func (t *Transport) Host(host string) *Faults {
	t.mu.Lock()
	defer t.mu.Unlock()
	f, ok := t.hosts[host]
	if !ok {
		f = &Faults{}
		t.hosts[host] = f
	}
	return f
}

// RoundTrip applies the destination host's armed faults, then (if the
// request survives) delegates to the base transport.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	f := t.Host(req.URL.Host)
	p := f.take()
	if p.latency > 0 {
		select {
		case <-time.After(p.latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	switch {
	case p.partition:
		return nil, fmt.Errorf("dial %s: %w", req.URL.Host, ErrPartitioned)
	case p.reset:
		return nil, fmt.Errorf("read from %s: %w", req.URL.Host, ErrReset)
	case p.serve5xx:
		body := io.NopCloser(strings.NewReader("faultnet: injected 503\n"))
		return &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        http.Header{"Content-Type": {"text/plain; charset=utf-8"}},
			Body:          body,
			ContentLength: -1,
			Request:       req,
		}, nil
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil || !p.truncate {
		return resp, err
	}
	resp.Body = &truncatingBody{rc: resp.Body, remaining: p.truncAfter}
	return resp, nil
}

// truncatingBody passes through the first `remaining` bytes, then
// fails the read the way a torn connection would.
type truncatingBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (b *truncatingBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, fmt.Errorf("%w (body truncated)", ErrReset)
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	if err == nil && b.remaining <= 0 {
		// The next Read errors; callers that got exactly the truncated
		// prefix still see the failure before EOF.
		return n, nil
	}
	if errors.Is(err, io.EOF) {
		// The real body ended before the cut point: no fault to inject.
		return n, io.EOF
	}
	return n, err
}

func (b *truncatingBody) Close() error { return b.rc.Close() }

// Listener wraps a net.Listener so every accepted connection consults
// the fault plan: a partitioned listener closes connections before a
// byte moves, an armed reset kills the connection on its next I/O, an
// armed truncation cuts the connection after N written bytes (the
// server-side mirror of Transport truncation).
type Listener struct {
	net.Listener
	f *Faults
}

// WrapListener attaches a fault plan to ln.
func WrapListener(ln net.Listener, f *Faults) *Listener {
	return &Listener{Listener: ln, f: f}
}

// Accept accepts from the inner listener and wraps the connection.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	p := l.f.take()
	if p.partition {
		c.Close()
		// Hand the closed conn back: the server's first read fails and
		// it moves on, exactly like an RST racing the accept.
		return c, nil
	}
	return &faultConn{Conn: c, plan: p}, nil
}

// faultConn applies one accepted connection's consumed fault plan.
type faultConn struct {
	net.Conn
	mu      sync.Mutex
	plan    plan
	delayed bool
	written int64
}

func (c *faultConn) Read(p []byte) (int, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	c.mu.Lock()
	truncate := c.plan.truncate
	var allow int64 = int64(len(p))
	if truncate {
		allow = c.plan.truncAfter - c.written
	}
	c.mu.Unlock()
	if truncate && allow <= 0 {
		c.Conn.Close()
		return 0, ErrReset
	}
	if truncate && allow < int64(len(p)) {
		n, _ := c.Conn.Write(p[:allow])
		c.mu.Lock()
		c.written += int64(n)
		c.mu.Unlock()
		c.Conn.Close()
		return n, ErrReset
	}
	n, err := c.Conn.Write(p)
	c.mu.Lock()
	c.written += int64(n)
	c.mu.Unlock()
	return n, err
}

// gate applies the once-per-connection faults: first-byte latency and
// armed resets.
func (c *faultConn) gate() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.delayed && c.plan.latency > 0 {
		c.delayed = true
		c.mu.Unlock()
		time.Sleep(c.plan.latency)
		c.mu.Lock()
	}
	if c.plan.reset {
		c.Conn.Close()
		return ErrReset
	}
	return nil
}
