// Package rgen generates random, verified, terminating ILOC routines for
// property-testing the allocator: whatever the generator produces, the
// allocated code must compute exactly the same result and leave exactly
// the same memory image as the virtual-register code.
//
// Programs are built from nestable regions — straight-line runs,
// diamonds, and counted loops with literal trip counts — over pools of
// already-defined registers, so every routine verifies, terminates, and
// never faults (division is always by a freshly loaded non-zero
// constant; memory access stays inside declared static arrays).
package rgen

import (
	"fmt"
	"math/rand"

	"repro/internal/iloc"
)

// Config bounds the generated routine. The exported knobs are the
// corpus generator's controls (internal/corpus): CFG shape via MaxDepth
// and Regions, call density via Callees and CallDensity, and register
// pressure via Pressure.
type Config struct {
	// MaxDepth bounds loop/diamond nesting (default 2).
	MaxDepth int
	// Regions bounds the number of top-level regions (default 6).
	Regions int
	// DataWords is the size of each static array (default 16).
	DataWords int
	// Pressure is the number of integer/float register pairs seeded into
	// the live pools and folded into the final result (default 3).
	// Values folded at the end stay live from their definitions to the
	// routine's exit, so raising Pressure directly raises MAXLIVE and
	// with it the spill pressure at any register count.
	Pressure int
	// Name names the generated routine (default "rand"); LabelPrefix
	// prefixes its block labels and static data so several generated
	// routines link into one program/interpreter environment.
	Name        string
	LabelPrefix string
	// Callees are routine names this routine may call (each taking one
	// integer argument and returning an integer, the setarg/call/getret
	// convention). CallDensity is the per-instruction-slot probability of
	// emitting such a call when Callees is non-empty (default 0.125;
	// negative disables calls entirely).
	Callees     []string
	CallDensity float64
	// IntParam adds one integer parameter (read with getparam); RetInt
	// converts the result to an integer return. Both are set for the
	// callees GenerateProgram builds.
	IntParam bool
	RetInt   bool
}

func (c Config) withDefaults() Config {
	if c.MaxDepth == 0 {
		c.MaxDepth = 2
	}
	if c.Regions == 0 {
		c.Regions = 6
	}
	if c.DataWords == 0 {
		c.DataWords = 16
	}
	if c.Pressure == 0 {
		c.Pressure = 3
	}
	if c.CallDensity == 0 {
		c.CallDensity = 0.125
	}
	if c.Name == "" {
		c.Name = "rand"
	}
	return c
}

type gen struct {
	rng  *rand.Rand
	cfg  Config
	b    *iloc.Builder
	ints []iloc.Reg // defined integer registers (values, not addresses)
	flts []iloc.Reg
	next int // label counter
}

// Generate returns a random routine. The routine takes no parameters
// (inputs come from its static data), returns a float combining its live
// computation, and writes through its read-write arrays, so the property
// test can compare both the return value and the memory image.
func Generate(rng *rand.Rand, cfg Config) *iloc.Routine {
	cfg = cfg.withDefaults()
	g := &gen{rng: rng, cfg: cfg, b: iloc.NewBuilder(cfg.Name)}

	// Static data: one ro and two rw float arrays, one ro int array.
	rovals := make([]float64, cfg.DataWords)
	iovals := make([]float64, cfg.DataWords)
	for i := range rovals {
		rovals[i] = float64(rng.Intn(41)-20) * 0.25
		iovals[i] = float64(rng.Intn(64) - 16)
	}
	g.b.Data(cfg.LabelPrefix+"rodat", true, cfg.DataWords, true, rovals...)
	g.b.Data(cfg.LabelPrefix+"iodat", true, cfg.DataWords, false, iovals...)
	g.b.Data(cfg.LabelPrefix+"rwa", false, cfg.DataWords, true)
	g.b.Data(cfg.LabelPrefix+"rwb", false, cfg.DataWords, true)

	var param iloc.Reg
	if cfg.IntParam {
		param = g.b.IntParam()
	}
	g.b.Block("entry")
	if cfg.IntParam {
		g.b.Getparam(param, 0)
		g.ints = append(g.ints, param)
	}
	// Seed the pools: Pressure register pairs, all folded into the final
	// result below, so each seeded value's live range spans the whole
	// routine body.
	for i := 0; i < cfg.Pressure; i++ {
		r := g.b.Int()
		g.b.Ldi(r, int64(rng.Intn(21)-10))
		g.ints = append(g.ints, r)
		f := g.b.Flt()
		g.b.Fldi(f, float64(rng.Intn(17)-8)*0.5)
		g.flts = append(g.flts, f)
	}

	for i := 0; i < cfg.Regions; i++ {
		g.region(1)
	}

	// Combine live values into the result: Pressure floats plus one
	// converted int, so the seeded pool stays live to the exit.
	res := g.b.Flt()
	g.b.Fldi(res, 0.0)
	folds := cfg.Pressure
	if folds < 2 {
		folds = 2
	}
	for i := 0; i < folds; i++ {
		g.b.Fadd(res, res, g.anyFlt())
	}
	ci := g.b.Flt()
	g.b.Un(iloc.OpCvtif, ci, g.anyInt())
	g.b.Fadd(res, res, ci)
	// Clamp with fabs/fneg so NaNs/Infs from overflow still compare.
	g.b.Fabs(res, res)
	if cfg.RetInt {
		ir := g.b.Int()
		g.b.Un(iloc.OpCvtfi, ir, res)
		g.b.Retr(ir)
	} else {
		g.b.Retf(res)
	}

	rt := g.b.Routine()
	if err := iloc.Verify(rt, false); err != nil {
		panic(fmt.Sprintf("rgen: generated invalid routine: %v\n%s", err, iloc.Print(rt)))
	}
	return rt
}

// GenerateProgram returns a main routine plus the leaf callees it calls
// through the setarg/call/getret convention. Each callee takes one
// integer argument and returns an integer; labels and routine names are
// prefixed so the program links into one interpreter environment.
func GenerateProgram(rng *rand.Rand, cfg Config) (*iloc.Routine, []*iloc.Routine) {
	cfg = cfg.withDefaults()
	n := 1 + rng.Intn(2)
	var callees []*iloc.Routine
	var names []string
	for i := 0; i < n; i++ {
		ccfg := cfg
		ccfg.Name = fmt.Sprintf("%sleaf%d", cfg.Name, i)
		ccfg.LabelPrefix = fmt.Sprintf("%sc%d_", cfg.LabelPrefix, i)
		ccfg.Regions = 2
		ccfg.MaxDepth = 1
		ccfg.IntParam = true
		ccfg.RetInt = true
		ccfg.Callees = nil
		callees = append(callees, Generate(rng, ccfg))
		names = append(names, ccfg.Name)
	}
	mcfg := cfg
	if mcfg.Name == "rand" {
		mcfg.Name = "main"
	}
	mcfg.LabelPrefix = cfg.LabelPrefix + "m_"
	mcfg.Callees = names
	return Generate(rng, mcfg), callees
}

func (g *gen) label(base string) string {
	g.next++
	return fmt.Sprintf("%s%d", base, g.next)
}

func (g *gen) anyInt() iloc.Reg { return g.ints[g.rng.Intn(len(g.ints))] }
func (g *gen) anyFlt() iloc.Reg { return g.flts[g.rng.Intn(len(g.flts))] }

// defInt returns a destination register: usually fresh (SSA-ish, keeps
// ranges interesting), sometimes a redefinition of an existing one
// (multi-valued live ranges).
func (g *gen) defInt() iloc.Reg {
	if len(g.ints) > 2 && g.rng.Intn(3) == 0 {
		return g.anyInt()
	}
	r := g.b.Int()
	g.ints = append(g.ints, r)
	return r
}

func (g *gen) defFlt() iloc.Reg {
	if len(g.flts) > 2 && g.rng.Intn(3) == 0 {
		return g.anyFlt()
	}
	f := g.b.Flt()
	g.flts = append(g.flts, f)
	return f
}

// region emits one construct at the given nesting depth.
func (g *gen) region(depth int) {
	switch r := g.rng.Intn(10); {
	case r < 5 || depth > g.cfg.MaxDepth:
		g.straight(3 + g.rng.Intn(6))
	case r < 8:
		g.loop(depth)
	default:
		g.diamond(depth)
	}
}

// straight emits n random computational instructions.
func (g *gen) straight(n int) {
	for i := 0; i < n; i++ {
		g.instr()
	}
}

func (g *gen) instr() {
	// Call one of the available routines with probability CallDensity:
	// pass an integer, pull the integer result back into the pool.
	if len(g.cfg.Callees) > 0 && g.cfg.CallDensity > 0 && g.rng.Float64() < g.cfg.CallDensity {
		x := g.anyInt()
		g.b.Emit(&iloc.Instr{Op: iloc.OpSetarg, Dst: iloc.NoReg, Src: [2]iloc.Reg{x, iloc.NoReg}, Imm: 0})
		g.b.Emit(&iloc.Instr{Op: iloc.OpCall, Dst: iloc.NoReg, Label: g.cfg.Callees[g.rng.Intn(len(g.cfg.Callees))]})
		g.b.Emit(&iloc.Instr{Op: iloc.OpGetret, Dst: g.defInt(), Src: [2]iloc.Reg{iloc.NoReg, iloc.NoReg}})
		return
	}
	// Sources are always drawn before the destination: defInt/defFlt add
	// fresh registers to the pools, and a source picked afterwards could
	// be the not-yet-defined destination itself.
	switch g.rng.Intn(20) {
	case 0:
		g.b.Ldi(g.defInt(), int64(g.rng.Intn(31)-15))
	case 1:
		g.b.Fldi(g.defFlt(), float64(g.rng.Intn(21)-10)*0.25)
	case 2:
		ops := []iloc.Op{iloc.OpAdd, iloc.OpSub, iloc.OpMul, iloc.OpAnd, iloc.OpOr, iloc.OpXor}
		x, y := g.anyInt(), g.anyInt()
		g.b.Bin(ops[g.rng.Intn(len(ops))], g.defInt(), x, y)
	case 3:
		ops := []iloc.Op{iloc.OpFadd, iloc.OpFsub, iloc.OpFmul}
		x, y := g.anyFlt(), g.anyFlt()
		g.b.Bin(ops[g.rng.Intn(len(ops))], g.defFlt(), x, y)
	case 4:
		x := g.anyInt()
		g.b.Addi(g.defInt(), x, int64(g.rng.Intn(15)-7))
	case 5:
		x := g.anyInt()
		g.b.Mov(g.defInt(), x)
	case 6:
		x := g.anyFlt()
		g.b.Un(iloc.OpFmov, g.defFlt(), x)
	case 7: // safe division: divisor is a fresh non-zero constant
		d := g.b.Int()
		g.b.Ldi(d, int64(1+g.rng.Intn(7)))
		x := g.anyInt()
		g.b.Div(g.defInt(), x, d)
	case 8: // safe shift by a fresh small constant
		s := g.b.Int()
		g.b.Ldi(s, int64(g.rng.Intn(4)))
		op := iloc.OpShl
		if g.rng.Intn(2) == 0 {
			op = iloc.OpShr
		}
		x := g.anyInt()
		g.b.Bin(op, g.defInt(), x, s)
	case 9: // rload/frload from read-only data (never-killed loads)
		off := int64(g.rng.Intn(g.cfg.DataWords)) * 8
		if g.rng.Intn(2) == 0 {
			g.b.Emit(&iloc.Instr{Op: iloc.OpRload, Dst: g.defInt(), Src: [2]iloc.Reg{iloc.NoReg, iloc.NoReg}, Label: g.cfg.LabelPrefix + "iodat", Imm: off})
		} else {
			g.b.Emit(&iloc.Instr{Op: iloc.OpFrload, Dst: g.defFlt(), Src: [2]iloc.Reg{iloc.NoReg, iloc.NoReg}, Label: g.cfg.LabelPrefix + "rodat", Imm: off})
		}
	case 10: // indexed load from a constant base
		base := g.b.Int()
		g.b.Lda(base, g.cfg.LabelPrefix+"rodat")
		g.b.Floadai(g.defFlt(), base, int64(g.rng.Intn(g.cfg.DataWords))*8)
	case 11: // store to a read-write array at a constant slot
		base := g.b.Int()
		arr := g.cfg.LabelPrefix + "rwa"
		if g.rng.Intn(2) == 0 {
			arr = g.cfg.LabelPrefix + "rwb"
		}
		g.b.Lda(base, arr)
		g.b.Fstoreai(g.anyFlt(), base, int64(g.rng.Intn(g.cfg.DataWords))*8)
	case 12:
		x := g.anyInt()
		g.b.Un(iloc.OpCvtif, g.defFlt(), x)
	case 13:
		x := g.anyFlt()
		g.b.Fabs(g.defFlt(), x)
	case 14:
		x := g.anyInt()
		g.b.Un(iloc.OpNeg, g.defInt(), x)
	case 15: // cvtfi on a clamped value (fabs then compare-free small range)
		x := g.anyFlt()
		f := g.b.Flt()
		g.b.Fabs(f, x)
		g.b.Un(iloc.OpCvtfi, g.defInt(), f)
	case 16:
		x := g.anyInt()
		g.b.Subi(g.defInt(), x, int64(g.rng.Intn(9)))
	case 17:
		x, y := g.anyFlt(), g.anyFlt()
		ops := []iloc.Op{iloc.OpFdiv, iloc.OpFsub}
		g.b.Bin(ops[g.rng.Intn(2)], g.defFlt(), x, y)
	case 18: // frame traffic: store to a fixed fp slot, read it back.
		// The allocator's spill slots must stay disjoint from these.
		slot := int64(g.rng.Intn(6)) * 8
		x := g.anyInt()
		g.b.Storeai(x, iloc.FP, slot)
		g.b.Loadai(g.defInt(), iloc.FP, slot)
	case 19: // fp-relative address arithmetic (never-killed).
		slot := int64(g.rng.Intn(6)) * 8
		addr := g.b.Int()
		g.b.Addi(addr, iloc.FP, slot)
		x := g.anyFlt()
		g.b.Fstore(x, addr)
		g.b.Fload(g.defFlt(), addr)
	}
}

// loop emits a counted loop with a literal trip count, optionally
// walking a pointer across an array (the multi-valued live range the
// paper is about).
func (g *gen) loop(depth int) {
	trips := 2 + g.rng.Intn(5)
	head, body, exit := g.label("head"), g.label("body"), g.label("exit")

	i := g.b.Int()
	n := g.b.Int()
	g.b.Ldi(i, 0)
	g.b.Ldi(n, int64(trips))

	var walker iloc.Reg
	walk := g.rng.Intn(2) == 0 && trips <= g.cfg.DataWords
	arr := g.cfg.LabelPrefix + "rodat"
	if walk {
		walker = g.b.Int()
		if g.rng.Intn(2) == 0 {
			arr = g.cfg.LabelPrefix + "rwa"
		}
		g.b.Lda(walker, arr)
	}

	g.b.Jmp(head)
	g.b.Block(head)
	t := g.b.Int()
	g.b.Sub(t, i, n)
	g.b.Br(iloc.CondGE, t, exit, body)

	// Registers first defined inside the body are not defined on the
	// zero-trip path through head; they must not escape the loop.
	snapI, snapF := len(g.ints), len(g.flts)

	g.b.Block(body)
	// Loop-carried float accumulation keeps ranges live around the back
	// edge.
	acc := g.anyFlt()
	if walk {
		v := g.b.Flt()
		g.b.Fload(v, walker)
		g.b.Fadd(acc, acc, v)
		if arr == g.cfg.LabelPrefix+"rwa" && g.rng.Intn(2) == 0 {
			g.b.Fstore(acc, walker)
		}
		g.b.Addi(walker, walker, 8)
	} else {
		g.b.Fadd(acc, acc, g.anyFlt())
	}
	inner := 1 + g.rng.Intn(3)
	for k := 0; k < inner; k++ {
		g.instr()
	}
	if depth < g.cfg.MaxDepth && g.rng.Intn(3) == 0 {
		g.region(depth + 1)
	}
	g.b.Addi(i, i, 1)
	g.b.Jmp(head)

	g.b.Block(exit)
	g.ints = g.ints[:snapI]
	g.flts = g.flts[:snapF]
	// The walker is exhausted; it was never in the pool.
	_ = walker
}

// diamond emits an if/else joining at a fresh block, with both arms
// defining the same registers differently (φ material).
func (g *gen) diamond(depth int) {
	a, b, join := g.label("then"), g.label("else"), g.label("join")
	g.b.Br(iloc.CondGT, g.anyInt(), a, b)

	mergedI := g.b.Int()
	mergedF := g.b.Flt()

	// Registers first defined inside one arm are undefined on the other
	// path; only the merged pair (defined in both arms) survives the join.
	snapI, snapF := len(g.ints), len(g.flts)

	g.b.Block(a)
	g.b.Ldi(mergedI, int64(g.rng.Intn(9)))
	g.b.Fldi(mergedF, 1.5)
	g.straight(1 + g.rng.Intn(3))
	if depth < g.cfg.MaxDepth && g.rng.Intn(4) == 0 {
		g.region(depth + 1)
	}
	g.b.Jmp(join)
	g.ints = g.ints[:snapI]
	g.flts = g.flts[:snapF]

	g.b.Block(b)
	g.b.Ldi(mergedI, int64(10+g.rng.Intn(9)))
	g.b.Un(iloc.OpFneg, mergedF, g.anyFlt())
	g.straight(1 + g.rng.Intn(3))
	g.b.Jmp(join)
	g.ints = g.ints[:snapI]
	g.flts = g.flts[:snapF]

	g.b.Block(join)
	g.ints = append(g.ints, mergedI)
	g.flts = append(g.flts, mergedF)
}
