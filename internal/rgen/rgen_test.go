package rgen

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/iloc"
	"repro/internal/interp"
	"repro/internal/target"
)

// image runs the routine and captures its observable behaviour: the
// returned value (bit-exact) and the full contents of both read-write
// arrays.
func image(t *testing.T, rt *iloc.Routine, words int) []uint64 {
	t.Helper()
	e, err := interp.New(rt, interp.Config{})
	if err != nil {
		t.Fatalf("env: %v\n%s", err, iloc.Print(rt))
	}
	out, err := e.Run()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, iloc.Print(rt))
	}
	img := []uint64{math.Float64bits(out.RetFloat)}
	for _, label := range []string{"rwa", "rwb"} {
		base := e.DataAddr(label)
		for w := 0; w < words; w++ {
			img = append(img, math.Float64bits(e.FloatAt(base+int64(w)*8)))
		}
	}
	return img
}

func equalImages(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAllocationPreservesSemantics is the central property test of the
// whole allocator: on randomly generated programs, every mode, machine
// and splitting scheme must reproduce the virtual-register behaviour
// bit for bit — return value and memory image.
func TestAllocationPreservesSemantics(t *testing.T) {
	const seeds = 100
	cfg := Config{}
	machines := []*target.Machine{target.Standard(), target.WithRegs(4)}
	optsList := []core.Options{
		{Mode: core.ModeChaitin},
		{Mode: core.ModeRemat},
		{Mode: core.ModeRemat, Split: core.SplitAtPhis},
		{Mode: core.ModeRemat, Split: core.SplitAllLoops},
	}
	for seed := int64(0); seed < seeds; seed++ {
		rt := Generate(rand.New(rand.NewSource(seed)), cfg)
		want := image(t, rt, cfg.withDefaults().DataWords)
		for _, m := range machines {
			for _, base := range optsList {
				opts := base
				opts.Machine = m
				res, err := core.Allocate(context.Background(), rt, opts)
				if err != nil {
					t.Fatalf("seed %d, %s/%v/%v: %v\n%s", seed, m.Name, opts.Mode, opts.Split, err, iloc.Print(rt))
				}
				got := image(t, res.Routine, cfg.withDefaults().DataWords)
				if !equalImages(want, got) {
					t.Fatalf("seed %d, %s/%v/%v: behaviour changed\n--- input ---\n%s\n--- allocated ---\n%s",
						seed, m.Name, opts.Mode, opts.Split, iloc.Print(rt), iloc.Print(res.Routine))
				}
			}
		}
	}
}

// TestGenerateDeterministic pins the generator: same seed, same routine.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(7)), Config{})
	b := Generate(rand.New(rand.NewSource(7)), Config{})
	if iloc.Print(a) != iloc.Print(b) {
		t.Fatal("generator not deterministic")
	}
	c := Generate(rand.New(rand.NewSource(8)), Config{})
	if iloc.Print(a) == iloc.Print(c) {
		t.Fatal("different seeds produced identical routines")
	}
}

// TestGeneratedRoutinesVerifyAndTerminate smoke-checks a larger sample.
func TestGeneratedRoutinesVerifyAndTerminate(t *testing.T) {
	for seed := int64(100); seed < 160; seed++ {
		rt := Generate(rand.New(rand.NewSource(seed)), Config{Regions: 8, MaxDepth: 3})
		if err := iloc.Verify(rt, false); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e, err := interp.New(rt, interp.Config{MaxSteps: 5_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, iloc.Print(rt))
		}
	}
}

// programImage runs a whole program (main + callees) and captures the
// return value plus every routine's read-write arrays.
func programImage(t *testing.T, main *iloc.Routine, callees []*iloc.Routine, words int) []uint64 {
	t.Helper()
	e, err := interp.New(main, interp.Config{Routines: callees})
	if err != nil {
		t.Fatalf("env: %v", err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatalf("run: %v\n--- main ---\n%s", err, iloc.Print(main))
	}
	img := []uint64{math.Float64bits(out.RetFloat), uint64(out.RetInt)}
	collect := func(rt *iloc.Routine) {
		for _, d := range rt.Data {
			if d.ReadOnly {
				continue
			}
			base := e.DataAddr(d.Label)
			for w := 0; w < d.Words; w++ {
				img = append(img, math.Float64bits(e.FloatAt(base+int64(w)*8)))
			}
		}
	}
	collect(main)
	for _, c := range callees {
		collect(c)
	}
	return img
}

// TestProgramAllocationPreservesSemantics: whole programs — main plus
// callees, both allocated — behave exactly like their virtual-register
// versions, with the interpreter poisoning caller-save registers after
// every call. Any live-across-call value wrongly given a caller-save
// color turns into garbage and fails the comparison.
func TestProgramAllocationPreservesSemantics(t *testing.T) {
	const seeds = 60
	cfg := Config{}
	machines := []*target.Machine{target.Standard(), target.WithRegs(8)}
	for seed := int64(1000); seed < 1000+seeds; seed++ {
		main, callees := GenerateProgram(rand.New(rand.NewSource(seed)), cfg)
		want := programImage(t, main, callees, cfg.withDefaults().DataWords)
		for _, m := range machines {
			for _, mode := range []core.Mode{core.ModeChaitin, core.ModeRemat} {
				opts := core.Options{Machine: m, Mode: mode}
				aMain, err := core.Allocate(context.Background(), main, opts)
				if err != nil {
					t.Fatalf("seed %d main: %v", seed, err)
				}
				var aCallees []*iloc.Routine
				for _, c := range callees {
					ac, err := core.Allocate(context.Background(), c, opts)
					if err != nil {
						t.Fatalf("seed %d callee: %v", seed, err)
					}
					aCallees = append(aCallees, ac.Routine)
				}
				got := programImage(t, aMain.Routine, aCallees, cfg.withDefaults().DataWords)
				if !equalImages(want, got) {
					t.Fatalf("seed %d %s/%v: program behaviour changed\n--- main ---\n%s",
						seed, m.Name, mode, iloc.Print(aMain.Routine))
				}
			}
		}
	}
}
