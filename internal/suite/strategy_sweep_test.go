package suite

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/iloc"
	"repro/internal/target"
	"repro/internal/verify"
)

// TestAllStrategiesVerifyAcrossSuite is the suite-wide strategy sweep:
// every registered strategy allocates every kernel (and its callees) on
// the standard machine and a starved 3-register one, with the
// independent verifier required to accept every result — zero
// rejections. Degradations are tolerated (a starved K can defeat the
// iterated allocators) but counted per strategy and logged, so a
// regression that starts degrading en masse is visible in the test
// output even while it passes.
func TestAllStrategiesVerifyAcrossSuite(t *testing.T) {
	type unit struct {
		name string
		rt   *iloc.Routine
	}
	var units []unit
	for _, k := range All() {
		units = append(units, unit{k.Name, k.Routine()})
		for i, crt := range k.CalleeRoutines() {
			units = append(units, unit{fmt.Sprintf("%s/callee%d", k.Name, i), crt})
		}
	}
	machines := []*target.Machine{target.Standard(), target.WithRegs(3)}

	for _, strat := range core.Strategies() {
		strat := strat
		t.Run(strat.Name(), func(t *testing.T) {
			for _, m := range machines {
				degraded := 0
				for _, u := range units {
					res, err := core.Allocate(context.Background(), u.rt, core.Options{
						Machine: m, Strategy: strat.Name(), Verify: true,
					})
					if err != nil {
						t.Errorf("%s @ %s: %v", u.name, m.Name, err)
						continue
					}
					// Verify:true means the allocator already checked the
					// result (degrading on a rejection); re-running the
					// verifier asserts the response-side contract — what a
					// client receives is independently acceptable.
					if err := verify.Check(u.rt, res.Routine, m, verify.Options{}); err != nil {
						t.Errorf("%s @ %s: verifier rejected served code: %v", u.name, m.Name, err)
					}
					if res.Degraded {
						degraded++
					}
				}
				t.Logf("%s @ %s: %d/%d degraded", strat.Name(), m.Name, degraded, len(units))
			}
		})
	}
}
