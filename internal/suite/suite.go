// Package suite holds the benchmark kernels the experiments run. The
// paper's suite is seventy FORTRAN routines from Forsythe-Malcolm-Moler
// and SPEC89 (doduc, fpppp, matrix300, tomcatv); those sources are not
// available offline, so each kernel here is a synthetic ILOC routine
// named after one of the paper's routines and built to recreate its
// register-pressure pattern — deep loops over arrays, address arithmetic,
// loop-invariant pointers and clusters of floating-point constants (see
// DESIGN.md §4 on substitutions).
//
// Every kernel carries a Setup that builds its memory image and a Check
// that validates the outcome against a Go reference computation, so the
// allocator's output is verified semantically, not just structurally.
package suite

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/iloc"
	"repro/internal/interp"
)

// Kernel is one routine of the suite.
type Kernel struct {
	// Program and Name mirror the paper's Table 1 labels.
	Program string
	Name    string
	// Source is the ILOC text (parse with Routine).
	Source string
	// Callees holds the ILOC sources of routines the kernel calls.
	Callees []string
	// Setup allocates and fills the kernel's memory in e and returns the
	// argument list for Run.
	Setup func(e *interp.Env) []interp.Value
	// Check validates an execution against the reference computation.
	Check func(e *interp.Env, out *interp.Outcome) error
}

// Routine parses the kernel's source.
func (k *Kernel) Routine() *iloc.Routine {
	rt, err := iloc.Parse(k.Source)
	if err != nil {
		panic(fmt.Sprintf("suite %s/%s: %v", k.Program, k.Name, err))
	}
	return rt
}

// CalleeRoutines parses the kernel's callees.
func (k *Kernel) CalleeRoutines() []*iloc.Routine {
	out := make([]*iloc.Routine, 0, len(k.Callees))
	for _, src := range k.Callees {
		rt, err := iloc.Parse(src)
		if err != nil {
			panic(fmt.Sprintf("suite %s/%s callee: %v", k.Program, k.Name, err))
		}
		out = append(out, rt)
	}
	return out
}

// Execute builds an environment for rt (the kernel's routine, possibly
// allocated), runs it with the kernel's setup and validates the result.
// Callees run in virtual-register form; use ExecuteWith to supply
// allocated ones.
func (k *Kernel) Execute(rt *iloc.Routine) (*interp.Outcome, error) {
	return k.ExecuteWith(rt, k.CalleeRoutines())
}

// ExecuteWith runs rt with explicit callee routines (e.g., allocated
// versions) and validates the result.
func (k *Kernel) ExecuteWith(rt *iloc.Routine, callees []*iloc.Routine) (*interp.Outcome, error) {
	e, err := interp.New(rt, interp.Config{Routines: callees})
	if err != nil {
		return nil, err
	}
	args := k.Setup(e)
	out, err := e.Run(args...)
	if err != nil {
		return nil, err
	}
	if err := k.Check(e, out); err != nil {
		return out, fmt.Errorf("%s/%s: %w", k.Program, k.Name, err)
	}
	return out, nil
}

// dataDecl renders a "data" directive with float initializers, for
// kernels that generate their sources. FORTRAN arrays live in the static
// data area, so suite kernels anchor their arrays with lda — the paper's
// "computing a constant offset from the static data area pointer"
// rematerialization category.
func dataDecl(label string, readOnly bool, vals []float64) string {
	mode := "rw"
	if readOnly {
		mode = "ro"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "data %s %s %d =", label, mode, len(vals))
	for _, v := range vals {
		s := strconv.FormatFloat(v, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		b.WriteString(" " + s)
	}
	b.WriteString("\n")
	return b.String()
}

// intDataDecl renders a "data" directive with integer initializers
// (stored as integer words by the interpreter).
func intDataDecl(label string, readOnly bool, vals []int64) string {
	mode := "rw"
	if readOnly {
		mode = "ro"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "data %s %s %d =", label, mode, len(vals))
	for _, v := range vals {
		fmt.Fprintf(&b, " %d", v)
	}
	b.WriteString("\n")
	return b.String()
}

// tabulate evaluates f at 0..n-1.
func tabulate(n int, f func(int) float64) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = f(i)
	}
	return vals
}

// approx compares floats with a relative tolerance.
func approx(got, want float64) error {
	if math.IsNaN(got) || math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		return fmt.Errorf("result %g, want %g", got, want)
	}
	return nil
}

// All returns every kernel, ordered as in Table 1.
func All() []*Kernel {
	return []*Kernel{
		fehl(),
		rkfdrv(),
		recfib(),
		spline(),
		decomp(),
		svd(),
		zeroin(),
		bilan(),
		bilsla(),
		colbur(),
		ddeflu(),
		debico(),
		deseco(),
		drepvi(),
		drigl(),
		heat(),
		ihbtr(),
		inideb(),
		inisla(),
		inithx(),
		integr(),
		lectur(),
		orgpar(),
		paroi(),
		pastem(),
		prophy(),
		repvid(),
		d2esp(),
		fmain(),
		twldrv(),
		sgemm(),
		tomcatv(),
	}
}

// ByName returns the kernel with the given routine name, or nil.
func ByName(name string) *Kernel {
	for _, k := range All() {
		if k.Name == name {
			return k
		}
	}
	return nil
}
