package suite

import (
	"repro/internal/interp"
)

// rkfdrv is the rkf45 driver: it calls the fehl stage evaluator twice
// with different step sizes, keeping its own state live across both
// calls — exactly the caller-save pressure the paper's §5.1 calling
// convention (ten callee-save registers per class) is about.
func rkfdrv() *Kernel {
	const h1, h2 = 0.1, 0.05
	ref := func() float64 {
		return fehlReference(h1) + 2*fehlReference(h2) + 1000
	}
	return &Kernel{
		Program: "rkf45",
		Name:    "rkfdrv",
		Source: `
routine rkfdrv(r1)
entry:
    getparam r1, 0        ; n, live across both calls
    ldi r2, 1000          ; bias, live across both calls
    fldi f1, 0.1          ; h1
    setarg r1, 0
    fsetarg f1, 1
    call fehl
    fgetret f2            ; first stage error, live across the next call
    fldi f3, 0.05         ; h2
    setarg r1, 0
    fsetarg f3, 1
    call fehl
    fgetret f4
    fadd f4, f4, f4       ; weight the finer step twice
    fadd f2, f2, f4
    cvtif f5, r2
    fadd f2, f2, f5
    retf f2
`,
		Callees: []string{fehl().Source},
		Setup: func(e *interp.Env) []interp.Value {
			return []interp.Value{interp.Int(fehlN)}
		},
		Check: func(e *interp.Env, out *interp.Outcome) error {
			return approx(out.RetFloat, ref())
		},
	}
}

// fmain mirrors fpppp's main: it drives the big twldrv stage machine and
// the small d2esp expression kernel, holding loop state live across both
// calls.
func fmain() *Kernel {
	// twldrv's rw data evolves across the three calls, so the oracle is
	// differential: Check replays the same program with pristine
	// virtual-register routines in a fresh environment and compares.
	twl := twldrv()
	d2 := d2esp()
	return &Kernel{
		Program: "fpppp",
		Name:    "fmain",
		Source: `
routine fmain(r1)
entry:
    getparam r1, 0        ; n for twldrv / d2esp
    ldi r2, 0             ; i, live across calls
    ldi r3, 3             ; reps
    fldi f1, 0.0          ; acc, live across calls
    jmp loop
loop:
    sub r4, r2, r3
    br ge r4, done, body
body:
    setarg r1, 0
    call twldrv
    fgetret f2
    fadd f1, f1, f2
    ldi r5, 8
    setarg r5, 0
    call d2esp
    fgetret f3
    fadd f1, f1, f3
    addi r2, r2, 1
    jmp loop
done:
    retf f1
`,
		Callees: []string{twl.Source, d2.Source},
		Setup: func(e *interp.Env) []interp.Value {
			return []interp.Value{interp.Int(16)}
		},
		Check: func(e *interp.Env, out *interp.Outcome) error {
			refMain := fmain()
			eref, err := interp.New(refMain.Routine(), interp.Config{Routines: refMain.CalleeRoutines()})
			if err != nil {
				return err
			}
			want, err := eref.Run(interp.Int(16))
			if err != nil {
				return err
			}
			return approx(out.RetFloat, want.RetFloat)
		},
	}
}

// recfib is a recursive Fibonacci kernel: two self-calls per activation,
// with the first result live across the second call.
func recfib() *Kernel {
	const n = 13
	ref := func() int64 {
		var fib func(int) int64
		fib = func(k int) int64 {
			if k < 2 {
				return int64(k)
			}
			return fib(k-1) + fib(k-2)
		}
		return fib(n)
	}
	return &Kernel{
		Program: "misc",
		Name:    "recfib",
		Source: `
routine recfib(r1)
entry:
    getparam r1, 0
    ldi r2, 2
    sub r2, r1, r2
    br lt r2, base, rec
base:
    retr r1
rec:
    subi r3, r1, 1
    setarg r3, 0
    call recfib
    getret r4            ; fib(n-1), live across the second call
    subi r3, r1, 2
    setarg r3, 0
    call recfib
    getret r5
    add r4, r4, r5
    retr r4
`,
		Setup: func(e *interp.Env) []interp.Value {
			return []interp.Value{interp.Int(n)}
		},
		Check: func(e *interp.Env, out *interp.Outcome) error {
			if out.RetInt != ref() {
				return approx(float64(out.RetInt), float64(ref()))
			}
			return nil
		},
	}
}
