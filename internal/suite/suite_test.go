package suite

import (
	"context"
	"testing"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/iloc"
	"repro/internal/target"
)

// TestKernelsRunUnallocated checks every kernel's reference semantics on
// virtual-register code.
func TestKernelsRunUnallocated(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Program+"/"+k.Name, func(t *testing.T) {
			rt := k.Routine()
			if err := iloc.Verify(rt, false); err != nil {
				t.Fatal(err)
			}
			if _, err := k.Execute(rt); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestKernelsSurviveAllocation allocates every kernel in both modes on
// several machines and re-checks the reference result — the end-to-end
// correctness property of the whole allocator.
func TestKernelsSurviveAllocation(t *testing.T) {
	machines := []*target.Machine{
		target.Standard(),
		target.Huge(),
		target.WithRegs(8),
		target.WithRegs(5),
	}
	for _, k := range All() {
		k := k
		t.Run(k.Program+"/"+k.Name, func(t *testing.T) {
			for _, m := range machines {
				for _, mode := range []core.Mode{core.ModeChaitin, core.ModeRemat} {
					res, err := core.Allocate(context.Background(), k.Routine(), core.Options{Machine: m, Mode: mode})
					if err != nil {
						t.Fatalf("%s %v: %v", m.Name, mode, err)
					}
					if _, err := k.Execute(res.Routine); err != nil {
						t.Fatalf("%s %v: %v", m.Name, mode, err)
					}
				}
			}
		})
	}
}

// TestKernelsSurviveSplittingSchemes checks §6's experimental splitting
// schemes preserve semantics on every kernel.
func TestKernelsSurviveSplittingSchemes(t *testing.T) {
	schemes := []core.SplitScheme{
		core.SplitAllLoops, core.SplitOuterLoops, core.SplitInactiveLoops, core.SplitAtPhis,
	}
	for _, k := range All() {
		k := k
		t.Run(k.Program+"/"+k.Name, func(t *testing.T) {
			for _, s := range schemes {
				for _, m := range []*target.Machine{target.Standard(), target.WithRegs(6)} {
					res, err := core.Allocate(context.Background(), k.Routine(), core.Options{Machine: m, Mode: core.ModeRemat, Split: s})
					if err != nil {
						t.Fatalf("scheme %v on %s: %v", s, m.Name, err)
					}
					if _, err := k.Execute(res.Routine); err != nil {
						t.Fatalf("scheme %v on %s: %v", s, m.Name, err)
					}
				}
			}
		})
	}
}

func TestByName(t *testing.T) {
	if ByName("fehl") == nil {
		t.Fatal("fehl missing")
	}
	if ByName("nosuch") != nil {
		t.Fatal("phantom kernel")
	}
}

// TestNamesUnique guards the registry.
func TestNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range All() {
		if seen[k.Name] {
			t.Fatalf("duplicate kernel %s", k.Name)
		}
		seen[k.Name] = true
		if k.Setup == nil || k.Check == nil || k.Source == "" {
			t.Fatalf("kernel %s incomplete", k.Name)
		}
	}
}

// TestKernelsDefiniteAssignment: every kernel defines every register
// before use on all paths, before and after allocation.
func TestKernelsDefiniteAssignment(t *testing.T) {
	for _, k := range All() {
		rt := k.Routine()
		if err := cfg.Build(rt); err != nil {
			t.Fatal(err)
		}
		if err := cfg.CheckDefined(rt); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
		res, err := core.Allocate(context.Background(), k.Routine(), core.Options{Machine: target.WithRegs(6), Mode: core.ModeRemat})
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Build(res.Routine); err != nil {
			t.Fatal(err)
		}
		if err := cfg.CheckDefined(res.Routine); err != nil {
			t.Errorf("%s allocated: %v", k.Name, err)
		}
	}
}

// TestKernelsExtremePressure allocates the whole suite on a 3-register
// machine (two colors per class) — nearly everything spills — and
// re-checks every reference result.
func TestKernelsExtremePressure(t *testing.T) {
	m := target.WithRegs(3)
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			for _, mode := range []core.Mode{core.ModeChaitin, core.ModeRemat} {
				res, err := core.Allocate(context.Background(), k.Routine(), core.Options{Machine: m, Mode: mode})
				if err != nil {
					t.Fatalf("mode %v: %v", mode, err)
				}
				var callees []*iloc.Routine
				for _, c := range k.CalleeRoutines() {
					cr, err := core.Allocate(context.Background(), c, core.Options{Machine: m, Mode: mode})
					if err != nil {
						t.Fatalf("mode %v callee: %v", mode, err)
					}
					callees = append(callees, cr.Routine)
				}
				if _, err := k.ExecuteWith(res.Routine, callees); err != nil {
					t.Fatalf("mode %v: %v", mode, err)
				}
			}
		})
	}
}

// TestKernelsVerifyCleanly is the acceptance bar for the post-allocation
// verifier: every kernel (and every callee it links against) allocates
// at standard K in both modes with Options.Verify on, and none of them
// degrades to the spill-everywhere fallback. A degradation here means
// either the allocator emitted something the verifier rejects or the
// verifier has a false positive — both are bugs.
func TestKernelsVerifyCleanly(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Program+"/"+k.Name, func(t *testing.T) {
			for _, mode := range []core.Mode{core.ModeChaitin, core.ModeRemat} {
				opts := core.Options{Machine: target.Standard(), Mode: mode, Verify: true}
				res, err := core.Allocate(context.Background(), k.Routine(), opts)
				if err != nil {
					t.Fatalf("mode %v: %v", mode, err)
				}
				if res.Degraded {
					t.Fatalf("mode %v: degraded at standard K: %s", mode, res.DegradeReason)
				}
				var callees []*iloc.Routine
				for _, c := range k.CalleeRoutines() {
					cr, err := core.Allocate(context.Background(), c, opts)
					if err != nil {
						t.Fatalf("mode %v callee %s: %v", mode, c.Name, err)
					}
					if cr.Degraded {
						t.Fatalf("mode %v callee %s: degraded: %s", mode, c.Name, cr.DegradeReason)
					}
					callees = append(callees, cr.Routine)
				}
				if _, err := k.ExecuteWith(res.Routine, callees); err != nil {
					t.Fatalf("mode %v: %v", mode, err)
				}
			}
		})
	}
}
