package suite

import (
	"math"

	"repro/internal/interp"
)

// bilan is a heat-balance-style loop: ten coefficient constants defined
// before the loop and all used inside it, then a second phase in which
// the x pointer walks. Under pressure the allocator must choose between
// spilling (Chaitin: store/reload) and recomputing (remat: fldi/lda).
func bilan() *Kernel {
	const n = 32
	xv := func(i int) float64 { return 0.1*float64(i) - 1.3 }
	cs := []float64{1.1, -0.7, 2.3, 0.05, -1.9, 0.42, 3.7, -0.33, 0.9, 1.75}
	ref := func() float64 {
		acc := 0.0
		for i := 0; i < n; i++ {
			x := xv(i)
			x2 := x * x
			acc += cs[0]*x2*x + cs[1]*x2 + cs[2]*x + cs[3]
			acc += cs[4]*x2*x + cs[5]*x2 + cs[6]*x + cs[7]
			acc += cs[8]*x2 + cs[9]*x
		}
		for i := 0; i < n; i++ {
			acc += xv(i)*cs[0] + cs[1]
		}
		ci := int64(0)
		for i := 0; i < n; i++ {
			ci += int64(i)*7 + 2
		}
		return acc + float64(ci)
	}
	src := "routine bilan(r2)\n" +
		dataDecl("bx", true, tabulate(n, xv)) + `
entry:
    getparam r2, 0
    lda r1, bx
    ldi r6, 7             ; checksum coefficients (pressure)
    ldi r7, 2
    ldi r8, 0             ; ci
    fldi f1, 1.1
    fldi f2, -0.7
    fldi f3, 2.3
    fldi f4, 0.05
    fldi f5, -1.9
    fldi f6, 0.42
    fldi f7, 3.7
    fldi f8, -0.33
    fldi f9, 0.9
    fldi f10, 1.75
    fldi f11, 0.0         ; acc
    ldi r3, 0
    jmp loop
loop:
    sub r4, r3, r2
    br ge r4, phase2, body
body:
    mul r9, r3, r6
    add r9, r9, r7
    add r8, r8, r9        ; ci += i*7 + 2
    muli r5, r3, 8
    add r5, r5, r1
    fload f12, r5         ; x
    fmul f13, f12, f12    ; x^2
    fmul f14, f13, f12    ; x^3
    fmul f15, f1, f14
    fadd f11, f11, f15
    fmul f15, f2, f13
    fadd f11, f11, f15
    fmul f15, f3, f12
    fadd f11, f11, f15
    fadd f11, f11, f4
    fmul f15, f5, f14
    fadd f11, f11, f15
    fmul f15, f6, f13
    fadd f11, f11, f15
    fmul f15, f7, f12
    fadd f11, f11, f15
    fadd f11, f11, f8
    fmul f15, f9, f13
    fadd f11, f11, f15
    fmul f15, f10, f12
    fadd f11, f11, f15
    addi r3, r3, 1
    jmp loop
phase2:
    ldi r3, 0
    jmp wloop
wloop:
    sub r4, r3, r2
    br ge r4, done, wbody
wbody:
    fload f12, r1         ; *x (r1 walks here)
    fmul f12, f12, f1     ; *cs0
    fadd f12, f12, f2     ; +cs1
    fadd f11, f11, f12
    addi r1, r1, 8
    addi r3, r3, 1
    jmp wloop
done:
    cvtif f12, r8
    fadd f11, f11, f12
    retf f11
`
	return &Kernel{
		Program: "doduc",
		Name:    "bilan",
		Source:  src,
		Setup: func(e *interp.Env) []interp.Value {
			return []interp.Value{interp.Int(n)}
		},
		Check: func(e *interp.Env, out *interp.Outcome) error {
			return approx(out.RetFloat, ref())
		},
	}
}

// ddeflu runs a loop with a data-dependent diamond inside it, merging
// values at the loop bottom — multi-valued live ranges by construction
// (scale is reset to a constant on one arm and varied on the other).
func ddeflu() *Kernel {
	const n = 30
	av := func(i int) float64 { return math.Sin(float64(i) * 0.7) }
	ref := func() float64 {
		acc := 0.0
		scale := 1.0
		bias := 0.0625
		for i := 0; i < n; i++ {
			a := av(i)
			if a > 0 {
				acc += a*2.5 + bias
				scale = 1.0
			} else {
				acc -= a*0.5 - bias
				scale = scale + 0.125
			}
			acc += scale
		}
		return acc
	}
	src := "routine ddeflu(r2)\n" +
		dataDecl("dx", true, tabulate(n, av)) + `
entry:
    getparam r2, 0
    lda r1, dx
    fldi f1, 0.0          ; acc
    fldi f2, 1.0          ; scale (reset on one arm: multi-valued)
    fldi f3, 2.5
    fldi f4, 0.5
    fldi f5, 0.125
    fldi f6, 0.0          ; zero
    fldi f9, 0.0625       ; bias
    ldi r3, 0
    jmp loop
loop:
    sub r4, r3, r2
    br ge r4, done, body
body:
    fload f7, r1          ; a (r1 walks)
    fcmp r6, f7, f6
    br gt r6, pos, neg
pos:
    fmul f8, f7, f3
    fadd f8, f8, f9
    fadd f1, f1, f8
    fldi f2, 1.0          ; scale = 1
    jmp merge
neg:
    fmul f8, f7, f4
    fsub f8, f8, f9
    fsub f1, f1, f8
    fadd f2, f2, f5       ; scale += 1/8
    jmp merge
merge:
    fadd f1, f1, f2
    addi r1, r1, 8
    addi r3, r3, 1
    jmp loop
done:
    retf f1
`
	return &Kernel{
		Program: "doduc",
		Name:    "ddeflu",
		Source:  src,
		Setup: func(e *interp.Env) []interp.Value {
			return []interp.Value{interp.Int(n)}
		},
		Check: func(e *interp.Env, out *interp.Outcome) error {
			return approx(out.RetFloat, ref())
		},
	}
}

// debico is an integer decode loop: shifts, masks and add-immediates over
// a packed input array walked by pointer.
func debico() *Kernel {
	const n = 40
	av := func(i int) int64 { return int64(i*i*7+3) % 1024 }
	ref := func() int64 {
		var acc int64
		for i := 0; i < n; i++ {
			v := av(i)
			hi := (v >> 4) & 63
			lo := v & 15
			acc += hi*17 + lo*3 + 11
			if acc&1 == 1 {
				acc += hi
			}
		}
		return acc
	}
	ivals := make([]int64, n)
	for i := range ivals {
		ivals[i] = av(i)
	}
	src := "routine debico(r2)\n" +
		intDataDecl("dv", true, ivals) + `
entry:
    getparam r2, 0
    lda r1, dv
    ldi r3, 0             ; acc
    ldi r4, 4             ; shift
    ldi r5, 63            ; mask hi
    ldi r6, 15            ; mask lo
    ldi r7, 0             ; i
    jmp loop
loop:
    sub r8, r7, r2
    br ge r8, done, body
body:
    load r10, r1          ; v (r1 walks)
    shr r11, r10, r4
    and r11, r11, r5      ; hi
    and r12, r10, r6      ; lo
    muli r11, r11, 17
    muli r12, r12, 3
    add r3, r3, r11
    add r3, r3, r12
    addi r3, r3, 11
    ldi r13, 1
    and r13, r3, r13
    br eq r13, even, odd
odd:
    ldi r14, 17
    div r11, r11, r14
    add r3, r3, r11
    jmp even
even:
    addi r1, r1, 8
    addi r7, r7, 1
    jmp loop
done:
    retr r3
`
	return &Kernel{
		Program: "doduc",
		Name:    "debico",
		Source:  src,
		Setup: func(e *interp.Env) []interp.Value {
			return []interp.Value{interp.Int(n)}
		},
		Check: func(e *interp.Env, out *interp.Outcome) error {
			if out.RetInt != ref() {
				return approx(float64(out.RetInt), float64(ref()))
			}
			return nil
		},
	}
}

// debico's data initializer stores integers through the float Init path;
// values are small enough to be exact.

// drepvi walks two pointers with different strides while a read-only
// constant is reloaded each iteration — the varying-vs-constant mix of
// Figure 1, plus integer coefficient constants for pressure.
func drepvi() *Kernel {
	const n = 24
	pv := func(i int) float64 { return float64(i) * 0.5 }
	qv := func(i int) float64 { return 1.5 - 0.125*float64(i) }
	ref := func() float64 {
		k := 0.75
		acc := 0.0
		var ia int64
		for i := 0; i < n; i++ {
			acc += pv(i)*k + qv(2*i)
			ia += int64(i)*3 + 7
		}
		return acc + float64(ia)
	}
	src := "routine drepvi(r3)\n" +
		"data kconst ro 1 = 0.75\n" +
		dataDecl("pv", true, tabulate(n, pv)) +
		dataDecl("qv", true, tabulate(2*n, qv)) + `
entry:
    getparam r3, 0        ; n
    lda r1, pv
    lda r2, qv
    ldi r4, 0             ; i
    ldi r6, 3             ; int coefficients (pressure)
    ldi r7, 7
    ldi r8, 0             ; ia
    fldi f1, 0.0          ; acc
    jmp loop
loop:
    sub r5, r4, r3
    br ge r5, done, body
body:
    fload f2, r1          ; *p
    frload f3, kconst, 0  ; k (rematerializable static load)
    fmul f2, f2, f3
    fload f4, r2          ; *q
    fadd f2, f2, f4
    fadd f1, f1, f2
    mul r9, r4, r6
    add r9, r9, r7
    add r8, r8, r9
    addi r1, r1, 8        ; p++
    addi r2, r2, 16       ; q += 2
    addi r4, r4, 1
    jmp loop
done:
    cvtif f5, r8
    fadd f1, f1, f5
    retf f1
`
	return &Kernel{
		Program: "doduc",
		Name:    "drepvi",
		Source:  src,
		Setup: func(e *interp.Env) []interp.Value {
			return []interp.Value{interp.Int(n)}
		},
		Check: func(e *interp.Env, out *interp.Outcome) error {
			return approx(out.RetFloat, ref())
		},
	}
}

// inithx initializes three static tables from immediates — load-immediate
// and load-address heavy, the best case for rematerialization.
func inithx() *Kernel {
	const n = 16
	return &Kernel{
		Program: "doduc",
		Name:    "inithx",
		Source: `
routine inithx(r1)
data ta rw 16
data tb rw 16
data tc rw 16
entry:
    getparam r1, 0        ; n
    lda r2, ta
    lda r3, tb
    lda r4, tc
    ldi r5, 0             ; i
    fldi f1, 2.25
    fldi f2, -1.5
    jmp loop
loop:
    sub r6, r5, r1
    br ge r6, verify, body
body:
    muli r7, r5, 8
    add r8, r7, r2
    fstore f1, r8         ; ta[i] = 2.25
    add r8, r7, r3
    fstore f2, r8         ; tb[i] = -1.5
    add r8, r7, r4
    cvtif f3, r5
    fmul f3, f3, f1
    fstore f3, r8         ; tc[i] = 2.25*i
    addi r5, r5, 1
    jmp loop
verify:
    fldi f4, 0.0
    ldi r5, 0
    jmp vloop
vloop:
    sub r6, r5, r1
    br ge r6, done, vbody
vbody:
    fload f5, r2          ; the three table pointers walk here
    fadd f4, f4, f5
    fload f5, r3
    fadd f4, f4, f5
    fload f5, r4
    fadd f4, f4, f5
    addi r2, r2, 8
    addi r3, r3, 8
    addi r4, r4, 8
    addi r5, r5, 1
    jmp vloop
done:
    retf f4
`,
		Setup: func(e *interp.Env) []interp.Value {
			return []interp.Value{interp.Int(n)}
		},
		Check: func(e *interp.Env, out *interp.Outcome) error {
			want := 0.0
			for i := 0; i < n; i++ {
				want += 2.25 + -1.5 + 2.25*float64(i)
			}
			return approx(out.RetFloat, want)
		},
	}
}

// integr is trapezoidal integration with a walking sample pointer.
func integr() *Kernel {
	const n = 48
	const h = 0.05
	fv := func(i int) float64 { return math.Exp(-0.1*float64(i)) * math.Sin(float64(i)*0.3) }
	ref := func() float64 {
		acc := 0.0
		for i := 0; i < n-1; i++ {
			acc += 0.5 * h * (fv(i) + fv(i+1))
		}
		return acc
	}
	src := "routine integr(r2, f1)\n" +
		dataDecl("fx", true, tabulate(n, fv)) + `
entry:
    getparam r2, 0        ; n
    fgetparam f1, 1       ; h
    lda r1, fx
    fldi f2, 0.5
    fmul f2, f2, f1       ; h/2
    fldi f3, 0.0          ; acc
    subi r3, r2, 1
    ldi r4, 0
    jmp loop
loop:
    sub r5, r4, r3
    br ge r5, done, body
body:
    fload f4, r1          ; f[i] (r1 walks)
    floadai f5, r1, 8     ; f[i+1]
    fadd f4, f4, f5
    fmul f4, f4, f2
    fadd f3, f3, f4
    addi r1, r1, 8
    addi r4, r4, 1
    jmp loop
done:
    retf f3
`
	return &Kernel{
		Program: "doduc",
		Name:    "integr",
		Source:  src,
		Setup: func(e *interp.Env) []interp.Value {
			return []interp.Value{interp.Int(n), interp.Float(h)}
		},
		Check: func(e *interp.Env, out *interp.Outcome) error {
			return approx(out.RetFloat, ref())
		},
	}
}

// lectur scans records of three words until a sentinel, accumulating
// per-field sums — an lda-rooted record pointer that walks, several live
// accumulators and an early exit.
func lectur() *Kernel {
	recs := [][3]int64{{3, 10, 2}, {5, -4, 7}, {1, 1, 1}, {8, 0, -2}, {2, 9, 4}, {-1, 0, 0}}
	ref := func() int64 {
		var s0, s1, s2, s3, s4 int64
		for _, r := range recs {
			if r[0] < 0 {
				break
			}
			s0 += r[0]
			s1 += r[1] * 2
			s2 += r[2] * 3
			s3 += r[0] * r[1]
			s4 += r[2] - r[0]
		}
		return s0 + s1*10 + s2*100 + s3*7 + s4*1000
	}
	flat := make([]int64, 0, len(recs)*3)
	for _, r := range recs {
		flat = append(flat, r[0], r[1], r[2])
	}
	src := "routine lectur()\n" +
		intDataDecl("recs", true, flat) + `
entry:
    lda r1, recs
    ldi r2, 0             ; s0
    ldi r3, 0             ; s1
    ldi r4, 0             ; s2
    ldi r8, 0             ; s3
    ldi r9, 0             ; s4
    jmp loop
loop:
    load r5, r1           ; field 0
    br lt r5, done, body
body:
    add r2, r2, r5
    loadai r6, r1, 8
    mul r10, r5, r6       ; r0*r1
    add r8, r8, r10
    muli r6, r6, 2
    add r3, r3, r6
    loadai r7, r1, 16
    sub r10, r7, r5       ; r2-r0
    add r9, r9, r10
    muli r7, r7, 3
    add r4, r4, r7
    addi r1, r1, 24
    jmp loop
done:
    muli r3, r3, 10
    muli r4, r4, 100
    muli r8, r8, 7
    muli r9, r9, 1000
    add r2, r2, r3
    add r2, r2, r4
    add r2, r2, r8
    add r2, r2, r9
    retr r2
`
	return &Kernel{
		Program: "doduc",
		Name:    "lectur",
		Source:  src,
		Setup: func(e *interp.Env) []interp.Value {
			return nil
		},
		Check: func(e *interp.Env, out *interp.Outcome) error {
			if out.RetInt != ref() {
				return approx(float64(out.RetInt), float64(ref()))
			}
			return nil
		},
	}
}

// pastem keeps eight integer and four float accumulators live around one
// loop — enough simultaneous live ranges to spill on the standard
// machine once temporaries join in.
func pastem() *Kernel {
	const n = 25
	av := func(i int) int64 { return int64((i*13)%17 - 8) }
	ref := func() float64 {
		var s [8]int64
		var t [4]float64
		for i := 0; i < n; i++ {
			v := av(i)
			s[0] += v
			s[1] += v * 2
			s[2] += v * 3
			s[3] += v * 5
			s[4] ^= v
			s[5] += v & 7
			s[6] += int64(uint64(v) >> 1) // shr is a logical shift
			s[7] += v * v
			fv := float64(v)
			t[0] += fv * 0.5
			t[1] += fv*fv*0.25 + 1
			t[2] += fv - 0.125
			t[3] += fv * 1.5
		}
		acc := 0.0
		for _, x := range s {
			acc += float64(x)
		}
		for _, x := range t {
			acc += x
		}
		return acc
	}
	ivals := make([]int64, n)
	for i := range ivals {
		ivals[i] = av(i)
	}
	src := "routine pastem(r2)\n" +
		intDataDecl("pv2", true, ivals) + `
entry:
    getparam r2, 0
    lda r1, pv2
    ldi r3, 0
    ldi r4, 0
    ldi r5, 0
    ldi r6, 0
    ldi r7, 0
    ldi r8, 0
    ldi r9, 0
    ldi r10, 0
    fldi f1, 0.0
    fldi f2, 0.0
    fldi f3, 0.0
    fldi f4, 0.0
    fldi f5, 0.5
    fldi f6, 0.25
    fldi f7, 0.125
    fldi f8, 1.5
    fldi f9, 1.0
    ldi r11, 0            ; i
    jmp loop
loop:
    sub r12, r11, r2
    br ge r12, done, body
body:
    load r14, r1          ; v (r1 walks)
    add r3, r3, r14
    muli r15, r14, 2
    add r4, r4, r15
    muli r15, r14, 3
    add r5, r5, r15
    muli r15, r14, 5
    add r6, r6, r15
    xor r7, r7, r14
    ldi r15, 7
    and r15, r14, r15
    add r8, r8, r15
    ldi r15, 1
    shr r15, r14, r15
    add r9, r9, r15
    mul r15, r14, r14
    add r10, r10, r15
    cvtif f10, r14
    fmul f11, f10, f5
    fadd f1, f1, f11
    fmul f11, f10, f10
    fmul f11, f11, f6
    fadd f11, f11, f9
    fadd f2, f2, f11
    fsub f11, f10, f7
    fadd f3, f3, f11
    fmul f11, f10, f8
    fadd f4, f4, f11
    addi r1, r1, 8
    addi r11, r11, 1
    jmp loop
done:
    add r3, r3, r4
    add r3, r3, r5
    add r3, r3, r6
    add r3, r3, r7
    add r3, r3, r8
    add r3, r3, r9
    add r3, r3, r10
    cvtif f10, r3
    fadd f10, f10, f1
    fadd f10, f10, f2
    fadd f10, f10, f3
    fadd f10, f10, f4
    retf f10
`
	return &Kernel{
		Program: "doduc",
		Name:    "pastem",
		Source:  src,
		Setup: func(e *interp.Env) []interp.Value {
			return []interp.Value{interp.Int(n)}
		},
		Check: func(e *interp.Env, out *interp.Outcome) error {
			return approx(out.RetFloat, ref())
		},
	}
}

// repvid is the paper's Table 2 "small" routine: a two-level loop nest
// sweeping rows of a static matrix against a vector, with an lda-rooted
// walking row pointer.
func repvid() *Kernel {
	const rows, cols = 10, 12
	av := func(i, j int) float64 { return float64((i*cols+j)%7) - 2.5 }
	xvv := func(j int) float64 { return 0.5 + 0.25*float64(j%4) }
	flat := make([]float64, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			flat[i*cols+j] = av(i, j)
		}
	}
	ref := func() float64 {
		acc := 0.0
		ci := int64(0)
		for i := 0; i < rows; i++ {
			dot := 0.0
			for j := 0; j < cols; j++ {
				dot += av(i, j) * xvv(j)
				ci += int64(i)*5 + int64(j)
			}
			acc += math.Abs(dot)
		}
		return acc + float64(ci)
	}
	src := "routine repvid(r3, r4)\n" +
		dataDecl("ra", true, flat) +
		dataDecl("rx", true, tabulate(cols, xvv)) + `
entry:
    getparam r3, 0        ; rows
    getparam r4, 1        ; cols
    lda r1, ra
    lda r2, rx
    muli r5, r4, 8        ; row stride
    fldi f1, 0.0          ; acc
    ldi r6, 0             ; i
    mov r7, r1            ; row pointer (walks per row)
    ldi r12, 5            ; checksum coefficient (pressure)
    ldi r13, 0            ; ci
    jmp iloop
iloop:
    sub r8, r6, r3
    br ge r8, done, ibody
ibody:
    fldi f2, 0.0          ; dot
    ldi r9, 0             ; j
    jmp jloop
jloop:
    sub r8, r9, r4
    br ge r8, inext, jbody
jbody:
    muli r10, r9, 8
    add r11, r10, r7
    fload f3, r11         ; a[i][j]
    add r11, r10, r2
    fload f4, r11         ; x[j]
    fmul f3, f3, f4
    fadd f2, f2, f3
    mul r11, r6, r12
    add r11, r11, r9
    add r13, r13, r11     ; ci += i*5 + j
    addi r9, r9, 1
    jmp jloop
inext:
    fabs f2, f2
    fadd f1, f1, f2
    add r7, r7, r5
    addi r6, r6, 1
    jmp iloop
done:
    cvtif f2, r13
    fadd f1, f1, f2
    retf f1
`
	return &Kernel{
		Program: "doduc",
		Name:    "repvid",
		Source:  src,
		Setup: func(e *interp.Env) []interp.Value {
			return []interp.Value{interp.Int(rows), interp.Int(cols)}
		},
		Check: func(e *interp.Env, out *interp.Outcome) error {
			return approx(out.RetFloat, ref())
		},
	}
}
