package suite

import (
	"fmt"
	"math"

	"repro/internal/interp"
)

// fehl is a Runge-Kutta-Fehlberg-style stage evaluation: eight stage
// coefficients held live across the loop plus a second phase in which the
// y pointer walks — the lda-anchored constant-then-varying live range of
// Figure 1. The paper's fehl row improved 27%.
// fehlN is the vector length fehl (and its rkf45 driver) work on.
const fehlN = 24

func fehlYv(i int) float64  { return 0.5*float64(i) - 3 }
func fehlYpv(i int) float64 { return 1.5 - 0.25*float64(i) }

// fehlReference mirrors the fehl kernel's computation for a given step
// size; the rkfdrv kernel calls fehl twice with different h.
func fehlReference(h float64) float64 {
	k1, k3, k4, k5, k6, k7, k8, k9 := 0.25, 0.09375, 0.28125, 0.879, 3.2, 7.17, 0.386, 0.1135
	acc := 0.0
	for i := 0; i < fehlN; i++ {
		y, yp := fehlYv(i), fehlYpv(i)
		s1 := y + h*(k1*yp)
		s2 := y + h*(k3*yp+k4*s1)
		s3 := y + h*(k5*yp-k6*s1+k7*s2)
		s4 := y + h*(k8*s3+k9*s2)
		acc += math.Abs(s2-s1) + math.Abs(s4-s3)
	}
	for i := 0; i < fehlN; i++ {
		acc += fehlYv(i) * k1
	}
	ci := int64(0)
	for i := 0; i < fehlN; i++ {
		ci += int64(i)*3 + 5
	}
	return acc + float64(ci)
}

func fehl() *Kernel {
	const n = fehlN
	const h = 0.1
	yv := fehlYv
	ypv := fehlYpv
	ref := func() float64 { return fehlReference(h) }
	src := "routine fehl(r1, f1)\n" +
		dataDecl("yv", false, tabulate(n, yv)) +
		dataDecl("ypv", true, tabulate(n, ypv)) + `
entry:
    getparam r1, 0        ; n
    fgetparam f1, 1       ; h
    lda r2, yv            ; y base (constant here, walks in phase 2)
    lda r3, ypv
    fldi f2, 0.25         ; k1
    fldi f3, 0.09375      ; k3
    fldi f4, 0.28125      ; k4
    fldi f5, 0.879        ; k5
    fldi f6, 3.2          ; k6
    fldi f7, 7.17         ; k7
    fldi f8, 0.386        ; k8
    fldi f9, 0.1135       ; k9
    fldi f10, 0.0         ; acc
    ldi r4, 0
    ldi r9, 3             ; integer checksum coefficients (pressure)
    ldi r10, 5
    ldi r11, 0            ; ci
    jmp loop
loop:
    sub r5, r4, r1
    br ge r5, phase2, body
body:
    mul r12, r4, r9
    add r12, r12, r10
    add r11, r11, r12     ; ci += i*3 + 5
    muli r6, r4, 8
    add r7, r6, r2
    fload f11, r7         ; y[i]
    add r8, r6, r3
    fload f12, r8         ; yp[i]
    fmul f13, f2, f12
    fmul f13, f13, f1
    fadd f13, f11, f13    ; s1
    fmul f14, f3, f12
    fmul f15, f4, f13
    fadd f14, f14, f15
    fmul f14, f14, f1
    fadd f14, f11, f14    ; s2
    fmul f15, f5, f12
    fmul f16, f6, f13
    fsub f15, f15, f16
    fmul f16, f7, f14
    fadd f15, f15, f16
    fmul f15, f15, f1
    fadd f15, f11, f15    ; s3
    fmul f16, f8, f15
    fmul f17, f9, f14
    fadd f16, f16, f17
    fmul f16, f16, f1
    fadd f16, f11, f16    ; s4
    fsub f17, f14, f13
    fabs f17, f17
    fadd f10, f10, f17
    fsub f17, f16, f15
    fabs f17, f17
    fadd f10, f10, f17
    addi r4, r4, 1
    jmp loop
phase2:
    ldi r4, 0             ; r2 now walks (multi-valued live range)
    jmp wloop
wloop:
    sub r5, r4, r1
    br ge r5, done, wbody
wbody:
    fload f11, r2
    fmul f11, f11, f2     ; y[i]*k1
    fadd f10, f10, f11
    addi r2, r2, 8
    addi r4, r4, 1
    jmp wloop
done:
    cvtif f11, r11
    fadd f10, f10, f11
    retf f10
`
	return &Kernel{
		Program: "rkf45",
		Name:    "fehl",
		Source:  src,
		Setup: func(e *interp.Env) []interp.Value {
			return []interp.Value{interp.Int(n), interp.Float(h)}
		},
		Check: func(e *interp.Env, out *interp.Outcome) error {
			return approx(out.RetFloat, ref())
		},
	}
}

// spline computes first divided differences and then the variation of the
// slopes: the b pointer is written via indexed addressing in loop 1, then
// walks in loop 2 — a multi-valued lda-rooted live range.
func spline() *Kernel {
	const n = 20
	xv := func(i int) float64 { return float64(i) + 0.25*float64(i%3) }
	yv := func(i int) float64 { return math.Abs(float64(i-7)) * 0.5 }
	ref := func() float64 {
		var b [n]float64
		for i := 0; i < n-1; i++ {
			b[i] = (yv(i+1) - yv(i)) / (xv(i+1) - xv(i))
		}
		acc := 0.0
		for i := 0; i < n-2; i++ {
			acc += math.Abs(b[i+1] - b[i])
		}
		return acc
	}
	src := "routine spline(r4)\n" +
		dataDecl("xs", true, tabulate(n, xv)) +
		dataDecl("ys", true, tabulate(n, yv)) +
		dataDecl("bs", false, make([]float64, n)) + `
entry:
    getparam r4, 0        ; n
    lda r1, xs
    lda r2, ys
    lda r3, bs
    subi r5, r4, 1        ; n-1
    ldi r6, 0
    jmp loop1
loop1:
    sub r7, r6, r5
    br ge r7, mid, body1
body1:
    muli r8, r6, 8
    add r9, r8, r1
    fload f1, r9          ; x[i]
    floadai f2, r9, 8     ; x[i+1]
    add r9, r8, r2
    fload f3, r9          ; y[i]
    floadai f4, r9, 8     ; y[i+1]
    fsub f2, f2, f1
    fsub f4, f4, f3
    fdiv f4, f4, f2       ; slope
    add r9, r8, r3
    fstore f4, r9         ; b[i] = slope
    addi r6, r6, 1
    jmp loop1
mid:
    subi r5, r4, 2        ; n-2
    fldi f5, 0.0
    ldi r6, 0
    jmp loop2
loop2:
    sub r7, r6, r5
    br ge r7, done, body2
body2:
    fload f1, r3          ; b[i]  (r3 walks: multi-valued range)
    floadai f2, r3, 8     ; b[i+1]
    fsub f2, f2, f1
    fabs f2, f2
    fadd f5, f5, f2
    addi r3, r3, 8
    addi r6, r6, 1
    jmp loop2
done:
    retf f5
`
	return &Kernel{
		Program: "seval",
		Name:    "spline",
		Source:  src,
		Setup: func(e *interp.Env) []interp.Value {
			return []interp.Value{interp.Int(n)}
		},
		Check: func(e *interp.Env, out *interp.Outcome) error {
			return approx(out.RetFloat, ref())
		},
	}
}

// decomp is Gaussian elimination without pivoting on a small dense
// matrix — triple-nested loops whose address arithmetic keeps the integer
// file under pressure.
func decomp() *Kernel {
	const n = 6
	av := func(i, j int) float64 {
		if i == j {
			return 10 + float64(i)
		}
		return 1 / float64(i+j+1)
	}
	flat := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			flat[i*n+j] = av(i, j)
		}
	}
	ref := func() float64 {
		var a [n][n]float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a[i][j] = av(i, j)
			}
		}
		for k := 0; k < n; k++ {
			for i := k + 1; i < n; i++ {
				m := a[i][k] / a[k][k]
				a[i][k] = m
				for j := k + 1; j < n; j++ {
					a[i][j] -= m * a[k][j]
				}
			}
		}
		acc := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				acc += math.Abs(a[i][j])
			}
		}
		return acc
	}
	src := "routine decomp(r2)\n" +
		dataDecl("am", false, flat) + `
entry:
    getparam r2, 0        ; n
    lda r1, am
    ldi r3, 0             ; k
    jmp kloop
kloop:
    sub r4, r3, r2
    br ge r4, sum, kbody
kbody:
    muli r5, r3, 8
    mul r6, r5, r2
    add r6, r6, r5
    add r6, r6, r1        ; &a[k][k]
    fload f1, r6          ; pivot
    addi r7, r3, 1        ; i = k+1
    jmp iloop
iloop:
    sub r4, r7, r2
    br ge r4, knext, ibody
ibody:
    muli r8, r7, 8
    mul r8, r8, r2
    add r8, r8, r1        ; &a[i][0]
    add r9, r8, r5        ; &a[i][k]
    fload f2, r9
    fdiv f2, f2, f1       ; m
    fstore f2, r9
    addi r10, r3, 1       ; j = k+1
    jmp jloop
jloop:
    sub r4, r10, r2
    br ge r4, inext, jbody
jbody:
    muli r11, r10, 8
    add r12, r8, r11      ; &a[i][j]
    mul r13, r3, r2
    muli r13, r13, 8
    add r13, r13, r1
    add r13, r13, r11     ; &a[k][j]
    fload f3, r12
    fload f4, r13
    fmul f4, f4, f2
    fsub f3, f3, f4
    fstore f3, r12
    addi r10, r10, 1
    jmp jloop
inext:
    addi r7, r7, 1
    jmp iloop
knext:
    addi r3, r3, 1
    jmp kloop
sum:
    fldi f5, 0.0
    mul r3, r2, r2
    ldi r7, 0
    mov r8, r1            ; walking pointer over the whole matrix
    jmp sloop
sloop:
    sub r4, r7, r3
    br ge r4, done, sbody
sbody:
    fload f1, r8
    fabs f1, f1
    fadd f5, f5, f1
    addi r8, r8, 8
    addi r7, r7, 1
    jmp sloop
done:
    retf f5
`
	return &Kernel{
		Program: "solve",
		Name:    "decomp",
		Source:  src,
		Setup: func(e *interp.Env) []interp.Value {
			return []interp.Value{interp.Int(n)}
		},
		Check: func(e *interp.Env, out *interp.Outcome) error {
			return approx(out.RetFloat, ref())
		},
	}
}

// svd accumulates column norms and rescales each column — the
// column-sweep pattern of the SVD's bidiagonalization phase.
func svd() *Kernel {
	const n = 8
	av := func(i, j int) float64 { return math.Cos(float64(i*n+j)) * 2 }
	flat := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			flat[i*n+j] = av(i, j)
		}
	}
	ref := func() float64 {
		var a [n][n]float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a[i][j] = av(i, j)
			}
		}
		total := 0.0
		for j := 0; j < n; j++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += a[i][j] * a[i][j]
			}
			for i := 0; i < n; i++ {
				a[i][j] /= 1 + s
			}
			total += s
		}
		return total
	}
	src := "routine svd(r2)\n" +
		dataDecl("sm", false, flat) + `
entry:
    getparam r2, 0        ; n
    lda r1, sm
    muli r3, r2, 8        ; row stride
    fldi f1, 0.0          ; total
    fldi f2, 1.0          ; constant one, live across everything
    ldi r4, 0             ; j
    jmp jloop
jloop:
    sub r5, r4, r2
    br ge r5, done, jbody
jbody:
    muli r6, r4, 8
    add r6, r6, r1        ; &a[0][j]
    fldi f3, 0.0          ; s
    ldi r7, 0             ; i
    mov r8, r6
    jmp nloop
nloop:
    sub r5, r7, r2
    br ge r5, scale, nbody
nbody:
    fload f4, r8
    fmul f4, f4, f4
    fadd f3, f3, f4
    add r8, r8, r3
    addi r7, r7, 1
    jmp nloop
scale:
    fadd f5, f2, f3       ; 1+s
    ldi r7, 0
    mov r8, r6
    jmp sloop
sloop:
    sub r5, r7, r2
    br ge r5, jnext, sbody
sbody:
    fload f4, r8
    fdiv f4, f4, f5
    fstore f4, r8
    add r8, r8, r3
    addi r7, r7, 1
    jmp sloop
jnext:
    fadd f1, f1, f3
    addi r4, r4, 1
    jmp jloop
done:
    retf f1
`
	return &Kernel{
		Program: "svd",
		Name:    "svd",
		Source:  src,
		Setup: func(e *interp.Env) []interp.Value {
			return []interp.Value{interp.Int(n)}
		},
		Check: func(e *interp.Env, out *interp.Outcome) error {
			return approx(out.RetFloat, ref())
		},
	}
}

// zeroin is a bisection root finder for x² = c — a branchy scalar loop
// whose float scalars stay live around every iteration.
func zeroin() *Kernel {
	const c = 7.0
	const iters = 40
	ref := func() float64 {
		lo, hi := 0.0, 4.0
		f := func(x float64) float64 { return x*x - c }
		for k := 0; k < iters; k++ {
			mid := 0.5 * (lo + hi)
			if f(lo)*f(mid) <= 0 {
				hi = mid
			} else {
				lo = mid
			}
		}
		return 0.5 * (lo + hi)
	}
	return &Kernel{
		Program: "zeroin",
		Name:    "zeroin",
		Source: `
routine zeroin(f1, r1)
entry:
    fgetparam f1, 0       ; c
    getparam r1, 1        ; iterations
    fldi f2, 0.0          ; lo
    fldi f3, 4.0          ; hi
    fldi f4, 0.5          ; half (live across the loop)
    ldi r2, 0
    jmp loop
loop:
    sub r3, r2, r1
    br ge r3, done, body
body:
    fadd f5, f2, f3
    fmul f5, f5, f4       ; mid
    fmul f6, f2, f2
    fsub f6, f6, f1       ; f(lo)
    fmul f7, f5, f5
    fsub f7, f7, f1       ; f(mid)
    fmul f6, f6, f7
    fldi f8, 0.0
    fcmp r4, f6, f8
    br le r4, high, low
high:
    fmov f3, f5           ; hi = mid
    jmp next
low:
    fmov f2, f5           ; lo = mid
    jmp next
next:
    addi r2, r2, 1
    jmp loop
done:
    fadd f5, f2, f3
    fmul f5, f5, f4
    retf f5
`,
		Setup: func(e *interp.Env) []interp.Value {
			return []interp.Value{interp.Float(c), interp.Int(iters)}
		},
		Check: func(e *interp.Env, out *interp.Outcome) error {
			if err := approx(out.RetFloat, ref()); err != nil {
				return err
			}
			if math.Abs(out.RetFloat*out.RetFloat-c) > 1e-9 {
				return fmt.Errorf("root %g does not square to %g", out.RetFloat, c)
			}
			return nil
		},
	}
}
