package suite

import (
	"math"

	"repro/internal/interp"
)

// bilsla is bilan's slave routine: a short straight-line float block
// inside a small loop (the paper's row improved 6%).
func bilsla() *Kernel {
	const n = 12
	xv := func(i int) float64 { return 0.3*float64(i) - 1.1 }
	ref := func() float64 {
		acc := 0.0
		for i := 0; i < n; i++ {
			x := xv(i)
			acc += (x*1.25+0.5)*(x-0.75) + 2.0
		}
		return acc
	}
	src := "routine bilsla(r2)\n" +
		dataDecl("slx", true, tabulate(n, xv)) + `
entry:
    getparam r2, 0
    lda r1, slx
    fldi f1, 1.25
    fldi f2, 0.5
    fldi f3, 0.75
    fldi f4, 2.0
    fldi f5, 0.0          ; acc
    ldi r3, 0
    jmp loop
loop:
    sub r4, r3, r2
    br ge r4, done, body
body:
    fload f6, r1          ; x (r1 walks)
    fmul f7, f6, f1
    fadd f7, f7, f2
    fsub f8, f6, f3
    fmul f7, f7, f8
    fadd f7, f7, f4
    fadd f5, f5, f7
    addi r1, r1, 8
    addi r3, r3, 1
    jmp loop
done:
    retf f5
`
	return &Kernel{
		Program: "doduc", Name: "bilsla", Source: src,
		Setup: func(e *interp.Env) []interp.Value { return []interp.Value{interp.Int(n)} },
		Check: func(e *interp.Env, out *interp.Outcome) error { return approx(out.RetFloat, ref()) },
	}
}

// colbur mirrors the paper's degradation case: a tight loop of small
// independent accumulations where extra split copies can only hurt.
func colbur() *Kernel {
	const n = 28
	av := func(i int) int64 { return int64((i*i)%13 - 6) }
	ref := func() int64 {
		var s0, s1, s2, s3 int64
		for i := 0; i < n; i++ {
			v := av(i)
			s0 += v
			s1 ^= v + 3
			s2 += v * v
			s3 += v & 5
		}
		return s0 + 2*s1 + 3*s2 + 4*s3
	}
	ivals := make([]int64, n)
	for i := range ivals {
		ivals[i] = av(i)
	}
	src := "routine colbur(r2)\n" +
		intDataDecl("cbv", true, ivals) + `
entry:
    getparam r2, 0
    lda r1, cbv
    ldi r3, 0             ; s0
    ldi r4, 0             ; s1
    ldi r5, 0             ; s2
    ldi r6, 0             ; s3
    ldi r7, 3             ; constants live across the loop
    ldi r8, 5
    ldi r9, 0             ; i
    jmp loop
loop:
    sub r10, r9, r2
    br ge r10, done, body
body:
    load r11, r1          ; v (r1 walks)
    add r3, r3, r11
    add r12, r11, r7
    xor r4, r4, r12
    mul r12, r11, r11
    add r5, r5, r12
    and r12, r11, r8
    add r6, r6, r12
    addi r1, r1, 8
    addi r9, r9, 1
    jmp loop
done:
    muli r4, r4, 2
    muli r5, r5, 3
    muli r6, r6, 4
    add r3, r3, r4
    add r3, r3, r5
    add r3, r3, r6
    retr r3
`
	return &Kernel{
		Program: "doduc", Name: "colbur", Source: src,
		Setup: func(e *interp.Env) []interp.Value { return []interp.Value{interp.Int(n)} },
		Check: func(e *interp.Env, out *interp.Outcome) error {
			if out.RetInt != ref() {
				return approx(float64(out.RetInt), float64(ref()))
			}
			return nil
		},
	}
}

// deseco is the suite's second-largest routine (the paper's biggest
// Table 1 row): three phases — a polynomial sweep, a conditional
// correction pass, and a pointer-walking reduction — sharing constants.
func deseco() *Kernel {
	const n = 20
	xv := func(i int) float64 { return math.Sin(float64(i)*1.1) * 2 }
	ref := func() float64 {
		x := make([]float64, n)
		for i := range x {
			x[i] = xv(i)
		}
		acc := 0.0
		// Phase 1: polynomial accumulate.
		for i := 0; i < n; i++ {
			v := x[i]
			acc += 0.9*v*v - 1.4*v + 0.2
		}
		// Phase 2: conditional correction writes back.
		for i := 0; i < n; i++ {
			if x[i] < 0 {
				x[i] = x[i]*0.5 + 0.125
			} else {
				x[i] = x[i] * 1.5
			}
		}
		// Phase 3: pointer-walking reduction with two strides.
		for i := 0; i+1 < n; i += 2 {
			acc += x[i] - 0.25*x[i+1]
		}
		return acc
	}
	src := "routine deseco(r2)\n" +
		dataDecl("dsx", false, tabulate(n, xv)) + `
entry:
    getparam r2, 0
    lda r1, dsx
    fldi f1, 0.9
    fldi f2, 1.4
    fldi f3, 0.2
    fldi f4, 0.5
    fldi f5, 0.125
    fldi f6, 1.5
    fldi f7, 0.25
    fldi f8, 0.0          ; acc
    fldi f9, 0.0          ; zero
    ldi r3, 0
    jmp p1
p1:
    sub r4, r3, r2
    br ge r4, p2init, p1body
p1body:
    muli r5, r3, 8
    add r5, r5, r1
    fload f10, r5         ; v
    fmul f11, f10, f10
    fmul f11, f11, f1
    fmul f12, f10, f2
    fsub f11, f11, f12
    fadd f11, f11, f3
    fadd f8, f8, f11
    addi r3, r3, 1
    jmp p1
p2init:
    ldi r3, 0
    mov r6, r1            ; phase-2 walker
    jmp p2
p2:
    sub r4, r3, r2
    br ge r4, p3init, p2body
p2body:
    fload f10, r6
    fcmp r7, f10, f9
    br lt r7, neg, pos
neg:
    fmul f10, f10, f4
    fadd f10, f10, f5
    jmp wr
pos:
    fmul f10, f10, f6
    jmp wr
wr:
    fstore f10, r6
    addi r6, r6, 8
    addi r3, r3, 1
    jmp p2
p3init:
    ldi r3, 0
    subi r8, r2, 1        ; n-1
    jmp p3
p3:
    sub r4, r3, r8
    br ge r4, done, p3body
p3body:
    fload f10, r1         ; x[i] (r1 walks by 16)
    floadai f11, r1, 8    ; x[i+1]
    fmul f11, f11, f7
    fsub f10, f10, f11
    fadd f8, f8, f10
    addi r1, r1, 16
    addi r3, r3, 2
    jmp p3
done:
    retf f8
`
	return &Kernel{
		Program: "doduc", Name: "deseco", Source: src,
		Setup: func(e *interp.Env) []interp.Value { return []interp.Value{interp.Int(n)} },
		Check: func(e *interp.Env, out *interp.Outcome) error { return approx(out.RetFloat, ref()) },
	}
}

// drigl scales one array by two alternating constants in two loops.
func drigl() *Kernel {
	const n = 14
	xv := func(i int) float64 { return 1 + 0.5*float64(i%5) }
	ref := func() float64 {
		x := make([]float64, n)
		for i := range x {
			x[i] = xv(i)
		}
		for i := 0; i < n; i++ {
			x[i] *= 1.1
		}
		acc := 0.0
		for i := 0; i < n; i++ {
			acc += x[i] * 0.9
		}
		return acc
	}
	src := "routine drigl(r2)\n" +
		dataDecl("dgx", false, tabulate(n, xv)) + `
entry:
    getparam r2, 0
    lda r1, dgx
    fldi f1, 1.1
    fldi f2, 0.9
    fldi f3, 0.0
    ldi r3, 0
    mov r4, r1            ; first walker
    jmp l1
l1:
    sub r5, r3, r2
    br ge r5, l2init, l1body
l1body:
    fload f4, r4
    fmul f4, f4, f1
    fstore f4, r4
    addi r4, r4, 8
    addi r3, r3, 1
    jmp l1
l2init:
    ldi r3, 0
    jmp l2
l2:
    sub r5, r3, r2
    br ge r5, done, l2body
l2body:
    fload f4, r1          ; second walker (r1 itself)
    fmul f4, f4, f2
    fadd f3, f3, f4
    addi r1, r1, 8
    addi r3, r3, 1
    jmp l2
done:
    retf f3
`
	return &Kernel{
		Program: "doduc", Name: "drigl", Source: src,
		Setup: func(e *interp.Env) []interp.Value { return []interp.Value{interp.Int(n)} },
		Check: func(e *interp.Env, out *interp.Outcome) error { return approx(out.RetFloat, ref()) },
	}
}

// heat is one explicit step of the 1-D heat equation into a second
// array.
func heat() *Kernel {
	const n = 18
	const k = 0.1
	xv := func(i int) float64 { return math.Abs(float64(i - 9)) }
	ref := func() float64 {
		x := make([]float64, n)
		for i := range x {
			x[i] = xv(i)
		}
		acc := 0.0
		for i := 1; i < n-1; i++ {
			nv := x[i] + k*(x[i-1]-2*x[i]+x[i+1])
			acc += nv
		}
		return acc
	}
	src := "routine heat(r2, f1)\n" +
		dataDecl("htx", true, tabulate(n, xv)) +
		dataDecl("hty", false, make([]float64, n)) + `
entry:
    getparam r2, 0        ; n
    fgetparam f1, 1       ; k
    lda r1, htx
    lda r3, hty
    fldi f2, 2.0
    fldi f3, 0.0          ; acc
    subi r4, r2, 1        ; n-1
    ldi r5, 1             ; i
    addi r6, r1, 8        ; &x[1] walker
    addi r7, r3, 8        ; &y[1] walker
    jmp loop
loop:
    sub r8, r5, r4
    br ge r8, done, body
body:
    floadai f4, r6, -8    ; x[i-1]
    fload f5, r6          ; x[i]
    floadai f6, r6, 8     ; x[i+1]
    fmul f7, f5, f2
    fsub f8, f4, f7
    fadd f8, f8, f6
    fmul f8, f8, f1
    fadd f8, f5, f8       ; nv
    fstore f8, r7
    fadd f3, f3, f8
    addi r6, r6, 8
    addi r7, r7, 8
    addi r5, r5, 1
    jmp loop
done:
    retf f3
`
	return &Kernel{
		Program: "doduc", Name: "heat", Source: src,
		Setup: func(e *interp.Env) []interp.Value {
			return []interp.Value{interp.Int(n), interp.Float(k)}
		},
		Check: func(e *interp.Env, out *interp.Outcome) error { return approx(out.RetFloat, ref()) },
	}
}

// ihbtr is a nested-diamond table update: two chained conditionals per
// element select among four accumulation rules.
func ihbtr() *Kernel {
	const n = 26
	av := func(i int) float64 { return math.Cos(float64(i)*0.8) * 3 }
	ref := func() float64 {
		acc := 0.0
		for i := 0; i < n; i++ {
			v := av(i)
			if v > 0 {
				if v > 1.5 {
					acc += v * 2
				} else {
					acc += v + 0.5
				}
			} else {
				if v < -1.5 {
					acc -= v
				} else {
					acc += 0.25
				}
			}
		}
		return acc
	}
	src := "routine ihbtr(r2)\n" +
		dataDecl("ibx", true, tabulate(n, av)) + `
entry:
    getparam r2, 0
    lda r1, ibx
    fldi f1, 0.0          ; acc
    fldi f2, 0.0          ; zero
    fldi f3, 1.5
    fldi f4, -1.5
    fldi f5, 2.0
    fldi f6, 0.5
    fldi f7, 0.25
    ldi r3, 0
    jmp loop
loop:
    sub r4, r3, r2
    br ge r4, done, body
body:
    fload f8, r1
    fcmp r5, f8, f2
    br gt r5, posv, negv
posv:
    fcmp r5, f8, f3
    br gt r5, big, small
big:
    fmul f9, f8, f5
    fadd f1, f1, f9
    jmp next
small:
    fadd f9, f8, f6
    fadd f1, f1, f9
    jmp next
negv:
    fcmp r5, f8, f4
    br lt r5, vneg, mild
vneg:
    fsub f1, f1, f8
    jmp next
mild:
    fadd f1, f1, f7
    jmp next
next:
    addi r1, r1, 8
    addi r3, r3, 1
    jmp loop
done:
    retf f1
`
	return &Kernel{
		Program: "doduc", Name: "ihbtr", Source: src,
		Setup: func(e *interp.Env) []interp.Value { return []interp.Value{interp.Int(n)} },
		Check: func(e *interp.Env, out *interp.Outcome) error { return approx(out.RetFloat, ref()) },
	}
}

// inideb initializes a small table and immediately verifies it — the
// debug sibling of inithx.
func inideb() *Kernel {
	const n = 10
	return &Kernel{
		Program: "doduc", Name: "inideb",
		Source: `
routine inideb(r1)
data dbt rw 10
entry:
    getparam r1, 0
    lda r2, dbt
    fldi f1, 3.25
    ldi r3, 0
    mov r4, r2
    jmp loop
loop:
    sub r5, r3, r1
    br ge r5, check, body
body:
    cvtif f2, r3
    fmul f2, f2, f1
    fstore f2, r4
    addi r4, r4, 8
    addi r3, r3, 1
    jmp loop
check:
    fldi f3, 0.0
    ldi r3, 0
    jmp cloop
cloop:
    sub r5, r3, r1
    br ge r5, done, cbody
cbody:
    fload f2, r2          ; r2 walks during verification
    fadd f3, f3, f2
    addi r2, r2, 8
    addi r3, r3, 1
    jmp cloop
done:
    retf f3
`,
		Setup: func(e *interp.Env) []interp.Value { return []interp.Value{interp.Int(n)} },
		Check: func(e *interp.Env, out *interp.Outcome) error {
			want := 0.0
			for i := 0; i < n; i++ {
				want += 3.25 * float64(i)
			}
			return approx(out.RetFloat, want)
		},
	}
}

// inisla initializes two slabs with strided writes from one loop.
func inisla() *Kernel {
	const n = 12
	return &Kernel{
		Program: "doduc", Name: "inisla",
		Source: `
routine inisla(r1)
data sa rw 12
data sb rw 24
entry:
    getparam r1, 0
    lda r2, sa
    lda r3, sb
    fldi f1, 1.75
    fldi f2, -0.5
    ldi r4, 0
    jmp loop
loop:
    sub r5, r4, r1
    br ge r5, sum, body
body:
    fstore f1, r2         ; sa[i] = 1.75      (r2 walks by 8)
    fstore f2, r3         ; sb[2i] = -0.5     (r3 walks by 16)
    fstoreai f1, r3, 8    ; sb[2i+1] = 1.75
    addi r2, r2, 8
    addi r3, r3, 16
    addi r4, r4, 1
    jmp loop
sum:
    lda r2, sa
    lda r3, sb
    fldi f3, 0.0
    ldi r4, 0
    muli r6, r1, 3        ; 3 words per iteration
    jmp sloop
sloop:
    sub r5, r4, r6
    br ge r5, done, sbody
sbody:
    fload f4, r2          ; interleaved read walk: sa then sb
    fadd f3, f3, f4
    addi r2, r2, 8
    addi r4, r4, 1
    sub r7, r4, r1
    br lt r7, sloop, swap
swap:
    mov r2, r3            ; continue the walk over sb
    jmp sloop2
sloop2:
    sub r5, r4, r6
    br ge r5, done, sbody2
sbody2:
    fload f4, r2
    fadd f3, f3, f4
    addi r2, r2, 8
    addi r4, r4, 1
    jmp sloop2
done:
    retf f3
`,
		Setup: func(e *interp.Env) []interp.Value { return []interp.Value{interp.Int(n)} },
		Check: func(e *interp.Env, out *interp.Outcome) error {
			want := float64(n)*1.75 + float64(n)*(-0.5+1.75)
			return approx(out.RetFloat, want)
		},
	}
}

// orgpar computes normalization parameters: mixed integer/float
// reductions with a division per element.
func orgpar() *Kernel {
	const n = 16
	xv := func(i int) float64 { return 1 + float64(i%7)*0.5 }
	ref := func() float64 {
		acc := 0.0
		var cnt int64
		for i := 0; i < n; i++ {
			v := xv(i)
			acc += 1.0 / v
			if v > 2 {
				cnt++
			}
		}
		return acc + float64(cnt)*10
	}
	src := "routine orgpar(r2)\n" +
		dataDecl("opx", true, tabulate(n, xv)) + `
entry:
    getparam r2, 0
    lda r1, opx
    fldi f1, 1.0
    fldi f2, 2.0
    fldi f3, 0.0          ; acc
    ldi r3, 0             ; cnt
    ldi r4, 0             ; i
    jmp loop
loop:
    sub r5, r4, r2
    br ge r5, done, body
body:
    fload f4, r1
    fdiv f5, f1, f4
    fadd f3, f3, f5
    fcmp r6, f4, f2
    br gt r6, bump, next
bump:
    addi r3, r3, 1
    jmp next
next:
    addi r1, r1, 8
    addi r4, r4, 1
    jmp loop
done:
    muli r3, r3, 10
    cvtif f6, r3
    fadd f3, f3, f6
    retf f3
`
	return &Kernel{
		Program: "doduc", Name: "orgpar", Source: src,
		Setup: func(e *interp.Env) []interp.Value { return []interp.Value{interp.Int(n)} },
		Check: func(e *interp.Env, out *interp.Outcome) error { return approx(out.RetFloat, ref()) },
	}
}

// paroi evaluates a wall-flux expression over paired arrays with four
// shared constants.
func paroi() *Kernel {
	const n = 22
	av := func(i int) float64 { return 0.5 + 0.1*float64(i) }
	bv := func(i int) float64 { return 2.0 - 0.05*float64(i) }
	ref := func() float64 {
		acc := 0.0
		for i := 0; i < n; i++ {
			a, b := av(i), bv(i)
			flux := 0.7*a*b - 1.2*a + 0.3*b + 0.05
			acc += math.Abs(flux)
		}
		return acc
	}
	src := "routine paroi(r3)\n" +
		dataDecl("pax", true, tabulate(n, av)) +
		dataDecl("pbx", true, tabulate(n, bv)) + `
entry:
    getparam r3, 0
    lda r1, pax
    lda r2, pbx
    fldi f1, 0.7
    fldi f2, 1.2
    fldi f3, 0.3
    fldi f4, 0.05
    fldi f5, 0.0          ; acc
    ldi r4, 0
    jmp loop
loop:
    sub r5, r4, r3
    br ge r5, done, body
body:
    fload f6, r1          ; a (walks)
    fload f7, r2          ; b (walks)
    fmul f8, f6, f7
    fmul f8, f8, f1
    fmul f9, f6, f2
    fsub f8, f8, f9
    fmul f9, f7, f3
    fadd f8, f8, f9
    fadd f8, f8, f4
    fabs f8, f8
    fadd f5, f5, f8
    addi r1, r1, 8
    addi r2, r2, 8
    addi r4, r4, 1
    jmp loop
done:
    retf f5
`
	return &Kernel{
		Program: "doduc", Name: "paroi", Source: src,
		Setup: func(e *interp.Env) []interp.Value { return []interp.Value{interp.Int(n)} },
		Check: func(e *interp.Env, out *interp.Outcome) error { return approx(out.RetFloat, ref()) },
	}
}

// prophy runs three small sequential passes over one array (the paper's
// row is a wash — 0%).
func prophy() *Kernel {
	const n = 15
	xv := func(i int) float64 { return float64(i%4) + 0.5 }
	ref := func() float64 {
		s1, s2, s3 := 0.0, 0.0, 0.0
		for i := 0; i < n; i++ {
			s1 += xv(i)
		}
		for i := 0; i < n; i++ {
			s2 += xv(i) * xv(i)
		}
		for i := 0; i < n; i++ {
			s3 += xv(i) * 0.5
		}
		return s1 + s2 + s3
	}
	src := "routine prophy(r2)\n" +
		dataDecl("prx", true, tabulate(n, xv)) + `
entry:
    getparam r2, 0
    lda r1, prx
    fldi f1, 0.0
    fldi f2, 0.0
    fldi f3, 0.0
    fldi f4, 0.5
    ldi r3, 0
    mov r4, r1
    jmp l1
l1:
    sub r5, r3, r2
    br ge r5, l2init, l1b
l1b:
    fload f5, r4
    fadd f1, f1, f5
    addi r4, r4, 8
    addi r3, r3, 1
    jmp l1
l2init:
    ldi r3, 0
    mov r4, r1
    jmp l2
l2:
    sub r5, r3, r2
    br ge r5, l3init, l2b
l2b:
    fload f5, r4
    fmul f5, f5, f5
    fadd f2, f2, f5
    addi r4, r4, 8
    addi r3, r3, 1
    jmp l2
l3init:
    ldi r3, 0
    jmp l3
l3:
    sub r5, r3, r2
    br ge r5, done, l3b
l3b:
    fload f5, r1          ; r1 walks in the last pass
    fmul f5, f5, f4
    fadd f3, f3, f5
    addi r1, r1, 8
    addi r3, r3, 1
    jmp l3
done:
    fadd f1, f1, f2
    fadd f1, f1, f3
    retf f1
`
	return &Kernel{
		Program: "doduc", Name: "prophy", Source: src,
		Setup: func(e *interp.Env) []interp.Value { return []interp.Value{interp.Int(n)} },
		Check: func(e *interp.Env, out *interp.Outcome) error { return approx(out.RetFloat, ref()) },
	}
}

// d2esp is a short double-precision expression kernel from fpppp.
func d2esp() *Kernel {
	const n = 8
	xv := func(i int) float64 { return 0.1 + 0.2*float64(i) }
	ref := func() float64 {
		acc := 1.0
		for i := 0; i < n; i++ {
			x := xv(i)
			acc = acc*0.5 + x*x*0.25 - x*0.125
		}
		return acc
	}
	src := "routine d2esp(r2)\n" +
		dataDecl("d2x", true, tabulate(n, xv)) + `
entry:
    getparam r2, 0
    lda r1, d2x
    fldi f1, 1.0          ; acc
    fldi f2, 0.5
    fldi f3, 0.25
    fldi f4, 0.125
    ldi r3, 0
    jmp loop
loop:
    sub r4, r3, r2
    br ge r4, done, body
body:
    fload f5, r1
    fmul f1, f1, f2
    fmul f6, f5, f5
    fmul f6, f6, f3
    fadd f1, f1, f6
    fmul f6, f5, f4
    fsub f1, f1, f6
    addi r1, r1, 8
    addi r3, r3, 1
    jmp loop
done:
    retf f1
`
	return &Kernel{
		Program: "fpppp", Name: "d2esp", Source: src,
		Setup: func(e *interp.Env) []interp.Value { return []interp.Value{interp.Int(n)} },
		Check: func(e *interp.Env, out *interp.Outcome) error { return approx(out.RetFloat, ref()) },
	}
}
