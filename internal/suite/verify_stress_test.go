package suite

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/target"
)

// TestKernelsVerifyUnderPressure runs the post-allocation verifier with
// degradation disabled over the whole suite on small machines, where
// nearly every live range spills. Heavy spill traffic is what exercises
// the verifier's slot-discipline and rematerialization rules; an error
// here is either an allocator bug the standard-K tests are too easy to
// catch, or a verifier false positive.
func TestKernelsVerifyUnderPressure(t *testing.T) {
	machines := []*target.Machine{target.WithRegs(3), target.WithRegs(4), target.WithRegs(5)}
	for _, k := range All() {
		k := k
		t.Run(k.Program+"/"+k.Name, func(t *testing.T) {
			for _, m := range machines {
				for _, mode := range []core.Mode{core.ModeChaitin, core.ModeRemat} {
					_, err := core.Allocate(context.Background(), k.Routine(), core.Options{
						Machine: m, Mode: mode, Verify: true, DisableDegradation: true,
					})
					if err != nil {
						t.Errorf("%s %v: %v", m.Name, mode, err)
					}
				}
			}
			for _, s := range []core.SplitScheme{
				core.SplitAllLoops, core.SplitOuterLoops, core.SplitInactiveLoops, core.SplitAtPhis,
			} {
				_, err := core.Allocate(context.Background(), k.Routine(), core.Options{
					Machine: target.WithRegs(6), Mode: core.ModeRemat, Split: s,
					Verify: true, DisableDegradation: true,
				})
				if err != nil {
					t.Errorf("scheme %v: %v", s, err)
				}
			}
		})
	}
}
