package suite

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/interp"
)

// twldrv is the suite's large routine (the paper's biggest test, 881
// lines of FORTRAN). It is generated: sixteen staged passes over a
// static vector, each with its own pair of coefficient constants,
// alternating between scale-accumulate, write-back and integer-census
// stages. Every stage anchors a fresh walking pointer on the same lda,
// so renumber sees many disconnected lifetimes of the same virtual
// registers and many constant-then-varying live ranges.
func twldrv() *Kernel {
	const n = 16
	const stages = 16
	coef := func(s int) (float64, float64) {
		return 1.0 + 0.125*float64(s%5), 0.25*float64(s%7) - 0.75
	}
	xv := func(i int) float64 { return math.Sin(float64(i)*0.9) * 3 }

	var b strings.Builder
	fmt.Fprintf(&b, "routine twldrv(r2)\n")
	b.WriteString(dataDecl("tw", false, tabulate(n, xv)))
	fmt.Fprintf(&b, "entry:\n")
	fmt.Fprintf(&b, "    getparam r2, 0\n")
	fmt.Fprintf(&b, "    fldi f1, 0.0\n") // float accumulator
	fmt.Fprintf(&b, "    ldi r3, 0\n")    // integer census
	fmt.Fprintf(&b, "    jmp stage0\n")
	for s := 0; s < stages; s++ {
		c1, c2 := coef(s)
		next := fmt.Sprintf("stage%d", s+1)
		if s == stages-1 {
			next = "fin"
		}
		fmt.Fprintf(&b, "stage%d:\n", s)
		fmt.Fprintf(&b, "    lda r6, tw\n") // walking pointer, re-anchored per stage
		fmt.Fprintf(&b, "    fldi f2, %g\n", c1)
		fmt.Fprintf(&b, "    fldi f3, %g\n", c2)
		fmt.Fprintf(&b, "    ldi r4, 0\n")
		fmt.Fprintf(&b, "    jmp s%dloop\n", s)
		fmt.Fprintf(&b, "s%dloop:\n", s)
		fmt.Fprintf(&b, "    sub r5, r4, r2\n")
		fmt.Fprintf(&b, "    br ge r5, %s, s%dbody\n", next, s)
		fmt.Fprintf(&b, "s%dbody:\n", s)
		fmt.Fprintf(&b, "    fload f4, r6\n")
		switch s % 3 {
		case 0: // accumulate c1*x + c2
			fmt.Fprintf(&b, "    fmul f5, f4, f2\n")
			fmt.Fprintf(&b, "    fadd f5, f5, f3\n")
			fmt.Fprintf(&b, "    fadd f1, f1, f5\n")
		case 1: // write back x = c1*x + c2
			fmt.Fprintf(&b, "    fmul f4, f4, f2\n")
			fmt.Fprintf(&b, "    fadd f4, f4, f3\n")
			fmt.Fprintf(&b, "    fstore f4, r6\n")
		default: // census: count x > c2
			fmt.Fprintf(&b, "    fcmp r7, f4, f3\n")
			fmt.Fprintf(&b, "    br gt r7, s%dcount, s%dskip\n", s, s)
			fmt.Fprintf(&b, "s%dcount:\n", s)
			fmt.Fprintf(&b, "    addi r3, r3, 1\n")
			fmt.Fprintf(&b, "    jmp s%dskip\n", s)
			fmt.Fprintf(&b, "s%dskip:\n", s)
		}
		fmt.Fprintf(&b, "    addi r6, r6, 8\n")
		fmt.Fprintf(&b, "    addi r4, r4, 1\n")
		fmt.Fprintf(&b, "    jmp s%dloop\n", s)
	}
	fmt.Fprintf(&b, "fin:\n")
	fmt.Fprintf(&b, "    cvtif f6, r3\n")
	fmt.Fprintf(&b, "    fadd f1, f1, f6\n")
	fmt.Fprintf(&b, "    retf f1\n")

	ref := func() float64 {
		x := make([]float64, n)
		for i := range x {
			x[i] = xv(i)
		}
		acc := 0.0
		census := 0
		for s := 0; s < stages; s++ {
			c1, c2 := coef(s)
			for i := 0; i < n; i++ {
				switch s % 3 {
				case 0:
					acc += x[i]*c1 + c2
				case 1:
					x[i] = x[i]*c1 + c2
				default:
					if x[i] > c2 {
						census++
					}
				}
			}
		}
		return acc + float64(census)
	}

	return &Kernel{
		Program: "fpppp",
		Name:    "twldrv",
		Source:  b.String(),
		Setup: func(e *interp.Env) []interp.Value {
			return []interp.Value{interp.Int(n)}
		},
		Check: func(e *interp.Env, out *interp.Outcome) error {
			return approx(out.RetFloat, ref())
		},
	}
}

// sgemm is the matrix300 kernel: C = A·B with the classic three-deep
// loop nest, lda-anchored walking row pointers, and a final
// pointer-walking reduction.
func sgemm() *Kernel {
	const n = 6
	av := func(i, j int) float64 { return float64(i+1) * 0.5 * float64(j%3+1) }
	bv := func(i, j int) float64 { return float64(j-i) * 0.25 }
	flatA := make([]float64, n*n)
	flatB := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			flatA[i*n+j] = av(i, j)
			flatB[i*n+j] = bv(i, j)
		}
	}
	ref := func() float64 {
		var c [n][n]float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += av(i, k) * bv(k, j)
				}
				c[i][j] = s
			}
		}
		acc := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				acc += math.Abs(c[i][j])
			}
		}
		return acc
	}
	src := "routine sgemm(r4)\n" +
		dataDecl("ga", true, flatA) +
		dataDecl("gb", true, flatB) +
		dataDecl("gc", false, make([]float64, n*n)) + `
entry:
    getparam r4, 0        ; n
    lda r1, ga
    lda r2, gb
    lda r3, gc
    muli r5, r4, 8        ; stride
    ldi r6, 0             ; i
    mov r8, r1            ; &A[i][0] (walks by stride)
    mov r9, r3            ; &C[i][0] (walks by stride)
    jmp iloop
iloop:
    sub r7, r6, r4
    br ge r7, sum, ibody
ibody:
    ldi r10, 0            ; j
    jmp jloop
jloop:
    sub r7, r10, r4
    br ge r7, inext, jbody
jbody:
    fldi f1, 0.0          ; s
    muli r11, r10, 8      ; j*8
    add r12, r2, r11      ; &B[0][j]
    mov r13, r8           ; &A[i][k] walker
    ldi r14, 0            ; k
    jmp kloop
kloop:
    sub r7, r14, r4
    br ge r7, jnext, kbody
kbody:
    fload f2, r13
    fload f3, r12
    fmul f2, f2, f3
    fadd f1, f1, f2
    addi r13, r13, 8      ; A walks a row
    add r12, r12, r5      ; B walks a column
    addi r14, r14, 1
    jmp kloop
jnext:
    add r15, r9, r11
    fstore f1, r15        ; C[i][j] = s
    addi r10, r10, 1
    jmp jloop
inext:
    add r8, r8, r5
    add r9, r9, r5
    addi r6, r6, 1
    jmp iloop
sum:
    fldi f4, 0.0
    mul r6, r4, r4
    ldi r10, 0
    jmp sloop
sloop:
    sub r7, r10, r6
    br ge r7, done, sbody
sbody:
    fload f5, r3          ; r3 walks over C here
    fabs f5, f5
    fadd f4, f4, f5
    addi r3, r3, 8
    addi r10, r10, 1
    jmp sloop
done:
    retf f4
`
	return &Kernel{
		Program: "matrix300",
		Name:    "sgemm",
		Source:  src,
		Setup: func(e *interp.Env) []interp.Value {
			return []interp.Value{interp.Int(n)}
		},
		Check: func(e *interp.Env, out *interp.Outcome) error {
			return approx(out.RetFloat, ref())
		},
	}
}

// tomcatv is one Jacobi relaxation sweep over the interior of a 2-D grid,
// the mesh-smoothing heart of the SPEC tomcatv program: five-point
// stencil loads through walking row pointers and a residual accumulator.
func tomcatv() *Kernel {
	const nx, ny = 8, 8
	vv := func(i, j int) float64 { return math.Abs(float64(i-3))*0.5 + float64(j)*0.25 }
	flat := make([]float64, nx*ny)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			flat[i*ny+j] = vv(i, j)
		}
	}
	ref := func() float64 {
		var v [nx][ny]float64
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				v[i][j] = vv(i, j)
			}
		}
		res := 0.0
		ci := int64(0)
		for i := 1; i < nx-1; i++ {
			for j := 1; j < ny-1; j++ {
				nv := 0.25 * (v[i-1][j] + v[i+1][j] + v[i][j-1] + v[i][j+1])
				res += math.Abs(nv - v[i][j])
				ci += int64(i)*11 + int64(j)*3
			}
		}
		return res + float64(ci)
	}
	src := "routine tomcatv(r3, r4)\n" +
		dataDecl("tv", true, flat) +
		dataDecl("tww", false, make([]float64, nx*ny)) + `
entry:
    getparam r3, 0        ; nx
    getparam r4, 1        ; ny
    lda r1, tv
    lda r2, tww
    muli r5, r4, 8        ; row stride
    fldi f1, 0.25         ; stencil weight
    fldi f2, 0.0          ; residual
    ldi r6, 1             ; i
    subi r7, r3, 1        ; nx-1
    subi r8, r4, 1        ; ny-1
    mov r10, r1
    add r10, r10, r5      ; &v[1][0]  (walks per row: multi-valued)
    mov r11, r2
    add r11, r11, r5      ; &w[1][0]
    ldi r16, 11           ; checksum coefficients (pressure)
    ldi r17, 3
    ldi r18, 0            ; ci
    jmp iloop
iloop:
    sub r9, r6, r7
    br ge r9, done, ibody
ibody:
    ldi r12, 1            ; j
    jmp jloop
jloop:
    sub r9, r12, r8
    br ge r9, inext, jbody
jbody:
    muli r13, r12, 8
    add r14, r10, r13     ; &v[i][j]
    sub r15, r14, r5      ; &v[i-1][j]
    fload f3, r15
    add r15, r14, r5      ; &v[i+1][j]
    fload f4, r15
    floadai f5, r14, -8   ; v[i][j-1]
    floadai f6, r14, 8    ; v[i][j+1]
    fadd f3, f3, f4
    fadd f3, f3, f5
    fadd f3, f3, f6
    fmul f3, f3, f1       ; nv
    add r15, r11, r13
    fstore f3, r15        ; w[i][j] = nv
    fload f7, r14
    fsub f7, f3, f7
    fabs f7, f7
    fadd f2, f2, f7
    mul r15, r6, r16
    add r18, r18, r15
    mul r15, r12, r17
    add r18, r18, r15     ; ci += i*11 + j*3
    addi r12, r12, 1
    jmp jloop
inext:
    add r10, r10, r5
    add r11, r11, r5
    addi r6, r6, 1
    jmp iloop
done:
    cvtif f3, r18
    fadd f2, f2, f3
    retf f2
`
	return &Kernel{
		Program: "tomcatv",
		Name:    "tomcatv",
		Source:  src,
		Setup: func(e *interp.Env) []interp.Value {
			return []interp.Value{interp.Int(nx), interp.Int(ny)}
		},
		Check: func(e *interp.Env, out *interp.Outcome) error {
			return approx(out.RetFloat, ref())
		},
	}
}
