package audit

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// memSink collects uploads in memory, optionally stalling or failing
// on demand.
type memSink struct {
	mu      sync.Mutex
	batches [][]byte
	fail    atomic.Bool
	block   chan struct{} // non-nil: Upload waits until closed
	uploads atomic.Int64
	closed  atomic.Bool
}

func (s *memSink) Upload(b []byte) error {
	s.uploads.Add(1)
	if s.block != nil {
		<-s.block
	}
	if s.fail.Load() {
		return errors.New("sink down")
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	s.mu.Lock()
	s.batches = append(s.batches, cp)
	s.mu.Unlock()
	return nil
}

func (s *memSink) Close() error {
	s.closed.Store(true)
	return nil
}

func (s *memSink) records(t *testing.T) []Record {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Record
	for _, b := range s.batches {
		sc := bufio.NewScanner(bytes.NewReader(b))
		for sc.Scan() {
			var r Record
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
			}
			out = append(out, r)
		}
	}
	return out
}

func TestLoggerDeliversEveryRecordInOrder(t *testing.T) {
	sink := &memSink{}
	l, err := New(Config{Sink: sink, BatchSize: 7, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		l.Log(Record{Unit: name(i), Strategy: "remat"})
	}
	if err := l.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	recs := sink.records(t)
	if len(recs) != n {
		t.Fatalf("delivered %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Unit != name(i) {
			t.Fatalf("record %d is %q, want %q (order lost)", i, r.Unit, name(i))
		}
		if r.Time == "" {
			t.Fatalf("record %d has no timestamp", i)
		}
	}
	st := l.Stats()
	if st.Logged != n || st.Flushed != n || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want logged=flushed=%d dropped=0", st, n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if !sink.closed.Load() {
		t.Fatal("Close did not close the sink")
	}
}

func name(i int) string { return "unit-" + string(rune('a'+i%26)) + "-" + time.Duration(i).String() }

// TestBackpressureBoundedAndObservable is the stalled-sink contract:
// while the sink blocks, memory stays bounded (drops begin once buffer
// + batch are full and are counted on telemetry), and when the sink
// recovers, flushing resumes and delivers everything that was not
// dropped. Run under -race in CI.
func TestBackpressureBoundedAndObservable(t *testing.T) {
	const buffer, batch = 8, 4
	sink := &memSink{block: make(chan struct{})}
	reg := telemetry.NewRegistry()
	l, err := New(Config{
		Sink:          sink,
		BufferSize:    buffer,
		BatchSize:     batch,
		FlushInterval: 5 * time.Millisecond,
		Telemetry:     &telemetry.Sink{Metrics: reg},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Stall the sink and pour far more records than the stream can
	// hold. Producers must never block; the overflow must drop.
	const producers, perProducer = 4, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				l.Log(Record{Unit: "p", RequestID: "r"})
			}
		}(p)
	}
	wg.Wait()

	st := l.Stats()
	total := int64(producers * perProducer)
	if st.Logged+st.Dropped != total {
		t.Fatalf("logged %d + dropped %d != %d produced", st.Logged, st.Dropped, total)
	}
	if st.Dropped == 0 {
		t.Fatal("stalled sink never dropped — buffer cannot be bounded")
	}
	// Bounded memory: everything accepted fits in buffer + one in-flight
	// batch (+1 for the record the flusher may hold between channel read
	// and batch append).
	if st.Logged > buffer+batch+1 {
		t.Fatalf("accepted %d records with a stalled sink; bound is %d", st.Logged, buffer+batch+1)
	}
	if got := reg.Counter("audit.dropped").Value(); got != st.Dropped {
		t.Fatalf("telemetry audit.dropped = %d, want %d (loss must be observable)", got, st.Dropped)
	}

	// Recovery: release the sink; everything accepted must land.
	close(sink.block)
	if err := l.Flush(); err != nil {
		t.Fatalf("Flush after recovery: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := l.Stats(); got.Flushed == got.Logged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flush never caught up: %+v", l.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if got := int64(len(sink.records(t))); got != st.Logged {
		t.Fatalf("sink holds %d records, want %d accepted", got, st.Logged)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFailingSinkRetriesWithoutLoss: a sink that errors (rather than
// stalls) keeps the batch; once it heals, the same records deliver.
func TestFailingSinkRetriesWithoutLoss(t *testing.T) {
	sink := &memSink{}
	sink.fail.Store(true)
	reg := telemetry.NewRegistry()
	l, err := New(Config{
		Sink: sink, BatchSize: 4, BufferSize: 64,
		FlushInterval: 2 * time.Millisecond,
		Telemetry:     &telemetry.Sink{Metrics: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Log(Record{Unit: name(i)})
	}
	if err := l.Flush(); err == nil {
		t.Fatal("Flush over a failing sink reported success")
	}
	if reg.Counter("audit.flush_errors").Value() == 0 {
		t.Fatal("flush errors not counted")
	}
	sink.fail.Store(false)
	if err := l.Flush(); err != nil {
		t.Fatalf("Flush after heal: %v", err)
	}
	if got := len(sink.records(t)); got != 10 {
		t.Fatalf("delivered %d records after heal, want 10 (no loss on error path)", got)
	}
	l.Close()
}

func TestBlockOnFullIsLossless(t *testing.T) {
	sink := &memSink{}
	l, err := New(Config{Sink: sink, BufferSize: 2, BatchSize: 2, BlockOnFull: true, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		l.Log(Record{Unit: name(i)})
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Dropped != 0 || st.Flushed != 50 {
		t.Fatalf("lossless config lost records: %+v", st)
	}
	l.Close()
}

func TestLogAfterCloseDropsVisibly(t *testing.T) {
	sink := &memSink{}
	l, err := New(Config{Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	l.Log(Record{Unit: "before"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l.Log(Record{Unit: "after"})
	st := l.Stats()
	if st.Dropped != 1 {
		t.Fatalf("post-Close Log dropped %d, want 1", st.Dropped)
	}
	if got := len(sink.records(t)); got != 1 {
		t.Fatalf("sink has %d records, want the pre-Close 1", got)
	}
}

func TestNilLoggerIsDisabledStream(t *testing.T) {
	var l *Logger
	l.Log(Record{Unit: "x"}) // must not panic
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st != (Stats{}) {
		t.Fatalf("nil logger stats = %+v", st)
	}
}

func TestFileSinkRotatesAndPrunes(t *testing.T) {
	dir := t.TempDir()
	var nanos atomic.Int64
	now := func() time.Time { return time.Unix(0, nanos.Add(1)) }
	sink, err := NewFileSink(dir, FileSinkConfig{MaxBytes: 64, MaxFiles: 2, Now: now})
	if err != nil {
		t.Fatal(err)
	}
	line := []byte(strings.Repeat("x", 40) + "\n")
	for i := 0; i < 10; i++ {
		if err := sink.Upload(line); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	rotated, _ := filepath.Glob(filepath.Join(dir, "audit-*.ndjson"))
	if len(rotated) != 2 {
		t.Fatalf("kept %d rotated files, want 2 (pruned)", len(rotated))
	}
	if _, err := os.Stat(filepath.Join(dir, CurrentFile)); err != nil {
		t.Fatalf("no live file after rotation: %v", err)
	}
	// Total retained bytes stay bounded by (MaxFiles+1)*MaxBytes.
	var total int64
	for _, f := range append(rotated, filepath.Join(dir, CurrentFile)) {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		total += st.Size()
	}
	if total > 3*64 {
		t.Fatalf("retained %d bytes, bound is %d", total, 3*64)
	}
}

func TestFileSinkThroughLoggerWritesDecodableNDJSON(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewFileSink(dir, FileSinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(Config{Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	l.Log(Record{Unit: "sumabs", Strategy: "remat", Verified: true, ContentKey: "abc", AllocMs: 1.5})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, CurrentFile))
	if err != nil {
		t.Fatal(err)
	}
	var r Record
	if err := json.Unmarshal(bytes.TrimSpace(data), &r); err != nil {
		t.Fatalf("file line not JSON: %v (%q)", err, data)
	}
	if r.Unit != "sumabs" || !r.Verified || r.ContentKey != "abc" {
		t.Fatalf("round-trip mangled the record: %+v", r)
	}
}

func TestHTTPSinkPostsNDJSONAndSurfacesErrors(t *testing.T) {
	var got atomic.Value
	status := atomic.Int64{}
	status.Store(200)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ct := r.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Errorf("Content-Type = %q", ct)
		}
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		got.Store(buf.String())
		w.WriteHeader(int(status.Load()))
	}))
	defer ts.Close()

	sink := NewHTTPSink(ts.URL, nil)
	if err := sink.Upload([]byte("{\"unit\":\"a\"}\n")); err != nil {
		t.Fatal(err)
	}
	if body, _ := got.Load().(string); !strings.Contains(body, "\"a\"") {
		t.Fatalf("collector saw %q", body)
	}
	status.Store(503)
	if err := sink.Upload([]byte("{}\n")); err == nil {
		t.Fatal("503 from the collector did not surface as an upload error")
	}
}
