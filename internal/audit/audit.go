// Package audit is the allocation service's decision log: a buffered,
// batched, lossy-by-config stream that records one Record per
// allocation verdict — which strategy ran, which cache tier answered,
// what the verifier said, whether the allocation degraded and why —
// and delivers them to a sink (a rotating NDJSON file set, or an HTTP
// upload endpoint) off the serving hot path. The design follows OPA's
// decision-log plugin (plugins/logs): producers never block on the
// sink, batches amortize delivery, and when the sink cannot keep up
// the stream *drops records by default rather than stalling the
// server* — with every drop counted and surfaced through telemetry so
// loss is observable, never silent.
//
// The contract, precisely:
//
//   - Log is non-blocking (unless Config.BlockOnFull): a full buffer
//     drops the new record and increments the drop counters
//     ("audit.dropped" in the telemetry registry, Stats().Dropped).
//   - Memory is bounded by BufferSize + BatchSize records regardless
//     of how long the sink stalls; a recovered sink resumes flushing
//     where it left off — stalling loses new records, never delivered
//     ones, and never grows the heap.
//   - Flush is a barrier: every record accepted before the call is
//     delivered (or the sink's error returned) before it returns.
//   - Close flushes and then closes the sink; the logger refuses new
//     records afterwards (counted as drops, so a straggler writing
//     after shutdown is visible too).
package audit

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Record is one allocation verdict. Every field mirrors something the
// serving layer already decided; the audit stream is a durable copy of
// those decisions, not a new source of truth. Zero-valued fields are
// omitted from the NDJSON encoding to keep the stream compact.
type Record struct {
	// Time is RFC3339Nano, stamped by Log when empty.
	Time string `json:"time"`
	// Backend is the rallocd instance that produced the verdict.
	Backend string `json:"backend,omitempty"`
	// RequestID ties the record to one HTTP request; JobID to one async
	// job (both set for a job's units: the submitting request's ID and
	// the job's).
	RequestID string `json:"request_id,omitempty"`
	JobID     string `json:"job_id,omitempty"`
	// Unit names the routine within its batch.
	Unit string `json:"unit,omitempty"`
	// ContentKey is the driver-cache content key — the same address the
	// result cache and the cluster ring use, so offline analysis can
	// join audit records against cache contents and routing decisions.
	ContentKey string `json:"content_key,omitempty"`
	// Strategy is the canonical spec of the strategy that produced the
	// allocation ("remat", "ssa-spill", "remat:split=all-loops", ...).
	Strategy string `json:"strategy,omitempty"`
	// CacheHit/CacheTier record whether (and from which tier) the
	// verdict was served from cache rather than computed.
	CacheHit  bool   `json:"cache_hit,omitempty"`
	CacheTier string `json:"cache_tier,omitempty"`
	// Verified reports the independent post-allocation checker ran and
	// accepted the code.
	Verified bool `json:"verified,omitempty"`
	// Degraded/DegradeReason record a spill-everywhere fallback and why
	// ("deadline", a contained panic, non-convergence...).
	Degraded      bool   `json:"degraded,omitempty"`
	DegradeReason string `json:"degrade_reason,omitempty"`
	// Error is the per-unit failure for units that produced no
	// allocation (strict-mode faults, cancellation).
	Error string `json:"error,omitempty"`
	// AllocMs is the unit's wall time (lookup + allocation).
	AllocMs float64 `json:"alloc_ms,omitempty"`
}

// Config configures a Logger. Sink is required; everything else has a
// production-shaped default.
type Config struct {
	// Sink receives the batched NDJSON payloads.
	Sink Sink
	// BufferSize bounds records waiting to be flushed (<= 0: 4096).
	// This is the loss knob: a stalled sink can delay at most
	// BufferSize + BatchSize records; beyond that, Log drops.
	BufferSize int
	// BatchSize bounds records per sink upload (<= 0: 512).
	BatchSize int
	// FlushInterval is how often a partial batch is flushed anyway
	// (<= 0: 1s), so a quiet server's records still land promptly.
	FlushInterval time.Duration
	// BlockOnFull makes Log wait for buffer space instead of dropping —
	// the lossless configuration, for callers that prefer backpressure
	// over loss. The default (false) is lossy: serving latency is never
	// held hostage by the audit sink.
	BlockOnFull bool
	// Telemetry receives the stream's counters: audit.records,
	// audit.dropped, audit.flushes, audit.flush_errors and the
	// audit.flush.wall histogram. Nil disables (Stats still counts).
	Telemetry *telemetry.Sink
	// Now is the record timestamp source (nil: time.Now). Tests pin it.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.BufferSize <= 0 {
		c.BufferSize = 4096
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 512
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Stats is a point-in-time snapshot of the stream's health. Logged
// counts records accepted into the buffer; Dropped counts records lost
// to a full buffer (or a closed logger); Flushed counts records the
// sink acknowledged. Logged - Flushed is the in-flight backlog.
type Stats struct {
	Logged      int64 `json:"logged"`
	Dropped     int64 `json:"dropped"`
	Flushed     int64 `json:"flushed"`
	Flushes     int64 `json:"flushes"`
	FlushErrors int64 `json:"flush_errors"`
}

// Logger is the audit stream. Construct with New; Close releases the
// flusher goroutine and the sink. Safe for concurrent use.
type Logger struct {
	cfg Config
	ch  chan Record
	// flushReq carries barrier requests into the flusher; the flusher
	// answers on the embedded channel with the flush outcome. closeReq
	// asks the flusher to drain and exit (the buffer channel is never
	// closed, so a racing Log can never panic on it).
	flushReq chan chan error
	closeReq chan struct{}
	done     chan struct{} // closed when the flusher exits
	closed   atomic.Bool

	logged      atomic.Int64
	dropped     atomic.Int64
	flushed     atomic.Int64
	flushes     atomic.Int64
	flushErrors atomic.Int64

	closeOnce sync.Once
	closeErr  error
}

// New builds a Logger over the sink and starts its flusher.
func New(cfg Config) (*Logger, error) {
	cfg = cfg.withDefaults()
	if cfg.Sink == nil {
		return nil, errors.New("audit: Config.Sink is required")
	}
	l := &Logger{
		cfg:      cfg,
		ch:       make(chan Record, cfg.BufferSize),
		flushReq: make(chan chan error),
		closeReq: make(chan struct{}),
		done:     make(chan struct{}),
	}
	go l.run()
	return l, nil
}

// Log submits one record. Nil-safe: a nil *Logger is the disabled
// stream and ignores everything, so call sites need no guards. An
// empty Time is stamped here (the verdict instant, not the flush
// instant). When the buffer is full the record is dropped and counted
// unless BlockOnFull.
func (l *Logger) Log(r Record) {
	if l == nil {
		return
	}
	if r.Time == "" {
		r.Time = l.cfg.Now().UTC().Format(time.RFC3339Nano)
	}
	if l.closed.Load() {
		l.drop()
		return
	}
	if l.cfg.BlockOnFull {
		select {
		case l.ch <- r:
			l.accept()
		case <-l.done:
			l.drop()
		}
		return
	}
	select {
	case l.ch <- r:
		l.accept()
	default:
		l.drop()
	}
}

func (l *Logger) accept() {
	l.logged.Add(1)
	l.cfg.Telemetry.Count("audit.records", 1)
}

func (l *Logger) drop() {
	l.dropped.Add(1)
	l.cfg.Telemetry.Count("audit.dropped", 1)
}

// Flush is the delivery barrier: it returns once every record accepted
// before the call has been handed to the sink, or with the sink's
// error. On a closed logger it reports the close outcome.
func (l *Logger) Flush() error {
	if l == nil {
		return nil
	}
	ack := make(chan error, 1)
	select {
	case l.flushReq <- ack:
		return <-ack
	case <-l.done:
		return l.closeErr
	}
}

// Close flushes, stops the flusher, and closes the sink. Records
// logged after Close are dropped (and counted).
func (l *Logger) Close() error {
	if l == nil {
		return nil
	}
	l.closeOnce.Do(func() {
		l.closed.Store(true)
		close(l.closeReq)
		<-l.done // flusher drains the buffer, final-flushes, exits
		if err := l.cfg.Sink.Close(); err != nil && l.closeErr == nil {
			l.closeErr = err
		}
	})
	return l.closeErr
}

// Stats snapshots the stream's counters. Nil-safe.
func (l *Logger) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	return Stats{
		Logged:      l.logged.Load(),
		Dropped:     l.dropped.Load(),
		Flushed:     l.flushed.Load(),
		Flushes:     l.flushes.Load(),
		FlushErrors: l.flushErrors.Load(),
	}
}

// run is the flusher: it batches records off the buffer and delivers
// them on size, interval, barrier, or shutdown. pending holds at most
// BatchSize records; together with the channel that bounds the
// logger's memory no matter how long the sink stalls.
func (l *Logger) run() {
	defer close(l.done)
	ticker := time.NewTicker(l.cfg.FlushInterval)
	defer ticker.Stop()
	var pending []Record
	for {
		select {
		case r := <-l.ch:
			pending = append(pending, r)
			if len(pending) >= l.cfg.BatchSize {
				if l.flush(pending) == nil {
					pending = pending[:0]
				} else {
					// The sink is failing and the batch is full: stop
					// pulling from the channel until something gives.
					// Records beyond the channel's capacity are dropped
					// by Log — bounded memory is the contract, so wait
					// for the next tick/barrier and retry then.
					pending = l.stall(pending, ticker)
					if pending == nil {
						return // closed while stalled
					}
				}
			}
		case <-ticker.C:
			if l.flush(pending) == nil {
				pending = pending[:0]
			}
		case ack := <-l.flushReq:
			ack <- l.barrier(&pending)
		case <-l.closeReq:
			// Drain whatever Log managed to buffer before the closed
			// flag stopped it, then a final flush. Batches stay
			// bounded; a sink that is still failing loses the tail
			// (counted in flush_errors).
			if err := l.barrier(&pending); err != nil {
				l.closeErr = err
			}
			return
		}
	}
}

// stall parks the flusher on a full pending batch over a failing sink:
// it retries on every tick (and serves barriers) without reading more
// records, so memory stays bounded at BufferSize + BatchSize. It
// returns the emptied pending slice once a flush succeeds, or nil when
// the logger closed while stalled (the close drain has already run).
func (l *Logger) stall(pending []Record, ticker *time.Ticker) []Record {
	for {
		select {
		case <-ticker.C:
			if l.flush(pending) == nil {
				return pending[:0]
			}
		case ack := <-l.flushReq:
			err := l.flush(pending)
			if err == nil {
				pending = pending[:0]
				err = l.barrier(&pending)
			}
			ack <- err
			if len(pending) == 0 {
				return pending
			}
		case <-l.closeReq:
			if err := l.flush(pending); err != nil {
				l.closeErr = err
			} else {
				pending = pending[:0]
				if err := l.barrier(&pending); err != nil {
					l.closeErr = err
				}
			}
			return nil
		}
	}
}

// barrier drains everything buffered at the moment of the call and
// flushes it.
func (l *Logger) barrier(pending *[]Record) error {
	for {
		select {
		case r := <-l.ch:
			*pending = append(*pending, r)
			if len(*pending) >= l.cfg.BatchSize {
				if err := l.flush(*pending); err != nil {
					return err
				}
				*pending = (*pending)[:0]
			}
		default:
			err := l.flush(*pending)
			if err == nil {
				*pending = (*pending)[:0]
			}
			return err
		}
	}
}

// flush delivers one batch to the sink. An empty batch is a no-op.
func (l *Logger) flush(batch []Record) error {
	if len(batch) == 0 {
		return nil
	}
	payload, err := encodeNDJSON(batch)
	if err != nil {
		// A record that cannot encode is unrecoverable — count the
		// batch as errored and move on rather than wedging the stream.
		l.flushErrors.Add(1)
		l.cfg.Telemetry.Count("audit.flush_errors", 1)
		return err
	}
	sp := l.cfg.Telemetry.StartSpan("audit", "flush")
	err = l.cfg.Sink.Upload(payload)
	wall := sp.End()
	l.cfg.Telemetry.Observe("audit.flush.wall", wall.Nanoseconds())
	if err != nil {
		l.flushErrors.Add(1)
		l.cfg.Telemetry.Count("audit.flush_errors", 1)
		return err
	}
	l.flushes.Add(1)
	l.flushed.Add(int64(len(batch)))
	l.cfg.Telemetry.Count("audit.flushes", 1)
	l.cfg.Telemetry.Count("audit.flushed", int64(len(batch)))
	return nil
}
