package audit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Sink is one delivery target for batched audit records. Upload
// receives a complete NDJSON payload (one JSON record per line, each
// newline-terminated); it must be safe for sequential use from the
// logger's flusher goroutine. An Upload error tells the logger to keep
// the batch and retry on its next flush opportunity.
type Sink interface {
	Upload(ndjson []byte) error
	Close() error
}

// encodeNDJSON renders a batch as newline-delimited JSON — the format
// both sinks speak and every offline consumer (jq, a warehouse loader)
// reads line by line.
func encodeNDJSON(batch []Record) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf) // Encode appends the newline
	for _, r := range batch {
		if err := enc.Encode(r); err != nil {
			return nil, fmt.Errorf("audit: encode record: %w", err)
		}
	}
	return buf.Bytes(), nil
}

// FileSink appends NDJSON batches to a current file in a directory and
// rotates it by size, keeping a bounded set of closed files — the
// audit stream's durable, disk-bounded form.
//
// Layout: dir/audit.ndjson is the live file; a rotation renames it to
// dir/audit-<unix-nanos>.ndjson and starts fresh. MaxFiles bounds the
// closed set (oldest deleted first), so total disk use is roughly
// (MaxFiles + 1) * MaxBytes.
type FileSink struct {
	dir      string
	maxBytes int64
	maxFiles int

	mu   sync.Mutex
	f    *os.File
	size int64
	now  func() time.Time
}

// FileSinkConfig configures NewFileSink. Zero values get defaults:
// 8 MiB per file, 8 rotated files kept.
type FileSinkConfig struct {
	MaxBytes int64
	MaxFiles int
	// Now feeds rotation names (nil: time.Now). Tests pin it.
	Now func() time.Time
}

// CurrentFile is the name of the live audit file within the sink's
// directory; rotations move it aside as audit-<unix-nanos>.ndjson.
const CurrentFile = "audit.ndjson"

// NewFileSink opens (creating if needed) the rotating file set in dir.
func NewFileSink(dir string, cfg FileSinkConfig) (*FileSink, error) {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 8 << 20
	}
	if cfg.MaxFiles <= 0 {
		cfg.MaxFiles = 8
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, CurrentFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("audit: %w", err)
	}
	return &FileSink{
		dir:      dir,
		maxBytes: cfg.MaxBytes,
		maxFiles: cfg.MaxFiles,
		f:        f,
		size:     st.Size(),
		now:      cfg.Now,
	}, nil
}

// Upload appends one batch, rotating first when the live file would
// exceed its size bound (a batch is never split across files).
func (s *FileSink) Upload(ndjson []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.size > 0 && s.size+int64(len(ndjson)) > s.maxBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := s.f.Write(ndjson)
	s.size += int64(n)
	if err != nil {
		return fmt.Errorf("audit: write: %w", err)
	}
	return nil
}

func (s *FileSink) rotateLocked() error {
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("audit: rotate: %w", err)
	}
	rotated := filepath.Join(s.dir, fmt.Sprintf("audit-%d.ndjson", s.now().UnixNano()))
	if err := os.Rename(filepath.Join(s.dir, CurrentFile), rotated); err != nil {
		return fmt.Errorf("audit: rotate: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(s.dir, CurrentFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("audit: rotate: %w", err)
	}
	s.f, s.size = f, 0
	s.pruneLocked()
	return nil
}

// pruneLocked deletes the oldest rotated files beyond the bound. Best
// effort: pruning failures never fail an upload.
func (s *FileSink) pruneLocked() {
	rotated, err := filepath.Glob(filepath.Join(s.dir, "audit-*.ndjson"))
	if err != nil || len(rotated) <= s.maxFiles {
		return
	}
	sort.Strings(rotated) // names embed nanos, so lexical order is age order
	for _, old := range rotated[:len(rotated)-s.maxFiles] {
		os.Remove(old)
	}
}

// Close syncs and closes the live file.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return fmt.Errorf("audit: %w", err)
	}
	return s.f.Close()
}

// HTTPSink POSTs each batch to an upload endpoint as
// application/x-ndjson — the push form of the stream, for shipping
// verdicts to a collector instead of local disk. Any non-2xx answer is
// an upload failure (the logger retries the batch on its next flush).
type HTTPSink struct {
	url    string
	client *http.Client
}

// NewHTTPSink builds a sink posting to url. A nil client gets a
// dedicated one with a 10s timeout, so a black-holed collector stalls
// the flusher (and starts dropping records) instead of hanging a
// request forever.
func NewHTTPSink(url string, client *http.Client) *HTTPSink {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return &HTTPSink{url: url, client: client}
}

// Upload POSTs one NDJSON batch.
func (s *HTTPSink) Upload(ndjson []byte) error {
	resp, err := s.client.Post(s.url, "application/x-ndjson", bytes.NewReader(ndjson))
	if err != nil {
		return fmt.Errorf("audit: upload: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("audit: upload: collector answered %d", resp.StatusCode)
	}
	return nil
}

// Close is a no-op; the sink owns no connection state worth flushing.
func (s *HTTPSink) Close() error { return nil }
