// Package ctrans translates allocated (or virtual-register) ILOC into the
// instrumented C of the paper's Figure 4. The paper compiled this C and
// linked it into complete programs to collect dynamic counts; here the
// interpreter plays that role, and the translator reproduces the textual
// artifact — one C statement per ILOC instruction with the counter
// increments Figure 4 shows: l++ after loads, s++ after stores, c++ after
// copies, i++ after load-immediates, a++ after add-immediates.
package ctrans

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/iloc"
)

// Translate renders the routine as a complete C function. Integer
// registers become long variables r1..rN, float registers double f1..fN,
// blocks become labels, and static data becomes file-scope arrays.
func Translate(rt *iloc.Routine) (string, error) {
	if err := iloc.Verify(rt, false); err != nil {
		return "", fmt.Errorf("ctrans: %w", err)
	}
	var b strings.Builder

	retType := "long"
	rt.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
		if in.Op == iloc.OpRetf {
			retType = "double"
		}
	})

	b.WriteString("#include <math.h>\n\n")
	b.WriteString("/* dynamic instruction counters (Figure 4) */\n")
	b.WriteString("long l, s, c, i, a;\n\n")
	usesDisplay, usesCalls := false, false
	callees := map[string]bool{}
	rt.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
		switch in.Op {
		case iloc.OpLdisp:
			usesDisplay = true
		case iloc.OpCall:
			usesCalls = true
			callees[in.Label] = true
		case iloc.OpSetarg, iloc.OpFsetarg, iloc.OpGetret, iloc.OpFgetret:
			usesCalls = true
		}
	})
	if usesDisplay {
		b.WriteString("extern long display[];\n\n")
	}
	if usesCalls {
		b.WriteString("/* calling convention: argument slots and return latch */\n")
		b.WriteString("extern long iarg[]; extern double farg[];\n")
		b.WriteString("extern long iret; extern double fret;\n")
		names := make([]string, 0, len(callees))
		for n := range callees {
			if n != rt.Name { // a self-call uses the definition itself
				names = append(names, n)
			}
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "extern void %s(void);\n", n)
		}
		b.WriteString("\n")
	}

	for _, d := range rt.Data {
		qual := ""
		if d.ReadOnly {
			qual = "const "
		}
		elem := "long"
		if d.IsFloat {
			elem = "double"
		}
		fmt.Fprintf(&b, "static %s%s %s[%d]", qual, elem, d.Label, d.Words)
		if len(d.Init) > 0 {
			b.WriteString(" = {")
			for i, v := range d.Init {
				if i > 0 {
					b.WriteString(", ")
				}
				if d.IsFloat {
					b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
				} else {
					b.WriteString(strconv.FormatInt(int64(v), 10))
				}
			}
			b.WriteString("}")
		}
		b.WriteString(";\n")
	}
	if len(rt.Data) > 0 {
		b.WriteString("\n")
	}

	frameWords := rt.FrameWords + 64
	fmt.Fprintf(&b, "static long frame[%d];\n\n", frameWords)

	// Signature: one parameter per declared param.
	var params []string
	for i, p := range rt.Params {
		t := "long"
		if p.Reg.Class == iloc.ClassFlt {
			t = "double"
		}
		params = append(params, fmt.Sprintf("%s p%d", t, i))
	}
	fmt.Fprintf(&b, "%s %s(%s)\n{\n", retType, rt.Name, strings.Join(params, ", "))

	// Register declarations ("some additional C is required for ...
	// declarations of the register variables", §5).
	fmt.Fprintf(&b, "    register long fp = (long) frame;\n")
	for n := 1; n < rt.NumRegs(iloc.ClassInt); n++ {
		fmt.Fprintf(&b, "    register long r%d;\n", n)
	}
	for n := 1; n < rt.NumRegs(iloc.ClassFlt); n++ {
		fmt.Fprintf(&b, "    register double f%d;\n", n)
	}
	b.WriteString("\n")

	for _, blk := range rt.Blocks {
		fmt.Fprintf(&b, "%s:\n", cLabel(blk.Label))
		emitted := 0
		for _, in := range blk.Instrs {
			stmt, err := stmtFor(rt, in)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "    %s\n", stmt)
			emitted++
		}
		if emitted == 0 {
			b.WriteString("    ;\n")
		}
	}
	if retType == "double" {
		b.WriteString("    return 0.0;\n")
	} else {
		b.WriteString("    return 0;\n")
	}
	b.WriteString("}\n")
	return b.String(), nil
}

// cLabel makes a block label a valid C identifier.
func cLabel(l string) string {
	return "L_" + strings.NewReplacer(".", "_", "-", "_").Replace(l)
}

func reg(r iloc.Reg) string {
	if r.IsFP() {
		return "fp"
	}
	if r.Class == iloc.ClassInt {
		return "r" + strconv.Itoa(r.N)
	}
	return "f" + strconv.Itoa(r.N)
}

func stmtFor(rt *iloc.Routine, in *iloc.Instr) (string, error) {
	d := reg(in.Dst)
	s0, s1 := "", ""
	if in.Op.NSrc() > 0 {
		s0 = reg(in.Src[0])
	}
	if in.Op.NSrc() > 1 {
		s1 = reg(in.Src[1])
	}
	imm := strconv.FormatInt(in.Imm, 10)

	bin := func(op string) string { return fmt.Sprintf("%s = %s %s %s;", d, s0, op, s1) }
	switch in.Op {
	case iloc.OpNop:
		return ";", nil
	case iloc.OpAdd, iloc.OpFadd:
		return bin("+"), nil
	case iloc.OpSub, iloc.OpFsub:
		return bin("-"), nil
	case iloc.OpMul, iloc.OpFmul:
		return bin("*"), nil
	case iloc.OpDiv, iloc.OpFdiv:
		return bin("/"), nil
	case iloc.OpAnd:
		return bin("&"), nil
	case iloc.OpOr:
		return bin("|"), nil
	case iloc.OpXor:
		return bin("^"), nil
	case iloc.OpShl:
		return bin("<<"), nil
	case iloc.OpShr:
		return fmt.Sprintf("%s = (long) ((unsigned long) %s >> %s);", d, s0, s1), nil
	case iloc.OpNeg:
		return fmt.Sprintf("%s = -%s;", d, s0), nil
	case iloc.OpFneg:
		return fmt.Sprintf("%s = -%s;", d, s0), nil
	case iloc.OpFabs:
		return fmt.Sprintf("%s = fabs(%s);", d, s0), nil
	case iloc.OpAddi:
		return fmt.Sprintf("%s = %s + (%s); a++;", d, s0, imm), nil
	case iloc.OpSubi:
		return fmt.Sprintf("%s = %s - (%s); a++;", d, s0, imm), nil
	case iloc.OpMuli:
		return fmt.Sprintf("%s = %s * (%s); a++;", d, s0, imm), nil
	case iloc.OpLdi:
		return fmt.Sprintf("%s = (long) (%s); i++;", d, imm), nil
	case iloc.OpFldi:
		return fmt.Sprintf("%s = %s; i++;", d, strconv.FormatFloat(in.FImm, 'g', -1, 64)), nil
	case iloc.OpLda:
		return fmt.Sprintf("%s = (long) %s; i++;", d, in.Label), nil
	case iloc.OpMov, iloc.OpFmov:
		return fmt.Sprintf("%s = %s; c++;", d, s0), nil

	case iloc.OpLoad:
		return fmt.Sprintf("%s = *((long *) (%s)); l++;", d, s0), nil
	case iloc.OpLoadai:
		return fmt.Sprintf("%s = *((long *) (%s + %s)); l++;", d, s0, imm), nil
	case iloc.OpLoadao:
		return fmt.Sprintf("%s = *((long *) (%s + %s)); l++;", d, s0, s1), nil
	case iloc.OpFload:
		return fmt.Sprintf("%s = *((double *) (%s)); l++;", d, s0), nil
	case iloc.OpFloadai:
		return fmt.Sprintf("%s = *((double *) (%s + %s)); l++;", d, s0, imm), nil
	case iloc.OpFloadao:
		return fmt.Sprintf("%s = *((double *) (%s + %s)); l++;", d, s0, s1), nil
	case iloc.OpStore:
		return fmt.Sprintf("*((long *) (%s)) = %s; s++;", s1, s0), nil
	case iloc.OpStoreai:
		return fmt.Sprintf("*((long *) (%s + %s)) = %s; s++;", s1, imm, s0), nil
	case iloc.OpFstore:
		return fmt.Sprintf("*((double *) (%s)) = %s; s++;", s1, s0), nil
	case iloc.OpFstoreai:
		return fmt.Sprintf("*((double *) (%s + %s)) = %s; s++;", s1, imm, s0), nil
	case iloc.OpRload:
		return fmt.Sprintf("%s = %s[%d]; l++;", d, in.Label, in.Imm/8), nil
	case iloc.OpFrload:
		return fmt.Sprintf("%s = %s[%d]; l++;", d, in.Label, in.Imm/8), nil

	case iloc.OpCvtif:
		return fmt.Sprintf("%s = (double) %s;", d, s0), nil
	case iloc.OpCvtfi:
		return fmt.Sprintf("%s = (long) %s;", d, s0), nil
	case iloc.OpFcmp:
		return fmt.Sprintf("%s = (%s < %s) ? -1 : ((%s > %s) ? 1 : 0);", d, s0, s1, s0, s1), nil

	case iloc.OpGetparam:
		return fmt.Sprintf("%s = p%d; l++;", d, in.Imm), nil
	case iloc.OpFgetparam:
		return fmt.Sprintf("%s = p%d; l++;", d, in.Imm), nil
	case iloc.OpLdisp:
		return fmt.Sprintf("%s = display[%d]; l++;", d, in.Imm), nil

	case iloc.OpSetarg:
		return fmt.Sprintf("iarg[%d] = %s; s++;", in.Imm, s0), nil
	case iloc.OpFsetarg:
		return fmt.Sprintf("farg[%d] = %s; s++;", in.Imm, s0), nil
	case iloc.OpCall:
		if in.Label == rt.Name {
			// Self-recursion: the definition's real signature is known,
			// so route the slots and latch through it directly.
			var argv []string
			for i, p := range rt.Params {
				if p.Reg.Class == iloc.ClassFlt {
					argv = append(argv, fmt.Sprintf("farg[%d]", i))
				} else {
					argv = append(argv, fmt.Sprintf("iarg[%d]", i))
				}
			}
			latch := "iret"
			rt.ForEachInstr(func(_ *iloc.Block, _ int, x *iloc.Instr) {
				if x.Op == iloc.OpRetf {
					latch = "fret"
				}
			})
			return fmt.Sprintf("%s = %s(%s);", latch, in.Label, strings.Join(argv, ", ")), nil
		}
		return fmt.Sprintf("%s();", in.Label), nil
	case iloc.OpGetret:
		return fmt.Sprintf("%s = iret;", d), nil
	case iloc.OpFgetret:
		return fmt.Sprintf("%s = fret;", d), nil

	case iloc.OpJmp:
		return fmt.Sprintf("goto %s;", cLabel(in.Label)), nil
	case iloc.OpBr:
		var op string
		switch in.Cond {
		case iloc.CondLT:
			op = "<"
		case iloc.CondLE:
			op = "<="
		case iloc.CondGT:
			op = ">"
		case iloc.CondGE:
			op = ">="
		case iloc.CondEQ:
			op = "=="
		case iloc.CondNE:
			op = "!="
		}
		return fmt.Sprintf("if (%s %s 0) goto %s; else goto %s;", s0, op, cLabel(in.Label), cLabel(in.Label2)), nil
	case iloc.OpRet:
		return "return 0;", nil
	case iloc.OpRetr:
		return fmt.Sprintf("return %s;", s0), nil
	case iloc.OpRetf:
		return fmt.Sprintf("return %s;", s0), nil
	}
	return "", fmt.Errorf("ctrans: cannot translate %s", in)
}
