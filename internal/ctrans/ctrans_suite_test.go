package ctrans_test

import (
	"context"
	"os/exec"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ctrans"
	"repro/internal/suite"
	"repro/internal/target"
)

// Every suite kernel translates to C, before and after allocation, and
// the output contains the counter instrumentation.
func TestTranslateWholeSuite(t *testing.T) {
	for _, k := range suite.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			c, err := ctrans.Translate(k.Routine())
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(c, "long l, s, c, i, a;") {
				t.Fatal("instrumentation missing")
			}
			if !strings.Contains(c, k.Name+"(") {
				t.Fatal("function name missing")
			}

			res, err := core.Allocate(context.Background(), k.Routine(), core.Options{Machine: target.WithRegs(6), Mode: core.ModeRemat})
			if err != nil {
				t.Fatal(err)
			}
			ca, err := ctrans.Translate(res.Routine)
			if err != nil {
				t.Fatalf("allocated translation: %v", err)
			}
			// Allocated code on a 6-register machine declares at most 5
			// integer registers (r1..r5).
			if strings.Contains(ca, "register long r6;") {
				t.Fatal("allocated code declares registers beyond the machine")
			}
		})
	}
}

// If a C compiler is available, the translation must be syntactically
// valid C (the paper compiled these translations into complete
// programs).
func TestTranslationCompilesWithGCC(t *testing.T) {
	gcc, err := exec.LookPath("gcc")
	if err != nil {
		t.Skip("no gcc on this host")
	}
	for _, k := range suite.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			res, err := core.Allocate(context.Background(), k.Routine(), core.Options{Machine: target.Standard(), Mode: core.ModeRemat})
			if err != nil {
				t.Fatal(err)
			}
			c, err := ctrans.Translate(res.Routine)
			if err != nil {
				t.Fatal(err)
			}
			// Unused registers and labels are expected in generated code;
			args := []string{"-fsyntax-only", "-Wall", "-Werror",
				"-Wno-unused-variable", "-Wno-unused-label", "-Wno-unused-but-set-variable",
				"-x", "c", "-"}
			cmd := exec.Command(gcc, args...)
			cmd.Stdin = strings.NewReader(c)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("gcc rejected the translation: %v\n%s\n--- C ---\n%s", err, out, c)
			}
		})
	}
}
