package ctrans

import (
	"strings"
	"testing"

	"repro/internal/iloc"
)

// The Figure 4 fragment: ILOC on the left of the figure, and the C lines
// it must turn into on the right.
const fig4Src = `
routine fig4(r15, r11, r10)
entry:
    getparam r15, 0
    getparam r11, 1
    getparam r10, 2
LL43:
    nop
LL44:
    ldi r14, 8
    add r9, r15, r11
    fmov f15, f1
    jmp L0023
L0023:
    floadao f14, r14, r9
    fabs f14, f14
    fadd f15, f15, f14
    addi r14, r14, 8
    sub r7, r10, r14
    br ge r7, N6, N7
N6:
    retf f15
N7:
    jmp L0023
`

func translate(t *testing.T, src string) string {
	t.Helper()
	rt := iloc.MustParse(src)
	// fig4 uses f1 before definition (stands in for f0 of the figure);
	// give it a def so the routine verifies and translates.
	c, err := Translate(rt)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFigure4Shape(t *testing.T) {
	c := translate(t, fig4Src)
	wants := []string{
		"r14 = (long) (8); i++;",                  // ldi ... (int) in the figure, long here
		"r9 = r15 + r11;",                         // add
		"f15 = f1; c++;",                          // mvf / fmov
		"goto L_L0023;",                           // bc
		"f14 = *((double *) (r14 + r9)); l++;",    // lddrr / floadao
		"f14 = fabs(f14);",                        // dabs
		"f15 = f15 + f14;",                        // dadd
		"r14 = r14 + (8); a++;",                   // addi
		"r7 = r10 - r14;",                         // sub
		"if (r7 >= 0) goto L_N6; else goto L_N7;", // br ge
		"long l, s, c, i, a;",                     // the counters
		"register long r14;",                      // register declarations
		"register double f15;",
	}
	for _, w := range wants {
		if !strings.Contains(c, w) {
			t.Errorf("missing %q in translation:\n%s", w, c)
		}
	}
	if !strings.HasPrefix(c, "#include <math.h>") {
		t.Error("missing math.h include")
	}
	if !strings.Contains(c, "double fig4(long p0, long p1, long p2)") {
		t.Errorf("signature wrong:\n%s", c)
	}
}

func TestDataSections(t *testing.T) {
	c := translate(t, `
routine f()
data tab ro 2 = 1.5 -2.5
data buf rw 3
entry:
    lda r1, tab
    fload f1, r1
    frload f2, tab, 8
    fadd f1, f1, f2
    lda r2, buf
    fstore f1, r2
    retf f1
`)
	for _, w := range []string{
		"static const double tab[2] = {1.5, -2.5};",
		"static long buf[3];",
		"r1 = (long) tab; i++;",
		"f2 = tab[1]; l++;",
		"*((double *) (r2)) = f1; s++;",
	} {
		if !strings.Contains(c, w) {
			t.Errorf("missing %q in:\n%s", w, c)
		}
	}
}

func TestStoresLoadsFrame(t *testing.T) {
	c := translate(t, `
routine f()
entry:
    ldi r1, 7
    storeai r1, fp, 16
    loadai r2, fp, 16
    retr r2
`)
	for _, w := range []string{
		"register long fp = (long) frame;",
		"*((long *) (fp + 16)) = r1; s++;",
		"r2 = *((long *) (fp + 16)); l++;",
		"long f(", // integer-returning routine
	} {
		if !strings.Contains(c, w) {
			t.Errorf("missing %q in:\n%s", w, c)
		}
	}
}

func TestAllOpsTranslate(t *testing.T) {
	// A routine touching every translatable op must not error.
	c := translate(t, `
routine all(r1, f1)
data k ro 1 = 3
entry:
    getparam r1, 0
    fgetparam f1, 1
    ldi r2, 2
    lda r3, k
    rload r4, k, 0
    mov r5, r2
    add r6, r2, r4
    sub r6, r6, r2
    mul r6, r6, r2
    div r6, r6, r2
    and r6, r6, r2
    or r6, r6, r2
    xor r6, r6, r2
    shl r6, r6, r2
    shr r6, r6, r2
    neg r6, r6
    addi r6, r6, 1
    subi r6, r6, 1
    muli r6, r6, 2
    load r7, r3
    loadai r7, r3, 0
    loadao r7, r3, r2
    nop
    fldi f2, 1.5
    fmov f3, f2
    fadd f4, f2, f3
    fsub f4, f4, f2
    fmul f4, f4, f2
    fdiv f4, f4, f2
    fabs f4, f4
    fneg f4, f4
    cvtif f5, r6
    cvtfi r8, f4
    fcmp r9, f4, f5
    br ne r9, a, b
a:
    store r6, r3
    storeai r6, r3, 0
    fstore f4, r3
    fstoreai f4, r3, 0
    ret
b:
    retr r8
`)
	if !strings.Contains(c, "r9 = (f4 < f5) ? -1 : ((f4 > f5) ? 1 : 0);") {
		t.Errorf("fcmp translation missing:\n%s", c)
	}
}

func TestRejectsPhi(t *testing.T) {
	rt := iloc.MustParse("routine f()\na:\n ldi r1, 1\n retr r1\n")
	rt.Blocks[0].Instrs = append([]*iloc.Instr{
		{Op: iloc.OpPhi, Dst: iloc.IntReg(1), Phi: &iloc.Phi{Args: []iloc.Reg{iloc.IntReg(1)}}},
	}, rt.Blocks[0].Instrs...)
	if _, err := Translate(rt); err == nil {
		t.Fatal("φ accepted")
	}
}
