// Package telemetry is the allocator's observability layer: a
// dependency-free metrics registry (counters, gauges, nanosecond timing
// histograms) and a structured trace recorder whose events export as
// Chrome trace_event JSON (chrome://tracing, Perfetto).
//
// The design constraint is that telemetry must be free when it is off.
// Every producer-side entry point — Sink methods, Span methods, Counter/
// Gauge/Histogram methods — is nil-guarded: a nil *Sink (or a Sink with
// the relevant half unset) turns the whole instrumentation surface into
// no-ops that perform zero heap allocations, so the allocator's hot
// paths carry their hooks unconditionally. The package imports only the
// standard library, and nothing outside it; consumers (HTTP serving,
// expvar, file output) live in the cmd/ binaries.
//
// Producers hold a *Sink, which couples the two halves:
//
//	sink := &telemetry.Sink{Metrics: telemetry.NewRegistry(), Trace: telemetry.NewTracer()}
//	sp := sink.StartSpan(telemetry.CatPass, "build")
//	... work ...
//	sp.Arg("nodes", int64(n))
//	elapsed := sp.End() // records a complete trace event, returns the duration
//
// StartSpan always captures the clock, so callers reuse the returned
// duration for their own bookkeeping whether or not a tracer is
// installed — the span is the timing source, not a parallel one.
package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Standard event categories. Producers across the codebase agree on
// these so one trace or metrics dump tells a coherent story.
const (
	CatAlloc     = "alloc"     // one core.Allocate call
	CatIteration = "iteration" // one round of the spill/color loop
	CatPass      = "pass"      // one pipeline pass within an iteration
	CatDriver    = "driver"    // batch-engine scaffolding (batch span)
	CatUnit      = "unit"      // one driver unit (routine) on a worker
	CatCache     = "cache"     // result-cache hit/miss instants
	CatVerify    = "verify"    // one post-allocation checker rule
	CatDegrade   = "degrade"   // spill-everywhere degradation instants
	CatServer    = "server"    // one HTTP request through internal/server
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are safe for concurrent use and are no-ops on a
// nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (no-op on a nil receiver).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-or-adjust metric (queue depth, pool size). The zero
// value is ready; methods are concurrency-safe and nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n (negative to decrement).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is one bucket per bit length of the observed value, so
// bucket i counts observations in [2^(i-1), 2^i). Nanosecond timings
// span ~2ns to minutes in 64 buckets with ~2x resolution — coarse, but
// allocation- and lock-free on the observe path.
const histBuckets = 64

// Histogram accumulates a distribution of int64 observations
// (conventionally nanoseconds). The zero value is ready; methods are
// concurrency-safe and nil-safe. minPlus1 stores min+1 so that 0 can
// mean "no observation yet" without a constructor; observed values are
// clamped nonnegative, so max's zero value needs no such encoding.
type Histogram struct {
	count    atomic.Int64
	sum      atomic.Int64
	minPlus1 atomic.Int64
	max      atomic.Int64
	buckets  [histBuckets]atomic.Int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.minPlus1.Load()
		if old != 0 && old-1 <= v {
			break
		}
		if h.minPlus1.CompareAndSwap(old, v+1) {
			break
		}
	}
	for {
		old := h.max.Load()
		if old >= v {
			break
		}
		if h.max.CompareAndSwap(old, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count, Sum, Min, Max int64
	Buckets              [histBuckets]int64
}

// Mean returns the arithmetic mean, or 0 before any observation.
func (s HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Quantile estimates the q-th quantile (0 <= q <= 1) from the
// power-of-two buckets: it walks to the bucket holding the rank and
// returns that bucket's upper bound, so the estimate is within 2x.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count-1))
	var seen int64
	for i, n := range s.Buckets {
		seen += n
		if seen > rank {
			if i == 0 {
				return 0
			}
			if i >= 63 {
				return s.Max
			}
			return int64(1) << uint(i) // upper bound of [2^(i-1), 2^i)
		}
	}
	return s.Max
}

// Snapshot copies the histogram's state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if m := h.minPlus1.Load(); m > 0 {
		s.Min = m - 1
	}
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Registry is a named collection of metrics. Get-or-create lookups take
// a mutex; the returned metric pointers are lock-free, so hot paths
// resolve once and hold the pointer. All methods are nil-safe.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a usable no-op) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Metric is one line of a registry dump.
type Metric struct {
	Name  string
	Value int64
}

// Snapshot flattens the registry into sorted name/value pairs. Counters
// and gauges contribute one line; each histogram expands into count,
// sum, min, max, mean and estimated p50/p90/p99 lines (suffixes after
// the histogram's name).
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Metric
	for name, c := range r.counters {
		out = append(out, Metric{name, c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{name, g.Value()})
	}
	for name, h := range r.histograms {
		s := h.Snapshot()
		out = append(out,
			Metric{name + ".count", s.Count},
			Metric{name + ".sum", s.Sum},
			Metric{name + ".min", s.Min},
			Metric{name + ".max", s.Max},
			Metric{name + ".mean", s.Mean()},
			Metric{name + ".p50", s.Quantile(0.50)},
			Metric{name + ".p90", s.Quantile(0.90)},
			Metric{name + ".p99", s.Quantile(0.99)},
		)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteTo dumps the registry as flat "name value" lines, sorted by
// name — the `-metrics` output format.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, m := range r.Snapshot() {
		k, err := fmt.Fprintf(w, "%s %d\n", m.Name, m.Value)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
