package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerRecordsSpansAndInstants(t *testing.T) {
	tr := NewTracer()
	s := &Sink{Trace: tr, TID: 2}
	sp := s.StartSpan(CatPass, "build")
	if !sp.Active() {
		t.Fatal("span inactive with tracer installed")
	}
	sp.Arg("nodes", 7)
	sp.StrArg("mode", "remat")
	time.Sleep(time.Microsecond)
	d := sp.End()
	if d <= 0 {
		t.Fatalf("duration = %v, want > 0", d)
	}
	s.Instant(CatDegrade, "degrade", Arg{Key: "reason", Str: "panic"})
	tr.SetThreadName(2, "worker 2")

	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	e := events[0]
	if e.Name != "build" || e.Cat != CatPass || e.Phase != PhaseComplete || e.TID != 2 {
		t.Fatalf("span event = %+v", e)
	}
	if e.Dur != d {
		t.Fatalf("event dur %v != returned %v", e.Dur, d)
	}
	if len(e.Args) != 2 || e.Args[0].Val != 7 || e.Args[1].Str != "remat" {
		t.Fatalf("span args = %+v", e.Args)
	}
	if events[1].Phase != PhaseInstant || events[2].Phase != PhaseMetadata {
		t.Fatalf("phases = %c %c", events[1].Phase, events[2].Phase)
	}
}

// TestWriteJSONValid: the export must be well-formed JSON in the Chrome
// trace_event object format — an object with a traceEvents array whose
// entries carry name/ph/ts/pid/tid.
func TestWriteJSONValid(t *testing.T) {
	tr := NewTracer()
	s := &Sink{Trace: tr}
	sp := s.StartSpan(CatAlloc, "sumabs")
	sp.Arg("iterations", 3)
	sp.End()
	s.Instant(CatCache, "hit")
	tr.SetThreadName(0, "main")

	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, b.String())
	}
	if doc.Unit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.Unit)
	}
	// process_name metadata + 3 recorded events.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	var sawSpan bool
	for _, e := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := e[key]; !ok {
				t.Fatalf("event missing %q: %v", key, e)
			}
		}
		if e["ph"] == "X" {
			sawSpan = true
			if e["name"] != "sumabs" || e["cat"] != CatAlloc {
				t.Fatalf("span event = %v", e)
			}
			if args, ok := e["args"].(map[string]any); !ok || args["iterations"] != float64(3) {
				t.Fatalf("span args = %v", e["args"])
			}
		}
	}
	if !sawSpan {
		t.Fatal("no complete span in export")
	}
}

// TestTracerConcurrent: workers record into one tracer; under -race
// this is the trace layer's safety proof.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := (&Sink{Trace: tr}).WithTID(int64(w))
			for j := 0; j < 200; j++ {
				sp := s.StartSpan(CatUnit, "unit")
				sp.Arg("j", int64(j))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Len(); got != 1600 {
		t.Fatalf("recorded %d events, want 1600", got)
	}
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(b.String())) {
		t.Fatal("concurrent export is not valid JSON")
	}
}
