package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("core.allocations")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if r.Counter("core.allocations") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("driver.queue.depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []int64{100, 200, 400, 800, 3} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 1503 {
		t.Fatalf("sum = %d, want 1503", s.Sum)
	}
	if s.Min != 3 || s.Max != 800 {
		t.Fatalf("min/max = %d/%d, want 3/800", s.Min, s.Max)
	}
	if s.Mean() != 300 {
		t.Fatalf("mean = %d, want 300", s.Mean())
	}
	// Bucket quantiles are upper bounds within 2x of the true value.
	if q := s.Quantile(0.5); q < 200 || q > 512 {
		t.Fatalf("p50 = %d, want within [200, 512]", q)
	}
	if q := s.Quantile(1.0); q < 800 || q > 1024 {
		t.Fatalf("p100 = %d, want within [800, 1024]", q)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-5) // clamps to 0
	s := h.Snapshot()
	if s.Count != 2 || s.Min != 0 || s.Max != 0 || s.Sum != 0 {
		t.Fatalf("snapshot = %+v, want two zero observations", s)
	}
	if q := s.Quantile(0.99); q != 0 {
		t.Fatalf("p99 = %d, want 0", q)
	}
}

func TestSnapshotSortedAndWriteTo(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Gauge("c.gauge").Set(5)
	r.Histogram("d.wait").Observe(7)
	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"a.count 1\n", "b.count 2\n", "c.gauge 5\n", "d.wait.count 1\n", "d.wait.sum 7\n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

// TestNilSafety: the whole producer surface must be callable through
// nil receivers — that is the "telemetry off" mode.
func TestNilSafety(t *testing.T) {
	var s *Sink
	var r *Registry
	var tr *Tracer
	s.Count("x", 1)
	s.Observe("x", 1)
	s.Gauge("x").Add(1)
	s.Instant(CatAlloc, "x")
	if s.WithTID(3) != nil {
		t.Fatal("nil sink WithTID should stay nil")
	}
	if s.Enabled() {
		t.Fatal("nil sink reports enabled")
	}
	sp := s.StartSpan(CatPass, "build")
	sp.Arg("n", 1)
	if sp.Active() {
		t.Fatal("span active without tracer")
	}
	if d := sp.End(); d < 0 {
		t.Fatal("negative duration")
	}
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil registry snapshot = %v", got)
	}
	tr.Instant("c", "n", 0)
	tr.SetThreadName(0, "w")
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer recorded something")
	}
}

// TestDisabledPathAllocsZero proves the hot-path contract: with no sink
// installed, the exact hook sequence the pipeline runs per pass — open
// a span, annotate it, end it, bump counters, observe a histogram —
// performs zero heap allocations.
func TestDisabledPathAllocsZero(t *testing.T) {
	var s *Sink
	allocs := testing.AllocsPerRun(1000, func() {
		sp := s.StartSpan(CatPass, "build")
		sp.Arg("nodes", 42)
		sp.Arg("edges", 99)
		_ = sp.End()
		s.Count("core.iterations", 1)
		s.Observe("core.pass.build", 123)
		s.Gauge("driver.queue.depth").Add(-1)
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry hooks allocate %.1f times per run, want 0", allocs)
	}
}

// A metrics-only sink must also keep the per-observation path free of
// allocations once the metric exists (span args are tracer-gated).
func TestMetricsOnlyObserveAllocsZero(t *testing.T) {
	s := &Sink{Metrics: NewRegistry()}
	s.Count("c", 1) // create before measuring
	s.Observe("h", 1)
	allocs := testing.AllocsPerRun(1000, func() {
		s.Count("c", 1)
		s.Observe("h", 123)
	})
	if allocs != 0 {
		t.Fatalf("metrics-only hooks allocate %.1f times per run, want 0", allocs)
	}
}

// TestRegistryConcurrent exercises get-or-create races and concurrent
// updates; run under -race this is the registry's safety proof.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared.count").Inc()
				r.Gauge("shared.gauge").Add(1)
				r.Histogram("shared.hist").Observe(int64(j))
			}
			_ = r.Snapshot()
		}()
	}
	wg.Wait()
	if got := r.Counter("shared.count").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("shared.gauge").Value(); got != 8000 {
		t.Fatalf("gauge = %d, want 8000", got)
	}
	if got := r.Histogram("shared.hist").Snapshot(); got.Count != 8000 || got.Min != 0 || got.Max != 999 {
		t.Fatalf("hist = %+v, want count 8000 min 0 max 999", got)
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	var s *Sink
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := s.StartSpan(CatPass, "build")
		sp.Arg("nodes", 42)
		_ = sp.End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	s := &Sink{Trace: NewTracer()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := s.StartSpan(CatPass, "build")
		sp.Arg("nodes", 42)
		_ = sp.End()
	}
}
