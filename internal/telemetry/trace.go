package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Phase bytes of recorded events, a subset of the Chrome trace_event
// phases: complete spans, instants, and metadata.
const (
	PhaseComplete = 'X'
	PhaseInstant  = 'i'
	PhaseMetadata = 'M'
)

// Arg is one key/value annotation on an event. When Str is non-empty
// the value is the string; otherwise it is Val.
type Arg struct {
	Key string
	Str string
	Val int64
}

// Event is one recorded trace event. TS is the offset from the tracer's
// epoch; Dur is meaningful only for complete spans.
type Event struct {
	Name  string
	Cat   string
	Phase byte
	TS    time.Duration
	Dur   time.Duration
	TID   int64
	Args  []Arg
}

// Tracer records events in memory for export at the end of the run.
// All methods are safe for concurrent use and nil-safe; a nil *Tracer
// records nothing.
type Tracer struct {
	epoch time.Time

	mu     sync.Mutex
	events []Event
}

// NewTracer returns a tracer whose epoch (trace time zero) is now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

func (t *Tracer) add(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Instant records a zero-duration marker event.
func (t *Tracer) Instant(cat, name string, tid int64, args ...Arg) {
	if t == nil {
		return
	}
	t.add(Event{Name: name, Cat: cat, Phase: PhaseInstant, TS: time.Since(t.epoch), TID: tid, Args: args})
}

// SetThreadName labels a tid in trace viewers ("worker 3"). Emit once
// per tid; viewers use the last metadata event.
func (t *Tracer) SetThreadName(tid int64, name string) {
	if t == nil {
		return
	}
	t.add(Event{Name: "thread_name", Phase: PhaseMetadata, TID: tid, Args: []Arg{{Key: "name", Str: name}}})
}

// Events snapshots the recorded events in recording order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// jsonEvent is the Chrome trace_event wire form of one event. ts and
// dur are microseconds (fractional, so nanosecond precision survives).
type jsonEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type jsonTrace struct {
	TraceEvents     []jsonEvent       `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteJSON exports the trace in Chrome trace_event JSON object format,
// loadable by chrome://tracing and https://ui.perfetto.dev. The export
// is a cold path: it allocates freely.
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := t.Events()
	out := jsonTrace{
		TraceEvents:     make([]jsonEvent, 0, len(events)+1),
		DisplayTimeUnit: "ns",
		OtherData:       map[string]string{"tool": "repro/internal/telemetry"},
	}
	out.TraceEvents = append(out.TraceEvents, jsonEvent{
		Name: "process_name", Ph: string(PhaseMetadata), Pid: 1,
		Args: map[string]any{"name": "regalloc"},
	})
	for _, e := range events {
		je := jsonEvent{
			Name: e.Name,
			Cat:  e.Cat,
			Ph:   string(e.Phase),
			TS:   float64(e.TS) / 1e3,
			Pid:  1,
			Tid:  e.TID,
		}
		if e.Phase == PhaseComplete {
			je.Dur = float64(e.Dur) / 1e3
		}
		if e.Phase == PhaseInstant {
			je.S = "t"
		}
		if len(e.Args) > 0 {
			je.Args = make(map[string]any, len(e.Args))
			for _, a := range e.Args {
				if a.Str != "" {
					je.Args[a.Key] = a.Str
				} else {
					je.Args[a.Key] = a.Val
				}
			}
		}
		out.TraceEvents = append(out.TraceEvents, je)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// Sink couples the two telemetry halves and stamps a thread id on the
// spans and instants recorded through it. Producers accept a *Sink and
// treat nil as "telemetry off": every method below is a zero-allocation
// no-op on a nil receiver (variadic Instant args excepted, which is why
// instants appear only on cold paths).
type Sink struct {
	Metrics *Registry
	Trace   *Tracer
	// TID is the Chrome trace "thread" spans from this sink land on.
	// The driver gives each pool worker its own tid; single-routine
	// tools leave it 0.
	TID int64
}

// WithTID returns a sink identical to s but stamping tid; nil stays
// nil. The halves are shared, so metrics and events still aggregate
// into the same registry and tracer.
func (s *Sink) WithTID(tid int64) *Sink {
	if s == nil {
		return nil
	}
	c := *s
	c.TID = tid
	return &c
}

// Enabled reports whether any telemetry is attached.
func (s *Sink) Enabled() bool {
	return s != nil && (s.Metrics != nil || s.Trace != nil)
}

// Count adds n to the named counter (no-op without a registry).
func (s *Sink) Count(name string, n int64) {
	if s == nil || s.Metrics == nil {
		return
	}
	s.Metrics.Counter(name).Add(n)
}

// Gauge returns the named gauge, nil (usable as a no-op) without a
// registry.
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil || s.Metrics == nil {
		return nil
	}
	return s.Metrics.Gauge(name)
}

// Observe records v into the named histogram.
func (s *Sink) Observe(name string, v int64) {
	if s == nil || s.Metrics == nil {
		return
	}
	s.Metrics.Histogram(name).Observe(v)
}

// Instant records a marker event (no-op without a tracer). Cold paths
// only: building the variadic args may allocate even when disabled.
func (s *Sink) Instant(cat, name string, args ...Arg) {
	if s == nil || s.Trace == nil {
		return
	}
	s.Trace.add(Event{Name: name, Cat: cat, Phase: PhaseInstant, TS: time.Since(s.Trace.epoch), TID: s.TID, Args: args})
}

// Span is one timed region in flight. It is a value type: StartSpan
// and the methods below allocate nothing until End runs with a tracer
// attached, so spans can wrap the hottest loops unconditionally.
type Span struct {
	tr    *Tracer
	name  string
	cat   string
	tid   int64
	start time.Time
	args  []Arg
}

// StartSpan opens a span. The clock is captured whether or not a
// tracer is installed, so End's returned duration is always valid and
// callers use the span as their only timer.
func (s *Sink) StartSpan(cat, name string) Span {
	sp := Span{start: time.Now(), cat: cat, name: name}
	if s != nil && s.Trace != nil {
		sp.tr = s.Trace
		sp.tid = s.TID
	}
	return sp
}

// Active reports whether ending the span will record an event — the
// gate for arg computation that is itself expensive.
func (sp *Span) Active() bool { return sp.tr != nil }

// Arg annotates the span with an integer value; no-op (and no
// allocation) when no tracer is attached.
func (sp *Span) Arg(key string, val int64) {
	if sp.tr == nil {
		return
	}
	sp.args = append(sp.args, Arg{Key: key, Val: val})
}

// StrArg annotates the span with a string value.
func (sp *Span) StrArg(key, val string) {
	if sp.tr == nil {
		return
	}
	sp.args = append(sp.args, Arg{Key: key, Str: val})
}

// End closes the span, records it as a complete event when a tracer is
// attached, and returns the measured duration.
func (sp *Span) End() time.Duration {
	d := time.Since(sp.start)
	if sp.tr != nil {
		sp.tr.add(Event{
			Name:  sp.name,
			Cat:   sp.cat,
			Phase: PhaseComplete,
			TS:    sp.start.Sub(sp.tr.epoch),
			Dur:   d,
			TID:   sp.tid,
			Args:  sp.args,
		})
	}
	return d
}
