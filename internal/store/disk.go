package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/driver"
)

// Disk is the persistent cache tier: one file per entry under a
// sharded content-hash path,
//
//	<dir>/objects/<key[:2]>/<key>
//
// with <dir>/tmp holding in-flight writes and <dir>/quarantine holding
// entries that failed validation. Writes are crash-safe: an entry is
// written to a unique temp file and renamed into place, so a reader
// (or a process killed mid-write) can only ever observe a complete
// entry or none. Puts go through a bounded write-behind queue drained
// by one background flusher; when the queue is full the write happens
// synchronously in the caller instead of being dropped, so a Put is
// never lost short of a crash.
//
// Reads re-validate: a file whose header, length framing or payload
// hash does not check out is moved to quarantine and reported as a
// miss — corruption is detected, never served, and the next Put of the
// same key re-fills the slot.
type Disk struct {
	dir string

	// renameFn seams os.Rename for fault-injection tests (a crash
	// between temp write and rename must never leave a readable entry).
	renameFn func(oldpath, newpath string) error

	hits        atomic.Uint64
	misses      atomic.Uint64
	quarantined atomic.Uint64
	flushWrites atomic.Uint64
	flushSync   atomic.Uint64
	flushErrors atomic.Uint64
	entries     atomic.Int64

	mu     sync.Mutex // guards queue lifecycle (send vs close)
	closed bool
	queue  chan diskWrite
	done   chan struct{}
}

type diskWrite struct {
	key  driver.Key
	data []byte
	// ack, when non-nil, marks a flush barrier: the flusher closes it
	// once every write queued before it has hit the filesystem.
	ack chan struct{}
}

// flushQueueCap bounds the write-behind queue; beyond it Puts degrade
// to synchronous writes rather than dropping entries.
const flushQueueCap = 256

// OpenDisk opens (creating if needed) a disk tier rooted at dir.
// Leftover temp files from a previous crash are removed; existing
// entries are counted but not validated until read.
func OpenDisk(dir string) (*Disk, error) {
	for _, sub := range []string{"objects", "tmp", "quarantine"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	// A crash can strand temp files; they are garbage by construction
	// (never readable as entries) and safe to sweep on open.
	if tmps, err := os.ReadDir(filepath.Join(dir, "tmp")); err == nil {
		for _, t := range tmps {
			_ = os.Remove(filepath.Join(dir, "tmp", t.Name()))
		}
	}
	d := &Disk{
		dir:      dir,
		renameFn: os.Rename,
		queue:    make(chan diskWrite, flushQueueCap),
		done:     make(chan struct{}),
	}
	d.entries.Store(int64(d.countEntries()))
	go d.flusher()
	return d, nil
}

// Dir returns the tier's root directory.
func (d *Disk) Dir() string { return d.dir }

// countEntries walks the objects tree once at open.
func (d *Disk) countEntries() int {
	n := 0
	shards, err := os.ReadDir(filepath.Join(d.dir, "objects"))
	if err != nil {
		return 0
	}
	for _, s := range shards {
		if !s.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(d.dir, "objects", s.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if !f.IsDir() && validKey(driver.Key(f.Name())) {
				n++
			}
		}
	}
	return n
}

// validKey reports whether k looks like a content hash (64 hex chars),
// the only file names the tier creates or will import.
func validKey(k driver.Key) bool {
	if len(k) != 64 {
		return false
	}
	for _, c := range k {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// entryPath maps a key to its sharded file path.
func (d *Disk) entryPath(key driver.Key) string {
	return filepath.Join(d.dir, "objects", string(key[:2]), string(key))
}

// Get reads, validates and decodes the entry for key. A missing file
// is a plain miss; a file that fails validation or decoding is
// quarantined and also reported as a miss.
func (d *Disk) Get(key driver.Key) (*core.Result, bool) {
	if d == nil || !validKey(key) {
		return nil, false
	}
	path := d.entryPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		d.misses.Add(1)
		return nil, false
	}
	res, _, err := decodeResultBytes(data)
	if err != nil {
		d.quarantine(key, path)
		d.misses.Add(1)
		return nil, false
	}
	d.hits.Add(1)
	return res, true
}

// decodeResultBytes validates entry bytes end to end: framing, hash,
// metadata, and a successful re-parse of the code section.
func decodeResultBytes(data []byte) (*core.Result, string, error) {
	e, err := decodeEntry(data)
	if err != nil {
		return nil, "", err
	}
	res, err := e.result()
	if err != nil {
		return nil, "", err
	}
	return res, e.OptionsKey, nil
}

// quarantine moves a corrupt entry out of the objects tree so it is
// never read again and the slot can be re-filled by the next Put.
func (d *Disk) quarantine(key driver.Key, path string) {
	dst := filepath.Join(d.dir, "quarantine", string(key))
	if err := os.Rename(path, dst); err != nil {
		// Lost the race with another quarantiner (or the file vanished);
		// either way it is out of the objects tree.
		if os.IsNotExist(err) {
			return
		}
		_ = os.Remove(path)
	}
	d.quarantined.Add(1)
	d.entries.Add(-1)
}

// Put queues the entry for the background flusher; with the queue full
// it writes synchronously instead of dropping.
func (d *Disk) Put(key driver.Key, data []byte) {
	if d == nil || !validKey(key) {
		return
	}
	d.mu.Lock()
	if !d.closed {
		select {
		case d.queue <- diskWrite{key: key, data: data}:
			d.mu.Unlock()
			return
		default:
		}
	}
	d.mu.Unlock()
	// Queue full or tier closed: write in the caller.
	d.flushSync.Add(1)
	d.write(key, data)
}

// Flush blocks until every write queued before the call is on disk.
func (d *Disk) Flush() {
	if d == nil {
		return
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	ack := make(chan struct{})
	d.queue <- diskWrite{ack: ack}
	d.mu.Unlock()
	<-ack
}

// Close drains the write-behind queue and stops the flusher. Further
// Puts fall back to synchronous writes.
func (d *Disk) Close() {
	if d == nil {
		return
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	close(d.queue)
	d.mu.Unlock()
	<-d.done
}

// flusher is the single background writer.
func (d *Disk) flusher() {
	defer close(d.done)
	for w := range d.queue {
		if w.ack != nil {
			close(w.ack)
			continue
		}
		d.write(w.key, w.data)
	}
}

// write lands one entry atomically: unique temp file, then rename. A
// failed rename removes the temp file, leaving no readable partial.
func (d *Disk) write(key driver.Key, data []byte) {
	tmp, err := os.CreateTemp(filepath.Join(d.dir, "tmp"), string(key[:8])+".*")
	if err != nil {
		d.flushErrors.Add(1)
		return
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmpName)
		d.flushErrors.Add(1)
		return
	}
	dst := d.entryPath(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		_ = os.Remove(tmpName)
		d.flushErrors.Add(1)
		return
	}
	_, statErr := os.Stat(dst)
	fresh := os.IsNotExist(statErr)
	if err := d.renameFn(tmpName, dst); err != nil {
		_ = os.Remove(tmpName)
		d.flushErrors.Add(1)
		return
	}
	d.flushWrites.Add(1)
	if fresh {
		d.entries.Add(1)
	}
}

// Stats snapshots the tier's counters in the shared per-tier shape.
func (d *Disk) Stats() driver.CacheStats {
	if d == nil {
		return driver.CacheStats{}
	}
	n := d.entries.Load()
	if n < 0 {
		n = 0
	}
	return driver.CacheStats{
		Hits:   d.hits.Load(),
		Misses: d.misses.Load(),
		// The disk tier never evicts for capacity; its only removals are
		// quarantines, reported separately in store.Stats.
		Entries: int(n),
	}
}

// Quarantined returns how many corrupt entries the tier has moved to
// quarantine since open.
func (d *Disk) Quarantined() uint64 {
	if d == nil {
		return 0
	}
	return d.quarantined.Load()
}
