package store

import (
	"archive/tar"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/driver"
)

// A cache bundle is a tar.gz snapshot of the disk tier: each member is
// one entry file, stored verbatim under its objects/<shard>/<key>
// path. Entries are self-validating (see entry.go), so a bundle needs
// no manifest: import and inspect re-validate every member, and a
// member that fails — corrupt in transit, tampered, from a different
// format version — is skipped and counted, never installed. Unknown
// member names are ignored, which also neutralizes path traversal: the
// install path is derived from the validated key, never from the
// archive.

var errNoDiskTier = errors.New("store: no disk tier (memory-only store)")

// bundleMemberPrefix is where entry members live inside a bundle.
const bundleMemberPrefix = "objects/"

// maxBundleEntry bounds one member's size on import, keeping a
// hostile bundle from ballooning memory.
const maxBundleEntry = 256 << 20

// ImportStats summarizes one bundle import.
type ImportStats struct {
	// Imported entries were validated and installed; Replaced is the
	// subset that overwrote an existing entry. Skipped members failed
	// validation; Ignored members were not entry files at all.
	Imported int `json:"imported"`
	Replaced int `json:"replaced"`
	Skipped  int `json:"skipped"`
	Ignored  int `json:"ignored"`
}

// BundleEntry describes one member of a bundle (ralloc-bundle
// inspect).
type BundleEntry struct {
	Key        driver.Key
	Valid      bool
	Err        string // why Valid is false
	Name       string // routine name
	Strategy   string
	OptionsKey string
	CodeBytes  int
	TotalBytes int
}

// ExportBundle streams every valid entry of the tier as a bundle.
// Corrupt entries discovered along the way are quarantined and left
// out — a bundle only ever carries entries that re-validated at export
// time. Call Flush first (Tiered.ExportBundle does) so write-behind
// entries are included.
func (d *Disk) ExportBundle(w io.Writer) (int, error) {
	if d == nil {
		return 0, errNoDiskTier
	}
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	count := 0
	root := filepath.Join(d.dir, "objects")
	err := filepath.WalkDir(root, func(path string, ent os.DirEntry, err error) error {
		if err != nil || ent.IsDir() {
			return err
		}
		key := driver.Key(ent.Name())
		if !validKey(key) {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil // raced with quarantine or removal; skip
		}
		if _, _, derr := decodeResultBytes(data); derr != nil {
			d.quarantine(key, path)
			return nil
		}
		hdr := &tar.Header{
			Name:    bundleMemberPrefix + string(key[:2]) + "/" + string(key),
			Mode:    0o644,
			Size:    int64(len(data)),
			ModTime: time.Unix(0, 0), // deterministic: same tier state, same bundle bytes
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		if _, err := tw.Write(data); err != nil {
			return err
		}
		count++
		return nil
	})
	if err != nil {
		return count, fmt.Errorf("store: export bundle: %w", err)
	}
	if err := tw.Close(); err != nil {
		return count, fmt.Errorf("store: export bundle: %w", err)
	}
	if err := gz.Close(); err != nil {
		return count, fmt.Errorf("store: export bundle: %w", err)
	}
	return count, nil
}

// ImportBundle reads a bundle and installs every member that
// validates. Installation uses the same atomic temp-and-rename path as
// normal writes, so a crash mid-import never leaves partial entries.
func (d *Disk) ImportBundle(r io.Reader) (ImportStats, error) {
	var st ImportStats
	if d == nil {
		return st, errNoDiskTier
	}
	gz, err := gzip.NewReader(r)
	if err != nil {
		return st, fmt.Errorf("store: import bundle: %w", err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, fmt.Errorf("store: import bundle: %w", err)
		}
		key, ok := bundleMemberKey(hdr)
		if !ok {
			st.Ignored++
			continue
		}
		if hdr.Size > maxBundleEntry {
			st.Skipped++
			continue
		}
		data, err := io.ReadAll(io.LimitReader(tr, maxBundleEntry))
		if err != nil {
			return st, fmt.Errorf("store: import bundle: %s: %w", key, err)
		}
		if _, _, derr := decodeResultBytes(data); derr != nil {
			st.Skipped++
			continue
		}
		_, statErr := os.Stat(d.entryPath(key))
		if statErr == nil {
			st.Replaced++
		}
		d.write(key, data)
		st.Imported++
	}
	return st, nil
}

// bundleMemberKey extracts and validates the entry key a member
// claims, rejecting anything that is not a regular file named by a
// well-formed key. The returned key — not the member name — decides
// the install path.
func bundleMemberKey(hdr *tar.Header) (driver.Key, bool) {
	if hdr.Typeflag != tar.TypeReg {
		return "", false
	}
	name := strings.TrimPrefix(hdr.Name, "./")
	if !strings.HasPrefix(name, bundleMemberPrefix) {
		return "", false
	}
	key := driver.Key(filepath.Base(name))
	return key, validKey(key)
}

// InspectBundle lists a bundle's members with their validation
// verdicts without installing anything.
func InspectBundle(r io.Reader) ([]BundleEntry, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("store: inspect bundle: %w", err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	var out []BundleEntry
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return out, fmt.Errorf("store: inspect bundle: %w", err)
		}
		key, ok := bundleMemberKey(hdr)
		if !ok {
			continue
		}
		be := BundleEntry{Key: key, TotalBytes: int(hdr.Size)}
		data, err := io.ReadAll(io.LimitReader(tr, maxBundleEntry))
		if err != nil {
			return out, fmt.Errorf("store: inspect bundle: %s: %w", key, err)
		}
		if e, derr := decodeEntry(data); derr != nil {
			be.Err = derr.Error()
		} else if _, rerr := e.result(); rerr != nil {
			be.Err = rerr.Error()
		} else {
			be.Valid = true
			be.Name = e.Meta.Name
			be.Strategy = e.Meta.Strategy
			be.OptionsKey = e.OptionsKey
			be.CodeBytes = len(e.Code)
		}
		out = append(out, be)
	}
	return out, nil
}

// WarmFrom imports a bundle from a local file or an http(s) URL (a
// peer's GET /v1/cache/bundle, an object-store link).
func (d *Disk) WarmFrom(src string) (ImportStats, error) {
	if d == nil {
		return ImportStats{}, errNoDiskTier
	}
	rc, err := openBundleSource(src)
	if err != nil {
		return ImportStats{}, err
	}
	defer rc.Close()
	return d.ImportBundle(rc)
}

// openBundleSource resolves a -warm-from operand.
func openBundleSource(src string) (io.ReadCloser, error) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		client := &http.Client{Timeout: 5 * time.Minute}
		resp, err := client.Get(src)
		if err != nil {
			return nil, fmt.Errorf("store: warm from %s: %w", src, err)
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			return nil, fmt.Errorf("store: warm from %s: status %d: %s", src, resp.StatusCode, b)
		}
		return resp.Body, nil
	}
	f, err := os.Open(src)
	if err != nil {
		return nil, fmt.Errorf("store: warm from %s: %w", src, err)
	}
	return f, nil
}
