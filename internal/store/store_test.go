package store

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/iloc"
	"repro/internal/suite"
	"repro/internal/target"
)

// allocateKernel runs one real allocation of a suite kernel — the
// store's tests exercise genuine results, not synthetic stand-ins.
func allocateKernel(t *testing.T, name string) (*core.Result, driver.Key, string) {
	t.Helper()
	opts := core.Options{Machine: target.WithRegs(6), Mode: core.ModeRemat}
	rt := suite.ByName(name).Routine()
	res, err := core.Allocate(context.Background(), rt, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, driver.KeyFor(suite.ByName(name).Routine(), opts), driver.CanonicalOptionsKey(opts)
}

// TestEntryRoundTrip: encode → decode reproduces the result exactly,
// including everything the printed code does not carry.
func TestEntryRoundTrip(t *testing.T) {
	res, _, optKey := allocateKernel(t, "fehl")
	data, err := encodeResult(res, optKey)
	if err != nil {
		t.Fatal(err)
	}
	e, err := decodeEntry(data)
	if err != nil {
		t.Fatal(err)
	}
	if e.OptionsKey != optKey {
		t.Fatalf("options key %q, want %q", e.OptionsKey, optKey)
	}
	got, err := e.result()
	if err != nil {
		t.Fatal(err)
	}
	if iloc.Print(got.Routine) != iloc.Print(res.Routine) {
		t.Fatal("round-tripped code differs from the original")
	}
	if got.Routine.Allocated != res.Routine.Allocated ||
		got.Routine.FrameWords != res.Routine.FrameWords ||
		got.Routine.CallerSave != res.Routine.CallerSave ||
		got.Routine.NextReg != res.Routine.NextReg {
		t.Fatal("print-invisible routine fields not restored")
	}
	if got.SpilledRanges != res.SpilledRanges || got.RematSpills != res.RematSpills ||
		got.Strategy != res.Strategy || got.Mode != res.Mode ||
		len(got.Iterations) != len(res.Iterations) {
		t.Fatalf("result fields differ: got %+v", got)
	}
}

// TestTieredPromotion: an L1 miss over a populated disk serves from
// "l2" and promotes, so the next lookup is an "l1" hit.
func TestTieredPromotion(t *testing.T) {
	dir := t.TempDir()
	res, key, optKey := allocateKernel(t, "fehl")

	first, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	first.PutOptions(key, res, optKey)
	first.Flush()

	// Fresh L1 over the same disk: the entry is only on disk now.
	fresh := NewTiered(driver.NewCache(0), first.Disk())
	got, tier, ok := fresh.GetTier(key)
	if !ok || tier != TierDisk {
		t.Fatalf("first lookup: ok=%v tier=%q, want l2 hit", ok, tier)
	}
	if iloc.Print(got.Routine) != iloc.Print(res.Routine) {
		t.Fatal("disk hit returned different code")
	}
	if _, tier, ok = fresh.GetTier(key); !ok || tier != TierMemory {
		t.Fatalf("second lookup: ok=%v tier=%q, want promoted l1 hit", ok, tier)
	}
	st := fresh.Stats()
	if st.L1.Hits != 1 || st.L2.Hits != 1 {
		t.Fatalf("stats: %+v", st)
	}
	first.Close()
}

// TestRestartSurvival: entries put before Close are served after a
// reopen of the same directory, byte-identical.
func TestRestartSurvival(t *testing.T) {
	dir := t.TempDir()
	res, key, optKey := allocateKernel(t, "sgemm")
	want := iloc.Print(res.Routine)

	first, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	first.PutOptions(key, res, optKey)
	first.Close() // flushes write-behind

	second, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if n := second.Disk().Stats().Entries; n != 1 {
		t.Fatalf("reopened tier counts %d entries, want 1", n)
	}
	got, tier, ok := second.GetTier(key)
	if !ok || tier != TierDisk {
		t.Fatalf("after restart: ok=%v tier=%q", ok, tier)
	}
	if iloc.Print(got.Routine) != want {
		t.Fatal("restart changed the served bytes")
	}
}

// TestCorruptionQuarantined: every corruption mode is detected on read,
// reported as a miss, moved to quarantine, and re-fillable by the next
// Put. Nothing corrupt is ever served.
func TestCorruptionQuarantined(t *testing.T) {
	res, key, optKey := allocateKernel(t, "fehl")
	good, err := encodeResult(res, optKey)
	if err != nil {
		t.Fatal(err)
	}
	corruptions := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bit-flip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[headerSize+len(c[headerSize:])/2] ^= 0x01
			return c
		}},
		{"bad-magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			copy(c, "NOTSTORE")
			return c
		}},
		{"wrong-version", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[8] = 99
			return c
		}},
		{"trailing-garbage", func(b []byte) []byte { return append(append([]byte(nil), b...), 0xde, 0xad) }},
		{"empty", func([]byte) []byte { return nil }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			d, err := OpenDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			d.Put(key, good)
			d.Flush()
			path := d.entryPath(key)
			if err := os.WriteFile(path, tc.mutate(good), 0o644); err != nil {
				t.Fatal(err)
			}

			if _, ok := d.Get(key); ok {
				t.Fatal("corrupt entry was served")
			}
			if q := d.Quarantined(); q != 1 {
				t.Fatalf("quarantined = %d, want 1", q)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt entry still in the objects tree")
			}
			if _, err := os.Stat(filepath.Join(d.Dir(), "quarantine", string(key))); err != nil {
				t.Fatalf("quarantine copy missing: %v", err)
			}

			// The slot re-fills on the next Put and serves again.
			d.Put(key, good)
			d.Flush()
			if _, ok := d.Get(key); !ok {
				t.Fatal("re-filled entry not served")
			}
		})
	}
}

// TestRenameFaultLeavesNoPartial: a failed rename (the crash window of
// the atomic write) must leave neither a readable entry nor a stranded
// temp file.
func TestRenameFaultLeavesNoPartial(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	res, key, optKey := allocateKernel(t, "fehl")
	data, err := encodeResult(res, optKey)
	if err != nil {
		t.Fatal(err)
	}

	d.renameFn = func(string, string) error { return os.ErrPermission }
	d.Put(key, data)
	d.Flush()
	if _, ok := d.Get(key); ok {
		t.Fatal("entry readable despite failed rename")
	}
	if d.flushErrors.Load() == 0 {
		t.Fatal("failed rename not counted")
	}
	tmps, err := os.ReadDir(filepath.Join(d.Dir(), "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("%d temp file(s) left behind", len(tmps))
	}

	// Healed: the same Put path works once renames succeed again.
	d.renameFn = os.Rename
	d.Put(key, data)
	d.Flush()
	if _, ok := d.Get(key); !ok {
		t.Fatal("entry not served after rename recovered")
	}
}

// TestConcurrentAccess drives Get/Put/Flush from many goroutines; run
// under -race it is the store's data-race check.
func TestConcurrentAccess(t *testing.T) {
	tiered, err := Open(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer tiered.Close()
	res, key, optKey := allocateKernel(t, "fehl")

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch (g + i) % 3 {
				case 0:
					tiered.PutOptions(key, res, optKey)
				case 1:
					if got, ok := tiered.Get(key); ok && got.Routine == nil {
						t.Error("hit without a routine")
					}
				default:
					tiered.Flush()
				}
			}
		}(g)
	}
	wg.Wait()
	if got, ok := tiered.Get(key); !ok || iloc.Print(got.Routine) != iloc.Print(res.Routine) {
		t.Fatal("entry wrong after concurrent traffic")
	}
}

// TestEngineServesDiskTier wires the tiered store into the batch driver
// end to end: a fresh L1 over a populated disk serves the whole batch
// from "l2", and the driver's stats count the disk hits.
func TestEngineServesDiskTier(t *testing.T) {
	dir := t.TempDir()
	opts := core.Options{Machine: target.WithRegs(6)}
	units := []driver.Unit{
		{Name: "fehl", Routine: suite.ByName("fehl").Routine()},
		{Name: "sgemm", Routine: suite.ByName("sgemm").Routine()},
	}

	warm, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold := driver.New(driver.Config{Options: opts, Cache: warm}).Run(context.Background(), units)
	if err := cold.FirstErr(); err != nil {
		t.Fatal(err)
	}
	warm.Flush()

	fresh := NewTiered(driver.NewCache(0), warm.Disk())
	b := driver.New(driver.Config{Options: opts, Cache: fresh}).Run(context.Background(), units)
	if err := b.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if b.Stats.CacheHits != len(units) || b.Stats.CacheDiskHits != len(units) {
		t.Fatalf("stats: %+v", b.Stats)
	}
	for i, r := range b.Results {
		if !r.CacheHit || r.CacheTier != TierDisk {
			t.Fatalf("unit %d: hit=%v tier=%q", i, r.CacheHit, r.CacheTier)
		}
		if iloc.Print(r.Result.Routine) != iloc.Print(cold.Results[i].Result.Routine) {
			t.Fatalf("unit %d: disk-served code differs from cold allocation", i)
		}
	}
	warm.Close()
}

// TestBundleRoundTrip: export → inspect → import into a fresh tier
// reproduces every entry byte-identically, and the export is
// deterministic.
func TestBundleRoundTrip(t *testing.T) {
	src, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	type put struct {
		key  driver.Key
		code string
	}
	var puts []put
	for _, name := range []string{"fehl", "sgemm"} {
		res, key, optKey := allocateKernel(t, name)
		src.PutOptions(key, res, optKey)
		puts = append(puts, put{key, iloc.Print(res.Routine)})
	}

	var buf bytes.Buffer
	n, err := src.ExportBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(puts) {
		t.Fatalf("exported %d entries, want %d", n, len(puts))
	}
	var buf2 bytes.Buffer
	if _, err := src.ExportBundle(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("same tier state produced different bundle bytes")
	}

	entries, err := InspectBundle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(puts) {
		t.Fatalf("inspect lists %d entries, want %d", len(entries), len(puts))
	}
	for _, e := range entries {
		if !e.Valid || e.Name == "" || e.OptionsKey == "" {
			t.Fatalf("inspect entry: %+v", e)
		}
	}

	dst, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	st, err := dst.ImportBundle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Imported != len(puts) || st.Skipped != 0 || st.Replaced != 0 {
		t.Fatalf("import stats: %+v", st)
	}
	for _, p := range puts {
		got, tier, ok := dst.GetTier(p.key)
		if !ok || tier != TierDisk {
			t.Fatalf("%s: ok=%v tier=%q after import", p.key, ok, tier)
		}
		if iloc.Print(got.Routine) != p.code {
			t.Fatalf("%s: imported entry served different code", p.key)
		}
	}

	// Re-import over the same tier replaces, never duplicates.
	st, err = dst.ImportBundle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Imported != len(puts) || st.Replaced != len(puts) {
		t.Fatalf("re-import stats: %+v", st)
	}
}

// TestBundleHostileMembers: corrupt members are skipped, traversal and
// non-entry names ignored — and a valid member alongside them still
// installs.
func TestBundleHostileMembers(t *testing.T) {
	res, key, optKey := allocateKernel(t, "fehl")
	good, err := encodeResult(res, optKey)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)-1] ^= 0xff
	otherKey := driver.KeyFor(suite.ByName("sgemm").Routine(), core.Options{Machine: target.WithRegs(6), Mode: core.ModeRemat})

	bundle := buildBundle(t, []bundleMember{
		{name: "objects/" + string(key[:2]) + "/" + string(key), data: good},
		{name: "objects/" + string(otherKey[:2]) + "/" + string(otherKey), data: corrupt},
		{name: "objects/../../../etc/passwd", data: good},
		{name: "README.txt", data: []byte("not an entry")},
	})

	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	st, err := d.ImportBundle(bytes.NewReader(bundle))
	if err != nil {
		t.Fatal(err)
	}
	if st.Imported != 1 || st.Skipped != 1 || st.Ignored != 2 {
		t.Fatalf("import stats: %+v", st)
	}
	if _, ok := d.Get(key); !ok {
		t.Fatal("valid member not installed")
	}
	if _, ok := d.Get(otherKey); ok {
		t.Fatal("corrupt member was installed")
	}
	// Nothing escaped the store directory.
	if _, err := os.Stat(filepath.Join(d.Dir(), "..", "etc", "passwd")); !os.IsNotExist(err) {
		t.Fatal("traversal member landed outside the store")
	}
}

// TestWarmFrom covers both -warm-from source kinds: a local file and an
// HTTP URL (a peer's bundle endpoint).
func TestWarmFrom(t *testing.T) {
	src, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	res, key, optKey := allocateKernel(t, "fehl")
	src.PutOptions(key, res, optKey)
	var buf bytes.Buffer
	if _, err := src.ExportBundle(&buf); err != nil {
		t.Fatal(err)
	}

	t.Run("file", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "bundle.tar.gz")
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		st, err := d.WarmFrom(path)
		if err != nil || st.Imported != 1 {
			t.Fatalf("warm from file: %+v, %v", st, err)
		}
		if _, ok := d.Get(key); !ok {
			t.Fatal("warmed entry not served")
		}
	})

	t.Run("url", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			_, _ = w.Write(buf.Bytes())
		}))
		defer ts.Close()
		d, err := Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		st, err := d.WarmFrom(ts.URL)
		if err != nil || st.Imported != 1 {
			t.Fatalf("warm from url: %+v, %v", st, err)
		}
		if _, ok := d.Get(key); !ok {
			t.Fatal("warmed entry not served")
		}
	})

	t.Run("missing", func(t *testing.T) {
		d, err := Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		if _, err := d.WarmFrom(filepath.Join(t.TempDir(), "nope.tar.gz")); err == nil {
			t.Fatal("missing bundle did not error")
		}
	})
}

// bundleMember is one crafted member of a test bundle.
type bundleMember struct {
	name string
	data []byte
}

// buildBundle writes a tar.gz with exactly the given members — the
// hostile-input counterpart of ExportBundle.
func buildBundle(t *testing.T, members []bundleMember) []byte {
	t.Helper()
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	tw := tar.NewWriter(gz)
	for _, m := range members {
		if err := tw.WriteHeader(&tar.Header{Name: m.name, Mode: 0o644, Size: int64(len(m.data))}); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.Write(m.data); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestNilTieredIsInert: a nil store behaves like no cache, matching the
// nil *driver.Cache contract.
func TestNilTieredIsInert(t *testing.T) {
	var nt *Tiered
	if _, ok := nt.Get("k"); ok {
		t.Fatal("nil store returned a value")
	}
	nt.Put("k", &core.Result{})
	nt.Flush()
	nt.Close()
	if nt.Stats() != (Stats{}) {
		t.Fatal("nil store has stats")
	}
	if _, err := nt.ExportBundle(&bytes.Buffer{}); err == nil {
		t.Fatal("nil store exported a bundle")
	}
}
