package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/iloc"
	"repro/internal/target"
)

// The disk tier stores one finished allocation per file. An entry is a
// fixed binary header followed by three length-framed sections:
//
//	magic   [8]byte  "RALCST01"
//	version uint32   entryVersion
//	sum     [32]byte sha256 of the three sections, concatenated
//	optLen  uint32   length of the canonical options key
//	metaLen uint32   length of the metadata JSON
//	codeLen uint32   length of the allocated routine text
//	<options key> <meta JSON> <allocated routine, iloc.Print form>
//
// The code section is the routine's canonical printed form — the same
// bytes a response body carries — so a warm hit is byte-identical to
// the cold allocation that produced it. Everything iloc.Print does not
// carry (frame size, caller-save counts, the iteration statistics, the
// machine) rides in the metadata JSON and is restored after parsing.
//
// Every read re-hashes the sections against the header's sum: a
// truncated, bit-flipped or torn entry fails validation and is treated
// as a miss (and quarantined by the disk tier), never served. A header
// with the wrong magic or version fails the same way, so a format
// change never misdecodes old files.

const (
	entryMagic   = "RALCST01"
	entryVersion = 1
	headerSize   = 8 + 4 + sha256.Size + 4 + 4 + 4
	// maxSection bounds each section length on decode so a corrupt
	// header cannot drive a huge allocation.
	maxSection = 1 << 30
)

// entryMeta is the JSON metadata section: the Result fields (and
// Routine fields) that the printed code does not carry.
type entryMeta struct {
	Name          string                `json:"name"`
	Strategy      string                `json:"strategy,omitempty"`
	Mode          core.Mode             `json:"mode"`
	SpilledRanges int                   `json:"spilled_ranges,omitempty"`
	RematSpills   int                   `json:"remat_spills,omitempty"`
	Degraded      bool                  `json:"degraded,omitempty"`
	DegradeReason string                `json:"degrade_reason,omitempty"`
	Iterations    []core.IterationStats `json:"iterations,omitempty"`
	Machine       *target.Machine       `json:"machine,omitempty"`
	Allocated     bool                  `json:"allocated"`
	FrameWords    int                   `json:"frame_words"`
	CallerSave    [iloc.NumClasses]int  `json:"caller_save"`
	NextReg       [iloc.NumClasses]int  `json:"next_reg"`
}

// encodeResult renders a finished allocation as one self-validating
// entry. optionsKey is the canonical options rendering that fed the
// content hash (informational: inspect shows it; the file name is the
// hash itself).
func encodeResult(res *core.Result, optionsKey string) ([]byte, error) {
	if res == nil || res.Routine == nil {
		return nil, fmt.Errorf("store: cannot encode a result without a routine")
	}
	meta := entryMeta{
		Name:          res.Routine.Name,
		Strategy:      res.Strategy,
		Mode:          res.Mode,
		SpilledRanges: res.SpilledRanges,
		RematSpills:   res.RematSpills,
		Degraded:      res.Degraded,
		DegradeReason: res.DegradeReason,
		Iterations:    res.Iterations,
		Machine:       res.Machine,
		Allocated:     res.Routine.Allocated,
		FrameWords:    res.Routine.FrameWords,
		CallerSave:    res.Routine.CallerSave,
		NextReg:       res.Routine.NextReg,
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("store: encode meta: %w", err)
	}
	code := []byte(iloc.Print(res.Routine))
	opt := []byte(optionsKey)

	h := sha256.New()
	h.Write(opt)
	h.Write(metaJSON)
	h.Write(code)

	buf := make([]byte, 0, headerSize+len(opt)+len(metaJSON)+len(code))
	buf = append(buf, entryMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, entryVersion)
	buf = h.Sum(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(opt)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(metaJSON)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(code)))
	buf = append(buf, opt...)
	buf = append(buf, metaJSON...)
	buf = append(buf, code...)
	return buf, nil
}

// decodedEntry is a validated, parsed entry.
type decodedEntry struct {
	OptionsKey string
	Meta       entryMeta
	Code       []byte
}

// decodeEntry validates and splits an entry's bytes. Any deviation —
// wrong magic, unknown version, truncation, trailing garbage, a hash
// mismatch, undecodable metadata — is an error; the caller treats it
// as corruption.
func decodeEntry(data []byte) (*decodedEntry, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("store: entry truncated: %d bytes, want at least %d", len(data), headerSize)
	}
	if string(data[:8]) != entryMagic {
		return nil, fmt.Errorf("store: bad entry magic %q", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != entryVersion {
		return nil, fmt.Errorf("store: unsupported entry version %d (want %d)", v, entryVersion)
	}
	sum := data[12 : 12+sha256.Size]
	optLen := binary.LittleEndian.Uint32(data[44:48])
	metaLen := binary.LittleEndian.Uint32(data[48:52])
	codeLen := binary.LittleEndian.Uint32(data[52:56])
	if optLen > maxSection || metaLen > maxSection || codeLen > maxSection {
		return nil, fmt.Errorf("store: entry section length out of range")
	}
	want := int64(headerSize) + int64(optLen) + int64(metaLen) + int64(codeLen)
	if int64(len(data)) != want {
		return nil, fmt.Errorf("store: entry size %d does not match header (%d)", len(data), want)
	}
	payload := data[headerSize:]
	got := sha256.Sum256(payload)
	if !bytes.Equal(got[:], sum) {
		return nil, fmt.Errorf("store: entry hash mismatch (corrupt payload)")
	}
	opt := payload[:optLen]
	metaJSON := payload[optLen : optLen+metaLen]
	code := payload[optLen+metaLen:]
	var meta entryMeta
	if err := json.Unmarshal(metaJSON, &meta); err != nil {
		return nil, fmt.Errorf("store: entry meta: %w", err)
	}
	return &decodedEntry{OptionsKey: string(opt), Meta: meta, Code: code}, nil
}

// result reconstructs the core.Result an entry encodes. The routine is
// re-parsed from its printed form and the print-invisible fields
// restored from the metadata, so the caller gets exactly what the cold
// allocation returned — including byte-identical iloc.Print output.
func (e *decodedEntry) result() (*core.Result, error) {
	rt, err := iloc.Parse(string(e.Code))
	if err != nil {
		return nil, fmt.Errorf("store: entry code: %w", err)
	}
	rt.Allocated = e.Meta.Allocated
	rt.FrameWords = e.Meta.FrameWords
	rt.CallerSave = e.Meta.CallerSave
	rt.NextReg = e.Meta.NextReg
	return &core.Result{
		Routine:       rt,
		Iterations:    e.Meta.Iterations,
		SpilledRanges: e.Meta.SpilledRanges,
		RematSpills:   e.Meta.RematSpills,
		Mode:          e.Meta.Mode,
		Strategy:      e.Meta.Strategy,
		Machine:       e.Meta.Machine,
		Degraded:      e.Meta.Degraded,
		DegradeReason: e.Meta.DegradeReason,
	}, nil
}
