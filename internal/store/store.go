// Package store is the persistent result store behind the allocation
// service: a tiered, content-addressed cache of finished allocations.
// L1 is the in-memory LRU the batch driver has always had
// (driver.Cache); L2 is a disk tier (one self-validating file per
// entry, crash-safe atomic writes, write-behind flushing) that
// survives process restarts. On top of the disk tier sit cache
// bundles: a tar.gz snapshot of L2 that can be exported from a warm
// replica and imported into — or streamed at boot by — a cold one, so
// a fresh rallocd serves cache hits from its first request.
//
// The tier contract mirrors the allocator's determinism: entries are
// keyed by driver.KeyFor's content hash of (canonical options,
// canonical routine text), and the disk entry stores the allocated
// routine's canonical printed form, so a warm hit returns bytes
// identical to the cold allocation that produced it. Corruption is
// detected on read (every entry re-hashes its payload) and corrupt
// files are quarantined, never served.
package store

import (
	"io"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/telemetry"
)

// Tier labels for driver.UnitResult.CacheTier and the stats surfaces.
const (
	TierMemory = "l1"
	TierDisk   = "l2"
)

// Stats is a point-in-time snapshot of both tiers plus the disk tier's
// fault and flush counters.
type Stats struct {
	L1 driver.CacheStats `json:"l1"`
	L2 driver.CacheStats `json:"l2"`
	// L1HitRate and L2HitRate are hits/(hits+misses) per tier. Note an
	// L2 lookup happens only on an L1 miss, so the overall hit rate is
	// not the sum.
	L1HitRate float64 `json:"l1_hit_rate"`
	L2HitRate float64 `json:"l2_hit_rate"`
	// Quarantined counts corrupt disk entries detected on read and
	// moved out of the objects tree.
	Quarantined uint64 `json:"quarantined"`
	// FlushWrites counts entries landed by the background flusher (or
	// its synchronous fallback); FlushSync the subset written in the
	// caller because the queue was full or the tier closed; FlushErrors
	// writes that failed (the entry is absent, not partial).
	FlushWrites uint64 `json:"flush_writes"`
	FlushSync   uint64 `json:"flush_sync"`
	FlushErrors uint64 `json:"flush_errors"`
}

// Tiered is the two-level result store. It implements the driver's
// ResultCache, TierGetter and OptionsPutter interfaces, so it drops
// into driver.Config.Cache (and server.Config) wherever a plain
// driver.Cache fits. A nil *Tiered behaves like no cache at all.
type Tiered struct {
	l1   *driver.Cache
	disk *Disk
}

// NewTiered combines an in-memory L1 with a disk L2. l1 must be
// non-nil; disk may be nil, degrading to memory-only behavior (useful
// for callers that decide the disk tier at runtime).
func NewTiered(l1 *driver.Cache, disk *Disk) *Tiered {
	if l1 == nil {
		l1 = driver.NewCache(0)
	}
	return &Tiered{l1: l1, disk: disk}
}

// Open is the one-call constructor: an L1 bounded to l1Capacity
// entries (0 = unbounded) over a disk tier at dir.
func Open(dir string, l1Capacity int) (*Tiered, error) {
	disk, err := OpenDisk(dir)
	if err != nil {
		return nil, err
	}
	return NewTiered(driver.NewCache(l1Capacity), disk), nil
}

// Disk returns the L2 tier (nil when memory-only).
func (t *Tiered) Disk() *Disk {
	if t == nil {
		return nil
	}
	return t.disk
}

// Get implements driver.ResultCache.
func (t *Tiered) Get(key driver.Key) (*core.Result, bool) {
	res, _, ok := t.GetTier(key)
	return res, ok
}

// GetTier implements driver.TierGetter: an L1 miss falls through to
// the disk tier, and a disk hit is promoted into L1 so the next lookup
// is a memory hit.
func (t *Tiered) GetTier(key driver.Key) (*core.Result, string, bool) {
	if t == nil {
		return nil, "", false
	}
	if res, ok := t.l1.Get(key); ok {
		return res, TierMemory, true
	}
	if t.disk == nil {
		return nil, "", false
	}
	res, ok := t.disk.Get(key)
	if !ok {
		return nil, "", false
	}
	t.l1.Put(key, res)
	return res, TierDisk, true
}

// Put implements driver.ResultCache.
func (t *Tiered) Put(key driver.Key, res *core.Result) {
	t.PutOptions(key, res, "")
}

// PutOptions implements driver.OptionsPutter: the engine hands over
// the canonical options key alongside the result so the disk entry
// records what configuration produced it (surfaced by
// `ralloc-bundle inspect`).
func (t *Tiered) PutOptions(key driver.Key, res *core.Result, optionsKey string) {
	if t == nil || res == nil {
		return
	}
	t.l1.Put(key, res)
	if t.disk == nil {
		return
	}
	// Encode before queueing: the bytes are a private snapshot, so the
	// caller may mutate the result freely while the flusher writes.
	data, err := encodeResult(res, optionsKey)
	if err != nil {
		return
	}
	t.disk.Put(key, data)
}

// Flush blocks until queued disk writes have landed.
func (t *Tiered) Flush() {
	if t != nil {
		t.disk.Flush()
	}
}

// Close flushes and stops the disk tier's background flusher.
func (t *Tiered) Close() {
	if t != nil {
		t.disk.Close()
	}
}

// Stats snapshots both tiers.
func (t *Tiered) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	s := Stats{L1: t.l1.Stats()}
	if t.disk != nil {
		s.L2 = t.disk.Stats()
		s.Quarantined = t.disk.Quarantined()
		s.FlushWrites = t.disk.flushWrites.Load()
		s.FlushSync = t.disk.flushSync.Load()
		s.FlushErrors = t.disk.flushErrors.Load()
	}
	s.L1HitRate = s.L1.HitRate()
	s.L2HitRate = s.L2.HitRate()
	return s
}

// PublishMetrics writes the current per-tier stats into a telemetry
// registry as store.* gauges — the server calls it on every /metrics
// scrape, driverbench before dumping, so the registry view is always
// current at read time.
func (t *Tiered) PublishMetrics(reg *telemetry.Registry) {
	if t == nil || reg == nil {
		return
	}
	s := t.Stats()
	pub := func(tier string, cs driver.CacheStats, rate float64) {
		reg.Gauge("store." + tier + ".hits").Set(int64(cs.Hits))
		reg.Gauge("store." + tier + ".misses").Set(int64(cs.Misses))
		reg.Gauge("store." + tier + ".evictions").Set(int64(cs.Evictions))
		reg.Gauge("store." + tier + ".entries").Set(int64(cs.Entries))
		reg.Gauge("store." + tier + ".hit_rate_pct").Set(int64(100 * rate))
	}
	pub(TierMemory, s.L1, s.L1HitRate)
	pub(TierDisk, s.L2, s.L2HitRate)
	reg.Gauge("store.quarantined").Set(int64(s.Quarantined))
	reg.Gauge("store.flush.writes").Set(int64(s.FlushWrites))
	reg.Gauge("store.flush.sync").Set(int64(s.FlushSync))
	reg.Gauge("store.flush.errors").Set(int64(s.FlushErrors))
}

// ExportBundle flushes pending writes and streams a bundle of the disk
// tier to w. It returns the number of entries exported.
func (t *Tiered) ExportBundle(w io.Writer) (int, error) {
	if t == nil || t.disk == nil {
		return 0, errNoDiskTier
	}
	t.disk.Flush()
	return t.disk.ExportBundle(w)
}

// ImportBundle installs a bundle's valid entries into the disk tier.
func (t *Tiered) ImportBundle(r io.Reader) (ImportStats, error) {
	if t == nil || t.disk == nil {
		return ImportStats{}, errNoDiskTier
	}
	return t.disk.ImportBundle(r)
}

// WarmFrom imports a bundle from a file path or an http(s) URL — the
// daemon's boot-time warm-up (-warm-from).
func (t *Tiered) WarmFrom(src string) (ImportStats, error) {
	if t == nil || t.disk == nil {
		return ImportStats{}, errNoDiskTier
	}
	return t.disk.WarmFrom(src)
}
