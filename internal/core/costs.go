package core

import (
	"math"

	"repro/internal/iloc"
)

// pow10 returns 10^d as a float, saturating for absurd depths.
func pow10(d int) float64 {
	if d > 12 {
		d = 12
	}
	p := 1.0
	for i := 0; i < d; i++ {
		p *= 10
	}
	return p
}

// computeCosts estimates, for every live range, the run-time cycles that
// spilling it would add, weighted by 10^depth per reference (§2, "spill
// costs"). A ⊥ range pays a store per definition and a load per use; a
// never-killed range pays only the tag instruction per use and *saves*
// its definitions, which are deleted (§3.2: no stores are needed).
// Spill-born temporaries get infinite cost so they are never respilled.
func (a *allocator) computeCosts(cs *classState) {
	c := cs.c
	n := a.rt.NumRegs(c)
	cs.cost = make([]float64, n)
	cs.mustNot = make([]bool, n)
	m := a.opts.Machine

	loadCost := float64(m.MemCycles)
	storeCost := float64(m.MemCycles)

	// A range must not be respilled only when doing so cannot shrink it:
	// every definition is spill-born (a reload or rematerialization) and
	// a single instruction consumes it. Such a range is already minimal —
	// respilling would just add a load/store shuttle. Crucially, a range
	// that coalescing merged with real code keeps real definitions or
	// extra uses and stays spillable; marking it unspillable would let
	// the infinite cost infect the merged range and leave the colorer
	// facing unresolvable pressure (found by the random-program tests).
	spillDefs := make([]int, n)
	realDefs := make([]int, n)
	useInstrs := make([]int, n)

	for _, b := range a.rt.Blocks {
		w := pow10(b.Depth)
		for _, in := range b.Instrs {
			counted := map[int]bool{}
			for _, u := range in.Uses() {
				if u.Class != c || u.N == 0 {
					continue
				}
				if !counted[u.N] {
					counted[u.N] = true
					useInstrs[u.N]++
				}
				t := cs.tags[u.N]
				if t.Rematerializable() {
					cs.cost[u.N] += float64(m.Cycles(t.Instr.Op)) * w
				} else {
					cs.cost[u.N] += loadCost * w
				}
			}
			d := in.Def()
			if d.Valid() && d.Class == c && d.N != 0 {
				if in.IsSpill {
					spillDefs[d.N]++
				} else {
					realDefs[d.N]++
				}
				t := cs.tags[d.N]
				if t.Rematerializable() {
					// The definition disappears when the range is
					// rematerialized; spilling saves its cycles.
					cs.cost[d.N] -= float64(m.Cycles(in.Op)) * w
				} else {
					cs.cost[d.N] += storeCost * w
				}
			}
		}
	}
	for v := 1; v < n; v++ {
		if spillDefs[v] > 0 && realDefs[v] == 0 && useInstrs[v] <= 1 {
			cs.mustNot[v] = true
		}
	}
	// Chaitin's adjacency rule: a range with a single definition whose
	// only use immediately follows it gains nothing from spilling — the
	// reload would sit exactly where the value already is. Give it
	// infinite cost so simplify never chooses it.
	type refs struct {
		defs, uses int
		adjacent   bool
	}
	seen := make([]refs, n)
	for _, b := range a.rt.Blocks {
		for i, in := range b.Instrs {
			for _, u := range in.Uses() {
				if u.Class != c || u.N == 0 {
					continue
				}
				seen[u.N].uses++
				if i > 0 {
					if d := b.Instrs[i-1].Def(); d.Valid() && d.Class == c && d.N == u.N {
						seen[u.N].adjacent = true
					}
				}
			}
			if d := in.Def(); d.Valid() && d.Class == c && d.N != 0 {
				seen[d.N].defs++
			}
		}
	}
	for v, r := range seen {
		if r.defs == 1 && r.uses == 1 && r.adjacent {
			cs.mustNot[v] = true
		}
	}

	for i := range cs.cost {
		if cs.mustNot[i] {
			cs.cost[i] = math.Inf(1)
		}
	}
}

// findPartners records, for biased coloring, the ranges connected by the
// copies (splits and ordinary) that survive coalescing (§4.3: "before
// coloring, the allocator finds partners — values connected by splits").
func (a *allocator) findPartners(cs *classState) {
	n := a.rt.NumRegs(cs.c)
	cs.partners = make([][]int, n)
	add := func(x, y int) {
		for _, p := range cs.partners[x] {
			if p == y {
				return
			}
		}
		cs.partners[x] = append(cs.partners[x], y)
	}
	a.rt.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
		if !in.Op.IsCopy() || in.Dst.Class != cs.c || in.Src[0].IsFP() {
			return
		}
		d, s := cs.find(in.Dst.N), cs.find(in.Src[0].N)
		if d != s {
			add(d, s)
			add(s, d)
		}
	})
}
