package core

import (
	"repro/internal/cfg"
	"repro/internal/iloc"
	"repro/internal/liveness"
)

// SplitScheme selects one of §6's experimental live-range splitting
// strategies, applied on top of the rematerialization splits.
type SplitScheme int

// The schemes of §6. The paper found each had "several major successes"
// and "equally dramatic failures"; the SplittingStudy experiment
// reproduces that comparison. Scheme 5 (forward plus reverse dominance
// frontiers) needs σ-renaming machinery the paper does not detail and is
// not implemented; see DESIGN.md.
const (
	SplitNone          SplitScheme = iota
	SplitAllLoops                  // 1: split all live ranges around all loops
	SplitOuterLoops                // 2: split all live ranges around outer loops
	SplitInactiveLoops             // 3: split around the outermost loop where a range is neither used nor defined
	SplitAtPhis                    // 4: split along forward dominance frontiers (at all φ-nodes)
)

func (s SplitScheme) String() string {
	switch s {
	case SplitNone:
		return "none"
	case SplitAllLoops:
		return "all-loops"
	case SplitOuterLoops:
		return "outer-loops"
	case SplitInactiveLoops:
		return "inactive-loops"
	case SplitAtPhis:
		return "all-phis"
	}
	return "split(?)"
}

// applyLoopSplits inserts split copies around loops according to the
// scheme, after renumber has formed live ranges. For each selected
// (loop, range) pair the range gets a fresh name inside the loop,
// connected by split copies on the entry and exit edges, so the colorer
// can treat the loop-resident portion separately — and the spiller can
// rematerialize or spill each portion on its own.
func (a *allocator) applyLoopSplits(cs *classState, loops []*cfg.Loop) int {
	var selected []*cfg.Loop
	switch a.opts.Split {
	case SplitAllLoops, SplitInactiveLoops:
		selected = loops
	case SplitOuterLoops:
		for _, l := range loops {
			if l.Depth == 1 {
				selected = append(selected, l)
			}
		}
	default:
		return 0
	}
	// Outer loops first, so inner splits subdivide the outer copies.
	for i := 0; i < len(selected); i++ {
		for j := i + 1; j < len(selected); j++ {
			if selected[j].Depth < selected[i].Depth {
				selected[i], selected[j] = selected[j], selected[i]
			}
		}
	}

	splits := 0
	alreadySplit := make(map[int]bool) // scheme 3: outermost loop only
	for _, l := range selected {
		live := liveness.Compute(a.rt, cs.c)
		inLoop := make(map[*iloc.Block]bool, len(l.Blocks))
		for _, b := range l.Blocks {
			inLoop[b] = true
		}
		var candidates []int
		live.LiveIn[l.Header.Index].ForEach(func(r int) {
			r = cs.find(r)
			if a.opts.Split == SplitInactiveLoops {
				if alreadySplit[r] || rangeActiveIn(l, cs.c, r, cs) {
					return
				}
			}
			candidates = append(candidates, r)
		})
		// Dedupe after find-normalization.
		seen := map[int]bool{}
		for _, r := range candidates {
			if seen[r] {
				continue
			}
			seen[r] = true
			if a.splitAroundLoop(cs, l, inLoop, r, live) {
				splits++
				alreadySplit[r] = true
			}
		}
	}
	return splits
}

// rangeActiveIn reports whether live range r is used or defined inside
// the loop.
func rangeActiveIn(l *cfg.Loop, c iloc.Class, r int, cs *classState) bool {
	for _, b := range l.Blocks {
		for _, in := range b.Instrs {
			if d := in.Def(); d.Valid() && d.Class == c && cs.find(d.N) == r {
				return true
			}
			for _, u := range in.Uses() {
				if u.Class == c && u.N != 0 && cs.find(u.N) == r {
					return true
				}
			}
		}
	}
	return false
}

// splitAroundLoop renames r to a fresh register inside the loop and
// connects the two names with split copies on the entry and exit edges.
// With critical edges split beforehand, every exit target has a single
// predecessor, so the exit copy can sit at its head.
func (a *allocator) splitAroundLoop(cs *classState, l *cfg.Loop, inLoop map[*iloc.Block]bool, r int, live *liveness.Info) bool {
	c := cs.c

	// Exit targets where r survives the loop.
	var exits []*iloc.Block
	for _, b := range l.Blocks {
		for _, s := range b.Succs {
			if !inLoop[s] && live.LiveIn[s.Index].Has(r) {
				if len(s.Preds) > 1 {
					return false // unexpected critical edge; skip conservatively
				}
				exits = append(exits, s)
			}
		}
	}
	// Entry predecessors outside the loop.
	var entries []*iloc.Block
	for _, p := range l.Header.Preds {
		if !inLoop[p] {
			entries = append(entries, p)
		}
	}
	if len(entries) == 0 {
		return false
	}

	rp := a.rt.NewReg(c)
	cs.sets.Grow(a.rt.NumRegs(c))
	for len(cs.tags) < cs.sets.Len() {
		cs.tags = append(cs.tags, cs.tags[cs.find(r)])
	}

	for _, b := range l.Blocks {
		for _, in := range b.Instrs {
			if d := in.Def(); d.Valid() && d.Class == c && cs.find(d.N) == r {
				in.Dst = rp
			}
			for i := 0; i < in.Op.NSrc(); i++ {
				if in.Src[i].Class == c && in.Src[i].N != 0 && cs.find(in.Src[i].N) == r {
					in.Src[i] = rp
				}
			}
		}
	}
	old := iloc.Reg{Class: c, N: cs.find(r)}
	for _, p := range entries {
		cp := iloc.MakeMov(rp, old)
		cp.IsSplit = true
		p.AppendBeforeTerminator(cp)
	}
	for _, s := range exits {
		cp := iloc.MakeMov(old, rp)
		cp.IsSplit = true
		s.InsertBefore(0, cp)
	}
	return true
}
