package core

import (
	"repro/internal/ig"
	"repro/internal/liveness"
	"repro/internal/remat"
)

// buildGraph constructs the interference graph for one class with
// Chaitin's backward walk: starting from each block's live-out set, a
// definition interferes with everything currently live — except that a
// copy does not interfere with its own source, which is what lets
// coalescing and biased coloring combine the two ends.
func (a *allocator) buildGraph(cs *classState) {
	c := cs.c
	n := a.rt.NumRegs(c)
	cs.graph = ig.New(n)
	cs.inCode = make([]bool, n)
	cs.acrossCall = make([]bool, n)
	live := liveness.Compute(a.rt, c)

	for _, b := range a.rt.Blocks {
		lv := live.LiveOut[b.Index].Copy()
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			if in.Op.IsCall() {
				// Everything live across the call must survive the
				// callee clobbering the caller-save colors.
				lv.ForEach(func(x int) { cs.acrossCall[x] = true })
			}
			d := in.Def()
			if d.Valid() && d.Class == c && d.N != 0 {
				cs.inCode[d.N] = true
				copySrc := -1
				if in.Op.IsCopy() && in.Src[0].Class == c && in.Src[0].N != 0 {
					copySrc = in.Src[0].N
					lv.Remove(copySrc)
				}
				lv.ForEach(func(x int) {
					if x != d.N {
						cs.graph.AddEdge(d.N, x)
					}
				})
				lv.Remove(d.N)
				if copySrc >= 0 {
					lv.Add(copySrc)
				}
			}
			for _, u := range in.Uses() {
				if u.Class == c && u.N != 0 {
					cs.inCode[u.N] = true
					lv.Add(u.N)
				}
			}
		}
	}
}

// coalescePass scans for removable copies of one kind. The pipeline's
// two coalescing passes drive it to a fixpoint — unrestricted over
// ordinary copies, then (in ModeRemat) conservative over split copies —
// rebuilding the interference graph between scans; see pipeline.go.
// Ordinary copies
// (splitRound false) coalesce whenever the ends do not interfere; split
// copies additionally require the merged node to have fewer than k
// neighbors of significant degree, so the combined range provably still
// simplifies. The graph is updated in place (Merge) so later decisions in
// the same pass see earlier ones.
func (a *allocator) coalescePass(cs *classState, splitRound bool) int {
	k := a.opts.Machine.K(cs.c)
	removed := 0
	for _, b := range a.rt.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if !in.Op.IsCopy() || in.Dst.Class != cs.c || in.IsSplit != splitRound || in.Src[0].IsFP() {
				kept = append(kept, in)
				continue
			}
			d, s := cs.find(in.Dst.N), cs.find(in.Src[0].N)
			if d == s {
				removed++ // redundant copy: both ends already one range
				continue
			}
			if cs.graph.Interfere(d, s) {
				kept = append(kept, in)
				continue
			}
			if splitRound && cs.graph.CombinedSignificant(d, s, k) >= k {
				kept = append(kept, in)
				continue
			}
			root, _ := cs.sets.Union(d, s)
			other := d + s - root
			cs.graph.Merge(root, other)
			if root < len(cs.tags) && other < len(cs.tags) {
				cs.tags[root] = remat.Meet(cs.tags[root], cs.tags[other])
			}
			removed++
		}
		b.Instrs = kept
	}
	if removed > 0 {
		a.rewriteToRoots(cs)
	}
	return removed
}
